// Recovery verification: proves crash + command-log replay reconstructs the
// exact committed state.
//
// The crashed engine's raw DRAM is NOT a valid oracle — in-flight dirty
// tuples are (correctly) dropped by checkpoint capture and in-place updates
// land before their commit record. Instead, a ShadowModel replays the
// COMMITTED log records functionally (pure host-side maps, no simulator) on
// top of the pre-crash checkpoint, and the RecoveryVerifier diffs that
// against the recovered database: equivalence means replay lost nothing and
// invented nothing.
#ifndef BIONICDB_FAULT_RECOVERY_H_
#define BIONICDB_FAULT_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "db/database.h"
#include "log/command_log.h"

namespace bionicdb::fault {

/// Pure functional model of database state: (table, partition) -> key ->
/// payload. Seeded from a checkpoint, mutated by a workload-specific
/// applier, compared against a recovered engine.
class ShadowModel {
 public:
  using KeyBytes = std::vector<uint8_t>;
  using Table = std::map<KeyBytes, std::vector<uint8_t>>;

  explicit ShadowModel(const log::Checkpoint& base);

  /// Overwrites `len` payload bytes at `offset` of an existing key.
  /// Returns false (shadow divergence — the applier's model is wrong) when
  /// the key does not exist or the write overruns the payload.
  bool UpdatePayload(db::TableId table, db::PartitionId partition,
                     const KeyBytes& key, uint64_t offset,
                     const uint8_t* data, uint64_t len);

  /// Inserts or fully replaces a tuple.
  void Put(db::TableId table, db::PartitionId partition, const KeyBytes& key,
           std::vector<uint8_t> payload);

  /// Removes a tuple; returns false if absent.
  bool Erase(db::TableId table, db::PartitionId partition,
             const KeyBytes& key);

  const std::map<std::pair<db::TableId, db::PartitionId>, Table>& state()
      const {
    return state_;
  }

 private:
  std::map<std::pair<db::TableId, db::PartitionId>, Table> state_;
};

/// Applies one committed log record to the shadow. Workload-specific: the
/// shadow cannot execute ISA programs, so each workload contributes a
/// functional interpretation of its block layout.
using ShadowApplier =
    std::function<bool(const log::LogRecord&, ShadowModel*)>;

/// Applier for the YCSB kUpdateMix block layout (workload/ycsb.cc): keys
/// big-endian at [8i | i < n), new 8-byte values at [8n + 8i | i < u), and
/// update i overwrites the first 8 payload bytes of key i. The partition of
/// a key k is k / records_per_partition.
ShadowApplier MakeYcsbUpdateMixApplier(uint64_t records_per_partition,
                                       uint32_t accesses_per_txn,
                                       uint32_t updates_per_txn);

/// Diffs a recovered database against the shadow reconstruction.
class RecoveryVerifier {
 public:
  struct Result {
    bool equivalent = false;
    uint64_t tuples_compared = 0;
    uint64_t missing = 0;      // in shadow, absent from recovered DB
    uint64_t unexpected = 0;   // in recovered DB, absent from shadow
    uint64_t mismatched = 0;   // payload bytes differ
    uint64_t applier_errors = 0;  // committed records the applier rejected
    std::string first_diff;    // human-readable first divergence
  };

  /// shadow := base checkpoint + applier(committed records in commit-ts
  /// order); result := diff(shadow, Capture(recovered)).
  static Result Verify(const log::Checkpoint& base,
                       const log::CommandLog& log,
                       const ShadowApplier& applier,
                       const db::Database& recovered);
};

}  // namespace bionicdb::fault

#endif  // BIONICDB_FAULT_RECOVERY_H_
