// Deterministic fault injection for the BionicDB simulator.
//
// The FaultScheduler is a regular sim::Component ticked once per cycle by
// the simulator; every fault decision flows from two seeded xorshift
// streams (one advanced per tick for the event schedule, one advanced per
// packet for comm faults), so a chaos run replays bit-for-bit from a single
// seed. It implements the victim layers' hook interfaces directly:
//
//  * sim::DramFaultHook   — transient per-channel latency-spike windows,
//    stuck-busy windows, and single-bit flips in the CRC32-guarded region
//    of stored tuples (header shape bytes + key). Corruption is DETECTED
//    by the index pipelines (CpStatus::kCorrupted -> txn abort), never a
//    silent wrong answer.
//  * comm::ChannelFaultHook — per-packet drop / duplicate / delay
//    decisions, countered by the fabric's ack/retransmit/dedup layer
//    (Attach auto-enables it when comm fault rates are nonzero, since a
//    dropped packet would otherwise hang the drain loop).
//  * worker freezes — a PartitionWorker skips every cycle until a deadline.
//
// Every injected event is recorded; ScheduleDigest() folds the recorded
// schedule into a CRC32 so two runs can assert byte-identical fault
// schedules. All hooks are pay-nothing when the scheduler is not attached.
#ifndef BIONICDB_FAULT_FAULT_H_
#define BIONICDB_FAULT_FAULT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "comm/channels.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/engine.h"
#include "sim/component.h"
#include "sim/memory.h"

namespace bionicdb::fault {

/// Fault rates and shapes. All rates default to zero = that class disabled.
struct FaultConfig {
  uint64_t seed = 1;

  // --- DRAM faults (per channel, per cycle) -----------------------------
  /// Probability a transient latency-spike window opens on a channel.
  double dram_spike_rate = 0;
  /// Extra service latency while a spike window is open.
  uint64_t dram_spike_extra_cycles = 64;
  /// Spike window length.
  uint64_t dram_spike_duration = 256;
  /// Probability a channel wedges (rejects all admissions) for a window.
  double dram_stuck_rate = 0;
  uint64_t dram_stuck_duration = 512;

  // --- Tuple corruption (per cycle) -------------------------------------
  /// Probability of flipping one random bit in the guarded region (header
  /// shape bytes + key) of one random guarded tuple.
  double bitflip_rate = 0;

  // --- Comm faults (per transmitted packet) -----------------------------
  double comm_drop_rate = 0;
  double comm_dup_rate = 0;
  double comm_delay_rate = 0;
  uint64_t comm_delay_cycles = 64;
  /// Message-class filter for comm faults: bit c makes MessageClass c
  /// eligible (0 = every class eligible, the default). Masked-out packets
  /// return the no-fault decision before any RNG draw, so a masked run's
  /// packet stream consumes randomness only for the targeted classes —
  /// the 2PC fault tests use this to aim drops/dups at PrepareAck or
  /// CommitReq without perturbing the index/memory traffic underneath.
  uint32_t comm_class_mask = 0;

  // --- Worker faults (per cycle) ----------------------------------------
  /// Probability a random worker freezes for `worker_freeze_cycles`.
  double worker_freeze_rate = 0;
  uint64_t worker_freeze_cycles = 1024;

  bool dram_faults_enabled() const {
    return dram_spike_rate > 0 || dram_stuck_rate > 0;
  }
  bool comm_faults_enabled() const {
    return comm_drop_rate > 0 || comm_dup_rate > 0 || comm_delay_rate > 0;
  }
  bool any_enabled() const {
    return dram_faults_enabled() || comm_faults_enabled() ||
           bitflip_rate > 0 || worker_freeze_rate > 0;
  }
};

/// One recorded injection. `a`/`b` are kind-specific operands (channel and
/// window end, tuple address and bit index, src and dst worker, ...).
struct FaultEvent {
  enum class Kind : uint8_t {
    kDramSpike = 0,
    kDramStuck = 1,
    kBitFlip = 2,
    kCommDrop = 3,
    kCommDup = 4,
    kCommDelay = 5,
    kWorkerFreeze = 6,
    kCrash = 7,
  };
  uint64_t cycle = 0;
  Kind kind = Kind::kDramSpike;
  uint64_t a = 0;
  uint64_t b = 0;
};

const char* FaultEventKindName(FaultEvent::Kind kind);

class FaultScheduler : public sim::Component,
                       public sim::DramFaultHook,
                       public comm::ChannelFaultHook {
 public:
  explicit FaultScheduler(const FaultConfig& config);

  /// Wires this scheduler into an engine: installs the DRAM and channel
  /// hooks, registers as a simulator component, and — when comm faults are
  /// enabled — turns the fabric's reliability layer on (lossy channels
  /// without retransmission would hang Drain). Call before loading data if
  /// bit flips should be able to target bulk-loaded tuples.
  void Attach(core::BionicDb* engine);
  /// Uninstalls the hooks (the component registration stays; a detached
  /// scheduler ticks as a no-op). Used before tearing the engine down.
  void Detach();

  // sim::Component:
  void Tick(uint64_t cycle) override;
  bool Idle() const override { return true; }

  /// Event-driven scheduling hint: the earliest precomputed injection
  /// cycle across all fault streams (kNeverWakes when detached or fully
  /// disabled). Quiescent ticks are pure no-ops, so no SkipCycles needed.
  uint64_t NextWakeCycle(uint64_t now) const override;

  // sim::DramFaultHook:
  uint64_t ExtraLatency(uint64_t now, uint32_t channel) override;
  bool ChannelStuck(uint64_t now, uint32_t channel) override;
  void OnTupleAllocated(sim::Addr addr) override;
  bool VerifyTuple(sim::Addr addr) override;

  // comm::ChannelFaultHook:
  comm::FaultDecision OnPacket(uint64_t now, comm::MessageClass cls,
                               db::WorkerId src, db::WorkerId dst) override;

  /// Records a host-initiated crash (the harness kills the engine and runs
  /// recovery; the scheduler only logs it so the digest covers it).
  void RecordCrash(uint64_t cycle);

  /// Recomputes every registered tuple guard and returns the addresses
  /// whose stored bytes no longer match — i.e. corruption that WOULD be
  /// detected on access. A flipped tuple absent from this list would be a
  /// silent corruption (CRC failed to catch it); the chaos smoke test
  /// asserts that never happens.
  std::vector<sim::Addr> ScrubAll();

  /// Addresses whose guarded bytes were bit-flipped (deduplicated).
  const std::vector<sim::Addr>& flipped_tuples() const {
    return flipped_tuples_;
  }

  const std::vector<FaultEvent>& events() const { return events_; }

  /// CRC32 over the serialized event schedule: two runs with the same seed
  /// and workload must produce identical digests.
  uint32_t ScheduleDigest() const;

  /// Dumps `injected/<class>`, `detected/...` counters under `scope`
  /// (published by benches under the `fault/` namespace).
  void CollectStats(StatsScope scope) const;

  uint64_t guarded_tuples() const {
    uint64_t n = 0;
    for (const ArenaGuards& ag : arena_guards_) n += ag.guard_addrs.size();
    return n;
  }
  uint64_t corruption_checks() const {
    uint64_t n = 0;
    for (const ArenaGuards& ag : arena_guards_) n += ag.checks;
    return n;
  }
  uint64_t corruption_detected() const {
    uint64_t n = 0;
    for (const ArenaGuards& ag : arena_guards_) n += ag.detected;
    return n;
  }

 private:
  /// CRC32 over the tuple's immutable "shape" bytes (height, key_len,
  /// payload_len at [addr+17, addr+24)) and key bytes. Timestamps, flags
  /// and links are mutable during normal execution and deliberately
  /// excluded, so guards never need rewriting after registration.
  uint32_t ComputeGuard(sim::Addr addr) const;

  /// Flips one schedule-chosen bit inside the guarded region of a random
  /// guarded tuple.
  void FlipRandomBit(uint64_t cycle);

  /// Draws the next fire cycle after `from` for a per-cycle Bernoulli
  /// stream of probability `rate`, via geometric gap sampling (one RNG
  /// draw per event instead of one per cycle). This is what lets the
  /// scheduler advertise its schedule to the event-driven simulator; both
  /// simulation modes run the same precomputed schedule, so fault timing
  /// and digests are identical between them.
  uint64_t ScheduleNext(uint64_t from, double rate);

  FaultConfig config_;
  core::BionicDb* engine_ = nullptr;
  sim::DramMemory* dram_ = nullptr;

  Rng schedule_rng_;  // advanced once per scheduled event
  Rng packet_rng_;    // advanced once per transmitted packet

  struct ChannelWindows {
    uint64_t spike_until = 0;
    uint64_t stuck_until = 0;
    // Next scheduled injection per stream (kNeverWakes = stream disabled
    // or exhausted past the representable horizon).
    uint64_t spike_next = sim::kNeverWakes;
    uint64_t stuck_next = sim::kNeverWakes;
  };
  std::vector<ChannelWindows> channels_;
  uint64_t bitflip_next_ = sim::kNeverWakes;
  uint64_t freeze_next_ = sim::kNeverWakes;

  // Guard tables, one per DRAM arena. The vector gives O(1) random victim
  // selection; the map gives O(log n) verification (std::map keeps ScrubAll
  // order deterministic — arenas are disjoint ascending address ranges, so
  // arena-order iteration equals global address order). The per-arena split
  // matters for island-parallel execution: OnTupleAllocated/VerifyTuple are
  // called from the island owning the arena, so each slot is thread-
  // confined and its registration order is mode-independent. FlipRandomBit
  // indexes the arena-order concatenation, which is therefore identical in
  // serial and parallel runs.
  struct ArenaGuards {
    std::map<sim::Addr, uint32_t> guards;
    std::vector<sim::Addr> guard_addrs;
    uint64_t checks = 0;
    uint64_t detected = 0;
  };
  ArenaGuards& GuardsFor(sim::Addr addr);
  std::vector<ArenaGuards> arena_guards_;
  std::vector<sim::Addr> flipped_tuples_;

  std::vector<FaultEvent> events_;
  CounterSet counters_;
};

}  // namespace bionicdb::fault

#endif  // BIONICDB_FAULT_FAULT_H_
