#include "fault/fault.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "db/tuple.h"

namespace bionicdb::fault {

const char* FaultEventKindName(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kDramSpike:
      return "dram_spike";
    case FaultEvent::Kind::kDramStuck:
      return "dram_stuck";
    case FaultEvent::Kind::kBitFlip:
      return "bit_flip";
    case FaultEvent::Kind::kCommDrop:
      return "comm_drop";
    case FaultEvent::Kind::kCommDup:
      return "comm_dup";
    case FaultEvent::Kind::kCommDelay:
      return "comm_delay";
    case FaultEvent::Kind::kWorkerFreeze:
      return "worker_freeze";
    case FaultEvent::Kind::kCrash:
      return "crash";
  }
  return "unknown";
}

FaultScheduler::FaultScheduler(const FaultConfig& config)
    : sim::Component("fault_scheduler"),
      config_(config),
      schedule_rng_(config.seed),
      packet_rng_(config.seed ^ 0x5DEECE66Dull) {}

void FaultScheduler::Attach(core::BionicDb* engine) {
  engine_ = engine;
  dram_ = &engine->simulator().dram();
  channels_.assign(engine->options().timing.dram_channels, ChannelWindows{});
  if (arena_guards_.size() < dram_->n_arenas()) {
    arena_guards_.resize(dram_->n_arenas());
  }
  // Precompute each stream's first fire (geometric gaps). Draw order is
  // fixed — per channel spike then stuck, then bitflip, then freeze — so a
  // seed maps to one schedule regardless of simulation mode.
  const uint64_t start = engine->simulator().now();
  for (ChannelWindows& cw : channels_) {
    if (config_.dram_spike_rate > 0) {
      cw.spike_next = ScheduleNext(start, config_.dram_spike_rate);
    }
    if (config_.dram_stuck_rate > 0) {
      cw.stuck_next = ScheduleNext(start, config_.dram_stuck_rate);
    }
  }
  if (config_.bitflip_rate > 0) {
    bitflip_next_ = ScheduleNext(start, config_.bitflip_rate);
  }
  if (config_.worker_freeze_rate > 0) {
    freeze_next_ = ScheduleNext(start, config_.worker_freeze_rate);
  }
  dram_->set_fault_hook(this);
  engine->fabric().set_fault_hook(this);
  if (config_.comm_faults_enabled() &&
      !engine->fabric().reliability().enabled) {
    engine->fabric().set_reliability(comm::ReliabilityConfig{.enabled = true});
  }
  engine->simulator().AddComponent(this);
}

void FaultScheduler::Detach() {
  if (engine_ == nullptr) return;
  dram_->set_fault_hook(nullptr);
  engine_->fabric().set_fault_hook(nullptr);
  engine_ = nullptr;
  dram_ = nullptr;
}

uint64_t FaultScheduler::ScheduleNext(uint64_t from, double rate) {
  // Geometric gap between successes of a per-cycle Bernoulli(rate) draw:
  // P(gap = k) = (1-rate)^(k-1) * rate, sampled by inversion.
  const double u = schedule_rng_.NextDouble();  // in [0, 1)
  const double g = std::floor(std::log1p(-u) / std::log1p(-rate)) + 1.0;
  // NaN/inf/overflow (tiny rates can push the gap past uint64 range): the
  // stream never fires within the simulation horizon.
  if (!(g < 9e18)) return sim::kNeverWakes;
  uint64_t gap = uint64_t(g);
  if (gap < 1) gap = 1;
  const uint64_t next = from + gap;
  return next < from ? sim::kNeverWakes : next;
}

void FaultScheduler::Tick(uint64_t cycle) {
  if (engine_ == nullptr || !config_.any_enabled()) return;
  for (uint32_t ch = 0; ch < uint32_t(channels_.size()); ++ch) {
    ChannelWindows& cw = channels_[ch];
    while (cw.spike_next <= cycle) {
      const uint64_t at = cw.spike_next;
      cw.spike_until = at + config_.dram_spike_duration;
      counters_.Add("injected/dram_spike");
      events_.push_back(
          {at, FaultEvent::Kind::kDramSpike, ch, cw.spike_until});
      cw.spike_next = ScheduleNext(at, config_.dram_spike_rate);
    }
    while (cw.stuck_next <= cycle) {
      const uint64_t at = cw.stuck_next;
      cw.stuck_until = at + config_.dram_stuck_duration;
      counters_.Add("injected/dram_stuck");
      events_.push_back(
          {at, FaultEvent::Kind::kDramStuck, ch, cw.stuck_until});
      cw.stuck_next = ScheduleNext(at, config_.dram_stuck_rate);
    }
  }
  while (bitflip_next_ <= cycle) {
    const uint64_t at = bitflip_next_;
    // A fire with no guarded tuples yet injects nothing; the stream keeps
    // its cadence either way (mode-independent RNG consumption).
    if (guarded_tuples() > 0) FlipRandomBit(at);
    bitflip_next_ = ScheduleNext(at, config_.bitflip_rate);
  }
  while (freeze_next_ <= cycle) {
    const uint64_t at = freeze_next_;
    uint32_t w =
        uint32_t(schedule_rng_.NextUint64(engine_->options().n_workers));
    engine_->worker(w).FreezeUntil(at + config_.worker_freeze_cycles);
    counters_.Add("injected/worker_freeze");
    events_.push_back({at, FaultEvent::Kind::kWorkerFreeze, w,
                       config_.worker_freeze_cycles});
    freeze_next_ = ScheduleNext(at, config_.worker_freeze_rate);
  }
}

uint64_t FaultScheduler::NextWakeCycle(uint64_t now) const {
  if (engine_ == nullptr || !config_.any_enabled()) return sim::kNeverWakes;
  uint64_t wake = std::min(bitflip_next_, freeze_next_);
  for (const ChannelWindows& cw : channels_) {
    wake = std::min(wake, std::min(cw.spike_next, cw.stuck_next));
  }
  return wake > now ? wake : now + 1;
}

uint64_t FaultScheduler::ExtraLatency(uint64_t now, uint32_t channel) {
  if (channel >= channels_.size()) return 0;
  return now < channels_[channel].spike_until
             ? config_.dram_spike_extra_cycles
             : 0;
}

bool FaultScheduler::ChannelStuck(uint64_t now, uint32_t channel) {
  return channel < channels_.size() && now < channels_[channel].stuck_until;
}

FaultScheduler::ArenaGuards& FaultScheduler::GuardsFor(sim::Addr addr) {
  uint32_t arena = dram_->ArenaOf(addr);
  return arena_guards_[arena < arena_guards_.size() ? arena : 0];
}

void FaultScheduler::OnTupleAllocated(sim::Addr addr) {
  ArenaGuards& ag = GuardsFor(addr);
  auto [it, inserted] = ag.guards.emplace(addr, 0);
  it->second = ComputeGuard(addr);
  if (inserted) ag.guard_addrs.push_back(addr);
}

bool FaultScheduler::VerifyTuple(sim::Addr addr) {
  ArenaGuards& ag = GuardsFor(addr);
  auto it = ag.guards.find(addr);
  if (it == ag.guards.end()) return true;  // unguarded (pre-attach) tuple
  ++ag.checks;
  if (ComputeGuard(addr) == it->second) return true;
  // Arena-confined counting only: the global CounterSet is not touched
  // here because this path runs on island threads under parallel
  // execution; CollectStats folds the per-arena totals back in.
  ++ag.detected;
  return false;
}

comm::FaultDecision FaultScheduler::OnPacket(uint64_t now,
                                             comm::MessageClass cls,
                                             db::WorkerId src,
                                             db::WorkerId dst) {
  // Digest compatibility: fault events encode the message direction, not
  // the full class — the schedule is a function of the packet stream's
  // request/response shape, which the envelope refactor preserves.
  const bool is_request = comm::IsRequestClass(cls);
  comm::FaultDecision fd;
  if (!config_.comm_faults_enabled()) return fd;
  if (config_.comm_class_mask != 0 &&
      (config_.comm_class_mask & (1u << uint32_t(cls))) == 0) {
    // Masked-out class: no fault, and no RNG consumed — the packet stream
    // of the targeted classes is independent of untargeted traffic volume.
    return fd;
  }
  if (config_.comm_drop_rate > 0 &&
      packet_rng_.NextBool(config_.comm_drop_rate)) {
    fd.drop = true;
    counters_.Add("injected/comm_drop");
    events_.push_back({now, FaultEvent::Kind::kCommDrop, src,
                       (uint64_t(dst) << 1) | (is_request ? 1 : 0)});
    return fd;
  }
  if (config_.comm_dup_rate > 0 &&
      packet_rng_.NextBool(config_.comm_dup_rate)) {
    fd.duplicate = true;
    counters_.Add("injected/comm_dup");
    events_.push_back({now, FaultEvent::Kind::kCommDup, src,
                       (uint64_t(dst) << 1) | (is_request ? 1 : 0)});
  }
  if (config_.comm_delay_rate > 0 &&
      packet_rng_.NextBool(config_.comm_delay_rate)) {
    fd.delay_cycles = config_.comm_delay_cycles;
    counters_.Add("injected/comm_delay");
    events_.push_back({now, FaultEvent::Kind::kCommDelay, src,
                       (uint64_t(dst) << 1) | (is_request ? 1 : 0)});
  }
  return fd;
}

void FaultScheduler::RecordCrash(uint64_t cycle) {
  counters_.Add("injected/crash");
  events_.push_back({cycle, FaultEvent::Kind::kCrash, 0, 0});
}

uint32_t FaultScheduler::ComputeGuard(sim::Addr addr) const {
  // Shape bytes: height (1), key_len (2), payload_len (4) at [addr+17, +24).
  uint8_t shape[7];
  dram_->ReadBytes(addr + 17, shape, sizeof shape);
  uint32_t crc = Crc32(shape, sizeof shape);
  db::TupleAccessor t(dram_, addr);
  uint16_t key_len = t.key_len();
  if (key_len > 0) {
    std::vector<uint8_t> key(key_len);
    dram_->ReadBytes(t.key_addr(), key.data(), key_len);
    crc = Crc32(key.data(), key_len, crc);
  }
  return crc;
}

void FaultScheduler::FlipRandomBit(uint64_t cycle) {
  // Victim index over the arena-order concatenation of the guard vectors
  // (identical in serial and parallel runs; see ArenaGuards).
  uint64_t idx = schedule_rng_.NextUint64(guarded_tuples());
  sim::Addr addr = sim::kNullAddr;
  for (const ArenaGuards& ag : arena_guards_) {
    if (idx < ag.guard_addrs.size()) {
      addr = ag.guard_addrs[idx];
      break;
    }
    idx -= ag.guard_addrs.size();
  }
  db::TupleAccessor t(dram_, addr);
  // Guarded region = 7 shape bytes + key bytes. Flipping outside it (links,
  // timestamps, payload) is not detectable by the shape guard and would be
  // either a wild pointer (crash, not corruption) or a payload error that a
  // commit-time payload checksum would own — out of scope here.
  uint16_t key_len = t.key_len();
  uint64_t region_bits = (7ull + key_len) * 8;
  uint64_t bit = schedule_rng_.NextUint64(region_bits);
  sim::Addr byte_addr = bit < 7 * 8 ? addr + 17 + bit / 8
                                    : t.key_addr() + (bit / 8 - 7);
  dram_->Write8(byte_addr, dram_->Read8(byte_addr) ^ uint8_t(1 << (bit % 8)));
  if (std::find(flipped_tuples_.begin(), flipped_tuples_.end(), addr) ==
      flipped_tuples_.end()) {
    flipped_tuples_.push_back(addr);
  }
  counters_.Add("injected/bit_flip");
  events_.push_back({cycle, FaultEvent::Kind::kBitFlip, addr, bit});
}

std::vector<sim::Addr> FaultScheduler::ScrubAll() {
  std::vector<sim::Addr> corrupted;
  for (const ArenaGuards& ag : arena_guards_) {
    for (const auto& [addr, crc] : ag.guards) {
      if (ComputeGuard(addr) != crc) corrupted.push_back(addr);
    }
  }
  return corrupted;
}

uint32_t FaultScheduler::ScheduleDigest() const {
  uint32_t crc = 0;
  for (const FaultEvent& e : events_) {
    uint8_t buf[25];
    for (int i = 0; i < 8; ++i) buf[i] = uint8_t(e.cycle >> (8 * i));
    buf[8] = uint8_t(e.kind);
    for (int i = 0; i < 8; ++i) buf[9 + i] = uint8_t(e.a >> (8 * i));
    for (int i = 0; i < 8; ++i) buf[17 + i] = uint8_t(e.b >> (8 * i));
    crc = Crc32(buf, sizeof buf, crc);
  }
  return crc;
}

void FaultScheduler::CollectStats(StatsScope scope) const {
  scope.SetCounter("events", events_.size());
  scope.SetCounter("guarded_tuples", guarded_tuples());
  scope.SetCounter("corruption_checks", corruption_checks());
  scope.SetCounter("corruption_detected", corruption_detected());
  scope.SetCounter("schedule_digest", ScheduleDigest());
  // "detected/corruption" is tracked per arena (VerifyTuple runs on island
  // threads); fold it into the counter view with the original key-presence
  // semantics (absent when zero).
  CounterSet merged = counters_;
  if (corruption_detected() > 0) {
    merged.Add("detected/corruption", corruption_detected());
  }
  scope.MergeCounterSet(merged);
}

}  // namespace bionicdb::fault
