#include "fault/recovery.h"

#include <cstdio>
#include <cstring>

#include "db/tuple.h"
#include "workload/ycsb.h"

namespace bionicdb::fault {

ShadowModel::ShadowModel(const log::Checkpoint& base) {
  for (const log::Checkpoint::TableDump& dump : base.dumps()) {
    Table& table = state_[{dump.table, dump.partition}];
    for (const log::Checkpoint::TupleRecord& rec : dump.tuples) {
      table[rec.key] = rec.payload;
    }
  }
}

bool ShadowModel::UpdatePayload(db::TableId table, db::PartitionId partition,
                                const KeyBytes& key, uint64_t offset,
                                const uint8_t* data, uint64_t len) {
  auto part = state_.find({table, partition});
  if (part == state_.end()) return false;
  auto it = part->second.find(key);
  if (it == part->second.end()) return false;
  if (offset + len > it->second.size()) return false;
  std::memcpy(it->second.data() + offset, data, len);
  return true;
}

void ShadowModel::Put(db::TableId table, db::PartitionId partition,
                      const KeyBytes& key, std::vector<uint8_t> payload) {
  state_[{table, partition}][key] = std::move(payload);
}

bool ShadowModel::Erase(db::TableId table, db::PartitionId partition,
                        const KeyBytes& key) {
  auto part = state_.find({table, partition});
  if (part == state_.end()) return false;
  return part->second.erase(key) > 0;
}

ShadowApplier MakeYcsbUpdateMixApplier(uint64_t records_per_partition,
                                       uint32_t accesses_per_txn,
                                       uint32_t updates_per_txn) {
  const uint32_t n = accesses_per_txn;
  const uint32_t u = std::min(updates_per_txn, n);
  return [records_per_partition, n, u](const log::LogRecord& rec,
                                       ShadowModel* shadow) {
    if (rec.input.size() < 8ull * n + 8ull * u) return false;
    for (uint32_t i = 0; i < u; ++i) {
      ShadowModel::KeyBytes key(rec.input.begin() + 8 * i,
                                rec.input.begin() + 8 * i + 8);
      db::PartitionId partition = db::PartitionId(
          db::DecodeKeyU64(key.data()) / records_per_partition);
      // The update applies the raw 8-byte value verbatim over the first 8
      // payload bytes (register store, little-endian both sides).
      if (!shadow->UpdatePayload(workload::Ycsb::kTable, partition, key,
                                 /*offset=*/0,
                                 rec.input.data() + 8ull * n + 8ull * i,
                                 8)) {
        return false;
      }
    }
    return true;
  };
}

namespace {

std::string DescribeKey(const ShadowModel::KeyBytes& key) {
  if (key.size() == 8) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "key=%llu",
                  (unsigned long long)db::DecodeKeyU64(key.data()));
    return buf;
  }
  return "key[" + std::to_string(key.size()) + "B]";
}

}  // namespace

RecoveryVerifier::Result RecoveryVerifier::Verify(
    const log::Checkpoint& base, const log::CommandLog& log,
    const ShadowApplier& applier, const db::Database& recovered) {
  Result res;
  ShadowModel shadow(base);
  for (const log::LogRecord* rec : log.ReplayOrder()) {
    if (!applier(*rec, &shadow)) {
      ++res.applier_errors;
      if (res.first_diff.empty()) {
        res.first_diff = "applier rejected a committed log record";
      }
    }
  }

  // Canonicalise the recovered engine the same way the shadow is keyed.
  log::Checkpoint actual = log::Checkpoint::Capture(recovered);
  std::map<std::pair<db::TableId, db::PartitionId>, ShadowModel::Table>
      actual_state;
  for (const log::Checkpoint::TableDump& dump : actual.dumps()) {
    ShadowModel::Table& table = actual_state[{dump.table, dump.partition}];
    for (const log::Checkpoint::TupleRecord& rec : dump.tuples) {
      table[rec.key] = rec.payload;
    }
  }

  auto note = [&res](const std::string& diff) {
    if (res.first_diff.empty()) res.first_diff = diff;
  };
  for (const auto& [part, expected] : shadow.state()) {
    const ShadowModel::Table* got = nullptr;
    auto it = actual_state.find(part);
    if (it != actual_state.end()) got = &it->second;
    for (const auto& [key, payload] : expected) {
      ++res.tuples_compared;
      const std::vector<uint8_t>* actual_payload = nullptr;
      if (got != nullptr) {
        auto found = got->find(key);
        if (found != got->end()) actual_payload = &found->second;
      }
      if (actual_payload == nullptr) {
        ++res.missing;
        note("missing after recovery: table " + std::to_string(part.first) +
             " partition " + std::to_string(part.second) + " " +
             DescribeKey(key));
      } else if (*actual_payload != payload) {
        ++res.mismatched;
        note("payload mismatch: table " + std::to_string(part.first) +
             " partition " + std::to_string(part.second) + " " +
             DescribeKey(key));
      }
    }
  }
  for (const auto& [part, got] : actual_state) {
    auto it = shadow.state().find(part);
    for (const auto& [key, payload] : got) {
      if (it == shadow.state().end() || !it->second.count(key)) {
        ++res.unexpected;
        note("unexpected after recovery: table " +
             std::to_string(part.first) + " partition " +
             std::to_string(part.second) + " " + DescribeKey(key));
      }
    }
  }
  res.equivalent = res.missing == 0 && res.unexpected == 0 &&
                   res.mismatched == 0 && res.applier_errors == 0;
  return res;
}

}  // namespace bionicdb::fault
