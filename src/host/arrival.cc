#include "host/arrival.h"

#include <algorithm>
#include <cmath>

namespace bionicdb::host {

ArrivalProcess::ArrivalProcess(const ArrivalOptions& options, double clock_mhz)
    : options_(options), rng_(options.seed) {
  const double cycles_per_second = clock_mhz * 1e6;
  const double mean_rate =
      std::max(options.offered_tps, 1e-9) / cycles_per_second;  // per cycle
  if (options_.process == ArrivalOptions::Process::kPoisson) {
    base_interval_ = burst_interval_ = 1.0 / mean_rate;
    return;
  }
  // MMPP-2: pick the base rate so that
  //   base_rate * (1 - f) + multiplier * base_rate * f == mean_rate.
  const double f = std::clamp(options.burst_fraction, 0.001, 0.999);
  const double m = std::max(options.burst_multiplier, 1.0);
  const double base_rate = mean_rate / (1.0 - f + m * f);
  base_interval_ = 1.0 / base_rate;
  burst_interval_ = 1.0 / (m * base_rate);
  base_sojourn_ = options.mean_burst_cycles * (1.0 - f) / f;
  state_end_ = ExpDraw(base_sojourn_);
}

double ArrivalProcess::ExpDraw(double mean_cycles) {
  // Inverse CDF; 1 - u is in (0,1], so the log argument never hits zero.
  return -std::log(1.0 - rng_.NextDouble()) * mean_cycles;
}

uint64_t ArrivalProcess::Next() {
  if (options_.process == ArrivalOptions::Process::kPoisson) {
    now_ += ExpDraw(base_interval_);
    return uint64_t(now_);
  }
  for (;;) {
    const double dt = ExpDraw(in_burst_ ? burst_interval_ : base_interval_);
    if (now_ + dt <= state_end_) {
      now_ += dt;
      return uint64_t(now_);
    }
    // No arrival before the state switch: jump to it and redraw — exact for
    // a Poisson process thanks to memorylessness.
    now_ = state_end_;
    in_burst_ = !in_burst_;
    state_end_ = now_ + ExpDraw(in_burst_ ? options_.mean_burst_cycles
                                          : base_sojourn_);
  }
}

}  // namespace bionicdb::host
