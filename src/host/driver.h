// Host-side benchmark driver.
//
// The host CPU's runtime role in BionicDB is thin (paper section 4.2):
// populate input transaction blocks, signal the FPGA, and collect results.
// This driver adds the one policy the hardware does not implement — client
// retry of transactions aborted by concurrency control — and the
// measurement plumbing every bench binary shares.
#ifndef BIONICDB_HOST_DRIVER_H_
#define BIONICDB_HOST_DRIVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "core/engine.h"
#include "db/txn_block.h"
#include "host/arrival.h"

namespace bionicdb::host {

struct RunResult {
  uint64_t submitted = 0;
  uint64_t committed = 0;
  /// Transactions still aborted after the retry budget, or stuck mid-flight
  /// when a Drain cycle budget ran out. submitted == committed + failed
  /// holds on return — the driver aborts the process if its accounting
  /// ever breaks that invariant.
  uint64_t failed = 0;
  uint64_t retries = 0;
  uint64_t cycles = 0;
  double tps = 0;
  /// Host wall-clock seconds spent simulating this run (simulator speed
  /// instrumentation — not a property of the simulated hardware).
  double wall_seconds = 0;

  /// Committed transactions per second at the engine clock.
  double Mtps() const { return tps / 1e6; }
  /// Host-side simulation speed (simulated cycles per wall second).
  double SimCyclesPerSecond() const {
    return wall_seconds > 0 ? double(cycles) / wall_seconds : 0;
  }
};

/// One queued transaction: which worker's input queue it enters.
using TxnList = std::vector<std::pair<db::WorkerId, sim::Addr>>;

/// Submits every transaction, drains the engine, and (optionally) retries
/// aborted blocks — resetting them to pending so they re-execute with a
/// fresh timestamp — until all commit or `max_rounds` passes elapse.
/// Returns committed-throughput statistics over the elapsed cycles.
RunResult RunToCompletion(core::BionicDb* engine, const TxnList& txns,
                          bool retry_aborts = true, uint32_t max_rounds = 50);

/// Hardware threads available to parallel island simulation
/// (TimingConfig::parallel_hosts) on this host, never reported as zero.
/// Benches use it to decide whether a wall-clock speedup floor is a fair
/// assertion (a 1-core CI container cannot beat its own serial run).
uint32_t HostHardwareThreads();

// --- Closed-loop driving with latency measurement -------------------------

/// Produces the next transaction block for `worker` (a fresh allocation per
/// call).
using TxnFactory = std::function<sim::Addr(db::WorkerId)>;

struct ClosedLoopOptions {
  /// Outstanding transactions the "client" keeps per worker (the offered
  /// load; 1 = pure latency measurement, large = throughput measurement).
  uint32_t inflight_per_worker = 4;
  uint64_t txns_per_worker = 500;
  /// Simulation quantum between completion checks; bounds the latency
  /// measurement resolution.
  uint64_t check_quantum_cycles = 50;
  bool retry_aborts = true;
  uint64_t max_cycles = 4ull << 30;
};

struct ClosedLoopResult {
  /// Transactions the loop handed to the engine (distinct blocks; in-place
  /// retries of an aborted block are counted under `retries` instead).
  uint64_t submitted = 0;
  uint64_t committed = 0;
  /// Transactions dropped from the closed loop: still aborted with
  /// retry_aborts off, or still unfinished (queued, running, or mid-retry)
  /// when max_cycles ran out. submitted == committed + failed always holds
  /// on return — the driver aborts the process if its own accounting ever
  /// breaks that invariant.
  uint64_t failed = 0;
  uint64_t retries = 0;
  uint64_t cycles = 0;
  double tps = 0;
  /// Host wall-clock seconds spent simulating this run.
  double wall_seconds = 0;
  /// End-to-end commit latency per transaction in cycles (submission to
  /// observed commit, across retries), with quantiles.
  Summary latency_cycles;

  /// Host-side simulation speed (simulated cycles per wall second).
  double SimCyclesPerSecond() const {
    return wall_seconds > 0 ? double(cycles) / wall_seconds : 0;
  }
};

/// Drives the engine like a closed-loop client: keeps `inflight_per_worker`
/// transactions outstanding per worker, measures each transaction's commit
/// latency, retries aborts in place. This is the throughput/latency-curve
/// harness (the open-loop RunToCompletion measures throughput only, since
/// pre-queued blocks spend arbitrary time waiting in the input queue).
ClosedLoopResult RunClosedLoop(core::BionicDb* engine,
                               const TxnFactory& factory,
                               const ClosedLoopOptions& options);

// --- Cluster-aware closed-loop driving ------------------------------------

/// Closed-loop result for a sharded multi-chip engine: the same loop as
/// RunClosedLoop, with every outcome additionally attributed to the chip
/// whose worker ran the transaction. The cluster-level latency summary is
/// the count-weighted merge (Summary::MergeFrom) of the per-chip summaries
/// — merging the digests, never averaging per-chip quantiles — and the
/// cluster totals are the sums of the per-chip rows, counted exactly once.
struct ClusterRunResult {
  uint64_t submitted = 0;
  uint64_t committed = 0;
  uint64_t failed = 0;
  uint64_t retries = 0;
  uint64_t cycles = 0;
  double tps = 0;
  double wall_seconds = 0;
  Summary latency_cycles;

  struct ChipResult {
    uint64_t submitted = 0;
    uint64_t committed = 0;
    uint64_t failed = 0;
    uint64_t retries = 0;
    Summary latency_cycles;
  };
  std::vector<ChipResult> chips;

  double SimCyclesPerSecond() const {
    return wall_seconds > 0 ? double(cycles) / wall_seconds : 0;
  }
};

/// RunClosedLoop for a sharded engine: `workers_per_chip` groups the
/// engine's worker id space into chips (it must match the engine's cluster
/// configuration; pass the engine's total worker count or 0 for a single
/// chip). submitted == committed + failed holds on return, per chip and in
/// total.
ClusterRunResult RunClusterClosedLoop(core::BionicDb* engine,
                                      uint32_t workers_per_chip,
                                      const TxnFactory& factory,
                                      const ClosedLoopOptions& options);

// --- Open-loop driving with admission control -----------------------------

struct OpenLoopOptions {
  /// Arrival process (Poisson or bursty MMPP) and offered load.
  ArrivalOptions arrival;
  /// Total transactions the client offers before the run winds down.
  uint64_t total_txns = 2000;
  /// Bounded per-worker admission queue: an arrival finding its worker's
  /// queue full is shed immediately (counted, never executed).
  uint32_t admission_queue_depth = 64;
  /// Hardware-side outstanding blocks per worker; queued transactions wait
  /// in the admission queue until a slot frees (that wait is part of the
  /// measured latency).
  uint32_t inflight_per_worker = 8;
  /// Shed a queued transaction once its wait exceeds this (0 = no timeout).
  uint64_t queue_timeout_cycles = 0;
  /// Simulation quantum between arrival/completion checks; bounds both the
  /// admission resolution and the latency measurement resolution.
  uint64_t check_quantum_cycles = 50;
  bool retry_aborts = true;
  uint64_t max_cycles = 4ull << 30;
};

struct OpenLoopResult {
  /// Arrivals the client offered to the system (admitted or not).
  uint64_t submitted = 0;
  /// Arrivals that entered an admission queue (submitted - shed_queue_full).
  uint64_t admitted = 0;
  /// Admitted transactions handed to the hardware input queues.
  uint64_t dispatched = 0;
  uint64_t committed = 0;
  /// Dispatched transactions that did not commit: still aborted with
  /// retry_aborts off, or in flight when max_cycles ran out.
  uint64_t failed = 0;
  /// Load-shedding total (= shed_queue_full + shed_timeout). The driver
  /// aborts the process unless submitted == committed + failed + shed on
  /// return.
  uint64_t shed = 0;
  uint64_t shed_queue_full = 0;
  /// Queued longer than queue_timeout_cycles, or still queued at the
  /// max_cycles deadline.
  uint64_t shed_timeout = 0;
  uint64_t retries = 0;
  uint64_t cycles = 0;
  /// Measured offered / committed rates over the elapsed cycles (0 when no
  /// cycles elapsed — a zero-arrival run divides nothing).
  double offered_tps = 0;
  double goodput_tps = 0;
  /// Host wall-clock seconds spent simulating this run.
  double wall_seconds = 0;
  /// Arrival-to-commit latency in cycles — from the generated arrival
  /// instant (not admission, not dispatch), so admission-queue wait is
  /// included. p999 is tail-exact via the Summary's bucketed path.
  Summary latency_cycles;

  /// Host-side simulation speed (simulated cycles per wall second).
  double SimCyclesPerSecond() const {
    return wall_seconds > 0 ? double(cycles) / wall_seconds : 0;
  }
};

/// Drives the engine open-loop: transactions arrive on the seeded timeline
/// of `options.arrival` regardless of how the engine keeps up, wait in a
/// bounded per-worker admission queue (or are shed), and are dispatched to
/// the hardware as inflight slots free. Deterministic for a fixed option
/// set: the arrival timeline, worker routing and every reported stat are
/// bit-identical across the simulator's serial, event-driven and parallel
/// modes.
OpenLoopResult RunOpenLoop(core::BionicDb* engine, const TxnFactory& factory,
                           const OpenLoopOptions& options);

/// Writes the open-loop run metrics under `scope` (the "run/..." subtree of
/// a bench report): counters, offered/goodput rates, and the latency
/// summary plus explicit latency/p50|p99|p999 gauges. Wall-clock fields
/// (wall_seconds, sim_cycles_per_second) are host measurement provenance,
/// not simulated results; `include_wall_clock = false` lets determinism
/// tests compare the simulated portion byte-for-byte.
void RecordOpenLoopStats(const OpenLoopResult& result, StatsScope scope,
                         bool include_wall_clock = true);

// --- Fleet-scale sweep fan-out -------------------------------------------

/// One sweep configuration: `run` builds its own engine, drives the
/// workload, and writes everything the report should carry for this point
/// into the registry. The body must be self-contained (no shared mutable
/// state with other jobs) — each job owns a full simulated machine.
struct SweepJob {
  std::string label;
  std::function<void(StatsRegistry*)> run;
};

/// One finished sweep point, in job order.
struct SweepResult {
  std::string label;
  StatsRegistry stats;
};

/// Runs every job, fanning out across host cores with the same
/// spawn-on-demand worker scheme the parallel-island simulator pool uses:
/// the calling thread is worker 0 and spawned threads claim jobs from a
/// shared cursor, so an N-point sweep costs max(points/cores) engine runs
/// of wall clock instead of their sum. Results come back in job order
/// regardless of completion order, and each job's registry is written only
/// by the thread that ran it, so a sweep's merged report is deterministic
/// for a fixed job list. `max_hosts` caps the fan-out (0 = all hardware
/// threads); jobs running concurrently must each stay serial inside
/// (TimingConfig::parallel_hosts == 0) or the two pools fight for cores.
std::vector<SweepResult> RunSweep(std::vector<SweepJob> jobs,
                                  uint32_t max_hosts = 0);

}  // namespace bionicdb::host

#endif  // BIONICDB_HOST_DRIVER_H_
