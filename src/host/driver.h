// Host-side benchmark driver.
//
// The host CPU's runtime role in BionicDB is thin (paper section 4.2):
// populate input transaction blocks, signal the FPGA, and collect results.
// This driver adds the one policy the hardware does not implement — client
// retry of transactions aborted by concurrency control — and the
// measurement plumbing every bench binary shares.
#ifndef BIONICDB_HOST_DRIVER_H_
#define BIONICDB_HOST_DRIVER_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "core/engine.h"
#include "db/txn_block.h"

namespace bionicdb::host {

struct RunResult {
  uint64_t submitted = 0;
  uint64_t committed = 0;
  /// Transactions still aborted after the retry budget.
  uint64_t failed = 0;
  uint64_t retries = 0;
  uint64_t cycles = 0;
  double tps = 0;
  /// Host wall-clock seconds spent simulating this run (simulator speed
  /// instrumentation — not a property of the simulated hardware).
  double wall_seconds = 0;

  /// Committed transactions per second at the engine clock.
  double Mtps() const { return tps / 1e6; }
  /// Host-side simulation speed (simulated cycles per wall second).
  double SimCyclesPerSecond() const {
    return wall_seconds > 0 ? double(cycles) / wall_seconds : 0;
  }
};

/// One queued transaction: which worker's input queue it enters.
using TxnList = std::vector<std::pair<db::WorkerId, sim::Addr>>;

/// Submits every transaction, drains the engine, and (optionally) retries
/// aborted blocks — resetting them to pending so they re-execute with a
/// fresh timestamp — until all commit or `max_rounds` passes elapse.
/// Returns committed-throughput statistics over the elapsed cycles.
RunResult RunToCompletion(core::BionicDb* engine, const TxnList& txns,
                          bool retry_aborts = true, uint32_t max_rounds = 50);

/// Hardware threads available to parallel island simulation
/// (TimingConfig::parallel_hosts) on this host, never reported as zero.
/// Benches use it to decide whether a wall-clock speedup floor is a fair
/// assertion (a 1-core CI container cannot beat its own serial run).
uint32_t HostHardwareThreads();

// --- Closed-loop driving with latency measurement -------------------------

/// Produces the next transaction block for `worker` (a fresh allocation per
/// call).
using TxnFactory = std::function<sim::Addr(db::WorkerId)>;

struct ClosedLoopOptions {
  /// Outstanding transactions the "client" keeps per worker (the offered
  /// load; 1 = pure latency measurement, large = throughput measurement).
  uint32_t inflight_per_worker = 4;
  uint64_t txns_per_worker = 500;
  /// Simulation quantum between completion checks; bounds the latency
  /// measurement resolution.
  uint64_t check_quantum_cycles = 50;
  bool retry_aborts = true;
  uint64_t max_cycles = 4ull << 30;
};

struct ClosedLoopResult {
  uint64_t committed = 0;
  /// Transactions dropped from the closed loop still aborted (only possible
  /// with retry_aborts off — retried aborts either commit or run forever).
  uint64_t failed = 0;
  uint64_t retries = 0;
  uint64_t cycles = 0;
  double tps = 0;
  /// Host wall-clock seconds spent simulating this run.
  double wall_seconds = 0;
  /// End-to-end commit latency per transaction in cycles (submission to
  /// observed commit, across retries), with quantiles.
  Summary latency_cycles;

  /// Host-side simulation speed (simulated cycles per wall second).
  double SimCyclesPerSecond() const {
    return wall_seconds > 0 ? double(cycles) / wall_seconds : 0;
  }
};

/// Drives the engine like a closed-loop client: keeps `inflight_per_worker`
/// transactions outstanding per worker, measures each transaction's commit
/// latency, retries aborts in place. This is the throughput/latency-curve
/// harness (the open-loop RunToCompletion measures throughput only, since
/// pre-queued blocks spend arbitrary time waiting in the input queue).
ClosedLoopResult RunClosedLoop(core::BionicDb* engine,
                               const TxnFactory& factory,
                               const ClosedLoopOptions& options);

}  // namespace bionicdb::host

#endif  // BIONICDB_HOST_DRIVER_H_
