#include "host/driver.h"

#include <chrono>
#include <thread>

#include "common/random.h"

namespace bionicdb::host {

namespace {
double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

RunResult RunToCompletion(core::BionicDb* engine, const TxnList& txns,
                          bool retry_aborts, uint32_t max_rounds) {
  RunResult result;
  result.submitted = txns.size();
  const auto wall_start = std::chrono::steady_clock::now();
  const uint64_t start_cycle = engine->now();
  const uint64_t committed_before = engine->TotalCommitted();

  TxnList pending = txns;
  for (uint32_t round = 0; round < max_rounds && !pending.empty(); ++round) {
    for (const auto& [worker, block] : pending) {
      engine->Submit(worker, block);
    }
    engine->Drain();
    if (!retry_aborts) {
      for (const auto& [worker, block] : pending) {
        db::TxnBlock b(&engine->simulator().dram(), block);
        if (b.state() != db::TxnState::kCommitted) ++result.failed;
      }
      pending.clear();
      break;
    }
    TxnList next;
    for (const auto& [worker, block] : pending) {
      db::TxnBlock b(&engine->simulator().dram(), block);
      if (b.state() != db::TxnState::kCommitted) {
        b.set_state(db::TxnState::kPending);
        next.emplace_back(worker, block);
      }
    }
    result.retries += next.size();
    // Shuffle the retry order: the simulator is deterministic, so two
    // transactions that mutually abort (e.g. cross-partition writers
    // touching each other's rows in opposite order) would otherwise replay
    // the exact same interleaving forever.
    Rng shuffle_rng(round * 0x9e3779b9ull + 1);
    for (size_t i = next.size(); i > 1; --i) {
      std::swap(next[i - 1], next[shuffle_rng.NextUint64(i)]);
    }
    pending = std::move(next);
  }
  result.failed += pending.size();
  result.cycles = engine->now() - start_cycle;
  result.committed = engine->TotalCommitted() - committed_before;
  result.tps =
      engine->options().timing.Throughput(result.committed, result.cycles);
  result.wall_seconds = SecondsSince(wall_start);
  return result;
}

uint32_t HostHardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? n : 1;  // 0 = "unknown" per the standard
}

ClosedLoopResult RunClosedLoop(core::BionicDb* engine,
                               const TxnFactory& factory,
                               const ClosedLoopOptions& options) {
  struct Outstanding {
    sim::Addr block;
    uint64_t submitted_at;
  };
  const uint32_t workers = engine->database().n_partitions();
  std::vector<std::vector<Outstanding>> outstanding(workers);
  std::vector<uint64_t> remaining(workers, options.txns_per_worker);

  ClosedLoopResult result;
  sim::DramMemory* dram = &engine->simulator().dram();
  const auto wall_start = std::chrono::steady_clock::now();
  const uint64_t start_cycle = engine->now();
  const uint64_t deadline = start_cycle + options.max_cycles;
  const uint64_t target = uint64_t(workers) * options.txns_per_worker;

  auto refill = [&](db::WorkerId w) {
    while (outstanding[w].size() < options.inflight_per_worker &&
           remaining[w] > 0) {
      sim::Addr block = factory(w);
      engine->Submit(w, block);
      outstanding[w].push_back(Outstanding{block, engine->now()});
      --remaining[w];
    }
  };
  for (uint32_t w = 0; w < workers; ++w) refill(w);

  while (result.committed < target && engine->now() < deadline) {
    engine->Step(options.check_quantum_cycles);
    for (uint32_t w = 0; w < workers; ++w) {
      auto& queue = outstanding[w];
      for (size_t i = 0; i < queue.size();) {
        db::TxnBlock block(dram, queue[i].block);
        db::TxnState state = block.state();
        if (state == db::TxnState::kCommitted) {
          result.latency_cycles.Add(
              double(engine->now() - queue[i].submitted_at));
          ++result.committed;
          queue[i] = queue.back();
          queue.pop_back();
          continue;
        }
        if (state == db::TxnState::kAborted && options.retry_aborts) {
          // In-place retry, keeping the original submission time so the
          // measured latency is end-to-end across retries.
          block.set_state(db::TxnState::kPending);
          engine->Submit(w, queue[i].block);
          ++result.retries;
        } else if (state == db::TxnState::kAborted) {
          ++result.failed;
          queue[i] = queue.back();
          queue.pop_back();
          continue;
        }
        ++i;
      }
      refill(w);
    }
  }
  result.cycles = engine->now() - start_cycle;
  result.tps =
      engine->options().timing.Throughput(result.committed, result.cycles);
  result.wall_seconds = SecondsSince(wall_start);
  return result;
}

}  // namespace bionicdb::host
