#include "host/driver.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <thread>

#include "common/random.h"

namespace bionicdb::host {

namespace {
double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Every driver promises submitted == sum of its terminal outcomes; a
/// mismatch means transactions were silently dropped, which would corrupt
/// every rate and SLO figure built on top, so it is fatal rather than a
/// quietly-wrong report.
void CheckAccounting(const char* driver, uint64_t submitted,
                     uint64_t accounted) {
  if (submitted == accounted) return;
  std::fprintf(stderr,
               "%s: accounting invariant violated: submitted %llu != "
               "terminal outcomes %llu\n",
               driver, static_cast<unsigned long long>(submitted),
               static_cast<unsigned long long>(accounted));
  std::abort();
}
}  // namespace

RunResult RunToCompletion(core::BionicDb* engine, const TxnList& txns,
                          bool retry_aborts, uint32_t max_rounds) {
  RunResult result;
  result.submitted = txns.size();
  const auto wall_start = std::chrono::steady_clock::now();
  const uint64_t start_cycle = engine->now();
  const uint64_t committed_before = engine->TotalCommitted();

  TxnList pending = txns;
  for (uint32_t round = 0; round < max_rounds && !pending.empty(); ++round) {
    for (const auto& [worker, block] : pending) {
      engine->Submit(worker, block);
    }
    engine->Drain();
    TxnList next;
    bool drain_exhausted = false;
    for (const auto& [worker, block] : pending) {
      db::TxnBlock b(&engine->simulator().dram(), block);
      switch (b.state()) {
        case db::TxnState::kCommitted:
          break;
        case db::TxnState::kAborted:
          if (retry_aborts) {
            b.set_state(db::TxnState::kPending);
            next.emplace_back(worker, block);
          } else {
            ++result.failed;
          }
          break;
        default:
          // Still pending/running after Drain: its cycle budget ran out
          // mid-flight. Count the transaction as failed — and never
          // resubmit it, the engine still holds it queued (the pre-audit
          // code reset and resubmitted such blocks, double-enqueueing
          // them and dropping them from the failure count).
          ++result.failed;
          drain_exhausted = true;
          break;
      }
    }
    if (!retry_aborts) {
      pending.clear();
      break;
    }
    if (drain_exhausted) {
      // Out of cycles: retrying the aborted remainder cannot finish either.
      result.failed += next.size();
      pending.clear();
      break;
    }
    result.retries += next.size();
    // Shuffle the retry order: the simulator is deterministic, so two
    // transactions that mutually abort (e.g. cross-partition writers
    // touching each other's rows in opposite order) would otherwise replay
    // the exact same interleaving forever.
    Rng shuffle_rng(round * 0x9e3779b9ull + 1);
    for (size_t i = next.size(); i > 1; --i) {
      std::swap(next[i - 1], next[shuffle_rng.NextUint64(i)]);
    }
    pending = std::move(next);
  }
  result.failed += pending.size();
  result.cycles = engine->now() - start_cycle;
  result.committed = engine->TotalCommitted() - committed_before;
  result.tps =
      engine->options().timing.Throughput(result.committed, result.cycles);
  result.wall_seconds = SecondsSince(wall_start);
  CheckAccounting("RunToCompletion", result.submitted,
                  result.committed + result.failed);
  return result;
}

uint32_t HostHardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? n : 1;  // 0 = "unknown" per the standard
}

ClosedLoopResult RunClosedLoop(core::BionicDb* engine,
                               const TxnFactory& factory,
                               const ClosedLoopOptions& options) {
  struct Outstanding {
    sim::Addr block;
    uint64_t submitted_at;
  };
  const uint32_t workers = engine->database().n_partitions();
  std::vector<std::vector<Outstanding>> outstanding(workers);
  std::vector<uint64_t> remaining(workers, options.txns_per_worker);

  ClosedLoopResult result;
  sim::DramMemory* dram = &engine->simulator().dram();
  const auto wall_start = std::chrono::steady_clock::now();
  const uint64_t start_cycle = engine->now();
  const uint64_t deadline = start_cycle + options.max_cycles;
  const uint64_t target = uint64_t(workers) * options.txns_per_worker;

  auto refill = [&](db::WorkerId w) {
    while (outstanding[w].size() < options.inflight_per_worker &&
           remaining[w] > 0) {
      sim::Addr block = factory(w);
      engine->Submit(w, block);
      outstanding[w].push_back(Outstanding{block, engine->now()});
      ++result.submitted;
      --remaining[w];
    }
  };
  for (uint32_t w = 0; w < workers; ++w) refill(w);

  while (result.committed < target && engine->now() < deadline) {
    engine->Step(options.check_quantum_cycles);
    for (uint32_t w = 0; w < workers; ++w) {
      auto& queue = outstanding[w];
      for (size_t i = 0; i < queue.size();) {
        db::TxnBlock block(dram, queue[i].block);
        db::TxnState state = block.state();
        if (state == db::TxnState::kCommitted) {
          result.latency_cycles.Add(
              double(engine->now() - queue[i].submitted_at));
          ++result.committed;
          queue[i] = queue.back();
          queue.pop_back();
          continue;
        }
        if (state == db::TxnState::kAborted && options.retry_aborts) {
          // In-place retry, keeping the original submission time so the
          // measured latency is end-to-end across retries.
          block.set_state(db::TxnState::kPending);
          engine->Submit(w, queue[i].block);
          ++result.retries;
        } else if (state == db::TxnState::kAborted) {
          ++result.failed;
          queue[i] = queue.back();
          queue.pop_back();
          continue;
        }
        ++i;
      }
      refill(w);
    }
  }
  // Deadline wind-down: transactions still outstanding when max_cycles ran
  // out were submitted but will never be observed committing — count them
  // as failed instead of silently dropping them (pre-audit behaviour).
  if (result.committed < target) {
    for (uint32_t w = 0; w < workers; ++w) {
      result.failed += outstanding[w].size();
    }
  }
  result.cycles = engine->now() - start_cycle;
  result.tps =
      engine->options().timing.Throughput(result.committed, result.cycles);
  result.wall_seconds = SecondsSince(wall_start);
  CheckAccounting("RunClosedLoop", result.submitted,
                  result.committed + result.failed);
  return result;
}

ClusterRunResult RunClusterClosedLoop(core::BionicDb* engine,
                                      uint32_t workers_per_chip,
                                      const TxnFactory& factory,
                                      const ClosedLoopOptions& options) {
  struct Outstanding {
    sim::Addr block;
    uint64_t submitted_at;
  };
  const uint32_t workers = engine->database().n_partitions();
  const uint32_t wpc = workers_per_chip > 0 ? workers_per_chip : workers;
  const uint32_t n_chips = (workers + wpc - 1) / wpc;
  std::vector<std::vector<Outstanding>> outstanding(workers);
  std::vector<uint64_t> remaining(workers, options.txns_per_worker);

  ClusterRunResult result;
  result.chips.resize(n_chips);
  sim::DramMemory* dram = &engine->simulator().dram();
  const auto wall_start = std::chrono::steady_clock::now();
  const uint64_t start_cycle = engine->now();
  const uint64_t deadline = start_cycle + options.max_cycles;
  const uint64_t target = uint64_t(workers) * options.txns_per_worker;
  uint64_t committed_total = 0;

  auto chip_of = [&](uint32_t w) -> ClusterRunResult::ChipResult& {
    return result.chips[w / wpc];
  };
  auto refill = [&](db::WorkerId w) {
    while (outstanding[w].size() < options.inflight_per_worker &&
           remaining[w] > 0) {
      sim::Addr block = factory(w);
      engine->Submit(w, block);
      outstanding[w].push_back(Outstanding{block, engine->now()});
      ++chip_of(w).submitted;
      --remaining[w];
    }
  };
  for (uint32_t w = 0; w < workers; ++w) refill(w);

  while (committed_total < target && engine->now() < deadline) {
    engine->Step(options.check_quantum_cycles);
    for (uint32_t w = 0; w < workers; ++w) {
      auto& queue = outstanding[w];
      for (size_t i = 0; i < queue.size();) {
        db::TxnBlock block(dram, queue[i].block);
        db::TxnState state = block.state();
        if (state == db::TxnState::kCommitted) {
          chip_of(w).latency_cycles.Add(
              double(engine->now() - queue[i].submitted_at));
          ++chip_of(w).committed;
          ++committed_total;
          queue[i] = queue.back();
          queue.pop_back();
          continue;
        }
        if (state == db::TxnState::kAborted && options.retry_aborts) {
          block.set_state(db::TxnState::kPending);
          engine->Submit(w, queue[i].block);
          ++chip_of(w).retries;
        } else if (state == db::TxnState::kAborted) {
          ++chip_of(w).failed;
          queue[i] = queue.back();
          queue.pop_back();
          continue;
        }
        ++i;
      }
      refill(w);
    }
  }
  if (committed_total < target) {
    for (uint32_t w = 0; w < workers; ++w) {
      chip_of(w).failed += outstanding[w].size();
    }
  }
  // Cluster totals: sum the per-chip rows exactly once, and merge the
  // per-chip latency digests (count-weighted by construction — merging
  // digests is the only correct way to get a cluster p99; averaging
  // per-chip p99s is not).
  for (const auto& chip : result.chips) {
    result.submitted += chip.submitted;
    result.committed += chip.committed;
    result.failed += chip.failed;
    result.retries += chip.retries;
    result.latency_cycles.MergeFrom(chip.latency_cycles);
  }
  result.cycles = engine->now() - start_cycle;
  result.tps =
      engine->options().timing.Throughput(result.committed, result.cycles);
  result.wall_seconds = SecondsSince(wall_start);
  CheckAccounting("RunClusterClosedLoop", result.submitted,
                  result.committed + result.failed);
  return result;
}

OpenLoopResult RunOpenLoop(core::BionicDb* engine, const TxnFactory& factory,
                           const OpenLoopOptions& options) {
  struct Outstanding {
    sim::Addr block;
    uint64_t arrival;
  };
  const uint32_t workers = engine->database().n_partitions();
  const sim::TimingConfig& timing = engine->options().timing;
  ArrivalProcess arrivals(options.arrival, timing.clock_mhz);
  // Worker routing draws from its own seeded stream: a uniform split of a
  // Poisson process is again Poisson per worker, and the routing stays
  // independent of how the engine schedules the work.
  Rng route_rng(options.arrival.seed ^ 0xa02bdbf7bb3c0a7ULL);
  std::vector<std::deque<uint64_t>> queued(workers);  // arrival cycles
  std::vector<std::vector<Outstanding>> outstanding(workers);

  OpenLoopResult result;
  sim::DramMemory* dram = &engine->simulator().dram();
  const auto wall_start = std::chrono::steady_clock::now();
  const uint64_t start_cycle = engine->now();
  const uint64_t deadline = start_cycle + options.max_cycles;
  uint64_t next_arrival = options.total_txns > 0
                              ? start_cycle + arrivals.Next()
                              : UINT64_MAX;

  // Offers every arrival whose time has come: shed on a full queue,
  // enqueue otherwise. The recorded arrival cycle — not the quantum
  // boundary where the host notices it — anchors the latency measurement.
  auto admit_due = [&] {
    while (result.submitted < options.total_txns &&
           next_arrival <= engine->now()) {
      const auto w = db::WorkerId(route_rng.NextUint64(workers));
      ++result.submitted;
      if (queued[w].size() >= options.admission_queue_depth) {
        ++result.shed_queue_full;
      } else {
        queued[w].push_back(next_arrival);
        ++result.admitted;
      }
      next_arrival = result.submitted < options.total_txns
                         ? start_cycle + arrivals.Next()
                         : UINT64_MAX;
    }
  };

  // Sheds timed-out queue heads, then fills free hardware slots in arrival
  // order. Blocks are allocated only at dispatch, so shed transactions
  // never touch simulated DRAM.
  auto dispatch = [&](db::WorkerId w) {
    if (options.queue_timeout_cycles > 0) {
      while (!queued[w].empty() &&
             engine->now() - queued[w].front() >
                 options.queue_timeout_cycles) {
        queued[w].pop_front();
        ++result.shed_timeout;
      }
    }
    while (outstanding[w].size() < options.inflight_per_worker &&
           !queued[w].empty()) {
      const uint64_t arrival = queued[w].front();
      queued[w].pop_front();
      sim::Addr block = factory(w);
      engine->Submit(w, block);
      outstanding[w].push_back(Outstanding{block, arrival});
      ++result.dispatched;
    }
  };

  auto work_left = [&] {
    if (result.submitted < options.total_txns) return true;
    for (uint32_t w = 0; w < workers; ++w) {
      if (!queued[w].empty() || !outstanding[w].empty()) return true;
    }
    return false;
  };

  admit_due();
  for (uint32_t w = 0; w < workers; ++w) dispatch(w);
  while (work_left() && engine->now() < deadline) {
    engine->Step(options.check_quantum_cycles);
    admit_due();
    for (uint32_t w = 0; w < workers; ++w) {
      auto& slots = outstanding[w];
      for (size_t i = 0; i < slots.size();) {
        db::TxnBlock block(dram, slots[i].block);
        const db::TxnState state = block.state();
        if (state == db::TxnState::kCommitted) {
          result.latency_cycles.Add(double(engine->now() - slots[i].arrival));
          ++result.committed;
          slots[i] = slots.back();
          slots.pop_back();
          continue;
        }
        if (state == db::TxnState::kAborted && options.retry_aborts) {
          // In-place retry keeping the arrival time: the measured latency
          // stays end-to-end across retries.
          block.set_state(db::TxnState::kPending);
          engine->Submit(w, slots[i].block);
          ++result.retries;
        } else if (state == db::TxnState::kAborted) {
          ++result.failed;
          slots[i] = slots.back();
          slots.pop_back();
          continue;
        }
        ++i;
      }
      dispatch(w);
    }
  }
  // Deadline wind-down: in-flight transactions failed; still-queued ones
  // are shed (their wait effectively timed out with the run).
  for (uint32_t w = 0; w < workers; ++w) {
    result.failed += outstanding[w].size();
    result.shed_timeout += queued[w].size();
  }
  result.shed = result.shed_queue_full + result.shed_timeout;
  result.cycles = engine->now() - start_cycle;
  result.offered_tps = timing.Throughput(result.submitted, result.cycles);
  result.goodput_tps = timing.Throughput(result.committed, result.cycles);
  result.wall_seconds = SecondsSince(wall_start);
  CheckAccounting("RunOpenLoop", result.submitted,
                  result.committed + result.failed + result.shed);
  return result;
}

void RecordOpenLoopStats(const OpenLoopResult& result, StatsScope scope,
                         bool include_wall_clock) {
  scope.SetCounter("submitted", result.submitted);
  scope.SetCounter("admitted", result.admitted);
  scope.SetCounter("dispatched", result.dispatched);
  scope.SetCounter("committed", result.committed);
  scope.SetCounter("failed", result.failed);
  scope.SetCounter("shed", result.shed);
  scope.SetCounter("shed_queue_full", result.shed_queue_full);
  scope.SetCounter("shed_timeout", result.shed_timeout);
  scope.SetCounter("retries", result.retries);
  scope.SetCounter("cycles", result.cycles);
  scope.SetGauge("offered_tps", result.offered_tps);
  scope.SetGauge("goodput", result.goodput_tps);
  scope.SetGauge("latency/p50", result.latency_cycles.Quantile(0.5));
  scope.SetGauge("latency/p99", result.latency_cycles.Quantile(0.99));
  scope.SetGauge("latency/p999", result.latency_cycles.Quantile(0.999));
  scope.SetSummary("latency_cycles", result.latency_cycles);
  if (include_wall_clock) {
    scope.SetGauge("wall_seconds", result.wall_seconds);
    scope.SetGauge("sim_cycles_per_second", result.SimCyclesPerSecond());
  }
}

std::vector<SweepResult> RunSweep(std::vector<SweepJob> jobs,
                                  uint32_t max_hosts) {
  std::vector<SweepResult> results(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) results[i].label = jobs[i].label;
  if (jobs.empty()) return results;
  uint32_t width = max_hosts == 0 ? HostHardwareThreads()
                                  : std::min(max_hosts, HostHardwareThreads());
  width = uint32_t(std::min<size_t>(width, jobs.size()));
  if (width == 0) width = 1;
  // Shared claim cursor: each worker owns whichever jobs it claims, and a
  // job's registry is touched only by that worker until the joins below
  // publish everything to the caller.
  std::atomic<size_t> next{0};
  auto work = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      jobs[i].run(&results[i].stats);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(width - 1);
  for (uint32_t k = 1; k < width; ++k) pool.emplace_back(work);
  work();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();
  return results;
}

}  // namespace bionicdb::host
