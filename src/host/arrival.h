// Seeded arrival-process generators for open-loop driving.
//
// Closed-loop harnesses (RunClosedLoop) regulate themselves: a slow server
// slows its own clients, which hides queueing collapse. An open-loop client
// keeps offering transactions at its own rate regardless of how the server
// is doing — the model production OLTP systems are provisioned against.
// These generators produce the arrival timeline for that client as a pure
// function of their seed, in simulated cycles, so a sweep is bit-for-bit
// reproducible and identical across the simulator's execution modes.
#ifndef BIONICDB_HOST_ARRIVAL_H_
#define BIONICDB_HOST_ARRIVAL_H_

#include <cstdint>

#include "common/random.h"

namespace bionicdb::host {

struct ArrivalOptions {
  enum class Process {
    /// Memoryless arrivals at a constant rate (exponential inter-arrivals).
    kPoisson,
    /// Two-state Markov-modulated Poisson process: a base state and a
    /// burst state with a higher rate, exponential sojourns in each. Same
    /// long-run offered load as kPoisson, much heavier short-term queueing.
    kBursty,
  };

  Process process = Process::kPoisson;
  /// Offered load in transactions per second at the engine clock
  /// (time-averaged over both states for kBursty).
  double offered_tps = 1e6;
  /// kBursty: burst-state arrival rate = multiplier x base-state rate.
  double burst_multiplier = 8.0;
  /// kBursty: long-run fraction of time spent in the burst state.
  double burst_fraction = 0.125;
  /// kBursty: mean burst sojourn in cycles. The base-state sojourn is
  /// derived from burst_fraction so the long-run rate stays offered_tps.
  double mean_burst_cycles = 20'000;
  uint64_t seed = 42;
};

/// Deterministic arrival-time generator: each Next() call returns the
/// absolute simulated cycle of the next arrival (non-decreasing). The
/// timeline depends only on the options and the engine clock rate — never
/// on what the simulator did with earlier arrivals.
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalOptions& options, double clock_mhz);

  /// Cycle of the next arrival (relative to construction at cycle 0).
  uint64_t Next();

  const ArrivalOptions& options() const { return options_; }

 private:
  /// Exponential draw with the given mean, in cycles.
  double ExpDraw(double mean_cycles);

  ArrivalOptions options_;
  Rng rng_;
  double now_ = 0;  // continuous time in cycles
  // kBursty state machine.
  bool in_burst_ = false;
  double state_end_ = 0;
  double base_interval_ = 0;   // mean inter-arrival in the base state
  double burst_interval_ = 0;  // ... in the burst state
  double base_sojourn_ = 0;    // mean base-state sojourn
};

}  // namespace bionicdb::host

#endif  // BIONICDB_HOST_ARRIVAL_H_
