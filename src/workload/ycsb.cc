#include "workload/ycsb.h"

#include <algorithm>
#include <vector>

#include "isa/program.h"

namespace bionicdb::workload {

namespace {

using isa::ProgramBuilder;

// Register conventions: r0 = transaction-block data base (hardware), r1 =
// scratch, r2.. = per-update tuple addresses in the update-mix program.

isa::Program ReadOnlyProgram(uint32_t n, bool framed = false) {
  ProgramBuilder b;
  b.Logic();
  if (framed) b.BeginBatch();
  for (uint32_t i = 0; i < n; ++i) {
    b.Search({.table_id = Ycsb::kTable,
              .cp = isa::Reg(i),
              .key_offset = int32_t(8 * i)});
  }
  if (framed) b.EndBatch();
  b.Yield();
  b.Commit();
  for (uint32_t i = 0; i < n; ++i) b.Ret(1, isa::Reg(i));
  b.CommitTxn();
  b.Abort().AbortTxn();
  return b.Build().value();
}

// Layout: [0, 8n) keys; [8n, 8n+8u) new values; [8n+8u, 8n+16u) UNDO slots.
isa::Program UpdateMixProgram(uint32_t n, uint32_t u, bool framed = false) {
  ProgramBuilder b;
  const int32_t newval_base = int32_t(8 * n);
  const int32_t undo_base = int32_t(8 * n + 8 * u);
  b.Logic();
  if (framed) b.BeginBatch();
  for (uint32_t i = 0; i < n; ++i) {
    ProgramBuilder::DbArgs args{.table_id = Ycsb::kTable,
                                .cp = isa::Reg(i),
                                .key_offset = int32_t(8 * i)};
    if (i < u) {
      b.Update(args);
    } else {
      b.Search(args);
    }
  }
  if (framed) b.EndBatch();
  b.Yield();
  b.Commit();
  // All RETs first: any failure aborts before a single byte is modified,
  // so the abort handler has nothing to restore.
  for (uint32_t i = 0; i < n; ++i) {
    b.Ret(isa::Reg(i < u ? 2 + i : 1), isa::Reg(i));
  }
  // Then apply the in-place updates, backing each original up in the UNDO
  // area of the transaction block first (paper section 4.7).
  for (uint32_t i = 0; i < u; ++i) {
    isa::Reg addr = isa::Reg(2 + i);
    b.Load(1, addr, 0);                             // old value
    b.Store(1, 0, undo_base + int32_t(8 * i));      // UNDO backup
    b.Load(1, 0, newval_base + int32_t(8 * i));     // new value
    b.Store(1, addr, 0);                            // in-place update
  }
  b.CommitTxn();
  b.Abort().AbortTxn();
  return b.Build().value();
}

// Layout: key at 0; per-txn scan length at 8 (variable variant only);
// result buffer (8 B per collected tuple) at 16.
isa::Program ScanProgram(uint32_t scan_len, bool variable = false) {
  ProgramBuilder b;
  b.Logic();
  if (variable) {
    // Widened YCSB-E: the scan length comes from the transaction block
    // through the scan_reg override; scan_count stays the cap.
    b.Load(2, 0, 8);
    b.Scan({.table_id = Ycsb::kTable,
            .cp = 0,
            .key_offset = 0,
            .aux_offset = 16,
            .scan_count = scan_len,
            .scan_reg = 2});
  } else {
    b.Scan({.table_id = Ycsb::kTable,
            .cp = 0,
            .key_offset = 0,
            .aux_offset = 16,
            .scan_count = scan_len});
  }
  b.Yield();
  b.Commit().Ret(1, 0).CommitTxn();
  b.Abort().AbortTxn();
  return b.Build().value();
}

// Layout: per access i, key at 16i and target partition at 16i + 8.
isa::Program MultisiteProgram(uint32_t n) {
  ProgramBuilder b;
  b.Logic();
  for (uint32_t i = 0; i < n; ++i) {
    b.Load(1, 0, int32_t(16 * i + 8));
    b.Search({.table_id = Ycsb::kTable,
              .cp = isa::Reg(i),
              .key_offset = int32_t(16 * i),
              .part_reg = 1});
  }
  b.Yield();
  b.Commit();
  for (uint32_t i = 0; i < n; ++i) b.Ret(1, isa::Reg(i));
  b.CommitTxn();
  b.Abort().AbortTxn();
  return b.Build().value();
}

// Layout: per access i, key at 16i and target partition at 16i + 8; new
// values at [16n, 16n + 8u); UNDO slots at [16n + 8u, 16n + 16u). Same
// commit discipline as UpdateMixProgram: all RETs before any in-place
// Store, so a rejected access aborts with nothing to restore.
isa::Program MultisiteUpdateProgram(uint32_t n, uint32_t u) {
  ProgramBuilder b;
  const int32_t newval_base = int32_t(16 * n);
  const int32_t undo_base = int32_t(16 * n + 8 * u);
  b.Logic();
  for (uint32_t i = 0; i < n; ++i) {
    b.Load(1, 0, int32_t(16 * i + 8));
    ProgramBuilder::DbArgs args{.table_id = Ycsb::kTable,
                                .cp = isa::Reg(i),
                                .key_offset = int32_t(16 * i),
                                .part_reg = 1};
    if (i < u) {
      b.Update(args);
    } else {
      b.Search(args);
    }
  }
  b.Yield();
  b.Commit();
  for (uint32_t i = 0; i < n; ++i) {
    b.Ret(isa::Reg(i < u ? 2 + i : 1), isa::Reg(i));
  }
  for (uint32_t i = 0; i < u; ++i) {
    isa::Reg addr = isa::Reg(2 + i);
    b.Load(1, addr, 0);                             // old value
    b.Store(1, 0, undo_base + int32_t(8 * i));      // UNDO backup
    b.Load(1, 0, newval_base + int32_t(8 * i));     // new value
    b.Store(1, addr, 0);                            // in-place update
  }
  b.CommitTxn();
  b.Abort().AbortTxn();
  return b.Build().value();
}

}  // namespace

Ycsb::Ycsb(core::BionicDb* engine, const YcsbOptions& options)
    : engine_(engine),
      options_(options),
      zipf_(options.records_per_partition) {}

Status Ycsb::Setup() {
  db::TableSchema schema;
  schema.id = kTable;
  schema.name = "usertable";
  schema.key_len = 8;
  schema.payload_len = options_.payload_len;
  schema.index = options_.mode == YcsbOptions::Mode::kScanOnly
                     ? db::IndexKind::kSkiplist
                     : db::IndexKind::kHash;
  // Oversize the table (~4x records): the paper notes a "sufficiently
  // large hash table could minimize the activation of Traverse stage".
  schema.hash_buckets = options_.records_per_partition * 4;
  BIONICDB_RETURN_IF_ERROR(engine_->database().CreateTable(schema));

  isa::Program program;
  const uint32_t n = options_.accesses_per_txn;
  switch (options_.mode) {
    case YcsbOptions::Mode::kReadOnly:
      program = ReadOnlyProgram(n);
      block_data_size_ = 8ull * n;
      break;
    case YcsbOptions::Mode::kUpdateMix: {
      uint32_t u = std::min(options_.updates_per_txn, n);
      program = UpdateMixProgram(n, u);
      block_data_size_ = 8ull * n + 16ull * u;
      break;
    }
    case YcsbOptions::Mode::kScanOnly:
      program = ScanProgram(options_.scan_len,
                            /*variable=*/options_.scan_len_min > 0);
      block_data_size_ = 16 + 8ull * options_.scan_len;
      break;
    case YcsbOptions::Mode::kBatchGet:
      program = ReadOnlyProgram(n, /*framed=*/true);
      block_data_size_ = 8ull * n;
      break;
    case YcsbOptions::Mode::kBatchPut: {
      uint32_t u = std::min(options_.updates_per_txn, n);
      program = UpdateMixProgram(n, u, /*framed=*/true);
      block_data_size_ = 8ull * n + 16ull * u;
      break;
    }
    case YcsbOptions::Mode::kMultisite:
      program = MultisiteProgram(n);
      block_data_size_ = 16ull * n;
      break;
    case YcsbOptions::Mode::kMultisiteUpdate: {
      uint32_t u = std::min(options_.updates_per_txn, n);
      program = MultisiteUpdateProgram(n, u);
      block_data_size_ = 16ull * n + 16ull * u;
      break;
    }
  }
  BIONICDB_RETURN_IF_ERROR(
      engine_->RegisterProcedure(kTxnType, program, block_data_size_));

  // Bulk load: partition p owns keys [p*R, (p+1)*R).
  std::vector<uint8_t> payload(options_.payload_len);
  for (size_t i = 0; i < payload.size(); ++i) payload[i] = uint8_t(i * 131);
  const uint64_t r = options_.records_per_partition;
  for (uint32_t p = 0; p < engine_->database().n_partitions(); ++p) {
    for (uint64_t k = 0; k < r; ++k) {
      BIONICDB_RETURN_IF_ERROR(engine_->database().LoadU64(
          kTable, p, p * r + k, payload.data(), uint32_t(payload.size())));
    }
  }
  return Status::Ok();
}

uint64_t Ycsb::RandomKey(Rng* rng, db::PartitionId partition) {
  uint64_t local = options_.zipfian
                       ? zipf_.Next(rng)
                       : rng->NextUint64(options_.records_per_partition);
  return uint64_t(partition) * options_.records_per_partition + local;
}

sim::Addr Ycsb::MakeTxn(Rng* rng, db::WorkerId worker) {
  db::TxnBlock block = engine_->AllocateBlock(kTxnType);
  const uint32_t n = options_.accesses_per_txn;
  switch (options_.mode) {
    case YcsbOptions::Mode::kReadOnly:
    case YcsbOptions::Mode::kBatchGet:
      for (uint32_t i = 0; i < n; ++i) {
        block.WriteKeyU64(int64_t(8 * i), RandomKey(rng, worker));
      }
      break;
    case YcsbOptions::Mode::kUpdateMix:
    case YcsbOptions::Mode::kBatchPut: {
      // Distinct keys within the transaction: re-touching a tuple this
      // transaction already dirtied is blindly rejected by the CC
      // (section 4.7), which would make the block unretryable.
      uint32_t u = std::min(options_.updates_per_txn, n);
      std::vector<uint64_t> keys;
      while (keys.size() < n) {
        uint64_t k = RandomKey(rng, worker);
        if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
          keys.push_back(k);
        }
      }
      for (uint32_t i = 0; i < n; ++i) {
        block.WriteKeyU64(int64_t(8 * i), keys[i]);
      }
      for (uint32_t i = 0; i < u; ++i) {
        block.WriteU64(int64_t(8 * n + 8 * i), rng->Next());
      }
      break;
    }
    case YcsbOptions::Mode::kScanOnly: {
      // Leave headroom so a full-length scan is possible.
      uint64_t span = options_.records_per_partition;
      uint64_t start = rng->NextUint64(
          span > options_.scan_len ? span - options_.scan_len : 1);
      block.WriteKeyU64(0, uint64_t(worker) * span + start);
      if (options_.scan_len_min > 0) {
        uint64_t lo = std::min(options_.scan_len_min, options_.scan_len);
        block.WriteU64(8, lo + rng->NextUint64(options_.scan_len - lo + 1));
      }
      break;
    }
    case YcsbOptions::Mode::kMultisite: {
      uint32_t parts = engine_->database().n_partitions();
      for (uint32_t i = 0; i < n; ++i) {
        db::PartitionId target = worker;
        if (parts > 1 && rng->NextBool(options_.remote_fraction)) {
          target = db::PartitionId(rng->NextUint64(parts - 1));
          if (target >= worker) ++target;
        }
        block.WriteKeyU64(int64_t(16 * i), RandomKey(rng, target));
        block.WriteU64(int64_t(16 * i + 8), target);
      }
      break;
    }
    case YcsbOptions::Mode::kMultisiteUpdate: {
      const uint32_t parts = engine_->database().n_partitions();
      const uint32_t wpc = options_.workers_per_chip;
      const uint32_t n_chips = wpc > 0 ? (parts + wpc - 1) / wpc : 1;
      // The multisite coin is only flipped when there is more than one
      // chip, so single-chip runs consume the identical RNG stream at
      // every fraction (their throughput is the fraction-independent
      // baseline of the scale-out sweep).
      const bool multisite =
          n_chips > 1 && rng->NextBool(options_.multisite_fraction);
      const uint32_t u = std::min(options_.updates_per_txn, n);
      std::vector<uint64_t> keys;
      std::vector<db::PartitionId> targets;
      while (keys.size() < n) {
        const uint32_t i = uint32_t(keys.size());
        db::PartitionId target = worker;
        if (multisite && i < u && (i % 2) == 0) {
          // Even update slots write a foreign-chip partition: every
          // multisite transaction carries at least one remote write leg
          // (slot 0), so it cannot commit without the 2PC round.
          const uint32_t my_chip = worker / wpc;
          uint32_t chip = uint32_t(rng->NextUint64(n_chips - 1));
          if (chip >= my_chip) ++chip;
          const uint32_t base = chip * wpc;
          const uint32_t span = std::min(wpc, parts - base);
          target = db::PartitionId(base + rng->NextUint64(span));
        }
        // Distinct keys within the transaction (same CC blind-reject
        // rationale as kUpdateMix; cross-partition keys are distinct by
        // construction of the per-partition key ranges).
        const uint64_t k = RandomKey(rng, target);
        if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
          keys.push_back(k);
          targets.push_back(target);
        }
      }
      for (uint32_t i = 0; i < n; ++i) {
        block.WriteKeyU64(int64_t(16 * i), keys[i]);
        block.WriteU64(int64_t(16 * i + 8), targets[i]);
      }
      for (uint32_t i = 0; i < u; ++i) {
        block.WriteU64(int64_t(16 * n + 8 * i), rng->Next());
      }
      break;
    }
  }
  return block.base();
}

uint64_t Ycsb::SubmitBatch(Rng* rng, uint64_t n_per_worker) {
  uint64_t total = 0;
  for (uint32_t w = 0; w < engine_->database().n_partitions(); ++w) {
    for (uint64_t i = 0; i < n_per_worker; ++i) {
      engine_->Submit(w, MakeTxn(rng, w));
      ++total;
    }
  }
  return total;
}

std::function<sim::Addr(db::WorkerId)> Ycsb::Factory(Rng* rng) {
  return [this, rng](db::WorkerId w) { return MakeTxn(rng, w); };
}

}  // namespace bionicdb::workload
