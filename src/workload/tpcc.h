// TPC-C NewOrder/Payment mix for BionicDB (paper section 5.3).
//
// The paper runs a 50:50 NewOrder/Payment mix, partitioned by warehouse
// (one warehouse per partition worker), with the read-only Item table
// replicated across partitions. By default 1 % of NewOrders and 15 % of
// Payments are cross-partition; Payment is modified to select the customer
// by id (both here and in the paper's Silo baseline).
//
// Key encoding: all TPC-C tables use the hash index, so composite keys are
// packed into raw little-endian 64-bit integers that the stored procedures
// can compute with MUL/ADD (e.g. the order key is district_id * 2^24 +
// o_id, derived from the district's next_o_id at run time).
//
// The stored procedures exercise every part of the machine the paper calls
// out for TPC-C: the district UPDATE -> RET -> key-computation chain is the
// data dependency that defeats transaction interleaving (Fig. 12b), Payment
// has only 4 index operations (Fig. 10d), and the commit handlers perform
// the in-place updates with UNDO-log backups (section 4.7).
#ifndef BIONICDB_WORKLOAD_TPCC_H_
#define BIONICDB_WORKLOAD_TPCC_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/engine.h"

namespace bionicdb::workload {

struct TpccOptions {
  /// Warehouses == partitions == workers (DORA partitioning by warehouse).
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 3000;
  uint32_t items = 100'000;
  uint32_t ol_cnt = 10;  // order lines per NewOrder (TPC-C draws 5..15)
  double remote_neworder_fraction = 0.01;
  double remote_payment_fraction = 0.15;
};

/// A deliberately small configuration for unit tests.
TpccOptions TpccTestOptions();

class Tpcc {
 public:
  // Table ids.
  static constexpr db::TableId kWarehouse = 0;
  static constexpr db::TableId kDistrict = 1;
  static constexpr db::TableId kCustomer = 2;
  static constexpr db::TableId kHistory = 3;
  static constexpr db::TableId kNewOrderTable = 4;
  static constexpr db::TableId kOrder = 5;
  static constexpr db::TableId kOrderLine = 6;
  static constexpr db::TableId kItem = 7;
  static constexpr db::TableId kStock = 8;

  // Transaction types. The paper evaluates only NewOrder and Payment;
  // Delivery and OrderStatus are extensions exercising REMOVE and
  // data-dependent loops over computed keys.
  static constexpr db::TxnTypeId kNewOrderTxn = 300;
  static constexpr db::TxnTypeId kPaymentTxn = 301;
  static constexpr db::TxnTypeId kDeliveryTxn = 302;
  static constexpr db::TxnTypeId kOrderStatusTxn = 303;
  static constexpr db::TxnTypeId kStockLevelTxn = 304;

  Tpcc(core::BionicDb* engine, const TpccOptions& options);

  /// Creates all nine tables, registers both procedures and populates one
  /// warehouse per partition.
  Status Setup();

  sim::Addr MakeNewOrder(Rng* rng, db::WorkerId home);
  sim::Addr MakePayment(Rng* rng, db::WorkerId home);
  /// 50:50 mix, as in Fig. 9b.
  sim::Addr MakeMixed(Rng* rng, db::WorkerId home);

  /// On-demand NewOrder/Payment-mix generator in the host driver's
  /// TxnFactory shape. `rng` and this workload must outlive the returned
  /// function.
  std::function<sim::Addr(db::WorkerId)> Factory(Rng* rng);

  /// Extension: delivers the oldest undelivered order of one district —
  /// tombstones its NEW-ORDER row, stamps the carrier, marks each order
  /// line delivered and credits the customer's balance with the order
  /// total. Commits as a no-op when the district has nothing to deliver.
  sim::Addr MakeDelivery(Rng* rng, db::WorkerId home);

  /// Extension: read-only status of the district's most recent order (an
  /// approximation of TPC-C's customer-last-order lookup: order, customer
  /// balance and every order line are read through computed keys).
  sim::Addr MakeOrderStatus(Rng* rng, db::WorkerId home);

  /// Extension: StockLevel — inspects the district's last (up to) 20
  /// orders, reads every order line and the home-warehouse stock row of its
  /// item, and counts lines whose stock quantity is below the threshold.
  /// Simplification vs TPC-C: lines are counted, not DISTINCT items (the
  /// softcore has no set structure); a hot item can count multiple times.
  sim::Addr MakeStockLevel(Rng* rng, db::WorkerId home, uint64_t threshold);

  // --- Key encodings (exposed for tests/verification) -------------------
  uint64_t WarehouseKey(uint32_t w) const { return w; }
  uint64_t DistrictKey(uint32_t w, uint32_t d) const { return w * 100 + d; }
  uint64_t CompactDistrictId(uint32_t w, uint32_t d) const {
    return w * options_.districts_per_warehouse + d;
  }
  uint64_t CustomerKey(uint32_t w, uint32_t d, uint32_t c) const {
    return CompactDistrictId(w, d) * 100'000 + c;
  }
  uint64_t ItemKey(uint32_t i) const { return i; }
  uint64_t StockKey(uint32_t w, uint32_t i) const {
    return uint64_t(w) * 1'000'000 + i;
  }
  uint64_t OrderKey(uint32_t w, uint32_t d, uint64_t o) const {
    return CompactDistrictId(w, d) * (1ull << 24) + o;
  }
  /// Deterministic item price used for population and amount staging.
  uint64_t ItemPrice(uint32_t i) const { return 100 + (i % 900); }

  const TpccOptions& options() const { return options_; }

  // Payload field offsets (all 8-byte fields).
  static constexpr int64_t kWarehouseYtd = 0;
  static constexpr int64_t kDistrictNextOid = 0;
  static constexpr int64_t kDistrictYtd = 8;
  static constexpr int64_t kDistrictNextDelivery = 24;
  static constexpr int64_t kCustomerBalance = 0;
  static constexpr int64_t kCustomerYtdPayment = 8;
  static constexpr int64_t kCustomerPaymentCnt = 16;
  static constexpr int64_t kStockQuantity = 0;
  static constexpr int64_t kStockYtd = 8;
  static constexpr int64_t kOrderCid = 0;
  static constexpr int64_t kOrderOlCnt = 16;
  static constexpr int64_t kOrderCarrier = 24;
  static constexpr int64_t kOrderLineAmount = 24;
  static constexpr int64_t kOrderLineDelivered = 32;

 private:
  isa::Program BuildNewOrderProgram() const;
  isa::Program BuildPaymentProgram() const;
  isa::Program BuildDeliveryProgram() const;
  isa::Program BuildOrderStatusProgram() const;
  isa::Program BuildStockLevelProgram() const;

  core::BionicDb* engine_;
  TpccOptions options_;
  std::vector<uint64_t> history_seq_;  // per worker

  // NewOrder block layout (computed from ol_cnt in the constructor).
  uint32_t no_items_base_ = 0;   // per-item records (32 B each)
  uint32_t no_okey_off_ = 0;     // computed order key
  uint32_t no_nokey_off_ = 0;    // computed new-order key
  uint32_t no_olkeys_off_ = 0;   // computed order-line keys
  uint32_t no_order_pl_ = 0;     // order payload staging
  uint32_t no_neworder_pl_ = 0;  // new-order payload staging
  uint32_t no_ol_pl_ = 0;        // order-line payload staging
  uint32_t no_undo_oid_ = 0;     // district next_o_id backup
  uint32_t no_undo_flag_ = 0;
  uint32_t no_undo_stock_ = 0;
  uint32_t no_block_size_ = 0;
};

}  // namespace bionicdb::workload

#endif  // BIONICDB_WORKLOAD_TPCC_H_
