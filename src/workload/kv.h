// Non-transactional key-value microbenchmark (paper Figures 10a, 11a, 11b).
//
// The paper measures peak index throughput with "a single transaction
// [that] repeated issuing 60 insert/search instructions in bulk": maximal
// intra-transaction index parallelism, no data dependencies. The same
// harness drives the skiplist's sequential-load and point-query curves.
#ifndef BIONICDB_WORKLOAD_KV_H_
#define BIONICDB_WORKLOAD_KV_H_

#include <cstdint>
#include <functional>

#include "common/random.h"
#include "common/status.h"
#include "core/engine.h"
#include "db/schema.h"

namespace bionicdb::workload {

struct KvOptions {
  db::IndexKind index = db::IndexKind::kHash;
  uint32_t ops_per_txn = 60;
  uint32_t payload_len = 8;
  /// Tuples bulk-loaded per partition before measuring searches.
  uint64_t preload_per_partition = 100'000;
  /// Wraps the search/remove op groups in BeginBatch()/EndBatch() so a
  /// kBatched index pipeline flushes on the group end (inserts never
  /// batch, so the insert procedure is left unframed).
  bool batch_framing = false;
  /// Dense probes: every search transaction reads `ops_per_txn`
  /// SEQUENTIAL preloaded keys from a random start (the UCSB batch-get
  /// shape). Adjacent keys are adjacent tuples after bulk load, so a
  /// batched pipeline's sorted node reads coalesce into DRAM row hits;
  /// false keeps independent uniform keys.
  bool dense = false;
};

class KvBench {
 public:
  static constexpr db::TableId kTable = 0;
  static constexpr db::TxnTypeId kSearchTxn = 200;
  static constexpr db::TxnTypeId kInsertTxn = 201;
  static constexpr db::TxnTypeId kRemoveTxn = 202;

  KvBench(core::BionicDb* engine, const KvOptions& options);

  /// Creates the table, registers bulk search/insert procedures, preloads.
  Status Setup();

  /// A transaction of `ops_per_txn` searches over preloaded keys.
  sim::Addr MakeSearchTxn(Rng* rng, db::WorkerId worker);

  /// A transaction of `ops_per_txn` inserts of fresh keys. Sequential
  /// ascending keys when `sequential` (the paper's skiplist load pattern),
  /// otherwise pseudo-random unique keys.
  sim::Addr MakeInsertTxn(db::WorkerId worker, bool sequential);

  /// A transaction of `ops_per_txn` REMOVEs of the given keys (churn /
  /// tombstone exercise). `keys` must hold ops_per_txn entries.
  sim::Addr MakeRemoveTxn(const std::vector<uint64_t>& keys);

  /// On-demand search-transaction generator in the host driver's
  /// TxnFactory shape. `rng` and this workload must outlive the returned
  /// function.
  std::function<sim::Addr(db::WorkerId)> Factory(Rng* rng);

  const KvOptions& options() const { return options_; }

 private:
  core::BionicDb* engine_;
  KvOptions options_;
  std::vector<uint64_t> next_fresh_key_;  // per worker
};

}  // namespace bionicdb::workload

#endif  // BIONICDB_WORKLOAD_KV_H_
