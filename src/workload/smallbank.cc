#include "workload/smallbank.h"

#include <algorithm>

#include "db/tuple.h"
#include "isa/program.h"

namespace bionicdb::workload {

namespace {

using isa::ProgramBuilder;

// All five procedures follow the repo-wide commit discipline: every RET
// before any in-place Store, so a rejected access aborts the transaction
// with nothing to restore (the UNDO backups written by the update profiles
// are for durability realism, not for abort recovery).

// Block layout: [0] account key; [8] result (savings + checking).
isa::Program BalanceProgram() {
  ProgramBuilder b;
  b.Logic()
      .Search({.table_id = SmallBank::kSavings, .cp = 0, .key_offset = 0})
      .Search({.table_id = SmallBank::kChecking, .cp = 1, .key_offset = 0})
      .Yield();
  b.Commit()
      .Ret(2, 0)
      .Ret(3, 1)
      .Load(4, 2, 0)   // savings balance
      .Load(5, 3, 0)   // checking balance
      .Add(4, 4, 5)
      .Store(4, 0, 8)  // result slot
      .CommitTxn();
  b.Abort().AbortTxn();
  return b.Build().value();
}

// Block layout: [0] account key; [8] delta; [16] UNDO of the old balance.
isa::Program DepositProgram(db::TableId table) {
  ProgramBuilder b;
  b.Logic().Update({.table_id = table, .cp = 0, .key_offset = 0}).Yield();
  b.Commit()
      .Ret(2, 0)
      .Load(1, 2, 0)    // old balance
      .Store(1, 0, 16)  // UNDO backup
      .Load(3, 0, 8)    // delta
      .Add(1, 1, 3)
      .Store(1, 2, 0)   // in-place update
      .CommitTxn();
  b.Abort().AbortTxn();
  return b.Build().value();
}

// Block layout: [0] source account key; [8] destination account key (both
// local to the submitting partition, distinct). Moves savings(src) +
// checking(src) into checking(dst) and zeroes the source — net delta 0.
isa::Program AmalgamateProgram() {
  ProgramBuilder b;
  b.Logic()
      .Update({.table_id = SmallBank::kSavings, .cp = 0, .key_offset = 0})
      .Update({.table_id = SmallBank::kChecking, .cp = 1, .key_offset = 0})
      .Update({.table_id = SmallBank::kChecking, .cp = 2, .key_offset = 8})
      .Yield();
  b.Commit()
      .Ret(2, 0)
      .Ret(3, 1)
      .Ret(4, 2)
      .Load(1, 2, 0)   // src savings
      .Load(5, 3, 0)   // src checking
      .Add(1, 1, 5)    // src total
      .Load(5, 4, 0)   // dst checking
      .Add(5, 5, 1)
      .Store(5, 4, 0)  // dst checking += src total
      .Sub(1, 1, 1)    // zero
      .Store(1, 2, 0)  // src savings = 0
      .Store(1, 3, 0)  // src checking = 0
      .CommitTxn();
  b.Abort().AbortTxn();
  return b.Build().value();
}

// Block layout: [0] account key; [8] amount. Reads savings (the "balance
// check" leg), then checking -= amount. The reference workload writes an
// overdraft penalty when savings + checking < amount; the softcore ISA has
// no conditional branch, so this port always debits the plain amount —
// a documented simplification that keeps CommittedDelta exact.
isa::Program WriteCheckProgram() {
  ProgramBuilder b;
  b.Logic()
      .Search({.table_id = SmallBank::kSavings, .cp = 0, .key_offset = 0})
      .Update({.table_id = SmallBank::kChecking, .cp = 1, .key_offset = 0})
      .Yield();
  b.Commit()
      .Ret(2, 0)
      .Ret(3, 1)
      .Load(1, 2, 0)   // savings (balance-check read)
      .Load(4, 3, 0)   // checking
      .Add(1, 1, 4)    // total (realism: the check the reference makes)
      .Load(5, 0, 8)   // amount
      .Sub(4, 4, 5)
      .Store(4, 3, 0)  // checking -= amount
      .CommitTxn();
  b.Abort().AbortTxn();
  return b.Build().value();
}

}  // namespace

SmallBank::SmallBank(core::BionicDb* engine, const SmallBankOptions& options)
    : engine_(engine), options_(options) {}

Status SmallBank::Setup() {
  for (db::TableId table : {kSavings, kChecking}) {
    db::TableSchema schema;
    schema.id = table;
    schema.name = table == kSavings ? "savings" : "checking";
    schema.key_len = 8;
    schema.payload_len = 8;
    schema.index = db::IndexKind::kHash;
    schema.hash_buckets = options_.accounts_per_partition * 4;
    BIONICDB_RETURN_IF_ERROR(engine_->database().CreateTable(schema));
  }

  BIONICDB_RETURN_IF_ERROR(
      engine_->RegisterProcedure(kBalance, BalanceProgram(), 16));
  BIONICDB_RETURN_IF_ERROR(engine_->RegisterProcedure(
      kDepositChecking, DepositProgram(kChecking), 24));
  BIONICDB_RETURN_IF_ERROR(engine_->RegisterProcedure(
      kTransactSavings, DepositProgram(kSavings), 24));
  BIONICDB_RETURN_IF_ERROR(
      engine_->RegisterProcedure(kAmalgamate, AmalgamateProgram(), 16));
  BIONICDB_RETURN_IF_ERROR(
      engine_->RegisterProcedure(kWriteCheck, WriteCheckProgram(), 16));

  // Bulk load: partition p owns accounts [p*N, (p+1)*N) in both tables.
  const uint64_t n = options_.accounts_per_partition;
  const uint64_t balance = options_.initial_balance;
  const uint32_t parts = engine_->database().n_partitions();
  for (uint32_t p = 0; p < parts; ++p) {
    for (uint64_t a = 0; a < n; ++a) {
      for (db::TableId table : {kSavings, kChecking}) {
        BIONICDB_RETURN_IF_ERROR(
            engine_->database().LoadU64(table, p, p * n + a, &balance, 8));
      }
    }
  }
  initial_total_ = uint64_t(parts) * n * balance * 2;
  return Status::Ok();
}

uint64_t SmallBank::RandomAccount(Rng* rng, db::WorkerId worker) {
  const uint64_t n = options_.accounts_per_partition;
  uint64_t span = n;
  if (options_.hotspot_accounts > 0 && options_.hotspot_fraction > 0.0 &&
      rng->NextBool(options_.hotspot_fraction)) {
    span = std::min<uint64_t>(options_.hotspot_accounts, n);
  }
  return uint64_t(worker) * n + rng->NextUint64(span);
}

sim::Addr SmallBank::MakeTxn(Rng* rng, db::WorkerId worker) {
  const uint32_t total = options_.mix_balance + options_.mix_deposit +
                         options_.mix_transact + options_.mix_amalgamate +
                         options_.mix_write_check;
  uint64_t pick = rng->NextUint64(total > 0 ? total : 1);
  db::TxnTypeId type = kBalance;
  if (pick < options_.mix_balance) {
    type = kBalance;
  } else if ((pick -= options_.mix_balance) < options_.mix_deposit) {
    type = kDepositChecking;
  } else if ((pick -= options_.mix_deposit) < options_.mix_transact) {
    type = kTransactSavings;
  } else if ((pick -= options_.mix_transact) < options_.mix_amalgamate) {
    type = kAmalgamate;
  } else {
    type = kWriteCheck;
  }

  db::TxnBlock block = engine_->AllocateBlock(type);
  const uint64_t key = RandomAccount(rng, worker);
  block.WriteKeyU64(0, key);
  switch (type) {
    case kBalance:
      break;
    case kDepositChecking:
    case kTransactSavings:
      block.WriteU64(8, 1 + rng->NextUint64(100));  // delta
      break;
    case kAmalgamate: {
      // Distinct destination in the same partition: re-touching a tuple a
      // transaction already dirtied is blindly rejected (section 4.7),
      // which would make the block unretryable.
      uint64_t dst = key;
      while (dst == key) dst = RandomAccount(rng, worker);
      block.WriteKeyU64(8, dst);
      break;
    }
    case kWriteCheck:
      block.WriteU64(8, 1 + rng->NextUint64(50));  // amount
      break;
    default:
      break;
  }
  return block.base();
}

std::function<sim::Addr(db::WorkerId)> SmallBank::Factory(Rng* rng) {
  return [this, rng](db::WorkerId w) { return MakeTxn(rng, w); };
}

uint64_t SmallBank::TotalAssets() const {
  sim::DramMemory& dram = engine_->simulator().dram();
  const uint64_t n = options_.accounts_per_partition;
  uint64_t sum = 0;
  for (uint32_t p = 0; p < engine_->database().n_partitions(); ++p) {
    for (uint64_t a = 0; a < n; ++a) {
      for (db::TableId table : {kSavings, kChecking}) {
        sim::Addr addr = engine_->database().FindU64(table, p, p * n + a);
        if (addr == sim::kNullAddr) continue;
        db::TupleAccessor t(&dram, addr);
        sum += dram.Read64(t.payload_addr());
      }
    }
  }
  return sum;
}

int64_t SmallBank::CommittedDelta(sim::Addr block_addr) const {
  db::TxnBlock block(&engine_->simulator().dram(), block_addr);
  switch (block.txn_type()) {
    case kDepositChecking:
    case kTransactSavings:
      return int64_t(block.ReadU64(8));
    case kWriteCheck:
      return -int64_t(block.ReadU64(8));
    default:
      return 0;  // Balance and Amalgamate conserve the money supply.
  }
}

bool SmallBank::VerifyConservation(
    const std::vector<std::pair<db::WorkerId, sim::Addr>>& txns) const {
  sim::DramMemory& dram = engine_->simulator().dram();
  uint64_t delta = 0;  // modular arithmetic: balances wrap like the hardware
  for (const auto& [worker, addr] : txns) {
    (void)worker;
    db::TxnBlock block(&dram, addr);
    if (block.state() == db::TxnState::kCommitted) {
      delta += uint64_t(CommittedDelta(addr));
    }
  }
  return TotalAssets() == initial_total_ + delta;
}

}  // namespace bionicdb::workload
