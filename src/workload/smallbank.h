// SmallBank: the contention-heavy OLTP workload (Alomari et al., the
// standard serializability-stress benchmark).
//
// Two tables — savings and checking — keyed by account id, 8-byte balance
// payloads. Five transaction profiles:
//
//   Balance          read savings + checking, store the sum        (read)
//   DepositChecking  checking += delta                             (write)
//   TransactSavings  savings  += delta                             (write)
//   Amalgamate       move all of account A's funds to B.checking   (3 writes)
//   WriteCheck       read savings, checking -= amount              (rw)
//
// Contention comes from a hotspot: a configurable fraction of transactions
// draw their accounts from the first `hotspot_accounts` ids of the
// partition, so a small hotspot + write-heavy mix produces the dirty/ts
// conflicts that separate the CC schemes (bench/cc_contention).
//
// Conservation invariant: every profile moves money by a known net delta
// (+d, +d, 0, -amount, 0), so after any run
//
//   sum(savings + checking)  ==  initial_total + sum(committed deltas)
//
// modulo 2^64 (balances are uint64 with wrap-around). The helper
// VerifyConservation re-derives committed deltas from the transaction
// blocks' commit states, so lost updates / dirty reads surface as a sum
// mismatch regardless of interleaving.
#ifndef BIONICDB_WORKLOAD_SMALLBANK_H_
#define BIONICDB_WORKLOAD_SMALLBANK_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/engine.h"

namespace bionicdb::workload {

struct SmallBankOptions {
  uint32_t accounts_per_partition = 10'000;
  uint64_t initial_balance = 10'000;
  /// Probability that a transaction draws its account(s) from the hotspot.
  double hotspot_fraction = 0.0;
  /// Hotspot size in accounts (first ids of each partition's range).
  uint32_t hotspot_accounts = 100;
  /// Profile mix weights (need not sum to 100).
  uint32_t mix_balance = 15;
  uint32_t mix_deposit = 25;
  uint32_t mix_transact = 25;
  uint32_t mix_amalgamate = 10;
  uint32_t mix_write_check = 25;
};

class SmallBank {
 public:
  // Table ids are catalogue-dense (0, 1): a SmallBank engine instance owns
  // its catalogue, so these don't clash with the other workloads' tables.
  static constexpr db::TableId kSavings = 0;
  static constexpr db::TableId kChecking = 1;

  // One stored procedure per profile.
  static constexpr db::TxnTypeId kBalance = 200;
  static constexpr db::TxnTypeId kDepositChecking = 201;
  static constexpr db::TxnTypeId kTransactSavings = 202;
  static constexpr db::TxnTypeId kAmalgamate = 203;
  static constexpr db::TxnTypeId kWriteCheck = 204;

  SmallBank(core::BionicDb* engine, const SmallBankOptions& options);

  /// Creates both tables, registers the five procedures and bulk-loads
  /// `accounts_per_partition` accounts per partition at initial_balance.
  Status Setup();

  /// Builds one transaction block for `worker` (profile drawn from the mix
  /// weights, accounts from the hotspot with hotspot_fraction probability).
  sim::Addr MakeTxn(Rng* rng, db::WorkerId worker);

  /// Host driver TxnFactory shape; `rng` and this object must outlive it.
  std::function<sim::Addr(db::WorkerId)> Factory(Rng* rng);

  /// Functional sum of every account's savings + checking (mod 2^64).
  uint64_t TotalAssets() const;

  /// Net money-supply delta of a committed block of this type (0 for
  /// profiles that only move money between accounts).
  int64_t CommittedDelta(sim::Addr block) const;

  /// Checks the conservation invariant over a finished run: walks the
  /// submitted blocks, sums the deltas of the committed ones and compares
  /// against TotalAssets(). `txns` is the host::TxnList shape.
  bool VerifyConservation(
      const std::vector<std::pair<db::WorkerId, sim::Addr>>& txns) const;

  uint64_t initial_total() const { return initial_total_; }
  const SmallBankOptions& options() const { return options_; }

 private:
  uint64_t RandomAccount(Rng* rng, db::WorkerId worker);

  core::BionicDb* engine_;
  SmallBankOptions options_;
  uint64_t initial_total_ = 0;
};

}  // namespace bionicdb::workload

#endif  // BIONICDB_WORKLOAD_SMALLBANK_H_
