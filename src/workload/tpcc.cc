#include "workload/tpcc.h"

#include <algorithm>
#include <cstring>

#include "isa/program.h"

namespace bionicdb::workload {

namespace {

// Payload sizes (bytes).
constexpr uint32_t kWarehousePayload = 96;
constexpr uint32_t kDistrictPayload = 96;
constexpr uint32_t kCustomerPayload = 240;
constexpr uint32_t kHistoryPayload = 32;
constexpr uint32_t kNewOrderPayload = 8;
constexpr uint32_t kOrderPayload = 32;
constexpr uint32_t kOrderLinePayload = 48;
constexpr uint32_t kItemPayload = 64;
constexpr uint32_t kStockPayload = 128;

constexpr uint64_t kInitialNextOid = 3001;

}  // namespace

TpccOptions TpccTestOptions() {
  TpccOptions o;
  o.districts_per_warehouse = 2;
  o.customers_per_district = 30;
  o.items = 200;
  o.ol_cnt = 4;
  return o;
}

Tpcc::Tpcc(core::BionicDb* engine, const TpccOptions& options)
    : engine_(engine), options_(options) {
  for (uint32_t w = 0; w < engine->database().n_partitions(); ++w) {
    history_seq_.push_back((uint64_t(w) << 40) | 1);
  }
  const uint32_t L = options_.ol_cnt;
  no_items_base_ = 32;
  no_okey_off_ = 32 + 32 * L;
  no_nokey_off_ = no_okey_off_ + 8;
  no_olkeys_off_ = no_nokey_off_ + 8;
  no_order_pl_ = no_olkeys_off_ + 8 * L;
  no_neworder_pl_ = no_order_pl_ + kOrderPayload;
  no_ol_pl_ = no_neworder_pl_ + 8;
  no_undo_oid_ = no_ol_pl_ + kOrderLinePayload * L;
  no_undo_flag_ = no_undo_oid_ + 8;
  no_undo_stock_ = no_undo_flag_ + 8;
  no_block_size_ = no_undo_stock_ + 8 * L;
}

// NewOrder register map: r0 = block base, r1 = scratch, r2..r7 =
// computation, r8..r8+L-1 = stock tuple addresses, r(8+L) = district tuple
// address (kept live for the abort handler's UNDO restore).
isa::Program Tpcc::BuildNewOrderProgram() const {
  const uint32_t L = options_.ol_cnt;
  const isa::Reg stock_base = 8;
  const isa::Reg r_district = isa::Reg(8 + L);
  auto cp_item = [&](uint32_t i) { return isa::Reg(5 + i); };
  auto cp_stock = [&](uint32_t i) { return isa::Reg(5 + L + i); };
  auto cp_ol = [&](uint32_t i) { return isa::Reg(5 + 2 * L + i); };

  isa::ProgramBuilder b;
  b.Logic();
  // Clear the UNDO flag first: a client retry of an aborted attempt reuses
  // the block, and the abort handler must not restore from a stale backup.
  b.MovI(3, 0);
  b.Store(3, 0, no_undo_flag_);
  b.Search({.table_id = kWarehouse, .cp = 0, .key_offset = 0});
  b.Search({.table_id = kCustomer, .cp = 2, .key_offset = 16});
  b.Update({.table_id = kDistrict, .cp = 1, .key_offset = 8});
  // THE data dependency: the order/order-line keys derive from the
  // district's next_o_id, so the softcore must block here (section 5.6).
  b.Ret(r_district, 1);
  b.Load(2, r_district, kDistrictNextOid);
  b.Store(2, 0, no_undo_oid_);  // UNDO backup of next_o_id
  b.MovI(3, 1);
  b.Store(3, 0, no_undo_flag_);  // mark district as modified
  b.AddI(3, 2, 1);
  b.Store(3, r_district, kDistrictNextOid);  // bump next_o_id in place
  b.Load(4, 0, 24);                          // compact district id
  b.MulI(5, 4, 1 << 24);
  b.Add(5, 5, 2);  // order key = DID * 2^24 + o_id
  b.Store(5, 0, no_okey_off_);
  b.Store(5, 0, no_nokey_off_);
  b.Insert({.table_id = kOrder,
            .cp = 3,
            .key_offset = int32_t(no_okey_off_),
            .aux_offset = int32_t(no_order_pl_)});
  b.Insert({.table_id = kNewOrderTable,
            .cp = 4,
            .key_offset = int32_t(no_nokey_off_),
            .aux_offset = int32_t(no_neworder_pl_)});
  for (uint32_t i = 0; i < L; ++i) {
    const int32_t entry = int32_t(no_items_base_ + 32 * i);
    b.Search({.table_id = kItem, .cp = cp_item(i), .key_offset = entry});
    b.Load(6, 0, entry + 24);  // supply partition
    b.Update({.table_id = kStock,
              .cp = cp_stock(i),
              .key_offset = entry + 8,
              .part_reg = 6});
    b.MulI(7, 5, 16);
    b.AddI(7, 7, int64_t(i));  // order-line key = okey * 16 + i
    b.Store(7, 0, int64_t(no_olkeys_off_ + 8 * i));
    b.Insert({.table_id = kOrderLine,
              .cp = cp_ol(i),
              .key_offset = int32_t(no_olkeys_off_ + 8 * i),
              .aux_offset = int32_t(no_ol_pl_ + kOrderLinePayload * i)});
  }
  b.Yield();

  b.Commit();
  // Collect every result before touching a byte: an error in any RET jumps
  // to the abort handler with only the district modified so far.
  b.Ret(1, 0);  // warehouse
  b.Ret(1, 2);  // customer
  b.Ret(1, 3);  // order
  b.Ret(1, 4);  // new-order
  for (uint32_t i = 0; i < L; ++i) b.Ret(1, cp_item(i));
  for (uint32_t i = 0; i < L; ++i) {
    b.Ret(isa::Reg(stock_base + i), cp_stock(i));
  }
  for (uint32_t i = 0; i < L; ++i) b.Ret(1, cp_ol(i));
  // Apply the stock updates: s_quantity -= ol_qty (refill by 91 when it
  // would drop below 10), s_ytd += ol_qty.
  for (uint32_t i = 0; i < L; ++i) {
    const isa::Reg addr = isa::Reg(stock_base + i);
    const int32_t entry = int32_t(no_items_base_ + 32 * i);
    const std::string skip = "no_refill_" + std::to_string(i);
    b.Load(2, addr, kStockQuantity);
    b.Store(2, 0, int64_t(no_undo_stock_ + 8 * i));  // UNDO backup
    b.Load(3, 0, entry + 16);                        // ordered quantity
    b.Sub(2, 2, 3);
    b.CmpI(2, 10);
    b.Bge(skip);
    b.AddI(2, 2, 91);
    b.Label(skip);
    b.Store(2, addr, kStockQuantity);
    b.Load(4, addr, kStockYtd);
    b.Add(4, 4, 3);
    b.Store(4, addr, kStockYtd);
  }
  b.CommitTxn();

  b.Abort();
  // Restore the district's next_o_id if (and only if) we bumped it.
  b.Load(1, 0, no_undo_flag_);
  b.CmpI(1, 0);
  b.Be("abort_done");
  b.Load(1, 0, no_undo_oid_);
  b.Store(1, r_district, kDistrictNextOid);
  b.Label("abort_done");
  b.AbortTxn();
  return b.Build().value();
}

// Payment block layout:
//   0 w_key, 8 d_key, 16 c_key, 24 customer partition, 32 history key,
//   40 amount, 48 history payload staging (32 B), 80.. UNDO slots.
isa::Program Tpcc::BuildPaymentProgram() const {
  isa::ProgramBuilder b;
  b.Logic();
  b.Update({.table_id = kWarehouse, .cp = 0, .key_offset = 0});
  b.Update({.table_id = kDistrict, .cp = 1, .key_offset = 8});
  b.Load(1, 0, 24);  // customer's home partition (remote for 15 %)
  b.Update({.table_id = kCustomer, .cp = 2, .key_offset = 16, .part_reg = 1});
  b.Insert({.table_id = kHistory,
            .cp = 3,
            .key_offset = 32,
            .aux_offset = 48});
  b.Yield();

  b.Commit();
  b.Ret(2, 0);       // warehouse address
  b.Ret(3, 1);       // district address
  b.Ret(4, 2);       // customer address
  b.Ret(1, 3);       // history
  b.Load(6, 0, 40);  // amount
  // w_ytd += amount.
  b.Load(7, 2, kWarehouseYtd);
  b.Store(7, 0, 80);
  b.Add(7, 7, 6);
  b.Store(7, 2, kWarehouseYtd);
  // d_ytd += amount.
  b.Load(7, 3, kDistrictYtd);
  b.Store(7, 0, 88);
  b.Add(7, 7, 6);
  b.Store(7, 3, kDistrictYtd);
  // c_balance -= amount; c_ytd_payment += amount; c_payment_cnt += 1.
  b.Load(7, 4, kCustomerBalance);
  b.Store(7, 0, 96);
  b.Sub(7, 7, 6);
  b.Store(7, 4, kCustomerBalance);
  b.Load(7, 4, kCustomerYtdPayment);
  b.Store(7, 0, 104);
  b.Add(7, 7, 6);
  b.Store(7, 4, kCustomerYtdPayment);
  b.Load(7, 4, kCustomerPaymentCnt);
  b.Store(7, 0, 112);
  b.AddI(7, 7, 1);
  b.Store(7, 4, kCustomerPaymentCnt);
  b.CommitTxn();

  // Every RET precedes every STORE, so an abort never has state to restore.
  b.Abort().AbortTxn();
  return b.Build().value();
}

// Delivery block layout:
//   0 d_key, 8 DID, 16 carrier, 24 computed order key, 32 computed
//   order-line key, 40 computed customer key, 48 UNDO next_delivery,
//   56 UNDO flag.
//
// All data-dependent work happens in the LOGIC phase with blocking RETs
// (DB instructions are illegal in handlers): deliver the oldest
// undelivered order — tombstone its NEW-ORDER row, stamp the carrier,
// mark every order line delivered (summing the amounts with a dynamic
// CMP/JMP loop over computed keys) and credit the customer's balance.
// Ordering keeps the abort handler simple: the balance update comes after
// the last fallible RET, so only the district counter ever needs an UNDO
// restore. Carrier/delivered marks set by an aborted attempt are metadata
// re-stamped idempotently on retry.
isa::Program Tpcc::BuildDeliveryProgram() const {
  isa::ProgramBuilder b;
  b.Logic();
  b.MovI(3, 0);
  b.Store(3, 0, 56);  // UNDO flag = 0
  b.Update({.table_id = kDistrict, .cp = 0, .key_offset = 0});
  b.Ret(10, 0);                       // district payload address
  b.Load(2, 10, kDistrictNextDelivery);
  b.Load(4, 10, kDistrictNextOid);
  b.Cmp(2, 4);
  b.Bge("no_work");                   // nothing undelivered: no-op commit
  b.Store(2, 0, 48);                  // UNDO backup of next_delivery
  b.MovI(3, 1);
  b.Store(3, 0, 56);
  b.AddI(3, 2, 1);
  b.Store(3, 10, kDistrictNextDelivery);
  b.Load(5, 0, 8);                    // DID
  b.MulI(6, 5, 1 << 24);
  b.Add(6, 6, 2);                     // order key
  b.Store(6, 0, 24);
  b.Remove({.table_id = kNewOrderTable, .cp = 1, .key_offset = 24});
  b.Update({.table_id = kOrder, .cp = 2, .key_offset = 24});
  b.Ret(1, 1);                        // NEW-ORDER removal (fallible, early)
  b.Ret(8, 2);                        // order payload address
  b.Load(7, 0, 16);
  b.Store(7, 8, kOrderCarrier);       // stamp carrier
  b.Load(11, 8, kOrderCid);
  b.Load(12, 8, kOrderOlCnt);
  b.MovI(15, 0);                      // amount sum
  b.MovI(16, 0);                      // loop index
  b.Label("ol_loop");
  b.Cmp(16, 12);
  b.Bge("ol_done");
  b.MulI(17, 6, 16);
  b.Add(17, 17, 16);                  // order-line key
  b.Store(17, 0, 32);
  b.Update({.table_id = kOrderLine, .cp = 3, .key_offset = 32});
  b.Ret(18, 3);
  b.Load(19, 18, kOrderLineAmount);
  b.Add(15, 15, 19);
  b.MovI(20, 1);
  b.Store(20, 18, kOrderLineDelivered);
  b.AddI(16, 16, 1);
  b.Jmp("ol_loop");
  b.Label("ol_done");
  // Customer credit LAST: no fallible RET can follow, so no UNDO needed.
  b.MulI(13, 5, 100'000);
  b.Add(13, 13, 11);
  b.Store(13, 0, 40);
  b.Update({.table_id = kCustomer, .cp = 4, .key_offset = 40});
  b.Ret(14, 4);
  b.Load(21, 14, kCustomerBalance);
  b.Add(21, 21, 15);
  b.Store(21, 14, kCustomerBalance);
  b.Label("no_work");
  b.Yield();
  b.Commit().CommitTxn();
  b.Abort();
  b.Load(1, 0, 56);
  b.CmpI(1, 0);
  b.Be("ab_done");
  b.Load(1, 0, 48);
  b.Store(1, 10, kDistrictNextDelivery);
  b.Label("ab_done");
  b.AbortTxn();
  return b.Build().value();
}

// OrderStatus block layout:
//   0 d_key, 8 DID, 16 computed order key, 24 computed customer key,
//   32 computed order-line key, 40 OUT order total, 48 OUT balance.
//
// Read-only: status of the district's most recent order (the computed-key
// approximation of TPC-C's last-order-of-customer lookup).
isa::Program Tpcc::BuildOrderStatusProgram() const {
  isa::ProgramBuilder b;
  b.Logic();
  b.Search({.table_id = kDistrict, .cp = 0, .key_offset = 0});
  b.Ret(10, 0);
  b.Load(4, 10, kDistrictNextOid);
  b.CmpI(4, 3001);
  b.Ble("no_orders");                 // nothing ordered yet
  b.SubI(4, 4, 1);                    // most recent o_id
  b.Load(5, 0, 8);
  b.MulI(6, 5, 1 << 24);
  b.Add(6, 6, 4);
  b.Store(6, 0, 16);
  b.Search({.table_id = kOrder, .cp = 1, .key_offset = 16});
  b.Ret(8, 1);
  b.Load(11, 8, kOrderCid);
  b.Load(12, 8, kOrderOlCnt);
  b.MulI(13, 5, 100'000);
  b.Add(13, 13, 11);
  b.Store(13, 0, 24);
  b.Search({.table_id = kCustomer, .cp = 2, .key_offset = 24});
  b.Ret(14, 2);
  b.Load(21, 14, kCustomerBalance);
  b.Store(21, 0, 48);                 // report balance
  b.MovI(15, 0);
  b.MovI(16, 0);
  b.Label("os_loop");
  b.Cmp(16, 12);
  b.Bge("os_done");
  b.MulI(17, 6, 16);
  b.Add(17, 17, 16);
  b.Store(17, 0, 32);
  b.Search({.table_id = kOrderLine, .cp = 3, .key_offset = 32});
  b.Ret(18, 3);
  b.Load(19, 18, kOrderLineAmount);
  b.Add(15, 15, 19);
  b.AddI(16, 16, 1);
  b.Jmp("os_loop");
  b.Label("os_done");
  b.Store(15, 0, 40);                 // report order total
  b.Label("no_orders");
  b.Yield();
  b.Commit().CommitTxn();
  b.Abort().AbortTxn();
  return b.Build().value();
}

// StockLevel block layout:
//   0 d_key, 8 DID, 16 threshold, 24 computed order key, 32 computed
//   order-line key, 40 computed stock key, 48 OUT low-stock line count,
//   56 home warehouse id.
//
// Nested dynamic loops, all read-only: last (up to) 20 orders x their
// order lines x one stock row each — ~400 serial RETs per transaction,
// the heaviest control flow in the suite.
isa::Program Tpcc::BuildStockLevelProgram() const {
  isa::ProgramBuilder b;
  b.Logic();
  b.Search({.table_id = kDistrict, .cp = 0, .key_offset = 0});
  b.Ret(10, 0);
  b.Load(4, 10, kDistrictNextOid);     // next_o_id (exclusive bound)
  b.SubI(5, 4, 20);                    // lo = max(3001, next - 20)
  b.CmpI(5, 3001);
  b.Bge("have_lo");
  b.MovI(5, 3001);
  b.Label("have_lo");
  b.MovI(20, 0);                       // low-stock count
  b.Load(2, 0, 16);                    // threshold
  b.Load(6, 0, 8);                     // DID
  b.Label("sl_order_loop");
  b.Cmp(5, 4);
  b.Bge("sl_done");
  b.MulI(7, 6, 1 << 24);
  b.Add(7, 7, 5);                      // order key
  b.Store(7, 0, 24);
  b.Search({.table_id = kOrder, .cp = 1, .key_offset = 24});
  b.Ret(9, 1);
  b.Load(11, 9, kOrderOlCnt);
  b.MovI(8, 0);                        // line index
  b.Label("sl_ol_loop");
  b.Cmp(8, 11);
  b.Bge("sl_ol_done");
  b.MulI(12, 7, 16);
  b.Add(12, 12, 8);                    // order-line key
  b.Store(12, 0, 32);
  b.Search({.table_id = kOrderLine, .cp = 2, .key_offset = 32});
  b.Ret(13, 2);
  b.Load(14, 13, 0);                   // item id
  b.Load(15, 0, 56);                   // home warehouse
  b.MulI(16, 15, 1'000'000);
  b.Add(16, 16, 14);                   // stock key (home warehouse)
  b.Store(16, 0, 40);
  b.Search({.table_id = kStock, .cp = 3, .key_offset = 40});
  b.Ret(17, 3);
  b.Load(18, 17, kStockQuantity);
  b.Cmp(18, 2);
  b.Bge("sl_no_count");
  b.AddI(20, 20, 1);
  b.Label("sl_no_count");
  b.AddI(8, 8, 1);
  b.Jmp("sl_ol_loop");
  b.Label("sl_ol_done");
  b.AddI(5, 5, 1);
  b.Jmp("sl_order_loop");
  b.Label("sl_done");
  b.Store(20, 0, 48);                  // report the count
  b.Yield();
  b.Commit().CommitTxn();
  b.Abort().AbortTxn();
  return b.Build().value();
}

Status Tpcc::Setup() {
  auto make = [](db::TableId id, const char* name, uint32_t payload,
                 uint32_t buckets, bool replicated = false) {
    db::TableSchema s;
    s.id = id;
    s.name = name;
    s.index = db::IndexKind::kHash;
    s.key_len = 8;
    s.payload_len = payload;
    s.hash_buckets = buckets;
    s.replicated = replicated;
    return s;
  };
  auto& database = engine_->database();
  const uint32_t d = options_.districts_per_warehouse;
  const uint32_t c = options_.customers_per_district;
  const uint32_t i = options_.items;
  BIONICDB_RETURN_IF_ERROR(
      database.CreateTable(make(kWarehouse, "warehouse", kWarehousePayload, 16)));
  BIONICDB_RETURN_IF_ERROR(
      database.CreateTable(make(kDistrict, "district", kDistrictPayload, 64)));
  BIONICDB_RETURN_IF_ERROR(database.CreateTable(
      make(kCustomer, "customer", kCustomerPayload, d * c)));
  BIONICDB_RETURN_IF_ERROR(
      database.CreateTable(make(kHistory, "history", kHistoryPayload, 1 << 16)));
  BIONICDB_RETURN_IF_ERROR(database.CreateTable(
      make(kNewOrderTable, "new_order", kNewOrderPayload, 1 << 16)));
  BIONICDB_RETURN_IF_ERROR(
      database.CreateTable(make(kOrder, "order", kOrderPayload, 1 << 16)));
  BIONICDB_RETURN_IF_ERROR(database.CreateTable(
      make(kOrderLine, "order_line", kOrderLinePayload, 1 << 18)));
  BIONICDB_RETURN_IF_ERROR(database.CreateTable(
      make(kItem, "item", kItemPayload, i, /*replicated=*/true)));
  BIONICDB_RETURN_IF_ERROR(
      database.CreateTable(make(kStock, "stock", kStockPayload, i)));

  BIONICDB_RETURN_IF_ERROR(engine_->RegisterProcedure(
      kNewOrderTxn, BuildNewOrderProgram(), no_block_size_));
  BIONICDB_RETURN_IF_ERROR(
      engine_->RegisterProcedure(kPaymentTxn, BuildPaymentProgram(), 128));
  BIONICDB_RETURN_IF_ERROR(
      engine_->RegisterProcedure(kDeliveryTxn, BuildDeliveryProgram(), 64));
  BIONICDB_RETURN_IF_ERROR(engine_->RegisterProcedure(
      kOrderStatusTxn, BuildOrderStatusProgram(), 56));
  BIONICDB_RETURN_IF_ERROR(engine_->RegisterProcedure(
      kStockLevelTxn, BuildStockLevelProgram(), 64));

  // --- Population: one warehouse per partition -------------------------
  std::vector<uint8_t> buf(256, 0);
  auto put64 = [&buf](int64_t off, uint64_t v) {
    std::memcpy(buf.data() + off, &v, 8);
  };
  const uint32_t n_parts = database.n_partitions();
  for (uint32_t w = 0; w < n_parts; ++w) {
    std::fill(buf.begin(), buf.end(), 0);
    put64(kWarehouseYtd, 0);
    BIONICDB_RETURN_IF_ERROR(database.LoadU64Le(
        kWarehouse, w, WarehouseKey(w), buf.data(), kWarehousePayload));
    for (uint32_t dd = 0; dd < d; ++dd) {
      std::fill(buf.begin(), buf.end(), 0);
      put64(kDistrictNextOid, kInitialNextOid);
      put64(kDistrictNextDelivery, kInitialNextOid);
      BIONICDB_RETURN_IF_ERROR(database.LoadU64Le(
          kDistrict, w, DistrictKey(w, dd), buf.data(), kDistrictPayload));
      for (uint32_t cc = 0; cc < c; ++cc) {
        std::fill(buf.begin(), buf.end(), 0);
        BIONICDB_RETURN_IF_ERROR(
            database.LoadU64Le(kCustomer, w, CustomerKey(w, dd, cc), buf.data(),
                             kCustomerPayload));
      }
    }
    for (uint32_t ii = 0; ii < i; ++ii) {
      std::fill(buf.begin(), buf.end(), 0);
      put64(kStockQuantity, 50 + ii % 50);
      BIONICDB_RETURN_IF_ERROR(database.LoadU64Le(
          kStock, w, StockKey(w, ii), buf.data(), kStockPayload));
    }
  }
  // Item is replicated: Load() fans it out to every partition.
  for (uint32_t ii = 0; ii < i; ++ii) {
    std::fill(buf.begin(), buf.end(), 0);
    put64(0, ItemPrice(ii));
    BIONICDB_RETURN_IF_ERROR(
        database.LoadU64Le(kItem, 0, ItemKey(ii), buf.data(), kItemPayload));
  }
  return Status::Ok();
}

sim::Addr Tpcc::MakeNewOrder(Rng* rng, db::WorkerId home) {
  const uint32_t L = options_.ol_cnt;
  const uint32_t n_parts = engine_->database().n_partitions();
  db::TxnBlock block = engine_->AllocateBlock(kNewOrderTxn);
  uint32_t dd = uint32_t(rng->NextUint64(options_.districts_per_warehouse));
  uint32_t cc = uint32_t(rng->NextUint64(options_.customers_per_district));
  block.WriteU64(0, WarehouseKey(home));
  block.WriteU64(8, DistrictKey(home, dd));
  block.WriteU64(16, CustomerKey(home, dd, cc));
  block.WriteU64(24, CompactDistrictId(home, dd));

  // 1 % of NewOrders source one order line from a remote warehouse.
  const bool remote_txn =
      n_parts > 1 && rng->NextBool(options_.remote_neworder_fraction);
  const uint32_t remote_line =
      remote_txn ? uint32_t(rng->NextUint64(L)) : UINT32_MAX;

  // TPC-C order lines reference DISTINCT items; a duplicate would also make
  // the transaction re-update its own dirty stock tuple, which the blind
  // dirty-reject CC (section 4.7) aborts.
  std::vector<uint32_t> items;
  while (items.size() < L) {
    uint32_t cand = uint32_t(rng->NextUint64(options_.items));
    if (std::find(items.begin(), items.end(), cand) == items.end()) {
      items.push_back(cand);
    }
  }
  for (uint32_t i = 0; i < L; ++i) {
    uint32_t item = items[i];
    uint32_t qty = 1 + uint32_t(rng->NextUint64(10));
    uint32_t supply = home;
    if (i == remote_line) {
      supply = uint32_t(rng->NextUint64(n_parts - 1));
      if (supply >= home) ++supply;
    }
    const int64_t entry = int64_t(no_items_base_ + 32 * i);
    block.WriteU64(entry + 0, ItemKey(item));
    block.WriteU64(entry + 8, StockKey(supply, item));
    block.WriteU64(entry + 16, qty);
    block.WriteU64(entry + 24, supply);
    // Order-line payload staging: i_id, supply_w, qty, amount.
    const int64_t pl = int64_t(no_ol_pl_ + kOrderLinePayload * i);
    block.WriteU64(pl + 0, item);
    block.WriteU64(pl + 8, supply);
    block.WriteU64(pl + 16, qty);
    block.WriteU64(pl + 24, qty * ItemPrice(item));
  }
  // Order payload staging: c_id, entry_ts, ol_cnt.
  block.WriteU64(int64_t(no_order_pl_) + 0, cc);
  block.WriteU64(int64_t(no_order_pl_) + 16, L);
  block.WriteU64(int64_t(no_undo_flag_), 0);
  return block.base();
}

sim::Addr Tpcc::MakePayment(Rng* rng, db::WorkerId home) {
  const uint32_t n_parts = engine_->database().n_partitions();
  db::TxnBlock block = engine_->AllocateBlock(kPaymentTxn);
  uint32_t dd = uint32_t(rng->NextUint64(options_.districts_per_warehouse));
  uint32_t cc = uint32_t(rng->NextUint64(options_.customers_per_district));
  // 15 % of Payments pay a customer of a remote warehouse.
  uint32_t cw = home;
  if (n_parts > 1 && rng->NextBool(options_.remote_payment_fraction)) {
    cw = uint32_t(rng->NextUint64(n_parts - 1));
    if (cw >= home) ++cw;
  }
  uint64_t amount = 1 + rng->NextUint64(5000);
  block.WriteU64(0, WarehouseKey(home));
  block.WriteU64(8, DistrictKey(home, dd));
  block.WriteU64(16, CustomerKey(cw, dd, cc));
  block.WriteU64(24, cw);
  block.WriteU64(32, history_seq_[home]++);
  block.WriteU64(40, amount);
  block.WriteU64(48, amount);  // history payload: amount
  block.WriteU64(56, CustomerKey(cw, dd, cc));
  return block.base();
}

sim::Addr Tpcc::MakeMixed(Rng* rng, db::WorkerId home) {
  return rng->NextBool(0.5) ? MakeNewOrder(rng, home) : MakePayment(rng, home);
}

std::function<sim::Addr(db::WorkerId)> Tpcc::Factory(Rng* rng) {
  return [this, rng](db::WorkerId home) { return MakeMixed(rng, home); };
}

sim::Addr Tpcc::MakeDelivery(Rng* rng, db::WorkerId home) {
  db::TxnBlock block = engine_->AllocateBlock(kDeliveryTxn);
  uint32_t dd = uint32_t(rng->NextUint64(options_.districts_per_warehouse));
  block.WriteU64(0, DistrictKey(home, dd));
  block.WriteU64(8, CompactDistrictId(home, dd));
  block.WriteU64(16, 1 + rng->NextUint64(10));  // carrier id
  return block.base();
}

sim::Addr Tpcc::MakeStockLevel(Rng* rng, db::WorkerId home,
                               uint64_t threshold) {
  db::TxnBlock block = engine_->AllocateBlock(kStockLevelTxn);
  uint32_t dd = uint32_t(rng->NextUint64(options_.districts_per_warehouse));
  block.WriteU64(0, DistrictKey(home, dd));
  block.WriteU64(8, CompactDistrictId(home, dd));
  block.WriteU64(16, threshold);
  block.WriteU64(56, home);
  return block.base();
}

sim::Addr Tpcc::MakeOrderStatus(Rng* rng, db::WorkerId home) {
  db::TxnBlock block = engine_->AllocateBlock(kOrderStatusTxn);
  uint32_t dd = uint32_t(rng->NextUint64(options_.districts_per_warehouse));
  block.WriteU64(0, DistrictKey(home, dd));
  block.WriteU64(8, CompactDistrictId(home, dd));
  return block.base();
}

}  // namespace bionicdb::workload
