#include "workload/kv.h"

#include "common/hash.h"
#include "isa/program.h"

namespace bionicdb::workload {

namespace {

isa::Program BulkSearchProgram(uint32_t n, bool framed) {
  isa::ProgramBuilder b;
  b.Logic();
  if (framed) b.BeginBatch();
  for (uint32_t i = 0; i < n; ++i) {
    b.Search({.table_id = KvBench::kTable,
              .cp = isa::Reg(i),
              .key_offset = int32_t(8 * i)});
  }
  if (framed) b.EndBatch();
  b.Yield();
  b.Commit();
  for (uint32_t i = 0; i < n; ++i) b.Ret(1, isa::Reg(i));
  b.CommitTxn();
  b.Abort().AbortTxn();
  return b.Build().value();
}

// Layout: keys at [0, 8n); payloads at [8n, 8n + n*payload_len).
isa::Program BulkInsertProgram(uint32_t n, uint32_t payload_len) {
  isa::ProgramBuilder b;
  b.Logic();
  for (uint32_t i = 0; i < n; ++i) {
    b.Insert({.table_id = KvBench::kTable,
              .cp = isa::Reg(i),
              .key_offset = int32_t(8 * i),
              .aux_offset = int32_t(8 * n + payload_len * i)});
  }
  b.Yield();
  b.Commit();
  for (uint32_t i = 0; i < n; ++i) b.Ret(1, isa::Reg(i));
  b.CommitTxn();
  b.Abort().AbortTxn();
  return b.Build().value();
}

isa::Program BulkRemoveProgram(uint32_t n, bool framed) {
  isa::ProgramBuilder b;
  b.Logic();
  if (framed) b.BeginBatch();
  for (uint32_t i = 0; i < n; ++i) {
    b.Remove({.table_id = KvBench::kTable,
              .cp = isa::Reg(i),
              .key_offset = int32_t(8 * i)});
  }
  if (framed) b.EndBatch();
  b.Yield();
  b.Commit();
  for (uint32_t i = 0; i < n; ++i) b.Ret(1, isa::Reg(i));
  b.CommitTxn();
  b.Abort().AbortTxn();
  return b.Build().value();
}

}  // namespace

KvBench::KvBench(core::BionicDb* engine, const KvOptions& options)
    : engine_(engine),
      options_(options),
      next_fresh_key_(engine->database().n_partitions()) {
  // Fresh-key ranges start far above the preloaded keyspace, striped per
  // worker so concurrent inserts never collide across partitions.
  for (uint32_t w = 0; w < next_fresh_key_.size(); ++w) {
    next_fresh_key_[w] = (1ull << 40) + (uint64_t(w) << 32);
  }
}

Status KvBench::Setup() {
  db::TableSchema schema;
  schema.id = kTable;
  schema.name = "kv";
  schema.index = options_.index;
  schema.key_len = 8;
  schema.payload_len = options_.payload_len;
  // Oversized (~4x) to keep conflict chains — and hence the Traverse
  // stage — rare, as the paper recommends (section 4.4.1).
  schema.hash_buckets = uint32_t(options_.preload_per_partition) * 4 + 1024;
  BIONICDB_RETURN_IF_ERROR(engine_->database().CreateTable(schema));

  const uint32_t n = options_.ops_per_txn;
  BIONICDB_RETURN_IF_ERROR(engine_->RegisterProcedure(
      kSearchTxn, BulkSearchProgram(n, options_.batch_framing), 8ull * n));
  BIONICDB_RETURN_IF_ERROR(engine_->RegisterProcedure(
      kInsertTxn, BulkInsertProgram(n, options_.payload_len),
      8ull * n + uint64_t(options_.payload_len) * n));
  BIONICDB_RETURN_IF_ERROR(engine_->RegisterProcedure(
      kRemoveTxn, BulkRemoveProgram(n, options_.batch_framing), 8ull * n));

  std::vector<uint8_t> payload(options_.payload_len, 0xab);
  const uint64_t r = options_.preload_per_partition;
  for (uint32_t p = 0; p < engine_->database().n_partitions(); ++p) {
    for (uint64_t k = 0; k < r; ++k) {
      BIONICDB_RETURN_IF_ERROR(engine_->database().LoadU64(
          kTable, p, p * r + k, payload.data(), uint32_t(payload.size())));
    }
  }
  return Status::Ok();
}

sim::Addr KvBench::MakeSearchTxn(Rng* rng, db::WorkerId worker) {
  db::TxnBlock block = engine_->AllocateBlock(kSearchTxn);
  const uint64_t r = options_.preload_per_partition;
  const uint64_t base = uint64_t(worker) * r;
  if (options_.dense) {
    const uint32_t n = options_.ops_per_txn;
    const uint64_t start = rng->NextUint64(r > n ? r - n + 1 : 1);
    for (uint32_t i = 0; i < n; ++i) {
      block.WriteKeyU64(int64_t(8 * i), base + start + i);
    }
    return block.base();
  }
  for (uint32_t i = 0; i < options_.ops_per_txn; ++i) {
    block.WriteKeyU64(int64_t(8 * i), base + rng->NextUint64(r));
  }
  return block.base();
}

sim::Addr KvBench::MakeInsertTxn(db::WorkerId worker, bool sequential) {
  db::TxnBlock block = engine_->AllocateBlock(kInsertTxn);
  const uint32_t n = options_.ops_per_txn;
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t raw = next_fresh_key_[worker]++;
    uint64_t key = sequential ? raw : Fnv1aHash64(raw) | (1ull << 63);
    block.WriteKeyU64(int64_t(8 * i), key);
    block.WriteU64(int64_t(8 * n + options_.payload_len * i), raw);
  }
  return block.base();
}

sim::Addr KvBench::MakeRemoveTxn(const std::vector<uint64_t>& keys) {
  db::TxnBlock block = engine_->AllocateBlock(kRemoveTxn);
  for (uint32_t i = 0; i < options_.ops_per_txn; ++i) {
    block.WriteKeyU64(int64_t(8 * i), keys[i]);
  }
  return block.base();
}

std::function<sim::Addr(db::WorkerId)> KvBench::Factory(Rng* rng) {
  return [this, rng](db::WorkerId w) { return MakeSearchTxn(rng, w); };
}

}  // namespace bionicdb::workload
