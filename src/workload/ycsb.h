// YCSB workload for BionicDB (paper section 5.3).
//
// The paper's YCSB transaction issues 16 independent DB accesses with no
// data dependency over a table of 8-byte integer keys and 1 KB payloads,
// 300 K records per partition. Variants used in the evaluation:
//  * YCSB-C  — read-only (Figures 9a, 10b, 12a, 13);
//  * YCSB-E  — modified to scan-only, fixed 50-record scans (Fig. 11c/d);
//  * a cross-partition variant where 75 % of accesses are remote (Fig. 13);
//  * a footprint sweep (1..64 accesses per transaction) for Fig. 12a.
// A read/update mix (YCSB-A/B flavour) is also provided; the paper omits
// YCSB-B for brevity but the engine supports it, and it exercises the
// UNDO-logging commit path.
#ifndef BIONICDB_WORKLOAD_YCSB_H_
#define BIONICDB_WORKLOAD_YCSB_H_

#include <cstdint>
#include <functional>

#include "common/random.h"
#include "common/status.h"
#include "core/engine.h"

namespace bionicdb::workload {

struct YcsbOptions {
  enum class Mode {
    kReadOnly,   // YCSB-C
    kUpdateMix,  // reads + in-place updates (YCSB-A/B flavour)
    kScanOnly,   // modified YCSB-E
    kMultisite,  // read-only with explicit per-access partition routing
    /// Update mix with explicit per-access partition routing across a
    /// sharded cluster: a `multisite_fraction` of transactions write at
    /// least one tuple owned by a foreign chip, forcing the engine's
    /// two-phase distributed commit. Single-chip runs (workers_per_chip
    /// = 0 or one chip) never draw the multisite coin, so their RNG
    /// stream — and therefore their results — are identical across
    /// fractions.
    kMultisiteUpdate,
    /// UCSB-style bulk point ops with batch framing: the transaction's
    /// DB instructions are wrapped in BeginBatch()/EndBatch() so a
    /// kBatched index pipeline flushes on the group end instead of
    /// waiting out its collector timeout. kBatchGet is kReadOnly framed;
    /// kBatchPut is kUpdateMix framed (same UNDO commit discipline).
    kBatchGet,
    kBatchPut,
  };

  Mode mode = Mode::kReadOnly;
  uint32_t records_per_partition = 300'000;
  uint32_t payload_len = 1024;
  uint32_t accesses_per_txn = 16;
  uint32_t updates_per_txn = 8;    // kUpdateMix: first N accesses update
  uint32_t scan_len = 50;          // kScanOnly
  /// kScanOnly: when >0, every transaction draws its scan length
  /// uniformly from [scan_len_min, scan_len] and passes it through the
  /// Scan op's scan_reg register override (the widened YCSB-E variant);
  /// 0 keeps the fixed scan_len immediate.
  uint32_t scan_len_min = 0;
  /// kMultisite: probability that an access targets a remote partition.
  double remote_fraction = 0.75;
  /// kMultisiteUpdate: probability that a transaction spans chips.
  double multisite_fraction = 0.1;
  /// kMultisiteUpdate: chip grouping (must match the engine's
  /// Softcore::Config::TwoPc::workers_per_chip; 0 = single chip).
  uint32_t workers_per_chip = 0;
  bool zipfian = false;            // uniform by default (paper uses uniform)
};

/// Sets up and drives a YCSB database on a BionicDB engine.
class Ycsb {
 public:
  static constexpr db::TableId kTable = 0;
  static constexpr db::TxnTypeId kTxnType = 100;

  Ycsb(core::BionicDb* engine, const YcsbOptions& options);

  /// Creates the table, registers the stored procedure and bulk-loads
  /// `records_per_partition` tuples into every partition.
  Status Setup();

  /// Builds one transaction block for `worker` (keys local to its partition
  /// unless kMultisite). Returns the block's base address.
  sim::Addr MakeTxn(Rng* rng, db::WorkerId worker);

  /// Submits `n` transactions per worker and returns total submitted.
  uint64_t SubmitBatch(Rng* rng, uint64_t n_per_worker);

  /// On-demand generator in the host driver's TxnFactory shape (for the
  /// closed/open-loop drivers, which pull transactions as slots free
  /// instead of pre-populating blocks). `rng` and this workload must
  /// outlive the returned function.
  std::function<sim::Addr(db::WorkerId)> Factory(Rng* rng);

  uint64_t block_data_size() const { return block_data_size_; }
  const YcsbOptions& options() const { return options_; }

 private:
  uint64_t RandomKey(Rng* rng, db::PartitionId partition);

  core::BionicDb* engine_;
  YcsbOptions options_;
  uint64_t block_data_size_ = 0;
  ZipfianGenerator zipf_;
};

}  // namespace bionicdb::workload

#endif  // BIONICDB_WORKLOAD_YCSB_H_
