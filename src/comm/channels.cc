#include "comm/channels.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace bionicdb::comm {

CommFabric::CommFabric(uint32_t n_workers, const sim::TimingConfig& timing,
                       Topology topology, ClusterConfig cluster)
    : sim::Component("comm_fabric"),
      n_workers_(n_workers),
      timing_(timing),
      topology_(topology),
      cluster_(cluster),
      request_inbox_(n_workers),
      response_inbox_(n_workers),
      staged_(n_workers),
      stamped_requests_(n_workers),
      stamped_responses_(n_workers) {
  if (cluster_.workers_per_node > 0) {
    n_chips_ = (n_workers_ + cluster_.workers_per_node - 1) /
               cluster_.workers_per_node;
  }
  if (n_chips_ == 0) n_chips_ = 1;
  links_.resize(size_t(n_chips_) * n_chips_);
}

uint64_t CommFabric::HopLatency(db::WorkerId src, db::WorkerId dst) const {
  // Chip-crossing messages take the inter-chip tier: one network hop plus
  // an on-chip hop at each end.
  if (ChipOf(src) != ChipOf(dst)) {
    return timing_.interchip_latency_cycles + 2ull * timing_.onchip_hop_cycles;
  }
  if (topology_ == Topology::kCrossbar) return timing_.onchip_hop_cycles;
  // Ring: shortest direction around the ring, one hop-latency per step.
  uint32_t fwd = (dst + n_workers_ - src) % n_workers_;
  uint32_t bwd = (src + n_workers_ - dst) % n_workers_;
  uint64_t steps = std::min(fwd, bwd);
  if (steps == 0) steps = 1;
  return steps * timing_.onchip_hop_cycles;
}

uint64_t CommFabric::MinHopLatency() const {
  if (n_workers_ < 2) return timing_.onchip_hop_cycles;
  uint64_t min_hop = sim::kNeverWakes;
  for (uint32_t s = 0; s < n_workers_; ++s) {
    min_hop = std::min(min_hop, MinHopLatencyFrom(s));
  }
  return min_hop;
}

uint64_t CommFabric::MinHopLatencyFrom(uint32_t island) const {
  if (n_workers_ < 2) return timing_.onchip_hop_cycles;
  uint64_t min_hop = sim::kNeverWakes;
  for (uint32_t d = 0; d < n_workers_; ++d) {
    if (d != island) min_hop = std::min(min_hop, HopLatency(island, d));
  }
  return min_hop;
}

void CommFabric::Transmit(uint64_t now, db::WorkerId src, db::WorkerId dst,
                          const Envelope& env, sim::RingQueue<InFlight>* wire) {
  uint64_t depart = now;
  const uint32_t src_chip = ChipOf(src);
  const uint32_t dst_chip = ChipOf(dst);
  if (src_chip != dst_chip) {
    // Finite link bandwidth: one packet per interchip_issue_gap_cycles on
    // each directed chip-pair link; later packets queue behind earlier
    // ones. Queueing only pushes deliver_at later, so the epoch lookahead
    // bound (send at s delivers no earlier than s + min hop) still holds.
    LinkState& link = links_[size_t(src_chip) * n_chips_ + dst_chip];
    const uint64_t gap = std::max<uint64_t>(
        1, timing_.interchip_issue_gap_cycles);
    if (link.next_free > now) {
      uint64_t backlog = (link.next_free - now + gap - 1) / gap;
      link.queue_peak = std::max(link.queue_peak, backlog);
      depart = link.next_free;
    }
    link.next_free = depart + gap;
  }
  uint64_t deliver_at = depart + HopLatency(src, dst);
  FaultDecision fd;
  if (fault_hook_ != nullptr) {
    fd = fault_hook_->OnPacket(now, env.cls(), src, dst);
  }
  if (fd.delay_cycles > 0) counters_.Add("packets_delayed");
  if (fd.drop) {
    // Without reliability the packet is simply lost; with it, the sender's
    // unacked copy retransmits on timeout.
    counters_.Add(env.is_request() ? "requests_dropped"
                                   : "responses_dropped");
  } else {
    wire->push_back({deliver_at + fd.delay_cycles, dst, env, src});
  }
  if (fd.duplicate) {
    counters_.Add("packets_duplicated");
    wire->push_back({deliver_at + fd.delay_cycles + 1, dst, env, src});
  }
}

void CommFabric::Send(uint64_t now, db::WorkerId src, db::WorkerId dst,
                      const Envelope& env) {
  if (epoch_mode_) {
    // Island-confined staging: `src` is the calling island's worker, so no
    // other thread touches staged_[src] until the barrier.
    staged_[src].push_back({now, dst, env});
    return;
  }
  SendNow(now, src, dst, env);
}

void CommFabric::SendNow(uint64_t now, db::WorkerId src, db::WorkerId dst,
                         const Envelope& env) {
  const bool is_request = env.is_request();
  Envelope sent = env;
  auto* unacked = is_request ? &unacked_requests_ : &unacked_responses_;
  if (reliability_.enabled) {
    sent.hdr.seq = ++next_seq_;
    (*unacked)[sent.hdr.seq] = Unacked{
        src, dst, sent, now + reliability_.retransmit_timeout_cycles};
  }
  Transmit(now, src, dst, sent,
           is_request ? &request_wire_ : &response_wire_);
  ++messages_sent_;
  ++class_sent_[size_t(env.cls())];
  if (ChipOf(src) != ChipOf(dst)) {
    // Logical inter-chip sends; retransmissions re-enter Transmit for
    // bandwidth but are counted under fabric/<class>/retransmitted.
    ++links_[size_t(ChipOf(src)) * n_chips_ + ChipOf(dst)].sent;
  }
  counters_.Add(is_request ? "requests_sent" : "responses_sent");
}

void CommFabric::DeliverWire(uint64_t cycle, sim::RingQueue<InFlight>* wire,
                             std::vector<sim::RingQueue<Envelope>>* inboxes) {
  // Latencies differ per (src,dst) path (ring distance, node crossings),
  // so the wire is scanned rather than popped FIFO: a short-path message
  // may physically overtake a long-path one. Per-path ordering is
  // preserved because same-path messages share latency and the scan keeps
  // relative order — the in-place compaction below shifts keepers forward
  // without reordering them (and without deque's block churn).
  const size_t n = wire->size();
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    InFlight& f = (*wire)[i];
    if (f.deliver_at > cycle) {
      if (kept != i) (*wire)[kept] = std::move(f);
      ++kept;
      continue;
    }
    if (reliability_.enabled && f.env.hdr.seq != 0) {
      // Ack every arrival (even duplicates, so a lost first ack still
      // quiesces the sender) but deliver only the first copy.
      ack_wire_.push_back(
          {cycle + HopLatency(f.dst, f.src), f.src, f.env.hdr.seq});
      if (!delivered_seqs_.insert(f.env.hdr.seq).second) {
        counters_.Add("duplicates_suppressed");
        continue;
      }
    }
    // First delivery of this logical packet: counted here in ALL modes
    // (serial/event-driven Tick, and EndEpoch's authoritative replay
    // where inboxes == nullptr), never in DeliverStamps.
    ++class_delivered_[size_t(f.env.cls())];
    if (ChipOf(f.src) != ChipOf(f.dst)) {
      ++links_[size_t(ChipOf(f.src)) * n_chips_ + ChipOf(f.dst)].delivered;
    }
    if (inboxes != nullptr) (*inboxes)[f.dst].push_back(std::move(f.env));
  }
  wire->truncate(kept);
}

void CommFabric::RetireAcks(uint64_t cycle) {
  // Arrived acks retire the sender's unacked copies (same in-place
  // compaction as DeliverWire: relative order preserved, no allocation).
  const size_t n = ack_wire_.size();
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    InFlightAck& a = ack_wire_[i];
    if (a.deliver_at > cycle) {
      if (kept != i) ack_wire_[kept] = a;
      ++kept;
      continue;
    }
    unacked_requests_.erase(a.seq);
    unacked_responses_.erase(a.seq);
  }
  ack_wire_.truncate(kept);
}

void CommFabric::RunRetransmits(uint64_t cycle) {
  // Timed-out packets retransmit (subject to fault injection again — a
  // retry can be dropped too; with drop probability < 1 delivery is
  // eventually certain). Requests scan before responses; within a map,
  // sequence order keeps the fault-hook consultation deterministic.
  auto retransmit = [this, cycle](auto* unacked, auto* wire) {
    for (auto& [seq, entry] : *unacked) {
      if (cycle >= entry.next_retransmit_at) {
        ++retransmits_;
        counters_.Add("retransmits");
        ++class_retransmitted_[size_t(entry.env.cls())];
        Transmit(cycle, entry.src, entry.dst, entry.env, wire);
        entry.next_retransmit_at =
            cycle + reliability_.retransmit_timeout_cycles;
      }
    }
  };
  retransmit(&unacked_requests_, &request_wire_);
  retransmit(&unacked_responses_, &response_wire_);
}

void CommFabric::Tick(uint64_t cycle) {
  // Empty-wire fast path: single-site workloads (and any cycle with no
  // packets in flight) skip the delivery scans entirely.
  if (!request_wire_.empty()) DeliverWire(cycle, &request_wire_, &request_inbox_);
  if (!response_wire_.empty()) {
    DeliverWire(cycle, &response_wire_, &response_inbox_);
  }
  if (!reliability_.enabled) return;
  RetireAcks(cycle);
  RunRetransmits(cycle);
}

uint64_t CommFabric::NextWakeCycle(uint64_t now) const {
  uint64_t wake = sim::kNeverWakes;
  for (const auto& p : request_wire_) wake = std::min(wake, p.deliver_at);
  for (const auto& p : response_wire_) wake = std::min(wake, p.deliver_at);
  if (reliability_.enabled) {
    for (const auto& p : ack_wire_) wake = std::min(wake, p.deliver_at);
    for (const auto& [seq, u] : unacked_requests_) {
      wake = std::min(wake, u.next_retransmit_at);
    }
    for (const auto& [seq, u] : unacked_responses_) {
      wake = std::min(wake, u.next_retransmit_at);
    }
  }
  return wake > now ? wake : now + 1;
}

bool CommFabric::Idle() const { return !BusyNow(); }

// --- Epoch machinery (parallel island execution) -------------------------

uint64_t CommFabric::NextDeliveryCycle() const {
  uint64_t c = sim::kNeverWakes;
  for (const auto& p : request_wire_) c = std::min(c, p.deliver_at);
  for (const auto& p : response_wire_) c = std::min(c, p.deliver_at);
  return c;
}

void CommFabric::NextDeliveryCyclesTo(
    std::vector<uint64_t>* per_island) const {
  std::fill(per_island->begin(), per_island->end(), sim::kNeverWakes);
  auto scan = [per_island](const sim::RingQueue<InFlight>& wire) {
    for (const auto& p : wire) {
      if (p.dst < per_island->size()) {
        (*per_island)[p.dst] = std::min((*per_island)[p.dst], p.deliver_at);
      }
    }
  };
  scan(request_wire_);
  scan(response_wire_);
}

uint64_t CommFabric::NextInternalCycle() const {
  if (!reliability_.enabled) return sim::kNeverWakes;
  uint64_t c = sim::kNeverWakes;
  for (const auto& [seq, u] : unacked_requests_) {
    c = std::min(c, u.next_retransmit_at);
  }
  for (const auto& [seq, u] : unacked_responses_) {
    c = std::min(c, u.next_retransmit_at);
  }
  return c;
}

void CommFabric::BeginEpoch(uint64_t from, uint64_t to) {
  (void)from;
  // Overlay over delivered_seqs_: sequences whose FIRST copy lands inside
  // this epoch. Planning must not mutate real dedup state (EndEpoch replays
  // it authoritatively), but must still stage only one copy per sequence.
  // Sequences are fabric-unique across both wires, so one overlay serves
  // both plans.
  std::unordered_set<uint64_t> planned;
  auto plan = [&](const sim::RingQueue<InFlight>& wire, auto& stamped) {
    std::vector<const InFlight*> due;
    for (const auto& p : wire) {
      if (p.deliver_at <= to) {
        assert(p.deliver_at > from);
        due.push_back(&p);
      }
    }
    // Serial delivery order: by cycle, then wire order within a cycle
    // (stable sort preserves the wire scan order on ties).
    std::stable_sort(due.begin(), due.end(),
                     [](const InFlight* a, const InFlight* b) {
                       return a->deliver_at < b->deliver_at;
                     });
    for (const InFlight* p : due) {
      if (reliability_.enabled && p->env.hdr.seq != 0) {
        if (delivered_seqs_.count(p->env.hdr.seq) > 0 ||
            !planned.insert(p->env.hdr.seq).second) {
          continue;  // duplicate — EndEpoch accounts for its suppression
        }
      }
      stamped[p->dst].push_back({p->deliver_at, p->env});
    }
  };
#ifndef NDEBUG
  for (const auto& q : stamped_requests_) assert(q.empty());
  for (const auto& q : stamped_responses_) assert(q.empty());
#endif
  plan(request_wire_, stamped_requests_);
  plan(response_wire_, stamped_responses_);
}

uint64_t CommFabric::NextEventCycle() const {
  uint64_t c = sim::kNeverWakes;
  for (const auto& p : request_wire_) c = std::min(c, p.deliver_at);
  for (const auto& p : response_wire_) c = std::min(c, p.deliver_at);
  for (const auto& p : ack_wire_) c = std::min(c, p.deliver_at);
  for (const auto& [seq, u] : unacked_requests_) {
    c = std::min(c, u.next_retransmit_at);
  }
  for (const auto& [seq, u] : unacked_responses_) {
    c = std::min(c, u.next_retransmit_at);
  }
  for (const auto& q : staged_) {
    if (!q.empty()) c = std::min(c, q.front().cycle);
  }
  return c;
}

void CommFabric::ReplayStagedSends(uint64_t cycle) {
  // Serial send order within a cycle: components tick in worker-id order
  // after the fabric, and each worker's sends follow its program order —
  // exactly the per-src queue order here.
  for (uint32_t src = 0; src < n_workers_; ++src) {
    auto& q = staged_[src];
    while (!q.empty() && q.front().cycle == cycle) {
      SendNow(cycle, src, q.front().dst, q.front().env);
      q.pop_front();
    }
  }
}

void CommFabric::EndEpoch(uint64_t from, uint64_t to) {
  uint64_t prev = from;
  for (;;) {
    uint64_t c = NextEventCycle();
    if (c > to) break;
    assert(c > prev);
    // Busy/idle attribution mirrors the serial per-cycle sample exactly.
    // Non-event cycles (prev, c): fabric state is constant (post prev's
    // sends), so one probe covers the whole span — the event-driven serial
    // mode does the same via its skip probe.
    if (BusyNow()) {
      epoch_busy_cycles_ += (c - 1) - prev;
      last_active_cycle_ = std::max(last_active_cycle_, c - 1);
    }
    last_active_cycle_ = std::max(last_active_cycle_, c);
    DeliverWire(c, &request_wire_, nullptr);
    DeliverWire(c, &response_wire_, nullptr);
    if (reliability_.enabled) {
      RetireAcks(c);
      RunRetransmits(c);
    }
    // The serial sample at an event cycle is taken after the fabric's tick
    // but before later components (the workers) send at the same cycle.
    if (BusyNow()) ++epoch_busy_cycles_;
    ReplayStagedSends(c);
    prev = c;
  }
  if (to > prev && BusyNow()) {
    epoch_busy_cycles_ += to - prev;
    last_active_cycle_ = std::max(last_active_cycle_, to);
  }
#ifndef NDEBUG
  // Every staged send carried a cycle inside the epoch, and every stamp was
  // consumed by its island before the barrier.
  for (const auto& q : staged_) assert(q.empty());
  for (const auto& q : stamped_requests_) assert(q.empty());
  for (const auto& q : stamped_responses_) assert(q.empty());
#endif
}

uint64_t CommFabric::NextStampCycle(uint32_t island, uint64_t now) const {
  uint64_t wake = sim::kNeverWakes;
  if (!stamped_requests_[island].empty()) {
    wake = std::min(wake, stamped_requests_[island].front().first);
  }
  if (!stamped_responses_[island].empty()) {
    wake = std::min(wake, stamped_responses_[island].front().first);
  }
  return wake > now ? wake : now + 1;
}

void CommFabric::DeliverStamps(uint32_t island, uint64_t cycle) {
  auto& reqs = stamped_requests_[island];
  while (!reqs.empty() && reqs.front().first == cycle) {
    request_inbox_[island].push_back(std::move(reqs.front().second));
    reqs.pop_front();
  }
  auto& resps = stamped_responses_[island];
  while (!resps.empty() && resps.front().first == cycle) {
    response_inbox_[island].push_back(std::move(resps.front().second));
    resps.pop_front();
  }
}

void CommFabric::CollectStats(StatsScope scope) const {
  scope.SetCounter("messages_sent", messages_sent_);
  scope.SetCounter("n_workers", n_workers_);
  for (uint32_t c = 0; c < kNumMessageClasses; ++c) {
    StatsScope cls = scope.Sub(MessageClassName(MessageClass(c)));
    cls.SetCounter("sent", class_sent_[c]);
    cls.SetCounter("delivered", class_delivered_[c]);
    cls.SetCounter("retransmitted", class_retransmitted_[c]);
  }
  if (n_chips_ > 1) {
    StatsScope interchip = scope.Sub("interchip");
    for (uint32_t s = 0; s < n_chips_; ++s) {
      for (uint32_t d = 0; d < n_chips_; ++d) {
        if (s == d) continue;
        const LinkState& link = links_[size_t(s) * n_chips_ + d];
        StatsScope ls = interchip.Sub("c" + std::to_string(s) + "_c" +
                                      std::to_string(d));
        ls.SetCounter("sent", link.sent);
        ls.SetCounter("delivered", link.delivered);
        ls.SetCounter("queue_peak", link.queue_peak);
      }
    }
  }
  scope.MergeCounterSet(counters_);
}

}  // namespace bionicdb::comm
