#include "comm/channels.h"

namespace bionicdb::comm {

CommFabric::CommFabric(uint32_t n_workers, const sim::TimingConfig& timing,
                       Topology topology, ClusterConfig cluster)
    : sim::Component("comm_fabric"),
      n_workers_(n_workers),
      timing_(timing),
      topology_(topology),
      cluster_(cluster),
      request_inbox_(n_workers),
      response_inbox_(n_workers) {}

uint64_t CommFabric::HopLatency(db::WorkerId src, db::WorkerId dst) const {
  // Node-crossing messages take the inter-node link: one network hop plus
  // an on-chip hop at each end.
  if (cluster_.workers_per_node > 0 &&
      src / cluster_.workers_per_node != dst / cluster_.workers_per_node) {
    return cluster_.inter_node_cycles + 2ull * timing_.onchip_hop_cycles;
  }
  if (topology_ == Topology::kCrossbar) return timing_.onchip_hop_cycles;
  // Ring: shortest direction around the ring, one hop-latency per step.
  uint32_t fwd = (dst + n_workers_ - src) % n_workers_;
  uint32_t bwd = (src + n_workers_ - dst) % n_workers_;
  uint64_t steps = std::min(fwd, bwd);
  if (steps == 0) steps = 1;
  return steps * timing_.onchip_hop_cycles;
}

void CommFabric::SendRequest(uint64_t now, db::WorkerId src, db::WorkerId dst,
                             const index::DbOp& op) {
  request_wire_.push_back({now + HopLatency(src, dst), dst, op});
  ++messages_sent_;
  counters_.Add("requests_sent");
}

void CommFabric::SendResponse(uint64_t now, db::WorkerId src,
                              db::WorkerId dst,
                              const index::DbResult& result) {
  response_wire_.push_back({now + HopLatency(src, dst), dst, result});
  ++messages_sent_;
  counters_.Add("responses_sent");
}

void CommFabric::Tick(uint64_t cycle) {
  // Latencies differ per (src,dst) path (ring distance, node crossings),
  // so the wire is scanned rather than popped FIFO: a short-path message
  // may physically overtake a long-path one. Per-path ordering is
  // preserved because same-path messages share latency and the scan keeps
  // relative order.
  auto deliver = [cycle](auto* wire, auto* inboxes) {
    for (auto it = wire->begin(); it != wire->end();) {
      if (it->deliver_at <= cycle) {
        (*inboxes)[it->dst].push_back(it->payload);
        it = wire->erase(it);
      } else {
        ++it;
      }
    }
  };
  deliver(&request_wire_, &request_inbox_);
  deliver(&response_wire_, &response_inbox_);
}

bool CommFabric::Idle() const {
  if (!request_wire_.empty() || !response_wire_.empty()) return false;
  for (const auto& q : request_inbox_) {
    if (!q.empty()) return false;
  }
  for (const auto& q : response_inbox_) {
    if (!q.empty()) return false;
  }
  return true;
}

void CommFabric::CollectStats(StatsScope scope) const {
  scope.SetCounter("messages_sent", messages_sent_);
  scope.SetCounter("n_workers", n_workers_);
  scope.MergeCounterSet(counters_);
}

}  // namespace bionicdb::comm
