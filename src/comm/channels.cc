#include "comm/channels.h"

#include <algorithm>

namespace bionicdb::comm {

CommFabric::CommFabric(uint32_t n_workers, const sim::TimingConfig& timing,
                       Topology topology, ClusterConfig cluster)
    : sim::Component("comm_fabric"),
      n_workers_(n_workers),
      timing_(timing),
      topology_(topology),
      cluster_(cluster),
      request_inbox_(n_workers),
      response_inbox_(n_workers) {}

uint64_t CommFabric::HopLatency(db::WorkerId src, db::WorkerId dst) const {
  // Node-crossing messages take the inter-node link: one network hop plus
  // an on-chip hop at each end.
  if (cluster_.workers_per_node > 0 &&
      src / cluster_.workers_per_node != dst / cluster_.workers_per_node) {
    return cluster_.inter_node_cycles + 2ull * timing_.onchip_hop_cycles;
  }
  if (topology_ == Topology::kCrossbar) return timing_.onchip_hop_cycles;
  // Ring: shortest direction around the ring, one hop-latency per step.
  uint32_t fwd = (dst + n_workers_ - src) % n_workers_;
  uint32_t bwd = (src + n_workers_ - dst) % n_workers_;
  uint64_t steps = std::min(fwd, bwd);
  if (steps == 0) steps = 1;
  return steps * timing_.onchip_hop_cycles;
}

template <typename T>
void CommFabric::Transmit(uint64_t now, bool is_request, db::WorkerId src,
                          db::WorkerId dst, const T& payload, uint64_t seq,
                          std::deque<InFlight<T>>* wire) {
  uint64_t deliver_at = now + HopLatency(src, dst);
  FaultDecision fd;
  if (fault_hook_ != nullptr) {
    fd = fault_hook_->OnPacket(now, is_request, src, dst);
  }
  if (fd.delay_cycles > 0) counters_.Add("packets_delayed");
  if (fd.drop) {
    // Without reliability the packet is simply lost; with it, the sender's
    // unacked copy retransmits on timeout.
    counters_.Add(is_request ? "requests_dropped" : "responses_dropped");
  } else {
    wire->push_back({deliver_at + fd.delay_cycles, dst, payload, seq, src});
  }
  if (fd.duplicate) {
    counters_.Add("packets_duplicated");
    wire->push_back(
        {deliver_at + fd.delay_cycles + 1, dst, payload, seq, src});
  }
}

void CommFabric::SendRequest(uint64_t now, db::WorkerId src, db::WorkerId dst,
                             const index::DbOp& op) {
  uint64_t seq = 0;
  if (reliability_.enabled) {
    seq = ++next_seq_;
    unacked_requests_[seq] = Unacked<index::DbOp>{
        src, dst, op, now + reliability_.retransmit_timeout_cycles};
  }
  Transmit(now, /*is_request=*/true, src, dst, op, seq, &request_wire_);
  ++messages_sent_;
  counters_.Add("requests_sent");
}

void CommFabric::SendResponse(uint64_t now, db::WorkerId src,
                              db::WorkerId dst,
                              const index::DbResult& result) {
  uint64_t seq = 0;
  if (reliability_.enabled) {
    seq = ++next_seq_;
    unacked_responses_[seq] = Unacked<index::DbResult>{
        src, dst, result, now + reliability_.retransmit_timeout_cycles};
  }
  Transmit(now, /*is_request=*/false, src, dst, result, seq,
           &response_wire_);
  ++messages_sent_;
  counters_.Add("responses_sent");
}

void CommFabric::Tick(uint64_t cycle) {
  // Latencies differ per (src,dst) path (ring distance, node crossings),
  // so the wire is scanned rather than popped FIFO: a short-path message
  // may physically overtake a long-path one. Per-path ordering is
  // preserved because same-path messages share latency and the scan keeps
  // relative order.
  auto deliver = [this, cycle](auto* wire, auto* inboxes) {
    for (auto it = wire->begin(); it != wire->end();) {
      if (it->deliver_at <= cycle) {
        if (reliability_.enabled && it->seq != 0) {
          // Ack every arrival (even duplicates, so a lost first ack still
          // quiesces the sender) but deliver only the first copy.
          ack_wire_.push_back({cycle + HopLatency(it->dst, it->src), it->src,
                               it->seq, 0, it->dst});
          if (!delivered_seqs_.insert(it->seq).second) {
            counters_.Add("duplicates_suppressed");
            it = wire->erase(it);
            continue;
          }
        }
        (*inboxes)[it->dst].push_back(it->payload);
        it = wire->erase(it);
      } else {
        ++it;
      }
    }
  };
  deliver(&request_wire_, &request_inbox_);
  deliver(&response_wire_, &response_inbox_);
  if (!reliability_.enabled) return;
  // Arrived acks retire the sender's unacked copies.
  for (auto it = ack_wire_.begin(); it != ack_wire_.end();) {
    if (it->deliver_at <= cycle) {
      unacked_requests_.erase(it->payload);
      unacked_responses_.erase(it->payload);
      it = ack_wire_.erase(it);
    } else {
      ++it;
    }
  }
  // Timed-out packets retransmit (subject to fault injection again — a
  // retry can be dropped too; with drop probability < 1 delivery is
  // eventually certain).
  auto retransmit = [this, cycle](auto* unacked, bool is_request,
                                  auto* wire) {
    for (auto& [seq, entry] : *unacked) {
      if (cycle >= entry.next_retransmit_at) {
        ++retransmits_;
        counters_.Add("retransmits");
        Transmit(cycle, is_request, entry.src, entry.dst, entry.payload, seq,
                 wire);
        entry.next_retransmit_at =
            cycle + reliability_.retransmit_timeout_cycles;
      }
    }
  };
  retransmit(&unacked_requests_, /*is_request=*/true, &request_wire_);
  retransmit(&unacked_responses_, /*is_request=*/false, &response_wire_);
}

uint64_t CommFabric::NextWakeCycle(uint64_t now) const {
  uint64_t wake = sim::kNeverWakes;
  for (const auto& p : request_wire_) wake = std::min(wake, p.deliver_at);
  for (const auto& p : response_wire_) wake = std::min(wake, p.deliver_at);
  if (reliability_.enabled) {
    for (const auto& p : ack_wire_) wake = std::min(wake, p.deliver_at);
    for (const auto& [seq, u] : unacked_requests_) {
      wake = std::min(wake, u.next_retransmit_at);
    }
    for (const auto& [seq, u] : unacked_responses_) {
      wake = std::min(wake, u.next_retransmit_at);
    }
  }
  return wake > now ? wake : now + 1;
}

bool CommFabric::Idle() const {
  if (!request_wire_.empty() || !response_wire_.empty()) return false;
  // Unacked packets keep the fabric live so the simulator ticks through
  // retransmission timeouts instead of declaring quiescence on a drop.
  if (!ack_wire_.empty() || !unacked_requests_.empty() ||
      !unacked_responses_.empty()) {
    return false;
  }
  for (const auto& q : request_inbox_) {
    if (!q.empty()) return false;
  }
  for (const auto& q : response_inbox_) {
    if (!q.empty()) return false;
  }
  return true;
}

void CommFabric::CollectStats(StatsScope scope) const {
  scope.SetCounter("messages_sent", messages_sent_);
  scope.SetCounter("n_workers", n_workers_);
  scope.MergeCounterSet(counters_);
}

}  // namespace bionicdb::comm
