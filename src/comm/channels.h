// On-chip message-passing channels for inter-worker communication
// (paper section 4.6, Fig. 1b).
//
// Each partition worker owns a communication link consisting of a request
// channel and a response channel. Every packet is a comm::Envelope (see
// envelope.h): the fabric routes, delays, acknowledges and retransmits on
// the envelope HEADER alone — it never inspects the payload, so adding a
// new message class costs the transport nothing. A request/response pair
// costs 6 cycles total (3 per hop at 125 MHz = 24 ns each way, Table 3) —
// no memory round trips, no thread synchronization.
//
// Topology: the paper implements a crossbar and notes it "does not scale",
// suggesting ring or tree for datacenter-grade parts. Both crossbar and
// ring are provided; with a ring, hop latency scales with worker distance,
// which the scaling ablation bench exercises.
#ifndef BIONICDB_COMM_CHANNELS_H_
#define BIONICDB_COMM_CHANNELS_H_

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "comm/envelope.h"
#include "common/stats.h"
#include "db/types.h"
#include "sim/arena.h"
#include "sim/component.h"
#include "sim/config.h"
#include "sim/epoch.h"

namespace bionicdb::comm {

enum class Topology : uint8_t {
  kCrossbar,  // any-to-any, fixed one-hop latency
  kRing,      // latency scales with ring distance
};

/// Per-packet fault decision returned by ChannelFaultHook. Default values
/// mean "deliver normally".
struct FaultDecision {
  bool drop = false;       // packet vanishes on the wire
  bool duplicate = false;  // a second copy is transmitted one cycle later
  uint64_t delay_cycles = 0;  // extra in-flight latency
};

/// Fault-injection surface of the comm fabric (implemented by
/// fault::FaultScheduler). Consulted once per transmission, including
/// retransmissions, so a retried packet can be dropped again. Decisions
/// may depend on the message class, so drop/dup/delay applies uniformly
/// to every class without the hook parsing payloads.
class ChannelFaultHook {
 public:
  virtual ~ChannelFaultHook() = default;
  virtual FaultDecision OnPacket(uint64_t now, MessageClass cls,
                                 db::WorkerId src, db::WorkerId dst) = 0;
};

/// Delivery-guarantee layer countering injected comm faults (paper-faithful
/// channels are lossless, so this is OFF by default and adds zero cycles to
/// the Table 3 latencies when disabled). When enabled, every data packet
/// carries a fabric-unique sequence number in its envelope header;
/// receivers acknowledge every arrival and deliver only the first copy of
/// each sequence (dedup), and senders retransmit unacknowledged packets on
/// a timeout.
struct ReliabilityConfig {
  bool enabled = false;
  /// Cycles before an unacknowledged packet is retransmitted. Must exceed
  /// the worst-case round trip (2x max hop latency) or every packet
  /// retransmits spuriously.
  uint64_t retransmit_timeout_cycles = 4096;
};

class CommFabric : public sim::Component, public sim::EpochFabric {
 public:
  /// Multi-chip/multi-node deployment (paper section 4.6 future work:
  /// "the message-passing channels should be diversified with additional
  /// connectivities for inter-node communication"). Workers are grouped
  /// into chips of `workers_per_node`; messages crossing a chip boundary
  /// ride the inter-chip tier — TimingConfig::interchip_latency_cycles one
  /// way plus an on-chip hop at each end, through a finite-bandwidth
  /// directed link per chip pair (interchip_issue_gap_cycles per packet;
  /// back-to-back packets queue). 0 = single chip, on-chip tier only.
  struct ClusterConfig {
    uint32_t workers_per_node = 0;
  };

  CommFabric(uint32_t n_workers, const sim::TimingConfig& timing,
             Topology topology, ClusterConfig cluster);
  CommFabric(uint32_t n_workers, const sim::TimingConfig& timing,
             Topology topology = Topology::kCrossbar)
      : CommFabric(n_workers, timing, topology, ClusterConfig{}) {}

  /// Puts `env` on the wire from `src` to `dst`. Request-class envelopes
  /// ride the request channel, result-class envelopes the response channel;
  /// the fabric decides from the header tag alone.
  void Send(uint64_t now, db::WorkerId src, db::WorkerId dst,
            const Envelope& env);

  /// Delivered inbound request packets for `worker` (drained by its
  /// background unit).
  sim::RingQueue<Envelope>& requests(db::WorkerId worker) {
    return request_inbox_[worker];
  }
  /// Delivered inbound response packets for `worker`.
  sim::RingQueue<Envelope>& responses(db::WorkerId worker) {
    return response_inbox_[worker];
  }

  void Tick(uint64_t cycle) override;
  bool Idle() const override;

  /// Event-driven scheduling hint (contract in sim/component.h): the
  /// earliest delivery or retransmission deadline on any wire. Quiescent
  /// fabric ticks are pure no-ops (no per-cycle accounting), so no
  /// SkipCycles override is needed; packets sitting in worker inboxes are
  /// the workers' wake concern, not the fabric's.
  uint64_t NextWakeCycle(uint64_t now) const override;

  /// One-way latency in cycles between two workers under the configured
  /// topology.
  uint64_t HopLatency(db::WorkerId src, db::WorkerId dst) const;

  // --- sim::EpochFabric (parallel island execution; see sim/epoch.h) ----
  uint64_t MinHopLatency() const override;
  /// Per-tier lookahead: the cheapest hop a packet SENT BY `island` can
  /// take. On a multi-chip fabric an island whose only peers are across the
  /// inter-chip tier contributes a lookahead of hundreds of cycles, letting
  /// the PDES barrier widen epochs instead of clamping the whole cluster to
  /// the on-chip 3-cycle bound.
  uint64_t MinHopLatencyFrom(uint32_t island) const override;
  uint64_t NextDeliveryCycle() const override;
  void NextDeliveryCyclesTo(std::vector<uint64_t>* per_island) const override;
  uint64_t NextInternalCycle() const override;
  void SetEpochMode(bool on) override { epoch_mode_ = on; }
  void BeginEpoch(uint64_t from, uint64_t to) override;
  void EndEpoch(uint64_t from, uint64_t to) override;
  uint64_t NextStampCycle(uint32_t island, uint64_t now) const override;
  void DeliverStamps(uint32_t island, uint64_t cycle) override;
  uint64_t TakeEpochBusySample() override {
    uint64_t v = epoch_busy_cycles_;
    epoch_busy_cycles_ = 0;
    return v;
  }
  uint64_t last_active_cycle() const override { return last_active_cycle_; }

  uint64_t messages_sent() const { return messages_sent_; }
  CounterSet& counters() { return counters_; }

  // --- Fault injection & reliability ------------------------------------

  /// Installs (or clears) the per-packet fault hook; not owned.
  void set_fault_hook(ChannelFaultHook* hook) { fault_hook_ = hook; }
  /// Enables/disables the ack/retransmit/dedup layer. Must be set before
  /// traffic flows (sequence state is not retrofitted to in-flight packets).
  void set_reliability(const ReliabilityConfig& config) {
    reliability_ = config;
  }
  const ReliabilityConfig& reliability() const { return reliability_; }
  uint64_t retransmits() const { return retransmits_; }

  /// Per-message-class traffic totals (fabric/<class>/sent|delivered|
  /// retransmitted in CollectStats). `delivered` counts first deliveries
  /// of each logical packet, identically in all three simulation modes.
  uint64_t class_sent(MessageClass c) const {
    return class_sent_[size_t(c)];
  }
  uint64_t class_delivered(MessageClass c) const {
    return class_delivered_[size_t(c)];
  }
  uint64_t class_retransmitted(MessageClass c) const {
    return class_retransmitted_[size_t(c)];
  }

  /// Dumps message counters (including the per-class subtrees) and
  /// per-direction wire/inbox occupancy under `scope`.
  void CollectStats(StatsScope scope) const;

 private:
  struct InFlight {
    uint64_t deliver_at;
    db::WorkerId dst;
    Envelope env;            // carries seq in env.hdr.seq
    db::WorkerId src = 0;    // ack return path
  };

  /// Acks ride a dedicated lossless wire: they model the tiny
  /// credit-return signals of the channel hardware, not data packets.
  struct InFlightAck {
    uint64_t deliver_at;
    db::WorkerId dst;  // the original sender, who retires its unacked copy
    uint64_t seq;
  };

  /// Sender-side copy of an unacknowledged packet.
  struct Unacked {
    db::WorkerId src;
    db::WorkerId dst;
    Envelope env;
    uint64_t next_retransmit_at;
  };

  /// Shared transmission path: charges inter-chip link bandwidth (packets
  /// crossing chips depart when the directed link frees up), consults the
  /// fault hook, then places the packet (and any injected duplicate) on
  /// the wire.
  void Transmit(uint64_t now, db::WorkerId src, db::WorkerId dst,
                const Envelope& env, sim::RingQueue<InFlight>* wire);

  /// Chip index of a worker (0 when the cluster tier is off).
  uint32_t ChipOf(db::WorkerId w) const {
    return cluster_.workers_per_node > 0 ? w / cluster_.workers_per_node : 0;
  }

  /// The real send path (sequence assignment, unacked tracking, Transmit,
  /// counters). Send calls it directly in serial operation and defers to
  /// it from EndEpoch's staged-send replay in epoch mode.
  void SendNow(uint64_t now, db::WorkerId src, db::WorkerId dst,
               const Envelope& env);

  /// One island send captured during an epoch, replayed by EndEpoch.
  struct StagedSend {
    uint64_t cycle;
    db::WorkerId dst;
    Envelope env;
  };

  bool BusyNow() const {
    return !request_wire_.empty() || !response_wire_.empty() ||
           !ack_wire_.empty() || !unacked_requests_.empty() ||
           !unacked_responses_.empty();
  }
  /// Earliest unprocessed event cycle in the live fabric state (delivery,
  /// ack arrival, retransmission deadline, or staged send) — EndEpoch's
  /// replay cursor.
  uint64_t NextEventCycle() const;

  /// Shared per-cycle machinery used by both Tick (serial) and EndEpoch
  /// (epoch replay). `inboxes == nullptr` skips the inbox push — in epoch
  /// replay the destination island already consumed the payload via its
  /// stamp, so only fabric-side bookkeeping (acks, dedup, counters) runs.
  void DeliverWire(uint64_t cycle, sim::RingQueue<InFlight>* wire,
                   std::vector<sim::RingQueue<Envelope>>* inboxes);
  void RetireAcks(uint64_t cycle);
  void RunRetransmits(uint64_t cycle);
  void ReplayStagedSends(uint64_t cycle);

  uint32_t n_workers_;
  sim::TimingConfig timing_;
  Topology topology_;
  ClusterConfig cluster_;
  uint32_t n_chips_ = 1;

  /// One directed finite-bandwidth link per ordered chip pair, indexed
  /// src_chip * n_chips_ + dst_chip. Mutated only on the serial paths
  /// (SendNow / Tick retransmits / EndEpoch replay), so all three
  /// simulation modes see identical queueing.
  struct LinkState {
    uint64_t next_free = 0;   // first cycle the link can take a packet
    uint64_t sent = 0;        // logical packets (retransmits excluded)
    uint64_t delivered = 0;   // first deliveries
    uint64_t queue_peak = 0;  // deepest backlog seen at enqueue, in packets
  };
  std::vector<LinkState> links_;

  sim::RingQueue<InFlight> request_wire_;
  sim::RingQueue<InFlight> response_wire_;
  std::vector<sim::RingQueue<Envelope>> request_inbox_;
  std::vector<sim::RingQueue<Envelope>> response_inbox_;

  // Reliability state. std::map keeps retransmission scan order
  // deterministic; requests scan before responses (RunRetransmits), so the
  // maps stay separate even though both hold plain envelopes.
  ChannelFaultHook* fault_hook_ = nullptr;
  ReliabilityConfig reliability_;
  uint64_t next_seq_ = 0;
  sim::RingQueue<InFlightAck> ack_wire_;
  std::map<uint64_t, Unacked> unacked_requests_;
  std::map<uint64_t, Unacked> unacked_responses_;
  std::unordered_set<uint64_t> delivered_seqs_;
  uint64_t retransmits_ = 0;

  // Epoch (parallel-mode) state. staged_[src] is written only by the island
  // owning worker `src` during an epoch and drained by EndEpoch at the
  // barrier; stamped_* queues are written by BeginEpoch at the barrier and
  // drained only by the destination island's thread — every access pair is
  // ordered by the barrier, so no locks are needed.
  bool epoch_mode_ = false;
  std::vector<std::deque<StagedSend>> staged_;
  std::vector<std::deque<std::pair<uint64_t, Envelope>>> stamped_requests_;
  std::vector<std::deque<std::pair<uint64_t, Envelope>>> stamped_responses_;
  uint64_t epoch_busy_cycles_ = 0;
  uint64_t last_active_cycle_ = 0;

  uint64_t messages_sent_ = 0;
  std::array<uint64_t, kNumMessageClasses> class_sent_{};
  std::array<uint64_t, kNumMessageClasses> class_delivered_{};
  std::array<uint64_t, kNumMessageClasses> class_retransmitted_{};
  CounterSet counters_;
};

/// Analytic communication-latency model behind Table 3: a request/response
/// exchange costs two message-passing iterations. Software message passing
/// pays either shared-cache or DRAM latency per primitive; DRAM additionally
/// pays a read AND a write per iteration (the paper's 4x multiplier).
struct MessagingLatencyModel {
  double onchip_hop_ns;   // one on-chip hop
  double l3_ns = 20.0;    // one shared-L3 access
  double ddr3_ns = 80.0;  // one DRAM access

  explicit MessagingLatencyModel(const sim::TimingConfig& timing)
      : onchip_hop_ns(timing.onchip_hop_cycles * 1000.0 /
                      timing.clock_mhz) {}

  double OnchipPrimitive() const { return onchip_hop_ns; }
  double OnchipRoundTrip() const { return 2 * onchip_hop_ns; }
  double L3Primitive() const { return l3_ns; }
  double L3RoundTrip() const { return 2 * l3_ns; }
  double Ddr3Primitive() const { return ddr3_ns; }
  /// Two iterations x (memory read + memory write).
  double Ddr3RoundTrip() const { return 4 * ddr3_ns; }
};

}  // namespace bionicdb::comm

#endif  // BIONICDB_COMM_CHANNELS_H_
