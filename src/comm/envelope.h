// Typed message envelopes for the on-chip request/response fabric.
//
// Every packet that travels between partition workers is an Envelope: a
// routing/timing header owned once by the envelope, plus a tagged payload
// that owns exactly the fields its message class needs. The fabric, the
// reliability layer and the epoch machinery read ONLY the header — they are
// payload-agnostic transports — while the endpoints (softcore, worker
// background unit, index coprocessor) switch on the message class.
//
// Message taxonomy (DESIGN.md section 12):
//
//   class         direction  payload        consumer at the destination
//   ------------  ---------  -------------  ------------------------------
//   kIndexOp      request    IndexOp        index coprocessor (Submit)
//   kMemOp        request    MemOp          worker raw-memory service unit
//   kIndexResult  response   IndexResult    softcore CP-register writeback
//   kMemResult    response   MemResult      softcore remote-LOAD resume
//   kPrepareReq   request    PrepareReq     worker 2PC participant unit
//   kPrepareAck   response   PrepareAck     softcore 2PC coordinator
//   kCommitReq    request    CommitReq      worker 2PC participant unit
//   kCommitAck    response   CommitAck      softcore 2PC coordinator
//
// The variant alternative order IS the MessageClass encoding, so
// `MessageClass(payload.index())` is the tag and no second discriminant can
// drift out of sync.
#ifndef BIONICDB_COMM_ENVELOPE_H_
#define BIONICDB_COMM_ENVELOPE_H_

#include <cstdint>
#include <variant>
#include <vector>

#include "cc/write_set.h"
#include "db/types.h"
#include "isa/instruction.h"
#include "sim/memory.h"

namespace bionicdb::comm {

enum class MessageClass : uint8_t {
  kIndexOp = 0,
  kMemOp = 1,
  kIndexResult = 2,
  kMemResult = 3,
  kPrepareReq = 4,
  kPrepareAck = 5,
  kCommitReq = 6,
  kCommitAck = 7,
};

inline constexpr uint32_t kNumMessageClasses = 8;

constexpr bool IsRequestClass(MessageClass c) {
  return c == MessageClass::kIndexOp || c == MessageClass::kMemOp ||
         c == MessageClass::kPrepareReq || c == MessageClass::kCommitReq;
}

/// Stable lowercase name used for stats paths (fabric/<class>/...).
constexpr const char* MessageClassName(MessageClass c) {
  switch (c) {
    case MessageClass::kIndexOp: return "index_op";
    case MessageClass::kMemOp: return "mem_op";
    case MessageClass::kIndexResult: return "index_result";
    case MessageClass::kMemResult: return "mem_result";
    case MessageClass::kPrepareReq: return "prepare_req";
    case MessageClass::kPrepareAck: return "prepare_ack";
    case MessageClass::kCommitReq: return "commit_req";
    case MessageClass::kCommitAck: return "commit_ack";
  }
  return "unknown";
}

/// One DB instruction bound for an index coprocessor — the local one, or a
/// remote partition's reached through the channels. Built by the softcore's
/// Prepare stage from the instruction word and the catalogue.
struct IndexOp {
  isa::Opcode op = isa::Opcode::kNop;
  db::TableId table = 0;
  db::Timestamp ts = 0;

  /// Key location inside the initiator's transaction block. Remote
  /// coprocessors fetch it directly: the FPGA-side DRAM is physically
  /// shared even though partitions are logically private.
  sim::Addr key_addr = sim::kNullAddr;
  uint16_t key_len = 0;

  sim::Addr payload_src = sim::kNullAddr;  // INSERT: payload bytes
  uint32_t payload_len = 0;
  sim::Addr out_buf = sim::kNullAddr;      // SCAN: result buffer
  uint32_t scan_count = 0;                 // SCAN: max tuples
  uint8_t batch_flags = 0;                 // isa::kBatchFlag* framing bits
};

/// One raw-memory operation shipped to the partition that owns `addr`.
/// Under partitioned DRAM a softcore LOAD/STORE/commit-publication touching
/// a foreign partition's arena must execute on the owner's island — its
/// DRAM lane, its timing — so it travels the fabric like any request.
struct MemOp {
  enum class Kind : uint8_t { kLoad, kStore, kCommit, kAbort };
  Kind kind = Kind::kLoad;
  sim::Addr addr = sim::kNullAddr;
  uint64_t store_value = 0;                       // kStore only
  cc::WriteKind write_kind = cc::WriteKind::kNone;  // kCommit/kAbort only
  db::Timestamp commit_ts = 0;                    // kCommit only
};

/// Result of an IndexOp, written back (asynchronously) to the initiator's
/// CP register.
struct IndexResult {
  isa::CpStatus status = isa::CpStatus::kOk;
  /// Tuple payload address for point operations; tuple count for SCAN.
  uint64_t payload = 0;
  /// Write-set bookkeeping the origin worker records on writeback.
  cc::WriteKind write_kind = cc::WriteKind::kNone;
  sim::Addr tuple_addr = sim::kNullAddr;

  /// The 64-bit value stored into the CP register.
  uint64_t ToCpValue() const { return isa::EncodeCpValue(status, payload); }
};

/// Result of a MemOp kLoad: the origin resumes its stalled softcore with
/// the fetched value instead of writing a CP register.
struct MemResult {
  uint64_t value = 0;
};

/// 2PC phase 1: the coordinator (the softcore committing a multi-chip
/// transaction) asks a participant worker on a foreign chip to vote on
/// transaction `txn_ts` — globally unique, `(begin_cycle << 8) | worker`.
struct PrepareReq {
  db::Timestamp txn_ts = 0;
};

/// 2PC phase 1 response: the participant's vote. A "no" vote forces the
/// coordinator to abort everywhere.
struct PrepareAck {
  db::Timestamp txn_ts = 0;
  bool vote_commit = true;
};

/// 2PC phase 2: the coordinator's decision, carrying the write-set entries
/// the participant's chip owns. Entries travel WITH the decision so an
/// abort applies even when the matching PrepareReq was lost — the
/// participant needs no per-transaction state before this message.
struct CommitReq {
  db::Timestamp txn_ts = 0;
  bool commit = false;
  std::vector<cc::WriteSetEntry> entries;
};

/// 2PC phase 2 response: the participant applied (or replayed its recorded
/// decision for) `txn_ts`. Re-sent on duplicate CommitReq delivery.
struct CommitAck {
  db::Timestamp txn_ts = 0;
};

/// Routing/timing metadata, owned once per message. The transport and the
/// reliability layer operate on nothing else.
struct Header {
  db::WorkerId origin = 0;  // initiating worker: results route back to it
  /// Worker that put this packet on the wire — stamped by the sender at
  /// every fabric send (Reply echoes the request header, then the
  /// responding worker re-stamps). 2PC coordinators match acks to
  /// participants by it; workers classify returning cross-chip traffic
  /// for the in-flight window by it. 0 until first stamped.
  db::WorkerId src = 0;
  uint32_t cp_index = 0;    // physical CP register at the origin
  uint32_t txn_slot = 0;    // origin context slot (write-set routing)
  /// Cycle the origin worker put the REQUEST on the wire (0 = local
  /// dispatch, never stamped). Echoed unchanged into the reply so the
  /// origin can measure channel round-trip latency.
  uint64_t sent_at = 0;
  /// Reliability ack state: fabric-unique sequence number assigned at send
  /// time when the delivery-guarantee layer is on (0 = untracked).
  uint64_t seq = 0;
};

struct Envelope {
  Header hdr;
  std::variant<IndexOp, MemOp, IndexResult, MemResult, PrepareReq,
               PrepareAck, CommitReq, CommitAck>
      payload;

  Envelope() = default;
  Envelope(Header h, IndexOp p) : hdr(h), payload(p) {}
  Envelope(Header h, MemOp p) : hdr(h), payload(p) {}
  Envelope(Header h, IndexResult p) : hdr(h), payload(p) {}
  Envelope(Header h, MemResult p) : hdr(h), payload(p) {}
  Envelope(Header h, PrepareReq p) : hdr(h), payload(p) {}
  Envelope(Header h, PrepareAck p) : hdr(h), payload(p) {}
  Envelope(Header h, CommitReq p) : hdr(h), payload(std::move(p)) {}
  Envelope(Header h, CommitAck p) : hdr(h), payload(p) {}

  MessageClass cls() const { return MessageClass(payload.index()); }
  bool is_request() const { return IsRequestClass(cls()); }

  IndexOp& index_op() { return std::get<IndexOp>(payload); }
  const IndexOp& index_op() const { return std::get<IndexOp>(payload); }
  MemOp& mem_op() { return std::get<MemOp>(payload); }
  const MemOp& mem_op() const { return std::get<MemOp>(payload); }
  IndexResult& index_result() { return std::get<IndexResult>(payload); }
  const IndexResult& index_result() const {
    return std::get<IndexResult>(payload);
  }
  MemResult& mem_result() { return std::get<MemResult>(payload); }
  const MemResult& mem_result() const { return std::get<MemResult>(payload); }
  PrepareReq& prepare_req() { return std::get<PrepareReq>(payload); }
  const PrepareReq& prepare_req() const {
    return std::get<PrepareReq>(payload);
  }
  PrepareAck& prepare_ack() { return std::get<PrepareAck>(payload); }
  const PrepareAck& prepare_ack() const {
    return std::get<PrepareAck>(payload);
  }
  CommitReq& commit_req() { return std::get<CommitReq>(payload); }
  const CommitReq& commit_req() const { return std::get<CommitReq>(payload); }
  CommitAck& commit_ack() { return std::get<CommitAck>(payload); }
  const CommitAck& commit_ack() const { return std::get<CommitAck>(payload); }

  /// Builds a reply to `req` carrying `result`: the header is echoed
  /// (origin, cp_index, txn_slot, sent_at) so the response routes back to
  /// the initiator with the RTT stamp intact; transport state (seq) is NOT
  /// inherited — the reply is its own packet on the wire.
  template <typename Result>
  static Envelope Reply(const Envelope& req, Result result) {
    Header h = req.hdr;
    h.seq = 0;
    return Envelope(h, result);
  }
};

/// The single dispatch surface for every message an endpoint emits: the
/// softcore's Prepare stage, the worker's inbox/outbox routing and the
/// coprocessor's completed results all go through Issue. The worker
/// implements it — a destination equal to the worker's own id applies the
/// message locally (coprocessor submit, raw-memory service, CP writeback,
/// remote-LOAD resume); any other destination puts it on the fabric.
class IssuePort {
 public:
  virtual ~IssuePort() = default;
  /// Returns false only when a request could not be accepted this cycle —
  /// locally (coprocessor at its in-flight cap, DRAM backpressure) or, for
  /// cross-chip destinations, when the worker's inter-chip in-flight window
  /// is full — the caller keeps the envelope and retries. Same-chip fabric
  /// sends never block.
  virtual bool Issue(db::WorkerId dst, const Envelope& env) = 0;
};

}  // namespace bionicdb::comm

#endif  // BIONICDB_COMM_ENVELOPE_H_
