// Fixed-capacity single-threaded FIFO.
//
// Models the BRAM FIFOs that sit between hardware pipeline stages: bounded
// capacity (backpressure when full), O(1) push/pop, no allocation after
// construction. Used pervasively by the cycle simulator.
#ifndef BIONICDB_COMMON_RING_QUEUE_H_
#define BIONICDB_COMMON_RING_QUEUE_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace bionicdb {

template <typename T>
class RingQueue {
 public:
  explicit RingQueue(size_t capacity) : buf_(capacity + 1) {
    assert(capacity > 0);
  }

  bool empty() const { return head_ == tail_; }
  bool full() const { return Advance(tail_) == head_; }
  size_t size() const {
    return tail_ >= head_ ? tail_ - head_ : buf_.size() - head_ + tail_;
  }
  size_t capacity() const { return buf_.size() - 1; }

  /// Pushes a value; returns false (and drops nothing) when full.
  bool Push(T value) {
    if (full()) return false;
    buf_[tail_] = std::move(value);
    tail_ = Advance(tail_);
    return true;
  }

  /// Front element; queue must be non-empty.
  T& Front() {
    assert(!empty());
    return buf_[head_];
  }
  const T& Front() const {
    assert(!empty());
    return buf_[head_];
  }

  /// Pops and returns the front element; queue must be non-empty.
  T Pop() {
    assert(!empty());
    T v = std::move(buf_[head_]);
    head_ = Advance(head_);
    return v;
  }

  /// Empties the queue, destroying held elements (each live slot is
  /// overwritten with a default-constructed T so payload resources — heap
  /// buffers, refcounts — are released immediately, not when the slot is
  /// next reused).
  void Clear() {
    while (head_ != tail_) {
      buf_[head_] = T();
      head_ = Advance(head_);
    }
    head_ = tail_ = 0;
  }

 private:
  size_t Advance(size_t i) const { return (i + 1) % buf_.size(); }

  std::vector<T> buf_;
  size_t head_ = 0;
  size_t tail_ = 0;
};

}  // namespace bionicdb

#endif  // BIONICDB_COMMON_RING_QUEUE_H_
