// Hash functions used by BionicDB.
//
// The hardware hash index uses the Sdbm hash (paper §4.4.1) because it is
// cheap to realise in FPGA fabric: one multiply-by-shift-add per input byte
// and no lookup tables. FNV-1a is used host-side for scrambling.
#ifndef BIONICDB_COMMON_HASH_H_
#define BIONICDB_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace bionicdb {

/// Sdbm hash over a byte string: h = c + (h << 6) + (h << 16) - h.
///
/// This is the exact function the BionicDB hardware computes in its Hash
/// pipeline stage; it needs neither a lookup table nor a modulo unit.
uint64_t SdbmHash(const uint8_t* data, size_t len);

/// Sdbm over a fixed-width 64-bit key (little-endian byte order), matching
/// how the hardware hashes fixed-size integer keys.
uint64_t SdbmHash64(uint64_t key);

/// FNV-1a over a 64-bit value; used for key-space scrambling host-side.
uint64_t Fnv1aHash64(uint64_t value);

/// FNV-1a over bytes.
uint64_t Fnv1aHash(const uint8_t* data, size_t len);

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) over bytes. Used by
/// the durability file formats (checksum trailers) and the fault subsystem's
/// tuple integrity guards. `seed` allows incremental computation: pass the
/// previous return value to continue a running CRC.
uint32_t Crc32(const uint8_t* data, size_t len, uint32_t seed = 0);

}  // namespace bionicdb

#endif  // BIONICDB_COMMON_HASH_H_
