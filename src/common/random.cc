#include "common/random.h"

#include <cassert>
#include <cmath>

#include "common/hash.h"

namespace bionicdb {

Rng::Rng(uint64_t seed) {
  // SplitMix64 expansion of the seed so that nearby seeds give unrelated
  // streams.
  auto splitmix = [](uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  uint64_t x = seed;
  s0_ = splitmix(x);
  s1_ = splitmix(x);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // xorshift must not start at all-zero
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  assert(bound > 0);
  // Multiply-shift bounded sampling (Lemire); bias is negligible for the
  // bounds used in workloads.
  return static_cast<uint64_t>(
      (static_cast<__uint128_t>(Next()) * bound) >> 64);
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  return lo + NextUint64(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}
}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng* rng) {
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t v = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

uint64_t ScrambledZipfianGenerator::Next(Rng* rng) {
  return Fnv1aHash64(zipf_.Next(rng)) % n_;
}

}  // namespace bionicdb
