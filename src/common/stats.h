// Counters and histograms for experiment reporting.
#ifndef BIONICDB_COMMON_STATS_H_
#define BIONICDB_COMMON_STATS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bionicdb {

/// Streaming summary of a scalar series: count/min/max/mean plus quantiles
/// from a bounded reservoir.
class Summary {
 public:
  void Add(double v);

  uint64_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }
  double mean() const { return count_ ? sum_ / double(count_) : 0; }
  double sum() const { return sum_; }

  /// Quantile in [0,1] from the reservoir sample (exact while the series is
  /// shorter than the reservoir).
  double Quantile(double q) const;

 private:
  static constexpr size_t kReservoirSize = 4096;

  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::vector<double> reservoir_;
  uint64_t seen_ = 0;  // for reservoir sampling
};

/// Named monotonic counters keyed by string, for simulator bookkeeping
/// (stall cycles, hazard blocks, channel congestion, ...).
class CounterSet {
 public:
  void Add(const std::string& name, uint64_t delta = 1) {
    counters_[name] += delta;
  }
  uint64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  void Clear() { counters_.clear(); }

 private:
  std::map<std::string, uint64_t> counters_;
};

}  // namespace bionicdb

#endif  // BIONICDB_COMMON_STATS_H_
