// Counters, histograms and hierarchical metric registries for experiment
// reporting. See the "Observability" section of DESIGN.md for the counter
// naming scheme and the JSON report schema built on top of these types.
#ifndef BIONICDB_COMMON_STATS_H_
#define BIONICDB_COMMON_STATS_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bionicdb {

/// Streaming summary of a scalar series: count/min/max/mean plus quantiles
/// from a bounded reservoir.
class Summary {
 public:
  void Add(double v);

  /// Deterministically folds `other` into this summary. count/sum/min/max
  /// combine exactly; the reservoir absorbs the other reservoir's elements
  /// through the same sampling path Add uses. Merging into an empty
  /// summary is an exact copy, so per-lane stats collected on one lane
  /// merge bit-identically to having sampled on that lane directly.
  void MergeFrom(const Summary& other);

  uint64_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }
  double mean() const { return count_ ? sum_ / double(count_) : 0; }
  double sum() const { return sum_; }

  /// Quantile from the reservoir sample (exact while the series is shorter
  /// than the reservoir). `q` is clamped to [0,1]; an empty summary
  /// reports 0.
  double Quantile(double q) const;

  /// Reservoir contents (exposed for distribution tests).
  const std::vector<double>& reservoir() const { return reservoir_; }

 private:
  static constexpr size_t kReservoirSize = 4096;

  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::vector<double> reservoir_;
  uint64_t seen_ = 0;     // for reservoir sampling
  uint64_t rng_state_ = 0x9e3779b97f4a7c15ULL;  // deterministic sampler
};

/// Fixed power-of-two latency histogram: bucket i counts samples in
/// [2^(i-1), 2^i) cycles (bucket 0 counts 0-latency samples). Cheap enough
/// to sit on simulator hot paths, and coarse-grained by design — use
/// Summary when exact quantiles matter.
class Histogram {
 public:
  static constexpr uint32_t kBuckets = 40;

  void Add(uint64_t v);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  double mean() const { return count_ ? double(sum_) / double(count_) : 0; }
  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }

  /// Inclusive lower bound of bucket `i`.
  static uint64_t BucketFloor(uint32_t i) {
    return i == 0 ? 0 : 1ull << (i - 1);
  }

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
};

/// Named monotonic counters keyed by string, for simulator bookkeeping
/// (stall cycles, hazard blocks, channel congestion, ...).
class CounterSet {
 public:
  void Add(const std::string& name, uint64_t delta = 1) {
    counters_[name] += delta;
  }
  uint64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  void Clear() { counters_.clear(); }

 private:
  std::map<std::string, uint64_t> counters_;
};

/// Hierarchical metric registry: every metric lives at a '/'-separated
/// path ("workers/0/cycles/busy"), and ToJson() renders the whole tree as
/// nested JSON objects. Leaves are counters (uint64), gauges (double) or
/// summaries (rendered as {count,min,max,mean,p50,p90,p99}).
///
/// This is the collection surface between the simulated hardware and the
/// bench reporters: components keep their cheap local CounterSet/Summary
/// state on the hot path, and a CollectStats pass copies them into one
/// registry at reporting time.
class StatsRegistry {
 public:
  void SetCounter(const std::string& path, uint64_t value);
  void AddCounter(const std::string& path, uint64_t delta);
  void SetGauge(const std::string& path, double value);
  void SetSummary(const std::string& path, const Summary& summary);
  void SetHistogram(const std::string& path, const Histogram& histogram);
  /// Copies every counter of `set` under `prefix` ("prefix/name").
  void MergeCounterSet(const std::string& prefix, const CounterSet& set);

  uint64_t GetCounter(const std::string& path) const;
  bool HasPath(const std::string& path) const;

  /// Renders the registry as a pretty-printed JSON object tree.
  std::string ToJson(int indent = 2) const;

  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Summary>& summaries() const {
    return summaries_;
  }

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Summary> summaries_;
  std::map<std::string, Histogram> histograms_;
};

/// Prefix view over a StatsRegistry: Scope("workers/0").SetCounter("x", v)
/// writes "workers/0/x". Sub-scopes nest.
class StatsScope {
 public:
  StatsScope(StatsRegistry* registry, std::string prefix)
      : registry_(registry), prefix_(std::move(prefix)) {}

  StatsScope Sub(const std::string& name) const {
    return StatsScope(registry_, Join(name));
  }

  void SetCounter(const std::string& name, uint64_t v) {
    registry_->SetCounter(Join(name), v);
  }
  void AddCounter(const std::string& name, uint64_t delta) {
    registry_->AddCounter(Join(name), delta);
  }
  void SetGauge(const std::string& name, double v) {
    registry_->SetGauge(Join(name), v);
  }
  void SetSummary(const std::string& name, const Summary& s) {
    registry_->SetSummary(Join(name), s);
  }
  void SetHistogram(const std::string& name, const Histogram& h) {
    registry_->SetHistogram(Join(name), h);
  }
  void MergeCounterSet(const CounterSet& set) {
    registry_->MergeCounterSet(prefix_, set);
  }

  StatsRegistry* registry() const { return registry_; }
  const std::string& prefix() const { return prefix_; }

 private:
  /// An empty prefix denotes the registry root: no leading '/'.
  std::string Join(const std::string& name) const {
    return prefix_.empty() ? name : prefix_ + "/" + name;
  }

  StatsRegistry* registry_;
  std::string prefix_;
};

}  // namespace bionicdb

#endif  // BIONICDB_COMMON_STATS_H_
