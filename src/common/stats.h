// Counters, histograms and hierarchical metric registries for experiment
// reporting. See the "Observability" section of DESIGN.md for the counter
// naming scheme and the JSON report schema built on top of these types.
#ifndef BIONICDB_COMMON_STATS_H_
#define BIONICDB_COMMON_STATS_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bionicdb {

/// Streaming summary of a scalar series: count/min/max/mean plus quantiles
/// from a bounded reservoir, backed for non-negative series by an exact
/// log-bucketed tail histogram so deep quantiles (p999) stay trustworthy
/// when the series dwarfs the reservoir.
class Summary {
 public:
  /// Per-octave sub-buckets of the tail histogram. Each bucket spans a
  /// 1/kTailSubBuckets slice of its power-of-two octave, so a bucketed
  /// quantile (reported as the bucket midpoint) carries a relative error
  /// of at most 1/(2*kTailSubBuckets) for values in [1, 2^kTailOctaves).
  static constexpr uint32_t kTailSubBuckets = 16;
  static constexpr uint32_t kTailOctaves = 64;

  /// Documented worst-case relative error of a bucketed quantile
  /// (= 1/32 ≈ 3.2%); values in [0,1) instead carry absolute error < 1.
  static constexpr double kTailRelativeError = 0.5 / kTailSubBuckets;

  void Add(double v);

  /// Deterministically folds `other` into this summary. count/sum/min/max
  /// and the tail histogram combine exactly; the reservoirs combine with a
  /// weighted merge — each side contributes slots in proportion to the
  /// total samples it has seen, not just the elements it retained — so
  /// merged reservoir quantiles stay unbiased even when one side
  /// summarized millions of samples. Merging into an empty summary is an
  /// exact copy, so per-lane stats collected on one lane merge
  /// bit-identically to having sampled on that lane directly.
  void MergeFrom(const Summary& other);

  uint64_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }
  double mean() const { return count_ ? sum_ / double(count_) : 0; }
  double sum() const { return sum_; }

  /// Quantile estimate. Exact (sorted-sample interpolation) while every
  /// sample is still retained in the reservoir; beyond that, non-negative
  /// series use the exact per-bucket counts of the log-bucketed tail
  /// histogram (relative error <= kTailRelativeError, clamped to the
  /// observed [min,max]), and series containing negative values fall back
  /// to the sampled reservoir. `q` is clamped to [0,1]; an empty summary
  /// reports 0.
  double Quantile(double q) const;

  /// Reservoir contents (exposed for distribution tests).
  const std::vector<double>& reservoir() const { return reservoir_; }

 private:
  static constexpr size_t kReservoirSize = 4096;

  /// Quantile from the tail histogram's exact bucket counts (requires
  /// bucketable_ and count_ > 0).
  double TailQuantile(double q) const;

  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::vector<double> reservoir_;
  uint64_t seen_ = 0;     // for reservoir sampling
  uint64_t rng_state_ = 0x9e3779b97f4a7c15ULL;  // deterministic sampler

  // Exact tail histogram over every sample (not just the reservoir), for
  // non-negative finite series: below_one_ counts samples in [0,1);
  // tail_ (lazily allocated, kTailOctaves * kTailSubBuckets slots) counts
  // samples >= 1 by (octave, sub-bucket). A negative or non-finite sample
  // permanently disables the bucketed path for this summary.
  uint64_t below_one_ = 0;
  std::vector<uint64_t> tail_;
  bool bucketable_ = true;
};

/// Fixed power-of-two latency histogram: bucket i counts samples in
/// [2^(i-1), 2^i) cycles (bucket 0 counts 0-latency samples). Cheap enough
/// to sit on simulator hot paths, and coarse-grained by design — use
/// Summary when exact quantiles matter.
class Histogram {
 public:
  static constexpr uint32_t kBuckets = 40;

  void Add(uint64_t v);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  double mean() const { return count_ ? double(sum_) / double(count_) : 0; }
  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }

  /// Inclusive lower bound of bucket `i`.
  static uint64_t BucketFloor(uint32_t i) {
    return i == 0 ? 0 : 1ull << (i - 1);
  }

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
};

/// Named monotonic counters keyed by string, for simulator bookkeeping
/// (stall cycles, hazard blocks, channel congestion, ...).
class CounterSet {
 public:
  void Add(const std::string& name, uint64_t delta = 1) {
    counters_[name] += delta;
  }
  uint64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  void Clear() { counters_.clear(); }

  /// Pointer to `name`'s slot, creating the entry (at its current value,
  /// default 0) if absent. std::map nodes are pointer-stable, so the slot
  /// stays valid until the set is cleared or destroyed. FastCounter's
  /// lazy-bind hook.
  uint64_t* Slot(const std::string& name) { return &counters_[name]; }

 private:
  std::map<std::string, uint64_t> counters_;
};

/// Cached handle to one CounterSet entry, for counters bumped on per-cycle
/// or per-op hot paths. The first Add resolves the map slot (creating the
/// entry, exactly as CounterSet::Add would); later Adds bump through the
/// cached pointer with no string hashing or tree walk. Presence semantics
/// therefore match plain Add calls bit-for-bit: a counter appears in the
/// stats JSON only if the hot path actually reached it. The handle must
/// not outlive its CounterSet, and Clear() on the set invalidates it.
class FastCounter {
 public:
  FastCounter(CounterSet* set, const char* name) : set_(set), name_(name) {}

  void Add(uint64_t delta = 1) {
    if (slot_ == nullptr) slot_ = set_->Slot(name_);
    *slot_ += delta;
  }

 private:
  CounterSet* set_;
  const char* name_;
  uint64_t* slot_ = nullptr;
};

/// Hierarchical metric registry: every metric lives at a '/'-separated
/// path ("workers/0/cycles/busy"), and ToJson() renders the whole tree as
/// nested JSON objects. Leaves are counters (uint64), gauges (double) or
/// summaries (rendered as {count,min,max,mean,p50,p90,p99,p999}).
///
/// This is the collection surface between the simulated hardware and the
/// bench reporters: components keep their cheap local CounterSet/Summary
/// state on the hot path, and a CollectStats pass copies them into one
/// registry at reporting time.
class StatsRegistry {
 public:
  void SetCounter(const std::string& path, uint64_t value);
  void AddCounter(const std::string& path, uint64_t delta);
  void SetGauge(const std::string& path, double value);
  void SetSummary(const std::string& path, const Summary& summary);
  void SetHistogram(const std::string& path, const Histogram& histogram);
  /// Copies every counter of `set` under `prefix` ("prefix/name").
  void MergeCounterSet(const std::string& prefix, const CounterSet& set);

  uint64_t GetCounter(const std::string& path) const;
  bool HasPath(const std::string& path) const;

  /// Renders the registry as a pretty-printed JSON object tree.
  std::string ToJson(int indent = 2) const;

  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Summary>& summaries() const {
    return summaries_;
  }

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Summary> summaries_;
  std::map<std::string, Histogram> histograms_;
};

/// Prefix view over a StatsRegistry: Scope("workers/0").SetCounter("x", v)
/// writes "workers/0/x". Sub-scopes nest.
class StatsScope {
 public:
  StatsScope(StatsRegistry* registry, std::string prefix)
      : registry_(registry), prefix_(std::move(prefix)) {}

  StatsScope Sub(const std::string& name) const {
    return StatsScope(registry_, Join(name));
  }

  void SetCounter(const std::string& name, uint64_t v) {
    registry_->SetCounter(Join(name), v);
  }
  void AddCounter(const std::string& name, uint64_t delta) {
    registry_->AddCounter(Join(name), delta);
  }
  void SetGauge(const std::string& name, double v) {
    registry_->SetGauge(Join(name), v);
  }
  void SetSummary(const std::string& name, const Summary& s) {
    registry_->SetSummary(Join(name), s);
  }
  void SetHistogram(const std::string& name, const Histogram& h) {
    registry_->SetHistogram(Join(name), h);
  }
  void MergeCounterSet(const CounterSet& set) {
    registry_->MergeCounterSet(prefix_, set);
  }

  StatsRegistry* registry() const { return registry_; }
  const std::string& prefix() const { return prefix_; }

 private:
  /// An empty prefix denotes the registry root: no leading '/'.
  std::string Join(const std::string& name) const {
    return prefix_.empty() ? name : prefix_ + "/" + name;
  }

  StatsRegistry* registry_;
  std::string prefix_;
};

}  // namespace bionicdb

#endif  // BIONICDB_COMMON_STATS_H_
