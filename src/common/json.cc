#include "common/json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bionicdb::json {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += char(c);
        }
    }
  }
  return out;
}

void Writer::Prefix() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // value follows "key": on the same line
  }
  if (stack_.empty()) return;
  if (stack_.back().second) out_ += ',';
  stack_.back().second = true;
  out_ += '\n';
  out_.append(stack_.size() * size_t(indent_), ' ');
}

void Writer::Nest(char kind) {
  Prefix();
  out_ += kind;
  stack_.emplace_back(kind, false);
}

void Writer::Unnest(char kind) {
  assert(!stack_.empty() && stack_.back().first == kind);
  bool had_elements = stack_.back().second;
  stack_.pop_back();
  if (had_elements) {
    out_ += '\n';
    out_.append(stack_.size() * size_t(indent_), ' ');
  }
  out_ += kind == '{' ? '}' : ']';
}

void Writer::BeginObject() { Nest('{'); }
void Writer::EndObject() { Unnest('{'); }
void Writer::BeginArray() { Nest('['); }
void Writer::EndArray() { Unnest('['); }

void Writer::Key(const std::string& key) {
  assert(!stack_.empty() && stack_.back().first == '{' && !key_pending_);
  Prefix();
  out_ += '"';
  out_ += Escape(key);
  out_ += "\": ";
  key_pending_ = true;
}

void Writer::Value(const std::string& v) {
  Prefix();
  out_ += '"';
  out_ += Escape(v);
  out_ += '"';
}

void Writer::Value(uint64_t v) {
  Prefix();
  out_ += std::to_string(v);
}

void Writer::Value(double v) {
  Prefix();
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN; report null so documents stay parseable.
    out_ += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
}

void Writer::Value(bool v) {
  Prefix();
  out_ += v ? "true" : "false";
}

void Writer::Null() {
  Prefix();
  out_ += "null";
}

std::string Writer::TakeString() {
  assert(stack_.empty());
  out_ += '\n';
  return std::move(out_);
}

// --- Parser ---------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<Value> Parse() {
    Value v;
    Status s = ParseValue(&v, 0);
    if (!s.ok()) return s;
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing characters");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        out->type_ = Value::Type::kString;
        return ParseString(&out->string_);
      }
      case 't':
      case 'f': return ParseKeyword(out);
      case 'n': return ParseKeyword(out);
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(Value* out, int depth) {
    ++pos_;  // '{'
    out->type_ = Value::Type::kObject;
    SkipWs();
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      if (Status s = ParseString(&key); !s.ok()) return s;
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      Value member;
      if (Status s = ParseValue(&member, depth + 1); !s.ok()) return s;
      out->members_.emplace_back(std::move(key), std::move(member));
      SkipWs();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(Value* out, int depth) {
    ++pos_;  // '['
    out->type_ = Value::Type::kArray;
    SkipWs();
    if (Consume(']')) return Status::Ok();
    for (;;) {
      Value item;
      if (Status s = ParseValue(&item, depth + 1); !s.ok()) return s;
      out->items_.push_back(std::move(item));
      SkipWs();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // the reports are ASCII).
          if (code < 0x80) {
            *out += char(code);
          } else if (code < 0x800) {
            *out += char(0xc0 | (code >> 6));
            *out += char(0x80 | (code & 0x3f));
          } else {
            *out += char(0xe0 | (code >> 12));
            *out += char(0x80 | ((code >> 6) & 0x3f));
            *out += char(0x80 | (code & 0x3f));
          }
          break;
        }
        default: return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseKeyword(Value* out) {
    auto match = [this](const char* kw) {
      size_t n = std::strlen(kw);
      if (text_.compare(pos_, n, kw) != 0) return false;
      pos_ += n;
      return true;
    };
    if (match("true")) {
      out->type_ = Value::Type::kBool;
      out->bool_ = true;
      return Status::Ok();
    }
    if (match("false")) {
      out->type_ = Value::Type::kBool;
      out->bool_ = false;
      return Status::Ok();
    }
    if (match("null")) {
      out->type_ = Value::Type::kNull;
      return Status::Ok();
    }
    return Error("unknown keyword");
  }

  Status ParseNumber(Value* out) {
    size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    char* end = nullptr;
    std::string tok = text_.substr(start, pos_ - start);
    double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) return Error("bad number");
    out->type_ = Value::Type::kNumber;
    out->number_ = v;
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

StatusOr<Value> Value::Parse(const std::string& text) {
  return Parser(text).Parse();
}

const Value* Value::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value* Value::FindPath(const std::string& path) const {
  const Value* cur = this;
  size_t pos = 0;
  while (pos <= path.size() && cur != nullptr) {
    size_t sep = path.find('/', pos);
    std::string seg = path.substr(
        pos, sep == std::string::npos ? std::string::npos : sep - pos);
    if (cur->is_array()) {
      char* end = nullptr;
      unsigned long idx = std::strtoul(seg.c_str(), &end, 10);
      if (end != seg.c_str() + seg.size() || idx >= cur->items_.size()) {
        return nullptr;
      }
      cur = &cur->items_[idx];
    } else {
      cur = cur->Find(seg);
    }
    if (sep == std::string::npos) return cur;
    pos = sep + 1;
  }
  return nullptr;
}

}  // namespace bionicdb::json
