#include "common/stats.h"

#include <cmath>

namespace bionicdb {

void Summary::Add(double v) {
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
  sum_ += v;
  ++seen_;
  if (reservoir_.size() < kReservoirSize) {
    reservoir_.push_back(v);
  } else {
    // Vitter's algorithm R with a deterministic LCG keyed on seen_.
    uint64_t r = seen_ * 6364136223846793005ULL + 1442695040888963407ULL;
    r = (r >> 16) % seen_;
    if (r < kReservoirSize) reservoir_[r] = v;
  }
}

double Summary::Quantile(double q) const {
  if (reservoir_.empty()) return 0;
  std::vector<double> sorted = reservoir_;
  std::sort(sorted.begin(), sorted.end());
  double pos = q * double(sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(pos));
  size_t hi = static_cast<size_t>(std::ceil(pos));
  double frac = pos - double(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

}  // namespace bionicdb
