#include "common/stats.h"

#include <cmath>

#include "common/json.h"

namespace bionicdb {

namespace {

/// splitmix64: strong deterministic mixer for the reservoir sampler.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Unbiased uniform draw in [0, bound) via rejection (Lemire's method needs
/// 128-bit multiplies; classic threshold rejection is branch-cheap enough
/// for the reservoir's once-per-sample use).
uint64_t UniformBelow(uint64_t* state, uint64_t bound) {
  // Discard draws from the biased tail so every residue is equally likely.
  const uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
  for (;;) {
    uint64_t r = SplitMix64(state);
    if (r >= threshold) return r % bound;
  }
}

/// Uniform double in [0,1) from the deterministic mixer.
double UnitDraw(uint64_t* state) {
  return double(SplitMix64(state) >> 11) * 0x1.0p-53;
}

/// Deterministic Fisher-Yates shuffle driven by the summary's own state.
void ShuffleDet(std::vector<double>* v, uint64_t* state) {
  for (size_t i = v->size(); i > 1; --i) {
    std::swap((*v)[i - 1], (*v)[UniformBelow(state, i)]);
  }
}

}  // namespace

void Summary::Add(double v) {
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
  sum_ += v;
  // Exact tail-histogram path (non-negative finite series only).
  if (bucketable_) {
    if (!(v >= 0) || !std::isfinite(v)) {
      bucketable_ = false;
    } else if (v < 1) {
      ++below_one_;
    } else {
      if (tail_.empty()) tail_.assign(kTailOctaves * kTailSubBuckets, 0);
      uint32_t octave = uint32_t(std::min(std::ilogb(v),
                                          int(kTailOctaves) - 1));
      // Sub-bucket from the mantissa: v / 2^octave is in [1, 2).
      uint32_t sub = uint32_t((std::ldexp(v, -int(octave)) - 1.0) *
                              kTailSubBuckets);
      if (sub >= kTailSubBuckets) sub = kTailSubBuckets - 1;
      ++tail_[octave * kTailSubBuckets + sub];
    }
  }
  ++seen_;
  if (reservoir_.size() < kReservoirSize) {
    reservoir_.push_back(v);
  } else {
    // Vitter's algorithm R with an unbiased deterministic draw: element
    // seen_ replaces a reservoir slot with probability k/seen_, keeping
    // every prefix element's inclusion probability uniform.
    uint64_t r = UniformBelow(&rng_state_, seen_);
    if (r < kReservoirSize) reservoir_[r] = v;
  }
}

void Summary::MergeFrom(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Exact aggregate state: moments and the tail histogram add directly.
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  bucketable_ = bucketable_ && other.bucketable_;
  below_one_ += other.below_one_;
  if (!other.tail_.empty()) {
    if (tail_.empty()) {
      tail_ = other.tail_;
    } else {
      for (size_t i = 0; i < tail_.size(); ++i) tail_[i] += other.tail_[i];
    }
  }
  // Weighted reservoir merge: both reservoirs are uniform samples of their
  // streams, so draw each merged slot from one side with probability
  // proportional to that side's remaining (unsampled) stream mass — the
  // standard union algorithm for equal-size reservoirs. Each retained
  // element stands for stream_count / retained_count originals.
  if (reservoir_.size() + other.reservoir_.size() > kReservoirSize) {
    std::vector<double> a = std::move(reservoir_);
    std::vector<double> b = other.reservoir_;
    ShuffleDet(&a, &rng_state_);
    ShuffleDet(&b, &rng_state_);
    double mass_a = double(seen_);
    double mass_b = double(other.seen_);
    const double per_a = mass_a / double(a.size());
    const double per_b = mass_b / double(b.size());
    std::vector<double> merged;
    merged.reserve(kReservoirSize);
    size_t ia = 0, ib = 0;
    while (merged.size() < kReservoirSize &&
           (ia < a.size() || ib < b.size())) {
      bool take_a;
      if (ia >= a.size()) {
        take_a = false;
      } else if (ib >= b.size()) {
        take_a = true;
      } else {
        take_a = UnitDraw(&rng_state_) * (mass_a + mass_b) < mass_a;
      }
      if (take_a) {
        merged.push_back(a[ia++]);
        mass_a = std::max(0.0, mass_a - per_a);
      } else {
        merged.push_back(b[ib++]);
        mass_b = std::max(0.0, mass_b - per_b);
      }
    }
    reservoir_ = std::move(merged);
  } else {
    reservoir_.insert(reservoir_.end(), other.reservoir_.begin(),
                      other.reservoir_.end());
  }
  seen_ = count_;
}

double Summary::Quantile(double q) const {
  if (reservoir_.empty()) return 0;
  if (!(q > 0)) q = 0;  // also maps NaN to 0
  if (q > 1) q = 1;
  // Bucketed tail path once sampling has dropped elements: the reservoir's
  // own p999 over <= 4096 slots is statistically meaningless for long
  // series, while the bucket counts are exact.
  if (reservoir_.size() != count_ && bucketable_) return TailQuantile(q);
  std::vector<double> sorted = reservoir_;
  std::sort(sorted.begin(), sorted.end());
  double pos = q * double(sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(pos));
  size_t hi = static_cast<size_t>(std::ceil(pos));
  double frac = pos - double(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

double Summary::TailQuantile(double q) const {
  // Nearest-rank over the exact per-bucket counts; a rank inside a bucket
  // reports the bucket midpoint (relative error <= kTailRelativeError).
  const uint64_t rank = uint64_t(q * double(count_ - 1));
  if (rank < below_one_) {
    // [0,1) bucket: absolute error < 1; min_ is the best representative.
    return min_;
  }
  uint64_t cum = below_one_;
  for (size_t i = 0; i < tail_.size(); ++i) {
    cum += tail_[i];
    if (rank < cum) {
      const uint32_t octave = uint32_t(i) / kTailSubBuckets;
      const uint32_t sub = uint32_t(i) % kTailSubBuckets;
      double mid = std::ldexp(1.0 + (double(sub) + 0.5) / kTailSubBuckets,
                              int(octave));
      return std::min(std::max(mid, min_), max_);
    }
  }
  return max_;
}

void Histogram::Add(uint64_t v) {
  uint32_t bucket = 0;
  if (v > 0) {
    bucket = 64 - uint32_t(__builtin_clzll(v));
    if (bucket >= kBuckets) bucket = kBuckets - 1;
  }
  ++buckets_[bucket];
  ++count_;
  sum_ += v;
}

void StatsRegistry::SetCounter(const std::string& path, uint64_t value) {
  counters_[path] = value;
}

void StatsRegistry::AddCounter(const std::string& path, uint64_t delta) {
  counters_[path] += delta;
}

void StatsRegistry::SetGauge(const std::string& path, double value) {
  gauges_[path] = value;
}

void StatsRegistry::SetSummary(const std::string& path,
                               const Summary& summary) {
  summaries_[path] = summary;
}

void StatsRegistry::SetHistogram(const std::string& path,
                                 const Histogram& histogram) {
  histograms_[path] = histogram;
}

void StatsRegistry::MergeCounterSet(const std::string& prefix,
                                    const CounterSet& set) {
  for (const auto& [name, value] : set.counters()) {
    counters_[prefix.empty() ? name : prefix + "/" + name] += value;
  }
}

uint64_t StatsRegistry::GetCounter(const std::string& path) const {
  auto it = counters_.find(path);
  return it == counters_.end() ? 0 : it->second;
}

bool StatsRegistry::HasPath(const std::string& path) const {
  return counters_.count(path) || gauges_.count(path) ||
         summaries_.count(path) || histograms_.count(path);
}

namespace {

/// One flattened leaf, tagged with which store it came from.
struct Leaf {
  const std::string* path;
  enum class Kind { kCounter, kGauge, kSummary, kHistogram } kind;
  uint64_t counter = 0;
  double gauge = 0;
  const Summary* summary = nullptr;
  const Histogram* histogram = nullptr;
};

void WriteLeaf(json::Writer* w, const Leaf& leaf) {
  switch (leaf.kind) {
    case Leaf::Kind::kCounter:
      w->Value(leaf.counter);
      return;
    case Leaf::Kind::kGauge:
      w->Value(leaf.gauge);
      return;
    case Leaf::Kind::kSummary: {
      const Summary& s = *leaf.summary;
      w->BeginObject();
      w->Key("count"); w->Value(s.count());
      w->Key("min"); w->Value(s.min());
      w->Key("max"); w->Value(s.max());
      w->Key("mean"); w->Value(s.mean());
      w->Key("p50"); w->Value(s.Quantile(0.5));
      w->Key("p90"); w->Value(s.Quantile(0.9));
      w->Key("p99"); w->Value(s.Quantile(0.99));
      w->Key("p999"); w->Value(s.Quantile(0.999));
      w->EndObject();
      return;
    }
    case Leaf::Kind::kHistogram: {
      const Histogram& h = *leaf.histogram;
      w->BeginObject();
      w->Key("count"); w->Value(h.count());
      w->Key("mean"); w->Value(h.mean());
      w->Key("buckets");
      w->BeginObject();
      for (uint32_t i = 0; i < Histogram::kBuckets; ++i) {
        if (h.buckets()[i] == 0) continue;
        w->Key(std::to_string(Histogram::BucketFloor(i)));
        w->Value(h.buckets()[i]);
      }
      w->EndObject();
      w->EndObject();
      return;
    }
  }
}

/// Emits leaves[lo, hi) — all sharing the path prefix of length `depth`
/// characters — as one nested JSON object, grouping on the next '/'.
void WriteTree(json::Writer* w, const std::vector<Leaf>& leaves, size_t lo,
               size_t hi, size_t depth) {
  w->BeginObject();
  size_t i = lo;
  while (i < hi) {
    const std::string& path = *leaves[i].path;
    size_t sep = path.find('/', depth);
    std::string segment = path.substr(depth, sep == std::string::npos
                                                 ? std::string::npos
                                                 : sep - depth);
    // Find the run of leaves sharing this segment at this depth.
    size_t j = i + 1;
    while (j < hi) {
      const std::string& other = *leaves[j].path;
      if (other.compare(depth, segment.size(), segment) != 0) break;
      char after = other.size() > depth + segment.size()
                       ? other[depth + segment.size()]
                       : '\0';
      if (after != '/' && after != '\0') break;
      ++j;
    }
    w->Key(segment);
    if (sep == std::string::npos) {
      WriteLeaf(w, leaves[i]);
      // Duplicate paths across stores are possible in principle; keep the
      // first and skip the rest rather than emitting invalid JSON.
      i = j;
    } else {
      WriteTree(w, leaves, i, j, depth + segment.size() + 1);
      i = j;
    }
  }
  w->EndObject();
}

}  // namespace

std::string StatsRegistry::ToJson(int indent) const {
  std::vector<Leaf> leaves;
  leaves.reserve(counters_.size() + gauges_.size() + summaries_.size() +
                 histograms_.size());
  for (const auto& [path, v] : counters_) {
    leaves.push_back({&path, Leaf::Kind::kCounter, v, 0, nullptr, nullptr});
  }
  for (const auto& [path, v] : gauges_) {
    leaves.push_back({&path, Leaf::Kind::kGauge, 0, v, nullptr, nullptr});
  }
  for (const auto& [path, s] : summaries_) {
    leaves.push_back({&path, Leaf::Kind::kSummary, 0, 0, &s, nullptr});
  }
  for (const auto& [path, h] : histograms_) {
    leaves.push_back({&path, Leaf::Kind::kHistogram, 0, 0, nullptr, &h});
  }
  std::sort(leaves.begin(), leaves.end(), [](const Leaf& a, const Leaf& b) {
    return *a.path < *b.path;
  });
  json::Writer w(indent);
  WriteTree(&w, leaves, 0, leaves.size(), 0);
  return w.TakeString();
}

}  // namespace bionicdb
