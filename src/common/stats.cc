#include "common/stats.h"

#include <cmath>

#include "common/json.h"

namespace bionicdb {

namespace {

/// splitmix64: strong deterministic mixer for the reservoir sampler.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Unbiased uniform draw in [0, bound) via rejection (Lemire's method needs
/// 128-bit multiplies; classic threshold rejection is branch-cheap enough
/// for the reservoir's once-per-sample use).
uint64_t UniformBelow(uint64_t* state, uint64_t bound) {
  // Discard draws from the biased tail so every residue is equally likely.
  const uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
  for (;;) {
    uint64_t r = SplitMix64(state);
    if (r >= threshold) return r % bound;
  }
}

}  // namespace

void Summary::Add(double v) {
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
  sum_ += v;
  ++seen_;
  if (reservoir_.size() < kReservoirSize) {
    reservoir_.push_back(v);
  } else {
    // Vitter's algorithm R with an unbiased deterministic draw: element
    // seen_ replaces a reservoir slot with probability k/seen_, keeping
    // every prefix element's inclusion probability uniform.
    uint64_t r = UniformBelow(&rng_state_, seen_);
    if (r < kReservoirSize) reservoir_[r] = v;
  }
}

void Summary::MergeFrom(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const uint64_t merged_count = count_ + other.count_;
  const double merged_sum = sum_ + other.sum_;
  const double merged_min = std::min(min_, other.min_);
  const double merged_max = std::max(max_, other.max_);
  // Feed the other reservoir's elements through the regular sampling path
  // (deterministic: this summary's own rng_state_ advances), then restore
  // the exact aggregate moments Add approximated along the way.
  for (double v : other.reservoir_) Add(v);
  count_ = merged_count;
  sum_ = merged_sum;
  min_ = merged_min;
  max_ = merged_max;
}

double Summary::Quantile(double q) const {
  if (reservoir_.empty()) return 0;
  if (!(q > 0)) q = 0;  // also maps NaN to 0
  if (q > 1) q = 1;
  std::vector<double> sorted = reservoir_;
  std::sort(sorted.begin(), sorted.end());
  double pos = q * double(sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(pos));
  size_t hi = static_cast<size_t>(std::ceil(pos));
  double frac = pos - double(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

void Histogram::Add(uint64_t v) {
  uint32_t bucket = 0;
  if (v > 0) {
    bucket = 64 - uint32_t(__builtin_clzll(v));
    if (bucket >= kBuckets) bucket = kBuckets - 1;
  }
  ++buckets_[bucket];
  ++count_;
  sum_ += v;
}

void StatsRegistry::SetCounter(const std::string& path, uint64_t value) {
  counters_[path] = value;
}

void StatsRegistry::AddCounter(const std::string& path, uint64_t delta) {
  counters_[path] += delta;
}

void StatsRegistry::SetGauge(const std::string& path, double value) {
  gauges_[path] = value;
}

void StatsRegistry::SetSummary(const std::string& path,
                               const Summary& summary) {
  summaries_[path] = summary;
}

void StatsRegistry::SetHistogram(const std::string& path,
                                 const Histogram& histogram) {
  histograms_[path] = histogram;
}

void StatsRegistry::MergeCounterSet(const std::string& prefix,
                                    const CounterSet& set) {
  for (const auto& [name, value] : set.counters()) {
    counters_[prefix.empty() ? name : prefix + "/" + name] += value;
  }
}

uint64_t StatsRegistry::GetCounter(const std::string& path) const {
  auto it = counters_.find(path);
  return it == counters_.end() ? 0 : it->second;
}

bool StatsRegistry::HasPath(const std::string& path) const {
  return counters_.count(path) || gauges_.count(path) ||
         summaries_.count(path) || histograms_.count(path);
}

namespace {

/// One flattened leaf, tagged with which store it came from.
struct Leaf {
  const std::string* path;
  enum class Kind { kCounter, kGauge, kSummary, kHistogram } kind;
  uint64_t counter = 0;
  double gauge = 0;
  const Summary* summary = nullptr;
  const Histogram* histogram = nullptr;
};

void WriteLeaf(json::Writer* w, const Leaf& leaf) {
  switch (leaf.kind) {
    case Leaf::Kind::kCounter:
      w->Value(leaf.counter);
      return;
    case Leaf::Kind::kGauge:
      w->Value(leaf.gauge);
      return;
    case Leaf::Kind::kSummary: {
      const Summary& s = *leaf.summary;
      w->BeginObject();
      w->Key("count"); w->Value(s.count());
      w->Key("min"); w->Value(s.min());
      w->Key("max"); w->Value(s.max());
      w->Key("mean"); w->Value(s.mean());
      w->Key("p50"); w->Value(s.Quantile(0.5));
      w->Key("p90"); w->Value(s.Quantile(0.9));
      w->Key("p99"); w->Value(s.Quantile(0.99));
      w->EndObject();
      return;
    }
    case Leaf::Kind::kHistogram: {
      const Histogram& h = *leaf.histogram;
      w->BeginObject();
      w->Key("count"); w->Value(h.count());
      w->Key("mean"); w->Value(h.mean());
      w->Key("buckets");
      w->BeginObject();
      for (uint32_t i = 0; i < Histogram::kBuckets; ++i) {
        if (h.buckets()[i] == 0) continue;
        w->Key(std::to_string(Histogram::BucketFloor(i)));
        w->Value(h.buckets()[i]);
      }
      w->EndObject();
      w->EndObject();
      return;
    }
  }
}

/// Emits leaves[lo, hi) — all sharing the path prefix of length `depth`
/// characters — as one nested JSON object, grouping on the next '/'.
void WriteTree(json::Writer* w, const std::vector<Leaf>& leaves, size_t lo,
               size_t hi, size_t depth) {
  w->BeginObject();
  size_t i = lo;
  while (i < hi) {
    const std::string& path = *leaves[i].path;
    size_t sep = path.find('/', depth);
    std::string segment = path.substr(depth, sep == std::string::npos
                                                 ? std::string::npos
                                                 : sep - depth);
    // Find the run of leaves sharing this segment at this depth.
    size_t j = i + 1;
    while (j < hi) {
      const std::string& other = *leaves[j].path;
      if (other.compare(depth, segment.size(), segment) != 0) break;
      char after = other.size() > depth + segment.size()
                       ? other[depth + segment.size()]
                       : '\0';
      if (after != '/' && after != '\0') break;
      ++j;
    }
    w->Key(segment);
    if (sep == std::string::npos) {
      WriteLeaf(w, leaves[i]);
      // Duplicate paths across stores are possible in principle; keep the
      // first and skip the rest rather than emitting invalid JSON.
      i = j;
    } else {
      WriteTree(w, leaves, i, j, depth + segment.size() + 1);
      i = j;
    }
  }
  w->EndObject();
}

}  // namespace

std::string StatsRegistry::ToJson(int indent) const {
  std::vector<Leaf> leaves;
  leaves.reserve(counters_.size() + gauges_.size() + summaries_.size() +
                 histograms_.size());
  for (const auto& [path, v] : counters_) {
    leaves.push_back({&path, Leaf::Kind::kCounter, v, 0, nullptr, nullptr});
  }
  for (const auto& [path, v] : gauges_) {
    leaves.push_back({&path, Leaf::Kind::kGauge, 0, v, nullptr, nullptr});
  }
  for (const auto& [path, s] : summaries_) {
    leaves.push_back({&path, Leaf::Kind::kSummary, 0, 0, &s, nullptr});
  }
  for (const auto& [path, h] : histograms_) {
    leaves.push_back({&path, Leaf::Kind::kHistogram, 0, 0, nullptr, &h});
  }
  std::sort(leaves.begin(), leaves.end(), [](const Leaf& a, const Leaf& b) {
    return *a.path < *b.path;
  });
  json::Writer w(indent);
  WriteTree(&w, leaves, 0, leaves.size(), 0);
  return w.TakeString();
}

}  // namespace bionicdb
