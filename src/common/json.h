// Minimal JSON support: an emitter for the bench/metrics reports and a
// strict recursive-descent parser used by tests and the bench_smoke report
// validator. Not a general-purpose JSON library — no streaming, documents
// are kept in memory — but fully self-contained (no third-party deps).
#ifndef BIONICDB_COMMON_JSON_H_
#define BIONICDB_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace bionicdb::json {

/// Escapes `s` for use inside a JSON string literal (quotes not included).
std::string Escape(const std::string& s);

/// Incremental pretty-printing JSON emitter with an explicit nesting stack.
/// Misuse (Value with no pending key inside an object, unbalanced End*)
/// trips an assert in debug builds.
class Writer {
 public:
  explicit Writer(int indent = 2) : indent_(indent) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(const std::string& key);

  void Value(const std::string& v);
  void Value(const char* v) { Value(std::string(v)); }
  void Value(uint64_t v);
  void Value(int v) { Value(uint64_t(v)); }
  void Value(double v);
  void Value(bool v);
  void Null();

  /// The finished document. The writer must be back at nesting depth 0.
  std::string TakeString();

 private:
  void Prefix();  // comma/newline/indent before a new element
  void Nest(char kind);
  void Unnest(char kind);

  std::string out_;
  int indent_;
  // One char per open container: '{' or '['; paired bool = "has elements".
  std::vector<std::pair<char, bool>> stack_;
  bool key_pending_ = false;
};

/// A parsed JSON document node.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  /// Parses `text` (must be a complete JSON document, trailing whitespace
  /// allowed). Returns InvalidArgument with position info on malformed
  /// input.
  static StatusOr<Value> Parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  double number() const { return number_; }
  bool boolean() const { return bool_; }
  const std::string& string() const { return string_; }
  const std::vector<Value>& array() const { return items_; }
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;
  /// Nested lookup by '/'-separated path ("runs/0/metrics/tps" indexes
  /// arrays with numeric segments). nullptr when any hop is absent.
  const Value* FindPath(const std::string& path) const;

 private:
  friend class Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Value> items_;                             // array
  std::vector<std::pair<std::string, Value>> members_;   // object
};

}  // namespace bionicdb::json

#endif  // BIONICDB_COMMON_JSON_H_
