#include "common/table_printer.h"

#include <cstdio>
#include <sstream>

namespace bionicdb {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      os << row[c];
      for (size_t p = row[c].size(); p < widths[c]; ++p) os << ' ';
    }
    os << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace bionicdb
