// Lightweight error-handling primitives used across BionicDB.
//
// We avoid exceptions in the hot simulation paths (Google style); routine
// per-operation failures (not-found, CC rejection) are expressed with typed
// result codes, while Status is reserved for API-level errors such as
// malformed stored procedures or invalid configuration.
#ifndef BIONICDB_COMMON_STATUS_H_
#define BIONICDB_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>

namespace bionicdb {

/// Error categories for API-level operations.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value for API-level operations.
///
/// Cheap to copy in the OK case (no allocation); error statuses carry a
/// message describing what went wrong.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A Status plus a value; the value is only meaningful when ok().
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace bionicdb

/// Propagates a non-OK Status to the caller.
#define BIONICDB_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::bionicdb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

#endif  // BIONICDB_COMMON_STATUS_H_
