// Plain-text table formatting for benchmark harness output.
//
// Every bench binary prints the rows/series of the paper table or figure it
// regenerates; this helper keeps that output aligned and diff-friendly.
#ifndef BIONICDB_COMMON_TABLE_PRINTER_H_
#define BIONICDB_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace bionicdb {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);

  /// Renders the full table (header, rule, rows) to a string.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bionicdb

#endif  // BIONICDB_COMMON_TABLE_PRINTER_H_
