#include "common/hash.h"

namespace bionicdb {

uint64_t SdbmHash(const uint8_t* data, size_t len) {
  uint64_t h = 0;
  for (size_t i = 0; i < len; ++i) {
    h = data[i] + (h << 6) + (h << 16) - h;
  }
  return h;
}

uint64_t SdbmHash64(uint64_t key) {
  uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<uint8_t>(key >> (8 * i));
  return SdbmHash(bytes, 8);
}

uint64_t Fnv1aHash64(uint64_t value) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Fnv1aHash(const uint8_t* data, size_t len) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len, uint32_t seed) {
  static const Crc32Table table;
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table.entries[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace bionicdb
