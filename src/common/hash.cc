#include "common/hash.h"

namespace bionicdb {

uint64_t SdbmHash(const uint8_t* data, size_t len) {
  uint64_t h = 0;
  for (size_t i = 0; i < len; ++i) {
    h = data[i] + (h << 6) + (h << 16) - h;
  }
  return h;
}

uint64_t SdbmHash64(uint64_t key) {
  uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<uint8_t>(key >> (8 * i));
  return SdbmHash(bytes, 8);
}

uint64_t Fnv1aHash64(uint64_t value) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Fnv1aHash(const uint8_t* data, size_t len) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace bionicdb
