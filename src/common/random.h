// Deterministic pseudo-random generators for workloads and simulation.
//
// The BionicDB simulator is single-threaded and fully deterministic: every
// random decision flows from an explicitly seeded generator, so any
// experiment can be replayed bit-for-bit.
#ifndef BIONICDB_COMMON_RANDOM_H_
#define BIONICDB_COMMON_RANDOM_H_

#include <cstdint>

namespace bionicdb {

/// xorshift128+ generator: fast, decent quality, fully deterministic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (p in [0,1]).
  bool NextBool(double p);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Zipfian-distributed key generator over [0, n), YCSB-style.
///
/// Uses the Gray et al. rejection-free inverse-CDF approximation, the same
/// construction as the YCSB reference implementation; theta defaults to the
/// YCSB standard 0.99.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99);

  /// Draws the next Zipfian value in [0, n).
  uint64_t Next(Rng* rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

/// Scrambled Zipfian: spreads the hot keys across the key space by hashing,
/// matching YCSB's scrambled_zipfian request distribution.
class ScrambledZipfianGenerator {
 public:
  explicit ScrambledZipfianGenerator(uint64_t n, double theta = 0.99)
      : n_(n), zipf_(n, theta) {}

  uint64_t Next(Rng* rng);

 private:
  uint64_t n_;
  ZipfianGenerator zipf_;
};

}  // namespace bionicdb

#endif  // BIONICDB_COMMON_RANDOM_H_
