// The BionicDB instruction set (paper Table 2).
//
// Two instruction classes share one stream:
//  * CPU instructions — executed directly by the softcore in five stages
//    (IFetch/Decode/Execute/Memory/Writeback), no pipelining, no ILP.
//  * DB instructions — encapsulated index operations; the softcore runs
//    Prepare + Dispatch and forwards them asynchronously to the local index
//    coprocessor or, via the on-chip channels, to a remote partition worker.
//
// The encoding here is a fixed-layout struct rather than packed bits: the
// simulator charges timing per instruction class, so bit-level layout would
// add nothing but obfuscation.
#ifndef BIONICDB_ISA_INSTRUCTION_H_
#define BIONICDB_ISA_INSTRUCTION_H_

#include <cstdint>
#include <string>

namespace bionicdb::isa {

enum class Opcode : uint8_t {
  // --- DB instructions (dispatched to the index coprocessor) ---
  kInsert = 0,
  kSearch,
  kScan,
  kUpdate,
  kRemove,
  // --- CPU instructions ---
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMov,
  kCmp,
  kLoad,
  kStore,
  kJmp,
  kBe,   // branch if equal
  kBne,  // branch if not equal
  kBle,  // branch if less-or-equal
  kBlt,  // branch if less-than
  kBgt,  // branch if greater-than
  kBge,  // branch if greater-or-equal
  kRet,     // blocking copy of a CP register into a GP register
  kCommit,  // finalize: publish write-set (clear dirty bits, stamp wts)
  kAbort,   // finalize: roll back write-set bookkeeping
  kYield,   // end of transaction-logic phase (switch point for interleaving)
  kNop,
};

/// True for the five index operations of Table 2.
constexpr bool IsDbOpcode(Opcode op) {
  return op == Opcode::kInsert || op == Opcode::kSearch ||
         op == Opcode::kScan || op == Opcode::kUpdate ||
         op == Opcode::kRemove;
}

const char* OpcodeName(Opcode op);

/// Register index within a softcore's 256-entry GP or CP register file.
/// Transaction interleaving renames registers at runtime by adding the
/// batch-allocated base (paper section 4.5), so stored procedures always use
/// small logical indices.
using Reg = uint8_t;

/// Sentinel for "no register operand".
constexpr Reg kNoReg = 0xff;

/// Instruction::batch_flags bits (DB instructions only): kBatchFlagMember
/// marks an op framed inside a ProgramBuilder BeginBatch()/EndBatch()
/// group; kBatchFlagEnd additionally marks the group's last op, hinting
/// the index pipeline's batch collector to flush early instead of waiting
/// out its timeout.
constexpr uint8_t kBatchFlagMember = 0x1;
constexpr uint8_t kBatchFlagEnd = 0x2;

/// One decoded BionicDB instruction.
struct Instruction {
  Opcode opcode = Opcode::kNop;

  // CPU operands ---------------------------------------------------------
  Reg rd = kNoReg;   // destination GP register
  Reg rs1 = kNoReg;  // first source GP register (LOAD/STORE base address)
  Reg rs2 = kNoReg;  // second source GP register (when !use_imm)
  bool use_imm = false;
  int64_t imm = 0;  // ALU immediate / LOAD-STORE offset / branch target

  // DB operands ----------------------------------------------------------
  uint16_t table_id = 0;
  Reg cp = kNoReg;        // destination CP register for the async result
  Reg part_reg = kNoReg;  // GP register holding the target partition;
                          // kNoReg means the immediate `partition` field
  int32_t partition = -1;     // immediate target partition; -1 = local
  int32_t key_offset = 0;     // offset of the key within the txn block
  uint16_t key_len = 0;       // key length in bytes; 0 = table schema default
  int32_t aux_offset = 0;     // INSERT: payload offset; SCAN: output buffer
  uint32_t scan_count = 0;    // SCAN: maximum tuples to collect
  Reg scan_reg = kNoReg;      // SCAN: GP register overriding scan_count
                              // (per-transaction scan lengths); kNoReg
                              // keeps the immediate
  uint8_t batch_flags = 0;    // kBatchFlag* framing bits

  /// One-line human-readable rendering (the disassembler).
  std::string ToString() const;
};

/// Status half of the 64-bit value a DB instruction writes back to its CP
/// register: (status << 56) | payload.
enum class CpStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kRejected = 2,   // concurrency-control visibility failure -> abort
  kError = 3,
  kCorrupted = 4,  // tuple integrity-guard (CRC) mismatch -> abort
};

constexpr uint64_t EncodeCpValue(CpStatus status, uint64_t payload) {
  return (uint64_t(status) << 56) | (payload & 0x00ffffffffffffffULL);
}
constexpr CpStatus CpValueStatus(uint64_t value) {
  return CpStatus(value >> 56);
}
constexpr uint64_t CpValuePayload(uint64_t value) {
  return value & 0x00ffffffffffffffULL;
}

}  // namespace bionicdb::isa

#endif  // BIONICDB_ISA_INSTRUCTION_H_
