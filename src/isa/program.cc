#include "isa/program.h"

#include <algorithm>
#include <sstream>

namespace bionicdb::isa {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kInsert: return "INSERT";
    case Opcode::kSearch: return "SEARCH";
    case Opcode::kScan: return "SCAN";
    case Opcode::kUpdate: return "UPDATE";
    case Opcode::kRemove: return "REMOVE";
    case Opcode::kAdd: return "ADD";
    case Opcode::kSub: return "SUB";
    case Opcode::kMul: return "MUL";
    case Opcode::kDiv: return "DIV";
    case Opcode::kMov: return "MOV";
    case Opcode::kCmp: return "CMP";
    case Opcode::kLoad: return "LOAD";
    case Opcode::kStore: return "STORE";
    case Opcode::kJmp: return "JMP";
    case Opcode::kBe: return "BE";
    case Opcode::kBne: return "BNE";
    case Opcode::kBle: return "BLE";
    case Opcode::kBlt: return "BLT";
    case Opcode::kBgt: return "BGT";
    case Opcode::kBge: return "BGE";
    case Opcode::kRet: return "RET";
    case Opcode::kCommit: return "COMMIT";
    case Opcode::kAbort: return "ABORT";
    case Opcode::kYield: return "YIELD";
    case Opcode::kNop: return "NOP";
  }
  return "???";
}

namespace {
std::string RegName(Reg r) {
  if (r == kNoReg) return "-";
  return "r" + std::to_string(int(r));
}
}  // namespace

std::string Instruction::ToString() const {
  std::ostringstream os;
  os << OpcodeName(opcode);
  if (IsDbOpcode(opcode)) {
    os << " t" << table_id << ", key@" << key_offset;
    if (key_len != 0) os << "(len=" << key_len << ")";
    os << ", cp" << int(cp);
    if (part_reg != kNoReg) {
      os << ", part=" << RegName(part_reg);
    } else if (partition >= 0) {
      os << ", part=" << partition;
    }
    if (opcode == Opcode::kInsert) os << ", payload@" << aux_offset;
    if (opcode == Opcode::kScan) {
      os << ", out@" << aux_offset << ", count=";
      if (scan_reg != kNoReg) {
        os << RegName(scan_reg);
      } else {
        os << scan_count;
      }
    }
    if (batch_flags & kBatchFlagMember) {
      os << ((batch_flags & kBatchFlagEnd) ? " [batch-end]" : " [batch]");
    }
    return os.str();
  }
  switch (opcode) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
      os << " " << RegName(rd) << ", " << RegName(rs1) << ", ";
      if (use_imm) {
        os << "#" << imm;
      } else {
        os << RegName(rs2);
      }
      break;
    case Opcode::kMov:
      os << " " << RegName(rd) << ", ";
      if (use_imm) {
        os << "#" << imm;
      } else {
        os << RegName(rs1);
      }
      break;
    case Opcode::kCmp:
      os << " " << RegName(rs1) << ", ";
      if (use_imm) {
        os << "#" << imm;
      } else {
        os << RegName(rs2);
      }
      break;
    case Opcode::kLoad:
      os << " " << RegName(rd) << ", [" << RegName(rs1) << " + " << imm << "]";
      break;
    case Opcode::kStore:
      os << " " << RegName(rs1) << " -> [" << RegName(rs2) << " + " << imm
         << "]";
      break;
    case Opcode::kJmp:
    case Opcode::kBe:
    case Opcode::kBne:
    case Opcode::kBle:
    case Opcode::kBlt:
    case Opcode::kBgt:
    case Opcode::kBge:
      os << " @" << imm;
      break;
    case Opcode::kRet:
      os << " " << RegName(rd) << ", cp" << int(rs1);
      break;
    default:
      break;
  }
  return os.str();
}

std::string Program::Disassemble() const {
  std::ostringstream os;
  for (uint64_t pc = 0; pc < code_.size(); ++pc) {
    if (pc == logic_entry_) os << ".logic\n";
    if (pc == commit_entry_) os << ".commit\n";
    if (pc == abort_entry_) os << ".abort\n";
    os << "  " << pc << ": " << code_[pc].ToString() << "\n";
  }
  return os.str();
}

Status Program::Validate() const {
  if (code_.empty()) return Status::InvalidArgument("empty program");
  if (commit_entry_ == 0 || abort_entry_ == 0) {
    return Status::InvalidArgument("missing commit or abort section");
  }
  if (commit_entry_ > abort_entry_) {
    return Status::InvalidArgument("commit section must precede abort");
  }
  bool has_yield = false;
  for (uint64_t pc = 0; pc < code_.size(); ++pc) {
    const Instruction& inst = code_[pc];
    switch (inst.opcode) {
      case Opcode::kJmp:
      case Opcode::kBe:
      case Opcode::kBne:
      case Opcode::kBle:
      case Opcode::kBlt:
      case Opcode::kBgt:
      case Opcode::kBge:
        if (inst.imm < 0 || uint64_t(inst.imm) >= code_.size()) {
          return Status::OutOfRange("branch target out of range at pc " +
                                    std::to_string(pc));
        }
        break;
      case Opcode::kYield:
        if (pc >= commit_entry_) {
          return Status::InvalidArgument("YIELD inside a handler at pc " +
                                         std::to_string(pc));
        }
        has_yield = true;
        break;
      case Opcode::kInsert:
      case Opcode::kSearch:
      case Opcode::kScan:
      case Opcode::kUpdate:
      case Opcode::kRemove:
        if (inst.cp == kNoReg) {
          return Status::InvalidArgument(
              "DB instruction without CP register at pc " +
              std::to_string(pc));
        }
        if (pc >= commit_entry_) {
          return Status::InvalidArgument(
              "DB instruction inside a handler at pc " + std::to_string(pc));
        }
        if ((inst.batch_flags & kBatchFlagEnd) != 0 &&
            (inst.batch_flags & kBatchFlagMember) == 0) {
          return Status::InvalidArgument(
              "batch-end flag outside a batch group at pc " +
              std::to_string(pc));
        }
        break;
      default:
        if (inst.batch_flags != 0) {
          return Status::InvalidArgument(
              "batch flags on a CPU instruction at pc " + std::to_string(pc));
        }
        break;
    }
  }
  if (!has_yield) {
    return Status::InvalidArgument("logic section does not YIELD");
  }
  if (code_.back().opcode != Opcode::kCommit &&
      code_.back().opcode != Opcode::kAbort &&
      code_.back().opcode != Opcode::kJmp) {
    return Status::InvalidArgument("program does not terminate");
  }
  return Status::Ok();
}

// --- ProgramBuilder -----------------------------------------------------

ProgramBuilder& ProgramBuilder::Logic() {
  section_ = Section::kLogic;
  logic_entry_ = code_.size();
  has_logic_ = true;
  return *this;
}
ProgramBuilder& ProgramBuilder::Commit() {
  section_ = Section::kCommit;
  commit_entry_ = code_.size();
  has_commit_ = true;
  return *this;
}
ProgramBuilder& ProgramBuilder::Abort() {
  section_ = Section::kAbort;
  abort_entry_ = code_.size();
  has_abort_ = true;
  return *this;
}

ProgramBuilder& ProgramBuilder::Label(const std::string& name) {
  labels_[name] = code_.size();
  return *this;
}

ProgramBuilder& ProgramBuilder::Emit(Instruction inst) {
  code_.push_back(inst);
  return *this;
}

ProgramBuilder& ProgramBuilder::EmitBranch(Opcode op,
                                           const std::string& label) {
  Instruction inst;
  inst.opcode = op;
  fixups_.emplace_back(code_.size(), label);
  return Emit(inst);
}

namespace {
Instruction Alu(Opcode op, Reg rd, Reg rs1, Reg rs2) {
  Instruction i;
  i.opcode = op;
  i.rd = rd;
  i.rs1 = rs1;
  i.rs2 = rs2;
  return i;
}
Instruction AluImm(Opcode op, Reg rd, Reg rs1, int64_t imm) {
  Instruction i;
  i.opcode = op;
  i.rd = rd;
  i.rs1 = rs1;
  i.use_imm = true;
  i.imm = imm;
  return i;
}
}  // namespace

ProgramBuilder& ProgramBuilder::Add(Reg rd, Reg rs1, Reg rs2) {
  return Emit(Alu(Opcode::kAdd, rd, rs1, rs2));
}
ProgramBuilder& ProgramBuilder::AddI(Reg rd, Reg rs1, int64_t imm) {
  return Emit(AluImm(Opcode::kAdd, rd, rs1, imm));
}
ProgramBuilder& ProgramBuilder::Sub(Reg rd, Reg rs1, Reg rs2) {
  return Emit(Alu(Opcode::kSub, rd, rs1, rs2));
}
ProgramBuilder& ProgramBuilder::SubI(Reg rd, Reg rs1, int64_t imm) {
  return Emit(AluImm(Opcode::kSub, rd, rs1, imm));
}
ProgramBuilder& ProgramBuilder::Mul(Reg rd, Reg rs1, Reg rs2) {
  return Emit(Alu(Opcode::kMul, rd, rs1, rs2));
}
ProgramBuilder& ProgramBuilder::MulI(Reg rd, Reg rs1, int64_t imm) {
  return Emit(AluImm(Opcode::kMul, rd, rs1, imm));
}
ProgramBuilder& ProgramBuilder::Div(Reg rd, Reg rs1, Reg rs2) {
  return Emit(Alu(Opcode::kDiv, rd, rs1, rs2));
}
ProgramBuilder& ProgramBuilder::DivI(Reg rd, Reg rs1, int64_t imm) {
  return Emit(AluImm(Opcode::kDiv, rd, rs1, imm));
}

ProgramBuilder& ProgramBuilder::Mov(Reg rd, Reg rs) {
  Instruction i;
  i.opcode = Opcode::kMov;
  i.rd = rd;
  i.rs1 = rs;
  return Emit(i);
}
ProgramBuilder& ProgramBuilder::MovI(Reg rd, int64_t imm) {
  Instruction i;
  i.opcode = Opcode::kMov;
  i.rd = rd;
  i.use_imm = true;
  i.imm = imm;
  return Emit(i);
}

ProgramBuilder& ProgramBuilder::Cmp(Reg rs1, Reg rs2) {
  Instruction i;
  i.opcode = Opcode::kCmp;
  i.rs1 = rs1;
  i.rs2 = rs2;
  return Emit(i);
}
ProgramBuilder& ProgramBuilder::CmpI(Reg rs1, int64_t imm) {
  Instruction i;
  i.opcode = Opcode::kCmp;
  i.rs1 = rs1;
  i.use_imm = true;
  i.imm = imm;
  return Emit(i);
}

ProgramBuilder& ProgramBuilder::Load(Reg rd, Reg base, int64_t offset) {
  Instruction i;
  i.opcode = Opcode::kLoad;
  i.rd = rd;
  i.rs1 = base;
  i.imm = offset;
  return Emit(i);
}
ProgramBuilder& ProgramBuilder::Store(Reg rs, Reg base, int64_t offset) {
  Instruction i;
  i.opcode = Opcode::kStore;
  i.rs1 = rs;
  i.rs2 = base;
  i.imm = offset;
  return Emit(i);
}

ProgramBuilder& ProgramBuilder::Jmp(const std::string& l) {
  return EmitBranch(Opcode::kJmp, l);
}
ProgramBuilder& ProgramBuilder::Be(const std::string& l) {
  return EmitBranch(Opcode::kBe, l);
}
ProgramBuilder& ProgramBuilder::Bne(const std::string& l) {
  return EmitBranch(Opcode::kBne, l);
}
ProgramBuilder& ProgramBuilder::Ble(const std::string& l) {
  return EmitBranch(Opcode::kBle, l);
}
ProgramBuilder& ProgramBuilder::Blt(const std::string& l) {
  return EmitBranch(Opcode::kBlt, l);
}
ProgramBuilder& ProgramBuilder::Bgt(const std::string& l) {
  return EmitBranch(Opcode::kBgt, l);
}
ProgramBuilder& ProgramBuilder::Bge(const std::string& l) {
  return EmitBranch(Opcode::kBge, l);
}

ProgramBuilder& ProgramBuilder::Ret(Reg rd, Reg cp) {
  Instruction i;
  i.opcode = Opcode::kRet;
  i.rd = rd;
  i.rs1 = cp;
  return Emit(i);
}

ProgramBuilder& ProgramBuilder::Yield() {
  Instruction i;
  i.opcode = Opcode::kYield;
  return Emit(i);
}
ProgramBuilder& ProgramBuilder::CommitTxn() {
  Instruction i;
  i.opcode = Opcode::kCommit;
  return Emit(i);
}
ProgramBuilder& ProgramBuilder::AbortTxn() {
  Instruction i;
  i.opcode = Opcode::kAbort;
  return Emit(i);
}
ProgramBuilder& ProgramBuilder::Nop() {
  Instruction i;
  i.opcode = Opcode::kNop;
  return Emit(i);
}

ProgramBuilder& ProgramBuilder::EmitDb(Opcode op, const DbArgs& args) {
  Instruction i;
  i.opcode = op;
  i.table_id = args.table_id;
  i.cp = args.cp;
  i.key_offset = args.key_offset;
  i.key_len = args.key_len;
  i.part_reg = args.part_reg;
  i.partition = args.partition;
  i.aux_offset = args.aux_offset;
  i.scan_count = args.scan_count;
  i.scan_reg = args.scan_reg;
  if (in_batch_) {
    i.batch_flags = kBatchFlagMember;
    batch_last_db_ = int64_t(code_.size());
  }
  return Emit(i);
}

ProgramBuilder& ProgramBuilder::BeginBatch() {
  in_batch_ = true;
  batch_last_db_ = -1;
  return *this;
}

ProgramBuilder& ProgramBuilder::EndBatch() {
  if (in_batch_ && batch_last_db_ >= 0) {
    code_[uint64_t(batch_last_db_)].batch_flags |= kBatchFlagEnd;
  }
  in_batch_ = false;
  batch_last_db_ = -1;
  return *this;
}

ProgramBuilder& ProgramBuilder::Insert(const DbArgs& a) {
  return EmitDb(Opcode::kInsert, a);
}
ProgramBuilder& ProgramBuilder::Search(const DbArgs& a) {
  return EmitDb(Opcode::kSearch, a);
}
ProgramBuilder& ProgramBuilder::Scan(const DbArgs& a) {
  return EmitDb(Opcode::kScan, a);
}
ProgramBuilder& ProgramBuilder::Update(const DbArgs& a) {
  return EmitDb(Opcode::kUpdate, a);
}
ProgramBuilder& ProgramBuilder::Remove(const DbArgs& a) {
  return EmitDb(Opcode::kRemove, a);
}

StatusOr<Program> ProgramBuilder::Build() {
  if (!has_logic_ || !has_commit_ || !has_abort_) {
    return Status::InvalidArgument(
        "program must define .logic, .commit and .abort sections");
  }
  for (const auto& [pc, label] : fixups_) {
    auto it = labels_.find(label);
    if (it == labels_.end()) {
      return Status::NotFound("undefined label: " + label);
    }
    code_[pc].imm = int64_t(it->second);
  }
  Program p;
  p.code_ = code_;
  p.logic_entry_ = logic_entry_;
  p.commit_entry_ = commit_entry_;
  p.abort_entry_ = abort_entry_;
  uint32_t max_gp = 0;
  uint32_t max_cp = 0;
  for (const Instruction& inst : code_) {
    auto track = [&max_gp](Reg r) {
      if (r != kNoReg) max_gp = std::max(max_gp, uint32_t(r) + 1);
    };
    track(inst.rd);
    track(inst.rs2);
    track(inst.part_reg);
    track(inst.scan_reg);
    if (inst.opcode == Opcode::kRet) {
      // rs1 of RET is a CP register.
      max_cp = std::max(max_cp, uint32_t(inst.rs1) + 1);
    } else {
      track(inst.rs1);
    }
    if (IsDbOpcode(inst.opcode)) {
      max_cp = std::max(max_cp, uint32_t(inst.cp) + 1);
    }
  }
  p.gp_regs_used_ = max_gp;
  p.cp_regs_used_ = max_cp;
  BIONICDB_RETURN_IF_ERROR(p.Validate());
  return p;
}

}  // namespace bionicdb::isa
