// Text assembler for BionicDB stored procedures.
//
// The paper hand-writes stored procedures in BionicDB machine code (a SQL
// front-end compiler is explicitly out of scope, section 4.3); this
// assembler is the matching workflow. Syntax, one instruction per line:
//
//   ; comment, also '#' at start of line
//   .logic
//   loop:
//     MOV   r1, #5          ; '#' marks an immediate
//     ADD   r2, r1, r3
//     LOAD  r4, [r0 + 16]
//     STORE r4, [r0 + 24]
//     CMP   r1, #0
//     BE    done
//     JMP   loop
//   done:
//     SEARCH t0, key=0, cp=1
//     UPDATE t1, key=8, cp=2, part=r5
//     INSERT t1, key=8, payload=16, cp=3, part=2
//     SCAN   t2, key=0, out=64, count=50, cp=4
//     YIELD
//   .commit
//     RET r6, cp1
//     COMMIT
//   .abort
//     ABORT
#ifndef BIONICDB_ISA_ASSEMBLER_H_
#define BIONICDB_ISA_ASSEMBLER_H_

#include <string>

#include "common/status.h"
#include "isa/program.h"

namespace bionicdb::isa {

/// Assembles `source` into a validated Program. Error statuses carry the
/// offending line number and text.
StatusOr<Program> Assemble(const std::string& source);

}  // namespace bionicdb::isa

#endif  // BIONICDB_ISA_ASSEMBLER_H_
