// Stored-procedure container and fluent builder.
//
// A stored procedure has three parts (paper Fig. 3): the transaction logic,
// a commit handler and an abort handler. The softcore runs the logic phase
// first (ending at YIELD), later resumes at the commit handler, and jumps to
// the abort handler on any DB-instruction failure or voluntary abort.
#ifndef BIONICDB_ISA_PROGRAM_H_
#define BIONICDB_ISA_PROGRAM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "isa/instruction.h"

namespace bionicdb::isa {

/// A compiled stored procedure plus the catalogue metadata the softcore
/// needs for transaction grouping (how many GP/CP registers it consumes).
class Program {
 public:
  const std::vector<Instruction>& code() const { return code_; }
  const Instruction& at(uint64_t pc) const { return code_[pc]; }
  uint64_t size() const { return code_.size(); }

  uint64_t logic_entry() const { return logic_entry_; }
  uint64_t commit_entry() const { return commit_entry_; }
  uint64_t abort_entry() const { return abort_entry_; }

  /// Registers consumed per invocation — drives batch closure (section 4.5).
  uint32_t gp_regs_used() const { return gp_regs_used_; }
  uint32_t cp_regs_used() const { return cp_regs_used_; }

  /// Multi-line disassembly listing with section markers.
  std::string Disassemble() const;

  /// Structural sanity checks: sections present, branch targets in range,
  /// every DB instruction names a CP register, RET after YIELD only, etc.
  Status Validate() const;

 private:
  friend class ProgramBuilder;

  std::vector<Instruction> code_;
  uint64_t logic_entry_ = 0;
  uint64_t commit_entry_ = 0;
  uint64_t abort_entry_ = 0;
  uint32_t gp_regs_used_ = 0;
  uint32_t cp_regs_used_ = 0;
};

/// Fluent emitter used by workloads and by the text assembler.
///
/// Sections must be emitted in order: Logic(), then Commit(), then Abort().
/// Labels give symbolic branch targets resolved at Build() time.
class ProgramBuilder {
 public:
  ProgramBuilder& Logic();
  ProgramBuilder& Commit();
  ProgramBuilder& Abort();

  /// Binds `name` to the next emitted instruction.
  ProgramBuilder& Label(const std::string& name);

  // --- CPU instructions -------------------------------------------------
  ProgramBuilder& Add(Reg rd, Reg rs1, Reg rs2);
  ProgramBuilder& AddI(Reg rd, Reg rs1, int64_t imm);
  ProgramBuilder& Sub(Reg rd, Reg rs1, Reg rs2);
  ProgramBuilder& SubI(Reg rd, Reg rs1, int64_t imm);
  ProgramBuilder& Mul(Reg rd, Reg rs1, Reg rs2);
  ProgramBuilder& MulI(Reg rd, Reg rs1, int64_t imm);
  ProgramBuilder& Div(Reg rd, Reg rs1, Reg rs2);
  ProgramBuilder& DivI(Reg rd, Reg rs1, int64_t imm);
  ProgramBuilder& Mov(Reg rd, Reg rs);
  ProgramBuilder& MovI(Reg rd, int64_t imm);
  ProgramBuilder& Cmp(Reg rs1, Reg rs2);
  ProgramBuilder& CmpI(Reg rs1, int64_t imm);

  /// LOAD rd <- mem[GP[base] + offset]; base == kNoReg uses the transaction
  /// block base address (the worker loads it into GP r0 at txn start, but
  /// the addressing mode of the paper is base-offset, so we keep it
  /// explicit).
  ProgramBuilder& Load(Reg rd, Reg base, int64_t offset);
  /// STORE mem[GP[base] + offset] <- GP[rs].
  ProgramBuilder& Store(Reg rs, Reg base, int64_t offset);

  ProgramBuilder& Jmp(const std::string& label);
  ProgramBuilder& Be(const std::string& label);
  ProgramBuilder& Bne(const std::string& label);
  ProgramBuilder& Ble(const std::string& label);
  ProgramBuilder& Blt(const std::string& label);
  ProgramBuilder& Bgt(const std::string& label);
  ProgramBuilder& Bge(const std::string& label);

  /// RET rd <- CP[cp]: blocks until the DB result arrives; on an error
  /// status the softcore transfers control to the abort handler.
  ProgramBuilder& Ret(Reg rd, Reg cp);

  ProgramBuilder& Yield();
  ProgramBuilder& CommitTxn();
  ProgramBuilder& AbortTxn();
  ProgramBuilder& Nop();

  // --- DB instructions ---------------------------------------------------
  struct DbArgs {
    uint16_t table_id = 0;
    Reg cp = 0;
    int32_t key_offset = 0;
    uint16_t key_len = 0;       // 0 = schema default
    Reg part_reg = kNoReg;      // partition from a GP register...
    int32_t partition = -1;     // ...or immediate; -1 = local partition
    int32_t aux_offset = 0;     // insert payload / scan output buffer
    uint32_t scan_count = 0;
    Reg scan_reg = kNoReg;      // scan count from a GP register (overrides
                                // the immediate when not kNoReg)
  };

  ProgramBuilder& Insert(const DbArgs& args);
  ProgramBuilder& Search(const DbArgs& args);
  ProgramBuilder& Scan(const DbArgs& args);
  ProgramBuilder& Update(const DbArgs& args);
  ProgramBuilder& Remove(const DbArgs& args);

  /// Batch op framing: DB instructions emitted between BeginBatch() and
  /// EndBatch() carry kBatchFlagMember, and the group's last DB
  /// instruction also carries kBatchFlagEnd — the index pipelines' batch
  /// collectors flush on that hint instead of waiting out their timeout.
  /// Framing is advisory: per-op pipelines ignore the flags entirely.
  ProgramBuilder& BeginBatch();
  ProgramBuilder& EndBatch();

  /// Resolves labels, computes register usage and validates the result.
  StatusOr<Program> Build();

 private:
  enum class Section { kNone, kLogic, kCommit, kAbort };

  ProgramBuilder& Emit(Instruction inst);
  ProgramBuilder& EmitDb(Opcode op, const DbArgs& args);
  ProgramBuilder& EmitBranch(Opcode op, const std::string& label);

  std::vector<Instruction> code_;
  std::map<std::string, uint64_t> labels_;
  std::vector<std::pair<uint64_t, std::string>> fixups_;
  Section section_ = Section::kNone;
  uint64_t logic_entry_ = 0;
  uint64_t commit_entry_ = 0;
  uint64_t abort_entry_ = 0;
  bool has_logic_ = false;
  bool has_commit_ = false;
  bool has_abort_ = false;
  bool in_batch_ = false;
  int64_t batch_last_db_ = -1;  // pc of the open group's last DB op
};

}  // namespace bionicdb::isa

#endif  // BIONICDB_ISA_PROGRAM_H_
