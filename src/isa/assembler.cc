#include "isa/assembler.h"

#include <cctype>
#include <optional>
#include <sstream>
#include <vector>

namespace bionicdb::isa {

namespace {

/// Tokenized line: mnemonic + comma-separated operand strings.
struct Line {
  int number = 0;
  std::string text;
  std::string mnemonic;
  std::vector<std::string> operands;
};

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::string Upper(std::string s) {
  for (char& c : s) c = char(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

Status Error(const Line& line, const std::string& what) {
  return Status::InvalidArgument("line " + std::to_string(line.number) +
                                 " ('" + line.text + "'): " + what);
}

/// Parses "r<N>" into a register index.
std::optional<Reg> ParseReg(const std::string& tok) {
  if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R')) return std::nullopt;
  int v = 0;
  for (size_t i = 1; i < tok.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(tok[i]))) return std::nullopt;
    v = v * 10 + (tok[i] - '0');
    if (v > 255) return std::nullopt;
  }
  return Reg(v);
}

/// Parses "#<imm>" or a bare signed integer.
std::optional<int64_t> ParseImm(const std::string& tok) {
  std::string t = tok;
  if (!t.empty() && t[0] == '#') t = t.substr(1);
  if (t.empty()) return std::nullopt;
  size_t i = (t[0] == '-') ? 1 : 0;
  if (i >= t.size()) return std::nullopt;
  for (size_t j = i; j < t.size(); ++j) {
    if (!std::isdigit(static_cast<unsigned char>(t[j]))) return std::nullopt;
  }
  return std::stoll(t);
}

/// Parses "cp<N>".
std::optional<Reg> ParseCp(const std::string& tok) {
  if (tok.size() < 3) return std::nullopt;
  std::string pre = Upper(tok.substr(0, 2));
  if (pre != "CP") return std::nullopt;
  return ParseReg("r" + tok.substr(2));
}

/// Splits the operand field on commas, respecting "[...]" groups.
std::vector<std::string> SplitOperands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (char c : s) {
    if (c == '[') ++depth;
    if (c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(Trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  std::string last = Trim(cur);
  if (!last.empty()) out.push_back(last);
  return out;
}

/// Parses "[rB + off]" or "[rB - off]" or "[rB]".
Status ParseMemOperand(const Line& line, const std::string& tok, Reg* base,
                       int64_t* offset) {
  if (tok.size() < 2 || tok.front() != '[' || tok.back() != ']') {
    return Error(line, "expected memory operand like [r0 + 8]");
  }
  std::string inner = Trim(tok.substr(1, tok.size() - 2));
  size_t plus = inner.find('+');
  size_t minus = inner.find('-');
  std::string base_tok = inner;
  std::string off_tok;
  int sign = 1;
  if (plus != std::string::npos) {
    base_tok = Trim(inner.substr(0, plus));
    off_tok = Trim(inner.substr(plus + 1));
  } else if (minus != std::string::npos) {
    base_tok = Trim(inner.substr(0, minus));
    off_tok = Trim(inner.substr(minus + 1));
    sign = -1;
  }
  auto r = ParseReg(base_tok);
  if (!r) return Error(line, "bad base register '" + base_tok + "'");
  *base = *r;
  *offset = 0;
  if (!off_tok.empty()) {
    auto imm = ParseImm(off_tok);
    if (!imm) return Error(line, "bad offset '" + off_tok + "'");
    *offset = sign * *imm;
  }
  return Status::Ok();
}

/// Parses DB-instruction operands: "t<id>" plus key=/cp=/part=/payload=/
/// out=/count=/keylen= pairs.
Status ParseDbOperands(const Line& line, ProgramBuilder::DbArgs* args) {
  if (line.operands.empty()) return Error(line, "missing table operand");
  const std::string& t = line.operands[0];
  if (t.size() < 2 || (t[0] != 't' && t[0] != 'T')) {
    return Error(line, "first DB operand must be a table like t0");
  }
  auto tid = ParseImm(t.substr(1));
  if (!tid || *tid < 0) return Error(line, "bad table id");
  args->table_id = uint16_t(*tid);

  bool have_cp = false;
  for (size_t i = 1; i < line.operands.size(); ++i) {
    const std::string& op = line.operands[i];
    size_t eq = op.find('=');
    if (eq == std::string::npos) {
      return Error(line, "expected key=value operand, got '" + op + "'");
    }
    std::string k = Upper(Trim(op.substr(0, eq)));
    std::string v = Trim(op.substr(eq + 1));
    if (k == "KEY") {
      auto imm = ParseImm(v);
      if (!imm) return Error(line, "bad key offset");
      args->key_offset = int32_t(*imm);
    } else if (k == "KEYLEN") {
      auto imm = ParseImm(v);
      if (!imm || *imm < 0) return Error(line, "bad key length");
      args->key_len = uint16_t(*imm);
    } else if (k == "CP") {
      auto imm = ParseImm(v);
      if (!imm || *imm < 0 || *imm > 255) return Error(line, "bad cp register");
      args->cp = Reg(*imm);
      have_cp = true;
    } else if (k == "PART") {
      if (auto r = ParseReg(v)) {
        args->part_reg = *r;
      } else if (auto imm = ParseImm(v)) {
        args->partition = int32_t(*imm);
      } else {
        return Error(line, "bad partition operand");
      }
    } else if (k == "PAYLOAD" || k == "OUT") {
      auto imm = ParseImm(v);
      if (!imm) return Error(line, "bad " + k + " offset");
      args->aux_offset = int32_t(*imm);
    } else if (k == "COUNT") {
      auto imm = ParseImm(v);
      if (!imm || *imm < 0) return Error(line, "bad scan count");
      args->scan_count = uint32_t(*imm);
    } else {
      return Error(line, "unknown DB operand '" + k + "'");
    }
  }
  if (!have_cp) return Error(line, "DB instruction requires cp=<reg>");
  return Status::Ok();
}

}  // namespace

StatusOr<Program> Assemble(const std::string& source) {
  ProgramBuilder b;
  std::istringstream in(source);
  std::string raw;
  int line_no = 0;
  bool any_section = false;
  while (std::getline(in, raw)) {
    ++line_no;
    // Strip comments.
    size_t sc = raw.find(';');
    if (sc != std::string::npos) raw = raw.substr(0, sc);
    std::string text = Trim(raw);
    if (text.empty() || text[0] == '#') continue;

    // Directives.
    if (text[0] == '.') {
      std::string d = Upper(text);
      if (d == ".LOGIC") {
        b.Logic();
      } else if (d == ".COMMIT") {
        b.Commit();
      } else if (d == ".ABORT") {
        b.Abort();
      } else {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": unknown directive " + text);
      }
      any_section = true;
      continue;
    }

    // Labels (possibly followed by an instruction on the same line).
    size_t colon = text.find(':');
    if (colon != std::string::npos &&
        text.find_first_of(" \t") > colon) {
      b.Label(Trim(text.substr(0, colon)));
      text = Trim(text.substr(colon + 1));
      if (text.empty()) continue;
    }
    if (!any_section) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) +
          ": instruction before any .logic/.commit/.abort section");
    }

    Line line;
    line.number = line_no;
    line.text = text;
    size_t sp = text.find_first_of(" \t");
    line.mnemonic = Upper(sp == std::string::npos ? text : text.substr(0, sp));
    if (sp != std::string::npos) {
      line.operands = SplitOperands(text.substr(sp + 1));
    }

    const std::string& m = line.mnemonic;
    auto need = [&](size_t n) -> Status {
      if (line.operands.size() != n) {
        return Error(line, "expected " + std::to_string(n) + " operands");
      }
      return Status::Ok();
    };

    if (m == "ADD" || m == "SUB" || m == "MUL" || m == "DIV") {
      BIONICDB_RETURN_IF_ERROR(need(3));
      auto rd = ParseReg(line.operands[0]);
      auto rs1 = ParseReg(line.operands[1]);
      if (!rd || !rs1) return Error(line, "bad register");
      if (auto rs2 = ParseReg(line.operands[2])) {
        if (m == "ADD") b.Add(*rd, *rs1, *rs2);
        if (m == "SUB") b.Sub(*rd, *rs1, *rs2);
        if (m == "MUL") b.Mul(*rd, *rs1, *rs2);
        if (m == "DIV") b.Div(*rd, *rs1, *rs2);
      } else if (auto imm = ParseImm(line.operands[2])) {
        if (m == "ADD") b.AddI(*rd, *rs1, *imm);
        if (m == "SUB") b.SubI(*rd, *rs1, *imm);
        if (m == "MUL") b.MulI(*rd, *rs1, *imm);
        if (m == "DIV") b.DivI(*rd, *rs1, *imm);
      } else {
        return Error(line, "bad third operand");
      }
    } else if (m == "MOV") {
      BIONICDB_RETURN_IF_ERROR(need(2));
      auto rd = ParseReg(line.operands[0]);
      if (!rd) return Error(line, "bad destination register");
      if (auto rs = ParseReg(line.operands[1])) {
        b.Mov(*rd, *rs);
      } else if (auto imm = ParseImm(line.operands[1])) {
        b.MovI(*rd, *imm);
      } else {
        return Error(line, "bad MOV source");
      }
    } else if (m == "CMP") {
      BIONICDB_RETURN_IF_ERROR(need(2));
      auto rs1 = ParseReg(line.operands[0]);
      if (!rs1) return Error(line, "bad register");
      if (auto rs2 = ParseReg(line.operands[1])) {
        b.Cmp(*rs1, *rs2);
      } else if (auto imm = ParseImm(line.operands[1])) {
        b.CmpI(*rs1, *imm);
      } else {
        return Error(line, "bad CMP operand");
      }
    } else if (m == "LOAD") {
      BIONICDB_RETURN_IF_ERROR(need(2));
      auto rd = ParseReg(line.operands[0]);
      if (!rd) return Error(line, "bad destination register");
      Reg base;
      int64_t off;
      BIONICDB_RETURN_IF_ERROR(ParseMemOperand(line, line.operands[1], &base, &off));
      b.Load(*rd, base, off);
    } else if (m == "STORE") {
      BIONICDB_RETURN_IF_ERROR(need(2));
      auto rs = ParseReg(line.operands[0]);
      if (!rs) return Error(line, "bad source register");
      Reg base;
      int64_t off;
      BIONICDB_RETURN_IF_ERROR(ParseMemOperand(line, line.operands[1], &base, &off));
      b.Store(*rs, base, off);
    } else if (m == "JMP" || m == "BE" || m == "BNE" || m == "BLE" ||
               m == "BLT" || m == "BGT" || m == "BGE") {
      BIONICDB_RETURN_IF_ERROR(need(1));
      const std::string& l = line.operands[0];
      if (m == "JMP") b.Jmp(l);
      if (m == "BE") b.Be(l);
      if (m == "BNE") b.Bne(l);
      if (m == "BLE") b.Ble(l);
      if (m == "BLT") b.Blt(l);
      if (m == "BGT") b.Bgt(l);
      if (m == "BGE") b.Bge(l);
    } else if (m == "RET") {
      BIONICDB_RETURN_IF_ERROR(need(2));
      auto rd = ParseReg(line.operands[0]);
      auto cp = ParseCp(line.operands[1]);
      if (!rd || !cp) return Error(line, "RET expects rD, cpN");
      b.Ret(*rd, *cp);
    } else if (m == "YIELD") {
      b.Yield();
    } else if (m == "COMMIT") {
      b.CommitTxn();
    } else if (m == "ABORT") {
      b.AbortTxn();
    } else if (m == "NOP") {
      b.Nop();
    } else if (m == "INSERT" || m == "SEARCH" || m == "SCAN" ||
               m == "UPDATE" || m == "REMOVE") {
      ProgramBuilder::DbArgs args;
      BIONICDB_RETURN_IF_ERROR(ParseDbOperands(line, &args));
      if (m == "INSERT") b.Insert(args);
      if (m == "SEARCH") b.Search(args);
      if (m == "SCAN") b.Scan(args);
      if (m == "UPDATE") b.Update(args);
      if (m == "REMOVE") b.Remove(args);
    } else {
      return Error(line, "unknown mnemonic " + m);
    }
  }
  return b.Build();
}

}  // namespace bionicdb::isa
