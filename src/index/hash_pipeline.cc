#include "index/hash_pipeline.h"

#include <algorithm>
#include <cassert>

#include "cc/cc_unit.h"
#include "cc/visibility.h"
#include "db/hash_layout.h"
#include "db/tuple.h"

namespace bionicdb::index {

namespace {
/// DRAM bursts needed to move `bytes` (64-byte burst granularity).
uint32_t Bursts(uint64_t bytes) {
  return uint32_t((bytes + 63) / 64);
}
}  // namespace

HashPipeline::HashPipeline(db::Database* db, db::PartitionId partition,
                           Config config, ResultQueue* results)
    : db_(db),
      dram_(db->dram()),
      partition_(partition),
      config_(config),
      results_(results),
      pool_(config.pool_size),
      traverse_units_(config.n_traverse_units) {
  free_slots_.reserve(config.pool_size);
  for (uint32_t i = 0; i < config.pool_size; ++i) {
    free_slots_.push_back(config.pool_size - 1 - i);
  }
  if (config_.traversal == TraversalMode::kBatched) {
    // A batch can never fill past the slot pool, and at least one probe
    // per batch keeps the collector well-defined.
    config_.batch_size =
        std::max(1u, std::min(config_.batch_size, config_.pool_size));
    // Enough batch contexts for the collect/keys/buckets/nodes phases to
    // overlap (inter-op pipelining); the slot pool is the real capacity.
    batches_.resize(4);
    for (Batch& b : batches_) {
      b.members.reserve(config_.batch_size);
      b.node_members.reserve(config_.batch_size);
    }
  }
}

bool HashPipeline::Accept(const comm::Envelope& env) {
  if (free_slots_.empty() && pending_in_.size() >= pool_.size()) return false;
  pending_in_.push_back(env);
  return true;
}

uint32_t HashPipeline::AllocSlot(const comm::Envelope& env) {
  assert(!free_slots_.empty());
  uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  pool_[slot] = Op{};
  pool_[slot].req = env;
  pool_[slot].in_use = true;
  ++active_;
  return slot;
}

void HashPipeline::FreeSlot(uint32_t slot) {
  assert(pool_[slot].in_use);
  if (pool_[slot].holds_lock) {
    lock_table_.Release(
        db_->hash_index(pool_[slot].req.index_op().table, partition_)
            ->BucketIndex(pool_[slot].hash),
        slot);
  }
  pool_[slot].in_use = false;
  free_slots_.push_back(slot);
  --active_;
}

void HashPipeline::Emit(uint32_t slot, isa::CpStatus status, uint64_t payload,
                        cc::WriteKind kind, sim::Addr tuple_addr) {
  comm::IndexResult r;
  r.status = status;
  r.payload = payload;
  r.write_kind = status == isa::CpStatus::kOk ? kind : cc::WriteKind::kNone;
  r.tuple_addr = tuple_addr;
  results_->push_back(comm::Envelope::Reply(pool_[slot].req, r));
  FreeSlot(slot);
}

void HashPipeline::PostWrite(uint64_t now, sim::Addr addr) {
  // Posted (fire-and-forget) write: occupies channel bandwidth; if the
  // channel queue is saturated the write is accounted as buffered in the
  // memory controller's posting FIFO rather than re-tried.
  if (!dram_->Issue(now, addr, /*is_write=*/true, nullptr, 0)) {
    counters_.Add("posted_write_overflow");
  }
}

void HashPipeline::Tick(uint64_t now) {
  tick_dram_stall_ = false;
  tick_hazard_stall_ = false;
  // Idle early-out (see SkiplistPipeline::Tick): queued work anywhere in
  // the pipeline implies a held slot, so idle means every stage scan would
  // be a no-op.
  if (active_ == 0 && pending_in_.empty()) return;
  ++busy_cycles_;
  occupancy_sum_ += active_;
  // Downstream stages first so queues drain before upstream refills them.
  TickDirtyWaiters(now);
  for (uint32_t u = 0; u < config_.n_traverse_units; ++u) {
    TickTraverse(now, u);
  }
  TickKeyComp(now);
  TickHeadFetch(now);
  TickInstall(now);
  TickHash(now);
  if (config_.traversal == TraversalMode::kBatched) {
    // Inserts still flow KeyFetch -> Hash -> Install above; the batch
    // units replace the search-side HeadFetch/KeyComp flow.
    TickBatchExec(now);
    TickBatchAdmit(now);
  } else {
    TickKeyFetch(now);
  }
}

void HashPipeline::FlushCollect() {
  Batch& b = batches_[collect_];
  b.phase = Batch::Phase::kKeys;
  ++batches_flushed_;
  probes_per_batch_.Add(double(b.members.size()));
  collect_ = kNoBatch;
}

void HashPipeline::RetireBatch(Batch* b) {
  b->phase = Batch::Phase::kIdle;
  b->members.clear();
  b->node_members.clear();
  b->deferred.clear();
  b->next_issue = 0;
  b->outstanding = 0;
  b->live = 0;
  b->burst.Reset();
}

void HashPipeline::TickBatchAdmit(uint64_t now) {
  if (!pending_in_.empty() && !free_slots_.empty()) {
    const comm::Envelope& env = pending_in_.front();
    if (env.index_op().op == isa::Opcode::kInsert) {
      // Inserts keep the per-op install path: they mutate the bucket chain
      // under the hazard lock, and reordering installs inside a batch
      // would change which insert wins the bucket head.
      uint32_t slot = AllocSlot(env);
      if (!dram_->Issue(now, pool_[slot].req.index_op().key_addr, false,
                        &hash_resp_, slot)) {
        FreeSlot(slot);
        fc_keyfetch_dram_stall_.Add();
        tick_dram_stall_ = true;
      } else {
        pending_in_.pop_front();
        fc_ops_admitted_.Add();
      }
    } else {
      if (collect_ == kNoBatch) {
        for (uint32_t i = 0; i < uint32_t(batches_.size()); ++i) {
          if (batches_[i].phase == Batch::Phase::kIdle) {
            batches_[i].phase = Batch::Phase::kCollect;
            collect_ = i;
            break;
          }
        }
      }
      if (collect_ != kNoBatch) {
        Batch& b = batches_[collect_];
        // The key read overlaps collection; consecutive keys of one
        // framed transaction batch sit in the same block, so these
        // already coalesce.
        uint32_t slot = AllocSlot(env);
        if (!b.burst.Issue(dram_, now, pool_[slot].req.index_op().key_addr,
                           /*is_write=*/false, &batch_key_resp_, slot,
                           /*snapshot_words=*/0, &burst_total_,
                           &burst_coalesced_)) {
          FreeSlot(slot);
          fc_keyfetch_dram_stall_.Add();
          tick_dram_stall_ = true;
        } else {
          pending_in_.pop_front();
          fc_ops_admitted_.Add();
          pool_[slot].batch = collect_;
          if (b.members.empty()) {
            b.flush_deadline = now + config_.batch_timeout_cycles;
          }
          b.members.push_back(slot);
          ++b.outstanding;
          ++b.live;
          if (b.members.size() >= config_.batch_size) {
            ++batch_flush_full_;
            FlushCollect();
          } else if (pool_[slot].req.index_op().batch_flags &
                     isa::kBatchFlagEnd) {
            ++batch_flush_end_;
            FlushCollect();
          }
        }
      }
    }
  }
  if (collect_ != kNoBatch && !batches_[collect_].members.empty() &&
      now >= batches_[collect_].flush_deadline) {
    ++batch_flush_timeout_;
    FlushCollect();
  }
}

void HashPipeline::IssueBatchReads(uint64_t now, uint32_t batch_idx) {
  Batch& b = batches_[batch_idx];
  if (b.phase == Batch::Phase::kBuckets) {
    // Lock-deferred members retry first: a lock released this tick (the
    // insert's install completed upstream in the tick order) unblocks
    // them before fresh issues extend the burst train.
    for (size_t i = 0; i < b.deferred.size();) {
      uint32_t slot = b.deferred[i];
      Op& op = pool_[slot];
      uint64_t bucket = db_->hash_index(op.req.index_op().table, partition_)
                            ->BucketIndex(op.hash);
      if (lock_table_.HeldByOther(bucket, slot)) {
        fc_hash_lock_stall_.Add();
        tick_hazard_stall_ = true;
        ++i;
        continue;
      }
      if (!b.burst.Issue(dram_, now, op.bucket_slot, false, &batch_data_resp_,
                         slot, /*snapshot_words=*/1, &burst_total_,
                         &burst_coalesced_)) {
        fc_hash_dram_stall_.Add();
        tick_dram_stall_ = true;
        return;
      }
      ++b.outstanding;
      b.deferred[i] = b.deferred.back();
      b.deferred.pop_back();
    }
    while (b.next_issue < b.members.size()) {
      uint32_t slot = b.members[b.next_issue];
      Op& op = pool_[slot];
      if (config_.hazard_prevention) {
        uint64_t bucket = db_->hash_index(op.req.index_op().table, partition_)
                              ->BucketIndex(op.hash);
        if (lock_table_.HeldByOther(bucket, slot)) {
          b.deferred.push_back(slot);
          ++b.next_issue;
          fc_hash_lock_stall_.Add();
          tick_hazard_stall_ = true;
          continue;
        }
      }
      if (!b.burst.Issue(dram_, now, op.bucket_slot, false, &batch_data_resp_,
                         slot, /*snapshot_words=*/1, &burst_total_,
                         &burst_coalesced_)) {
        fc_hash_dram_stall_.Add();
        tick_dram_stall_ = true;
        return;
      }
      ++b.outstanding;
      ++b.next_issue;
    }
  } else {  // Phase::kNodes
    while (b.next_issue < b.node_members.size()) {
      uint32_t slot = b.node_members[b.next_issue];
      if (!b.burst.Issue(dram_, now, pool_[slot].cur, false, &batch_data_resp_,
                         slot, /*snapshot_words=*/0, &burst_total_,
                         &burst_coalesced_)) {
        fc_traverse_dram_stall_.Add();
        tick_dram_stall_ = true;
        return;
      }
      ++b.outstanding;
      ++b.next_issue;
    }
  }
}

void HashPipeline::TickBatchExec(uint64_t now) {
  // Key responses: the Hash-stage work, run per response. The batch unit's
  // comparator works through queued responses within the cycle — the
  // responses themselves already arrived spread over DRAM service time.
  while (!batch_key_resp_.empty()) {
    sim::MemResponse resp = std::move(batch_key_resp_.front());
    batch_key_resp_.pop_front();
    uint32_t slot = uint32_t(resp.cookie);
    Op& op = pool_[slot];
    sim::InlineVec<uint8_t, 48> key(op.req.index_op().key_len);
    dram_->ReadBytes(op.req.index_op().key_addr, key.data(), key.size());
    op.hash = db::HashTableLayout::HashKey(key.data(), uint16_t(key.size()));
    op.bucket_slot = db_->hash_index(op.req.index_op().table, partition_)
                         ->BucketSlot(op.hash);
    fc_hash_stage_.Add();
    --batches_[op.batch].outstanding;
  }
  // Bucket-head and chain-node responses, disambiguated by the owning
  // batch's phase (a batch never advances with responses outstanding).
  while (!batch_data_resp_.empty()) {
    sim::MemResponse resp = std::move(batch_data_resp_.front());
    batch_data_resp_.pop_front();
    uint32_t slot = uint32_t(resp.cookie);
    Op& op = pool_[slot];
    Batch& b = batches_[op.batch];
    --b.outstanding;
    if (b.phase == Batch::Phase::kBuckets) {
      fc_headfetch_stage_.Add();
      sim::Addr head = resp.data[0];
      if (head == sim::kNullAddr) {
        --b.live;
        Emit(slot, isa::CpStatus::kNotFound, 0, cc::WriteKind::kNone,
             sim::kNullAddr);
      } else {
        op.cur = head;
        b.node_members.push_back(slot);
      }
    } else {
      fc_keycomp_stage_.Add();
      // The member leaves batch custody here either way: a match (or
      // corruption / end-of-chain) finished it, and a mismatch hands the
      // chain continuation to the per-op Traverse units.
      --b.live;
      if (!CompareOrAdvance(now, slot)) EnqueueTraverse(slot);
    }
  }
  // Phase FSMs, in batch-index order (deterministic across modes).
  for (uint32_t bi = 0; bi < uint32_t(batches_.size()); ++bi) {
    Batch& b = batches_[bi];
    if (b.phase == Batch::Phase::kKeys && b.outstanding == 0) {
      // Per-level sort: order probes by bucket slot so the bucket reads
      // issue as an ascending-address burst train. stable_sort keeps
      // admission order among equal buckets.
      std::stable_sort(b.members.begin(), b.members.end(),
                       [this](uint32_t a, uint32_t c) {
                         return pool_[a].bucket_slot < pool_[c].bucket_slot;
                       });
      b.phase = Batch::Phase::kBuckets;
      b.next_issue = 0;
      b.burst.Reset();
    }
    if (b.phase == Batch::Phase::kBuckets) {
      IssueBatchReads(now, bi);
      if (b.next_issue == b.members.size() && b.deferred.empty() &&
          b.outstanding == 0) {
        std::stable_sort(b.node_members.begin(), b.node_members.end(),
                         [this](uint32_t a, uint32_t c) {
                           return pool_[a].cur < pool_[c].cur;
                         });
        b.phase = Batch::Phase::kNodes;
        b.next_issue = 0;
        b.burst.Reset();
      }
    }
    if (b.phase == Batch::Phase::kNodes) {
      IssueBatchReads(now, bi);
      if (b.next_issue == b.node_members.size() && b.outstanding == 0 &&
          b.live == 0) {
        RetireBatch(&b);
      }
    }
  }
}

void HashPipeline::TickKeyFetch(uint64_t now) {
  if (pending_in_.empty() || free_slots_.empty()) return;
  const comm::Envelope& op = pending_in_.front();
  // The key read targets the initiator's transaction block; the response
  // wakes the Hash stage.
  // Peek-issue before allocating so a DRAM reject leaves no side effects.
  uint32_t slot = AllocSlot(op);
  if (!dram_->Issue(now, pool_[slot].req.index_op().key_addr, false,
                    &hash_resp_, slot)) {
    FreeSlot(slot);
    fc_keyfetch_dram_stall_.Add();
    tick_dram_stall_ = true;
    return;
  }
  pending_in_.pop_front();
  fc_ops_admitted_.Add();
}

bool HashPipeline::TryPassHashStage(uint64_t now, uint32_t slot) {
  Op& op = pool_[slot];
  db::HashTableLayout* layout =
      db_->hash_index(op.req.index_op().table, partition_);
  uint64_t bucket = layout->BucketIndex(op.hash);
  const bool is_insert = op.req.index_op().op == isa::Opcode::kInsert;
  if (config_.hazard_prevention) {
    if (lock_table_.HeldByOther(bucket, slot)) {
      fc_hash_lock_stall_.Add();
      tick_hazard_stall_ = true;
      return false;
    }
    if (is_insert && !op.holds_lock) {
      lock_table_.TryAcquire(bucket, slot);
      op.holds_lock = true;
    }
  }
  sim::MemResponseQueue* dest = is_insert ? &install_resp_ : &headfetch_resp_;
  // Snapshot the bucket head at DRAM service time: this is what makes the
  // insert-after-insert hazard observable when prevention is disabled.
  if (!dram_->Issue(now, op.bucket_slot, false, dest, slot,
                    /*snapshot_words=*/1)) {
    fc_hash_dram_stall_.Add();
    tick_dram_stall_ = true;
    return false;
  }
  return true;
}

void HashPipeline::TickHash(uint64_t now) {
  if (hash_blocked_.has_value()) {
    if (TryPassHashStage(now, *hash_blocked_)) hash_blocked_.reset();
    return;  // head-of-line stall: nothing else passes this stage
  }
  if (hash_resp_.empty()) return;
  sim::MemResponse resp = std::move(hash_resp_.front());
  hash_resp_.pop_front();
  uint32_t slot = uint32_t(resp.cookie);
  Op& op = pool_[slot];
  // Functional key fetch (keys in transaction blocks are immutable while
  // the transaction runs).
  sim::InlineVec<uint8_t, 48> key(op.req.index_op().key_len);
  dram_->ReadBytes(op.req.index_op().key_addr, key.data(), key.size());
  op.hash = db::HashTableLayout::HashKey(key.data(), uint16_t(key.size()));
  op.bucket_slot =
      db_->hash_index(op.req.index_op().table, partition_)->BucketSlot(op.hash);
  fc_hash_stage_.Add();
  if (!TryPassHashStage(now, slot)) hash_blocked_ = slot;
}

void HashPipeline::TickInstall(uint64_t now) {
  // Completed bucket-head writes publish the insert: only now is the lock
  // released and the result emitted, so a prevented op re-reading the
  // bucket is guaranteed to see the new head.
  if (!install_ack_.empty()) {
    uint32_t slot = uint32_t(install_ack_.front().cookie);
    install_ack_.pop_front();
    Op& op = pool_[slot];
    db::TupleAccessor t(dram_, op.new_tuple);
    fc_install_stage_.Add();
    Emit(slot, isa::CpStatus::kOk, t.payload_addr(), cc::WriteKind::kInsert,
         op.new_tuple);
    return;
  }
  if (install_blocked_.has_value()) {
    uint32_t slot = *install_blocked_;
    Op& op = pool_[slot];
    if (dram_->IssueWrite64(now, op.bucket_slot, op.new_tuple, &install_ack_,
                            slot)) {
      install_blocked_.reset();
    } else {
      tick_dram_stall_ = true;
    }
    return;
  }
  if (install_resp_.empty()) return;
  sim::MemResponse resp = std::move(install_resp_.front());
  install_resp_.pop_front();
  uint32_t slot = uint32_t(resp.cookie);
  Op& op = pool_[slot];
  // The head value as serviced by DRAM — possibly stale if prevention is
  // off and a racing insert's head write has not completed (Fig. 6a).
  sim::Addr old_head = resp.data[0];

  sim::InlineVec<uint8_t, 48> key(op.req.index_op().key_len);
  dram_->ReadBytes(op.req.index_op().key_addr, key.data(), key.size());
  std::vector<uint8_t> payload(op.req.index_op().payload_len);
  if (!payload.empty()) {
    dram_->ReadBytes(op.req.index_op().payload_src, payload.data(),
                     payload.size());
  }
  // New tuples are born dirty; COMMIT publishes them (section 4.7).
  sim::Addr tuple = db::AllocateTuple(
      dram_, /*height=*/0, key.data(), uint16_t(key.size()), payload.data(),
      uint32_t(payload.size()), /*write_ts=*/0, db::kFlagDirty);
  db::TupleAccessor t(dram_, tuple);
  t.set_next(0, old_head);
  op.new_tuple = tuple;

  // Tuple body: posted writes to fresh memory (race-free by construction).
  uint64_t footprint =
      db::TupleFootprint(0, uint16_t(key.size()), uint32_t(payload.size()));
  for (uint32_t b = 0; b < Bursts(footprint); ++b) {
    PostWrite(now, tuple + 64ull * b);
  }
  // The bucket-head update is the ordering-sensitive write: its functional
  // effect lands at DRAM service time.
  if (!dram_->IssueWrite64(now, op.bucket_slot, tuple, &install_ack_, slot)) {
    install_blocked_ = slot;
    tick_dram_stall_ = true;
  }
}

void HashPipeline::TickHeadFetch(uint64_t now) {
  if (headfetch_blocked_.has_value()) {
    uint32_t slot = *headfetch_blocked_;
    if (dram_->Issue(now, pool_[slot].cur, false, &keycomp_resp_, slot)) {
      headfetch_blocked_.reset();
    }
    return;
  }
  if (headfetch_resp_.empty()) return;
  sim::MemResponse resp = std::move(headfetch_resp_.front());
  headfetch_resp_.pop_front();
  uint32_t slot = uint32_t(resp.cookie);
  Op& op = pool_[slot];
  sim::Addr head = resp.data[0];
  fc_headfetch_stage_.Add();
  if (head == sim::kNullAddr) {
    Emit(slot, isa::CpStatus::kNotFound, 0, cc::WriteKind::kNone,
         sim::kNullAddr);
    return;
  }
  op.cur = head;
  if (!dram_->Issue(now, head, false, &keycomp_resp_, slot)) {
    headfetch_blocked_ = slot;
    fc_headfetch_dram_stall_.Add();
    tick_dram_stall_ = true;
  }
}

void HashPipeline::FinishAccess(uint64_t now, uint32_t slot,
                                sim::Addr tuple_addr) {
  Op& op = pool_[slot];
  if (!dram_->VerifyTupleGuard(tuple_addr)) {
    counters_.Add("corruption_detected");
    Emit(slot, isa::CpStatus::kCorrupted, 0, cc::WriteKind::kNone,
         sim::kNullAddr);
    return;
  }
  db::TupleAccessor t(dram_, tuple_addr);
  cc::AccessMode mode;
  cc::WriteKind kind = cc::WriteKind::kNone;
  switch (op.req.index_op().op) {
    case isa::Opcode::kUpdate:
      mode = cc::AccessMode::kUpdate;
      kind = cc::WriteKind::kUpdate;
      break;
    case isa::Opcode::kRemove:
      mode = cc::AccessMode::kRemove;
      kind = cc::WriteKind::kRemove;
      break;
    default:
      mode = cc::AccessMode::kRead;
      break;
  }
  cc::VisibilityResult vr;
  sim::Addr payload_override = sim::kNullAddr;
  if (config_.cc_unit == nullptr ||
      config_.cc_unit->mode() == cc::CcMode::kTimestamp) {
    // Default T/O path, kept inline and allocation-free.
    vr = cc::CheckVisibility(&t, op.req.index_op().ts, mode);
  } else {
    cc::CcUnit::AccessResult ar =
        config_.cc_unit->CheckAccess(&t, op.req.index_op().ts, mode);
    vr = ar.vis;
    payload_override = ar.payload_override;
    // Version-chain walks / snapshot copies consume DRAM bandwidth on this
    // partition's lane; charge them as posted bursts.
    for (uint32_t i = 0; i < ar.charge_bursts; ++i) {
      PostWrite(now, tuple_addr + 64ull * i);
    }
  }
  if (vr.header_dirtied) PostWrite(now, tuple_addr);
  if (vr.status != isa::CpStatus::kOk) {
    uint32_t wait_cycles = config_.dirty_wait_cycles;
    if (wait_cycles == 0 && config_.cc_unit != nullptr &&
        config_.cc_unit->mode() == cc::CcMode::kSgt) {
      // SGT prefers waiting out a live writer over aborting: only real
      // cycles (detected by the unit) reject without a dirty_conflict.
      wait_cycles = cc::CcUnit::kDefaultDirtyWaitCycles;
    }
    if (vr.dirty_conflict && wait_cycles > 0) {
      // Wait-on-dirty CC policy: park until the uncommitted writer
      // publishes or rolls back; a timeout falls back to the blind reject.
      counters_.Add("dirty_waits");
      dirty_waiters_.push_back(
          DirtyWaiter{slot, tuple_addr, now + wait_cycles,
                      now + config_.dirty_poll_interval});
      return;
    }
    Emit(slot, vr.status, 0, cc::WriteKind::kNone, sim::kNullAddr);
    return;
  }
  const uint64_t payload = payload_override != sim::kNullAddr
                               ? payload_override
                               : t.payload_addr();
  Emit(slot, isa::CpStatus::kOk, payload, kind, tuple_addr);
}

void HashPipeline::TickDirtyWaiters(uint64_t now) {
  if (dirty_waiters_.empty()) return;
  // Collect ready entries first: FinishAccess may re-park into the list.
  std::vector<DirtyWaiter> retry;
  std::vector<DirtyWaiter> expired;
  for (size_t i = 0; i < dirty_waiters_.size();) {
    DirtyWaiter& w = dirty_waiters_[i];
    if (now >= w.deadline) {
      expired.push_back(w);
      w = dirty_waiters_.back();
      dirty_waiters_.pop_back();
      continue;
    }
    if (now >= w.next_poll) {
      // One polling read of the tuple header (bandwidth accounting).
      dram_->Issue(now, w.tuple, false, nullptr, 0);
      w.next_poll = now + config_.dirty_poll_interval;
      bool wake = !db::TupleAccessor(dram_, w.tuple).dirty();
      // The mark's owner can also change while parked: a live local
      // writer taking over a tuple we parked on as unknown-dirty. Further
      // waiting is futile (that writer's commit sits behind the batch
      // barrier this parked access holds open), but CheckAccess can now
      // commit-order the access against the known writer — retry it.
      if (!wake && config_.cc_unit != nullptr &&
          config_.cc_unit->WaitFutile(w.tuple,
                                      pool_[w.slot].req.index_op().ts)) {
        counters_.Add("dirty_wait_owner_wakeups");
        wake = true;
      }
      if (wake) {
        retry.push_back(w);
        w = dirty_waiters_.back();
        dirty_waiters_.pop_back();
        continue;
      }
    }
    ++i;
  }
  for (const DirtyWaiter& w : expired) {
    counters_.Add("dirty_wait_timeouts");
    Emit(w.slot, isa::CpStatus::kRejected, 0, cc::WriteKind::kNone,
         sim::kNullAddr);
  }
  for (const DirtyWaiter& w : retry) {
    counters_.Add("dirty_wait_wakeups");
    FinishAccess(now, w.slot, w.tuple);
  }
  if (!dirty_waiters_.empty()) tick_hazard_stall_ = true;
}

bool HashPipeline::CompareOrAdvance(uint64_t now, uint32_t slot) {
  Op& op = pool_[slot];
  // Integrity guard before trusting any header/key byte of this node: a
  // flipped key byte would otherwise surface as a silent kNotFound.
  if (!dram_->VerifyTupleGuard(op.cur)) {
    counters_.Add("corruption_detected");
    Emit(slot, isa::CpStatus::kCorrupted, 0, cc::WriteKind::kNone,
         sim::kNullAddr);
    return true;
  }
  db::TupleAccessor t(dram_, op.cur);
  sim::InlineVec<uint8_t, 48> key(op.req.index_op().key_len);
  dram_->ReadBytes(op.req.index_op().key_addr, key.data(), key.size());
  if (db::CompareKeyToTuple(*dram_, key.data(), uint16_t(key.size()), t) ==
      0) {
    FinishAccess(now, slot, op.cur);
    return true;
  }
  sim::Addr next = t.next(0);
  if (next == sim::kNullAddr) {
    Emit(slot, isa::CpStatus::kNotFound, 0, cc::WriteKind::kNone,
         sim::kNullAddr);
    return true;
  }
  op.cur = next;
  return false;
}

void HashPipeline::EnqueueTraverse(uint32_t slot) {
  uint32_t best = 0;
  size_t best_len = SIZE_MAX;
  for (uint32_t u = 0; u < config_.n_traverse_units; ++u) {
    size_t len = traverse_units_[u].in.size() +
                 (traverse_units_[u].cur_op.has_value() ? 1 : 0);
    if (len < best_len) {
      best_len = len;
      best = u;
    }
  }
  traverse_units_[best].in.push_back(slot);
}

void HashPipeline::TickKeyComp(uint64_t now) {
  // KeyComp examines the FIRST chain node only; mismatches are handed to a
  // Traverse unit so long chains never block ops terminating here.
  if (keycomp_resp_.empty()) return;
  sim::MemResponse resp = std::move(keycomp_resp_.front());
  keycomp_resp_.pop_front();
  uint32_t slot = uint32_t(resp.cookie);
  fc_keycomp_stage_.Add();
  if (!CompareOrAdvance(now, slot)) EnqueueTraverse(slot);
}

void HashPipeline::TickTraverse(uint64_t now, uint32_t unit_idx) {
  TraverseUnit& unit = traverse_units_[unit_idx];
  if (!unit.cur_op.has_value()) {
    if (unit.in.empty()) return;
    // Take the next op; op.cur already names the node to fetch.
    uint32_t slot = unit.in.front();
    if (!dram_->Issue(now, pool_[slot].cur, false, &unit.resp, slot)) {
      fc_traverse_dram_stall_.Add();
      tick_dram_stall_ = true;
      return;
    }
    unit.in.pop_front();
    unit.cur_op = slot;
    unit.waiting = true;
    return;
  }
  if (!unit.waiting) {
    // Retry a rejected chain read.
    uint32_t slot = *unit.cur_op;
    if (dram_->Issue(now, pool_[slot].cur, false, &unit.resp, slot)) {
      unit.waiting = true;
    } else {
      fc_traverse_dram_stall_.Add();
      tick_dram_stall_ = true;
    }
    return;
  }
  if (unit.resp.empty()) return;
  unit.resp.pop_front();
  uint32_t slot = *unit.cur_op;
  fc_traverse_stage_.Add();
  if (CompareOrAdvance(now, slot)) {
    unit.cur_op.reset();
    unit.waiting = false;
    return;
  }
  // Follow the chain: next node read (unit stays occupied — the decoupling
  // the paper describes in section 4.4.1).
  if (!dram_->Issue(now, pool_[slot].cur, false, &unit.resp, slot)) {
    unit.waiting = false;
    fc_traverse_dram_stall_.Add();
      tick_dram_stall_ = true;
  }
}

bool HashPipeline::HashBlockedOnLock() const {
  if (!hash_blocked_.has_value() || !config_.hazard_prevention) return false;
  const Op& op = pool_[*hash_blocked_];
  return lock_table_.HeldByOther(
      db_->hash_index(op.req.index_op().table, partition_)
          ->BucketIndex(op.hash),
      *hash_blocked_);
}

uint64_t HashPipeline::NextWakeCycle(uint64_t now) const {
  // Stages with queued responses/acks process one item per tick.
  if (!install_ack_.empty() || !install_resp_.empty() ||
      !headfetch_resp_.empty() || !keycomp_resp_.empty()) {
    return now + 1;
  }
  // Head-of-line DRAM-reject retries re-issue every tick (each attempt
  // bumps DRAM reject counters, so those cycles cannot be skipped).
  if (install_blocked_.has_value() || headfetch_blocked_.has_value()) {
    return now + 1;
  }
  if (hash_blocked_.has_value()) {
    // A lock stall is quiescent until the holder's install completes — a
    // DRAM ack, hence someone else's wake point. A DRAM-reject stall
    // retries every tick.
    if (!HashBlockedOnLock()) return now + 1;
  } else if (!hash_resp_.empty()) {
    return now + 1;
  }
  // KeyFetch admits (or retries a rejected admission) whenever an op is
  // queued and a slot is free.
  if (!pending_in_.empty() && !free_slots_.empty()) return now + 1;
  uint64_t batch_wake = sim::kNeverWakes;
  if (config_.traversal == TraversalMode::kBatched) {
    if (!batch_key_resp_.empty() || !batch_data_resp_.empty()) return now + 1;
    for (const Batch& b : batches_) {
      switch (b.phase) {
        case Batch::Phase::kIdle:
          break;
        case Batch::Phase::kCollect:
          // A partial batch is quiescent until its timeout flush (new
          // arrivals wake the pipeline via pending_in_ above).
          if (!b.members.empty()) {
            batch_wake = std::min(batch_wake, b.flush_deadline);
          }
          break;
        case Batch::Phase::kKeys:
          // All key responses in: the sort + phase advance runs next tick.
          if (b.outstanding == 0) return now + 1;
          break;
        case Batch::Phase::kBuckets: {
          // Unissued members are DRAM-reject retries (every tick bumps
          // reject counters); lock-deferred members are quiescent until
          // the holding insert's install completes (a DRAM wake).
          if (b.next_issue < b.members.size()) return now + 1;
          for (uint32_t slot : b.deferred) {
            const Op& op = pool_[slot];
            if (!lock_table_.HeldByOther(
                    db_->hash_index(op.req.index_op().table, partition_)
                        ->BucketIndex(op.hash),
                    slot)) {
              return now + 1;
            }
          }
          if (b.deferred.empty() && b.outstanding == 0) return now + 1;
          break;
        }
        case Batch::Phase::kNodes:
          if (b.next_issue < b.node_members.size()) return now + 1;
          if (b.outstanding == 0) return now + 1;
          break;
      }
    }
  }
  for (const TraverseUnit& u : traverse_units_) {
    if (u.cur_op.has_value()) {
      if (!u.waiting || !u.resp.empty()) return now + 1;
    } else if (!u.in.empty()) {
      return now + 1;
    }
  }
  // Dirty waiters are pure hazard-stall accounting between their polling
  // reads; polls and deadlines are fixed future cycles.
  uint64_t wake = batch_wake;
  for (const DirtyWaiter& w : dirty_waiters_) {
    wake = std::min(wake, std::min(w.deadline, w.next_poll));
  }
  return wake > now ? wake : now + 1;
}

void HashPipeline::SkipCycles(uint64_t now, uint64_t count) {
  (void)now;
  if (active_ > 0 || !pending_in_.empty()) {
    busy_cycles_ += count;
    occupancy_sum_ += uint64_t(active_) * count;
  }
  bool hazard = false;
  if (HashBlockedOnLock()) {
    fc_hash_lock_stall_.Add(count);
    hazard = true;
  }
  if (config_.traversal == TraversalMode::kBatched) {
    for (const Batch& b : batches_) {
      if (b.phase != Batch::Phase::kBuckets) continue;
      // Deferred members stay lock-held across a skipped window (a lock
      // release is a DRAM wake): replay the per-tick retry counting.
      for (size_t i = 0; i < b.deferred.size(); ++i) {
        fc_hash_lock_stall_.Add(count);
        hazard = true;
      }
    }
  }
  if (!dirty_waiters_.empty()) hazard = true;
  tick_dram_stall_ = false;
  tick_hazard_stall_ = hazard;
}

void HashPipeline::CollectStats(StatsScope scope) const {
  scope.SetCounter("busy_cycles", busy_cycles_);
  scope.SetCounter("pool_size", config_.pool_size);
  scope.SetGauge("mean_occupancy",
                 busy_cycles_ > 0
                     ? double(occupancy_sum_) / double(busy_cycles_)
                     : 0);
  scope.MergeCounterSet(counters_);
  // Batch scope emitted only in kBatched mode so per-op stats JSON stays
  // byte-identical to pre-batch builds.
  if (config_.traversal == TraversalMode::kBatched) {
    StatsScope b = scope.Sub("batch");
    b.SetCounter("batches_flushed", batches_flushed_);
    b.SetCounter("flush_full", batch_flush_full_);
    b.SetCounter("flush_timeout", batch_flush_timeout_);
    b.SetCounter("flush_batch_end", batch_flush_end_);
    b.SetCounter("burst_total_accesses", burst_total_);
    b.SetCounter("burst_coalesced_accesses", burst_coalesced_);
    b.SetSummary("probes_per_batch", probes_per_batch_);
  }
}

}  // namespace bionicdb::index
