// The per-worker index coprocessor (paper Fig. 2).
//
// One instance sits beside every partition worker's softcore. It owns a
// hash pipeline and a skiplist pipeline over the worker's partition, routes
// each DB instruction to the right pipeline by table schema, and enforces
// the global in-flight request cap (the knob swept in Figures 10/11).
// Foreground requests (local softcore) and background requests (remote
// workers, via the on-chip channels) overlap freely inside the pipelines.
#ifndef BIONICDB_INDEX_COPROCESSOR_H_
#define BIONICDB_INDEX_COPROCESSOR_H_

#include <algorithm>
#include <cstdint>
#include <memory>

#include "db/database.h"
#include "index/db_op.h"
#include "index/hash_pipeline.h"
#include "index/skiplist_pipeline.h"
#include "sim/component.h"
#include "sim/config.h"

namespace bionicdb::index {

class IndexCoprocessor : public sim::Component {
 public:
  struct Config {
    uint32_t max_inflight = 16;
    /// Per-pipeline traversal strategy (DESIGN.md section 17). Propagated
    /// into both pipeline configs at construction, alongside the batch
    /// collector knobs below.
    TraversalMode traversal = TraversalMode::kPerOp;
    uint32_t batch_size = 8;
    uint64_t batch_timeout_cycles = 128;
    HashPipeline::Config hash;
    SkiplistPipeline::Config skiplist;
    /// Partition-local CC unit (engine-owned). Propagated into both
    /// pipeline configs at construction; also the hook for the cc stats
    /// subtree in CollectStats.
    cc::CcUnit* cc_unit = nullptr;
  };

  IndexCoprocessor(db::Database* db, db::PartitionId partition,
                   Config config);

  /// Submits a kIndexOp envelope. Returns false when the coprocessor is at
  /// its in-flight cap (the issuing port must retry next cycle).
  bool Submit(const comm::Envelope& env);

  /// Completed kIndexResult reply envelopes, ready for CP-register
  /// writeback or response routing. The worker drains this queue.
  ResultQueue& results() { return results_; }

  void Tick(uint64_t cycle) override;
  bool Idle() const override {
    return hash_->Idle() && skiplist_->Idle() && results_.empty();
  }

  /// Earliest wake of the two pipelines. Queued results_ don't factor in:
  /// the worker (which drains them) reports its own now + 1 hint while
  /// they are pending.
  uint64_t NextWakeCycle(uint64_t now) const override {
    return std::min(hash_->NextWakeCycle(now), skiplist_->NextWakeCycle(now));
  }
  void SkipCycles(uint64_t now, uint64_t count) override {
    hash_->SkipCycles(now, count);
    skiplist_->SkipCycles(now, count);
  }

  uint32_t inflight() const {
    return hash_->queued_ops() + skiplist_->queued_ops();
  }

  HashPipeline& hash_pipeline() { return *hash_; }
  SkiplistPipeline& skiplist_pipeline() { return *skiplist_; }
  CounterSet& counters() { return counters_; }

  /// Per-tick stall attribution rolled up over both pipelines (valid after
  /// this coprocessor's Tick for the current cycle). The worker samples
  /// these to classify its cycle-breakdown buckets.
  bool dram_stalled() const {
    return hash_->dram_stalled() || skiplist_->dram_stalled();
  }
  bool hazard_stalled() const {
    return hash_->hazard_stalled() || skiplist_->hazard_stalled();
  }

  /// Dumps coprocessor-level counters plus both pipelines under `scope`.
  void CollectStats(StatsScope scope) const;

 private:
  db::Database* db_;
  db::PartitionId partition_;
  Config config_;
  ResultQueue results_;
  std::unique_ptr<HashPipeline> hash_;
  std::unique_ptr<SkiplistPipeline> skiplist_;
  CounterSet counters_;
  // Per-op admission counters, bumped for every accepted envelope
  // (common/stats.h FastCounter).
  FastCounter fc_foreground_ops_{&counters_, "foreground_ops"};
  FastCounter fc_background_ops_{&counters_, "background_ops"};
};

}  // namespace bionicdb::index

#endif  // BIONICDB_INDEX_COPROCESSOR_H_
