// Index-side view of the fabric message taxonomy.
//
// Historically this header held a single `DbOp`/`DbResult` pair that mixed
// index-probe fields, raw-memory operands, routing metadata and RTT/ack
// state in one record, with fields repurposed across meanings. That
// god-struct is gone: messages are now typed `comm::Envelope`s
// (comm/envelope.h) — a routing header plus exactly one of `IndexOp`,
// `MemOp`, `IndexResult`, `MemResult` — and the transport never looks past
// the header.
//
// What the index layer consumes and produces:
//
//  * The coprocessor accepts `kIndexOp` envelopes (IndexCoprocessor::Submit)
//    from the local softcore and from remote workers' background traffic
//    alike; remoteness is derived from the header (origin != partition),
//    never flagged in the payload.
//  * Both pipelines finish an op by pushing a `kIndexResult` reply envelope
//    (Envelope::Reply echoes origin/cp_index/txn_slot/sent_at) onto the
//    shared ResultQueue; the owning worker routes each entry home — to the
//    local softcore's CP registers or back over the response channel.
//  * Raw-memory traffic (`kMemOp`/`kMemResult`) never enters the index
//    layer; the worker's background unit services it directly.
#ifndef BIONICDB_INDEX_DB_OP_H_
#define BIONICDB_INDEX_DB_OP_H_

#include "comm/envelope.h"
#include "sim/arena.h"
#include "sim/memory.h"

namespace bionicdb::index {

/// How a pipeline turns admitted probes into DRAM traffic.
///
///  * kPerOp — the classic paper pipelines: each probe traverses on its
///    own, one random DRAM access per bucket/tower hop (sections 4.4.1/2).
///  * kBatched — a batch collector accumulates up to `batch_size` probes
///    (bounded by `batch_timeout_cycles`), sorts them by bucket (hash) or
///    key (skiplist), and walks them level-wise so same-row accesses
///    coalesce into sequential bursts charged at the DRAM row-hit cost.
///    Visibility/CC is still checked per tuple (CcUnit::CheckAccess), and
///    results are byte-identical to kPerOp for the same input set.
enum class TraversalMode : uint8_t { kPerOp = 0, kBatched = 1 };

/// The burst-issuing DRAM path of the batched traversal units: tracks the
/// previous address issued in the current burst train and charges a
/// follow-up access in the same DRAM row at the row-hit cost. The caller
/// resets the cursor at each phase boundary (a new sorted address train).
class BurstIssuer {
 public:
  void Reset() { last_ = sim::kNullAddr; }

  /// Issues a read/write like DramMemory::Issue; on success the cursor
  /// advances and `*total` (and `*coalesced` for row hits) is bumped.
  bool Issue(sim::DramMemory* dram, uint64_t now, sim::Addr addr,
             bool is_write, sim::MemResponseQueue* sink, uint64_t cookie,
             uint32_t snapshot_words, uint64_t* total, uint64_t* coalesced) {
    const bool row_hit = last_ != sim::kNullAddr && dram->SameRow(last_, addr);
    const bool ok =
        row_hit
            ? dram->IssueRowHit(now, addr, is_write, sink, cookie,
                                snapshot_words)
            : dram->Issue(now, addr, is_write, sink, cookie, snapshot_words);
    if (!ok) return false;
    last_ = addr;
    ++*total;
    if (row_hit) ++*coalesced;
    return true;
  }

 private:
  sim::Addr last_ = sim::kNullAddr;
};

/// Completed-result staging shared by the hash and skiplist pipelines,
/// drained by the worker each tick (one-cycle result-routing latency, as in
/// the per-cycle hardware model). A ring rather than a deque: the queue
/// cycles every tick at dense activity, and deque block churn was a
/// measurable steady-state allocation source (tests/hot_path_alloc_test).
using ResultQueue = sim::RingQueue<comm::Envelope>;

}  // namespace bionicdb::index

#endif  // BIONICDB_INDEX_DB_OP_H_
