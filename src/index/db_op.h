// Index-side view of the fabric message taxonomy.
//
// Historically this header held a single `DbOp`/`DbResult` pair that mixed
// index-probe fields, raw-memory operands, routing metadata and RTT/ack
// state in one record, with fields repurposed across meanings. That
// god-struct is gone: messages are now typed `comm::Envelope`s
// (comm/envelope.h) — a routing header plus exactly one of `IndexOp`,
// `MemOp`, `IndexResult`, `MemResult` — and the transport never looks past
// the header.
//
// What the index layer consumes and produces:
//
//  * The coprocessor accepts `kIndexOp` envelopes (IndexCoprocessor::Submit)
//    from the local softcore and from remote workers' background traffic
//    alike; remoteness is derived from the header (origin != partition),
//    never flagged in the payload.
//  * Both pipelines finish an op by pushing a `kIndexResult` reply envelope
//    (Envelope::Reply echoes origin/cp_index/txn_slot/sent_at) onto the
//    shared ResultQueue; the owning worker routes each entry home — to the
//    local softcore's CP registers or back over the response channel.
//  * Raw-memory traffic (`kMemOp`/`kMemResult`) never enters the index
//    layer; the worker's background unit services it directly.
#ifndef BIONICDB_INDEX_DB_OP_H_
#define BIONICDB_INDEX_DB_OP_H_

#include "comm/envelope.h"
#include "sim/arena.h"

namespace bionicdb::index {

/// Completed-result staging shared by the hash and skiplist pipelines,
/// drained by the worker each tick (one-cycle result-routing latency, as in
/// the per-cycle hardware model). A ring rather than a deque: the queue
/// cycles every tick at dense activity, and deque block churn was a
/// measurable steady-state allocation source (tests/hot_path_alloc_test).
using ResultQueue = sim::RingQueue<comm::Envelope>;

}  // namespace bionicdb::index

#endif  // BIONICDB_INDEX_DB_OP_H_
