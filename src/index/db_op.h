// DB-instruction requests and results as they flow through the index
// coprocessor and the on-chip communication channels.
#ifndef BIONICDB_INDEX_DB_OP_H_
#define BIONICDB_INDEX_DB_OP_H_

#include <cstdint>
#include <deque>

#include "cc/write_set.h"
#include "db/types.h"
#include "isa/instruction.h"
#include "sim/memory.h"

namespace bionicdb::index {

/// One dispatched DB instruction. Built by the softcore's Prepare stage
/// (which attaches the transaction timestamp and metadata from the
/// catalogue) and consumed by an index coprocessor — the local one, or a
/// remote one reached through the on-chip channels.
struct DbOp {
  isa::Opcode op = isa::Opcode::kNop;
  db::TableId table = 0;
  db::Timestamp ts = 0;

  /// Key location inside the initiator's transaction block. Remote
  /// coprocessors fetch it directly: the FPGA-side DRAM is physically
  /// shared even though partitions are logically private.
  sim::Addr key_addr = sim::kNullAddr;
  uint16_t key_len = 0;

  sim::Addr payload_src = sim::kNullAddr;  // INSERT: payload bytes
  uint32_t payload_len = 0;
  sim::Addr out_buf = sim::kNullAddr;      // SCAN: result buffer
  uint32_t scan_count = 0;                 // SCAN: max tuples

  db::WorkerId origin_worker = 0;  // who gets the result
  uint32_t cp_index = 0;           // physical CP register at the origin
  uint32_t txn_slot = 0;           // origin context slot (write-set routing)
  bool is_remote = false;          // arrived as a background request
  /// Cycle the origin worker put the request on the wire (0 = local
  /// dispatch, never stamped). Echoed into the DbResult so the origin can
  /// measure channel round-trip latency.
  uint64_t sent_at = 0;

  /// Raw-memory operation shipped to the partition owning `mem_addr`
  /// (nonzero = this is a memory op, not an index op). Under partitioned
  /// DRAM a softcore LOAD/STORE/commit-publication touching a foreign
  /// partition's arena must execute on the owner's island — its DRAM lane,
  /// its timing — so it travels the fabric like any remote DB op:
  ///  * kLoad:  owner reads 8 bytes at mem_addr, responds with the value.
  ///  * kStore: owner writes `mem_value` at mem_addr (fire-and-forget).
  ///  * kCommit/kAbort: owner applies the write-set entry {mem_addr,
  ///    `write_kind` (repurposed above), commit ts in `ts`} and issues the
  ///    tuple-header writeback on its own lane.
  sim::Addr mem_addr = sim::kNullAddr;
  uint64_t mem_value = 0;
  cc::WriteKind write_kind = cc::WriteKind::kNone;
  bool is_mem_op() const { return mem_addr != sim::kNullAddr; }
};

/// Result written back (asynchronously) to the initiator's CP register.
struct DbResult {
  db::WorkerId origin_worker = 0;
  uint32_t cp_index = 0;
  uint32_t txn_slot = 0;
  isa::CpStatus status = isa::CpStatus::kOk;
  /// Tuple payload address for point operations; tuple count for SCAN.
  uint64_t payload = 0;
  /// Write-set bookkeeping the origin worker records on writeback.
  cc::WriteKind write_kind = cc::WriteKind::kNone;
  sim::Addr tuple_addr = sim::kNullAddr;
  bool is_remote = false;  // must be routed back over the channels
  uint64_t sent_at = 0;    // echo of DbOp::sent_at (remote RTT measurement)
  /// Response to a remote raw-memory kLoad: `payload` carries the loaded
  /// value and the origin resumes its stalled softcore instead of writing
  /// a CP register.
  bool mem_load = false;

  /// The 64-bit value stored into the CP register.
  uint64_t ToCpValue() const { return isa::EncodeCpValue(status, payload); }
};

using DbResultQueue = std::deque<DbResult>;

}  // namespace bionicdb::index

#endif  // BIONICDB_INDEX_DB_OP_H_
