// BRAM lock tables used for pipeline hazard prevention.
//
// The paper coordinates racing pipeline stages with pipeline stalls driven
// by small BRAM lock tables (sections 4.4.1 and 4.4.2):
//  * the hash pipeline tracks hash values of in-flight INSERTs that passed
//    the Hash stage;
//  * the skiplist pipeline tracks (tower, level) entry points of in-flight
//    insert paths.
// BRAM (or CAM) lookups are single-cycle, so checks carry no timing cost;
// the cost the simulation charges is the *stall* while a lock is held.
#ifndef BIONICDB_INDEX_LOCK_TABLE_H_
#define BIONICDB_INDEX_LOCK_TABLE_H_

#include <cstdint>
#include <unordered_map>

namespace bionicdb::index {

/// Lock table keyed by an arbitrary 64-bit value, with owner tracking so a
/// pipeline can re-check its own locks without self-deadlocking.
class LockTable {
 public:
  /// True when `key` is locked by an owner other than `owner`.
  bool HeldByOther(uint64_t key, uint32_t owner) const {
    auto it = locks_.find(key);
    return it != locks_.end() && it->second != owner;
  }

  /// Acquires `key` for `owner` if free (or already held by `owner`).
  bool TryAcquire(uint64_t key, uint32_t owner) {
    auto [it, inserted] = locks_.try_emplace(key, owner);
    return inserted || it->second == owner;
  }

  /// Releases `key` if held by `owner`.
  void Release(uint64_t key, uint32_t owner) {
    auto it = locks_.find(key);
    if (it != locks_.end() && it->second == owner) locks_.erase(it);
  }

  size_t size() const { return locks_.size(); }
  bool empty() const { return locks_.empty(); }

 private:
  std::unordered_map<uint64_t, uint32_t> locks_;
};

/// Packs a (tower address, level) pair into a skiplist lock key; the level
/// lives in the (otherwise unused) top byte of the 56-bit address space.
constexpr uint64_t SkiplistLockKey(uint64_t tower_addr, uint32_t level) {
  return (uint64_t(level) << 56) ^ tower_addr;
}

}  // namespace bionicdb::index

#endif  // BIONICDB_INDEX_LOCK_TABLE_H_
