#include "index/skiplist_pipeline.h"

#include <algorithm>

#include <cassert>

#include "cc/cc_unit.h"
#include "cc/visibility.h"
#include "db/tuple.h"

namespace bionicdb::index {

namespace {
uint32_t Bursts(uint64_t bytes) { return uint32_t((bytes + 63) / 64); }
}  // namespace

SkiplistPipeline::SkiplistPipeline(db::Database* db,
                                   db::PartitionId partition, Config config,
                                   ResultQueue* results)
    : db_(db),
      dram_(db->dram()),
      partition_(partition),
      config_(config),
      results_(results),
      pool_(config.pool_size),
      stages_(config.n_stages),
      scanners_(config.n_scanners) {
  assert(config.n_stages >= 1 && config.n_stages <= db::kSkiplistMaxHeight);
  assert(config.n_scanners >= 1);
  free_slots_.reserve(config.pool_size);
  for (uint32_t i = 0; i < config.pool_size; ++i) {
    free_slots_.push_back(config.pool_size - 1 - i);
  }
  // Range binding: every stage gets an equal share, and the remainder is
  // assigned to the TOP stage — upper levels are exponentially sparser so
  // wider upper ranges keep the dataflow balanced (section 4.4.2).
  const int total = db::kSkiplistMaxHeight;
  int base = total / int(config.n_stages);
  int rem = total % int(config.n_stages);
  int hi = total - 1;
  for (uint32_t s = 0; s < config.n_stages; ++s) {
    int width = base + (s == 0 ? rem : 0);
    stages_[s].hi = hi;
    stages_[s].lo = hi - width + 1;
    hi -= width;
  }
  assert(stages_.back().lo == 0);
  if (config_.traversal == TraversalMode::kBatched) {
    config_.batch_size = std::max<uint32_t>(
        1, std::min(config_.batch_size, config_.pool_size));
    batches_.resize(4);
    for (Batch& b : batches_) b.members.reserve(config_.batch_size);
  }
}

bool SkiplistPipeline::Accept(const comm::Envelope& env) {
  if (free_slots_.empty() && pending_in_.size() >= pool_.size()) return false;
  pending_in_.push_back(env);
  return true;
}

uint32_t SkiplistPipeline::AllocSlot(const comm::Envelope& env) {
  assert(!free_slots_.empty());
  uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  pool_[slot] = Op{};
  pool_[slot].req = env;
  pool_[slot].in_use = true;
  ++active_;
  return slot;
}

void SkiplistPipeline::FreeSlot(uint32_t slot) {
  assert(pool_[slot].in_use);
  for (uint64_t key : pool_[slot].held_locks) {
    lock_table_.Release(key, slot);
  }
  pool_[slot].held_locks.clear();
  pool_[slot].in_use = false;
  free_slots_.push_back(slot);
  --active_;
}

void SkiplistPipeline::Emit(uint32_t slot, isa::CpStatus status,
                            uint64_t payload, cc::WriteKind kind,
                            sim::Addr tuple_addr) {
  comm::IndexResult r;
  r.status = status;
  r.payload = payload;
  r.write_kind = status == isa::CpStatus::kOk ? kind : cc::WriteKind::kNone;
  r.tuple_addr = tuple_addr;
  results_->push_back(comm::Envelope::Reply(pool_[slot].req, r));
  FreeSlot(slot);
}

void SkiplistPipeline::PostWrite(uint64_t now, sim::Addr addr) {
  if (!dram_->Issue(now, addr, /*is_write=*/true, nullptr, 0)) {
    counters_.Add("posted_write_overflow");
  }
}

db::SkiplistLayout* SkiplistPipeline::Layout(const Op& op) const {
  return db_->skiplist_index(op.req.index_op().table, partition_);
}

std::vector<uint64_t> SkiplistPipeline::LinksFromSnapshot(
    const sim::MemWords& words) {
  // Words 0..2 are the header; links start at word 3.
  return std::vector<uint64_t>(words.begin() + 3, words.end());
}

int SkiplistPipeline::CompareProbe(const Op& op, sim::Addr tower) const {
  db::TupleAccessor t(dram_, tower);
  return db::CompareKeyToTuple(*dram_, op.key.data(),
                               uint16_t(op.key.size()), t);
}

void SkiplistPipeline::Tick(uint64_t now) {
  tick_dram_stall_ = false;
  tick_hazard_stall_ = false;
  // Idle early-out: every internal queue (stage inputs, responses, install
  // acks, dirty towers) belongs to an op holding a pool slot, and a held
  // slot keeps active_ > 0 — so an idle pipeline's stage fan-out is a pure
  // no-op scan. Skipping it is the dominant dense-regime win when a
  // workload only exercises the other index structure.
  if (active_ == 0 && pending_in_.empty()) return;
  ++busy_cycles_;
  occupancy_sum_ += active_;
  TickInstalls(now);
  for (uint32_t i = 0; i < config_.n_scanners; ++i) TickScanner(now, i);
  for (int s = int(config_.n_stages) - 1; s >= 0; --s) {
    TickStage(now, uint32_t(s));
  }
  if (config_.traversal == TraversalMode::kBatched) {
    // Inserts still flow through the staged path above; probes batch.
    TickBatchExec(now);
    TickBatchAdmit(now);
  } else {
    TickKeyFetch(now);
  }
}

void SkiplistPipeline::TickInstalls(uint64_t now) {
  // Acknowledged link writes: an insert completes (releasing its path
  // locks) only when every pred link update has landed in DRAM.
  while (!install_ack_.empty()) {
    uint32_t slot = uint32_t(install_ack_.front().cookie);
    install_ack_.pop_front();
    Op& op = pool_[slot];
    if (--op.acks_left == 0 && op.writes_left.empty()) {
      installing_.erase(
          std::find(installing_.begin(), installing_.end(), slot));
      db::TupleAccessor t(dram_, op.new_tuple);
      counters_.Add("inserts_installed");
      Emit(slot, isa::CpStatus::kOk, t.payload_addr(),
           cc::WriteKind::kInsert, op.new_tuple);
    }
  }
  // Retry link writes rejected by DRAM backpressure.
  for (uint32_t slot : installing_) {
    Op& op = pool_[slot];
    while (!op.writes_left.empty()) {
      auto [addr, value] = op.writes_left.back();
      if (!dram_->IssueWrite64(now, addr, value, &install_ack_, slot)) {
        tick_dram_stall_ = true;
        break;
      }
      op.writes_left.pop_back();
    }
  }
}

void SkiplistPipeline::TickKeyFetch(uint64_t now) {
  // Complete one pending key fetch per cycle: cache the key bytes and enter
  // the top traversal stage.
  if (!keyfetch_resp_.empty()) {
    sim::MemResponse resp = std::move(keyfetch_resp_.front());
    keyfetch_resp_.pop_front();
    uint32_t slot = uint32_t(resp.cookie);
    Op& op = pool_[slot];
    op.key.resize(op.req.index_op().key_len);
    dram_->ReadBytes(op.req.index_op().key_addr, op.key.data(), op.key.size());
    op.cur = Layout(op)->head();
    op.level = stages_[0].hi;
    if (op.req.index_op().op == isa::Opcode::kInsert) {
      op.new_height = Layout(op)->NextHeight();
    }
    stages_[0].in.push_back(slot);
  }
  // Admit one new op per cycle.
  if (pending_in_.empty() || free_slots_.empty()) return;
  uint32_t slot = AllocSlot(pending_in_.front());
  if (!dram_->Issue(now, pool_[slot].req.index_op().key_addr, false,
                    &keyfetch_resp_, slot)) {
    FreeSlot(slot);
    counters_.Add("keyfetch_dram_stall");
    tick_dram_stall_ = true;
    return;
  }
  pending_in_.pop_front();
  counters_.Add("ops_admitted");
}

void SkiplistPipeline::TickBatchAdmit(uint64_t now) {
  // Insert keys arriving through the per-op key-fetch path enter stage 0,
  // exactly as in kPerOp mode.
  if (!keyfetch_resp_.empty()) {
    sim::MemResponse resp = std::move(keyfetch_resp_.front());
    keyfetch_resp_.pop_front();
    uint32_t slot = uint32_t(resp.cookie);
    Op& op = pool_[slot];
    op.key.resize(op.req.index_op().key_len);
    dram_->ReadBytes(op.req.index_op().key_addr, op.key.data(), op.key.size());
    op.cur = Layout(op)->head();
    op.level = stages_[0].hi;
    op.new_height = Layout(op)->NextHeight();
    stages_[0].in.push_back(slot);
  }
  // Admit one op per cycle.
  if (!pending_in_.empty() && !free_slots_.empty()) {
    const comm::Envelope& env = pending_in_.front();
    if (env.index_op().op == isa::Opcode::kInsert) {
      uint32_t slot = AllocSlot(env);
      if (!dram_->Issue(now, pool_[slot].req.index_op().key_addr, false,
                        &keyfetch_resp_, slot)) {
        FreeSlot(slot);
        counters_.Add("keyfetch_dram_stall");
        tick_dram_stall_ = true;
      } else {
        pending_in_.pop_front();
        counters_.Add("ops_admitted");
      }
    } else {
      if (collect_ == UINT32_MAX) {
        for (uint32_t i = 0; i < uint32_t(batches_.size()); ++i) {
          if (batches_[i].phase == Batch::Phase::kIdle) {
            collect_ = i;
            break;
          }
        }
      }
      // All four contexts busy -> admission stalls until one retires.
      if (collect_ != UINT32_MAX) {
        Batch& b = batches_[collect_];
        uint32_t slot = AllocSlot(env);
        Op& op = pool_[slot];
        // The key read is issued AT admission so it overlaps collection;
        // keys inside one framed transaction block are address-sequential,
        // so the burst path coalesces them into row hits.
        if (!b.burst.Issue(dram_, now, op.req.index_op().key_addr, false,
                           &b.key_resp, slot, 0, &burst_total_,
                           &burst_coalesced_)) {
          FreeSlot(slot);
          counters_.Add("keyfetch_dram_stall");
          tick_dram_stall_ = true;
        } else {
          if (b.members.empty()) {
            b.phase = Batch::Phase::kCollect;
            b.flush_deadline = now + config_.batch_timeout_cycles;
          }
          b.members.push_back(slot);
          ++b.outstanding;
          ++b.live;
          pending_in_.pop_front();
          counters_.Add("ops_admitted");
          if (uint32_t(b.members.size()) >= config_.batch_size) {
            ++batch_flush_full_;
            FlushCollect();
          } else if (op.req.index_op().batch_flags & isa::kBatchFlagEnd) {
            ++batch_flush_end_;
            FlushCollect();
          }
        }
      }
    }
  }
  // Flush timeout: no probe waits in the collector past its deadline.
  if (collect_ != UINT32_MAX &&
      batches_[collect_].phase == Batch::Phase::kCollect &&
      now >= batches_[collect_].flush_deadline) {
    ++batch_flush_timeout_;
    FlushCollect();
  }
}

void SkiplistPipeline::FlushCollect() {
  Batch& b = batches_[collect_];
  b.phase = Batch::Phase::kKeys;
  ++batches_flushed_;
  probes_per_batch_.Add(double(b.members.size()));
  collect_ = UINT32_MAX;
}

void SkiplistPipeline::RetireBatch(Batch* b) {
  b->phase = Batch::Phase::kIdle;
  b->members.clear();
  b->outstanding = 0;
  b->live = 0;
  b->level = 0;
  b->fetch_queue.clear();
  b->towers.clear();
  b->burst.Reset();
}

void SkiplistPipeline::RequestFetch(Batch* b, sim::Addr addr, bool verify) {
  auto [it, inserted] = b->towers.try_emplace(addr);
  if (!inserted) return;  // already queued, in flight, or cached
  it->second.st = Batch::Tower::St::kQueued;
  it->second.verify = verify;
  b->fetch_queue.push_back(addr);
}

void SkiplistPipeline::TickBatchExec(uint64_t now) {
  for (Batch& b : batches_) {
    if (b.phase == Batch::Phase::kIdle) continue;
    // Key responses land while the batch is still collecting: cache the
    // key bytes and park the member at the top level.
    while (!b.key_resp.empty()) {
      uint32_t slot = uint32_t(b.key_resp.front().cookie);
      b.key_resp.pop_front();
      Op& op = pool_[slot];
      op.key.resize(op.req.index_op().key_len);
      dram_->ReadBytes(op.req.index_op().key_addr, op.key.data(),
                       op.key.size());
      op.cur = Layout(op)->head();
      op.level = db::kSkiplistMaxHeight - 1;
      --b.outstanding;
    }
    while (!b.fetch_resp.empty()) {
      sim::Addr addr = sim::Addr(b.fetch_resp.front().cookie);
      b.fetch_resp.pop_front();
      auto it = b.towers.find(addr);
      it->second.st =
          it->second.verify && !dram_->VerifyTupleGuard(addr)
              ? Batch::Tower::St::kCorrupt
              : Batch::Tower::St::kReady;
      --b.outstanding;
    }
    if (b.phase == Batch::Phase::kKeys && b.outstanding == 0) {
      // Level-wise sort: members ordered by (table, key) so the per-level
      // fetch trains walk rising addresses on bulk-loaded lists.
      std::stable_sort(
          b.members.begin(), b.members.end(),
          [this](uint32_t x, uint32_t y) {
            const Op& a = pool_[x];
            const Op& c = pool_[y];
            if (a.req.index_op().table != c.req.index_op().table) {
              return a.req.index_op().table < c.req.index_op().table;
            }
            return std::lexicographical_compare(a.key.begin(), a.key.end(),
                                                c.key.begin(), c.key.end());
          });
      b.level = db::kSkiplistMaxHeight - 1;
      b.phase = Batch::Phase::kWalk;
    }
    if (b.phase == Batch::Phase::kWalk) {
      while (WalkBatch(now, &b)) {
      }
    }
  }
}

bool SkiplistPipeline::WalkBatch(uint64_t now, Batch* b) {
  // Advance every live member at the current level through the batch's
  // tower cache; a member blocks on the first tower not yet fetched.
  for (uint32_t idx = 0; idx < uint32_t(b->members.size()); ++idx) {
    uint32_t slot = b->members[idx];
    if (slot == kNoMember) continue;
    Op& op = pool_[slot];
    while (op.level == b->level) {
      auto cur_it = b->towers.find(op.cur);
      if (cur_it == b->towers.end()) {
        // Heads carry no tuple integrity guard, so no verify.
        RequestFetch(b, op.cur, /*verify=*/false);
        break;
      }
      if (cur_it->second.st == Batch::Tower::St::kQueued ||
          cur_it->second.st == Batch::Tower::St::kInflight) {
        break;
      }
      if (cur_it->second.st == Batch::Tower::St::kCorrupt) {
        counters_.Add("corruption_detected");
        b->members[idx] = kNoMember;
        --b->live;
        Emit(slot, isa::CpStatus::kCorrupted, 0, cc::WriteKind::kNone,
             sim::kNullAddr);
        break;
      }
      sim::Addr next =
          db::TupleAccessor(dram_, op.cur).next(uint32_t(op.level));
      if (next == sim::kNullAddr) {
        if (op.level == 0) {
          op.preds[0] = op.cur;
          op.succs[0] = sim::kNullAddr;
        }
        --op.level;  // end of level: descend (per-level barrier)
        break;
      }
      auto it = b->towers.find(next);
      if (it == b->towers.end()) {
        RequestFetch(b, next, /*verify=*/true);
        break;
      }
      if (it->second.st == Batch::Tower::St::kQueued ||
          it->second.st == Batch::Tower::St::kInflight) {
        break;
      }
      if (it->second.st == Batch::Tower::St::kCorrupt) {
        counters_.Add("corruption_detected");
        b->members[idx] = kNoMember;
        --b->live;
        Emit(slot, isa::CpStatus::kCorrupted, 0, cc::WriteKind::kNone,
             sim::kNullAddr);
        break;
      }
      int cmp = CompareProbe(op, next);
      if (cmp > 0) {
        op.cur = next;  // probe beyond `next`: move right (cached, free)
        continue;
      }
      if (op.level == 0) {
        op.preds[0] = op.cur;
        op.succs[0] = next;
      }
      --op.level;
      break;
    }
  }
  // Issue the fetch train in discovery order (member-sorted -> burst
  // coalescing). Each unique tower is one timed DRAM access per batch.
  uint32_t issued = 0;
  for (sim::Addr addr : b->fetch_queue) {
    if (!b->burst.Issue(dram_, now, addr, false, &b->fetch_resp, addr, 0,
                        &burst_total_, &burst_coalesced_)) {
      counters_.Add("batch_fetch_dram_stall");
      tick_dram_stall_ = true;
      break;
    }
    b->towers[addr].st = Batch::Tower::St::kInflight;
    ++b->outstanding;
    ++issued;
    counters_.Add("tower_visits");
  }
  b->fetch_queue.erase(b->fetch_queue.begin(),
                       b->fetch_queue.begin() + issued);
  if (b->outstanding != 0 || !b->fetch_queue.empty()) return false;
  if (b->live == 0) {
    RetireBatch(b);
    return false;
  }
  // Per-level barrier: every live member below the level?
  for (uint32_t slot : b->members) {
    if (slot != kNoMember && pool_[slot].level >= b->level) return false;
  }
  if (b->level > 0) {
    --b->level;
    return true;  // walk the next level this tick on cached towers
  }
  // Terminal round in member order: point ops run visibility/CC per tuple
  // through the shared FinishAccess path; scans hand off to the scanners.
  for (uint32_t idx = 0; idx < uint32_t(b->members.size()); ++idx) {
    uint32_t slot = b->members[idx];
    if (slot == kNoMember) continue;
    b->members[idx] = kNoMember;
    --b->live;
    Terminal(now, slot);
  }
  RetireBatch(b);
  return false;
}

void SkiplistPipeline::TickStage(uint64_t now, uint32_t stage_idx) {
  Stage& s = stages_[stage_idx];
  if (!s.cur_op.has_value()) {
    if (s.in.empty()) return;
    // Wake on op arrival: (re)load the op's current tower from DRAM.
    uint32_t slot = s.in.front();
    if (!dram_->Issue(now, pool_[slot].cur, false, &s.resp, slot,
                      kTowerSnapshotWords)) {
      counters_.Add("stage_dram_stall");
      tick_dram_stall_ = true;
      return;
    }
    s.in.pop_front();
    s.cur_op = slot;
    s.wait = Wait::kLoad;
    return;
  }

  uint32_t slot = *s.cur_op;
  Op& op = pool_[slot];
  switch (s.wait) {
    case Wait::kNone:
      Advance(now, &s);
      break;
    case Wait::kLoad:
      if (s.resp.empty()) return;
      op.cur_links = LinksFromSnapshot(s.resp.front().data);
      s.resp.pop_front();
      s.wait = Wait::kNone;
      Advance(now, &s);
      break;
    case Wait::kNext: {
      if (s.resp.empty()) return;
      sim::MemWords words = std::move(s.resp.front().data);
      s.resp.pop_front();
      NextArrived(now, &s, words);
      break;
    }
    case Wait::kLockMove:
      // Stalled on a locked next tower; once free, re-read it so the move
      // uses fresh links (the lock holder just rewired them).
      if (lock_table_.HeldByOther(
              SkiplistLockKey(s.pending_next, uint32_t(op.level)), slot)) {
        counters_.Add("lock_stall_cycles");
        tick_hazard_stall_ = true;
        return;
      }
      if (dram_->Issue(now, s.pending_next, false, &s.resp, slot,
                       kTowerSnapshotWords)) {
        s.wait = Wait::kNext;
      } else {
        tick_dram_stall_ = true;
      }
      break;
    case Wait::kLockDown:
      // Stalled on our own pred being locked; once free, re-read op.cur.
      if (lock_table_.HeldByOther(
              SkiplistLockKey(op.cur, uint32_t(op.level)), slot)) {
        counters_.Add("lock_stall_cycles");
        tick_hazard_stall_ = true;
        return;
      }
      if (dram_->Issue(now, op.cur, false, &s.resp, slot,
                       kTowerSnapshotWords)) {
        s.wait = Wait::kLoad;
      } else {
        tick_dram_stall_ = true;
      }
      break;
  }
}

void SkiplistPipeline::Advance(uint64_t now, Stage* stage) {
  uint32_t slot = *stage->cur_op;
  Op& op = pool_[slot];
  const bool is_insert = op.req.index_op().op == isa::Opcode::kInsert;
  while (true) {
    if (op.level < stage->lo) {
      LeaveStage(now, stage);
      return;
    }
    sim::Addr next = op.level < int(op.cur_links.size())
                         ? op.cur_links[op.level]
                         : sim::kNullAddr;
    if (next == sim::kNullAddr) {
      // End of level: record path and descend on the cached tower.
      if (is_insert && op.level < int(op.new_height)) {
        uint64_t lkey = SkiplistLockKey(op.cur, uint32_t(op.level));
        if (config_.hazard_prevention &&
            lock_table_.HeldByOther(lkey, slot)) {
          stage->wait = Wait::kLockDown;
          return;
        }
        if (config_.hazard_prevention && lock_table_.TryAcquire(lkey, slot)) {
          op.held_locks.push_back(lkey);
        }
        op.preds[op.level] = op.cur;
        op.succs[op.level] = sim::kNullAddr;
      }
      --op.level;
      continue;
    }
    // Need the next tower's key: one DRAM access per tower visited.
    stage->pending_next = next;
    if (!dram_->Issue(now, next, false, &stage->resp, slot,
                      kTowerSnapshotWords)) {
      counters_.Add("stage_dram_stall");
      tick_dram_stall_ = true;
      return;  // wait == kNone; retried next tick
    }
    stage->wait = Wait::kNext;
    counters_.Add("tower_visits");
    return;
  }
}

void SkiplistPipeline::NextArrived(uint64_t now, Stage* stage,
                                   const sim::MemWords& words) {
  uint32_t slot = *stage->cur_op;
  Op& op = pool_[slot];
  const bool is_insert = op.req.index_op().op == isa::Opcode::kInsert;
  sim::Addr next = stage->pending_next;
  // Integrity guard before trusting the fetched tower's key bytes.
  if (!dram_->VerifyTupleGuard(next)) {
    counters_.Add("corruption_detected");
    stage->cur_op.reset();
    stage->wait = Wait::kNone;
    Emit(slot, isa::CpStatus::kCorrupted, 0, cc::WriteKind::kNone,
         sim::kNullAddr);
    return;
  }
  int cmp = CompareProbe(op, next);
  if (cmp > 0) {
    // Probe is beyond `next`: move right onto it.
    if (is_insert && config_.hazard_prevention &&
        lock_table_.HeldByOther(SkiplistLockKey(next, uint32_t(op.level)),
                                slot)) {
      stage->wait = Wait::kLockMove;
      return;
    }
    op.cur = next;
    op.cur_links = LinksFromSnapshot(words);
    stage->wait = Wait::kNone;
    Advance(now, stage);
    return;
  }
  // `next` is at/after the probe: stop here, record path, descend.
  if (is_insert && op.level < int(op.new_height)) {
    uint64_t lkey = SkiplistLockKey(op.cur, uint32_t(op.level));
    if (config_.hazard_prevention && lock_table_.HeldByOther(lkey, slot)) {
      stage->wait = Wait::kLockDown;
      return;
    }
    if (config_.hazard_prevention && lock_table_.TryAcquire(lkey, slot)) {
      op.held_locks.push_back(lkey);
    }
    op.preds[op.level] = op.cur;
    op.succs[op.level] = next;
  } else if (op.level == 0) {
    // Point ops and scans only need the bottom-level successor.
    op.preds[0] = op.cur;
    op.succs[0] = next;
  }
  --op.level;
  stage->wait = Wait::kNone;
  Advance(now, stage);
}

void SkiplistPipeline::LeaveStage(uint64_t now, Stage* stage) {
  uint32_t slot = *stage->cur_op;
  stage->cur_op.reset();
  stage->wait = Wait::kNone;
  // Identify this stage's index from its range.
  uint32_t idx = 0;
  for (; idx < stages_.size(); ++idx) {
    if (&stages_[idx] == stage) break;
  }
  if (idx + 1 < stages_.size()) {
    stages_[idx + 1].in.push_back(slot);
  } else {
    Terminal(now, slot);
  }
}

void SkiplistPipeline::FinishAccess(uint64_t now, uint32_t slot,
                                    sim::Addr tuple_addr) {
  Op& op = pool_[slot];
  if (!dram_->VerifyTupleGuard(tuple_addr)) {
    counters_.Add("corruption_detected");
    Emit(slot, isa::CpStatus::kCorrupted, 0, cc::WriteKind::kNone,
         sim::kNullAddr);
    return;
  }
  db::TupleAccessor t(dram_, tuple_addr);
  cc::AccessMode mode;
  cc::WriteKind kind = cc::WriteKind::kNone;
  switch (op.req.index_op().op) {
    case isa::Opcode::kUpdate:
      mode = cc::AccessMode::kUpdate;
      kind = cc::WriteKind::kUpdate;
      break;
    case isa::Opcode::kRemove:
      mode = cc::AccessMode::kRemove;
      kind = cc::WriteKind::kRemove;
      break;
    default:
      mode = cc::AccessMode::kRead;
      break;
  }
  cc::VisibilityResult vr;
  sim::Addr payload_override = sim::kNullAddr;
  if (config_.cc_unit == nullptr ||
      config_.cc_unit->mode() == cc::CcMode::kTimestamp) {
    vr = cc::CheckVisibility(&t, op.req.index_op().ts, mode);
  } else {
    // The skiplist pipeline has no dirty-waiter park machinery, so a
    // dirty_conflict surfaces as a plain rejection here (range workloads
    // retry through the softcore, exactly like the T/O blind reject).
    cc::CcUnit::AccessResult ar =
        config_.cc_unit->CheckAccess(&t, op.req.index_op().ts, mode);
    vr = ar.vis;
    payload_override = ar.payload_override;
    for (uint32_t i = 0; i < ar.charge_bursts; ++i) {
      PostWrite(now, tuple_addr + 64ull * i);
    }
  }
  if (vr.header_dirtied) PostWrite(now, tuple_addr);
  if (vr.status != isa::CpStatus::kOk) {
    Emit(slot, vr.status, 0, cc::WriteKind::kNone, sim::kNullAddr);
    return;
  }
  const uint64_t payload = payload_override != sim::kNullAddr
                               ? payload_override
                               : t.payload_addr();
  Emit(slot, isa::CpStatus::kOk, payload, kind, tuple_addr);
}

void SkiplistPipeline::Terminal(uint64_t now, uint32_t slot) {
  Op& op = pool_[slot];
  switch (op.req.index_op().op) {
    case isa::Opcode::kSearch:
    case isa::Opcode::kUpdate:
    case isa::Opcode::kRemove: {
      sim::Addr cand = op.succs[0];
      if (cand != sim::kNullAddr && !dram_->VerifyTupleGuard(cand)) {
        counters_.Add("corruption_detected");
        Emit(slot, isa::CpStatus::kCorrupted, 0, cc::WriteKind::kNone,
             sim::kNullAddr);
        return;
      }
      if (cand == sim::kNullAddr || CompareProbe(op, cand) != 0) {
        Emit(slot, isa::CpStatus::kNotFound, 0, cc::WriteKind::kNone,
             sim::kNullAddr);
        return;
      }
      FinishAccess(now, slot, cand);
      return;
    }
    case isa::Opcode::kInsert: {
      std::vector<uint8_t> payload(op.req.index_op().payload_len);
      if (!payload.empty()) {
        dram_->ReadBytes(op.req.index_op().payload_src, payload.data(),
                         payload.size());
      }
      sim::Addr tower = db::AllocateTuple(
          dram_, op.new_height, op.key.data(), uint16_t(op.key.size()),
          payload.data(), uint32_t(payload.size()), /*write_ts=*/0,
          db::kFlagDirty);
      db::TupleAccessor t(dram_, tower);
      // Install from the RECORDED path (succs may be stale when hazard
      // prevention is off — that is exactly the Fig. 7a lost-tower bug).
      // The tower body is fresh memory (posted writes); the pred link
      // updates are ordering-sensitive, so their functional effect lands at
      // DRAM service time and the path locks are held until all complete.
      op.new_tuple = tower;
      op.acks_left = op.new_height;
      for (int l = 0; l < int(op.new_height); ++l) {
        t.set_next(uint32_t(l), op.succs[l]);
        db::TupleAccessor pred(dram_, op.preds[l]);
        sim::Addr link = pred.link_addr(uint32_t(l));
        if (!dram_->IssueWrite64(now, link, tower, &install_ack_, slot)) {
          op.writes_left.emplace_back(link, tower);
        }
      }
      uint64_t footprint =
          db::TupleFootprint(op.new_height, uint16_t(op.key.size()),
                             uint32_t(payload.size()));
      for (uint32_t b = 0; b < Bursts(footprint); ++b) {
        PostWrite(now, tower + 64ull * b);
      }
      installing_.push_back(slot);
      return;
    }
    case isa::Opcode::kScan: {
      op.cur = op.succs[0];
      op.collected = 0;
      // Shortest-queue scanner assignment (round-robin tie-break). The
      // rotation advances only when the tie-break actually decided the
      // pick: advancing it on strict shortest-queue overrides too would
      // skew later ties toward low indices under equal queues.
      uint32_t start = scanner_rr_ % config_.n_scanners;
      uint32_t best = start;
      for (uint32_t i = 0; i < config_.n_scanners; ++i) {
        if (scanners_[i].in.size() < scanners_[best].in.size()) best = i;
      }
      if (best == start) scanner_rr_ = (scanner_rr_ + 1) % config_.n_scanners;
      ++scanners_[best].dispatched;
      scanners_[best].in.push_back(slot);
      return;
    }
    default:
      Emit(slot, isa::CpStatus::kError, 0, cc::WriteKind::kNone,
           sim::kNullAddr);
      return;
  }
}

void SkiplistPipeline::TickScanner(uint64_t now, uint32_t scanner_idx) {
  Scanner& sc = scanners_[scanner_idx];
  if (!sc.cur_op.has_value()) {
    if (sc.in.empty()) return;
    uint32_t slot = sc.in.front();
    Op& op = pool_[slot];
    if (op.cur == sim::kNullAddr || op.req.index_op().scan_count == 0) {
      sc.in.pop_front();
      Emit(slot, isa::CpStatus::kOk, 0, cc::WriteKind::kNone, sim::kNullAddr);
      return;
    }
    if (!dram_->Issue(now, op.cur, false, &sc.resp, slot,
                      kTowerSnapshotWords)) {
      counters_.Add("scanner_dram_stall");
      tick_dram_stall_ = true;
      return;
    }
    sc.in.pop_front();
    sc.cur_op = slot;
    sc.waiting = true;
    return;
  }
  if (!sc.waiting) {
    // A previous hop read was rejected by DRAM backpressure; retry it.
    Op& op = pool_[*sc.cur_op];
    if (dram_->Issue(now, op.cur, false, &sc.resp, *sc.cur_op,
                     kTowerSnapshotWords)) {
      sc.waiting = true;
    } else {
      counters_.Add("scanner_dram_stall");
      tick_dram_stall_ = true;
    }
    return;
  }
  if (sc.resp.empty()) return;
  sim::MemWords words = std::move(sc.resp.front().data);
  sc.resp.pop_front();
  uint32_t slot = *sc.cur_op;
  Op& op = pool_[slot];
  if (!dram_->VerifyTupleGuard(op.cur)) {
    counters_.Add("corruption_detected");
    sc.cur_op.reset();
    sc.waiting = false;
    Emit(slot, isa::CpStatus::kCorrupted, 0, cc::WriteKind::kNone,
         sim::kNullAddr);
    return;
  }
  db::TupleAccessor t(dram_, op.cur);
  if (cc::ScanVisible(t, op.req.index_op().ts)) {
    // Collect the tuple: its payload address lands in the result buffer.
    dram_->Write64(op.req.index_op().out_buf + 8ull * op.collected,
                   t.payload_addr());
    ++op.collected;
    if (op.collected % 8 == 0) {
      PostWrite(now, op.req.index_op().out_buf + 8ull * (op.collected - 8));
    }
  }
  sim::Addr next = words.size() > 3 ? words[3] : sim::kNullAddr;  // level 0
  if (op.collected >= op.req.index_op().scan_count || next == sim::kNullAddr) {
    if (op.collected % 8 != 0) {
      PostWrite(now, op.req.index_op().out_buf + 8ull * (op.collected & ~7u));
    }
    counters_.Add("scans_completed");
    uint32_t n = op.collected;
    sc.cur_op.reset();
    sc.waiting = false;
    Emit(slot, isa::CpStatus::kOk, n, cc::WriteKind::kNone, sim::kNullAddr);
    return;
  }
  sim::Addr prev = op.cur;
  op.cur = next;
  // Batched traversal charges the next hop at row-hit cost when it stays
  // in the same DRAM row: bulk-loaded bottom lists are address-sequential,
  // so long scans degrade into sequential bursts (paper HC-2).
  const bool row_hit = config_.traversal == TraversalMode::kBatched &&
                       dram_->SameRow(prev, next);
  const bool ok =
      row_hit ? dram_->IssueRowHit(now, op.cur, false, &sc.resp, slot,
                                   kTowerSnapshotWords)
              : dram_->Issue(now, op.cur, false, &sc.resp, slot,
                             kTowerSnapshotWords);
  if (ok && config_.traversal == TraversalMode::kBatched) {
    ++burst_total_;
    if (row_hit) ++burst_coalesced_;
  }
  if (!ok) {
    // Retry next tick: stay waiting with an empty response queue.
    counters_.Add("scanner_dram_stall");
    tick_dram_stall_ = true;
    sc.waiting = false;
    return;
  }
}

uint64_t SkiplistPipeline::NextWakeCycle(uint64_t now) const {
  // Queued responses/acks and admissions process next tick.
  if (!install_ack_.empty() || !keyfetch_resp_.empty()) return now + 1;
  if (!pending_in_.empty() && !free_slots_.empty()) return now + 1;
  // Installs with unissued link writes retry every tick (DRAM rejects
  // bump counters); installs waiting purely on acks are quiescent.
  for (uint32_t slot : installing_) {
    if (!pool_[slot].writes_left.empty()) return now + 1;
  }
  for (const Stage& s : stages_) {
    if (!s.cur_op.has_value()) {
      if (!s.in.empty()) return now + 1;
      continue;
    }
    const Op& op = pool_[*s.cur_op];
    switch (s.wait) {
      case Wait::kNone:
        return now + 1;  // Advance acts on cached data
      case Wait::kLoad:
      case Wait::kNext:
        if (!s.resp.empty()) return now + 1;
        break;  // pure DRAM wait
      case Wait::kLockMove:
        if (!lock_table_.HeldByOther(
                SkiplistLockKey(s.pending_next, uint32_t(op.level)),
                *s.cur_op)) {
          return now + 1;  // lock freed: the re-read issues next tick
        }
        break;  // quiescent lock stall (bulk-counted in SkipCycles)
      case Wait::kLockDown:
        if (!lock_table_.HeldByOther(
                SkiplistLockKey(op.cur, uint32_t(op.level)), *s.cur_op)) {
          return now + 1;
        }
        break;
    }
  }
  for (const Scanner& sc : scanners_) {
    if (sc.cur_op.has_value()) {
      if (!sc.waiting || !sc.resp.empty()) return now + 1;
    } else if (!sc.in.empty()) {
      return now + 1;
    }
  }
  if (config_.traversal == TraversalMode::kBatched) {
    uint64_t wake = sim::kNeverWakes;
    for (const Batch& b : batches_) {
      if (b.phase == Batch::Phase::kIdle) continue;
      if (!b.key_resp.empty() || !b.fetch_resp.empty()) return now + 1;
      switch (b.phase) {
        case Batch::Phase::kCollect:
          // Quiescent until the flush timeout (or a new admission, which
          // the pending_in_ check above already covers).
          wake = std::min(wake, b.flush_deadline);
          break;
        case Batch::Phase::kKeys:
          if (b.outstanding == 0) return now + 1;  // sort + walk act
          break;  // pure DRAM wait on key reads
        case Batch::Phase::kWalk:
          // Unissued fetches retry every tick; a drained walk acts.
          if (!b.fetch_queue.empty() || b.outstanding == 0) return now + 1;
          break;
        default:
          break;
      }
    }
    if (wake != sim::kNeverWakes) return std::max(wake, now + 1);
  }
  return sim::kNeverWakes;
}

void SkiplistPipeline::SkipCycles(uint64_t now, uint64_t count) {
  (void)now;
  if (active_ > 0 || !pending_in_.empty()) {
    busy_cycles_ += count;
    occupancy_sum_ += uint64_t(active_) * count;
  }
  bool hazard = false;
  for (const Stage& s : stages_) {
    if (!s.cur_op.has_value()) continue;
    const Op& op = pool_[*s.cur_op];
    const bool lock_stalled =
        (s.wait == Wait::kLockMove &&
         lock_table_.HeldByOther(
             SkiplistLockKey(s.pending_next, uint32_t(op.level)),
             *s.cur_op)) ||
        (s.wait == Wait::kLockDown &&
         lock_table_.HeldByOther(
             SkiplistLockKey(op.cur, uint32_t(op.level)), *s.cur_op));
    if (lock_stalled) {
      counters_.Add("lock_stall_cycles", count);
      hazard = true;
    }
  }
  tick_dram_stall_ = false;
  tick_hazard_stall_ = hazard;
}

void SkiplistPipeline::CollectStats(StatsScope scope) const {
  scope.SetCounter("busy_cycles", busy_cycles_);
  scope.SetCounter("pool_size", config_.pool_size);
  scope.SetCounter("n_stages", config_.n_stages);
  scope.SetCounter("n_scanners", config_.n_scanners);
  scope.SetGauge("mean_occupancy",
                 busy_cycles_ > 0
                     ? double(occupancy_sum_) / double(busy_cycles_)
                     : 0);
  scope.MergeCounterSet(counters_);
  // Batched-only subtree: per-op runs keep their stats JSON byte-identical
  // to a build without the batch unit.
  if (config_.traversal == TraversalMode::kBatched) {
    StatsScope b = scope.Sub("batch");
    b.SetCounter("batches_flushed", batches_flushed_);
    b.SetCounter("flush_full", batch_flush_full_);
    b.SetCounter("flush_timeout", batch_flush_timeout_);
    b.SetCounter("flush_batch_end", batch_flush_end_);
    b.SetCounter("burst_total_accesses", burst_total_);
    b.SetCounter("burst_coalesced_accesses", burst_coalesced_);
    b.SetSummary("probes_per_batch", probes_per_batch_);
  }
}

}  // namespace bionicdb::index
