#include "index/coprocessor.h"

namespace bionicdb::index {

IndexCoprocessor::IndexCoprocessor(db::Database* db,
                                   db::PartitionId partition, Config config)
    : sim::Component("coproc/p" + std::to_string(partition)),
      db_(db),
      partition_(partition),
      config_(config) {
  hash_ = std::make_unique<HashPipeline>(db, partition, config.hash,
                                         &results_);
  skiplist_ = std::make_unique<SkiplistPipeline>(db, partition,
                                                 config.skiplist, &results_);
}

bool IndexCoprocessor::Submit(const DbOp& op) {
  if (inflight() >= config_.max_inflight) {
    counters_.Add("cap_rejects");
    return false;
  }
  const db::TableSchema* schema = db_->catalogue().FindTable(op.table);
  if (schema == nullptr) {
    DbResult r;
    r.origin_worker = op.origin_worker;
    r.cp_index = op.cp_index;
    r.txn_slot = op.txn_slot;
    r.status = isa::CpStatus::kError;
    r.is_remote = op.is_remote;
    r.sent_at = op.sent_at;
    results_.push_back(r);
    return true;
  }
  counters_.Add(op.is_remote ? "background_ops" : "foreground_ops");
  if (schema->index == db::IndexKind::kHash) {
    return hash_->Accept(op);
  }
  return skiplist_->Accept(op);
}

void IndexCoprocessor::Tick(uint64_t cycle) {
  hash_->Tick(cycle);
  skiplist_->Tick(cycle);
}

void IndexCoprocessor::CollectStats(StatsScope scope) const {
  scope.SetCounter("max_inflight", config_.max_inflight);
  scope.MergeCounterSet(counters_);
  hash_->CollectStats(scope.Sub("hash"));
  skiplist_->CollectStats(scope.Sub("skiplist"));
}

}  // namespace bionicdb::index
