#include "index/coprocessor.h"

#include "cc/cc_unit.h"

namespace bionicdb::index {

IndexCoprocessor::IndexCoprocessor(db::Database* db,
                                   db::PartitionId partition, Config config)
    : sim::Component("coproc/p" + std::to_string(partition)),
      db_(db),
      partition_(partition),
      config_(config) {
  config_.hash.cc_unit = config_.cc_unit;
  config_.skiplist.cc_unit = config_.cc_unit;
  config_.hash.traversal = config_.traversal;
  config_.skiplist.traversal = config_.traversal;
  config_.hash.batch_size = config_.batch_size;
  config_.skiplist.batch_size = config_.batch_size;
  config_.hash.batch_timeout_cycles = config_.batch_timeout_cycles;
  config_.skiplist.batch_timeout_cycles = config_.batch_timeout_cycles;
  hash_ = std::make_unique<HashPipeline>(db, partition, config_.hash,
                                         &results_);
  skiplist_ = std::make_unique<SkiplistPipeline>(db, partition,
                                                 config_.skiplist, &results_);
}

bool IndexCoprocessor::Submit(const comm::Envelope& env) {
  if (inflight() >= config_.max_inflight) {
    counters_.Add("cap_rejects");
    return false;
  }
  const db::TableSchema* schema =
      db_->catalogue().FindTable(env.index_op().table);
  if (schema == nullptr) {
    comm::IndexResult r;
    r.status = isa::CpStatus::kError;
    results_.push_back(comm::Envelope::Reply(env, r));
    return true;
  }
  // Background = shipped here by a remote initiator; the header is the
  // single source of truth for remoteness (origin != serving partition).
  (env.hdr.origin != partition_ ? fc_background_ops_ : fc_foreground_ops_)
      .Add();
  if (schema->index == db::IndexKind::kHash) {
    return hash_->Accept(env);
  }
  return skiplist_->Accept(env);
}

void IndexCoprocessor::Tick(uint64_t cycle) {
  hash_->Tick(cycle);
  skiplist_->Tick(cycle);
}

void IndexCoprocessor::CollectStats(StatsScope scope) const {
  scope.SetCounter("max_inflight", config_.max_inflight);
  scope.MergeCounterSet(counters_);
  hash_->CollectStats(scope.Sub("hash"));
  skiplist_->CollectStats(scope.Sub("skiplist"));
  if (config_.cc_unit != nullptr) {
    config_.cc_unit->CollectStats(scope.Sub("cc"));
  }
}

}  // namespace bionicdb::index
