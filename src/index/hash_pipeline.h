// The hardware hash-index pipeline (paper section 4.4.1, Figures 5a/6).
//
// Point operations are decomposed into pipeline stages, each a finite-state
// machine woken by data arriving from DRAM:
//
//   KeyFetch --> Hash --+--> Install                     (INSERT)
//                       +--> HeadFetch -> KeyComp -> Traverse*  (others)
//
//  * KeyFetch  reads the search key from the transaction block.
//  * Hash      computes the Sdbm hash, checks the hazard lock table, and
//              issues the bucket-head read (destination: Install for
//              INSERTs, HeadFetch otherwise).
//  * Install   prepends the new tuple to the chain and publishes the new
//              bucket head.
//  * HeadFetch returns NotFound on empty buckets, else reads the first
//              chain node.
//  * KeyComp   compares the key; on a match it runs the visibility check,
//              otherwise hands the op to a Traverse unit.
//  * Traverse  follows the conflict chain; decoupled so a long chain never
//              blocks ops that terminate at KeyComp. Multiple units can be
//              populated for chain-heavy workloads.
//
// Hazard prevention: in-flight INSERTs that passed the Hash stage hold a
// lock on their bucket in a BRAM lock table; any op hashing to a locked
// bucket stalls at Hash until the insert's terminal stage releases it.
// Disabling `hazard_prevention` (an ablation/testing knob) reproduces the
// paper's insert-after-insert and search-after-insert hazards.
//
// Every op in flight occupies one slot of a bounded pool; the coprocessor
// enforces the experiment-level in-flight cap on top of this.
#ifndef BIONICDB_INDEX_HASH_PIPELINE_H_
#define BIONICDB_INDEX_HASH_PIPELINE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "db/database.h"
#include "index/db_op.h"
#include "index/lock_table.h"
#include "sim/component.h"
#include "sim/config.h"
#include "sim/arena.h"
#include "sim/memory.h"

namespace bionicdb::cc {
class CcUnit;
}  // namespace bionicdb::cc

namespace bionicdb::index {

class HashPipeline {
 public:
  struct Config {
    /// Op-state slots (BRAM). This is the pipeline's internal capacity:
    /// the paper observes saturation between 12 and 16 in-flight requests
    /// ("3 or 4 in-flight requests between pipeline stages"), so the
    /// default bounds the design the same way; the coprocessor-level
    /// in-flight cap sweeps below it.
    uint32_t pool_size = 16;
    uint32_t n_traverse_units = 1;
    bool hazard_prevention = true;
    /// CC-policy extension (the paper's section 4.7 CC "blindly rejects"
    /// any access to a dirty tuple, which abort-storms hot rows like TPC-C
    /// Payment's warehouse). When non-zero, an op hitting a dirty tuple
    /// parks for up to this many cycles, re-polling the header every
    /// `dirty_poll_interval`; a timeout falls back to the blind reject
    /// (which also breaks cross-transaction wait cycles). 0 = paper
    /// behaviour.
    uint32_t dirty_wait_cycles = 0;
    uint32_t dirty_poll_interval = 16;
    /// Partition-local CC unit (engine-owned). Null or kTimestamp keeps
    /// the historical inline T/O check; kSgt/kMvcc route the terminal
    /// visibility step through cc::CcUnit::CheckAccess.
    cc::CcUnit* cc_unit = nullptr;
    /// Traversal strategy (DESIGN.md section 17). kBatched collects
    /// non-insert probes into bucket-sorted batches whose DRAM accesses
    /// coalesce into row-hit bursts; kPerOp is the paper pipeline.
    /// Inserts always take the per-op install path (they mutate the
    /// bucket chain under the hazard lock).
    TraversalMode traversal = TraversalMode::kPerOp;
    /// kBatched: probes per batch; the collector flushes when full.
    uint32_t batch_size = 8;
    /// kBatched: a partial batch flushes this many cycles after its first
    /// probe arrived. Bounds tail latency and guarantees progress when the
    /// softcore holds its commit barrier behind a collected probe.
    uint64_t batch_timeout_cycles = 128;
  };

  HashPipeline(db::Database* db, db::PartitionId partition,
               Config config, ResultQueue* results);

  /// Admits a new kIndexOp envelope into KeyFetch. False when the slot
  /// pool is exhausted.
  bool Accept(const comm::Envelope& env);

  void Tick(uint64_t now);
  bool Idle() const { return active_ == 0 && pending_in_.empty(); }

  /// Event-driven scheduling hint (contract in sim/component.h): the next
  /// cycle at which a Tick would do more than the per-cycle accounting
  /// SkipCycles reproduces. Mirrors each stage's control flow: any stage
  /// with a queued response/ack, a pending admission with a free slot, or
  /// a DRAM-reject retry (retries bump DRAM reject counters) wants the
  /// very next cycle; a Hash stage stalled behind a hazard lock and
  /// dirty-waiters between polls are quiescent.
  uint64_t NextWakeCycle(uint64_t now) const;
  /// Bulk-applies the busy/occupancy accounting and per-cycle stall
  /// counters/flags for skipped cycles now+1 .. now+count.
  void SkipCycles(uint64_t now, uint64_t count);

  uint32_t active_ops() const { return active_; }
  /// Ops inside the pipeline or queued at its entrance (for the
  /// coprocessor-level in-flight cap).
  uint32_t queued_ops() const {
    return active_ + uint32_t(pending_in_.size());
  }

  CounterSet& counters() { return counters_; }

  /// Per-tick stall attribution, valid after Tick(now) for that cycle:
  /// true when some op failed to make progress this cycle because a DRAM
  /// issue was rejected (backpressure) / because it stalled behind a
  /// hazard lock or a dirty tuple. The worker samples these to classify
  /// its cycle-breakdown buckets.
  bool dram_stalled() const { return tick_dram_stall_; }
  bool hazard_stalled() const { return tick_hazard_stall_; }

  /// Dumps stage counters, slot occupancy and stall totals under `scope`.
  void CollectStats(StatsScope scope) const;

 private:
  static constexpr uint32_t kNoBatch = UINT32_MAX;

  struct Op {
    comm::Envelope req;  // the kIndexOp envelope being served
    uint64_t hash = 0;
    sim::Addr bucket_slot = sim::kNullAddr;
    sim::Addr cur = sim::kNullAddr;        // current chain node
    sim::Addr new_tuple = sim::kNullAddr;  // INSERT: tuple being installed
    uint32_t batch = kNoBatch;             // kBatched: owning batch index
    bool holds_lock = false;
    bool in_use = false;
  };

  uint32_t AllocSlot(const comm::Envelope& env);
  void FreeSlot(uint32_t slot);
  /// Builds the kIndexResult reply envelope (header echoed from the
  /// request) and retires the slot.
  void Emit(uint32_t slot, isa::CpStatus status, uint64_t payload,
            cc::WriteKind kind, sim::Addr tuple_addr);
  /// Terminal visibility check + result emission for a matched tuple.
  void FinishAccess(uint64_t now, uint32_t slot, sim::Addr tuple_addr);
  /// Fire-and-forget DRAM write (bandwidth accounting only).
  void PostWrite(uint64_t now, sim::Addr addr);

  void TickKeyFetch(uint64_t now);
  void TickHash(uint64_t now);
  void TickInstall(uint64_t now);
  void TickHeadFetch(uint64_t now);
  void TickKeyComp(uint64_t now);
  void TickTraverse(uint64_t now, uint32_t unit);
  void TickDirtyWaiters(uint64_t now);

  /// Hash-stage second half: hazard check + bucket read issue. Returns
  /// false when the op must stall at the Hash stage.
  bool TryPassHashStage(uint64_t now, uint32_t slot);
  /// Compares op's key against op.cur; finishes on match or end-of-chain.
  /// Returns true when the op terminated, false when it must follow the
  /// chain (op.cur advanced to the next node).
  bool CompareOrAdvance(uint64_t now, uint32_t slot);
  /// Hands an op whose first node mismatched to the least-loaded unit.
  void EnqueueTraverse(uint32_t slot);

  /// True when the Hash stage's head-of-line op is stalled on a hazard
  /// lock held by another slot (as opposed to a rejected DRAM issue).
  bool HashBlockedOnLock() const;

  db::Database* db_;
  sim::DramMemory* dram_;
  db::PartitionId partition_;
  Config config_;
  ResultQueue* results_;

  std::vector<Op> pool_;
  std::vector<uint32_t> free_slots_;
  uint32_t active_ = 0;
  sim::RingQueue<comm::Envelope> pending_in_;

  LockTable lock_table_;

  /// A Traverse unit is an FSM that owns ONE op at a time while it chases
  /// the conflict chain (multiple memory stalls per op) — this is why the
  /// paper suggests populating several "for balanced dataflow" on
  /// chain-heavy workloads.
  struct TraverseUnit {
    sim::RingQueue<uint32_t> in;
    std::optional<uint32_t> cur_op;
    bool waiting = false;  // a chain read is in flight
    sim::MemResponseQueue resp;
  };

  sim::MemResponseQueue hash_resp_;
  sim::MemResponseQueue install_resp_;
  sim::MemResponseQueue install_ack_;  // bucket-head write completions
  sim::MemResponseQueue headfetch_resp_;
  sim::MemResponseQueue keycomp_resp_;
  std::vector<TraverseUnit> traverse_units_;

  // Head-of-line blocked item per stage (pipeline stall).
  std::optional<uint32_t> hash_blocked_;
  std::optional<uint32_t> install_blocked_;
  std::optional<uint32_t> headfetch_blocked_;

  // Ops parked on a dirty tuple under the wait-on-dirty CC policy.
  struct DirtyWaiter {
    uint32_t slot;
    sim::Addr tuple;
    uint64_t deadline;
    uint64_t next_poll;
  };
  std::vector<DirtyWaiter> dirty_waiters_;

  // --- kBatched traversal state (DESIGN.md section 17) -----------------
  //
  // A batch flows collect -> keys -> buckets -> nodes. Key reads are
  // issued at admission (they overlap collection); after the flush the
  // batch sorts its members by bucket slot and issues the bucket reads as
  // one burst train (same-row successors charged at the DRAM row-hit
  // cost), then does the same for the first chain nodes sorted by
  // address. Chain continuations beyond the first node hand off to the
  // per-op Traverse units, and every match still runs FinishAccess —
  // visibility/CC per tuple, exactly as kPerOp.
  struct Batch {
    enum class Phase : uint8_t { kIdle, kCollect, kKeys, kBuckets, kNodes };
    Phase phase = Phase::kIdle;
    std::vector<uint32_t> members;       // slots, admission order then sorted
    std::vector<uint32_t> node_members;  // members with a non-null head
    std::vector<uint32_t> deferred;      // bucket reads stalled on a hazard lock
    uint32_t next_issue = 0;             // first member without an issued read
    uint32_t outstanding = 0;            // reads in flight for this batch
    uint32_t live = 0;                   // members still in batch custody
    uint64_t flush_deadline = 0;
    BurstIssuer burst;
  };

  /// Admits the head of pending_in_ in kBatched mode: inserts go down the
  /// per-op install path, everything else joins the collecting batch.
  void TickBatchAdmit(uint64_t now);
  /// Drains batch response queues and advances every batch's phase FSM.
  void TickBatchExec(uint64_t now);
  void FlushCollect();
  void RetireBatch(Batch* b);
  /// Issues the sorted burst train for a batch's current phase; returns
  /// false on DRAM backpressure (retry next tick from the same member).
  void IssueBatchReads(uint64_t now, uint32_t batch_idx);

  std::vector<Batch> batches_;
  uint32_t collect_ = kNoBatch;  // batch currently collecting, if any
  sim::MemResponseQueue batch_key_resp_;
  sim::MemResponseQueue batch_data_resp_;
  // Batch stats, plain fields emitted only in kBatched mode so per-op
  // stats JSON stays byte-identical to pre-batch builds.
  uint64_t batches_flushed_ = 0;
  uint64_t batch_flush_full_ = 0;
  uint64_t batch_flush_timeout_ = 0;
  uint64_t batch_flush_end_ = 0;
  uint64_t burst_total_ = 0;
  uint64_t burst_coalesced_ = 0;
  Summary probes_per_batch_;

  CounterSet counters_;
  // Lazy slot handles for counters on the per-op/per-cycle hot path
  // (common/stats.h FastCounter): bound on first increment, so JSON
  // presence matches the plain string Adds they replace.
  FastCounter fc_ops_admitted_{&counters_, "ops_admitted"};
  FastCounter fc_hash_stage_{&counters_, "hash_stage_ops"};
  FastCounter fc_headfetch_stage_{&counters_, "headfetch_stage_ops"};
  FastCounter fc_keycomp_stage_{&counters_, "keycomp_stage_ops"};
  FastCounter fc_traverse_stage_{&counters_, "traverse_stage_ops"};
  FastCounter fc_install_stage_{&counters_, "install_stage_ops"};
  FastCounter fc_hash_lock_stall_{&counters_, "hash_lock_stall_cycles"};
  FastCounter fc_hash_dram_stall_{&counters_, "hash_dram_stall"};
  FastCounter fc_keyfetch_dram_stall_{&counters_, "keyfetch_dram_stall"};
  FastCounter fc_headfetch_dram_stall_{&counters_, "headfetch_dram_stall"};
  FastCounter fc_traverse_dram_stall_{&counters_, "traverse_dram_stall"};
  // Cycle accounting (plain fields: these are touched every tick, where a
  // string-keyed counter lookup would be measurable).
  uint64_t busy_cycles_ = 0;     // ticks with ops in flight or queued
  uint64_t occupancy_sum_ = 0;   // sum of active_ over busy ticks
  bool tick_dram_stall_ = false;
  bool tick_hazard_stall_ = false;
};

}  // namespace bionicdb::index

#endif  // BIONICDB_INDEX_HASH_PIPELINE_H_
