// The hardware skiplist pipeline (paper section 4.4.2, Figures 5b/7).
//
// The skiplist's levels are partitioned into exclusive ranges, one per
// pipeline stage; stage 0 owns the top levels and the last stage owns level
// 0. An op traverses horizontally inside a stage's range (each new tower
// visited costs one DRAM access; drilling down on a cached tower is free)
// and is handed to the next stage when it leaves the range. Unlike the
// hash pipeline, a traversal stage works on ONE op at a time — horizontal
// pointer chasing keeps a stage occupied across multiple memory stalls, so
// index parallelism is bound by pipeline depth (this reproduces the Fig.
// 11a saturation at ~8 in-flight ops).
//
// Range binding: upper stages cover more levels than lower ones, since
// towers thin out exponentially toward the top (the paper's "balanced
// pipelining" guidance).
//
// INSERT records its insert path — predecessor AND successor per level
// below the new tower's height — in stage BRAM, and the bottom stage
// installs the tower from that recorded path. Hazard prevention locks each
// recorded (pred tower, level) in a lock table; any other in-flight INSERT
// reaching a locked position stalls, then re-reads the tower before
// proceeding. With prevention disabled, racing inserts overwrite each
// other's recorded paths and towers vanish from upper levels (Fig. 7a).
//
// SCAN is stall-free: it takes no locks, reaches the bottom level through
// the normal stages (which serialise it with respect to all earlier
// inserts), and is handed to a dedicated scanner module that walks the
// bottom list collecting committed visible tuples into the transaction
// block's result buffer. Scanners are the scan-throughput bottleneck; the
// number of scanner units is configurable (paper section 5.5 estimates
// "at least 5" to catch the software skiplist).
#ifndef BIONICDB_INDEX_SKIPLIST_PIPELINE_H_
#define BIONICDB_INDEX_SKIPLIST_PIPELINE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "db/database.h"
#include "db/skiplist_layout.h"
#include "index/db_op.h"
#include "index/lock_table.h"
#include "sim/component.h"
#include "sim/config.h"
#include "sim/arena.h"
#include "sim/memory.h"

namespace bionicdb::cc {
class CcUnit;
}  // namespace bionicdb::cc

namespace bionicdb::index {

class SkiplistPipeline {
 public:
  struct Config {
    uint32_t pool_size = 64;
    uint32_t n_stages = 8;
    uint32_t n_scanners = 1;
    bool hazard_prevention = true;
    /// Traversal strategy (DESIGN.md section 17). kBatched collects
    /// non-insert probes into level-wise batches: one timed DRAM fetch per
    /// unique tower per batch (members walk shared fetches functionally),
    /// issued key-sorted so the BurstIssuer coalesces same-row reads.
    /// Inserts keep the staged per-op path in both modes — the recorded
    /// insert path and hazard locks do not batch.
    TraversalMode traversal = TraversalMode::kPerOp;
    uint32_t batch_size = 8;
    uint64_t batch_timeout_cycles = 128;
    /// Partition-local CC unit (engine-owned); see HashPipeline::Config.
    cc::CcUnit* cc_unit = nullptr;
  };

  SkiplistPipeline(db::Database* db, db::PartitionId partition,
                   Config config, ResultQueue* results);

  /// Admits a new kIndexOp envelope. False when the slot pool is
  /// exhausted.
  bool Accept(const comm::Envelope& env);

  void Tick(uint64_t now);
  bool Idle() const { return active_ == 0 && pending_in_.empty(); }

  /// Event-driven scheduling hint (contract in sim/component.h). Any stage
  /// or scanner holding cached work, a queued response, a pending
  /// admission with a free slot, or a DRAM-reject retry wants the next
  /// cycle; stages stalled on hazard path locks and installs waiting only
  /// on write acks are quiescent until another block's wake point.
  uint64_t NextWakeCycle(uint64_t now) const;
  /// Bulk-applies busy/occupancy accounting and per-cycle lock-stall
  /// counters/flags for skipped cycles now+1 .. now+count.
  void SkipCycles(uint64_t now, uint64_t count);

  uint32_t active_ops() const { return active_; }
  /// Ops inside the pipeline or queued at its entrance (for the
  /// coprocessor-level in-flight cap).
  uint32_t queued_ops() const {
    return active_ + uint32_t(pending_in_.size());
  }

  CounterSet& counters() { return counters_; }

  /// Per-tick stall attribution, valid after Tick(now) for that cycle:
  /// true when some op failed to make progress this cycle because a DRAM
  /// issue was rejected / because it stalled behind a hazard path lock.
  bool dram_stalled() const { return tick_dram_stall_; }
  bool hazard_stalled() const { return tick_hazard_stall_; }

  /// Dumps stage counters, slot occupancy and stall totals under `scope`.
  void CollectStats(StatsScope scope) const;

  /// Level range covered by stage `i` (exposed for tests).
  std::pair<int, int> StageRange(uint32_t i) const {
    return {stages_[i].lo, stages_[i].hi};
  }

  /// Scans ever assigned to scanner `i` (exposed for tests: the
  /// shortest-queue/round-robin dispatcher must not starve a scanner).
  uint64_t ScannerDispatched(uint32_t i) const {
    return scanners_[i].dispatched;
  }

 private:
  /// Number of 64-bit words in a full tower snapshot: 3 header words +
  /// every possible link slot.
  static constexpr uint32_t kTowerSnapshotWords =
      3 + db::kSkiplistMaxHeight;

  struct Op {
    comm::Envelope req;  // the kIndexOp envelope being served
    std::vector<uint8_t> key;
    sim::Addr cur = sim::kNullAddr;
    int level = 0;
    uint8_t new_height = 0;  // INSERT
    sim::Addr preds[db::kSkiplistMaxHeight] = {};
    sim::Addr succs[db::kSkiplistMaxHeight] = {};
    std::vector<uint64_t> cur_links;  // snapshot of cur's link words
    std::vector<uint64_t> held_locks;
    // Install state (delayed link writes; locks held until all complete).
    sim::Addr new_tuple = sim::kNullAddr;
    uint32_t acks_left = 0;
    std::vector<std::pair<sim::Addr, uint64_t>> writes_left;
    // Scanner state.
    uint32_t collected = 0;
    bool in_use = false;
  };

  enum class Wait : uint8_t {
    kNone,      // ready to advance with cached data
    kLoad,      // waiting for a (re)load of op.cur
    kNext,      // waiting for the candidate next tower
    kLockMove,  // stalled on a locked next tower (will re-read it)
    kLockDown,  // stalled on a locked pred (will re-read op.cur)
  };

  struct Stage {
    int hi = 0;
    int lo = 0;
    sim::RingQueue<uint32_t> in;
    std::optional<uint32_t> cur_op;
    Wait wait = Wait::kNone;
    sim::Addr pending_next = sim::kNullAddr;
    sim::MemResponseQueue resp;
  };

  struct Scanner {
    sim::RingQueue<uint32_t> in;
    std::optional<uint32_t> cur_op;
    bool waiting = false;
    sim::MemResponseQueue resp;
    uint64_t dispatched = 0;  // scans ever assigned to this scanner
  };

  /// Departed-member sentinel inside Batch::members (emitted mid-batch or
  /// handed to a scanner; the pool slot may already be reused).
  static constexpr uint32_t kNoMember = UINT32_MAX;

  /// One level-wise batch context (kBatched). Four contexts overlap so a
  /// flushed batch walks levels while the next one collects — the
  /// inter-operation pipelining leg of the bench ablation.
  struct Batch {
    enum class Phase : uint8_t { kIdle, kCollect, kKeys, kWalk };
    /// Per-batch tower cache entry: queued/in-flight timed fetches and the
    /// functional outcome once the response lands.
    struct Tower {
      enum class St : uint8_t { kQueued, kInflight, kReady, kCorrupt };
      St st = St::kQueued;
      bool verify = true;  // heads have no integrity guard
    };
    Phase phase = Phase::kIdle;
    std::vector<uint32_t> members;  // key-sorted after flush; kNoMember gaps
    uint32_t outstanding = 0;       // key reads / tower fetches in flight
    uint32_t live = 0;              // members still walking
    int level = 0;                  // current level of the level-wise walk
    uint64_t flush_deadline = 0;
    std::vector<sim::Addr> fetch_queue;  // unissued tower fetches, in
                                         // member-sorted discovery order
    std::map<sim::Addr, Tower> towers;
    BurstIssuer burst;
    sim::MemResponseQueue key_resp;
    sim::MemResponseQueue fetch_resp;
  };

  uint32_t AllocSlot(const comm::Envelope& env);
  void FreeSlot(uint32_t slot);
  void Emit(uint32_t slot, isa::CpStatus status, uint64_t payload,
            cc::WriteKind kind, sim::Addr tuple_addr);
  void PostWrite(uint64_t now, sim::Addr addr);

  db::SkiplistLayout* Layout(const Op& op) const;
  static std::vector<uint64_t> LinksFromSnapshot(
      const sim::MemWords& words);

  void TickKeyFetch(uint64_t now);
  void TickStage(uint64_t now, uint32_t stage_idx);
  void TickScanner(uint64_t now, uint32_t scanner_idx);
  void TickInstalls(uint64_t now);

  // --- kBatched traversal (DESIGN.md section 17) -----------------------
  /// Admits one op per cycle in batched mode: inserts take the per-op
  /// key-fetch path; probes join the collecting batch (key read issued at
  /// admission through the batch's BurstIssuer). Also applies the
  /// collector's flush timeout.
  void TickBatchAdmit(uint64_t now);
  /// Drains batch responses and drives every non-idle batch's walk.
  void TickBatchExec(uint64_t now);
  /// Seals the collecting batch: no more members, walk starts once the
  /// outstanding key reads land.
  void FlushCollect();
  void RetireBatch(Batch* b);
  /// Records a once-per-batch timed fetch of `addr` (deduped through the
  /// batch tower cache); `verify` guards the integrity check (heads have
  /// no tuple guard).
  void RequestFetch(Batch* b, sim::Addr addr, bool verify);
  /// Advances every live member at the batch's current level using the
  /// tower cache, queues missing fetches, and applies the per-level
  /// barrier (descend / terminal round / retire). Returns true while
  /// repeated invocation this tick can still make progress.
  bool WalkBatch(uint64_t now, Batch* b);

  /// Drives the op inside a stage until it needs DRAM, stalls on a lock, or
  /// leaves the stage.
  void Advance(uint64_t now, Stage* stage);
  /// Handles the arrival of the candidate next tower in `resp_data`.
  void NextArrived(uint64_t now, Stage* stage,
                   const sim::MemWords& words);
  /// Hands the op to the next stage / terminal action when level < lo.
  void LeaveStage(uint64_t now, Stage* stage);
  /// Bottom-of-list terminal work: point-op visibility, insert install, or
  /// scanner hand-off.
  void Terminal(uint64_t now, uint32_t slot);
  void FinishAccess(uint64_t now, uint32_t slot, sim::Addr tuple_addr);

  int CompareProbe(const Op& op, sim::Addr tower) const;

  db::Database* db_;
  sim::DramMemory* dram_;
  db::PartitionId partition_;
  Config config_;
  ResultQueue* results_;

  std::vector<Op> pool_;
  std::vector<uint32_t> free_slots_;
  uint32_t active_ = 0;
  sim::RingQueue<comm::Envelope> pending_in_;
  sim::MemResponseQueue keyfetch_resp_;

  std::vector<Stage> stages_;
  std::vector<Scanner> scanners_;
  uint32_t scanner_rr_ = 0;

  // Batched-traversal state (empty/zero in kPerOp mode).
  std::vector<Batch> batches_;
  uint32_t collect_ = UINT32_MAX;  // batch index currently collecting
  // Batch stats (plain fields, emitted only in kBatched mode so per-op
  // stats JSON stays identical to the per-op-only build).
  uint64_t batches_flushed_ = 0;
  uint64_t batch_flush_full_ = 0;
  uint64_t batch_flush_timeout_ = 0;
  uint64_t batch_flush_end_ = 0;
  uint64_t burst_total_ = 0;
  uint64_t burst_coalesced_ = 0;
  Summary probes_per_batch_;

  // Inserts whose link writes are in flight (locks still held).
  sim::MemResponseQueue install_ack_;
  std::vector<uint32_t> installing_;

  LockTable lock_table_;
  CounterSet counters_;
  // Cycle accounting (plain fields: touched every tick, where a
  // string-keyed counter lookup would be measurable).
  uint64_t busy_cycles_ = 0;     // ticks with ops in flight or queued
  uint64_t occupancy_sum_ = 0;   // sum of active_ over busy ticks
  bool tick_dram_stall_ = false;
  bool tick_hazard_stall_ = false;
};

}  // namespace bionicdb::index

#endif  // BIONICDB_INDEX_SKIPLIST_PIPELINE_H_
