// The hardware skiplist pipeline (paper section 4.4.2, Figures 5b/7).
//
// The skiplist's levels are partitioned into exclusive ranges, one per
// pipeline stage; stage 0 owns the top levels and the last stage owns level
// 0. An op traverses horizontally inside a stage's range (each new tower
// visited costs one DRAM access; drilling down on a cached tower is free)
// and is handed to the next stage when it leaves the range. Unlike the
// hash pipeline, a traversal stage works on ONE op at a time — horizontal
// pointer chasing keeps a stage occupied across multiple memory stalls, so
// index parallelism is bound by pipeline depth (this reproduces the Fig.
// 11a saturation at ~8 in-flight ops).
//
// Range binding: upper stages cover more levels than lower ones, since
// towers thin out exponentially toward the top (the paper's "balanced
// pipelining" guidance).
//
// INSERT records its insert path — predecessor AND successor per level
// below the new tower's height — in stage BRAM, and the bottom stage
// installs the tower from that recorded path. Hazard prevention locks each
// recorded (pred tower, level) in a lock table; any other in-flight INSERT
// reaching a locked position stalls, then re-reads the tower before
// proceeding. With prevention disabled, racing inserts overwrite each
// other's recorded paths and towers vanish from upper levels (Fig. 7a).
//
// SCAN is stall-free: it takes no locks, reaches the bottom level through
// the normal stages (which serialise it with respect to all earlier
// inserts), and is handed to a dedicated scanner module that walks the
// bottom list collecting committed visible tuples into the transaction
// block's result buffer. Scanners are the scan-throughput bottleneck; the
// number of scanner units is configurable (paper section 5.5 estimates
// "at least 5" to catch the software skiplist).
#ifndef BIONICDB_INDEX_SKIPLIST_PIPELINE_H_
#define BIONICDB_INDEX_SKIPLIST_PIPELINE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "db/database.h"
#include "db/skiplist_layout.h"
#include "index/db_op.h"
#include "index/lock_table.h"
#include "sim/component.h"
#include "sim/config.h"
#include "sim/arena.h"
#include "sim/memory.h"

namespace bionicdb::cc {
class CcUnit;
}  // namespace bionicdb::cc

namespace bionicdb::index {

class SkiplistPipeline {
 public:
  struct Config {
    uint32_t pool_size = 64;
    uint32_t n_stages = 8;
    uint32_t n_scanners = 1;
    bool hazard_prevention = true;
    /// Partition-local CC unit (engine-owned); see HashPipeline::Config.
    cc::CcUnit* cc_unit = nullptr;
  };

  SkiplistPipeline(db::Database* db, db::PartitionId partition,
                   Config config, ResultQueue* results);

  /// Admits a new kIndexOp envelope. False when the slot pool is
  /// exhausted.
  bool Accept(const comm::Envelope& env);

  void Tick(uint64_t now);
  bool Idle() const { return active_ == 0 && pending_in_.empty(); }

  /// Event-driven scheduling hint (contract in sim/component.h). Any stage
  /// or scanner holding cached work, a queued response, a pending
  /// admission with a free slot, or a DRAM-reject retry wants the next
  /// cycle; stages stalled on hazard path locks and installs waiting only
  /// on write acks are quiescent until another block's wake point.
  uint64_t NextWakeCycle(uint64_t now) const;
  /// Bulk-applies busy/occupancy accounting and per-cycle lock-stall
  /// counters/flags for skipped cycles now+1 .. now+count.
  void SkipCycles(uint64_t now, uint64_t count);

  uint32_t active_ops() const { return active_; }
  /// Ops inside the pipeline or queued at its entrance (for the
  /// coprocessor-level in-flight cap).
  uint32_t queued_ops() const {
    return active_ + uint32_t(pending_in_.size());
  }

  CounterSet& counters() { return counters_; }

  /// Per-tick stall attribution, valid after Tick(now) for that cycle:
  /// true when some op failed to make progress this cycle because a DRAM
  /// issue was rejected / because it stalled behind a hazard path lock.
  bool dram_stalled() const { return tick_dram_stall_; }
  bool hazard_stalled() const { return tick_hazard_stall_; }

  /// Dumps stage counters, slot occupancy and stall totals under `scope`.
  void CollectStats(StatsScope scope) const;

  /// Level range covered by stage `i` (exposed for tests).
  std::pair<int, int> StageRange(uint32_t i) const {
    return {stages_[i].lo, stages_[i].hi};
  }

 private:
  /// Number of 64-bit words in a full tower snapshot: 3 header words +
  /// every possible link slot.
  static constexpr uint32_t kTowerSnapshotWords =
      3 + db::kSkiplistMaxHeight;

  struct Op {
    comm::Envelope req;  // the kIndexOp envelope being served
    std::vector<uint8_t> key;
    sim::Addr cur = sim::kNullAddr;
    int level = 0;
    uint8_t new_height = 0;  // INSERT
    sim::Addr preds[db::kSkiplistMaxHeight] = {};
    sim::Addr succs[db::kSkiplistMaxHeight] = {};
    std::vector<uint64_t> cur_links;  // snapshot of cur's link words
    std::vector<uint64_t> held_locks;
    // Install state (delayed link writes; locks held until all complete).
    sim::Addr new_tuple = sim::kNullAddr;
    uint32_t acks_left = 0;
    std::vector<std::pair<sim::Addr, uint64_t>> writes_left;
    // Scanner state.
    uint32_t collected = 0;
    bool in_use = false;
  };

  enum class Wait : uint8_t {
    kNone,      // ready to advance with cached data
    kLoad,      // waiting for a (re)load of op.cur
    kNext,      // waiting for the candidate next tower
    kLockMove,  // stalled on a locked next tower (will re-read it)
    kLockDown,  // stalled on a locked pred (will re-read op.cur)
  };

  struct Stage {
    int hi = 0;
    int lo = 0;
    sim::RingQueue<uint32_t> in;
    std::optional<uint32_t> cur_op;
    Wait wait = Wait::kNone;
    sim::Addr pending_next = sim::kNullAddr;
    sim::MemResponseQueue resp;
  };

  struct Scanner {
    sim::RingQueue<uint32_t> in;
    std::optional<uint32_t> cur_op;
    bool waiting = false;
    sim::MemResponseQueue resp;
  };

  uint32_t AllocSlot(const comm::Envelope& env);
  void FreeSlot(uint32_t slot);
  void Emit(uint32_t slot, isa::CpStatus status, uint64_t payload,
            cc::WriteKind kind, sim::Addr tuple_addr);
  void PostWrite(uint64_t now, sim::Addr addr);

  db::SkiplistLayout* Layout(const Op& op) const;
  static std::vector<uint64_t> LinksFromSnapshot(
      const sim::MemWords& words);

  void TickKeyFetch(uint64_t now);
  void TickStage(uint64_t now, uint32_t stage_idx);
  void TickScanner(uint64_t now, uint32_t scanner_idx);
  void TickInstalls(uint64_t now);

  /// Drives the op inside a stage until it needs DRAM, stalls on a lock, or
  /// leaves the stage.
  void Advance(uint64_t now, Stage* stage);
  /// Handles the arrival of the candidate next tower in `resp_data`.
  void NextArrived(uint64_t now, Stage* stage,
                   const sim::MemWords& words);
  /// Hands the op to the next stage / terminal action when level < lo.
  void LeaveStage(uint64_t now, Stage* stage);
  /// Bottom-of-list terminal work: point-op visibility, insert install, or
  /// scanner hand-off.
  void Terminal(uint64_t now, uint32_t slot);
  void FinishAccess(uint64_t now, uint32_t slot, sim::Addr tuple_addr);

  int CompareProbe(const Op& op, sim::Addr tower) const;

  db::Database* db_;
  sim::DramMemory* dram_;
  db::PartitionId partition_;
  Config config_;
  ResultQueue* results_;

  std::vector<Op> pool_;
  std::vector<uint32_t> free_slots_;
  uint32_t active_ = 0;
  sim::RingQueue<comm::Envelope> pending_in_;
  sim::MemResponseQueue keyfetch_resp_;

  std::vector<Stage> stages_;
  std::vector<Scanner> scanners_;
  uint32_t scanner_rr_ = 0;

  // Inserts whose link writes are in flight (locks still held).
  sim::MemResponseQueue install_ack_;
  std::vector<uint32_t> installing_;

  LockTable lock_table_;
  CounterSet counters_;
  // Cycle accounting (plain fields: touched every tick, where a
  // string-keyed counter lookup would be measurable).
  uint64_t busy_cycles_ = 0;     // ticks with ops in flight or queued
  uint64_t occupancy_sum_ = 0;   // sum of active_ over busy ticks
  bool tick_dram_stall_ = false;
  bool tick_hazard_stall_ = false;
};

}  // namespace bionicdb::index

#endif  // BIONICDB_INDEX_SKIPLIST_PIPELINE_H_
