#include "power/model.h"

#include <algorithm>
#include <cmath>

namespace bionicdb::power {

namespace {

// Table 4 totals for the paper's 4-worker design; per-worker costs are a
// quarter of each row.
constexpr uint64_t kWorkers4 = 4;

constexpr ResourceVector kHash4 = {12'932, 14'504, 24};
constexpr ResourceVector kSkiplist4 = {27'300, 35'968, 36};
constexpr ResourceVector kSoftcore4 = {7'080, 8'796, 12};
constexpr ResourceVector kCatalogue4 = {1'484, 1'964, 8};
constexpr ResourceVector kCommunication4 = {2'482, 3'191, 8};
constexpr ResourceVector kMemArbiters4 = {1'192, 5'800, 0};
constexpr ResourceVector kHc2Infrastructure = {98'507, 76'639, 103};

// Fraction of each index pipeline attributable to one scanner / traverse
// unit (the paper notes redundant scanners/Traverse stages can be
// populated; a unit share is the marginal cost of one more).
constexpr double kScannerShare = 1.0 / 9.0;   // 8 stages + 1 scanner
constexpr double kTraverseShare = 1.0 / 6.0;  // 6 hash stages

ResourceVector Scale(const ResourceVector& v, double f) {
  return {uint64_t(std::llround(double(v.flip_flops) * f)),
          uint64_t(std::llround(double(v.luts) * f)),
          uint64_t(std::llround(double(v.brams) * f))};
}

/// Scales a Table-4 (4-worker) row to `workers` workers without losing the
/// integer remainder (so the 4-worker design reproduces Table 4 exactly).
ResourceVector ForWorkers(const ResourceVector& four_worker_total,
                          uint64_t workers) {
  return Scale(four_worker_total, double(workers) / double(kWorkers4));
}

}  // namespace

Device Virtex5Lx330() { return {"Virtex-5 LX330", {207'360, 207'360, 288}}; }

Device VirtexUltrascalePlusVu9p() {
  // AWS F1's part: ~2.36 M FFs, ~1.18 M LUTs, 2160 BRAM36 tiles.
  return {"Virtex UltraScale+ VU9P", {2'364'480, 1'182'240, 2'160}};
}

Device IntelArria10Gx1150() {
  return {"Intel Arria 10 GX1150", {1'708'800, 854'400, 2'713}};
}

ResourceModel::ResourceModel(const DesignConfig& config) : config_(config) {}

std::vector<ModuleUsage> ResourceModel::ModuleBreakdown() const {
  const uint64_t w = config_.n_workers;
  double skiplist_scale =
      1.0 + kScannerShare * double(config_.n_scanners - 1);
  double hash_scale = 1.0 + kTraverseShare * double(config_.n_traverse_units - 1);
  std::vector<ModuleUsage> rows;
  rows.push_back({"Hash", Scale(ForWorkers(kHash4, w), hash_scale)});
  rows.push_back(
      {"Skiplist", Scale(ForWorkers(kSkiplist4, w), skiplist_scale)});
  rows.push_back({"Softcore", ForWorkers(kSoftcore4, w)});
  rows.push_back({"Catalogue", ForWorkers(kCatalogue4, w)});
  // The crossbar's cost grows with worker count (it "does not scale",
  // section 4.6): model it as linear in workers like the paper's 4-worker
  // figure, which underestimates large crossbars and is exactly why the
  // ring topology exists for the scaling projection.
  rows.push_back({"Communication", ForWorkers(kCommunication4, w)});
  rows.push_back({"Memory arbiters", ForWorkers(kMemArbiters4, w)});
  if (config_.include_hc2_infrastructure) {
    rows.push_back({"HC-2 modules", kHc2Infrastructure});
  }
  return rows;
}

ResourceVector ResourceModel::Total() const {
  ResourceVector total;
  for (const ModuleUsage& m : ModuleBreakdown()) total = total + m.usage;
  return total;
}

double ResourceModel::UtilizationFf(const Device& d) const {
  return double(Total().flip_flops) / double(d.capacity.flip_flops);
}
double ResourceModel::UtilizationLut(const Device& d) const {
  return double(Total().luts) / double(d.capacity.luts);
}
double ResourceModel::UtilizationBram(const Device& d) const {
  return double(Total().brams) / double(d.capacity.brams);
}

bool ResourceModel::Fits(const Device& d) const {
  ResourceVector t = Total();
  return t.flip_flops <= d.capacity.flip_flops &&
         t.luts <= d.capacity.luts && t.brams <= d.capacity.brams;
}

uint32_t ResourceModel::MaxWorkers(const Device& device,
                                   const DesignConfig& per_worker_config) {
  uint32_t lo = 0;
  uint32_t hi = 4096;
  while (lo < hi) {
    uint32_t mid = (lo + hi + 1) / 2;
    DesignConfig c = per_worker_config;
    c.n_workers = mid;
    // Modern shells (e.g. the F1 shell) cost roughly 20% of the device
    // rather than HC-2's fixed infrastructure.
    c.include_hc2_infrastructure = false;
    ResourceModel m(c);
    ResourceVector t = m.Total();
    ResourceVector budget = {device.capacity.flip_flops * 8 / 10,
                             device.capacity.luts * 8 / 10,
                             device.capacity.brams * 8 / 10};
    bool fits = t.flip_flops <= budget.flip_flops && t.luts <= budget.luts &&
                t.brams <= budget.brams;
    if (fits) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

double PowerModel::BionicDbWatts(uint32_t n_workers) {
  // Calibrated to the paper's XPE estimate: ~11.5 W for the 4-worker design
  // (static device + memory-interface power dominates; each worker's fabric
  // adds a modest dynamic share at 125 MHz).
  constexpr double kStaticWatts = 4.3;
  constexpr double kPerWorkerWatts = 1.8;
  return kStaticWatts + kPerWorkerWatts * n_workers;
}

double PowerModel::XeonWatts(uint32_t chips) {
  constexpr double kXeonE74807Tdp = 95.0;
  return kXeonE74807Tdp * chips;
}

}  // namespace bionicdb::power
