// FPGA resource-utilization and power model (paper Table 4 and section 5.8).
//
// The paper reports per-module flip-flop / LUT / BRAM consumption of the
// four-worker BionicDB design on a Virtex-5 LX330, plus an XPE power
// estimate of ~11.5 W against a 4-chip Xeon E7-4807 aggregate TDP of 380 W.
// This model reproduces Table 4 from per-worker module costs calibrated to
// the paper's numbers, scales them with the design knobs that change the
// hardware (scanner/traverse unit counts, worker count), and projects how
// many workers fit on datacenter-grade parts (the section 7 future-work
// scaling question).
#ifndef BIONICDB_POWER_MODEL_H_
#define BIONICDB_POWER_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bionicdb::power {

struct ResourceVector {
  uint64_t flip_flops = 0;
  uint64_t luts = 0;
  uint64_t brams = 0;

  ResourceVector operator+(const ResourceVector& o) const {
    return {flip_flops + o.flip_flops, luts + o.luts, brams + o.brams};
  }
  ResourceVector operator*(uint64_t k) const {
    return {flip_flops * k, luts * k, brams * k};
  }
};

struct ModuleUsage {
  std::string name;
  ResourceVector usage;
};

/// An FPGA device's programmable-resource capacity.
struct Device {
  std::string name;
  ResourceVector capacity;
};

/// The paper's platform: Virtex-5 LX330 (65 nm, ~200 K logic cells).
Device Virtex5Lx330();
/// Datacenter-grade parts for the scaling projection (paper sections 4.6/7).
Device VirtexUltrascalePlusVu9p();  // AWS F1
Device IntelArria10Gx1150();

/// Per-worker hardware cost of each BionicDB module, calibrated so that the
/// 4-worker totals reproduce Table 4. `n_scanners` and `n_traverse_units`
/// grow the skiplist/hash pipelines (each extra unit costs one unit-share
/// of the base pipeline).
struct DesignConfig {
  uint32_t n_workers = 4;
  uint32_t n_scanners = 1;
  uint32_t n_traverse_units = 1;
  bool include_hc2_infrastructure = true;
};

class ResourceModel {
 public:
  explicit ResourceModel(const DesignConfig& config);

  /// Table 4 rows: per-module totals for the configured design.
  std::vector<ModuleUsage> ModuleBreakdown() const;

  /// Whole-design total (incl. HC-2 infrastructure when configured).
  ResourceVector Total() const;

  /// Utilization fractions against `device` (0..1 per resource class).
  double UtilizationFf(const Device& device) const;
  double UtilizationLut(const Device& device) const;
  double UtilizationBram(const Device& device) const;

  /// True when the design fits the device.
  bool Fits(const Device& device) const;

  /// Largest worker count (same per-worker config) that fits `device`,
  /// with HC-2 infrastructure replaced by a proportional shell overhead.
  static uint32_t MaxWorkers(const Device& device,
                             const DesignConfig& per_worker_config);

 private:
  DesignConfig config_;
};

/// Power estimate (XPE stand-in): static device power plus per-worker
/// dynamic power at 125 MHz, calibrated to the paper's ~11.5 W at 4 workers.
class PowerModel {
 public:
  /// Total board power in watts for `n_workers`.
  static double BionicDbWatts(uint32_t n_workers);

  /// Aggregate TDP of the software baseline: `chips` Xeon E7-4807 sockets.
  static double XeonWatts(uint32_t chips);

  /// Transactions/second/watt.
  static double PerfPerWatt(double tps, double watts) {
    return watts > 0 ? tps / watts : 0;
  }
};

}  // namespace bionicdb::power

#endif  // BIONICDB_POWER_MODEL_H_
