// Command logging and recovery (paper section 4.8).
//
// BionicDB adopts VoltDB-style command logging: the host CPU persists every
// input transaction block BEFORE returning results to clients; each executed
// block carries its commit state and commit timestamp. Recovery loads the
// last checkpoint and re-executes the committed transaction blocks in
// commit-timestamp order, then re-initialises the hardware clock past the
// latest commit timestamp. The paper describes this design but leaves it
// unimplemented ("logging and recovery are currently missing"); we implement
// it in full.
#ifndef BIONICDB_LOG_COMMAND_LOG_H_
#define BIONICDB_LOG_COMMAND_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "db/types.h"

namespace bionicdb::log {

struct LogRecord {
  db::TxnTypeId txn_type = 0;
  db::WorkerId worker = 0;
  /// Snapshot of the block's data area taken at submit time (the inputs).
  std::vector<uint8_t> input;
  /// Filled in by MarkOutcome after execution.
  bool committed = false;
  db::Timestamp commit_ts = 0;
};

/// The host-side durable command log.
class CommandLog {
 public:
  explicit CommandLog(core::BionicDb* engine) : engine_(engine) {}

  /// Persists the input block before execution. Returns the record index.
  size_t Append(db::WorkerId worker, sim::Addr block);

  /// Reads the commit state and timestamp back out of the executed block.
  void MarkOutcome(size_t record, sim::Addr block);

  const std::vector<LogRecord>& records() const { return records_; }

  /// Committed records in commit-timestamp order (the replay order).
  std::vector<const LogRecord*> ReplayOrder() const;

  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

 private:
  core::BionicDb* engine_;
  std::vector<LogRecord> records_;
};

/// A functional snapshot of the whole database (committed tuples only).
class Checkpoint {
 public:
  struct TupleRecord {
    std::vector<uint8_t> key;
    std::vector<uint8_t> payload;
    db::Timestamp write_ts = 0;
  };
  struct TableDump {
    db::TableId table = 0;
    db::PartitionId partition = 0;
    std::vector<TupleRecord> tuples;
  };

  /// Captures every committed, live tuple (dirty and tombstoned tuples are
  /// skipped — a checkpoint is taken on a quiesced engine).
  static Checkpoint Capture(const db::Database& database);

  /// Bulk-loads the snapshot into a fresh database with matching schema.
  Status Restore(db::Database* database) const;

  /// Largest write timestamp in the snapshot (clock re-init lower bound).
  db::Timestamp MaxTimestamp() const;

  /// Canonical (sort-insensitive) equality — the recovery test oracle.
  bool Equivalent(const Checkpoint& other) const;

  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

  const std::vector<TableDump>& dumps() const { return dumps_; }

 private:
  std::vector<TableDump> dumps_;
};

/// Rebuilds a fresh engine from a checkpoint + command log: restore, replay
/// committed blocks serially in commit-timestamp order, fast-forward the
/// hardware clock. The engine must have the same schema and registered
/// procedures as the crashed one.
Status Recover(core::BionicDb* engine, const Checkpoint& checkpoint,
               const CommandLog& log);

}  // namespace bionicdb::log

#endif  // BIONICDB_LOG_COMMAND_LOG_H_
