#include "log/command_log.h"

#include <algorithm>
#include <fstream>
#include <iterator>

#include "common/hash.h"
#include "db/txn_block.h"

namespace bionicdb::log {

namespace {

// On-disk format v2: [magic u64][body][CRC32 trailer u64], all fields
// little-endian. The CRC covers magic + body, so truncation and bit rot
// both fail fast. Loaders parse from a fully in-memory buffer with bounds
// checks on every length field — a corrupt file yields a clear Status,
// never UB (the v1 loader would happily resize() to a garbage length).

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(uint8_t(v >> (8 * i)));
}
void PutBytes(std::vector<uint8_t>* out, const std::vector<uint8_t>& b) {
  PutU64(out, b.size());
  out->insert(out->end(), b.begin(), b.end());
}

struct ByteReader {
  const uint8_t* data;
  size_t size;
  size_t off = 0;
  bool U64(uint64_t* v) {
    if (size - off < 8) return false;
    uint64_t x = 0;
    for (int i = 0; i < 8; ++i) x |= uint64_t(data[off + i]) << (8 * i);
    *v = x;
    off += 8;
    return true;
  }
  bool Bytes(std::vector<uint8_t>* b) {
    uint64_t n;
    if (!U64(&n)) return false;
    if (n > size - off) return false;  // corrupt length field
    b->assign(data + off, data + off + n);
    off += size_t(n);
    return true;
  }
};

Status WriteFileWithTrailer(const std::string& path,
                            const std::vector<uint8_t>& body) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return Status::Internal("cannot open " + path);
  os.write(reinterpret_cast<const char*>(body.data()),
           std::streamsize(body.size()));
  std::vector<uint8_t> trailer;
  PutU64(&trailer, Crc32(body.data(), body.size()));
  os.write(reinterpret_cast<const char*>(trailer.data()), 8);
  return os ? Status::Ok() : Status::Internal("write failed: " + path);
}

/// Reads the whole file, validates the checksum trailer and hands back the
/// body (magic included) for parsing.
Status ReadFileWithTrailer(const std::string& path, const char* what,
                           std::vector<uint8_t>* body) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::NotFound("cannot open " + path);
  std::vector<uint8_t> raw((std::istreambuf_iterator<char>(is)),
                           std::istreambuf_iterator<char>());
  // Minimum: magic + one count + trailer.
  if (raw.size() < 24) {
    return Status::InvalidArgument(std::string(what) + " truncated");
  }
  ByteReader tr{raw.data() + raw.size() - 8, 8};
  uint64_t stored = 0;
  tr.U64(&stored);
  if (stored != Crc32(raw.data(), raw.size() - 8)) {
    return Status::InvalidArgument(std::string(what) +
                                   " checksum mismatch (corrupt file)");
  }
  raw.resize(raw.size() - 8);
  body->swap(raw);
  return Status::Ok();
}

constexpr uint64_t kLogMagic = 0xb10c10600101ull;   // v2 (checksummed)
constexpr uint64_t kCkptMagic = 0xb10c10600102ull;  // v2 (checksummed)

}  // namespace

size_t CommandLog::Append(db::WorkerId worker, sim::Addr block) {
  sim::DramMemory* dram = &engine_->simulator().dram();
  db::TxnBlock b(dram, block);
  LogRecord rec;
  rec.txn_type = b.txn_type();
  rec.worker = worker;
  const db::ProcedureInfo* proc =
      engine_->database().catalogue().FindProcedure(rec.txn_type);
  uint64_t size = proc != nullptr ? proc->block_data_size : 0;
  rec.input.resize(size);
  if (size > 0) b.ReadBytes(0, rec.input.data(), size);
  records_.push_back(std::move(rec));
  return records_.size() - 1;
}

void CommandLog::MarkOutcome(size_t record, sim::Addr block) {
  sim::DramMemory* dram = &engine_->simulator().dram();
  db::TxnBlock b(dram, block);
  records_[record].committed = b.state() == db::TxnState::kCommitted;
  records_[record].commit_ts = b.commit_ts();
}

std::vector<const LogRecord*> CommandLog::ReplayOrder() const {
  std::vector<const LogRecord*> out;
  for (const LogRecord& r : records_) {
    if (r.committed) out.push_back(&r);
  }
  std::sort(out.begin(), out.end(),
            [](const LogRecord* a, const LogRecord* b) {
              return a->commit_ts < b->commit_ts;
            });
  return out;
}

Status CommandLog::SaveToFile(const std::string& path) const {
  std::vector<uint8_t> body;
  PutU64(&body, kLogMagic);
  PutU64(&body, records_.size());
  for (const LogRecord& r : records_) {
    PutU64(&body, r.txn_type);
    PutU64(&body, r.worker);
    PutU64(&body, r.committed ? 1 : 0);
    PutU64(&body, r.commit_ts);
    PutBytes(&body, r.input);
  }
  return WriteFileWithTrailer(path, body);
}

Status CommandLog::LoadFromFile(const std::string& path) {
  std::vector<uint8_t> body;
  BIONICDB_RETURN_IF_ERROR(ReadFileWithTrailer(path, "command log", &body));
  ByteReader r{body.data(), body.size()};
  uint64_t magic, n;
  if (!r.U64(&magic) || magic != kLogMagic) {
    return Status::InvalidArgument("bad command-log magic");
  }
  if (!r.U64(&n)) return Status::InvalidArgument("truncated command log");
  // Parse into a scratch vector: a failure mid-file leaves records_ intact.
  std::vector<LogRecord> loaded;
  for (uint64_t i = 0; i < n; ++i) {
    LogRecord rec;
    uint64_t type, worker, committed;
    if (!r.U64(&type) || !r.U64(&worker) || !r.U64(&committed) ||
        !r.U64(&rec.commit_ts) || !r.Bytes(&rec.input)) {
      return Status::InvalidArgument("truncated command-log record");
    }
    rec.txn_type = db::TxnTypeId(type);
    rec.worker = db::WorkerId(worker);
    rec.committed = committed != 0;
    loaded.push_back(std::move(rec));
  }
  if (r.off != r.size) {
    return Status::InvalidArgument("trailing garbage in command log");
  }
  records_.swap(loaded);
  return Status::Ok();
}

// --- Checkpoint ----------------------------------------------------------

Checkpoint Checkpoint::Capture(const db::Database& database) {
  Checkpoint ckpt;
  auto collect = [](db::TupleAccessor t, std::vector<TupleRecord>* out) {
    if (t.dirty() || t.tombstone()) return true;  // skip uncommitted/deleted
    TupleRecord rec;
    rec.key = t.key_bytes();
    rec.payload = t.payload_bytes();
    rec.write_ts = t.write_ts();
    out->push_back(std::move(rec));
    return true;
  };
  for (const db::TableSchema& schema : database.catalogue().tables()) {
    for (db::PartitionId p = 0; p < database.n_partitions(); ++p) {
      TableDump dump;
      dump.table = schema.id;
      dump.partition = p;
      if (schema.index == db::IndexKind::kHash) {
        database.hash_index(schema.id, p)->ForEach(
            [&](db::TupleAccessor t) { return collect(t, &dump.tuples); });
      } else {
        database.skiplist_index(schema.id, p)->ForEach(
            [&](db::TupleAccessor t) { return collect(t, &dump.tuples); });
      }
      ckpt.dumps_.push_back(std::move(dump));
    }
  }
  return ckpt;
}

Status Checkpoint::Restore(db::Database* database) const {
  for (const TableDump& dump : dumps_) {
    const db::TableSchema* schema = database->catalogue().FindTable(dump.table);
    if (schema == nullptr) {
      return Status::NotFound("checkpoint table missing from schema");
    }
    for (const TupleRecord& rec : dump.tuples) {
      // Replicated tables appear once per partition in the dump; loading
      // them partition-by-partition (not fanned out) preserves multiplicity.
      BIONICDB_RETURN_IF_ERROR(database->LoadOneForRestore(
          dump.table, dump.partition, rec.key.data(),
          uint16_t(rec.key.size()), rec.payload.data(),
          uint32_t(rec.payload.size()), rec.write_ts));
    }
  }
  return Status::Ok();
}

db::Timestamp Checkpoint::MaxTimestamp() const {
  db::Timestamp ts = 0;
  for (const TableDump& dump : dumps_) {
    for (const TupleRecord& rec : dump.tuples) {
      ts = std::max(ts, rec.write_ts);
    }
  }
  return ts;
}

bool Checkpoint::Equivalent(const Checkpoint& other) const {
  if (dumps_.size() != other.dumps_.size()) return false;
  auto canon = [](const TableDump& d) {
    std::vector<std::pair<std::vector<uint8_t>, std::vector<uint8_t>>> v;
    for (const TupleRecord& r : d.tuples) v.emplace_back(r.key, r.payload);
    std::sort(v.begin(), v.end());
    return v;
  };
  for (size_t i = 0; i < dumps_.size(); ++i) {
    if (dumps_[i].table != other.dumps_[i].table ||
        dumps_[i].partition != other.dumps_[i].partition) {
      return false;
    }
    if (canon(dumps_[i]) != canon(other.dumps_[i])) return false;
  }
  return true;
}

Status Checkpoint::SaveToFile(const std::string& path) const {
  std::vector<uint8_t> body;
  PutU64(&body, kCkptMagic);
  PutU64(&body, dumps_.size());
  for (const TableDump& d : dumps_) {
    PutU64(&body, d.table);
    PutU64(&body, d.partition);
    PutU64(&body, d.tuples.size());
    for (const TupleRecord& r : d.tuples) {
      PutU64(&body, r.write_ts);
      PutBytes(&body, r.key);
      PutBytes(&body, r.payload);
    }
  }
  return WriteFileWithTrailer(path, body);
}

Status Checkpoint::LoadFromFile(const std::string& path) {
  std::vector<uint8_t> body;
  BIONICDB_RETURN_IF_ERROR(ReadFileWithTrailer(path, "checkpoint", &body));
  ByteReader r{body.data(), body.size()};
  uint64_t magic, n;
  if (!r.U64(&magic) || magic != kCkptMagic) {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  if (!r.U64(&n)) return Status::InvalidArgument("truncated checkpoint");
  std::vector<TableDump> loaded;
  for (uint64_t i = 0; i < n; ++i) {
    TableDump d;
    uint64_t table, partition, count;
    if (!r.U64(&table) || !r.U64(&partition) || !r.U64(&count)) {
      return Status::InvalidArgument("truncated checkpoint dump");
    }
    d.table = db::TableId(table);
    d.partition = db::PartitionId(partition);
    for (uint64_t t = 0; t < count; ++t) {
      TupleRecord rec;
      if (!r.U64(&rec.write_ts) || !r.Bytes(&rec.key) ||
          !r.Bytes(&rec.payload)) {
        return Status::InvalidArgument("truncated checkpoint tuple");
      }
      d.tuples.push_back(std::move(rec));
    }
    loaded.push_back(std::move(d));
  }
  if (r.off != r.size) {
    return Status::InvalidArgument("trailing garbage in checkpoint");
  }
  dumps_.swap(loaded);
  return Status::Ok();
}

// --- Recovery ------------------------------------------------------------

Status Recover(core::BionicDb* engine, const Checkpoint& checkpoint,
               const CommandLog& log) {
  BIONICDB_RETURN_IF_ERROR(checkpoint.Restore(&engine->database()));
  // Re-initialise the hardware clock past the newest checkpointed write so
  // replayed transactions pass visibility checks.
  engine->simulator().FastForward((checkpoint.MaxTimestamp() >> 8) + 1);

  for (const LogRecord* rec : log.ReplayOrder()) {
    db::TxnBlock block = engine->AllocateBlock(rec->txn_type);
    if (!rec->input.empty()) {
      block.WriteBytes(0, rec->input.data(), rec->input.size());
    }
    engine->Submit(rec->worker, block.base());
    engine->Drain();
    if (block.state() != db::TxnState::kCommitted) {
      return Status::Internal(
          "replay of a committed transaction did not commit");
    }
  }
  return Status::Ok();
}

}  // namespace bionicdb::log
