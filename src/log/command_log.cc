#include "log/command_log.h"

#include <algorithm>
#include <fstream>

#include "db/txn_block.h"

namespace bionicdb::log {

namespace {

void PutU64(std::ostream& os, uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), 8);
}
bool GetU64(std::istream& is, uint64_t* v) {
  is.read(reinterpret_cast<char*>(v), 8);
  return bool(is);
}
void PutBytes(std::ostream& os, const std::vector<uint8_t>& b) {
  PutU64(os, b.size());
  os.write(reinterpret_cast<const char*>(b.data()),
           std::streamsize(b.size()));
}
bool GetBytes(std::istream& is, std::vector<uint8_t>* b) {
  uint64_t n;
  if (!GetU64(is, &n)) return false;
  b->resize(n);
  is.read(reinterpret_cast<char*>(b->data()), std::streamsize(n));
  return bool(is);
}

constexpr uint64_t kLogMagic = 0xb10c10600001ull;
constexpr uint64_t kCkptMagic = 0xb10c10600002ull;

}  // namespace

size_t CommandLog::Append(db::WorkerId worker, sim::Addr block) {
  sim::DramMemory* dram = &engine_->simulator().dram();
  db::TxnBlock b(dram, block);
  LogRecord rec;
  rec.txn_type = b.txn_type();
  rec.worker = worker;
  const db::ProcedureInfo* proc =
      engine_->database().catalogue().FindProcedure(rec.txn_type);
  uint64_t size = proc != nullptr ? proc->block_data_size : 0;
  rec.input.resize(size);
  if (size > 0) b.ReadBytes(0, rec.input.data(), size);
  records_.push_back(std::move(rec));
  return records_.size() - 1;
}

void CommandLog::MarkOutcome(size_t record, sim::Addr block) {
  sim::DramMemory* dram = &engine_->simulator().dram();
  db::TxnBlock b(dram, block);
  records_[record].committed = b.state() == db::TxnState::kCommitted;
  records_[record].commit_ts = b.commit_ts();
}

std::vector<const LogRecord*> CommandLog::ReplayOrder() const {
  std::vector<const LogRecord*> out;
  for (const LogRecord& r : records_) {
    if (r.committed) out.push_back(&r);
  }
  std::sort(out.begin(), out.end(),
            [](const LogRecord* a, const LogRecord* b) {
              return a->commit_ts < b->commit_ts;
            });
  return out;
}

Status CommandLog::SaveToFile(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return Status::Internal("cannot open " + path);
  PutU64(os, kLogMagic);
  PutU64(os, records_.size());
  for (const LogRecord& r : records_) {
    PutU64(os, r.txn_type);
    PutU64(os, r.worker);
    PutU64(os, r.committed ? 1 : 0);
    PutU64(os, r.commit_ts);
    PutBytes(os, r.input);
  }
  return os ? Status::Ok() : Status::Internal("write failed: " + path);
}

Status CommandLog::LoadFromFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::NotFound("cannot open " + path);
  uint64_t magic, n;
  if (!GetU64(is, &magic) || magic != kLogMagic) {
    return Status::InvalidArgument("bad command-log magic");
  }
  if (!GetU64(is, &n)) return Status::InvalidArgument("truncated log");
  records_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    LogRecord r;
    uint64_t type, worker, committed;
    if (!GetU64(is, &type) || !GetU64(is, &worker) ||
        !GetU64(is, &committed) || !GetU64(is, &r.commit_ts) ||
        !GetBytes(is, &r.input)) {
      return Status::InvalidArgument("truncated log record");
    }
    r.txn_type = db::TxnTypeId(type);
    r.worker = db::WorkerId(worker);
    r.committed = committed != 0;
    records_.push_back(std::move(r));
  }
  return Status::Ok();
}

// --- Checkpoint ----------------------------------------------------------

Checkpoint Checkpoint::Capture(const db::Database& database) {
  Checkpoint ckpt;
  auto collect = [](db::TupleAccessor t, std::vector<TupleRecord>* out) {
    if (t.dirty() || t.tombstone()) return true;  // skip uncommitted/deleted
    TupleRecord rec;
    rec.key = t.key_bytes();
    rec.payload = t.payload_bytes();
    rec.write_ts = t.write_ts();
    out->push_back(std::move(rec));
    return true;
  };
  for (const db::TableSchema& schema : database.catalogue().tables()) {
    for (db::PartitionId p = 0; p < database.n_partitions(); ++p) {
      TableDump dump;
      dump.table = schema.id;
      dump.partition = p;
      if (schema.index == db::IndexKind::kHash) {
        database.hash_index(schema.id, p)->ForEach(
            [&](db::TupleAccessor t) { return collect(t, &dump.tuples); });
      } else {
        database.skiplist_index(schema.id, p)->ForEach(
            [&](db::TupleAccessor t) { return collect(t, &dump.tuples); });
      }
      ckpt.dumps_.push_back(std::move(dump));
    }
  }
  return ckpt;
}

Status Checkpoint::Restore(db::Database* database) const {
  for (const TableDump& dump : dumps_) {
    const db::TableSchema* schema = database->catalogue().FindTable(dump.table);
    if (schema == nullptr) {
      return Status::NotFound("checkpoint table missing from schema");
    }
    for (const TupleRecord& rec : dump.tuples) {
      // Replicated tables appear once per partition in the dump; loading
      // them partition-by-partition (not fanned out) preserves multiplicity.
      BIONICDB_RETURN_IF_ERROR(database->LoadOneForRestore(
          dump.table, dump.partition, rec.key.data(),
          uint16_t(rec.key.size()), rec.payload.data(),
          uint32_t(rec.payload.size()), rec.write_ts));
    }
  }
  return Status::Ok();
}

db::Timestamp Checkpoint::MaxTimestamp() const {
  db::Timestamp ts = 0;
  for (const TableDump& dump : dumps_) {
    for (const TupleRecord& rec : dump.tuples) {
      ts = std::max(ts, rec.write_ts);
    }
  }
  return ts;
}

bool Checkpoint::Equivalent(const Checkpoint& other) const {
  if (dumps_.size() != other.dumps_.size()) return false;
  auto canon = [](const TableDump& d) {
    std::vector<std::pair<std::vector<uint8_t>, std::vector<uint8_t>>> v;
    for (const TupleRecord& r : d.tuples) v.emplace_back(r.key, r.payload);
    std::sort(v.begin(), v.end());
    return v;
  };
  for (size_t i = 0; i < dumps_.size(); ++i) {
    if (dumps_[i].table != other.dumps_[i].table ||
        dumps_[i].partition != other.dumps_[i].partition) {
      return false;
    }
    if (canon(dumps_[i]) != canon(other.dumps_[i])) return false;
  }
  return true;
}

Status Checkpoint::SaveToFile(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return Status::Internal("cannot open " + path);
  PutU64(os, kCkptMagic);
  PutU64(os, dumps_.size());
  for (const TableDump& d : dumps_) {
    PutU64(os, d.table);
    PutU64(os, d.partition);
    PutU64(os, d.tuples.size());
    for (const TupleRecord& r : d.tuples) {
      PutU64(os, r.write_ts);
      PutBytes(os, r.key);
      PutBytes(os, r.payload);
    }
  }
  return os ? Status::Ok() : Status::Internal("write failed: " + path);
}

Status Checkpoint::LoadFromFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::NotFound("cannot open " + path);
  uint64_t magic, n;
  if (!GetU64(is, &magic) || magic != kCkptMagic) {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  if (!GetU64(is, &n)) return Status::InvalidArgument("truncated checkpoint");
  dumps_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    TableDump d;
    uint64_t table, partition, count;
    if (!GetU64(is, &table) || !GetU64(is, &partition) ||
        !GetU64(is, &count)) {
      return Status::InvalidArgument("truncated checkpoint dump");
    }
    d.table = db::TableId(table);
    d.partition = db::PartitionId(partition);
    for (uint64_t t = 0; t < count; ++t) {
      TupleRecord r;
      if (!GetU64(is, &r.write_ts) || !GetBytes(is, &r.key) ||
          !GetBytes(is, &r.payload)) {
        return Status::InvalidArgument("truncated checkpoint tuple");
      }
      d.tuples.push_back(std::move(r));
    }
    dumps_.push_back(std::move(d));
  }
  return Status::Ok();
}

// --- Recovery ------------------------------------------------------------

Status Recover(core::BionicDb* engine, const Checkpoint& checkpoint,
               const CommandLog& log) {
  BIONICDB_RETURN_IF_ERROR(checkpoint.Restore(&engine->database()));
  // Re-initialise the hardware clock past the newest checkpointed write so
  // replayed transactions pass visibility checks.
  engine->simulator().FastForward((checkpoint.MaxTimestamp() >> 8) + 1);

  for (const LogRecord* rec : log.ReplayOrder()) {
    db::TxnBlock block = engine->AllocateBlock(rec->txn_type);
    if (!rec->input.empty()) {
      block.WriteBytes(0, rec->input.data(), rec->input.size());
    }
    engine->Submit(rec->worker, block.base());
    engine->Drain();
    if (block.state() != db::TxnState::kCommitted) {
      return Status::Internal(
          "replay of a committed transaction did not commit");
    }
  }
  return Status::Ok();
}

}  // namespace bionicdb::log
