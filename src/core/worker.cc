#include "core/worker.h"

#include <algorithm>
#include <cassert>

namespace bionicdb::core {

PartitionWorker::PartitionWorker(db::Database* db, db::WorkerId id,
                                 const sim::TimingConfig& timing,
                                 Softcore::Config softcore_config,
                                 index::IndexCoprocessor::Config coproc_config,
                                 comm::CommFabric* fabric)
    : sim::Component("worker/" + std::to_string(id)),
      id_(id),
      fabric_(fabric),
      dram_(db->dram()) {
  two_pc_ = softcore_config.two_pc;
  coproc_ = std::make_unique<index::IndexCoprocessor>(db, id, coproc_config);
  softcore_ = std::make_unique<Softcore>(db, id, timing, softcore_config,
                                         this);
}

bool PartitionWorker::Issue(db::WorkerId dst, const comm::Envelope& env) {
  if (dst != id_) {
    // Fabric send. Requests get the wire-out cycle stamped for RTT
    // measurement; responses echo the request's stamp untouched. Every
    // fabric send (re-)stamps hdr.src with this worker's id so receivers
    // can attribute the packet (2PC ack matching, window accounting).
    const comm::MessageClass cls = env.cls();
    if (ChipOfWorker(dst) != ChipOfWorker(id_) &&
        (cls == comm::MessageClass::kIndexOp ||
         cls == comm::MessageClass::kPrepareReq ||
         cls == comm::MessageClass::kCommitReq)) {
      // Cross-chip request: bounded in-flight window per worker. A full
      // window rejects the Issue — the caller retries, charging the
      // interchip-backpressure bucket. Responses and posted kMemOps are
      // exempt (rejecting them would wedge the request/response pairing).
      if (interchip_inflight_ >= two_pc_.interchip_window) return false;
      ++interchip_inflight_;
    }
    comm::Envelope stamped = env;
    if (stamped.is_request()) stamped.hdr.sent_at = now_;
    stamped.hdr.src = id_;
    fabric_->Send(now_, id_, dst, stamped);
    return true;
  }
  // Local apply, dispatched purely on message class. Responses that round-
  // tripped a foreign chip (src stamped by a cross-chip responder, sent_at
  // proving a fabric request) release one inter-chip window slot.
  switch (env.cls()) {
    case comm::MessageClass::kIndexOp:
      return coproc_->Submit(env);
    case comm::MessageClass::kMemOp:
      return HandleMemOp(now_, env);
    case comm::MessageClass::kIndexResult:
      if (env.hdr.sent_at != 0) {
        remote_rtt_.Add(double(now_ - env.hdr.sent_at));
        if (ChipOfWorker(env.hdr.src) != ChipOfWorker(id_) &&
            interchip_inflight_ > 0) {
          --interchip_inflight_;
        }
      }
      softcore_->WriteCp(env);
      return true;
    case comm::MessageClass::kMemResult:
      if (env.hdr.sent_at != 0) {
        remote_rtt_.Add(double(now_ - env.hdr.sent_at));
      }
      softcore_->CompleteRemoteLoad(now_, env);
      return true;
    case comm::MessageClass::kPrepareReq: {
      // 2PC participant vote. Concurrency conflicts surface at Update time
      // (the owning coprocessor rejects the lock), so a reachable
      // participant always votes commit; the vote's job is to prove
      // liveness to the coordinator before it publishes a decision.
      comm::PrepareAck ack;
      ack.txn_ts = env.prepare_req().txn_ts;
      ack.vote_commit = true;
      Issue(env.hdr.origin, comm::Envelope::Reply(env, ack));
      return true;
    }
    case comm::MessageClass::kCommitReq:
      return HandleCommitReq(now_, env);
    case comm::MessageClass::kPrepareAck:
      if (env.hdr.sent_at != 0) {
        remote_rtt_.Add(double(now_ - env.hdr.sent_at));
        if (ChipOfWorker(env.hdr.src) != ChipOfWorker(id_) &&
            interchip_inflight_ > 0) {
          --interchip_inflight_;
        }
      }
      softcore_->HandlePrepareAck(now_, env);
      return true;
    case comm::MessageClass::kCommitAck:
      if (env.hdr.sent_at != 0) {
        remote_rtt_.Add(double(now_ - env.hdr.sent_at));
        if (ChipOfWorker(env.hdr.src) != ChipOfWorker(id_) &&
            interchip_inflight_ > 0) {
          --interchip_inflight_;
        }
      }
      softcore_->HandleCommitAck(now_, env);
      return true;
  }
  return true;
}

void PartitionWorker::Tick(uint64_t cycle) {
  now_ = cycle;

  if (cycle < frozen_until_) {
    // Injected freeze: the whole worker (background unit, coprocessor,
    // softcore) skips the cycle. Inbound packets stay queued in the fabric
    // inboxes and are drained when the worker thaws.
    ++cycles_.total;
    ++cycles_.frozen;
    return;
  }

  // Background unit: apply inbound request envelopes through the local
  // side of the Issue port (kIndexOp -> coprocessor, kMemOp -> raw-memory
  // service under partitioned DRAM). Stops at the first
  // capacity/backpressure reject to preserve channel FIFO order.
  if (fabric_ != nullptr) {
    auto& inbound = fabric_->requests(id_);
    while (!inbound.empty()) {
      if (!Issue(id_, inbound.front())) break;
      inbound.pop_front();
    }
  }

  // Route completed coprocessor results to their origin — the local
  // softcore and a remote peer are the same Issue call.
  auto& results = coproc_->results();
  while (!results.empty()) {
    comm::Envelope r = std::move(results.front());
    results.pop_front();
    Issue(r.hdr.origin, r);
  }

  // Answer remote LOADs whose DRAM read completed this cycle.
  while (!mem_inbox_.empty()) {
    sim::MemResponse resp = std::move(mem_inbox_.front());
    mem_inbox_.pop_front();
    auto it = mem_pending_.find(resp.cookie);
    assert(it != mem_pending_.end());
    comm::MemResult result;
    result.value = resp.data.empty() ? 0 : resp.data[0];
    Issue(it->second.hdr.origin, comm::Envelope::Reply(it->second, result));
    mem_pending_.erase(it);
  }

  // Inbound response envelopes: asynchronous CP-register writeback, or the
  // stalled softcore's remote-LOAD resume (dispatched by class inside
  // Issue, which also records the round trip).
  if (fabric_ != nullptr) {
    auto& responses = fabric_->responses(id_);
    while (!responses.empty()) {
      Issue(id_, responses.front());
      responses.pop_front();
    }
  }

  coproc_->Tick(cycle);
  softcore_->Tick(cycle);

  // Charge this cycle to exactly one breakdown bucket (see CycleBreakdown).
  ++cycles_.total;
  switch (softcore_->wait_kind(cycle)) {
    case Softcore::WaitKind::kBusy:
      ++cycles_.busy;
      break;
    case Softcore::WaitKind::kDramWait:
      ++cycles_.dram_stall;
      break;
    case Softcore::WaitKind::kDispatchBlocked:
      ++cycles_.backpressure;
      break;
    case Softcore::WaitKind::kInterchipWait:
      ++cycles_.interchip_stall;
      break;
    case Softcore::WaitKind::kCpWait:
    case Softcore::WaitKind::kIdle:
      // The core is not the limiter; attribute the cycle to whatever the
      // coprocessor was doing (or failing to do) on the core's behalf.
      if (coproc_->hazard_stalled()) {
        ++cycles_.hazard_block;
      } else if (coproc_->dram_stalled()) {
        ++cycles_.dram_stall;
      } else if (!coproc_->Idle()) {
        ++cycles_.busy;
      } else {
        ++cycles_.idle;
      }
      break;
  }
}

bool PartitionWorker::Idle() const {
  // The worker owns its fabric inbox emptiness (the fabric's own Idle
  // covers only packets in flight), plus the raw-memory service unit.
  if (fabric_ != nullptr && (!fabric_->requests(id_).empty() ||
                             !fabric_->responses(id_).empty())) {
    return false;
  }
  return softcore_->Idle() && coproc_->Idle() && mem_inbox_.empty() &&
         mem_pending_.empty();
}

uint64_t PartitionWorker::NextWakeCycle(uint64_t now) const {
  // A frozen worker does nothing but count frozen cycles until the thaw —
  // even with packets or results queued (they wait, as in per-cycle mode).
  if (now + 1 < frozen_until_) return frozen_until_;
  if (fabric_ != nullptr && (!fabric_->requests(id_).empty() ||
                             !fabric_->responses(id_).empty())) {
    return now + 1;  // background unit / response drain acts
  }
  if (!coproc_->results().empty()) return now + 1;  // result routing acts
  if (!mem_inbox_.empty()) return now + 1;  // remote-LOAD answers go out
  // mem_pending_ needs no wake of its own: the completion that fills
  // mem_inbox_ is already the DRAM lane's wake point.
  return std::min(coproc_->NextWakeCycle(now), softcore_->NextWakeCycle(now));
}

void PartitionWorker::SkipCycles(uint64_t now, uint64_t count) {
  cycles_.total += count;
  if (now + 1 < frozen_until_) {
    // Sub-blocks do not tick while frozen, so they get no skip either.
    cycles_.frozen += count;
    return;
  }
  // Forward the skip first so the classification below sees the same
  // span-steady stall flags a real tick would have produced.
  coproc_->SkipCycles(now, count);
  softcore_->SkipCycles(now, count);
  switch (softcore_->wait_kind(now + 1)) {
    case Softcore::WaitKind::kBusy:
      cycles_.busy += count;
      break;
    case Softcore::WaitKind::kDramWait:
      cycles_.dram_stall += count;
      break;
    case Softcore::WaitKind::kDispatchBlocked:
      cycles_.backpressure += count;
      break;
    case Softcore::WaitKind::kInterchipWait:
      cycles_.interchip_stall += count;
      break;
    case Softcore::WaitKind::kCpWait:
    case Softcore::WaitKind::kIdle:
      if (coproc_->hazard_stalled()) {
        cycles_.hazard_block += count;
      } else if (coproc_->dram_stalled()) {
        cycles_.dram_stall += count;
      } else if (!coproc_->Idle()) {
        cycles_.busy += count;
      } else {
        cycles_.idle += count;
      }
      break;
  }
}

bool PartitionWorker::HandleCommitReq(uint64_t cycle,
                                      const comm::Envelope& env) {
  const comm::CommitReq& req = env.commit_req();
  auto [it, first_delivery] = twopc_decisions_.emplace(req.txn_ts, req.commit);
  if (first_delivery) {
    // Exactly-once apply: publish (or roll back) every entry the
    // coordinator shipped for this chip. Writes are posted, exactly like
    // same-chip remote commit publications in HandleMemOp.
    for (const cc::WriteSetEntry& e : req.entries) {
      if (req.commit) {
        cc::ApplyCommit(dram_, e, req.txn_ts);
      } else {
        cc::ApplyAbort(dram_, e);
      }
      dram_->Issue(cycle, e.tuple_addr, true, nullptr, 0);
    }
    twopc_participant_applies_ += req.entries.size();
  } else {
    // Duplicate decision (retransmit or coordinator resend after a lost
    // ack): the recorded decision stands, nothing re-applies.
    ++twopc_dup_decisions_;
  }
  // Always ack — the resend exists precisely because the first ack may
  // have been lost.
  Issue(env.hdr.origin, comm::Envelope::Reply(env, comm::CommitAck{req.txn_ts}));
  return true;
}

bool PartitionWorker::HandleMemOp(uint64_t cycle, const comm::Envelope& env) {
  const comm::MemOp& op = env.mem_op();
  switch (op.kind) {
    case comm::MemOp::Kind::kStore:
      // Posted remote write: functional effect now, bandwidth charged on
      // this lane (reject ignored, exactly like local posted stores).
      dram_->Write64(op.addr, op.store_value);
      dram_->Issue(cycle, op.addr, true, nullptr, 0);
      return true;
    case comm::MemOp::Kind::kCommit:
      cc::ApplyCommit(dram_, cc::WriteSetEntry{op.addr, op.write_kind},
                      op.commit_ts);
      dram_->Issue(cycle, op.addr, true, nullptr, 0);
      return true;
    case comm::MemOp::Kind::kAbort:
      cc::ApplyAbort(dram_, cc::WriteSetEntry{op.addr, op.write_kind});
      dram_->Issue(cycle, op.addr, true, nullptr, 0);
      return true;
    case comm::MemOp::Kind::kLoad: {
      const uint64_t cookie = mem_cookie_next_;
      if (!dram_->Issue(cycle, op.addr, false, &mem_inbox_, cookie,
                        /*snapshot_words=*/1)) {
        return false;  // backpressure: leave queued, retry next tick
      }
      ++mem_cookie_next_;
      mem_pending_.emplace(cookie, env);
      return true;
    }
  }
  return true;
}

void PartitionWorker::CollectStats(StatsScope scope) const {
  StatsScope cyc = scope.Sub("cycles");
  cyc.SetCounter("total", cycles_.total);
  cyc.SetCounter("busy", cycles_.busy);
  cyc.SetCounter("dram_stall", cycles_.dram_stall);
  cyc.SetCounter("hazard_block", cycles_.hazard_block);
  cyc.SetCounter("backpressure", cycles_.backpressure);
  cyc.SetCounter("idle", cycles_.idle);
  if (cycles_.frozen > 0) cyc.SetCounter("frozen", cycles_.frozen);
  if (cycles_.interchip_stall > 0) {
    cyc.SetCounter("interchip_stall", cycles_.interchip_stall);
  }
  if (two_pc_.workers_per_chip > 0) {
    StatsScope tp = scope.Sub("twopc_participant");
    tp.SetCounter("applies", twopc_participant_applies_);
    tp.SetCounter("dup_decisions", twopc_dup_decisions_);
  }
  scope.SetSummary("remote_rtt_cycles", remote_rtt_);
  softcore_->CollectStats(scope.Sub("softcore"));
  coproc_->CollectStats(scope.Sub("coproc"));
}

}  // namespace bionicdb::core
