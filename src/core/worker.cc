#include "core/worker.h"

#include <algorithm>

namespace bionicdb::core {

PartitionWorker::PartitionWorker(db::Database* db, db::WorkerId id,
                                 const sim::TimingConfig& timing,
                                 Softcore::Config softcore_config,
                                 index::IndexCoprocessor::Config coproc_config,
                                 comm::CommFabric* fabric)
    : sim::Component("worker/" + std::to_string(id)),
      id_(id),
      fabric_(fabric) {
  coproc_ = std::make_unique<index::IndexCoprocessor>(db, id, coproc_config);
  softcore_ = std::make_unique<Softcore>(db, id, timing, softcore_config,
                                         this);
}

bool PartitionWorker::DispatchLocal(const index::DbOp& op) {
  return coproc_->Submit(op);
}

void PartitionWorker::DispatchRemote(uint32_t partition,
                                     const index::DbOp& op) {
  index::DbOp stamped = op;
  stamped.sent_at = now_;
  fabric_->SendRequest(now_, id_, partition, stamped);
}

void PartitionWorker::Tick(uint64_t cycle) {
  now_ = cycle;

  if (cycle < frozen_until_) {
    // Injected freeze: the whole worker (background unit, coprocessor,
    // softcore) skips the cycle. Inbound packets stay queued in the fabric
    // inboxes and are drained when the worker thaws.
    ++cycles_.total;
    ++cycles_.frozen;
    return;
  }

  // Background unit: dispatch inbound remote requests to the local index
  // coprocessor. Stops at the first capacity reject to preserve channel
  // FIFO order.
  if (fabric_ != nullptr) {
    auto& inbound = fabric_->requests(id_);
    while (!inbound.empty()) {
      if (!coproc_->Submit(inbound.front())) break;
      inbound.pop_front();
    }
  }

  // Route completed coprocessor results.
  auto& results = coproc_->results();
  while (!results.empty()) {
    index::DbResult r = results.front();
    results.pop_front();
    if (r.is_remote) {
      fabric_->SendResponse(cycle, id_, r.origin_worker, r);
    } else {
      softcore_->WriteCp(r);
    }
  }

  // Inbound response packets: asynchronous CP-register writeback.
  if (fabric_ != nullptr) {
    auto& responses = fabric_->responses(id_);
    while (!responses.empty()) {
      const index::DbResult& r = responses.front();
      if (r.sent_at != 0) remote_rtt_.Add(double(cycle - r.sent_at));
      softcore_->WriteCp(r);
      responses.pop_front();
    }
  }

  coproc_->Tick(cycle);
  softcore_->Tick(cycle);

  // Charge this cycle to exactly one breakdown bucket (see CycleBreakdown).
  ++cycles_.total;
  switch (softcore_->wait_kind(cycle)) {
    case Softcore::WaitKind::kBusy:
      ++cycles_.busy;
      break;
    case Softcore::WaitKind::kDramWait:
      ++cycles_.dram_stall;
      break;
    case Softcore::WaitKind::kDispatchBlocked:
      ++cycles_.backpressure;
      break;
    case Softcore::WaitKind::kCpWait:
    case Softcore::WaitKind::kIdle:
      // The core is not the limiter; attribute the cycle to whatever the
      // coprocessor was doing (or failing to do) on the core's behalf.
      if (coproc_->hazard_stalled()) {
        ++cycles_.hazard_block;
      } else if (coproc_->dram_stalled()) {
        ++cycles_.dram_stall;
      } else if (!coproc_->Idle()) {
        ++cycles_.busy;
      } else {
        ++cycles_.idle;
      }
      break;
  }
}

bool PartitionWorker::Idle() const {
  return softcore_->Idle() && coproc_->Idle();
}

uint64_t PartitionWorker::NextWakeCycle(uint64_t now) const {
  // A frozen worker does nothing but count frozen cycles until the thaw —
  // even with packets or results queued (they wait, as in per-cycle mode).
  if (now + 1 < frozen_until_) return frozen_until_;
  if (fabric_ != nullptr && (!fabric_->requests(id_).empty() ||
                             !fabric_->responses(id_).empty())) {
    return now + 1;  // background unit / response drain acts
  }
  if (!coproc_->results().empty()) return now + 1;  // result routing acts
  return std::min(coproc_->NextWakeCycle(now), softcore_->NextWakeCycle(now));
}

void PartitionWorker::SkipCycles(uint64_t now, uint64_t count) {
  cycles_.total += count;
  if (now + 1 < frozen_until_) {
    // Sub-blocks do not tick while frozen, so they get no skip either.
    cycles_.frozen += count;
    return;
  }
  // Forward the skip first so the classification below sees the same
  // span-steady stall flags a real tick would have produced.
  coproc_->SkipCycles(now, count);
  softcore_->SkipCycles(now, count);
  switch (softcore_->wait_kind(now + 1)) {
    case Softcore::WaitKind::kBusy:
      cycles_.busy += count;
      break;
    case Softcore::WaitKind::kDramWait:
      cycles_.dram_stall += count;
      break;
    case Softcore::WaitKind::kDispatchBlocked:
      cycles_.backpressure += count;
      break;
    case Softcore::WaitKind::kCpWait:
    case Softcore::WaitKind::kIdle:
      if (coproc_->hazard_stalled()) {
        cycles_.hazard_block += count;
      } else if (coproc_->dram_stalled()) {
        cycles_.dram_stall += count;
      } else if (!coproc_->Idle()) {
        cycles_.busy += count;
      } else {
        cycles_.idle += count;
      }
      break;
  }
}

void PartitionWorker::CollectStats(StatsScope scope) const {
  StatsScope cyc = scope.Sub("cycles");
  cyc.SetCounter("total", cycles_.total);
  cyc.SetCounter("busy", cycles_.busy);
  cyc.SetCounter("dram_stall", cycles_.dram_stall);
  cyc.SetCounter("hazard_block", cycles_.hazard_block);
  cyc.SetCounter("backpressure", cycles_.backpressure);
  cyc.SetCounter("idle", cycles_.idle);
  if (cycles_.frozen > 0) cyc.SetCounter("frozen", cycles_.frozen);
  scope.SetSummary("remote_rtt_cycles", remote_rtt_);
  softcore_->CollectStats(scope.Sub("softcore"));
  coproc_->CollectStats(scope.Sub("coproc"));
}

}  // namespace bionicdb::core
