#include "core/worker.h"

namespace bionicdb::core {

PartitionWorker::PartitionWorker(db::Database* db, db::WorkerId id,
                                 const sim::TimingConfig& timing,
                                 Softcore::Config softcore_config,
                                 index::IndexCoprocessor::Config coproc_config,
                                 comm::CommFabric* fabric)
    : sim::Component("worker/" + std::to_string(id)),
      id_(id),
      fabric_(fabric) {
  coproc_ = std::make_unique<index::IndexCoprocessor>(db, id, coproc_config);
  softcore_ = std::make_unique<Softcore>(db, id, timing, softcore_config,
                                         this);
}

bool PartitionWorker::DispatchLocal(const index::DbOp& op) {
  return coproc_->Submit(op);
}

void PartitionWorker::DispatchRemote(uint32_t partition,
                                     const index::DbOp& op) {
  fabric_->SendRequest(now_, id_, partition, op);
}

void PartitionWorker::Tick(uint64_t cycle) {
  now_ = cycle;

  // Background unit: dispatch inbound remote requests to the local index
  // coprocessor. Stops at the first capacity reject to preserve channel
  // FIFO order.
  if (fabric_ != nullptr) {
    auto& inbound = fabric_->requests(id_);
    while (!inbound.empty()) {
      if (!coproc_->Submit(inbound.front())) break;
      inbound.pop_front();
    }
  }

  // Route completed coprocessor results.
  auto& results = coproc_->results();
  while (!results.empty()) {
    index::DbResult r = results.front();
    results.pop_front();
    if (r.is_remote) {
      fabric_->SendResponse(cycle, id_, r.origin_worker, r);
    } else {
      softcore_->WriteCp(r);
    }
  }

  // Inbound response packets: asynchronous CP-register writeback.
  if (fabric_ != nullptr) {
    auto& responses = fabric_->responses(id_);
    while (!responses.empty()) {
      softcore_->WriteCp(responses.front());
      responses.pop_front();
    }
  }

  coproc_->Tick(cycle);
  softcore_->Tick(cycle);
}

bool PartitionWorker::Idle() const {
  return softcore_->Idle() && coproc_->Idle();
}

}  // namespace bionicdb::core
