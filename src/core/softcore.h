// The BionicDB softcore (paper sections 4.3 and 4.5).
//
// A deliberately simple RISC-style core: five execution steps per CPU
// instruction (IFetch/Decode/Execute/Memory/Writeback, charged as a fixed
// cycle cost — the paper rules out instruction pipelining and out-of-order
// execution), 256 general-purpose and 256 coprocessor registers on BRAM,
// base-offset addressing, and two extra steps (Prepare/Dispatch) that
// forward DB instructions asynchronously to the index coprocessor or to a
// remote worker through the on-chip channels.
//
// Transaction interleaving (section 4.5): incoming transactions join the
// current batch while GP/CP registers remain (register renaming = adding a
// per-transaction base); the logic phase of each transaction runs to YIELD
// and then switches (10 cycles) to the next without waiting for outstanding
// DB instructions. When the batch closes, the commit phase revisits every
// transaction in admission order: the commit handler RETs each CP register
// (blocking), and any error status diverts control to the abort handler.
// COMMIT/ABORT finally publish or roll back the hardware-tracked write-set
// and stamp the transaction block's commit state.
#ifndef BIONICDB_CORE_SOFTCORE_H_
#define BIONICDB_CORE_SOFTCORE_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "db/catalogue.h"
#include "db/database.h"
#include "db/txn_block.h"
#include "db/types.h"
#include "comm/envelope.h"
#include "isa/program.h"
#include "sim/component.h"
#include "sim/config.h"
#include "sim/arena.h"
#include "sim/memory.h"

namespace bionicdb::cc {
class CcUnit;
}  // namespace bionicdb::cc

namespace bionicdb::core {

class Softcore {
 public:
  struct Config {
    bool interleaving = true;
    /// Future-work extension (paper section 4.5 discussion): when a RET
    /// blocks on a pending CP register during the LOGIC phase, save the
    /// context and switch to another transaction instead of stalling. The
    /// paper conjectures this "might be helpful to deal with heavy data
    /// dependency" (TPC-C); the ablation_dynamic bench quantifies it.
    bool dynamic_switching = false;
    uint32_t max_contexts = 32;
    uint32_t n_gp_regs = 256;
    uint32_t n_cp_regs = 256;

    /// Multi-chip two-phase commit (DESIGN.md section 14). Workers are
    /// grouped into chips of `workers_per_chip` (matching the fabric's
    /// ClusterConfig); a COMMIT/ABORT whose write-set touches a foreign
    /// chip runs 2PC — PrepareReq/PrepareAck voting, then CommitReq
    /// carrying the decision plus that chip's write-set entries — instead
    /// of the fire-and-forget kMemOp publication used within a chip.
    /// 0 = single chip, 2PC never engages.
    struct TwoPc {
      uint32_t workers_per_chip = 0;
      /// Coordinator abort deadline for the vote phase. Must exceed the
      /// inter-chip round trip plus fabric retransmit timeouts by a wide
      /// margin or fault-free transactions spuriously abort.
      uint64_t prepare_timeout_cycles = 50000;
      /// Decision re-send period while CommitAcks are missing. The
      /// decision can never be abandoned (participants must learn it), so
      /// this resends forever; exactly-once apply lives at the
      /// participant. Keep above the fabric retransmit timeout.
      uint64_t decision_resend_cycles = 8192;
      /// Worker-side cap on in-flight cross-chip requests (kIndexOp /
      /// kPrepareReq / kCommitReq); a full window rejects the Issue and
      /// the softcore retries, charged as interchip backpressure.
      uint32_t interchip_window = 32;
    };
    TwoPc two_pc;

    /// Partition-local concurrency-control unit (engine-owned; see
    /// cc/cc_unit.h). Null or kTimestamp mode keeps the historical T/O
    /// behaviour bit-for-bit; kSgt/kMvcc route transaction lifecycle
    /// events (begin / commit-validate / finish) through the unit.
    cc::CcUnit* cc_unit = nullptr;
  };

  struct BatchStats {
    uint64_t committed = 0;
    uint64_t aborted = 0;
    uint64_t batches = 0;
    uint64_t context_switches = 0;
    uint64_t instructions = 0;
  };

  Softcore(db::Database* db, db::WorkerId worker_id,
           const sim::TimingConfig& timing, Config config,
           comm::IssuePort* port);

  /// Queues a transaction block for execution.
  void SubmitBlock(sim::Addr block_base) { input_queue_.push_back(block_base); }
  size_t input_queue_depth() const { return input_queue_.size(); }

  /// CP-register writeback for a completed DB instruction (a kIndexResult
  /// envelope, local or off the fabric). Appends to the owning
  /// transaction's write-set.
  void WriteCp(const comm::Envelope& result);

  /// Resumes a LOAD stalled on a remote raw-memory fetch (partitioned DRAM:
  /// the address lives in another partition's arena, so the value arrives
  /// as a fabric response instead of a local DRAM completion). The worker
  /// routes kMemResult envelopes here rather than through WriteCp.
  void CompleteRemoteLoad(uint64_t now, const comm::Envelope& result);

  /// 2PC coordinator ack intake (kPrepareAck / kCommitAck envelopes routed
  /// by the worker). Acks for a transaction that already finished — late
  /// duplicates after fabric retransmission — are counted and dropped.
  void HandlePrepareAck(uint64_t now, const comm::Envelope& env);
  void HandleCommitAck(uint64_t now, const comm::Envelope& env);

  void Tick(uint64_t now);
  bool Idle() const;

  /// Event-driven scheduling hint (contract in sim/component.h): the
  /// fixed-cost execution timer is a pure no-op until busy_until_; stalled
  /// states that spin a per-cycle counter (RET wait, COMMIT/ABORT result
  /// drain) are quiescent-with-bulk-accounting and wake via the worker's
  /// own hints (result routing fills the CP registers).
  uint64_t NextWakeCycle(uint64_t now) const;
  /// Bulk-applies the per-cycle counters a quiescent span would have
  /// accumulated (ret/commit/abort wait counters, spin instructions).
  void SkipCycles(uint64_t now, uint64_t count);

  const BatchStats& stats() const { return stats_; }
  CounterSet& counters() { return counters_; }

  /// What the core is doing at cycle `now`, for the worker's per-cycle
  /// breakdown. Exactly one kind per cycle; kBusy wins while the
  /// fixed-cost execution timer is running (instruction retirement /
  /// context switch in progress).
  enum class WaitKind : uint8_t {
    kBusy,             // executing / switching
    kDramWait,         // ingest or LOAD waiting on (or rejected by) DRAM
    kCpWait,           // RET blocked on a pending CP register
    kDispatchBlocked,  // local coprocessor at its in-flight cap
    kInterchipWait,    // 2PC vote/decision round trip or full send window
    kIdle,             // no work
  };
  WaitKind wait_kind(uint64_t now) const {
    if (busy_until_ > now) return WaitKind::kBusy;
    switch (state_) {
      case State::kRunning:
      case State::kSwitching:
        return WaitKind::kBusy;
      case State::kIngestRetry:
      case State::kFetchBlock:
      case State::kMemWait:
        return WaitKind::kDramWait;
      case State::kWaitCp:
        return WaitKind::kCpWait;
      case State::kDispatchRetry:
        return ChipOfWorker(pending_partition_) != ChipOfWorker(worker_id_)
                   ? WaitKind::kInterchipWait
                   : WaitKind::kDispatchBlocked;
      case State::kTwoPcPrepare:
      case State::kTwoPcDecide:
        return WaitKind::kInterchipWait;
      case State::kIdle:
        return WaitKind::kIdle;
    }
    return WaitKind::kIdle;
  }

  /// Chip index of a worker under the 2PC grouping (0 when off).
  uint32_t ChipOfWorker(uint32_t w) const {
    return config_.two_pc.workers_per_chip > 0
               ? w / config_.two_pc.workers_per_chip
               : 0;
  }

  /// Dumps execution counters and batch statistics under `scope`.
  void CollectStats(StatsScope scope) const;

 private:
  enum class State : uint8_t {
    kIdle,        // pick next work item
    kIngestRetry,  // ingest read rejected by DRAM backpressure; retry
    kFetchBlock,  // waiting for the transaction-block ingest read
    kRunning,     // executing instructions
    kMemWait,     // LOAD waiting on DRAM
    kWaitCp,      // RET blocked on a pending CP register
    kDispatchRetry,  // local coprocessor at capacity / send window full
    kSwitching,   // context switch in progress
    kTwoPcPrepare,  // 2PC coordinator: sending PrepareReqs / awaiting votes
    kTwoPcDecide,   // 2PC coordinator: sending decision / awaiting acks
  };

  enum class Phase : uint8_t { kLogic, kHandlers };

  struct TxnContext {
    bool in_use = false;
    sim::Addr block_base = sim::kNullAddr;
    const db::ProcedureInfo* proc = nullptr;
    uint64_t pc = 0;
    uint32_t gp_base = 0;
    uint32_t cp_base = 0;
    db::Timestamp ts = 0;
    uint32_t outstanding_db = 0;
    bool aborted = false;
    bool logic_done = false;
    bool finished = false;
    // Dynamic scheduling: parked on a RET whose CP register is pending.
    bool waiting_cp = false;
    uint32_t wait_cp_index = 0;
    // Status-register flags (saved/restored with the context, section 4.3).
    bool flag_eq = false;
    bool flag_lt = false;
    std::vector<cc::WriteSetEntry> write_set;
  };

  // One instruction executed per call; manages state transitions.
  void Step(uint64_t now);
  /// Starts ingesting the next input transaction if the batch has room.
  bool TryAdmit(uint64_t now);
  /// Called when the ingest read returns: builds the context, begins logic.
  void BeginTxn(uint64_t now);
  /// Executes one instruction of the current context.
  void Execute(uint64_t now);
  void ExecuteDb(uint64_t now, const isa::Instruction& inst);
  void FinishTxn(uint64_t now, bool committed);
  /// Moves to the next phase-2 context or closes the batch.
  void AdvanceCommitPhase(uint64_t now);
  void StartSwitch(uint64_t now, uint32_t next_ctx, Phase phase);

  uint64_t& Gp(uint32_t ctx, isa::Reg r);
  /// Builds a raw-memory kMemOp envelope (remote LOAD/STORE/commit
  /// publication) addressed by the caller to the partition owning `addr`.
  comm::Envelope MakeMemOp(comm::MemOp::Kind kind, sim::Addr addr);
  /// Engages 2PC for the current context's COMMIT/ABORT when its write-set
  /// spans foreign chips: groups those entries per participant worker and
  /// enters the vote phase (commit) or goes straight to the decision phase
  /// (abort — no votes needed). Returns false when 2PC is off or all
  /// entries are chip-local, leaving the caller on the classic path.
  bool StartTwoPc(uint64_t now, bool want_commit);
  /// Applies the decision to every chip-local write-set entry (existing
  /// local / same-chip kMemOp paths), stamps the transaction block, and
  /// arms the decision send loop toward the foreign participants.
  void EnterDecisionPhase(uint64_t now);
  void ResetBatch();
  void CompleteRet(uint64_t now, const isa::Instruction& inst);
  /// Dynamic scheduling helpers.
  bool TryResumeWaiter(uint64_t now);
  bool AllLogicPhasesDone() const;
  /// Side-effect-free probe of TryResumeWaiter's search.
  bool AnyResumableWaiter() const;

  db::Database* db_;
  sim::DramMemory* dram_;
  db::WorkerId worker_id_;
  sim::TimingConfig timing_;
  Config config_;
  comm::IssuePort* port_;

  sim::RingQueue<sim::Addr> input_queue_;
  sim::MemResponseQueue mem_resp_;

  // Register files (BRAM).
  std::vector<uint64_t> gp_;
  std::vector<uint64_t> cp_;
  std::vector<uint8_t> cp_valid_;

  // Batch state.
  std::vector<TxnContext> contexts_;
  std::vector<uint32_t> batch_order_;  // admission order
  uint32_t gp_next_ = 0;
  uint32_t cp_next_ = 0;
  bool batch_closed_ = false;
  uint32_t commit_cursor_ = 0;  // index into batch_order_ during phase 2

  // Execution state.
  State state_ = State::kIdle;
  Phase phase_ = Phase::kLogic;
  uint32_t cur_ctx_ = 0;
  uint64_t busy_until_ = 0;
  /// kMemWait variant: the LOAD went to a foreign partition over the
  /// fabric; the wake comes from CompleteRemoteLoad, not mem_resp_.
  bool remote_mem_wait_ = false;
  // Pending items for stalled states.
  isa::Instruction pending_inst_;
  comm::Envelope pending_op_;
  uint32_t pending_partition_ = 0;
  sim::Addr pending_block_ = sim::kNullAddr;
  uint32_t switch_target_ = 0;
  Phase switch_phase_ = Phase::kLogic;

  /// The single active 2PC run (the commit phase revisits transactions
  /// serially, so at most one COMMIT/ABORT is ever in flight).
  struct TwoPcRun {
    db::Timestamp ts = 0;
    bool decision_commit = false;
    bool vote_abort = false;  // any participant voted no
    uint64_t deadline = 0;     // prepare-phase abort deadline
    uint64_t next_resend = 0;  // decision-phase re-send deadline
    uint32_t acks = 0;
    struct Participant {
      db::WorkerId worker = 0;
      std::vector<cc::WriteSetEntry> entries;
      bool sent = false;   // current phase's request is on the wire
      bool acked = false;  // current phase's ack arrived
    };
    std::vector<Participant> parts;
  };
  TwoPcRun twopc_;

  BatchStats stats_;
  CounterSet counters_;
  // Lazy slot handles for per-cycle wait/stall counters (FastCounter):
  // these are bumped every stalled cycle, where a string-keyed map walk
  // dominated the dense-activity profile.
  FastCounter fc_ret_wait_{&counters_, "ret_wait_cycles"};
  FastCounter fc_dispatch_stall_{&counters_, "dispatch_stall_cycles"};
  FastCounter fc_interchip_window_stall_{&counters_,
                                         "interchip_window_stall_cycles"};
  FastCounter fc_commit_wait_{&counters_, "commit_wait_cycles"};
  FastCounter fc_abort_wait_{&counters_, "abort_wait_cycles"};
  FastCounter fc_ingest_dram_stall_{&counters_, "ingest_dram_stall"};
  FastCounter fc_load_dram_stall_{&counters_, "load_dram_stall"};
  FastCounter fc_txns_admitted_{&counters_, "txns_admitted"};
  FastCounter fc_twopc_prepare_wait_{&counters_,
                                     "twopc_prepare_wait_cycles"};
  FastCounter fc_twopc_decision_wait_{&counters_,
                                      "twopc_decision_wait_cycles"};
};

}  // namespace bionicdb::core

#endif  // BIONICDB_CORE_SOFTCORE_H_
