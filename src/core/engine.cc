#include "core/engine.h"

namespace bionicdb::core {

BionicDb::BionicDb(const EngineOptions& options) : options_(options) {
  sim_ = std::make_unique<sim::Simulator>(options.timing);
  // One DRAM lane + arena per partition (the per-worker memory channels of
  // Fig. 1b). Must precede table creation so rows land in their partition's
  // arena.
  sim_->dram().ConfigurePartitions(options.n_workers);
  database_ = std::make_unique<db::Database>(&sim_->dram(), options.n_workers,
                                             options.seed);
  fabric_ = std::make_unique<comm::CommFabric>(
      options.n_workers, options.timing, options.topology, options.cluster);
  fabric_->set_reliability(options.reliability);
  sim_->AddComponent(fabric_.get());
  for (uint32_t w = 0; w < options.n_workers; ++w) {
    Softcore::Config softcore = options.softcore;
    index::IndexCoprocessor::Config coproc = options.coproc;
    if (options.cc_mode != cc::CcMode::kTimestamp) {
      cc_units_.push_back(
          std::make_unique<cc::CcUnit>(&sim_->dram(), options.cc_mode));
      softcore.cc_unit = cc_units_.back().get();
      coproc.cc_unit = cc_units_.back().get();
    }
    workers_.push_back(std::make_unique<PartitionWorker>(
        database_.get(), w, options.timing, softcore, coproc, fabric_.get()));
    sim_->AddComponent(workers_.back().get(), w);
  }
  sim_->SetEpochFabric(fabric_.get(), fabric_.get());
}

Status BionicDb::RegisterProcedure(db::TxnTypeId type, isa::Program program,
                                   uint64_t block_data_size) {
  return database_->catalogue().RegisterProcedure(type, std::move(program),
                                                  block_data_size);
}

db::TxnBlock BionicDb::AllocateBlock(db::TxnTypeId type) {
  const db::ProcedureInfo* proc = database_->catalogue().FindProcedure(type);
  uint64_t size = proc != nullptr ? proc->block_data_size : 256;
  return db::TxnBlock::Allocate(&sim_->dram(), type, size);
}

void BionicDb::Submit(db::WorkerId worker, sim::Addr block) {
  workers_[worker]->SubmitBlock(block);
}

uint64_t BionicDb::Drain(uint64_t max_cycles) {
  uint64_t start = sim_->now();
  sim_->RunUntilIdle(max_cycles);
  return sim_->now() - start;
}

uint64_t BionicDb::TotalCommitted() const {
  uint64_t n = 0;
  for (const auto& w : workers_) n += w->stats().committed;
  return n;
}

uint64_t BionicDb::TotalAborted() const {
  uint64_t n = 0;
  for (const auto& w : workers_) n += w->stats().aborted;
  return n;
}

void BionicDb::CollectStats(StatsRegistry* registry) const {
  StatsScope root(registry, "");
  sim_->CollectStats(root.Sub("sim"));
  fabric_->CollectStats(root.Sub("fabric"));
  StatsScope workers = root.Sub("workers");
  for (const auto& w : workers_) {
    w->CollectStats(workers.Sub(std::to_string(w->id())));
  }
  root.SetCounter("total_committed", TotalCommitted());
  root.SetCounter("total_aborted", TotalAborted());
  root.SetGauge("throughput_tps", Throughput());
}

}  // namespace bionicdb::core
