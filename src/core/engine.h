// BionicDb: the top-level engine — the library's primary public API.
//
// Wires together the cycle simulator, simulated DRAM, the partitioned
// database, the on-chip communication fabric and one partition worker per
// partition. Typical use:
//
//   core::EngineOptions opts;
//   opts.n_workers = 4;
//   core::BionicDb db(opts);
//   db.database().CreateTable(schema);
//   db.RegisterProcedure(kMyTxn, program, block_size);
//   ... bulk-load via db.database().LoadU64(...) ...
//   auto block = db.AllocateBlock(kMyTxn);
//   block.WriteKeyU64(0, key);
//   db.Submit(/*worker=*/0, block.base());
//   db.Drain();
//   double tps = db.Throughput();
#ifndef BIONICDB_CORE_ENGINE_H_
#define BIONICDB_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cc/cc_mode.h"
#include "cc/cc_unit.h"
#include "comm/channels.h"
#include "common/stats.h"
#include "common/status.h"
#include "core/worker.h"
#include "db/database.h"
#include "db/txn_block.h"
#include "sim/simulator.h"

namespace bionicdb::core {

struct EngineOptions {
  /// Partition workers (= partitions). The paper fits 4 on a Virtex-5;
  /// datacenter-grade chips fit tens to hundreds (the scaling ablation).
  uint32_t n_workers = 4;
  sim::TimingConfig timing;
  Softcore::Config softcore;
  index::IndexCoprocessor::Config coproc;
  comm::Topology topology = comm::Topology::kCrossbar;
  /// Multi-chip/multi-node deployment (0 = everything on one chip).
  comm::CommFabric::ClusterConfig cluster;
  /// Channel delivery guarantees (ack/retransmit/dedup). Off by default:
  /// the paper's channels are lossless and pay no protocol overhead.
  comm::ReliabilityConfig reliability;
  /// Concurrency-control scheme for the simulated tier (cc/cc_unit.h).
  /// kTimestamp keeps the historical T/O behaviour bit-for-bit (no CC
  /// units are even constructed); kSgt/kMvcc give every partition its own
  /// CC unit wired into that worker's softcore and index pipelines.
  cc::CcMode cc_mode = cc::CcMode::kTimestamp;
  uint64_t seed = 42;
};

class BionicDb {
 public:
  explicit BionicDb(const EngineOptions& options);

  db::Database& database() { return *database_; }
  sim::Simulator& simulator() { return *sim_; }
  const EngineOptions& options() const { return options_; }
  PartitionWorker& worker(uint32_t i) { return *workers_[i]; }
  /// Partition i's CC unit, or nullptr in kTimestamp mode (no units).
  const cc::CcUnit* cc_unit(uint32_t i) const {
    return i < cc_units_.size() ? cc_units_[i].get() : nullptr;
  }
  comm::CommFabric& fabric() { return *fabric_; }

  /// Uploads a pre-compiled stored procedure to every worker's catalogue.
  Status RegisterProcedure(db::TxnTypeId type, isa::Program program,
                           uint64_t block_data_size);

  /// Allocates a transaction block sized for `type` in simulated DRAM.
  db::TxnBlock AllocateBlock(db::TxnTypeId type);

  /// Enqueues a transaction block on a worker's input queue.
  void Submit(db::WorkerId worker, sim::Addr block);

  /// Runs the simulation until all submitted transactions complete (or the
  /// cycle budget runs out). Returns cycles elapsed during this call.
  uint64_t Drain(uint64_t max_cycles = 4ull << 30);

  /// Steps the simulation a fixed number of cycles.
  void Step(uint64_t cycles) { sim_->Step(cycles); }

  // --- Aggregate statistics --------------------------------------------
  uint64_t TotalCommitted() const;
  uint64_t TotalAborted() const;
  uint64_t now() const { return sim_->now(); }
  /// Committed transactions per second over the engine's whole lifetime.
  double Throughput() const {
    return options_.timing.Throughput(TotalCommitted(), sim_->now());
  }

  /// Dumps the full engine statistics tree into `registry`:
  ///   sim/...       cycles, per-component busy/idle, DRAM channels
  ///   fabric/...    on-chip message counters
  ///   workers/<id>/ cycle breakdown, RTT, softcore + coprocessor stats
  void CollectStats(StatsRegistry* registry) const;

 private:
  EngineOptions options_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<db::Database> database_;
  std::unique_ptr<comm::CommFabric> fabric_;
  /// One CC unit per partition when cc_mode != kTimestamp (empty
  /// otherwise). Owned here and injected into each worker's softcore and
  /// coprocessor configs by pointer; units hold only partition-local state
  /// touched from the owning island's tick path (PDES-safe).
  std::vector<std::unique_ptr<cc::CcUnit>> cc_units_;
  std::vector<std::unique_ptr<PartitionWorker>> workers_;
};

}  // namespace bionicdb::core

#endif  // BIONICDB_CORE_ENGINE_H_
