// A partition worker: softcore + index coprocessor + channel endpoints
// (paper Fig. 2).
//
// Per tick the worker runs its background unit (inbound remote requests ->
// local coprocessor), routes completed coprocessor results (local ones to
// CP-register writeback, remote ones back over the response channel),
// applies inbound response packets, and advances the coprocessor and
// softcore.
#ifndef BIONICDB_CORE_WORKER_H_
#define BIONICDB_CORE_WORKER_H_

#include <memory>

#include "comm/channels.h"
#include "core/softcore.h"
#include "db/database.h"
#include "index/coprocessor.h"
#include "sim/component.h"

namespace bionicdb::core {

class PartitionWorker : public sim::Component, public DbDispatcher {
 public:
  PartitionWorker(db::Database* db, db::WorkerId id,
                  const sim::TimingConfig& timing,
                  Softcore::Config softcore_config,
                  index::IndexCoprocessor::Config coproc_config,
                  comm::CommFabric* fabric);

  /// Queues a transaction block on this worker's input queue.
  void SubmitBlock(sim::Addr block) { softcore_->SubmitBlock(block); }

  void Tick(uint64_t cycle) override;
  bool Idle() const override;

  // DbDispatcher:
  bool DispatchLocal(const index::DbOp& op) override;
  void DispatchRemote(uint32_t partition, const index::DbOp& op) override;

  db::WorkerId id() const { return id_; }
  Softcore& softcore() { return *softcore_; }
  index::IndexCoprocessor& coprocessor() { return *coproc_; }
  const Softcore::BatchStats& stats() const { return softcore_->stats(); }

 private:
  db::WorkerId id_;
  comm::CommFabric* fabric_;
  uint64_t now_ = 0;
  std::unique_ptr<index::IndexCoprocessor> coproc_;
  std::unique_ptr<Softcore> softcore_;
};

}  // namespace bionicdb::core

#endif  // BIONICDB_CORE_WORKER_H_
