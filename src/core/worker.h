// A partition worker: softcore + index coprocessor + channel endpoints
// (paper Fig. 2).
//
// Per tick the worker runs its background unit (inbound request envelopes
// -> local coprocessor for kIndexOp, the raw-memory service unit for kMemOp
// under partitioned DRAM), routes completed coprocessor results, applies
// inbound response envelopes, and advances the coprocessor and softcore.
// All of that routing funnels through one surface: the worker IS the
// comm::IssuePort for every endpoint it hosts — a destination equal to its
// own id applies the envelope locally by message class, anything else goes
// on the fabric (requests stamped with the send cycle for RTT).
#ifndef BIONICDB_CORE_WORKER_H_
#define BIONICDB_CORE_WORKER_H_

#include <map>
#include <memory>

#include "comm/channels.h"
#include "core/softcore.h"
#include "db/database.h"
#include "index/coprocessor.h"
#include "sim/component.h"

namespace bionicdb::core {

class PartitionWorker : public sim::Component, public comm::IssuePort {
 public:
  PartitionWorker(db::Database* db, db::WorkerId id,
                  const sim::TimingConfig& timing,
                  Softcore::Config softcore_config,
                  index::IndexCoprocessor::Config coproc_config,
                  comm::CommFabric* fabric);

  /// Queues a transaction block on this worker's input queue.
  void SubmitBlock(sim::Addr block) { softcore_->SubmitBlock(block); }

  void Tick(uint64_t cycle) override;
  bool Idle() const override;

  /// Event-driven scheduling hint (contract in sim/component.h): frozen
  /// spans wake at thaw; pending fabric packets or unrouted coprocessor
  /// results want the next cycle; otherwise the earliest of the
  /// coprocessor's and softcore's own wake points.
  uint64_t NextWakeCycle(uint64_t now) const override;
  /// Bulk-applies the cycle-breakdown accounting for a skipped span (one
  /// bucket per cycle, identical to per-cycle classification) and forwards
  /// the skip to the coprocessor and softcore.
  void SkipCycles(uint64_t now, uint64_t count) override;

  // comm::IssuePort: the single dispatch surface. `dst == id()` applies
  // the envelope locally (kIndexOp -> coprocessor submit, kMemOp ->
  // raw-memory service, kIndexResult -> CP writeback, kMemResult ->
  // remote-LOAD resume); any other destination is a fabric send. Returns
  // false only for a local request rejected this cycle (in-flight cap /
  // DRAM backpressure).
  bool Issue(db::WorkerId dst, const comm::Envelope& env) override;

  db::WorkerId id() const { return id_; }
  Softcore& softcore() { return *softcore_; }
  index::IndexCoprocessor& coprocessor() { return *coproc_; }
  const Softcore::BatchStats& stats() const { return softcore_->stats(); }

  /// Fault injection: the worker executes nothing until `cycle` — inbound
  /// packets queue up in the fabric, remote peers stall on its responses.
  /// Models a hung or glitched partition core; extending an active freeze
  /// is allowed (the later deadline wins).
  void FreezeUntil(uint64_t cycle) {
    frozen_until_ = std::max(frozen_until_, cycle);
  }
  bool frozen(uint64_t cycle) const { return cycle < frozen_until_; }

  /// Per-cycle stall attribution: every worker tick is charged to exactly
  /// one bucket, so busy + dram_stall + hazard_block + backpressure + idle
  /// == total by construction. Sampled post-tick: the softcore's wait kind
  /// decides first; a waiting/idle softcore defers to the coprocessor's
  /// per-tick stall flags.
  struct CycleBreakdown {
    uint64_t total = 0;
    uint64_t busy = 0;
    uint64_t dram_stall = 0;
    uint64_t hazard_block = 0;
    uint64_t backpressure = 0;
    uint64_t idle = 0;
    /// Cycles lost to an injected worker freeze (fault injection only;
    /// reported only when nonzero so unfaulted runs keep the 5-bucket sum).
    uint64_t frozen = 0;
    /// Cycles blocked on the inter-chip tier: 2PC vote/decision round
    /// trips and full send-window backpressure (multi-chip runs only;
    /// reported only when nonzero, like `frozen`).
    uint64_t interchip_stall = 0;
  };
  const CycleBreakdown& cycles() const { return cycles_; }

  /// Round-trip latency (cycles) of remote DB instructions dispatched by
  /// this worker, measured wire-out to response-drain.
  const Summary& remote_rtt_cycles() const { return remote_rtt_; }

  /// Dumps the cycle breakdown, RTT summary, softcore and coprocessor
  /// statistics under `scope`.
  void CollectStats(StatsScope scope) const;

 private:
  /// Executes one inbound kMemOp envelope (remote LOAD/STORE/commit
  /// publication against this partition's arena) on this worker's DRAM
  /// lane. Returns false when a LOAD hit DRAM backpressure — the caller
  /// leaves the envelope queued and retries next tick, preserving channel
  /// FIFO.
  bool HandleMemOp(uint64_t cycle, const comm::Envelope& env);

  /// 2PC participant: applies (or replays the recorded decision for) a
  /// coordinator's CommitReq exactly once, then acks — every duplicate
  /// delivery re-acks so a lost first ack cannot wedge the coordinator.
  bool HandleCommitReq(uint64_t cycle, const comm::Envelope& env);

  /// Chip index of a worker under the 2PC grouping (0 when off).
  uint32_t ChipOfWorker(db::WorkerId w) const {
    return two_pc_.workers_per_chip > 0 ? w / two_pc_.workers_per_chip : 0;
  }

  db::WorkerId id_;
  comm::CommFabric* fabric_;
  sim::DramMemory* dram_;
  uint64_t now_ = 0;
  std::unique_ptr<index::IndexCoprocessor> coproc_;
  std::unique_ptr<Softcore> softcore_;
  CycleBreakdown cycles_;
  Summary remote_rtt_;
  uint64_t frozen_until_ = 0;
  // Remote raw-memory LOADs in service on the local lane: completions land
  // in mem_inbox_ and are answered over the response channel.
  sim::MemResponseQueue mem_inbox_;
  std::map<uint64_t, comm::Envelope> mem_pending_;
  uint64_t mem_cookie_next_ = 1;

  // --- Multi-chip state (Softcore::Config::TwoPc; inert when off) -------
  Softcore::Config::TwoPc two_pc_;
  /// Outstanding cross-chip requests (kIndexOp / kPrepareReq / kCommitReq)
  /// this worker has on the wire; a full window rejects further Issues.
  /// Decremented when the matching response returns from a foreign chip.
  uint32_t interchip_inflight_ = 0;
  /// Participant decision record: txn ts -> decision. Exactly-once apply
  /// under duplicated CommitReqs; the map never forgets, so replays only
  /// re-ack.
  std::map<db::Timestamp, bool> twopc_decisions_;
  uint64_t twopc_participant_applies_ = 0;
  uint64_t twopc_dup_decisions_ = 0;
};

}  // namespace bionicdb::core

#endif  // BIONICDB_CORE_WORKER_H_
