#include "core/softcore.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "cc/cc_unit.h"

namespace bionicdb::core {

Softcore::Softcore(db::Database* db, db::WorkerId worker_id,
                   const sim::TimingConfig& timing, Config config,
                   comm::IssuePort* port)
    : db_(db),
      dram_(db->dram()),
      worker_id_(worker_id),
      timing_(timing),
      config_(config),
      port_(port),
      gp_(config.n_gp_regs, 0),
      cp_(config.n_cp_regs, 0),
      cp_valid_(config.n_cp_regs, 1),
      contexts_(config.max_contexts) {}

uint64_t& Softcore::Gp(uint32_t ctx, isa::Reg r) {
  uint32_t idx = contexts_[ctx].gp_base + r;
  assert(idx < gp_.size());
  return gp_[idx];
}

bool Softcore::Idle() const {
  return state_ == State::kIdle && input_queue_.empty() &&
         pending_block_ == sim::kNullAddr && batch_order_.empty();
}

void Softcore::WriteCp(const comm::Envelope& result) {
  const comm::IndexResult& r = result.index_result();
  assert(result.hdr.cp_index < cp_.size());
  cp_[result.hdr.cp_index] = r.ToCpValue();
  cp_valid_[result.hdr.cp_index] = 1;
  TxnContext& ctx = contexts_[result.hdr.txn_slot];
  assert(ctx.outstanding_db > 0);
  --ctx.outstanding_db;
  if (r.write_kind != cc::WriteKind::kNone) {
    ctx.write_set.push_back(cc::WriteSetEntry{r.tuple_addr, r.write_kind});
  }
}

comm::Envelope Softcore::MakeMemOp(comm::MemOp::Kind kind, sim::Addr addr) {
  comm::Header h;
  h.origin = worker_id_;
  h.txn_slot = cur_ctx_;
  comm::MemOp op;
  op.kind = kind;
  op.addr = addr;
  return comm::Envelope(h, op);
}

void Softcore::CompleteRemoteLoad(uint64_t now, const comm::Envelope& result) {
  assert(state_ == State::kMemWait && remote_mem_wait_);
  Gp(cur_ctx_, pending_inst_.rd) = result.mem_result().value;
  remote_mem_wait_ = false;
  state_ = State::kRunning;
  busy_until_ = now + 1;
}

void Softcore::Tick(uint64_t now) {
  if (now < busy_until_) return;
  switch (state_) {
    case State::kIdle: {
      // Dynamic scheduling: resuming a parked transaction whose DB result
      // arrived beats admitting new work (it frees registers sooner).
      if (phase_ == Phase::kLogic && config_.dynamic_switching &&
          TryResumeWaiter(now)) {
        return;
      }
      if (phase_ == Phase::kLogic && !batch_closed_ && TryAdmit(now)) return;
      // Parked transactions must finish their logic phase before the batch
      // can commit; wait for their CP registers to fill.
      if (config_.dynamic_switching && !AllLogicPhasesDone()) return;
      // No more admissions possible: run the commit phase if the batch has
      // members, either because registers ran out (batch_closed_) or the
      // input drained.
      if (!batch_order_.empty()) {
        phase_ = Phase::kHandlers;
        commit_cursor_ = 0;
        // Skip transactions that already finished during the logic phase
        // (aborts triggered by data-dependent RET errors).
        while (commit_cursor_ < batch_order_.size() &&
               contexts_[batch_order_[commit_cursor_]].finished) {
          ++commit_cursor_;
        }
        if (commit_cursor_ >= batch_order_.size()) {
          ResetBatch();
          ++stats_.batches;
          return;
        }
        StartSwitch(now, batch_order_[commit_cursor_], Phase::kHandlers);
      }
      return;
    }
    case State::kIngestRetry:
      if (dram_->Issue(now, pending_block_, false, &mem_resp_, 0)) {
        state_ = State::kFetchBlock;
      } else {
        fc_ingest_dram_stall_.Add();
      }
      return;
    case State::kFetchBlock:
      if (!mem_resp_.empty()) {
        mem_resp_.pop_front();
        BeginTxn(now);
      }
      return;
    case State::kRunning:
      Execute(now);
      return;
    case State::kMemWait:
      if (remote_mem_wait_) return;  // resumed via CompleteRemoteLoad
      if (!mem_resp_.empty()) {
        mem_resp_.pop_front();
        // LOAD writeback: the value is read functionally on arrival.
        uint64_t addr = Gp(cur_ctx_, pending_inst_.rs1) + pending_inst_.imm;
        Gp(cur_ctx_, pending_inst_.rd) = dram_->Read64(addr);
        state_ = State::kRunning;
        busy_until_ = now + 1;
      }
      return;
    case State::kWaitCp: {
      uint32_t idx = contexts_[cur_ctx_].cp_base + pending_inst_.rs1;
      if (cp_valid_[idx]) {
        CompleteRet(now, pending_inst_);
        state_ = State::kRunning;
      } else {
        fc_ret_wait_.Add();
      }
      return;
    }
    case State::kDispatchRetry:
      if (port_->Issue(pending_partition_, pending_op_)) {
        ++contexts_[cur_ctx_].outstanding_db;
        state_ = State::kRunning;
        busy_until_ = now + 1;
      } else {
        (ChipOfWorker(pending_partition_) != ChipOfWorker(worker_id_)
             ? fc_interchip_window_stall_
             : fc_dispatch_stall_)
            .Add();
      }
      return;
    case State::kSwitching: {
      cur_ctx_ = switch_target_;
      phase_ = switch_phase_;
      TxnContext& ctx = contexts_[cur_ctx_];
      if (phase_ == Phase::kHandlers) {
        ctx.pc = ctx.aborted ? ctx.proc->program.abort_entry()
                             : ctx.proc->program.commit_entry();
      }
      state_ = State::kRunning;
      return;
    }
    case State::kTwoPcPrepare: {
      for (TwoPcRun::Participant& p : twopc_.parts) {
        if (p.acked || p.sent) continue;
        comm::Header h;
        h.origin = worker_id_;
        h.txn_slot = cur_ctx_;
        if (!port_->Issue(p.worker,
                          comm::Envelope(h, comm::PrepareReq{twopc_.ts}))) {
          // Inter-chip send window full; retry the remaining participants
          // next cycle.
          fc_interchip_window_stall_.Add();
          return;
        }
        p.sent = true;
      }
      if (twopc_.acks == twopc_.parts.size()) {
        twopc_.decision_commit = !twopc_.vote_abort;
        EnterDecisionPhase(now);
        return;
      }
      if (now >= twopc_.deadline) {
        // Vote round trip overdue: presume a participant unreachable and
        // abort everywhere. Participants hold no locks pre-decision, so a
        // unilateral coordinator abort is always safe.
        twopc_.decision_commit = false;
        counters_.Add("twopc_prepare_timeouts");
        EnterDecisionPhase(now);
        return;
      }
      fc_twopc_prepare_wait_.Add();
      return;
    }
    case State::kTwoPcDecide: {
      for (TwoPcRun::Participant& p : twopc_.parts) {
        if (p.acked || p.sent) continue;
        comm::Header h;
        h.origin = worker_id_;
        h.txn_slot = cur_ctx_;
        comm::CommitReq req;
        req.txn_ts = twopc_.ts;
        req.commit = twopc_.decision_commit;
        req.entries = p.entries;
        if (!port_->Issue(p.worker, comm::Envelope(h, std::move(req)))) {
          fc_interchip_window_stall_.Add();
          return;
        }
        p.sent = true;
      }
      if (twopc_.acks == twopc_.parts.size()) {
        FinishTxn(now, twopc_.decision_commit);
        return;
      }
      if (now >= twopc_.next_resend) {
        // The decision must reach every participant; re-send to the
        // unacked ones (their decision record makes re-application a
        // no-op + re-ack).
        for (TwoPcRun::Participant& p : twopc_.parts) {
          if (!p.acked) p.sent = false;
        }
        counters_.Add("twopc_decision_resends");
        twopc_.next_resend = now + config_.two_pc.decision_resend_cycles;
        return;
      }
      fc_twopc_decision_wait_.Add();
      return;
    }
  }
}

bool Softcore::TryAdmit(uint64_t now) {
  if (pending_block_ != sim::kNullAddr) {
    BeginTxn(now);
    return true;
  }
  if (input_queue_.empty()) return false;
  sim::Addr block = input_queue_.front();
  input_queue_.pop_front();
  pending_block_ = block;
  // Ingest: one DRAM read of the transaction-block header (step 1 of the
  // processing flow in Fig. 2). A backpressure reject retries next cycle —
  // it must NOT close the batch.
  if (!dram_->Issue(now, block, false, &mem_resp_, 0)) {
    fc_ingest_dram_stall_.Add();
    state_ = State::kIngestRetry;
    return true;
  }
  state_ = State::kFetchBlock;
  return true;
}

void Softcore::BeginTxn(uint64_t now) {
  db::TxnBlock block(dram_, pending_block_);
  const db::ProcedureInfo* proc =
      db_->catalogue().FindProcedure(block.txn_type());
  if (proc == nullptr) {
    block.set_state(db::TxnState::kAborted);
    counters_.Add("unknown_txn_type");
    pending_block_ = sim::kNullAddr;
    state_ = State::kIdle;
    return;
  }
  const uint32_t gp_need = std::max<uint32_t>(1, proc->program.gp_regs_used());
  const uint32_t cp_need = proc->program.cp_regs_used();
  // Find a free context slot.
  uint32_t slot = UINT32_MAX;
  for (uint32_t i = 0; i < contexts_.size(); ++i) {
    if (!contexts_[i].in_use) {
      slot = i;
      break;
    }
  }
  const bool fits = slot != UINT32_MAX &&
                    gp_next_ + gp_need <= config_.n_gp_regs &&
                    cp_next_ + cp_need <= config_.n_cp_regs;
  if (!fits) {
    if (batch_order_.empty()) {
      // A single transaction larger than the whole register file can never
      // run; reject it rather than livelock.
      block.set_state(db::TxnState::kAborted);
      counters_.Add("oversized_txn_rejected");
      pending_block_ = sim::kNullAddr;
      state_ = State::kIdle;
      return;
    }
    // Close the batch; this transaction is scheduled after it commits.
    batch_closed_ = true;
    state_ = State::kIdle;
    counters_.Add("batch_closed_on_registers");
    return;
  }

  TxnContext& ctx = contexts_[slot];
  ctx = TxnContext{};
  ctx.in_use = true;
  ctx.block_base = pending_block_;
  ctx.proc = proc;
  ctx.pc = proc->program.logic_entry();
  ctx.gp_base = gp_next_;
  ctx.cp_base = cp_next_;
  // Hardware timestamp: globally ordered, unique across workers.
  ctx.ts = (now << 8) | (worker_id_ & 0xff);
  if (config_.cc_unit != nullptr) config_.cc_unit->OnTxnBegin(ctx.ts);
  gp_next_ += gp_need;
  cp_next_ += cp_need;
  batch_order_.push_back(slot);
  // Base address register: r0 holds the transaction block's data area.
  gp_[ctx.gp_base] = ctx.block_base + db::kTxnBlockHeaderSize;
  // Mark this transaction's CP registers pending-free.
  for (uint32_t i = 0; i < cp_need; ++i) cp_valid_[ctx.cp_base + i] = 1;

  pending_block_ = sim::kNullAddr;
  cur_ctx_ = slot;
  state_ = State::kRunning;
  // Catalogue fetch (BRAM) + first IFetch.
  busy_until_ = now + timing_.cpu_instruction_cycles;
  fc_txns_admitted_.Add();
}

void Softcore::CompleteRet(uint64_t now, const isa::Instruction& inst) {
  TxnContext& ctx = contexts_[cur_ctx_];
  uint32_t idx = ctx.cp_base + inst.rs1;
  uint64_t value = cp_[idx];
  Gp(cur_ctx_, inst.rd) = value;
  busy_until_ = now + timing_.cpu_instruction_cycles;
  const bool in_abort_handler = ctx.pc >= ctx.proc->program.abort_entry();
  if (isa::CpValueStatus(value) != isa::CpStatus::kOk && !in_abort_handler) {
    // Diagnostics for stored-procedure authors: BIONICDB_DEBUG_RET=1 traces
    // every error result that diverts a transaction to its abort handler.
    static const bool debug_ret = getenv("BIONICDB_DEBUG_RET") != nullptr;
    if (debug_ret) {
      fprintf(stderr,
              "[w%u] RET error: pc=%llu cp(logical)=%u status=%u block=%llx\n",
              worker_id_, (unsigned long long)ctx.pc, unsigned(inst.rs1),
              unsigned(isa::CpValueStatus(value)),
              (unsigned long long)ctx.block_base);
    }
    // Any DB-instruction failure diverts control to the abort handler.
    ctx.aborted = true;
    ctx.pc = ctx.proc->program.abort_entry();
    counters_.Add("ret_error_to_abort");
  } else {
    ++ctx.pc;
  }
}

void Softcore::Execute(uint64_t now) {
  TxnContext& ctx = contexts_[cur_ctx_];
  const isa::Instruction& inst = ctx.proc->program.at(ctx.pc);
  ++stats_.instructions;
  const uint64_t cost = timing_.cpu_instruction_cycles;

  if (isa::IsDbOpcode(inst.opcode)) {
    ExecuteDb(now, inst);
    return;
  }

  using isa::Opcode;
  switch (inst.opcode) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv: {
      int64_t a = int64_t(Gp(cur_ctx_, inst.rs1));
      int64_t b = inst.use_imm ? inst.imm : int64_t(Gp(cur_ctx_, inst.rs2));
      int64_t r = 0;
      switch (inst.opcode) {
        case Opcode::kAdd: r = a + b; break;
        case Opcode::kSub: r = a - b; break;
        case Opcode::kMul: r = a * b; break;
        case Opcode::kDiv: r = b == 0 ? 0 : a / b; break;
        default: break;
      }
      Gp(cur_ctx_, inst.rd) = uint64_t(r);
      ++ctx.pc;
      busy_until_ = now + cost;
      return;
    }
    case Opcode::kMov:
      Gp(cur_ctx_, inst.rd) =
          inst.use_imm ? uint64_t(inst.imm) : Gp(cur_ctx_, inst.rs1);
      ++ctx.pc;
      busy_until_ = now + cost;
      return;
    case Opcode::kCmp: {
      int64_t a = int64_t(Gp(cur_ctx_, inst.rs1));
      int64_t b = inst.use_imm ? inst.imm : int64_t(Gp(cur_ctx_, inst.rs2));
      ctx.flag_eq = a == b;
      ctx.flag_lt = a < b;
      ++ctx.pc;
      busy_until_ = now + cost;
      return;
    }
    case Opcode::kLoad: {
      uint64_t addr = Gp(cur_ctx_, inst.rs1) + inst.imm;
      pending_inst_ = inst;
      ++ctx.pc;
      if (!dram_->IsLocalTo(addr, worker_id_)) {
        // Foreign partition's arena: the fetch rides the fabric to the
        // owner's island (its lane, its timing) and the value comes back as
        // a mem_load response routed to CompleteRemoteLoad.
        port_->Issue(dram_->OwnerPartition(addr),
                     MakeMemOp(comm::MemOp::Kind::kLoad, addr));
        remote_mem_wait_ = true;
        state_ = State::kMemWait;
        busy_until_ = now + cost;
        counters_.Add("remote_loads");
        return;
      }
      if (!dram_->Issue(now, addr, false, &mem_resp_, 0)) {
        // Retry the issue next tick by staying at this instruction.
        --ctx.pc;
        fc_load_dram_stall_.Add();
        return;
      }
      state_ = State::kMemWait;
      busy_until_ = now + cost;  // IF/DE/EX overlap the DRAM access
      return;
    }
    case Opcode::kStore: {
      uint64_t addr = Gp(cur_ctx_, inst.rs2) + inst.imm;
      if (!dram_->IsLocalTo(addr, worker_id_)) {
        // Posted remote write: fire-and-forget over the fabric; the owner
        // applies it functionally and charges its own DRAM lane. Per-path
        // FIFO delivery keeps it ordered before this context's later
        // commit publication to the same partition.
        comm::Envelope env = MakeMemOp(comm::MemOp::Kind::kStore, addr);
        env.mem_op().store_value = Gp(cur_ctx_, inst.rs1);
        port_->Issue(dram_->OwnerPartition(addr), env);
        ++ctx.pc;
        busy_until_ = now + cost;
        counters_.Add("remote_stores");
        return;
      }
      dram_->Write64(addr, Gp(cur_ctx_, inst.rs1));
      // Posted write: charged to bandwidth, does not stall the core.
      dram_->Issue(now, addr, true, nullptr, 0);
      ++ctx.pc;
      busy_until_ = now + cost;
      return;
    }
    case Opcode::kJmp:
      ctx.pc = uint64_t(inst.imm);
      busy_until_ = now + cost;
      return;
    case Opcode::kBe:
    case Opcode::kBne:
    case Opcode::kBle:
    case Opcode::kBlt:
    case Opcode::kBgt:
    case Opcode::kBge: {
      bool taken = false;
      switch (inst.opcode) {
        case Opcode::kBe: taken = ctx.flag_eq; break;
        case Opcode::kBne: taken = !ctx.flag_eq; break;
        case Opcode::kBle: taken = ctx.flag_lt || ctx.flag_eq; break;
        case Opcode::kBlt: taken = ctx.flag_lt; break;
        case Opcode::kBgt: taken = !ctx.flag_lt && !ctx.flag_eq; break;
        case Opcode::kBge: taken = !ctx.flag_lt; break;
        default: break;
      }
      ctx.pc = taken ? uint64_t(inst.imm) : ctx.pc + 1;
      busy_until_ = now + cost;
      return;
    }
    case Opcode::kRet: {
      uint32_t idx = ctx.cp_base + inst.rs1;
      if (!cp_valid_[idx]) {
        if (config_.dynamic_switching && config_.interleaving &&
            phase_ == Phase::kLogic) {
          // Park this transaction at the RET and let the scheduler pick
          // other work; TryResumeWaiter re-enters here once the result
          // lands (the section 4.5 future-work extension).
          ctx.waiting_cp = true;
          ctx.wait_cp_index = idx;
          ++stats_.context_switches;
          counters_.Add("dynamic_parks");
          busy_until_ = now + timing_.context_switch_cycles;
          state_ = State::kIdle;
          return;
        }
        pending_inst_ = inst;
        state_ = State::kWaitCp;
        return;
      }
      CompleteRet(now, inst);
      return;
    }
    case Opcode::kYield: {
      ctx.logic_done = true;
      ++ctx.pc;
      if (!config_.interleaving) {
        // Serial execution: fall straight through to the commit handler.
        ctx.pc = ctx.proc->program.commit_entry();
        busy_until_ = now + cost;
        return;
      }
      // Save this context and move on without waiting for outstanding DB
      // instructions (the interleaving switch, Fig. 8).
      ++stats_.context_switches;
      busy_until_ = now + timing_.context_switch_cycles;
      state_ = State::kIdle;
      return;
    }
    case Opcode::kCommit: {
      if (ctx.outstanding_db > 0) {
        fc_commit_wait_.Add();
        return;  // all DB instructions must have returned
      }
      if (StartTwoPc(now, /*want_commit=*/true)) return;
      for (const cc::WriteSetEntry& e : ctx.write_set) {
        if (!dram_->IsLocalTo(e.tuple_addr, worker_id_)) {
          // Remote tuple: publication executes on the owning island (it
          // applies the header update and issues the writeback on its own
          // lane).
          comm::Envelope env =
              MakeMemOp(comm::MemOp::Kind::kCommit, e.tuple_addr);
          env.mem_op().write_kind = e.kind;
          env.mem_op().commit_ts = ctx.ts;
          port_->Issue(dram_->OwnerPartition(e.tuple_addr), env);
          counters_.Add("remote_commit_publishes");
          continue;
        }
        cc::ApplyCommit(dram_, e, ctx.ts);
        dram_->Issue(now, e.tuple_addr, true, nullptr, 0);
      }
      db::TxnBlock block(dram_, ctx.block_base);
      block.set_state(db::TxnState::kCommitted);
      block.set_commit_ts(ctx.ts);
      dram_->Issue(now, ctx.block_base, true, nullptr, 0);
      busy_until_ = now + cost + ctx.write_set.size();
      if (config_.cc_unit != nullptr) {
        // CC validation work charged in the commit stage (SGT walks its
        // adjacency set; T/O and MVCC validated inline and charge 0).
        busy_until_ += config_.cc_unit->OnCommitValidate(ctx.ts);
      }
      FinishTxn(now, /*committed=*/true);
      return;
    }
    case Opcode::kAbort: {
      if (ctx.outstanding_db > 0) {
        fc_abort_wait_.Add();
        return;  // late results may still add write-set entries
      }
      if (StartTwoPc(now, /*want_commit=*/false)) return;
      for (const cc::WriteSetEntry& e : ctx.write_set) {
        if (!dram_->IsLocalTo(e.tuple_addr, worker_id_)) {
          comm::Envelope env =
              MakeMemOp(comm::MemOp::Kind::kAbort, e.tuple_addr);
          env.mem_op().write_kind = e.kind;
          port_->Issue(dram_->OwnerPartition(e.tuple_addr), env);
          counters_.Add("remote_abort_rollbacks");
          continue;
        }
        cc::ApplyAbort(dram_, e);
        dram_->Issue(now, e.tuple_addr, true, nullptr, 0);
      }
      db::TxnBlock block(dram_, ctx.block_base);
      block.set_state(db::TxnState::kAborted);
      dram_->Issue(now, ctx.block_base, true, nullptr, 0);
      busy_until_ = now + cost + ctx.write_set.size();
      FinishTxn(now, /*committed=*/false);
      return;
    }
    case Opcode::kNop:
      ++ctx.pc;
      busy_until_ = now + cost;
      return;
    default:
      // DB opcodes handled above; anything else is a program bug.
      assert(false && "unhandled opcode");
      ++ctx.pc;
      return;
  }
}

void Softcore::ExecuteDb(uint64_t now, const isa::Instruction& inst) {
  TxnContext& ctx = contexts_[cur_ctx_];
  const db::TableSchema* schema = db_->catalogue().FindTable(inst.table_id);
  assert(schema != nullptr);
  const sim::Addr data = ctx.block_base + db::kTxnBlockHeaderSize;

  comm::IndexOp op;
  op.op = inst.opcode;
  op.table = inst.table_id;
  op.ts = ctx.ts;
  op.key_addr = data + inst.key_offset;
  op.key_len = inst.key_len != 0 ? inst.key_len : schema->key_len;
  if (inst.opcode == isa::Opcode::kInsert) {
    op.payload_src = data + inst.aux_offset;
    op.payload_len = schema->payload_len;
  }
  if (inst.opcode == isa::Opcode::kScan) {
    op.out_buf = data + inst.aux_offset;
    op.scan_count = inst.scan_reg != isa::kNoReg
                        ? uint32_t(Gp(cur_ctx_, inst.scan_reg))
                        : inst.scan_count;
  }
  op.batch_flags = inst.batch_flags;
  comm::Header hdr;
  hdr.origin = worker_id_;
  hdr.cp_index = ctx.cp_base + inst.cp;
  hdr.txn_slot = cur_ctx_;

  uint32_t partition = worker_id_;
  if (inst.part_reg != isa::kNoReg) {
    partition = uint32_t(Gp(cur_ctx_, inst.part_reg));
  } else if (inst.partition >= 0) {
    partition = uint32_t(inst.partition);
  }
  // Replicated tables are always served locally.
  if (schema->replicated) partition = worker_id_;

  cp_valid_[hdr.cp_index] = 0;
  ++ctx.pc;
  busy_until_ = now + timing_.db_dispatch_cycles;

  // One dispatch surface for both destinations: Issue rejects a LOCAL
  // request when the coprocessor is at its in-flight cap, and a CROSS-CHIP
  // request when the worker's inter-chip send window is full; same-chip
  // fabric sends never block.
  comm::Envelope env(hdr, op);
  if (!port_->Issue(partition, env)) {
    pending_op_ = env;
    pending_partition_ = partition;
    state_ = State::kDispatchRetry;
    return;
  }
  ++ctx.outstanding_db;
  if (partition != worker_id_) counters_.Add("remote_dispatches");
}

bool Softcore::StartTwoPc(uint64_t now, bool want_commit) {
  if (config_.two_pc.workers_per_chip == 0) return false;
  TxnContext& ctx = contexts_[cur_ctx_];
  const uint32_t my_chip = ChipOfWorker(worker_id_);
  twopc_.parts.clear();
  for (const cc::WriteSetEntry& e : ctx.write_set) {
    const uint32_t owner = dram_->OwnerPartition(e.tuple_addr);
    if (ChipOfWorker(owner) == my_chip) continue;
    TwoPcRun::Participant* part = nullptr;
    for (TwoPcRun::Participant& p : twopc_.parts) {
      if (p.worker == owner) {
        part = &p;
        break;
      }
    }
    if (part == nullptr) {
      twopc_.parts.push_back(TwoPcRun::Participant{});
      part = &twopc_.parts.back();
      part->worker = db::WorkerId(owner);
    }
    part->entries.push_back(e);
  }
  if (twopc_.parts.empty()) return false;
  twopc_.ts = ctx.ts;
  twopc_.acks = 0;
  twopc_.vote_abort = false;
  counters_.Add("twopc_started");
  if (!want_commit) {
    // The coordinator already decided abort (handler divert): phase 1
    // gathers votes only to decide, so it is skipped entirely.
    twopc_.decision_commit = false;
    EnterDecisionPhase(now);
    return true;
  }
  twopc_.deadline = now + config_.two_pc.prepare_timeout_cycles;
  state_ = State::kTwoPcPrepare;
  return true;
}

void Softcore::EnterDecisionPhase(uint64_t now) {
  TxnContext& ctx = contexts_[cur_ctx_];
  const uint32_t my_chip = ChipOfWorker(worker_id_);
  const bool commit = twopc_.decision_commit;
  // Chip-local entries follow the classic publication paths; foreign-chip
  // entries travel inside the CommitReq and apply at the participant.
  uint64_t local_applies = 0;
  for (const cc::WriteSetEntry& e : ctx.write_set) {
    if (ChipOfWorker(dram_->OwnerPartition(e.tuple_addr)) != my_chip) {
      continue;
    }
    if (!dram_->IsLocalTo(e.tuple_addr, worker_id_)) {
      comm::Envelope env = MakeMemOp(
          commit ? comm::MemOp::Kind::kCommit : comm::MemOp::Kind::kAbort,
          e.tuple_addr);
      env.mem_op().write_kind = e.kind;
      if (commit) env.mem_op().commit_ts = ctx.ts;
      port_->Issue(dram_->OwnerPartition(e.tuple_addr), env);
      counters_.Add(commit ? "remote_commit_publishes"
                           : "remote_abort_rollbacks");
      continue;
    }
    if (commit) {
      cc::ApplyCommit(dram_, e, ctx.ts);
    } else {
      cc::ApplyAbort(dram_, e);
    }
    dram_->Issue(now, e.tuple_addr, true, nullptr, 0);
    ++local_applies;
  }
  db::TxnBlock block(dram_, ctx.block_base);
  block.set_state(commit ? db::TxnState::kCommitted : db::TxnState::kAborted);
  if (commit) block.set_commit_ts(ctx.ts);
  dram_->Issue(now, ctx.block_base, true, nullptr, 0);
  busy_until_ = now + timing_.cpu_instruction_cycles + local_applies;
  for (TwoPcRun::Participant& p : twopc_.parts) {
    p.sent = false;
    p.acked = false;
  }
  twopc_.acks = 0;
  twopc_.next_resend = now + config_.two_pc.decision_resend_cycles;
  state_ = State::kTwoPcDecide;
  counters_.Add(commit ? "twopc_commits" : "twopc_aborts");
}

void Softcore::HandlePrepareAck(uint64_t now, const comm::Envelope& env) {
  (void)now;
  const comm::PrepareAck& ack = env.prepare_ack();
  if (state_ != State::kTwoPcPrepare || ack.txn_ts != twopc_.ts) {
    counters_.Add("twopc_stale_acks");
    return;
  }
  for (TwoPcRun::Participant& p : twopc_.parts) {
    if (p.worker != env.hdr.src) continue;
    if (!p.acked) {
      p.acked = true;
      ++twopc_.acks;
      if (!ack.vote_commit) twopc_.vote_abort = true;
    }
    return;
  }
  counters_.Add("twopc_stale_acks");
}

void Softcore::HandleCommitAck(uint64_t now, const comm::Envelope& env) {
  (void)now;
  const comm::CommitAck& ack = env.commit_ack();
  if (state_ != State::kTwoPcDecide || ack.txn_ts != twopc_.ts) {
    counters_.Add("twopc_stale_acks");
    return;
  }
  for (TwoPcRun::Participant& p : twopc_.parts) {
    if (p.worker != env.hdr.src) continue;
    if (!p.acked) {
      p.acked = true;
      ++twopc_.acks;
    }
    return;
  }
  counters_.Add("twopc_stale_acks");
}

void Softcore::FinishTxn(uint64_t now, bool committed) {
  TxnContext& ctx = contexts_[cur_ctx_];
  if (config_.cc_unit != nullptr) {
    config_.cc_unit->OnTxnFinish(ctx.ts, committed);
  }
  if (committed) {
    ++stats_.committed;
  } else {
    ++stats_.aborted;
  }
  ctx.in_use = false;
  ctx.finished = true;
  ctx.write_set.clear();

  if (!config_.interleaving) {
    ResetBatch();
    state_ = State::kIdle;
    return;
  }
  if (phase_ == Phase::kHandlers) {
    AdvanceCommitPhase(now);
  } else {
    // The transaction aborted during the logic phase (a data-dependent RET
    // returned an error and the abort handler ran to completion). Treat it
    // like a YIELD: switch away and keep filling the batch. Its registers
    // stay allocated until the batch resets.
    ++stats_.context_switches;
    busy_until_ = now + timing_.context_switch_cycles;
    state_ = State::kIdle;
  }
}

void Softcore::AdvanceCommitPhase(uint64_t now) {
  ++commit_cursor_;
  while (commit_cursor_ < batch_order_.size() &&
         contexts_[batch_order_[commit_cursor_]].finished) {
    ++commit_cursor_;
  }
  if (commit_cursor_ < batch_order_.size()) {
    StartSwitch(now, batch_order_[commit_cursor_], Phase::kHandlers);
    return;
  }
  ResetBatch();
  state_ = State::kIdle;
  ++stats_.batches;
}

bool Softcore::TryResumeWaiter(uint64_t now) {
  for (uint32_t slot : batch_order_) {
    TxnContext& ctx = contexts_[slot];
    if (ctx.in_use && !ctx.finished && ctx.waiting_cp &&
        cp_valid_[ctx.wait_cp_index]) {
      ctx.waiting_cp = false;
      counters_.Add("dynamic_resumes");
      StartSwitch(now, slot, Phase::kLogic);
      return true;
    }
  }
  return false;
}

bool Softcore::AllLogicPhasesDone() const {
  for (uint32_t slot : batch_order_) {
    const TxnContext& ctx = contexts_[slot];
    if (ctx.in_use && !ctx.finished && !ctx.logic_done) return false;
  }
  return true;
}

void Softcore::ResetBatch() {
  batch_order_.clear();
  gp_next_ = 0;
  cp_next_ = 0;
  batch_closed_ = false;
  commit_cursor_ = 0;
  phase_ = Phase::kLogic;
}

void Softcore::StartSwitch(uint64_t now, uint32_t next_ctx, Phase phase) {
  switch_target_ = next_ctx;
  switch_phase_ = phase;
  state_ = State::kSwitching;
  busy_until_ = now + timing_.context_switch_cycles;
  ++stats_.context_switches;
}

bool Softcore::AnyResumableWaiter() const {
  for (uint32_t slot : batch_order_) {
    const TxnContext& ctx = contexts_[slot];
    if (ctx.in_use && !ctx.finished && ctx.waiting_cp &&
        cp_valid_[ctx.wait_cp_index]) {
      return true;
    }
  }
  return false;
}

uint64_t Softcore::NextWakeCycle(uint64_t now) const {
  // Tick is a pure no-op while the fixed-cost execution timer runs.
  if (busy_until_ > now + 1) return busy_until_;
  switch (state_) {
    case State::kIdle:
      // The commit phase never rests in kIdle; defensive next-cycle wake.
      if (phase_ != Phase::kLogic) return now + 1;
      if (config_.dynamic_switching && AnyResumableWaiter()) return now + 1;
      if (!batch_closed_ &&
          (pending_block_ != sim::kNullAddr || !input_queue_.empty())) {
        return now + 1;  // TryAdmit acts
      }
      if (config_.dynamic_switching && !AllLogicPhasesDone()) {
        // Parked transactions wake when a routed result fills their CP
        // register — the worker reports that wake point.
        return sim::kNeverWakes;
      }
      // Batch members left => the commit phase starts next tick; truly
      // empty => quiescent until the worker submits a block.
      return batch_order_.empty() ? sim::kNeverWakes : now + 1;
    case State::kIngestRetry:   // retries Issue (bumps DRAM reject counters)
    case State::kDispatchRetry: // retries the coprocessor submit
    case State::kSwitching:     // timer already handled above
      return now + 1;
    case State::kFetchBlock:
    case State::kMemWait:
      return mem_resp_.empty() ? sim::kNeverWakes : now + 1;
    case State::kRunning: {
      const TxnContext& ctx = contexts_[cur_ctx_];
      const isa::Instruction& inst = ctx.proc->program.at(ctx.pc);
      if ((inst.opcode == isa::Opcode::kCommit ||
           inst.opcode == isa::Opcode::kAbort) &&
          ctx.outstanding_db > 0) {
        // Draining outstanding DB results: per-cycle spin bulk-applied in
        // SkipCycles; results arrive through worker wake points.
        return sim::kNeverWakes;
      }
      return now + 1;
    }
    case State::kWaitCp:
      return cp_valid_[contexts_[cur_ctx_].cp_base + pending_inst_.rs1]
                 ? now + 1
                 : sim::kNeverWakes;
    case State::kTwoPcPrepare: {
      for (const TwoPcRun::Participant& p : twopc_.parts) {
        if (!p.acked && !p.sent) return now + 1;  // send loop acts
      }
      if (twopc_.acks == twopc_.parts.size()) return now + 1;
      // Acks wake through the worker's fabric delivery; the only
      // self-scheduled event is the vote timeout.
      return twopc_.deadline;
    }
    case State::kTwoPcDecide: {
      for (const TwoPcRun::Participant& p : twopc_.parts) {
        if (!p.acked && !p.sent) return now + 1;
      }
      if (twopc_.acks == twopc_.parts.size()) return now + 1;
      return twopc_.next_resend;
    }
  }
  return now + 1;
}

void Softcore::SkipCycles(uint64_t now, uint64_t count) {
  if (busy_until_ > now + 1) return;  // timer cycles have no accounting
  if (state_ == State::kWaitCp) {
    fc_ret_wait_.Add(count);
    return;
  }
  if (state_ == State::kTwoPcPrepare) {
    // Only the all-sent ack wait is ever skipped (unsent participants pin
    // the wake to now + 1); mirrors the per-tick wait counter exactly.
    fc_twopc_prepare_wait_.Add(count);
    return;
  }
  if (state_ == State::kTwoPcDecide) {
    fc_twopc_decision_wait_.Add(count);
    return;
  }
  if (state_ == State::kRunning) {
    // Only the COMMIT/ABORT result-drain spin is ever skipped in
    // kRunning; each spin cycle executes the instruction fetch (one
    // instruction retired per Execute call) plus the wait counter.
    const TxnContext& ctx = contexts_[cur_ctx_];
    const isa::Instruction& inst = ctx.proc->program.at(ctx.pc);
    stats_.instructions += count;
    (inst.opcode == isa::Opcode::kCommit ? fc_commit_wait_
                                                  : fc_abort_wait_)
        .Add(
                  count);
  }
}

void Softcore::CollectStats(StatsScope scope) const {
  scope.SetCounter("committed", stats_.committed);
  scope.SetCounter("aborted", stats_.aborted);
  scope.SetCounter("batches", stats_.batches);
  scope.SetCounter("context_switches", stats_.context_switches);
  scope.SetCounter("instructions", stats_.instructions);
  scope.MergeCounterSet(counters_);
}

}  // namespace bionicdb::core
