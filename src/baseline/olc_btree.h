// B+tree with optimistic lock coupling — the baseline's Masstree stand-in.
//
// Silo's index is Masstree; what matters for the paper's comparisons is a
// state-of-the-art cache-optimised concurrent ordered index with fast point
// lookups and leaf-chained range scans. This is the classic OLC B+tree of
// Leis et al. ("The ART of Practical Synchronization", DaMoN'16): every
// node carries a version word (lock bit + obsolete bit + counter); readers
// proceed lock-free and restart on version changes; writers lock only the
// nodes they modify, splitting eagerly on the way down.
//
// Keys are 64-bit integers; values are Record pointers. Nodes are arena
// allocated and never freed mid-run (obsolete nodes are simply abandoned),
// so readers need no reclamation protocol.
#ifndef BIONICDB_BASELINE_OLC_BTREE_H_
#define BIONICDB_BASELINE_OLC_BTREE_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "baseline/record.h"

namespace bionicdb::baseline {

class OlcBTree {
 public:
  explicit OlcBTree(Arena* arena) : arena_(arena) {
    root_.store(NewLeaf(), std::memory_order_release);
  }

  /// Point lookup; nullptr when absent.
  Record* Find(uint64_t key) const;

  /// Insert-if-absent: links key -> value and returns nullptr, or returns
  /// the already-resident record without modifying the tree. The decision
  /// is made under the leaf's write lock, so two racing inserters of one
  /// key always agree on a single resident record (upsert semantics would
  /// let a later inserter silently orphan an earlier transaction's row).
  Record* Insert(uint64_t key, Record* value);

  /// Visits up to `count` entries with key >= start in ascending order;
  /// `fn` returns false to stop. Returns entries visited.
  uint32_t Scan(uint64_t start, uint32_t count,
                const std::function<bool(uint64_t, Record*)>& fn) const;

 private:
  static constexpr uint32_t kLeafCap = 32;
  static constexpr uint32_t kInnerCap = 32;

  struct Node {
    std::atomic<uint64_t> version{0b100};
    bool is_leaf = false;  // immutable after publication
    // Entry count; written under the node's write lock, read optimistically
    // (relaxed + version validation), hence atomic.
    std::atomic<uint32_t> count{0};

    // --- OLC version protocol (bit0 = obsolete, bit1 = locked) ---------
    uint64_t StableVersion() const {
      uint64_t v = version.load(std::memory_order_acquire);
      while (v & 2) {
        v = version.load(std::memory_order_acquire);
      }
      return v;
    }
    uint64_t ReadLockOrRestart(bool* restart) const {
      uint64_t v = StableVersion();
      if (v & 1) *restart = true;  // obsolete
      return v;
    }
    void ReadUnlockOrRestart(uint64_t start, bool* restart) const {
      // The fence orders the preceding optimistic (relaxed) reads before
      // the validation load; a concurrent writer bumps the version under
      // its lock, so any torn read forces a restart.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (start != version.load(std::memory_order_acquire)) *restart = true;
    }
    void CheckOrRestart(uint64_t start, bool* restart) const {
      ReadUnlockOrRestart(start, restart);
    }
    void UpgradeToWriteLockOrRestart(uint64_t* v, bool* restart) {
      if (version.compare_exchange_strong(*v, *v + 2,
                                          std::memory_order_acquire)) {
        *v += 2;
      } else {
        *restart = true;
      }
    }
    void WriteUnlock() { version.fetch_add(2, std::memory_order_release); }
    void WriteUnlockObsolete() {
      version.fetch_add(3, std::memory_order_release);
    }
  };

  // Key/value slots are written under the node write lock but read
  // optimistically by lock-free readers, so they are relaxed atomics (the
  // version protocol supplies the ordering; see ReadUnlockOrRestart).
  struct Leaf : Node {
    std::atomic<uint64_t> keys[kLeafCap];
    std::atomic<Record*> values[kLeafCap];
    std::atomic<Leaf*> next{nullptr};

    uint32_t LowerBound(uint64_t k) const {
      uint32_t lo = 0, hi = count.load(std::memory_order_relaxed);
      while (lo < hi) {
        uint32_t mid = (lo + hi) / 2;
        if (keys[mid].load(std::memory_order_relaxed) < k) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo;
    }
    /// Returns the resident record when `k` already exists (no change),
    /// nullptr after inserting. Caller holds the write lock.
    Record* InsertIfAbsent(uint64_t k, Record* v) {
      uint32_t n = count.load(std::memory_order_relaxed);
      uint32_t pos = LowerBound(k);
      if (pos < n && keys[pos].load(std::memory_order_relaxed) == k) {
        return values[pos].load(std::memory_order_relaxed);
      }
      for (uint32_t i = n; i > pos; --i) {
        keys[i].store(keys[i - 1].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
        values[i].store(values[i - 1].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      }
      keys[pos].store(k, std::memory_order_relaxed);
      values[pos].store(v, std::memory_order_relaxed);
      count.store(n + 1, std::memory_order_relaxed);
      return nullptr;
    }
  };

  struct Inner : Node {
    std::atomic<uint64_t> keys[kInnerCap];
    std::atomic<Node*> children[kInnerCap + 1];

    /// Child slot for `k`: separators are the first key of their right
    /// subtree, so keys equal to a separator route RIGHT (upper bound).
    uint32_t LowerBound(uint64_t k) const {
      uint32_t lo = 0, hi = count.load(std::memory_order_relaxed);
      while (lo < hi) {
        uint32_t mid = (lo + hi) / 2;
        if (keys[mid].load(std::memory_order_relaxed) <= k) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo;
    }
    /// Caller holds the write lock.
    void InsertAt(uint64_t sep, Node* child) {
      uint32_t n = count.load(std::memory_order_relaxed);
      uint32_t pos = LowerBound(sep);
      for (uint32_t i = n; i > pos; --i) {
        keys[i].store(keys[i - 1].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      }
      for (uint32_t i = n + 1; i > pos + 1; --i) {
        children[i].store(children[i - 1].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      }
      keys[pos].store(sep, std::memory_order_relaxed);
      children[pos + 1].store(child, std::memory_order_relaxed);
      count.store(n + 1, std::memory_order_relaxed);
    }
  };

  Leaf* NewLeaf() {
    Leaf* n = new (arena_->Allocate(sizeof(Leaf))) Leaf();
    n->is_leaf = true;
    return n;
  }
  Inner* NewInner() {
    Inner* n = new (arena_->Allocate(sizeof(Inner))) Inner();
    n->is_leaf = false;
    return n;
  }

  Leaf* SplitLeaf(Leaf* leaf, uint64_t* sep);
  Inner* SplitInner(Inner* inner, uint64_t* sep);
  void MakeRoot(uint64_t sep, Node* left, Node* right);

  /// Descends to the leaf covering `key` with full OLC validation; on
  /// success *leaf_version holds the leaf's read lock. Returns nullptr when
  /// the caller must restart.
  const Leaf* FindLeaf(uint64_t key, uint64_t* leaf_version) const;

  Arena* arena_;
  std::atomic<Node*> root_;
};

}  // namespace bionicdb::baseline

#endif  // BIONICDB_BASELINE_OLC_BTREE_H_
