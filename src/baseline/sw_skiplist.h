// Concurrent lock-free software skiplist (insert + lookup + scan).
//
// The paper's Fig. 11d compares the hardware skiplist's scan throughput
// against a software skiplist on the Xeon; this is that comparator. The
// algorithm is the standard CAS-based lock-free skiplist without physical
// deletion (deletes in the Silo engine are logical via record absent bits):
// insert links the bottom level first with CAS, then each upper level,
// re-locating predecessors on contention.
#ifndef BIONICDB_BASELINE_SW_SKIPLIST_H_
#define BIONICDB_BASELINE_SW_SKIPLIST_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "baseline/record.h"
#include "common/random.h"

namespace bionicdb::baseline {

class SwSkiplist {
 public:
  static constexpr int kMaxHeight = 20;

  explicit SwSkiplist(Arena* arena) : arena_(arena) {
    head_ = NewNode(0, nullptr, kMaxHeight);
  }

  Record* Find(uint64_t key) const {
    const Node* n = FindGreaterOrEqual(key);
    return (n != nullptr && n->key == key) ? n->record : nullptr;
  }

  /// Insert-if-absent: links key -> record and returns nullptr, or returns
  /// the already-resident record. The bottom-level CAS is the
  /// linearization point — two racing inserters of one key always agree on
  /// a single resident record.
  Record* Insert(uint64_t key, Record* record) {
    int height = RandomHeight();
    Node* node = NewNode(key, record, height);
    while (true) {
      Node* pred = FindPred(key, 0);
      Node* succ = pred->next[0].load(std::memory_order_acquire);
      while (succ != nullptr && succ->key < key) {
        pred = succ;
        succ = pred->next[0].load(std::memory_order_acquire);
      }
      if (succ != nullptr && succ->key == key) return succ->record;
      node->next[0].store(succ, std::memory_order_relaxed);
      if (pred->next[0].compare_exchange_strong(succ, node,
                                                std::memory_order_release)) {
        break;
      }
    }
    for (int level = 1; level < height; ++level) {
      while (true) {
        Node* pred = FindPred(key, level);
        Node* succ = pred->next[level].load(std::memory_order_acquire);
        while (succ != nullptr && succ->key < key) {
          pred = succ;
          succ = pred->next[level].load(std::memory_order_acquire);
        }
        node->next[level].store(succ, std::memory_order_relaxed);
        if (pred->next[level].compare_exchange_strong(
                succ, node, std::memory_order_release)) {
          break;
        }
      }
    }
    return nullptr;
  }

  /// Visits up to `count` entries with key >= start in ascending order.
  uint32_t Scan(uint64_t start, uint32_t count,
                const std::function<bool(uint64_t, Record*)>& fn) const {
    const Node* n = FindGreaterOrEqual(start);
    uint32_t visited = 0;
    while (n != nullptr && visited < count) {
      ++visited;
      if (!fn(n->key, n->record)) break;
      n = n->next[0].load(std::memory_order_acquire);
    }
    return visited;
  }

 private:
  struct Node {
    uint64_t key;
    Record* record;
    int height;
    std::atomic<Node*> next[1];  // `height` slots, arena-allocated
  };

  Node* NewNode(uint64_t key, Record* record, int height) {
    size_t bytes = sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1);
    Node* n = static_cast<Node*>(arena_->Allocate(bytes));
    n->key = key;
    n->record = record;
    n->height = height;
    for (int i = 0; i < height; ++i) {
      new (&n->next[i]) std::atomic<Node*>(nullptr);
    }
    return n;
  }

  int RandomHeight() {
    thread_local Rng rng(0x5eed ^
                         uint64_t(reinterpret_cast<uintptr_t>(&rng)));
    int h = 1;
    while (h < kMaxHeight && (rng.Next() & 1)) ++h;
    return h;
  }

  /// Rightmost node with key < probe at `level` (descending from the top).
  Node* FindPred(uint64_t key, int level) const {
    Node* cur = head_;
    for (int l = kMaxHeight - 1; l >= level; --l) {
      Node* next = cur->next[l].load(std::memory_order_acquire);
      while (next != nullptr && next->key < key) {
        cur = next;
        next = cur->next[l].load(std::memory_order_acquire);
      }
    }
    return cur;
  }

  const Node* FindGreaterOrEqual(uint64_t key) const {
    return FindPred(key, 0)->next[0].load(std::memory_order_acquire);
  }

  Arena* arena_;
  Node* head_;
};

}  // namespace bionicdb::baseline

#endif  // BIONICDB_BASELINE_SW_SKIPLIST_H_
