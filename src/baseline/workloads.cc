#include "baseline/workloads.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

namespace bionicdb::baseline {

namespace {

/// Runs `body(thread_id)` on `threads` std::threads with an epoch advancer
/// (Silo advances the global epoch periodically; 1 ms here) and returns the
/// wall-clock seconds of the parallel region.
double RunParallel(SiloDb* db, uint32_t threads,
                   const std::function<void(uint32_t)>& body) {
  std::atomic<bool> done{false};
  std::thread epoch_thread([&] {
    while (!done.load(std::memory_order_acquire)) {
      db->AdvanceEpoch();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] { body(t); });
  }
  for (auto& t : pool) t.join();
  auto end = std::chrono::steady_clock::now();
  done.store(true, std::memory_order_release);
  epoch_thread.join();
  return std::chrono::duration<double>(end - start).count();
}

uint64_t GetU64(const uint8_t* buf, size_t off) {
  uint64_t v;
  std::memcpy(&v, buf + off, 8);
  return v;
}
void PutU64(uint8_t* buf, size_t off, uint64_t v) {
  std::memcpy(buf + off, &v, 8);
}

// TPC-C payload sizes (match the BionicDB workload module).
constexpr uint32_t kWarehousePayload = 96;
constexpr uint32_t kDistrictPayload = 96;
constexpr uint32_t kCustomerPayload = 240;
constexpr uint32_t kHistoryPayload = 32;
constexpr uint32_t kNewOrderPayload = 8;
constexpr uint32_t kOrderPayload = 32;
constexpr uint32_t kOrderLinePayload = 48;
constexpr uint32_t kItemPayload = 64;
constexpr uint32_t kStockPayload = 128;
constexpr uint64_t kInitialNextOid = 3001;

}  // namespace

// --- YCSB ------------------------------------------------------------------

SiloYcsb::SiloYcsb(const SiloYcsbOptions& options) : options_(options) {
  db_ = std::make_unique<SiloDb>();
}

void SiloYcsb::Setup() {
  SiloDb::TableDef def;
  def.name = "usertable";
  def.index = options_.index;
  def.payload_len = options_.payload_len;
  def.expected_records = options_.records;
  table_ = db_->CreateTable(def);
  std::vector<uint8_t> payload(options_.payload_len);
  for (size_t i = 0; i < payload.size(); ++i) payload[i] = uint8_t(i * 131);
  for (uint64_t k = 0; k < options_.records; ++k) {
    db_->Load(table_, k, payload.data());
  }
}

BaselineResult SiloYcsb::RunPointTxns(uint32_t threads,
                                      uint64_t txns_per_thread) {
  BaselineResult result;
  std::atomic<uint64_t> committed{0}, aborted{0};
  result.seconds = RunParallel(db_.get(), threads, [&](uint32_t tid) {
    Rng rng(tid * 7919 + 13);
    std::vector<uint8_t> buf(options_.payload_len);
    std::vector<uint8_t> newval(options_.payload_len, uint8_t(tid));
    for (uint64_t i = 0; i < txns_per_thread; ++i) {
      while (true) {
        SiloTxn txn(db_.get());
        bool ok = true;
        for (uint32_t a = 0; a < options_.accesses_per_txn && ok; ++a) {
          uint64_t key = rng.NextUint64(options_.records);
          Record* r = txn.Get(table_, key);
          if (r == nullptr || !txn.Read(r, buf.data())) {
            ok = false;
            break;
          }
          if (a < options_.updates_per_txn) {
            txn.Write(table_, r, newval.data());
          }
        }
        if (ok && txn.Commit()) {
          committed.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        aborted.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  result.committed = committed.load();
  result.aborted = aborted.load();
  result.tps = double(result.committed) / result.seconds;
  return result;
}

BaselineResult SiloYcsb::RunScans(uint32_t threads,
                                  uint64_t txns_per_thread) {
  BaselineResult result;
  std::atomic<uint64_t> committed{0};
  result.seconds = RunParallel(db_.get(), threads, [&](uint32_t tid) {
    Rng rng(tid * 104729 + 17);
    for (uint64_t i = 0; i < txns_per_thread; ++i) {
      SiloTxn txn(db_.get());
      uint64_t headroom = options_.records > options_.scan_len
                              ? options_.records - options_.scan_len
                              : 1;
      uint64_t start = rng.NextUint64(headroom);
      uint64_t sum = 0;
      txn.Scan(table_, start, options_.scan_len,
               [&](uint64_t key, const uint8_t* payload) {
                 sum += key + payload[0];
                 return true;
               });
      if (txn.Commit()) committed.fetch_add(1, std::memory_order_relaxed);
      // Keep `sum` alive so the scan is not optimised away.
      if (sum == UINT64_MAX) std::abort();
    }
  });
  result.committed = committed.load();
  result.tps = double(result.committed) / result.seconds;
  return result;
}

// --- TPC-C -------------------------------------------------------------------

SiloTpcc::SiloTpcc(const SiloTpccOptions& options) : options_(options) {
  db_ = std::make_unique<SiloDb>();
}

void SiloTpcc::Setup() {
  auto def = [](const char* name, uint32_t payload, uint64_t expected) {
    SiloDb::TableDef d;
    d.name = name;
    d.index = SiloIndexKind::kBTree;
    d.payload_len = payload;
    d.expected_records = expected;
    return d;
  };
  const auto& o = options_;
  warehouse_ = db_->CreateTable(def("warehouse", kWarehousePayload, 64));
  district_ = db_->CreateTable(def("district", kDistrictPayload, 1024));
  customer_ = db_->CreateTable(def(
      "customer", kCustomerPayload,
      uint64_t(o.warehouses) * o.districts_per_warehouse *
          o.customers_per_district));
  history_ = db_->CreateTable(def("history", kHistoryPayload, 1 << 20));
  neworder_ = db_->CreateTable(def("new_order", kNewOrderPayload, 1 << 20));
  order_ = db_->CreateTable(def("order", kOrderPayload, 1 << 20));
  orderline_ = db_->CreateTable(def("order_line", kOrderLinePayload, 1 << 22));
  item_ = db_->CreateTable(def("item", kItemPayload, o.items));
  stock_ = db_->CreateTable(
      def("stock", kStockPayload, uint64_t(o.warehouses) * o.items));

  std::vector<uint8_t> buf(256, 0);
  for (uint32_t w = 0; w < o.warehouses; ++w) {
    std::fill(buf.begin(), buf.end(), 0);
    db_->Load(warehouse_, WarehouseKey(w), buf.data());
    for (uint32_t d = 0; d < o.districts_per_warehouse; ++d) {
      std::fill(buf.begin(), buf.end(), 0);
      PutU64(buf.data(), 0, kInitialNextOid);
      db_->Load(district_, DistrictKey(w, d), buf.data());
      for (uint32_t c = 0; c < o.customers_per_district; ++c) {
        std::fill(buf.begin(), buf.end(), 0);
        db_->Load(customer_, CustomerKey(w, d, c), buf.data());
      }
    }
    for (uint32_t i = 0; i < o.items; ++i) {
      std::fill(buf.begin(), buf.end(), 0);
      PutU64(buf.data(), 0, 50 + i % 50);
      db_->Load(stock_, StockKey(w, i), buf.data());
    }
  }
  for (uint32_t i = 0; i < o.items; ++i) {
    std::fill(buf.begin(), buf.end(), 0);
    PutU64(buf.data(), 0, ItemPrice(i));
    db_->Load(item_, ItemKey(i), buf.data());
  }
}

bool SiloTpcc::RunNewOrder(SiloTxn* txn, Rng* rng, uint32_t home,
                           std::atomic<uint64_t>* history_seq) {
  (void)history_seq;
  const auto& o = options_;
  uint32_t d = uint32_t(rng->NextUint64(o.districts_per_warehouse));
  uint32_t c = uint32_t(rng->NextUint64(o.customers_per_district));

  uint8_t wbuf[kWarehousePayload], cbuf[kCustomerPayload];
  uint8_t dbuf[kDistrictPayload];
  Record* wr = txn->Get(warehouse_, WarehouseKey(home));
  Record* cr = txn->Get(customer_, CustomerKey(home, d, c));
  Record* dr = txn->Get(district_, DistrictKey(home, d));
  if (wr == nullptr || cr == nullptr || dr == nullptr) return false;
  if (!txn->Read(wr, wbuf) || !txn->Read(cr, cbuf) || !txn->Read(dr, dbuf)) {
    return false;
  }
  uint64_t o_id = GetU64(dbuf, 0);
  PutU64(dbuf, 0, o_id + 1);
  txn->Write(district_, dr, dbuf);

  uint8_t obuf[kOrderPayload] = {0};
  PutU64(obuf, 0, c);
  PutU64(obuf, 16, o.ol_cnt);
  if (txn->Insert(order_, OrderKey(home, d, o_id), obuf) == nullptr) {
    return false;
  }
  uint8_t nobuf[kNewOrderPayload] = {0};
  if (txn->Insert(neworder_, OrderKey(home, d, o_id), nobuf) == nullptr) {
    return false;
  }

  const bool remote_txn =
      o.warehouses > 1 && rng->NextBool(o.remote_neworder_fraction);
  const uint32_t remote_line =
      remote_txn ? uint32_t(rng->NextUint64(o.ol_cnt)) : UINT32_MAX;
  // Distinct items per order (TPC-C), matching the BionicDB generator.
  std::vector<uint32_t> items;
  while (items.size() < o.ol_cnt) {
    uint32_t cand = uint32_t(rng->NextUint64(o.items));
    if (std::find(items.begin(), items.end(), cand) == items.end()) {
      items.push_back(cand);
    }
  }
  for (uint32_t l = 0; l < o.ol_cnt; ++l) {
    uint32_t item = items[l];
    uint32_t qty = 1 + uint32_t(rng->NextUint64(10));
    uint32_t supply = home;
    if (l == remote_line) {
      supply = uint32_t(rng->NextUint64(o.warehouses - 1));
      if (supply >= home) ++supply;
    }
    uint8_t ibuf[kItemPayload], sbuf[kStockPayload];
    Record* ir = txn->Get(item_, ItemKey(item));
    Record* sr = txn->Get(stock_, StockKey(supply, item));
    if (ir == nullptr || sr == nullptr) return false;
    if (!txn->Read(ir, ibuf) || !txn->Read(sr, sbuf)) return false;
    uint64_t squant = GetU64(sbuf, 0);
    squant = squant >= qty ? squant - qty : squant + 91 - qty;
    if (squant < 10) squant += 91;
    PutU64(sbuf, 0, squant);
    PutU64(sbuf, 8, GetU64(sbuf, 8) + qty);  // s_ytd
    txn->Write(stock_, sr, sbuf);

    uint8_t olbuf[kOrderLinePayload] = {0};
    PutU64(olbuf, 0, item);
    PutU64(olbuf, 8, supply);
    PutU64(olbuf, 16, qty);
    PutU64(olbuf, 24, qty * ItemPrice(item));
    if (txn->Insert(orderline_, OrderKey(home, d, o_id) * 16 + l, olbuf) ==
        nullptr) {
      return false;
    }
  }
  return txn->Commit();
}

bool SiloTpcc::RunPayment(SiloTxn* txn, Rng* rng, uint32_t home,
                          std::atomic<uint64_t>* history_seq) {
  const auto& o = options_;
  uint32_t d = uint32_t(rng->NextUint64(o.districts_per_warehouse));
  uint32_t c = uint32_t(rng->NextUint64(o.customers_per_district));
  uint32_t cw = home;
  if (o.warehouses > 1 && rng->NextBool(o.remote_payment_fraction)) {
    cw = uint32_t(rng->NextUint64(o.warehouses - 1));
    if (cw >= home) ++cw;
  }
  uint64_t amount = 1 + rng->NextUint64(5000);

  uint8_t wbuf[kWarehousePayload], dbuf[kDistrictPayload],
      cbuf[kCustomerPayload];
  Record* wr = txn->Get(warehouse_, WarehouseKey(home));
  Record* dr = txn->Get(district_, DistrictKey(home, d));
  Record* cr = txn->Get(customer_, CustomerKey(cw, d, c));
  if (wr == nullptr || dr == nullptr || cr == nullptr) return false;
  if (!txn->Read(wr, wbuf) || !txn->Read(dr, dbuf) || !txn->Read(cr, cbuf)) {
    return false;
  }
  PutU64(wbuf, 0, GetU64(wbuf, 0) + amount);  // w_ytd
  txn->Write(warehouse_, wr, wbuf);
  PutU64(dbuf, 8, GetU64(dbuf, 8) + amount);  // d_ytd
  txn->Write(district_, dr, dbuf);
  PutU64(cbuf, 0, GetU64(cbuf, 0) - amount);       // c_balance
  PutU64(cbuf, 8, GetU64(cbuf, 8) + amount);       // c_ytd_payment
  PutU64(cbuf, 16, GetU64(cbuf, 16) + 1);          // c_payment_cnt
  txn->Write(customer_, cr, cbuf);

  uint8_t hbuf[kHistoryPayload] = {0};
  PutU64(hbuf, 0, amount);
  uint64_t hkey = history_seq->fetch_add(1, std::memory_order_relaxed);
  if (txn->Insert(history_, hkey, hbuf) == nullptr) return false;
  return txn->Commit();
}

BaselineResult SiloTpcc::RunMix(uint32_t threads, uint64_t txns_per_thread) {
  BaselineResult result;
  std::atomic<uint64_t> committed{0}, aborted{0};
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> history_seqs;
  for (uint32_t t = 0; t < threads; ++t) {
    history_seqs.push_back(
        std::make_unique<std::atomic<uint64_t>>((uint64_t(t) << 40) | 1));
  }
  result.seconds = RunParallel(db_.get(), threads, [&](uint32_t tid) {
    Rng rng(tid * 31337 + 23);
    uint32_t home = tid % options_.warehouses;
    for (uint64_t i = 0; i < txns_per_thread; ++i) {
      bool is_neworder = rng.NextBool(options_.neworder_fraction);
      // Retry until the transaction commits (client retry semantics).
      while (true) {
        SiloTxn txn(db_.get());
        bool ok = is_neworder
                      ? RunNewOrder(&txn, &rng, home, history_seqs[tid].get())
                      : RunPayment(&txn, &rng, home, history_seqs[tid].get());
        if (ok) {
          committed.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        aborted.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  result.committed = committed.load();
  result.aborted = aborted.load();
  result.tps = double(result.committed) / result.seconds;
  return result;
}

uint64_t SiloTpcc::WarehouseYtd(uint32_t w) {
  Record* r = db_->Find(warehouse_, WarehouseKey(w));
  uint8_t buf[kWarehousePayload];
  r->ReadConsistent(buf);
  return GetU64(buf, 0);
}

uint64_t SiloTpcc::DistrictNextOid(uint32_t w, uint32_t d) {
  Record* r = db_->Find(district_, DistrictKey(w, d));
  uint8_t buf[kDistrictPayload];
  r->ReadConsistent(buf);
  return GetU64(buf, 0);
}

}  // namespace bionicdb::baseline
