// Workload drivers for the Silo baseline (natively multithreaded).
//
// These run the same YCSB and TPC-C transactions as the BionicDB side, on
// the host CPU, measuring wall-clock throughput — the software half of the
// paper's Figures 9, 11d and the power-efficiency comparison.
#ifndef BIONICDB_BASELINE_WORKLOADS_H_
#define BIONICDB_BASELINE_WORKLOADS_H_

#include <cstdint>
#include <memory>

#include "baseline/silo.h"
#include "common/random.h"

namespace bionicdb::baseline {

struct BaselineResult {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  double seconds = 0;
  double tps = 0;
};

// --- YCSB ----------------------------------------------------------------

struct SiloYcsbOptions {
  uint64_t records = 400'000;  // total key space (all threads share it)
  uint32_t payload_len = 128;
  uint32_t accesses_per_txn = 16;
  uint32_t updates_per_txn = 0;  // 0 = YCSB-C
  uint32_t scan_len = 50;
  SiloIndexKind index = SiloIndexKind::kBTree;  // Masstree stand-in
};

class SiloYcsb {
 public:
  explicit SiloYcsb(const SiloYcsbOptions& options);

  void Setup();

  /// YCSB-C (or update-mix when updates_per_txn > 0).
  BaselineResult RunPointTxns(uint32_t threads, uint64_t txns_per_thread);

  /// Modified YCSB-E: one fixed-length scan per transaction.
  BaselineResult RunScans(uint32_t threads, uint64_t txns_per_thread);

  SiloDb& db() { return *db_; }
  uint32_t table() const { return table_; }

 private:
  SiloYcsbOptions options_;
  std::unique_ptr<SiloDb> db_;
  uint32_t table_ = 0;
};

// --- TPC-C ----------------------------------------------------------------

struct SiloTpccOptions {
  uint32_t warehouses = 4;
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 3000;
  uint32_t items = 100'000;
  uint32_t ol_cnt = 10;
  double remote_neworder_fraction = 0.01;
  double remote_payment_fraction = 0.15;
  /// Fraction of NewOrder in the mix (paper: 50:50 with Payment).
  double neworder_fraction = 0.5;
};

class SiloTpcc {
 public:
  explicit SiloTpcc(const SiloTpccOptions& options);

  void Setup();

  /// Runs the NewOrder/Payment mix; thread i homes warehouse i % W.
  BaselineResult RunMix(uint32_t threads, uint64_t txns_per_thread);

  SiloDb& db() { return *db_; }

  /// Test oracles.
  uint64_t WarehouseYtd(uint32_t w);
  uint64_t DistrictNextOid(uint32_t w, uint32_t d);

  // Key encodings (identical to the BionicDB TPC-C workload).
  uint64_t WarehouseKey(uint32_t w) const { return w; }
  uint64_t DistrictKey(uint32_t w, uint32_t d) const { return w * 100 + d; }
  uint64_t CustomerKey(uint32_t w, uint32_t d, uint32_t c) const {
    return (uint64_t(w) * options_.districts_per_warehouse + d) * 100'000 + c;
  }
  uint64_t ItemKey(uint32_t i) const { return i; }
  uint64_t StockKey(uint32_t w, uint32_t i) const {
    return uint64_t(w) * 1'000'000 + i;
  }
  uint64_t OrderKey(uint32_t w, uint32_t d, uint64_t o) const {
    return (uint64_t(w) * options_.districts_per_warehouse + d) *
               (1ull << 24) +
           o;
  }
  uint64_t ItemPrice(uint32_t i) const { return 100 + (i % 900); }

 private:
  bool RunNewOrder(SiloTxn* txn, Rng* rng, uint32_t home,
                   std::atomic<uint64_t>* history_seq);
  bool RunPayment(SiloTxn* txn, Rng* rng, uint32_t home,
                  std::atomic<uint64_t>* history_seq);

  SiloTpccOptions options_;
  std::unique_ptr<SiloDb> db_;
  uint32_t warehouse_ = 0, district_ = 0, customer_ = 0, history_ = 0;
  uint32_t neworder_ = 0, order_ = 0, orderline_ = 0, item_ = 0, stock_ = 0;
};

}  // namespace bionicdb::baseline

#endif  // BIONICDB_BASELINE_WORKLOADS_H_
