// Pluggable concurrency control for the software baseline tier.
//
// The Silo engine (silo.h) is the paper's comparison system and keeps its
// native OCC protocol. For the CC-diversity study (bench/cc_contention)
// the software tier additionally offers:
//
//   kOcc  — a thin adapter over SiloDb/SiloTxn (epoch TIDs, three-phase
//           optimistic commit). Lock-free reads, abort-and-retry under
//           contention.
//   kSgt  — online serialization-graph testing: every rw/wr/ww conflict
//           becomes a graph edge, a transaction aborts only when its edge
//           would close a cycle. No false-negative aborts: every abort is
//           witnessed by an actual cycle (exposed via EnableTrace for the
//           property test).
//   kMvcc — multi-version timestamp ordering: writers install pending
//           versions, readers are served the newest committed version with
//           wts <= ts, old versions are reclaimed by GcSweep at the
//           min-active-timestamp watermark.
//
// SGT and MVCC here optimise for auditable correctness, not raw speed:
// both serialise their bookkeeping under one mutex (the data copies happen
// inside it too). They still win under heavy hotspot contention where
// OCC's validate-and-retry burns work, which is exactly the regime
// bench/cc_contention probes; the uncontended throughput crown stays with
// OCC by construction.
//
// Interface shape: CcDb owns tables and committed state; CcTxn is one
// attempt. Read/Write return false when the transaction must abort (the
// attempt is dead either way — call Abort() and retry with a new Begin()).
#ifndef BIONICDB_BASELINE_CC_SCHEME_H_
#define BIONICDB_BASELINE_CC_SCHEME_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace bionicdb::baseline {

enum class CcSchemeKind : uint8_t { kOcc, kSgt, kMvcc };

inline const char* CcSchemeKindName(CcSchemeKind k) {
  switch (k) {
    case CcSchemeKind::kOcc:
      return "occ";
    case CcSchemeKind::kSgt:
      return "sgt";
    case CcSchemeKind::kMvcc:
      return "mvcc";
  }
  return "?";
}

struct CcTableDef {
  std::string name;
  uint32_t payload_len = 8;
  uint64_t expected_records = 1 << 20;
};

/// Aggregate scheme counters (atomics: bumped from worker threads).
struct CcSchemeStats {
  std::atomic<uint64_t> aborts{0};         // all failed attempts
  std::atomic<uint64_t> cycle_aborts{0};   // SGT: aborts backed by a cycle
  std::atomic<uint64_t> versions_created{0};
  std::atomic<uint64_t> versions_freed{0};
  std::atomic<uint64_t> gc_runs{0};
};

/// SGT evidence log for the no-false-negative property test: every edge
/// ever added plus, for every cycle abort, the closed path that justified
/// it. Only populated after CcDb::EnableTrace().
struct SgtTrace {
  std::vector<std::pair<uint64_t, uint64_t>> edges;  // (src txn, dst txn)
  std::vector<std::vector<uint64_t>> abort_cycles;   // closed paths
};

/// One transaction attempt; not reusable after Commit/Abort.
class CcTxn {
 public:
  virtual ~CcTxn() = default;

  /// Reads `payload_len(table)` bytes into `out`. False = must abort.
  virtual bool Read(uint32_t table, uint64_t key, void* out) = 0;

  /// Full-payload overwrite (buffered until commit where the scheme
  /// requires it). False = must abort.
  virtual bool Write(uint32_t table, uint64_t key, const void* value) = 0;

  /// False = validation/cycle failure; the attempt is rolled back and the
  /// caller should retry from Begin(). Counted in stats().aborts.
  virtual bool Commit() = 0;

  /// Abandons the attempt (also counted in stats().aborts when the abort
  /// followed a false Read/Write — schemes count once per dead attempt).
  virtual void Abort() = 0;
};

class CcDb {
 public:
  virtual ~CcDb() = default;

  /// Returns the new table's id (dense, starting at 0).
  virtual uint32_t CreateTable(const CcTableDef& def) = 0;

  /// Bulk load (single-threaded setup path).
  virtual void Load(uint32_t table, uint64_t key, const void* payload) = 0;

  /// Reads the latest committed payload outside any transaction (setup /
  /// verification path; not linearizable against running transactions).
  virtual bool ReadCommitted(uint32_t table, uint64_t key, void* out) = 0;

  virtual std::unique_ptr<CcTxn> Begin() = 0;

  /// OCC: advances the Silo epoch. No-op elsewhere.
  virtual void AdvanceEpoch() {}

  /// MVCC: reclaims versions below the min-active-ts watermark. Returns
  /// versions freed (0 for other schemes).
  virtual uint64_t GcSweep() { return 0; }

  /// SGT: start recording the evidence trace (call before any Begin()).
  virtual void EnableTrace() {}
  virtual const SgtTrace* trace() const { return nullptr; }

  virtual CcSchemeKind kind() const = 0;
  virtual uint32_t payload_len(uint32_t table) const = 0;

  CcSchemeStats& stats() { return stats_; }
  const CcSchemeStats& stats() const { return stats_; }

 protected:
  CcSchemeStats stats_;
};

std::unique_ptr<CcDb> MakeCcDb(CcSchemeKind kind);

// Implemented in sgt.cc / mvcc.cc (cc_scheme.cc provides the OCC adapter
// and the factory).
std::unique_ptr<CcDb> MakeSgtDb();
std::unique_ptr<CcDb> MakeMvccDb();

}  // namespace bionicdb::baseline

#endif  // BIONICDB_BASELINE_CC_SCHEME_H_
