// Software serialization-graph testing (SGT) engine.
//
// Online SGT: every conflict observed at operation time becomes an edge in
// a serialization graph (src must serialise before dst); an operation that
// would close a cycle aborts its transaction instead. This is the
// textbook "no false negatives" scheme — unlike OCC or T/O it never aborts
// a schedule that is in fact serializable, so under hotspot contention
// (where OCC validation keeps failing on rw overlaps that are perfectly
// serializable) it retains far more work.
//
// Edge discipline, with buffered writes installed at commit:
//   wr  last committed writer of the record -> reader     (at Read)
//   rw  every recorded reader of the record -> writer     (at Write)
//   ww  last committed writer -> writer                   (at Write)
//   rw  reader -> every still-pending writer              (at Read: the
//       read observed the pre-image, so it precedes the pending install)
//   ww  installer -> every other still-pending writer     (at Commit:
//       install order decides ww direction between concurrent writers)
//
// Aborted nodes drop their outgoing edges (they can't appear in a cycle);
// reader/writer metadata is epoch-tagged and the whole graph is pruned at
// quiescent points (no active transactions), mirroring the hardware CC
// unit (src/cc/cc_unit.cc).
//
// Everything — graph, metadata and data copies — is serialised under one
// mutex: this engine optimises for auditable correctness (the trace mode
// feeds the no-false-negative property test), not raw speed.
#include <algorithm>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "baseline/cc_scheme.h"

namespace bionicdb::baseline {

namespace {

constexpr uint64_t kNoWriter = 0;  // "ancient committed writer": no edge

class SgtDb;

class SgtTxn : public CcTxn {
 public:
  SgtTxn(SgtDb* db, uint64_t id) : db_(db), id_(id) {}

  bool Read(uint32_t table, uint64_t key, void* out) override;
  bool Write(uint32_t table, uint64_t key, const void* value) override;
  bool Commit() override;
  void Abort() override;

 private:
  friend class SgtDb;
  struct Buffered {
    uint32_t table;
    uint64_t key;
    std::vector<uint8_t> value;
  };

  SgtDb* db_;
  uint64_t id_;
  std::vector<Buffered> writes_;
  bool dead_ = false;
  bool done_ = false;
};

class SgtDb : public CcDb {
 public:
  uint32_t CreateTable(const CcTableDef& def) override {
    std::lock_guard<std::mutex> g(mu_);
    tables_.push_back(Table{def, {}});
    return uint32_t(tables_.size() - 1);
  }

  void Load(uint32_t table, uint64_t key, const void* payload) override {
    std::lock_guard<std::mutex> g(mu_);
    Rec& rec = tables_[table].recs[key];
    const uint8_t* p = static_cast<const uint8_t*>(payload);
    rec.value.assign(p, p + tables_[table].def.payload_len);
    rec.tag = prune_tag_;
  }

  bool ReadCommitted(uint32_t table, uint64_t key, void* out) override {
    std::lock_guard<std::mutex> g(mu_);
    auto it = tables_[table].recs.find(key);
    if (it == tables_[table].recs.end()) return false;
    std::memcpy(out, it->second.value.data(), it->second.value.size());
    return true;
  }

  std::unique_ptr<CcTxn> Begin() override {
    std::lock_guard<std::mutex> g(mu_);
    uint64_t id = next_txn_++;
    nodes_.emplace(id, Node{});
    ++active_;
    return std::make_unique<SgtTxn>(this, id);
  }

  void EnableTrace() override { tracing_ = true; }
  const SgtTrace* trace() const override { return &trace_; }
  CcSchemeKind kind() const override { return CcSchemeKind::kSgt; }
  uint32_t payload_len(uint32_t table) const override {
    return tables_[table].def.payload_len;
  }

 private:
  friend class SgtTxn;

  struct Node {
    bool finished = false;
    bool aborted = false;
    std::vector<uint64_t> out;
  };

  struct Rec {
    std::vector<uint8_t> value;
    uint64_t last_writer = kNoWriter;
    uint64_t tag = 0;  // stale tag => readers/pending/last_writer pruned
    std::vector<uint64_t> readers;
    std::vector<uint64_t> pending;
  };

  struct Table {
    CcTableDef def;
    std::unordered_map<uint64_t, Rec> recs;
  };

  void Touch(Rec* rec) {
    if (rec->tag != prune_tag_) {
      rec->readers.clear();
      rec->pending.clear();
      rec->last_writer = kNoWriter;
      rec->tag = prune_tag_;
    }
  }

  Node* FindNode(uint64_t id) {
    auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : &it->second;
  }

  /// DFS over out-edges of live nodes; fills `path` (from -> ... -> to)
  /// when a path exists.
  bool PathExists(uint64_t from, uint64_t to, std::vector<uint64_t>* path) {
    path->clear();
    std::unordered_map<uint64_t, uint64_t> parent;  // node -> predecessor
    std::vector<uint64_t> stack{from};
    parent[from] = from;
    while (!stack.empty()) {
      uint64_t cur = stack.back();
      stack.pop_back();
      if (cur == to) {
        for (uint64_t n = to; n != from; n = parent[n]) path->push_back(n);
        path->push_back(from);
        std::reverse(path->begin(), path->end());
        return true;
      }
      Node* node = FindNode(cur);
      if (node == nullptr || node->aborted) continue;
      for (uint64_t next : node->out) {
        if (parent.emplace(next, cur).second) stack.push_back(next);
      }
    }
    return false;
  }

  /// Adds src -> dst (deduplicated) and logs it when tracing.
  void AddEdge(uint64_t src, uint64_t dst) {
    Node* s = FindNode(src);
    if (s == nullptr || s->aborted) return;
    for (uint64_t d : s->out) {
      if (d == dst) return;
    }
    s->out.push_back(dst);
    if (tracing_) trace_.edges.emplace_back(src, dst);
  }

  /// Kills `txn` because edge src -> txn->id_ (or txn->id_ -> src when
  /// `outgoing`) closes the cycle in `path`. Logs the closing edge and the
  /// full cycle as evidence.
  void CycleAbort(SgtTxn* txn, uint64_t src, bool outgoing,
                  std::vector<uint64_t>* path) {
    if (tracing_) {
      // The closing conflict edge (recorded even though it is never added
      // to the live graph) plus the closed node cycle.
      if (outgoing) {
        trace_.edges.emplace_back(txn->id_, src);
      } else {
        trace_.edges.emplace_back(src, txn->id_);
      }
      path->push_back(path->front());
      trace_.abort_cycles.push_back(*path);
    }
    stats_.cycle_aborts.fetch_add(1, std::memory_order_relaxed);
    Die(txn);
  }

  /// Marks the attempt dead: node aborted, outgoing edges dropped, pending
  /// write intents withdrawn. Counts one abort.
  void Die(SgtTxn* txn) {
    txn->dead_ = true;
    Node* node = FindNode(txn->id_);
    if (node != nullptr) {
      node->aborted = true;
      node->finished = true;
      node->out.clear();
    }
    for (const auto& w : txn->writes_) {
      Rec& rec = tables_[w.table].recs[w.key];
      if (rec.tag != prune_tag_) continue;
      std::erase(rec.pending, txn->id_);
    }
    stats_.aborts.fetch_add(1, std::memory_order_relaxed);
    FinishLocked();
  }

  void FinishLocked() {
    if (--active_ == 0) {
      // Quiescent point: the whole graph is garbage (every node finished,
      // committed cycles are impossible). Epoch-tag prune, like the
      // hardware unit.
      nodes_.clear();
      ++prune_tag_;
    }
  }

  std::mutex mu_;
  std::vector<Table> tables_;
  std::unordered_map<uint64_t, Node> nodes_;
  uint64_t next_txn_ = 1;
  uint64_t active_ = 0;
  uint64_t prune_tag_ = 1;
  bool tracing_ = false;
  SgtTrace trace_;
};

bool SgtTxn::Read(uint32_t table, uint64_t key, void* out) {
  // Read-your-writes from the local buffer.
  for (auto it = writes_.rbegin(); it != writes_.rend(); ++it) {
    if (it->table == table && it->key == key) {
      std::memcpy(out, it->value.data(), it->value.size());
      return true;
    }
  }
  std::lock_guard<std::mutex> g(db_->mu_);
  if (dead_) return false;
  auto rit = db_->tables_[table].recs.find(key);
  if (rit == db_->tables_[table].recs.end()) return false;
  SgtDb::Rec& rec = rit->second;
  db_->Touch(&rec);
  std::vector<uint64_t> path;
  // wr: the committed writer of the observed version precedes me.
  if (rec.last_writer != kNoWriter && rec.last_writer != id_) {
    if (db_->PathExists(id_, rec.last_writer, &path)) {
      db_->CycleAbort(this, rec.last_writer, /*outgoing=*/false, &path);
      return false;
    }
    db_->AddEdge(rec.last_writer, id_);
  }
  // rw: I read the pre-image of every still-pending writer, so I precede
  // each of their installs.
  for (uint64_t w : rec.pending) {
    if (w == id_) continue;
    if (db_->PathExists(w, id_, &path)) {
      db_->CycleAbort(this, w, /*outgoing=*/true, &path);
      return false;
    }
    db_->AddEdge(id_, w);
  }
  bool known = false;
  for (uint64_t r : rec.readers) known |= (r == id_);
  if (!known) rec.readers.push_back(id_);
  std::memcpy(out, rec.value.data(), rec.value.size());
  return true;
}

bool SgtTxn::Write(uint32_t table, uint64_t key, const void* value) {
  std::lock_guard<std::mutex> g(db_->mu_);
  if (dead_) return false;
  auto rit = db_->tables_[table].recs.find(key);
  if (rit == db_->tables_[table].recs.end()) return false;
  SgtDb::Rec& rec = rit->second;
  db_->Touch(&rec);
  std::vector<uint64_t> path;
  // ww: the committed writer precedes me.
  if (rec.last_writer != kNoWriter && rec.last_writer != id_) {
    if (db_->PathExists(id_, rec.last_writer, &path)) {
      db_->CycleAbort(this, rec.last_writer, /*outgoing=*/false, &path);
      return false;
    }
    db_->AddEdge(rec.last_writer, id_);
  }
  // rw: everyone who read the current version precedes my install.
  for (uint64_t r : rec.readers) {
    if (r == id_) continue;
    SgtDb::Node* rn = db_->FindNode(r);
    if (rn == nullptr || rn->aborted) continue;
    if (db_->PathExists(id_, r, &path)) {
      db_->CycleAbort(this, r, /*outgoing=*/false, &path);
      return false;
    }
    db_->AddEdge(r, id_);
  }
  bool known = false;
  for (uint64_t w : rec.pending) known |= (w == id_);
  if (!known) rec.pending.push_back(id_);
  const uint8_t* p = static_cast<const uint8_t*>(value);
  for (auto& w : writes_) {
    if (w.table == table && w.key == key) {
      w.value.assign(p, p + db_->tables_[table].def.payload_len);
      return true;
    }
  }
  writes_.push_back(
      Buffered{table, key, {p, p + db_->tables_[table].def.payload_len}});
  return true;
}

bool SgtTxn::Commit() {
  std::lock_guard<std::mutex> g(db_->mu_);
  if (done_) return false;
  done_ = true;
  if (dead_) return false;
  std::vector<uint64_t> path;
  // Pass 1 — decide ww order against still-pending concurrent writers
  // before publishing anything: I install first, so I precede them all.
  for (const auto& w : writes_) {
    SgtDb::Rec& rec = db_->tables_[w.table].recs[w.key];
    for (uint64_t other : rec.pending) {
      if (other == id_) continue;
      if (db_->PathExists(other, id_, &path)) {
        db_->CycleAbort(this, other, /*outgoing=*/true, &path);
        return false;
      }
      db_->AddEdge(id_, other);
    }
  }
  // Pass 2 — install.
  for (const auto& w : writes_) {
    SgtDb::Rec& rec = db_->tables_[w.table].recs[w.key];
    rec.value = w.value;
    rec.last_writer = id_;
    std::erase(rec.pending, id_);
  }
  SgtDb::Node* node = db_->FindNode(id_);
  if (node != nullptr) node->finished = true;
  db_->FinishLocked();
  return true;
}

void SgtTxn::Abort() {
  std::lock_guard<std::mutex> g(db_->mu_);
  if (done_ || dead_) {
    done_ = true;
    return;
  }
  done_ = true;
  db_->Die(this);
}

}  // namespace

std::unique_ptr<CcDb> MakeSgtDb() { return std::make_unique<SgtDb>(); }

}  // namespace bionicdb::baseline
