#include "baseline/olc_btree.h"

namespace bionicdb::baseline {

OlcBTree::Leaf* OlcBTree::SplitLeaf(Leaf* leaf, uint64_t* sep) {
  // Caller holds write locks on `leaf` (and its parent); plain relaxed
  // copies, ordered for optimistic readers by the version bumps at unlock.
  auto rx = [](const auto& a) { return a.load(std::memory_order_relaxed); };
  Leaf* right = NewLeaf();
  uint32_t n = rx(leaf->count);
  uint32_t half = n / 2;
  right->count.store(n - half, std::memory_order_relaxed);
  for (uint32_t i = 0; i < n - half; ++i) {
    right->keys[i].store(rx(leaf->keys[half + i]),
                         std::memory_order_relaxed);
    right->values[i].store(rx(leaf->values[half + i]),
                           std::memory_order_relaxed);
  }
  leaf->count.store(half, std::memory_order_relaxed);
  right->next.store(leaf->next.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  leaf->next.store(right, std::memory_order_release);
  *sep = rx(right->keys[0]);
  return right;
}

OlcBTree::Inner* OlcBTree::SplitInner(Inner* inner, uint64_t* sep) {
  auto rx = [](const auto& a) { return a.load(std::memory_order_relaxed); };
  Inner* right = NewInner();
  uint32_t n = rx(inner->count);
  uint32_t half = n / 2;
  *sep = rx(inner->keys[half]);
  uint32_t right_n = n - half - 1;
  right->count.store(right_n, std::memory_order_relaxed);
  for (uint32_t i = 0; i < right_n; ++i) {
    right->keys[i].store(rx(inner->keys[half + 1 + i]),
                         std::memory_order_relaxed);
  }
  for (uint32_t i = 0; i <= right_n; ++i) {
    right->children[i].store(rx(inner->children[half + 1 + i]),
                             std::memory_order_relaxed);
  }
  inner->count.store(half, std::memory_order_relaxed);
  return right;
}

void OlcBTree::MakeRoot(uint64_t sep, Node* left, Node* right) {
  Inner* root = NewInner();
  root->count.store(1, std::memory_order_relaxed);
  root->keys[0].store(sep, std::memory_order_relaxed);
  root->children[0].store(left, std::memory_order_relaxed);
  root->children[1].store(right, std::memory_order_relaxed);
  root_.store(root, std::memory_order_release);
}

Record* OlcBTree::Find(uint64_t key) const {
  while (true) {
    uint64_t leaf_version;
    const Leaf* leaf = FindLeaf(key, &leaf_version);
    if (leaf == nullptr) continue;  // restart
    uint32_t pos = leaf->LowerBound(key);
    Record* result = nullptr;
    if (pos < leaf->count.load(std::memory_order_relaxed) &&
        leaf->keys[pos].load(std::memory_order_relaxed) == key) {
      result = leaf->values[pos].load(std::memory_order_relaxed);
    }
    bool restart = false;
    leaf->ReadUnlockOrRestart(leaf_version, &restart);
    if (!restart) return result;
  }
}

const OlcBTree::Leaf* OlcBTree::FindLeaf(uint64_t key,
                                         uint64_t* leaf_version) const {
  bool restart = false;
  const Node* node = root_.load(std::memory_order_acquire);
  uint64_t version = node->ReadLockOrRestart(&restart);
  if (restart || node != root_.load(std::memory_order_acquire)) {
    return nullptr;
  }
  const Node* parent = nullptr;
  uint64_t parent_version = 0;
  while (!node->is_leaf) {
    const Inner* inner = static_cast<const Inner*>(node);
    if (parent != nullptr) {
      parent->ReadUnlockOrRestart(parent_version, &restart);
      if (restart) return nullptr;
    }
    parent = node;
    parent_version = version;
    const Node* child =
        inner->children[inner->LowerBound(key)].load(
            std::memory_order_relaxed);
    inner->CheckOrRestart(version, &restart);
    if (restart) return nullptr;
    node = child;
    version = node->ReadLockOrRestart(&restart);
    if (restart) return nullptr;
  }
  if (parent != nullptr) {
    parent->ReadUnlockOrRestart(parent_version, &restart);
    if (restart) return nullptr;
  }
  *leaf_version = version;
  return static_cast<const Leaf*>(node);
}

Record* OlcBTree::Insert(uint64_t key, Record* value) {
restart:
  bool restart = false;
  Node* node = root_.load(std::memory_order_acquire);
  uint64_t version = node->ReadLockOrRestart(&restart);
  if (restart || node != root_.load(std::memory_order_acquire)) {
    goto restart;
  }
  Node* parent = nullptr;
  uint64_t parent_version = 0;

  while (!node->is_leaf) {
    Inner* inner = static_cast<Inner*>(node);
    // Eager split of full inner nodes keeps the lock scope to two levels.
    if (inner->count.load(std::memory_order_relaxed) == kInnerCap) {
      if (parent != nullptr) {
        parent->UpgradeToWriteLockOrRestart(&parent_version, &restart);
        if (restart) goto restart;
      }
      node->UpgradeToWriteLockOrRestart(&version, &restart);
      if (restart) {
        if (parent != nullptr) parent->WriteUnlock();
        goto restart;
      }
      if (parent == nullptr &&
          node != root_.load(std::memory_order_acquire)) {
        node->WriteUnlock();
        goto restart;
      }
      uint64_t sep;
      Inner* right = SplitInner(inner, &sep);
      if (parent != nullptr) {
        static_cast<Inner*>(parent)->InsertAt(sep, right);
        parent->WriteUnlock();
      } else {
        MakeRoot(sep, inner, right);
      }
      node->WriteUnlock();
      goto restart;
    }
    if (parent != nullptr) {
      parent->ReadUnlockOrRestart(parent_version, &restart);
      if (restart) goto restart;
    }
    parent = node;
    parent_version = version;
    Node* child = inner->children[inner->LowerBound(key)].load(
        std::memory_order_relaxed);
    inner->CheckOrRestart(version, &restart);
    if (restart) goto restart;
    node = child;
    version = node->ReadLockOrRestart(&restart);
    if (restart) goto restart;
  }

  Leaf* leaf = static_cast<Leaf*>(node);
  if (leaf->count.load(std::memory_order_relaxed) == kLeafCap) {
    if (parent != nullptr) {
      parent->UpgradeToWriteLockOrRestart(&parent_version, &restart);
      if (restart) goto restart;
    }
    node->UpgradeToWriteLockOrRestart(&version, &restart);
    if (restart) {
      if (parent != nullptr) parent->WriteUnlock();
      goto restart;
    }
    if (parent == nullptr && node != root_.load(std::memory_order_acquire)) {
      node->WriteUnlock();
      goto restart;
    }
    uint64_t sep;
    Leaf* right = SplitLeaf(leaf, &sep);
    if (parent != nullptr) {
      static_cast<Inner*>(parent)->InsertAt(sep, right);
      parent->WriteUnlock();
    } else {
      MakeRoot(sep, leaf, right);
    }
    node->WriteUnlock();
    goto restart;
  }
  if (parent != nullptr) {
    parent->ReadUnlockOrRestart(parent_version, &restart);
    if (restart) goto restart;
  }
  node->UpgradeToWriteLockOrRestart(&version, &restart);
  if (restart) goto restart;
  Record* existing = leaf->InsertIfAbsent(key, value);
  node->WriteUnlock();
  return existing;
}

uint32_t OlcBTree::Scan(uint64_t start, uint32_t count,
                        const std::function<bool(uint64_t, Record*)>& fn)
    const {
restart:
  uint64_t leaf_version;
  const Leaf* leaf = FindLeaf(start, &leaf_version);
  if (leaf == nullptr) goto restart;

  uint32_t visited = 0;
  uint64_t resume_key = start;
  while (leaf != nullptr && visited < count) {
    // Buffer the leaf's qualifying entries under its version, emit after a
    // successful validation (classic OLC leaf-at-a-time scan).
    uint64_t keys[kLeafCap];
    Record* values[kLeafCap];
    uint32_t n = 0;
    uint32_t leaf_count = leaf->count.load(std::memory_order_relaxed);
    for (uint32_t i = leaf->LowerBound(resume_key);
         i < leaf_count && visited + n < count; ++i) {
      keys[n] = leaf->keys[i].load(std::memory_order_relaxed);
      values[n] = leaf->values[i].load(std::memory_order_relaxed);
      ++n;
    }
    const Leaf* next = leaf->next.load(std::memory_order_acquire);
    bool restart = false;
    leaf->ReadUnlockOrRestart(leaf_version, &restart);
    if (restart) goto restart;
    for (uint32_t i = 0; i < n; ++i) {
      if (!fn(keys[i], values[i])) return visited + i + 1;
    }
    visited += n;
    if (next == nullptr) break;
    resume_key = 0;  // from the next leaf's first entry
    leaf = next;
    restart = false;
    leaf_version = leaf->ReadLockOrRestart(&restart);
    if (restart) goto restart;
  }
  return visited;
}

}  // namespace bionicdb::baseline
