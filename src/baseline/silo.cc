#include "baseline/silo.h"

#include <algorithm>
#include <cstring>

namespace bionicdb::baseline {

uint32_t SiloDb::CreateTable(const TableDef& def) {
  auto t = std::make_unique<Table>();
  t->def = def;
  switch (def.index) {
    case SiloIndexKind::kHash:
      t->hash = std::make_unique<HashIndex>(&arena_, def.expected_records);
      break;
    case SiloIndexKind::kBTree:
      t->btree = std::make_unique<OlcBTree>(&arena_);
      break;
    case SiloIndexKind::kSkiplist:
      t->skiplist = std::make_unique<SwSkiplist>(&arena_);
      break;
  }
  tables_.push_back(std::move(t));
  return uint32_t(tables_.size() - 1);
}

Record* SiloDb::Load(uint32_t table_id, uint64_t key, const void* payload) {
  Table* t = table(table_id);
  Record* r = arena_.AllocateRecord(t->def.payload_len);
  std::memcpy(r->payload(), payload, t->def.payload_len);
  r->tid.store(tid::Make(1, 0), std::memory_order_release);  // committed
  switch (t->def.index) {
    case SiloIndexKind::kHash:
      t->hash->Insert(key, r);
      break;
    case SiloIndexKind::kBTree:
      t->btree->Insert(key, r);
      break;
    case SiloIndexKind::kSkiplist:
      t->skiplist->Insert(key, r);
      break;
  }
  return r;
}

Record* SiloDb::Find(uint32_t table_id, uint64_t key) const {
  Table* t = table(table_id);
  switch (t->def.index) {
    case SiloIndexKind::kHash:
      return t->hash->Find(key);
    case SiloIndexKind::kBTree:
      return t->btree->Find(key);
    case SiloIndexKind::kSkiplist:
      return t->skiplist->Find(key);
  }
  return nullptr;
}

Record* SiloTxn::Get(uint32_t table, uint64_t key) const {
  return db_->Find(table, key);
}

bool SiloTxn::Read(Record* record, void* out) {
  uint64_t t = record->ReadConsistent(out);
  if (tid::Absent(t)) return false;
  read_set_.push_back(ReadEntry{record, t});
  return true;
}

void SiloTxn::Write(uint32_t table, Record* record, const void* value) {
  // Last write to the same record wins.
  for (WriteEntry& w : write_set_) {
    if (w.record == record) {
      std::memcpy(w.value.data(), value, w.value.size());
      return;
    }
  }
  WriteEntry w;
  w.table = table;
  w.record = record;
  w.value.assign(static_cast<const uint8_t*>(value),
                 static_cast<const uint8_t*>(value) +
                     db_->payload_len(table));
  w.is_insert = false;
  write_set_.push_back(std::move(w));
}

Record* SiloTxn::Insert(uint32_t table_id, uint64_t key, const void* value) {
  SiloDb::Table* t = db_->table(table_id);

  // An existing ABSENT record (an earlier aborted insert, possibly our own
  // retry) can be claimed: we validate its TID at commit, so two racing
  // claimers cannot both succeed. A committed record is a true duplicate.
  auto claim = [&](Record* existing) -> Record* {
    uint64_t observed = existing->StableTid();
    if (!tid::Absent(observed)) return nullptr;  // live duplicate
    read_set_.push_back(ReadEntry{existing, observed});
    WriteEntry w;
    w.table = table_id;
    w.record = existing;
    w.value.assign(static_cast<const uint8_t*>(value),
                   static_cast<const uint8_t*>(value) + t->def.payload_len);
    w.is_insert = true;
    write_set_.push_back(std::move(w));
    return existing;
  };

  Record* existing = db_->Find(table_id, key);
  if (existing != nullptr) return claim(existing);

  // Fresh insert. All three indexes provide insert-if-absent semantics
  // decided inside their own critical section, so two racing inserters of
  // one key always agree on a single resident record; the loser claims the
  // winner's (still-absent) record below. Anything weaker (e.g. upsert)
  // lets the loser's transaction commit a row the index no longer points
  // to.
  Record* r = db_->arena_.AllocateRecord(t->def.payload_len);
  Record* resident = nullptr;
  switch (t->def.index) {
    case SiloIndexKind::kHash:
      if (!t->hash->Insert(key, r)) resident = db_->Find(table_id, key);
      break;
    case SiloIndexKind::kBTree:
      resident = t->btree->Insert(key, r);
      break;
    case SiloIndexKind::kSkiplist:
      resident = t->skiplist->Insert(key, r);
      break;
  }
  if (resident != nullptr) return claim(resident);
  // Validate our own insert: if a racing claimer of this record commits
  // first, the TID changes and our commit must fail.
  read_set_.push_back(ReadEntry{r, tid::kAbsentBit});
  WriteEntry w;
  w.table = table_id;
  w.record = r;
  w.value.assign(static_cast<const uint8_t*>(value),
                 static_cast<const uint8_t*>(value) +
                     t->def.payload_len);
  w.is_insert = true;
  write_set_.push_back(std::move(w));
  return r;
}

uint32_t SiloTxn::Scan(uint32_t table_id, uint64_t start, uint32_t count,
                       const std::function<bool(uint64_t, const uint8_t*)>&
                           fn) {
  SiloDb::Table* t = db_->table(table_id);
  std::vector<uint8_t> buf(t->def.payload_len);
  auto visit = [&](uint64_t key, Record* r) {
    uint64_t tid_word = r->ReadConsistent(buf.data());
    if (tid::Absent(tid_word)) return true;  // skip, do not count
    return fn(key, buf.data());
  };
  switch (t->def.index) {
    case SiloIndexKind::kBTree:
      return t->btree->Scan(start, count, visit);
    case SiloIndexKind::kSkiplist:
      return t->skiplist->Scan(start, count, visit);
    case SiloIndexKind::kHash:
      return 0;  // hash tables do not support range scans
  }
  return 0;
}

bool SiloTxn::InWriteSet(const Record* r) const {
  for (const WriteEntry& w : write_set_) {
    if (w.record == r) return true;
  }
  return false;
}

bool SiloTxn::Commit() {
  if (aborted_) return false;
  // Phase 1: lock the write set in a global order (record address).
  std::sort(write_set_.begin(), write_set_.end(),
            [](const WriteEntry& a, const WriteEntry& b) {
              return a.record < b.record;
            });
  for (WriteEntry& w : write_set_) w.record->Lock();

  std::atomic_thread_fence(std::memory_order_acq_rel);
  const uint64_t epoch = db_->epoch();

  // Phase 2: validate the read set.
  uint64_t max_seen = 0;
  bool ok = true;
  for (const ReadEntry& r : read_set_) {
    uint64_t cur = r.record->tid.load(std::memory_order_acquire);
    if ((cur & ~tid::kLockBit) != r.observed_tid) {
      ok = false;
      break;
    }
    if (tid::Locked(cur) && !InWriteSet(r.record)) {
      ok = false;
      break;
    }
    max_seen = std::max(max_seen, r.observed_tid & tid::kDataMask);
  }
  if (!ok) {
    for (WriteEntry& w : write_set_) w.record->Unlock();
    return false;
  }
  for (const WriteEntry& w : write_set_) {
    uint64_t cur = w.record->tid.load(std::memory_order_relaxed);
    max_seen = std::max(max_seen, cur & tid::kDataMask);
  }

  // Phase 3: install writes with a TID greater than everything observed
  // and within the current epoch.
  uint64_t seq = (max_seen & 0xffffffffull) + 1;
  uint64_t new_tid = std::max(tid::Make(epoch, seq), max_seen + 1) &
                     tid::kDataMask;
  for (WriteEntry& w : write_set_) {
    RelaxedStore(w.record->payload(), w.value.data(), w.value.size());
    // Store clears lock + absent in one release write.
    w.record->tid.store(new_tid, std::memory_order_release);
  }
  committed_tid_ = new_tid;
  return true;
}

}  // namespace bionicdb::baseline
