// Records and TID words for the Silo-style software baseline.
//
// The baseline reproduces Silo's commit protocol [Tu et al., SOSP'13]: each
// record carries a TID word combining a lock bit, an absent bit (inserted
// but not yet committed / logically deleted), an epoch and a sequence
// number. Readers take consistent snapshots by double-checking the TID;
// writers lock at commit, validate their read sets, then install new TIDs.
#ifndef BIONICDB_BASELINE_RECORD_H_
#define BIONICDB_BASELINE_RECORD_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace bionicdb::baseline {

namespace tid {
constexpr uint64_t kLockBit = 1ull << 63;
constexpr uint64_t kAbsentBit = 1ull << 62;
constexpr uint64_t kDataMask = ~(kLockBit | kAbsentBit);

constexpr uint64_t Make(uint64_t epoch, uint64_t seq) {
  return ((epoch << 32) | (seq & 0xffffffffull)) & kDataMask;
}
constexpr bool Locked(uint64_t t) { return (t & kLockBit) != 0; }
constexpr bool Absent(uint64_t t) { return (t & kAbsentBit) != 0; }
constexpr uint64_t Epoch(uint64_t t) { return (t & kDataMask) >> 32; }
}  // namespace tid

/// Torn-read-tolerant memory copy for Silo's optimistic reads: the TID
/// double-check discards torn snapshots, but the copy itself must still be
/// race-free C++ — word-wise relaxed atomics via std::atomic_ref (payloads
/// are 8-byte aligned; the tail is copied byte-wise).
inline void RelaxedCopy(void* dst, const void* src, size_t len) {
  auto* d8 = static_cast<uint64_t*>(dst);
  auto* s8 = static_cast<uint64_t*>(const_cast<void*>(src));
  size_t words = len / 8;
  for (size_t i = 0; i < words; ++i) {
    d8[i] = std::atomic_ref<uint64_t>(s8[i]).load(std::memory_order_relaxed);
  }
  auto* db = static_cast<uint8_t*>(dst) + words * 8;
  auto* sb = static_cast<uint8_t*>(const_cast<void*>(src)) + words * 8;
  for (size_t i = 0; i < len % 8; ++i) {
    db[i] = std::atomic_ref<uint8_t>(sb[i]).load(std::memory_order_relaxed);
  }
}

inline void RelaxedStore(void* dst, const void* src, size_t len) {
  auto* d8 = static_cast<uint64_t*>(dst);
  auto* s8 = static_cast<uint64_t*>(const_cast<void*>(src));
  size_t words = len / 8;
  for (size_t i = 0; i < words; ++i) {
    std::atomic_ref<uint64_t>(d8[i]).store(s8[i],
                                           std::memory_order_relaxed);
  }
  auto* db = static_cast<uint8_t*>(dst) + words * 8;
  auto* sb = static_cast<uint8_t*>(const_cast<void*>(src)) + words * 8;
  for (size_t i = 0; i < len % 8; ++i) {
    std::atomic_ref<uint8_t>(db[i]).store(sb[i], std::memory_order_relaxed);
  }
}

/// A heap record: TID word + inline payload.
struct Record {
  std::atomic<uint64_t> tid;
  uint32_t payload_len;

  uint8_t* payload() { return reinterpret_cast<uint8_t*>(this + 1); }
  const uint8_t* payload() const {
    return reinterpret_cast<const uint8_t*>(this + 1);
  }

  /// Spins until unlocked, then returns the TID word (acquire).
  uint64_t StableTid() const {
    uint64_t t;
    do {
      t = tid.load(std::memory_order_acquire);
    } while (tid::Locked(t));
    return t;
  }

  /// Consistent payload snapshot (Silo's optimistic read).
  uint64_t ReadConsistent(void* out) const {
    while (true) {
      uint64_t t1 = StableTid();
      RelaxedCopy(out, payload(), payload_len);
      std::atomic_thread_fence(std::memory_order_acquire);
      uint64_t t2 = tid.load(std::memory_order_acquire);
      if (t1 == t2) return t1;
    }
  }

  /// Spin-lock the record (commit phase 1).
  void Lock() {
    uint64_t t = tid.load(std::memory_order_relaxed);
    while (true) {
      if (!tid::Locked(t)) {
        if (tid.compare_exchange_weak(t, t | tid::kLockBit,
                                      std::memory_order_acquire)) {
          return;
        }
      } else {
        t = tid.load(std::memory_order_relaxed);
      }
    }
  }

  bool TryLock() {
    uint64_t t = tid.load(std::memory_order_relaxed);
    if (tid::Locked(t)) return false;
    return tid.compare_exchange_strong(t, t | tid::kLockBit,
                                       std::memory_order_acquire);
  }

  void Unlock() {
    tid.store(tid.load(std::memory_order_relaxed) & ~tid::kLockBit,
              std::memory_order_release);
  }
};

/// Thread-safe bump arena for records and index nodes. Memory is reclaimed
/// only at arena destruction (Silo-style: no mid-run deallocation, which
/// also sidesteps concurrent reclamation). Each thread bump-allocates from
/// its own current chunk per arena; arenas carry process-unique ids so the
/// thread-local cache can never resolve to a destroyed arena's chunk.
class Arena {
 public:
  Arena() : id_(NextId()) {}

  void* Allocate(size_t bytes, size_t align = 8) {
    thread_local std::unordered_map<uint64_t, Chunk*> tl_chunks;
    Chunk*& chunk = tl_chunks[id_];
    bytes = (bytes + align - 1) & ~(align - 1);
    if (chunk == nullptr || chunk->used + bytes > chunk->capacity) {
      chunk = NewChunk(bytes);
    }
    void* out = chunk->data + chunk->used;
    chunk->used += bytes;
    return out;
  }

  Record* AllocateRecord(uint32_t payload_len) {
    void* mem = Allocate(sizeof(Record) + payload_len);
    Record* r = new (mem) Record();
    r->tid.store(tid::kAbsentBit, std::memory_order_relaxed);
    r->payload_len = payload_len;
    return r;
  }

 private:
  static constexpr size_t kChunkSize = 1 << 20;

  struct Chunk {
    size_t capacity = 0;
    size_t used = 0;
    uint8_t data[];  // NOLINT
  };

  static uint64_t NextId() {
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }

  Chunk* NewChunk(size_t at_least) {
    size_t capacity = std::max(kChunkSize, at_least);
    auto mem = std::make_unique<uint8_t[]>(sizeof(Chunk) + capacity);
    Chunk* c = reinterpret_cast<Chunk*>(mem.get());
    c->capacity = capacity;
    c->used = 0;
    std::lock_guard<std::mutex> g(mu_);
    chunks_.push_back(std::move(mem));
    return c;
  }

  const uint64_t id_;
  std::mutex mu_;
  std::vector<std::unique_ptr<uint8_t[]>> chunks_;
};

}  // namespace bionicdb::baseline

#endif  // BIONICDB_BASELINE_RECORD_H_
