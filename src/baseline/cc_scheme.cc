#include "baseline/cc_scheme.h"

#include "baseline/silo.h"

namespace bionicdb::baseline {

namespace {

// Thin adapter: CcDb/CcTxn over the native Silo engine. Tables are created
// with hash indexes (the CC study is point-access only).
class OccDb;

class OccTxn : public CcTxn {
 public:
  OccTxn(OccDb* owner, SiloDb* db) : owner_(owner), txn_(db) {}

  bool Read(uint32_t table, uint64_t key, void* out) override {
    Record* r = txn_.Get(table, key);
    return r != nullptr && txn_.Read(r, out);
  }

  bool Write(uint32_t table, uint64_t key, const void* value) override {
    Record* r = txn_.Get(table, key);
    if (r == nullptr) return false;
    txn_.Write(table, r, value);
    return true;
  }

  bool Commit() override;
  void Abort() override;

 private:
  OccDb* owner_;
  SiloTxn txn_;
  bool done_ = false;
};

class OccDb : public CcDb {
 public:
  uint32_t CreateTable(const CcTableDef& def) override {
    SiloDb::TableDef sd;
    sd.name = def.name;
    sd.index = SiloIndexKind::kHash;
    sd.payload_len = def.payload_len;
    sd.expected_records = def.expected_records;
    return db_.CreateTable(sd);
  }

  void Load(uint32_t table, uint64_t key, const void* payload) override {
    db_.Load(table, key, payload);
  }

  bool ReadCommitted(uint32_t table, uint64_t key, void* out) override {
    Record* r = db_.Find(table, key);
    if (r == nullptr) return false;
    r->ReadConsistent(out);
    return true;
  }

  std::unique_ptr<CcTxn> Begin() override {
    return std::make_unique<OccTxn>(this, &db_);
  }

  void AdvanceEpoch() override { db_.AdvanceEpoch(); }
  CcSchemeKind kind() const override { return CcSchemeKind::kOcc; }
  uint32_t payload_len(uint32_t table) const override {
    return db_.payload_len(table);
  }

 private:
  SiloDb db_;
};

bool OccTxn::Commit() {
  done_ = true;
  if (txn_.Commit()) return true;
  owner_->stats().aborts.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void OccTxn::Abort() {
  if (done_) return;
  done_ = true;
  txn_.Abort();
  owner_->stats().aborts.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::unique_ptr<CcDb> MakeCcDb(CcSchemeKind kind) {
  switch (kind) {
    case CcSchemeKind::kOcc:
      return std::make_unique<OccDb>();
    case CcSchemeKind::kSgt:
      return MakeSgtDb();
    case CcSchemeKind::kMvcc:
      return MakeMvccDb();
  }
  return nullptr;
}

}  // namespace bionicdb::baseline
