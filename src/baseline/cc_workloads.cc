#include "baseline/cc_workloads.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

namespace bionicdb::baseline {

namespace {

uint64_t GetU64(const void* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

CcSmallBank::CcSmallBank(CcDb* db, const CcSmallBankOptions& options)
    : db_(db), options_(options) {}

void CcSmallBank::Setup() {
  CcTableDef def;
  def.payload_len = 8;
  def.expected_records = options_.accounts;
  def.name = "savings";
  savings_ = db_->CreateTable(def);
  def.name = "checking";
  checking_ = db_->CreateTable(def);
  for (uint64_t a = 0; a < options_.accounts; ++a) {
    db_->Load(savings_, a, &options_.initial_balance);
    db_->Load(checking_, a, &options_.initial_balance);
  }
  initial_total_ = uint64_t(options_.accounts) * options_.initial_balance * 2;
}

CcSmallBank::TxnSpec CcSmallBank::MakeSpec(Rng* rng) {
  auto account = [&]() -> uint64_t {
    uint64_t span = options_.accounts;
    if (options_.hotspot_accounts > 0 && options_.hotspot_fraction > 0.0 &&
        rng->NextBool(options_.hotspot_fraction)) {
      span = std::min<uint64_t>(options_.hotspot_accounts, span);
    }
    return rng->NextUint64(span);
  };
  const uint32_t total = options_.mix_balance + options_.mix_deposit +
                         options_.mix_transact + options_.mix_amalgamate +
                         options_.mix_write_check;
  uint64_t pick = rng->NextUint64(total > 0 ? total : 1);
  TxnSpec spec;
  if (pick < options_.mix_balance) {
    spec.type = 0;
  } else if ((pick -= options_.mix_balance) < options_.mix_deposit) {
    spec.type = 1;
  } else if ((pick -= options_.mix_deposit) < options_.mix_transact) {
    spec.type = 2;
  } else if ((pick -= options_.mix_transact) < options_.mix_amalgamate) {
    spec.type = 3;
  } else {
    spec.type = 4;
  }
  spec.a0 = account();
  if (spec.type == 3) {
    spec.a1 = spec.a0;
    while (spec.a1 == spec.a0) spec.a1 = account();
  }
  if (spec.type == 1 || spec.type == 2) spec.amount = 1 + rng->NextUint64(100);
  if (spec.type == 4) spec.amount = 1 + rng->NextUint64(50);
  return spec;
}

bool CcSmallBank::Attempt(const TxnSpec& spec) {
  std::unique_ptr<CcTxn> txn = db_->Begin();
  uint8_t buf[8];
  uint64_t delta = 0;
  bool ok = true;
  switch (spec.type) {
    case 0: {  // Balance
      ok = txn->Read(savings_, spec.a0, buf) &&
           txn->Read(checking_, spec.a0, buf);
      break;
    }
    case 1:    // DepositChecking
    case 2: {  // TransactSavings
      const uint32_t table = spec.type == 1 ? checking_ : savings_;
      ok = txn->Read(table, spec.a0, buf);
      if (ok) {
        uint64_t v = GetU64(buf) + spec.amount;
        ok = txn->Write(table, spec.a0, &v);
      }
      delta = spec.amount;
      break;
    }
    case 3: {  // Amalgamate: move a0's funds into a1's checking
      uint64_t sav = 0, chk = 0, dst = 0;
      ok = txn->Read(savings_, spec.a0, buf) && ((sav = GetU64(buf)), true) &&
           txn->Read(checking_, spec.a0, buf) && ((chk = GetU64(buf)), true) &&
           txn->Read(checking_, spec.a1, buf) && ((dst = GetU64(buf)), true);
      if (ok) {
        uint64_t zero = 0, moved = dst + sav + chk;
        ok = txn->Write(checking_, spec.a1, &moved) &&
             txn->Write(savings_, spec.a0, &zero) &&
             txn->Write(checking_, spec.a0, &zero);
      }
      break;
    }
    case 4: {  // WriteCheck: balance-check read, then debit checking
      uint64_t chk = 0;
      ok = txn->Read(savings_, spec.a0, buf) &&
           txn->Read(checking_, spec.a0, buf) && ((chk = GetU64(buf)), true);
      if (ok) {
        uint64_t v = chk - spec.amount;
        ok = txn->Write(checking_, spec.a0, &v);
      }
      delta = uint64_t(-int64_t(spec.amount));
      break;
    }
    default:
      break;
  }
  if (!ok) {
    txn->Abort();
    return false;
  }
  if (!txn->Commit()) return false;
  delta_sum_.fetch_add(delta, std::memory_order_relaxed);
  return true;
}

BaselineResult CcSmallBank::RunMix(uint32_t threads,
                                   uint64_t txns_per_thread, uint64_t seed) {
  BaselineResult result;
  std::atomic<uint64_t> committed{0}, aborted{0};
  std::atomic<bool> done{false};
  // Background maintenance: Silo epoch ticks for OCC, version GC for MVCC.
  std::thread maintenance([&] {
    while (!done.load(std::memory_order_acquire)) {
      db_->AdvanceEpoch();
      if (db_->kind() == CcSchemeKind::kMvcc) db_->GcSweep();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      Rng rng(seed * 9176 + t * 7919 + 13);
      for (uint64_t i = 0; i < txns_per_thread; ++i) {
        TxnSpec spec = MakeSpec(&rng);
        while (!Attempt(spec)) {
          aborted.fetch_add(1, std::memory_order_relaxed);
        }
        committed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : pool) t.join();
  auto end = std::chrono::steady_clock::now();
  done.store(true, std::memory_order_release);
  maintenance.join();
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.committed = committed.load();
  result.aborted = aborted.load();
  result.tps = result.seconds > 0 ? double(result.committed) / result.seconds
                                  : 0;
  return result;
}

uint64_t CcSmallBank::TotalAssets() {
  uint64_t sum = 0;
  uint8_t buf[8];
  for (uint64_t a = 0; a < options_.accounts; ++a) {
    if (db_->ReadCommitted(savings_, a, buf)) sum += GetU64(buf);
    if (db_->ReadCommitted(checking_, a, buf)) sum += GetU64(buf);
  }
  return sum;
}

bool CcSmallBank::VerifyConservation() {
  return TotalAssets() ==
         initial_total_ + delta_sum_.load(std::memory_order_acquire);
}

}  // namespace bionicdb::baseline
