// Concurrent chaining hash index for the Silo baseline.
//
// Lock-free reads; inserts CAS-prepend onto per-bucket chains. Nodes are
// never removed (deletion is logical via the record's absent bit), so
// readers need no reclamation protocol.
#ifndef BIONICDB_BASELINE_HASH_INDEX_H_
#define BIONICDB_BASELINE_HASH_INDEX_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "baseline/record.h"
#include "common/hash.h"

namespace bionicdb::baseline {

class HashIndex {
 public:
  HashIndex(Arena* arena, uint64_t n_buckets)
      : arena_(arena), buckets_(RoundUp(n_buckets)) {
    mask_ = buckets_.size() - 1;
    for (auto& b : buckets_) b.store(nullptr, std::memory_order_relaxed);
  }

  /// Returns the record for `key`, or nullptr.
  Record* Find(uint64_t key) const {
    Node* n = buckets_[Fnv1aHash64(key) & mask_].load(
        std::memory_order_acquire);
    while (n != nullptr) {
      if (n->key == key) return n->record;
      n = n->next.load(std::memory_order_acquire);
    }
    return nullptr;
  }

  /// Inserts key -> record. Returns false if the key already exists.
  bool Insert(uint64_t key, Record* record) {
    auto& head = buckets_[Fnv1aHash64(key) & mask_];
    Node* node = new (arena_->Allocate(sizeof(Node))) Node();
    node->key = key;
    node->record = record;
    while (true) {
      Node* first = head.load(std::memory_order_acquire);
      for (Node* n = first; n != nullptr;
           n = n->next.load(std::memory_order_acquire)) {
        if (n->key == key) return false;
      }
      node->next.store(first, std::memory_order_relaxed);
      if (head.compare_exchange_weak(first, node,
                                     std::memory_order_release)) {
        return true;
      }
    }
  }

 private:
  struct Node {
    std::atomic<Node*> next{nullptr};
    uint64_t key = 0;
    Record* record = nullptr;
  };

  static uint64_t RoundUp(uint64_t v) {
    uint64_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  Arena* arena_;
  std::vector<std::atomic<Node*>> buckets_;
  uint64_t mask_;
};

}  // namespace bionicdb::baseline

#endif  // BIONICDB_BASELINE_HASH_INDEX_H_
