// Software multi-version timestamp ordering (MVTO) engine.
//
// Transactions draw a begin timestamp from a global counter. Writers
// install *pending* versions at Write time; readers are served the newest
// version with wts <= ts (their own pending version included), bumping its
// rts. The classic MVTO rules:
//
//   read(ts):  newest version v with v.wts <= ts. If v is another
//              transaction's pending write -> abort (no spinning under the
//              global latch; the retry loop re-draws a fresh ts).
//   write(ts): let v = newest version with v.wts <= ts. Abort when v is
//              foreign-pending or v.rts > ts (a reader in (wts, ts] already
//              missed this write). Otherwise splice a pending version with
//              wts = ts into the chain.
//
// Commit flips the transaction's versions to committed; abort unsplices
// them. GcSweep reclaims versions strictly older than the newest committed
// version at the min-active-timestamp watermark — a held-open transaction
// pins history exactly like the hardware unit's quiescent-point GC
// (src/cc/cc_unit.cc).
//
// Read-mostly hotspots are the win here: readers of a hot record never
// conflict with each other and only abort against in-flight writers,
// where OCC invalidates every overlapping reader at validation.
#include <algorithm>
#include <cstring>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "baseline/cc_scheme.h"

namespace bionicdb::baseline {

namespace {

class MvccDb;

class MvccTxn : public CcTxn {
 public:
  MvccTxn(MvccDb* db, uint64_t ts) : db_(db), ts_(ts) {}

  bool Read(uint32_t table, uint64_t key, void* out) override;
  bool Write(uint32_t table, uint64_t key, const void* value) override;
  bool Commit() override;
  void Abort() override;

 private:
  friend class MvccDb;
  MvccDb* db_;
  uint64_t ts_;
  std::vector<std::pair<uint32_t, uint64_t>> writes_;  // (table, key)
  bool done_ = false;
};

class MvccDb : public CcDb {
 public:
  uint32_t CreateTable(const CcTableDef& def) override {
    std::lock_guard<std::mutex> g(mu_);
    tables_.push_back(Table{def, {}});
    return uint32_t(tables_.size() - 1);
  }

  void Load(uint32_t table, uint64_t key, const void* payload) override {
    std::lock_guard<std::mutex> g(mu_);
    const uint8_t* p = static_cast<const uint8_t*>(payload);
    Rec& rec = tables_[table].recs[key];
    rec.versions.clear();
    rec.versions.push_back(
        Version{0, 0, true, {p, p + tables_[table].def.payload_len}});
  }

  bool ReadCommitted(uint32_t table, uint64_t key, void* out) override {
    std::lock_guard<std::mutex> g(mu_);
    auto it = tables_[table].recs.find(key);
    if (it == tables_[table].recs.end()) return false;
    const auto& versions = it->second.versions;
    for (auto v = versions.rbegin(); v != versions.rend(); ++v) {
      if (v->committed) {
        std::memcpy(out, v->value.data(), v->value.size());
        return true;
      }
    }
    return false;
  }

  std::unique_ptr<CcTxn> Begin() override {
    std::lock_guard<std::mutex> g(mu_);
    uint64_t ts = next_ts_++;
    active_.insert(ts);
    return std::make_unique<MvccTxn>(this, ts);
  }

  uint64_t GcSweep() override {
    std::lock_guard<std::mutex> g(mu_);
    const uint64_t watermark = active_.empty() ? next_ts_ : *active_.begin();
    uint64_t freed = 0;
    for (auto& table : tables_) {
      for (auto& [key, rec] : table.recs) {
        // Newest committed version at or below the watermark: every older
        // version is invisible to all current and future transactions.
        size_t keep = 0;
        for (size_t i = 0; i < rec.versions.size(); ++i) {
          const Version& v = rec.versions[i];
          if (v.committed && v.wts <= watermark) keep = i;
        }
        if (keep > 0) {
          rec.versions.erase(rec.versions.begin(),
                             rec.versions.begin() + long(keep));
          freed += keep;
        }
      }
    }
    stats_.versions_freed.fetch_add(freed, std::memory_order_relaxed);
    stats_.gc_runs.fetch_add(1, std::memory_order_relaxed);
    return freed;
  }

  CcSchemeKind kind() const override { return CcSchemeKind::kMvcc; }
  uint32_t payload_len(uint32_t table) const override {
    return tables_[table].def.payload_len;
  }

 private:
  friend class MvccTxn;

  struct Version {
    uint64_t wts;
    uint64_t rts;
    bool committed;
    std::vector<uint8_t> value;
  };

  struct Rec {
    std::vector<Version> versions;  // wts ascending
  };

  struct Table {
    CcTableDef def;
    std::unordered_map<uint64_t, Rec> recs;
  };

  void FinishLocked(MvccTxn* txn) { active_.erase(txn->ts_); }

  std::mutex mu_;
  std::vector<Table> tables_;
  std::set<uint64_t> active_;
  uint64_t next_ts_ = 1;
};

bool MvccTxn::Read(uint32_t table, uint64_t key, void* out) {
  std::lock_guard<std::mutex> g(db_->mu_);
  auto it = db_->tables_[table].recs.find(key);
  if (it == db_->tables_[table].recs.end()) return false;
  auto& versions = it->second.versions;
  for (auto v = versions.rbegin(); v != versions.rend(); ++v) {
    if (v->wts > ts_) continue;
    if (!v->committed && v->wts != ts_) return false;  // foreign pending
    std::memcpy(out, v->value.data(), v->value.size());
    v->rts = std::max(v->rts, ts_);
    return true;
  }
  return false;
}

bool MvccTxn::Write(uint32_t table, uint64_t key, const void* value) {
  std::lock_guard<std::mutex> g(db_->mu_);
  auto it = db_->tables_[table].recs.find(key);
  if (it == db_->tables_[table].recs.end()) return false;
  auto& versions = it->second.versions;
  // Predecessor: newest version with wts <= ts.
  size_t pos = versions.size();
  while (pos > 0 && versions[pos - 1].wts > ts_) --pos;
  if (pos == 0) return false;  // history already reclaimed past our ts
  MvccDb::Version& pred = versions[pos - 1];
  const uint8_t* p = static_cast<const uint8_t*>(value);
  const uint32_t len = db_->tables_[table].def.payload_len;
  if (pred.wts == ts_) {  // our own pending version: overwrite in place
    pred.value.assign(p, p + len);
    return true;
  }
  if (!pred.committed) return false;   // foreign pending write
  if (pred.rts > ts_) return false;    // a reader already missed us
  versions.insert(versions.begin() + long(pos),
                  MvccDb::Version{ts_, ts_, false, {p, p + len}});
  writes_.emplace_back(table, key);
  db_->stats_.versions_created.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool MvccTxn::Commit() {
  std::lock_guard<std::mutex> g(db_->mu_);
  if (done_) return false;
  done_ = true;
  for (const auto& [table, key] : writes_) {
    auto& versions = db_->tables_[table].recs[key].versions;
    for (auto& v : versions) {
      if (v.wts == ts_) v.committed = true;
    }
  }
  db_->FinishLocked(this);
  return true;
}

void MvccTxn::Abort() {
  std::lock_guard<std::mutex> g(db_->mu_);
  if (done_) return;
  done_ = true;
  uint64_t freed = 0;
  for (const auto& [table, key] : writes_) {
    auto& versions = db_->tables_[table].recs[key].versions;
    for (size_t i = 0; i < versions.size(); ++i) {
      if (versions[i].wts == ts_) {
        versions.erase(versions.begin() + long(i));
        ++freed;
        break;
      }
    }
  }
  db_->stats_.versions_freed.fetch_add(freed, std::memory_order_relaxed);
  db_->stats_.aborts.fetch_add(1, std::memory_order_relaxed);
  db_->FinishLocked(this);
}

}  // namespace

std::unique_ptr<CcDb> MakeMvccDb() { return std::make_unique<MvccDb>(); }

}  // namespace bionicdb::baseline
