// SmallBank driver over the pluggable software CC schemes (cc_scheme.h) —
// the software half of bench/cc_contention. Shared-everything: all threads
// draw accounts from one pool, with an optional hotspot that concentrates
// a fraction of the traffic on the first few accounts.
//
// The driver retries each transaction until it commits (closed-loop, like
// workloads.cc), tracks the money-supply delta of every committed
// transaction, and can verify the SmallBank conservation invariant
// afterwards — a scheme that permits a lost update or dirty read fails it.
#ifndef BIONICDB_BASELINE_CC_WORKLOADS_H_
#define BIONICDB_BASELINE_CC_WORKLOADS_H_

#include <atomic>
#include <cstdint>

#include "baseline/cc_scheme.h"
#include "baseline/workloads.h"
#include "common/random.h"

namespace bionicdb::baseline {

struct CcSmallBankOptions {
  uint32_t accounts = 20'000;
  uint64_t initial_balance = 10'000;
  /// Probability that a transaction draws its account(s) from the hotspot
  /// (the first `hotspot_accounts` ids).
  double hotspot_fraction = 0.0;
  uint32_t hotspot_accounts = 100;
  // Profile mix weights (same defaults as workload/smallbank.h).
  uint32_t mix_balance = 15;
  uint32_t mix_deposit = 25;
  uint32_t mix_transact = 25;
  uint32_t mix_amalgamate = 10;
  uint32_t mix_write_check = 25;
};

class CcSmallBank {
 public:
  CcSmallBank(CcDb* db, const CcSmallBankOptions& options);

  /// Creates savings/checking and loads every account at initial_balance.
  void Setup();

  /// Runs the profile mix; every transaction retries until committed.
  /// result.aborted counts the failed attempts.
  BaselineResult RunMix(uint32_t threads, uint64_t txns_per_thread,
                       uint64_t seed = 1);

  /// Sum of all committed balances (outside any transaction; call when no
  /// transactions are running).
  uint64_t TotalAssets();

  /// Conservation invariant: TotalAssets == initial + committed deltas
  /// (mod 2^64).
  bool VerifyConservation();

  uint32_t savings() const { return savings_; }
  uint32_t checking() const { return checking_; }

 private:
  /// One logical transaction: profile + inputs, fixed across retries.
  struct TxnSpec {
    uint32_t type;  // 0 balance, 1 deposit, 2 transact, 3 amalgamate, 4 wc
    uint64_t a0 = 0;
    uint64_t a1 = 0;
    uint64_t amount = 0;
  };

  TxnSpec MakeSpec(Rng* rng);
  /// Runs one attempt; true = committed (delta_sum_ updated).
  bool Attempt(const TxnSpec& spec);

  CcDb* db_;
  CcSmallBankOptions options_;
  uint32_t savings_ = 0;
  uint32_t checking_ = 0;
  uint64_t initial_total_ = 0;
  std::atomic<uint64_t> delta_sum_{0};
};

}  // namespace bionicdb::baseline

#endif  // BIONICDB_BASELINE_CC_WORKLOADS_H_
