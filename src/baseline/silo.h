// The Silo-style software OLTP engine (the paper's comparison system).
//
// Reproduces the essentials of Silo [Tu et al., SOSP'13]: optimistic
// concurrency control with epoch-based TIDs and the three-phase commit —
// (1) lock the write set in address order, (2) read the global epoch and
// validate the read set (TID unchanged, not locked by others), (3) install
// writes with a fresh TID greater than everything observed. Shared-
// everything: any thread may touch any record; indexes are fully
// concurrent. Inserts are eager with absent-marked records, finalized or
// abandoned at commit/abort.
//
// Simplifications relative to full Silo, all irrelevant to the paper's
// experiments: no physical deletion or garbage collection, scans validate
// leaf versions but not full phantom protection (all scanned workloads are
// read-only), and durable logging is out of scope (the paper measures both
// systems without logging).
#ifndef BIONICDB_BASELINE_SILO_H_
#define BIONICDB_BASELINE_SILO_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baseline/hash_index.h"
#include "baseline/olc_btree.h"
#include "baseline/record.h"
#include "baseline/sw_skiplist.h"

namespace bionicdb::baseline {

enum class SiloIndexKind : uint8_t {
  kHash,      // chaining hash (point-only tables)
  kBTree,     // OLC B+tree — the Masstree stand-in
  kSkiplist,  // software skiplist comparator
};

class SiloDb {
 public:
  struct TableDef {
    std::string name;
    SiloIndexKind index = SiloIndexKind::kBTree;
    uint32_t payload_len = 8;
    uint64_t expected_records = 1 << 20;  // hash sizing hint
  };

  /// Returns the new table's id (dense, starting at 0).
  uint32_t CreateTable(const TableDef& def);

  /// Bulk load (single-threaded setup path): inserts a committed record.
  Record* Load(uint32_t table, uint64_t key, const void* payload);

  Record* Find(uint32_t table, uint64_t key) const;

  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  void AdvanceEpoch() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

  Arena& arena() { return arena_; }
  uint32_t payload_len(uint32_t table) const {
    return tables_[table]->def.payload_len;
  }

 private:
  friend class SiloTxn;

  struct Table {
    TableDef def;
    std::unique_ptr<HashIndex> hash;
    std::unique_ptr<OlcBTree> btree;
    std::unique_ptr<SwSkiplist> skiplist;
  };

  Table* table(uint32_t id) const { return tables_[id].get(); }

  Arena arena_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::atomic<uint64_t> epoch_{1};
};

/// One transaction attempt. Not reusable after Commit/Abort.
class SiloTxn {
 public:
  explicit SiloTxn(SiloDb* db) : db_(db) {}

  /// Index lookup; nullptr when missing.
  Record* Get(uint32_t table, uint64_t key) const;

  /// Optimistic consistent read into `out` (payload_len bytes); records the
  /// observed TID in the read set. False when the record is absent
  /// (uncommitted insert or logically deleted).
  bool Read(Record* record, void* out);

  /// Buffers a full-payload overwrite of `record`.
  void Write(uint32_t table, Record* record, const void* value);

  /// Eagerly inserts an absent record (payload installed at commit).
  /// Returns nullptr when the key already exists.
  Record* Insert(uint32_t table, uint64_t key, const void* value);

  /// Read-only range scan over a btree/skiplist table: visits up to `count`
  /// committed records with key >= start. Returns records visited.
  uint32_t Scan(uint32_t table, uint64_t start, uint32_t count,
                const std::function<bool(uint64_t, const uint8_t*)>& fn);

  /// Silo's three-phase commit. False = validation failure (caller should
  /// retry the whole transaction); the write set is rolled back.
  bool Commit();

  /// Abandons buffered writes (inserted records stay absent forever).
  void Abort() { aborted_ = true; }

  uint64_t committed_tid() const { return committed_tid_; }

 private:
  struct ReadEntry {
    Record* record;
    uint64_t observed_tid;
  };
  struct WriteEntry {
    uint32_t table;
    Record* record;
    std::vector<uint8_t> value;
    bool is_insert;
  };

  bool InWriteSet(const Record* r) const;

  SiloDb* db_;
  std::vector<ReadEntry> read_set_;
  std::vector<WriteEntry> write_set_;
  uint64_t committed_tid_ = 0;
  bool aborted_ = false;
};

}  // namespace bionicdb::baseline

#endif  // BIONICDB_BASELINE_SILO_H_
