#include "cc/write_set.h"

namespace bionicdb::cc {

void ApplyCommit(sim::DramMemory* dram, const WriteSetEntry& entry,
                 db::Timestamp commit_ts) {
  db::TupleAccessor t(dram, entry.tuple_addr);
  t.ClearFlag(db::kFlagDirty);
  t.set_write_ts(commit_ts);
}

void ApplyAbort(sim::DramMemory* dram, const WriteSetEntry& entry) {
  db::TupleAccessor t(dram, entry.tuple_addr);
  switch (entry.kind) {
    case WriteKind::kInsert:
      t.SetFlag(db::kFlagTombstone);
      t.ClearFlag(db::kFlagDirty);
      break;
    case WriteKind::kUpdate:
      t.ClearFlag(db::kFlagDirty);
      break;
    case WriteKind::kRemove:
      t.ClearFlag(db::kFlagTombstone);
      t.ClearFlag(db::kFlagDirty);
      break;
    case WriteKind::kNone:
      break;
  }
}

}  // namespace bionicdb::cc
