// Per-partition pluggable concurrency-control unit for the simulated tier.
//
// One CcUnit instance models the CC metadata block (BRAM graph store /
// version-chain directory) attached to a partition's softcore + index
// coprocessor. The index pipelines call CheckAccess at their terminal step
// instead of the bare T/O CheckVisibility when a unit with a non-default
// mode is configured; the softcore calls the OnTxn* hooks at transaction
// begin / commit-validate / finish. All state is partition-local and only
// touched from the owning island's tick path, so the unit is PDES-safe by
// construction (same rule as the pipelines themselves).
//
// Mode semantics:
//  * kTimestamp — pass-through to cc::CheckVisibility (hooks are no-ops).
//    Pipelines keep their historical fast path and never call the unit, so
//    the default configuration stays bit-identical and allocation-free.
//  * kSgt — online serialization-graph testing. Every access records the
//    dependency edges it induces between in-flight transactions (wr, ww,
//    rw), each addition guarded by an incremental cycle check over the
//    adjacency sets; an access is refused as `sgt/cycle_aborts` only when
//    the edge would close a real cycle. Dirty marks held by a live LOCAL
//    writer are no barrier to data accesses: a dirty flag only RESERVES
//    the tuple — all Stores and Loads of tuple data execute in commit
//    handlers, which the softcore runs in admission (= timestamp) order —
//    so reads and writes past the mark are admitted with ts-oriented
//    edges (commit-ordered admission). Only structural operations
//    (kRemove / tombstoned tuples), which flip state at access time,
//    still reject as `sgt/busy_rejects`; waiting is never an option there
//    because the softcore's batch barrier holds every commit handler —
//    where dirty marks clear — until all logic phases finish. Dirty marks
//    NOT owned by a live local transaction (remote writers, posted header
//    clears still in flight) park on the pipeline's dirty-waiter
//    machinery, which re-checks WaitFutile() at each poll. The graph is
//    pruned wholesale at quiescent points (no live transaction).
//  * kMvcc — timestamp-ordered multi-version reads (MVTO). Writers snapshot
//    the committed pre-image into a db::version chain before marking the
//    tuple dirty; a reader whose timestamp predates the tuple's write_ts is
//    served from the chain (payload_override) instead of aborting. Chain
//    nodes are reclaimed through a low-watermark GC (min live timestamp; at
//    a quiescent point the watermark passes every chained version and the
//    whole directory drains into a size-keyed freelist).
//
// Multisite note: remote operations arrive with a foreign transaction's
// timestamp that was never announced via OnTxnBegin on this partition; such
// accesses deterministically fall back to plain T/O (`foreign_fallback`).
// SGT / MVCC bookkeeping is partition-local by design.
#ifndef BIONICDB_CC_CC_UNIT_H_
#define BIONICDB_CC_CC_UNIT_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "cc/cc_mode.h"
#include "cc/visibility.h"
#include "common/stats.h"
#include "db/tuple.h"
#include "db/types.h"
#include "sim/memory.h"

namespace bionicdb::cc {

class CcUnit {
 public:
  /// Park budget the pipelines use for dirty conflicts when the configured
  /// dirty_wait_cycles is 0 but the CC mode relies on waiting (SGT parks
  /// instead of blindly aborting; timeouts only break pathological stalls).
  static constexpr uint32_t kDefaultDirtyWaitCycles = 1u << 16;

  /// Outcome of a CC-mediated access. `vis` carries the same contract as
  /// CheckVisibility; the extra fields cover the multi-version path.
  struct AccessResult {
    VisibilityResult vis;
    /// MVCC old-version read: payload address to return instead of the
    /// tuple's in-place payload. kNullAddr when the in-place image applies.
    sim::Addr payload_override = sim::kNullAddr;
    /// Extra DRAM bursts (version-chain walks, snapshot copies) the calling
    /// pipeline must charge as posted traffic.
    uint32_t charge_bursts = 0;
  };

  CcUnit(sim::DramMemory* dram, CcMode mode) : dram_(dram), mode_(mode) {}

  CcMode mode() const { return mode_; }

  /// CC check for a matched tuple at timestamp `ts`. Called from the index
  /// pipelines' terminal stages (tick time; may allocate version nodes from
  /// the current partition arena in kMvcc).
  AccessResult CheckAccess(db::TupleAccessor* tuple, db::Timestamp ts,
                           AccessMode access);

  /// True when a transaction parked at `ts` on `tuple`'s dirty mark can no
  /// longer be unblocked by waiting: the mark changed hands while parked
  /// and is now owned by a live LOCAL writer, whose commit — the only
  /// thing that clears it — sits behind the batch barrier this parked
  /// logic-phase access itself holds open. The pipelines poll this and
  /// convert such parks into immediate rejects instead of burning the full
  /// park deadline. Always false outside kSgt (T/O never parks on the
  /// unit's say-so; MVCC serves old versions instead of waiting).
  bool WaitFutile(sim::Addr tuple, db::Timestamp ts) const;

  /// Transaction lifecycle hooks, called by the owning softcore.
  void OnTxnBegin(db::Timestamp ts);
  /// Extra commit-stage cycles charged for CC validation work (SGT walks
  /// its adjacency set at commit; T/O and MVCC validate inline).
  uint32_t OnCommitValidate(db::Timestamp ts);
  void OnTxnFinish(db::Timestamp ts, bool committed);

  void CollectStats(StatsScope scope) const;

  /// Raw scheme counters (sgt/... or mvcc/... keys) for harnesses that
  /// aggregate across partitions without a registry round-trip.
  const CounterSet& counters() const { return counters_; }

 private:
  static constexpr db::Timestamp kNoTxn = ~db::Timestamp{0};

  // --- SGT ---
  struct SgtNode {
    db::Timestamp ts = 0;
    bool finished = false;
    bool aborted = false;
    std::vector<uint32_t> out;        // edges: this txn serializes before
    std::vector<sim::Addr> writes;    // tuples this txn marked dirty
    uint64_t mark = 0;                // DFS visit epoch
  };
  struct SgtTupleMeta {
    db::Timestamp active_writer = kNoTxn;  // live dirty writer, if any
    db::Timestamp last_writer = kNoTxn;    // latest committed graph writer
    std::vector<db::Timestamp> readers;    // readers since last prune
  };

  AccessResult SgtAccess(db::TupleAccessor* tuple, db::Timestamp ts,
                         AccessMode access);
  uint32_t SgtNodeIndex(db::Timestamp ts) const;  // UINT32_MAX when absent
  bool PathExists(uint32_t from, uint32_t to);
  void SgtPrune();

  // --- MVCC ---
  struct MvccChain {
    sim::Addr head = sim::kNullAddr;
    uint32_t length = 0;
    uint64_t footprint = 0;  // per-node byte size (all nodes of one tuple)
  };
  struct MvccSnapshot {
    sim::Addr tuple = sim::kNullAddr;
    sim::Addr node = sim::kNullAddr;
  };
  struct MvccTxn {
    std::vector<MvccSnapshot> snapshots;
  };

  AccessResult MvccAccess(db::TupleAccessor* tuple, db::Timestamp ts,
                          AccessMode access);
  sim::Addr PopFreeVersion(uint64_t footprint);
  void MvccGc(db::Timestamp watermark);

  sim::DramMemory* dram_;
  CcMode mode_;
  CounterSet counters_;

  // SGT state.
  std::vector<SgtNode> nodes_;
  std::unordered_map<db::Timestamp, uint32_t> node_ix_;
  std::unordered_map<uint64_t, SgtTupleMeta> tuple_meta_;
  std::vector<uint32_t> dfs_stack_;
  uint64_t visit_epoch_ = 0;
  uint32_t sgt_active_ = 0;

  // MVCC state. Ordered maps: GC iterates them, and iteration order feeds
  // the freelist (hence future allocation addresses and DRAM channel
  // timing), which must be deterministic across execution modes.
  std::map<db::Timestamp, MvccTxn> mvcc_active_;
  std::map<uint64_t, MvccChain> chains_;
  std::map<uint64_t, std::vector<sim::Addr>> free_versions_;
  std::unordered_map<uint64_t, db::Timestamp> mvcc_writer_;
  double last_watermark_ = 0;
};

}  // namespace bionicdb::cc

#endif  // BIONICDB_CC_CC_UNIT_H_
