#include "cc/cc_unit.h"

#include <algorithm>

#include "db/version.h"

namespace bionicdb::cc {

namespace {

constexpr uint32_t kNoNode = ~uint32_t{0};
/// Bound on wait-for chain walks; chains are short (one entry per parked
/// transaction on this partition).
/// Cap on the commit-validation cycle charge for huge adjacency sets.
constexpr uint32_t kMaxValidateCost = 64;

uint32_t Bursts(uint64_t bytes) { return uint32_t((bytes + 63) / 64); }

}  // namespace

CcUnit::AccessResult CcUnit::CheckAccess(db::TupleAccessor* tuple,
                                         db::Timestamp ts,
                                         AccessMode access) {
  switch (mode_) {
    case CcMode::kSgt:
      return SgtAccess(tuple, ts, access);
    case CcMode::kMvcc:
      return MvccAccess(tuple, ts, access);
    case CcMode::kTimestamp:
      break;
  }
  AccessResult out;
  out.vis = CheckVisibility(tuple, ts, access);
  return out;
}

void CcUnit::OnTxnBegin(db::Timestamp ts) {
  switch (mode_) {
    case CcMode::kTimestamp:
      return;
    case CcMode::kSgt: {
      if (node_ix_.count(ts) != 0) return;  // defensive: ts reuse
      SgtNode node;
      node.ts = ts;
      node_ix_.emplace(ts, uint32_t(nodes_.size()));
      nodes_.push_back(std::move(node));
      ++sgt_active_;
      counters_.Add("sgt/txns");
      return;
    }
    case CcMode::kMvcc:
      mvcc_active_.emplace(ts, MvccTxn{});
      counters_.Add("mvcc/txns");
      return;
  }
}

uint32_t CcUnit::OnCommitValidate(db::Timestamp ts) {
  if (mode_ != CcMode::kSgt) return 0;
  uint32_t ix = SgtNodeIndex(ts);
  if (ix == kNoNode) return 0;
  // Commit-time incremental check: the hardware walks the transaction's
  // adjacency set once more before publishing. All cycles were already
  // refused at access time, so this charges cycles without re-deciding.
  counters_.Add("sgt/commit_validations");
  return 2 + std::min<uint32_t>(uint32_t(nodes_[ix].out.size()),
                                kMaxValidateCost);
}

void CcUnit::OnTxnFinish(db::Timestamp ts, bool committed) {
  switch (mode_) {
    case CcMode::kTimestamp:
      return;
    case CcMode::kSgt: {
      uint32_t ix = SgtNodeIndex(ts);
      if (ix == kNoNode) return;
      SgtNode& node = nodes_[ix];
      if (node.finished) return;
      node.finished = true;
      node.aborted = !committed;
      if (!committed) node.out.clear();  // dead end: cannot sit on a cycle
      for (sim::Addr addr : node.writes) {
        auto mit = tuple_meta_.find(addr);
        if (mit == tuple_meta_.end()) continue;
        if (committed) mit->second.last_writer = ts;
        if (mit->second.active_writer == ts) {
          mit->second.active_writer = kNoTxn;
        }
      }
      if (sgt_active_ > 0) --sgt_active_;
      if (sgt_active_ == 0) SgtPrune();
      return;
    }
    case CcMode::kMvcc: {
      auto it = mvcc_active_.find(ts);
      if (it == mvcc_active_.end()) return;
      if (!committed) {
        // Pop the pre-image duplicates this writer pushed: the in-place
        // committed image is untouched (aborts happen before any Store),
        // so the snapshot only duplicates it.
        for (const MvccSnapshot& s : it->second.snapshots) {
          auto cit = chains_.find(s.tuple);
          if (cit == chains_.end() || cit->second.head != s.node) continue;
          db::VersionAccessor v(dram_, s.node);
          cit->second.head = v.next();
          if (cit->second.length > 0) --cit->second.length;
          free_versions_[cit->second.footprint].push_back(s.node);
          counters_.Add("mvcc/versions_freed");
          counters_.Add("mvcc/snapshots_popped");
        }
      }
      for (const MvccSnapshot& s : it->second.snapshots) {
        auto wit = mvcc_writer_.find(s.tuple);
        if (wit != mvcc_writer_.end() && wit->second == ts) {
          mvcc_writer_.erase(wit);
        }
      }
      mvcc_active_.erase(it);
      if (mvcc_active_.empty()) MvccGc(ts);
      return;
    }
  }
}

void CcUnit::CollectStats(StatsScope scope) const {
  scope.SetGauge("scheme_id", double(uint8_t(mode_)));
  scope.MergeCounterSet(counters_);
  switch (mode_) {
    case CcMode::kTimestamp:
      break;
    case CcMode::kSgt:
      scope.SetCounter("sgt/live_nodes", nodes_.size());
      break;
    case CcMode::kMvcc: {
      uint64_t chained = 0;
      for (const auto& [addr, chain] : chains_) chained += chain.length;
      scope.SetCounter("mvcc/live_versions", chained);
      scope.SetGauge("mvcc/gc_watermark", last_watermark_);
      break;
    }
  }
}

// --- SGT -------------------------------------------------------------------

uint32_t CcUnit::SgtNodeIndex(db::Timestamp ts) const {
  auto it = node_ix_.find(ts);
  return it == node_ix_.end() ? kNoNode : it->second;
}

bool CcUnit::PathExists(uint32_t from, uint32_t to) {
  counters_.Add("sgt/cycle_checks");
  if (from == to) return true;
  ++visit_epoch_;
  dfs_stack_.clear();
  dfs_stack_.push_back(from);
  nodes_[from].mark = visit_epoch_;
  uint64_t visited = 0;
  while (!dfs_stack_.empty()) {
    uint32_t cur = dfs_stack_.back();
    dfs_stack_.pop_back();
    ++visited;
    for (uint32_t next : nodes_[cur].out) {
      if (next == to) {
        counters_.Add("sgt/dfs_visits", visited);
        return true;
      }
      if (nodes_[next].mark != visit_epoch_) {
        nodes_[next].mark = visit_epoch_;
        dfs_stack_.push_back(next);
      }
    }
  }
  counters_.Add("sgt/dfs_visits", visited);
  return false;
}

void CcUnit::SgtPrune() {
  counters_.Add("sgt/prunes");
  counters_.Add("sgt/nodes_pruned", nodes_.size());
  nodes_.clear();
  node_ix_.clear();
  tuple_meta_.clear();
}

bool CcUnit::WaitFutile(sim::Addr tuple, db::Timestamp ts) const {
  if (mode_ != CcMode::kSgt) return false;
  auto it = tuple_meta_.find(tuple);
  if (it == tuple_meta_.end()) return false;
  // Any live LOCAL writer makes further waiting pointless: its mark only
  // clears in its commit handler, behind the batch barrier this parked
  // access itself is holding open (see SgtAccess). A waiter only reaches
  // this state when the mark changed hands while it was parked.
  (void)ts;
  return it->second.active_writer != kNoTxn;
}

CcUnit::AccessResult CcUnit::SgtAccess(db::TupleAccessor* tuple,
                                       db::Timestamp ts, AccessMode access) {
  AccessResult out;
  const uint32_t me = SgtNodeIndex(ts);
  if (me == kNoNode) {
    // Remote transaction (multisite): T/O fallback, deterministically.
    counters_.Add("foreign_fallback");
    out.vis = CheckVisibility(tuple, ts, access);
    return out;
  }
  const sim::Addr addr = tuple->addr();
  const uint8_t flags = tuple->flags();
  SgtTupleMeta& meta = tuple_meta_[addr];

  if (flags & db::kFlagDirty) {
    const db::Timestamp writer = meta.active_writer;
    if (writer == ts) {
      // Own uncommitted mark: re-reads see the in-place image; re-writes
      // only need to extend the flag set.
      if (access == AccessMode::kRemove && !(flags & db::kFlagTombstone)) {
        tuple->SetFlag(db::kFlagTombstone);
        out.vis.header_dirtied = true;
      }
      return out;
    }
    const uint32_t wix =
        writer == kNoTxn ? kNoNode : SgtNodeIndex(writer);
    if (wix == kNoNode) {
      // Dirty mark not owned by a live local transaction: a remote writer
      // (multisite) or a just-finished local one whose posted header clear
      // is still in flight. Both resolve without this partition's commit
      // barrier, so parking on the dirty-waiter machinery pays.
      counters_.Add("sgt/unknown_dirty");
      out.vis.status = isa::CpStatus::kRejected;
      out.vis.dirty_conflict = true;
      return out;
    }
    if (access == AccessMode::kRemove || (flags & db::kFlagTombstone)) {
      // Structural changes don't defer to the commit slot (tombstones flip
      // at access time), so they cannot be commit-ordered past a pending
      // writer — nor can any access once a pending remove tombstoned the
      // tuple. Reject; the block retries with a fresh timestamp. Waiting
      // is not an option: the writer's mark clears in its commit handler,
      // which the softcore's batch barrier holds back until every logic
      // phase — including this parked access — completes.
      counters_.Add("sgt/busy_rejects");
      out.vis.status = isa::CpStatus::kRejected;
      return out;
    }
    // Commit-ordered admission — SGT's actual edge over T/O. A dirty mark
    // only RESERVES the tuple: the pending writer's Store, like this
    // access's own Load/Store, executes in its commit handler, and commit
    // handlers run in timestamp order. Whatever this transaction touches
    // at its own commit slot is therefore exactly the state a
    // timestamp-serial execution would produce, so the access is admitted
    // with a dependency edge (pending writer before me when earlier,
    // after me when later) instead of the blind abort T/O takes. All
    // candidate edges are cycle-checked before any is added so a refusal
    // leaves the graph untouched.
    std::vector<std::pair<uint32_t, uint32_t>> new_edges;
    auto propose = [&](uint32_t other, bool other_first) {
      if (nodes_[other].aborted) return true;
      const uint32_t from = other_first ? other : me;
      const uint32_t to = other_first ? me : other;
      std::vector<uint32_t>& edges = nodes_[from].out;
      if (std::find(edges.begin(), edges.end(), to) != edges.end()) {
        return true;  // already recorded
      }
      if (PathExists(to, from)) return false;  // edge would close a cycle
      new_edges.emplace_back(from, to);
      return true;
    };
    bool acyclic = propose(wix, writer < ts);
    if (acyclic && access != AccessMode::kRead) {
      // rw edges against registered readers, timestamp-oriented for the
      // same commit-slot reason: an earlier reader loads before my store
      // lands, a later one loads after it.
      for (db::Timestamp reader : meta.readers) {
        if (reader == ts || reader == writer) continue;
        const uint32_t rix = SgtNodeIndex(reader);
        if (rix == kNoNode || rix == me) continue;
        if (!(acyclic = propose(rix, reader < ts))) break;
      }
    }
    if (!acyclic) {
      counters_.Add("sgt/cycle_aborts");
      out.vis.status = isa::CpStatus::kRejected;
      return out;
    }
    for (const auto& e : new_edges) {
      nodes_[e.first].out.push_back(e.second);
      counters_.Add("sgt/edges_added");
    }
    if (access == AccessMode::kRead) {
      counters_.Add("sgt/dirty_reads_admitted");
      if (std::find(meta.readers.begin(), meta.readers.end(), ts) ==
          meta.readers.end()) {
        meta.readers.push_back(ts);
      }
      if (tuple->read_ts() < ts) {
        tuple->set_read_ts(ts);
        out.vis.header_dirtied = true;
      }
      return out;
    }
    counters_.Add("sgt/dirty_writes_admitted");
    std::vector<sim::Addr>& writes = nodes_[me].writes;
    if (std::find(writes.begin(), writes.end(), addr) == writes.end()) {
      writes.push_back(addr);
    }
    // Latest-wins ownership: the mark tracks the pending writer with the
    // highest timestamp, so OnTxnFinish hands it down the commit order.
    if (writer < ts) meta.active_writer = ts;
    return out;
  }

  if (flags & db::kFlagTombstone) {
    out.vis.status = isa::CpStatus::kNotFound;
    return out;
  }

  if (access == AccessMode::kRead) {
    // wr dependency: the committed writer of the current image precedes me.
    const uint32_t src =
        meta.last_writer == kNoTxn ? kNoNode : SgtNodeIndex(meta.last_writer);
    if (src != kNoNode && src != me && !nodes_[src].aborted) {
      if (PathExists(me, src)) {
        counters_.Add("sgt/cycle_aborts");
        out.vis.status = isa::CpStatus::kRejected;
        return out;
      }
      std::vector<uint32_t>& edges = nodes_[src].out;
      if (std::find(edges.begin(), edges.end(), me) == edges.end()) {
        edges.push_back(me);
        counters_.Add("sgt/edges_added");
      }
    }
    if (std::find(meta.readers.begin(), meta.readers.end(), ts) ==
        meta.readers.end()) {
      meta.readers.push_back(ts);
    }
    // Bump read_ts as the T/O path would: keeps DRAM header traffic and
    // the multisite fallback's admission rules comparable across modes.
    if (tuple->read_ts() < ts) {
      tuple->set_read_ts(ts);
      out.vis.header_dirtied = true;
    }
    return out;
  }

  // Write admission: ww edge from the committed writer, rw edges from every
  // registered reader. All candidate edges are cycle-checked before any is
  // added so a refused write leaves the graph untouched.
  std::vector<uint32_t> srcs;
  const uint32_t w_src =
      meta.last_writer == kNoTxn ? kNoNode : SgtNodeIndex(meta.last_writer);
  if (w_src != kNoNode && w_src != me && !nodes_[w_src].aborted) {
    srcs.push_back(w_src);
  }
  for (db::Timestamp reader : meta.readers) {
    if (reader == ts) continue;
    const uint32_t r_src = SgtNodeIndex(reader);
    if (r_src == kNoNode || r_src == me || nodes_[r_src].aborted) continue;
    if (std::find(srcs.begin(), srcs.end(), r_src) == srcs.end()) {
      srcs.push_back(r_src);
    }
  }
  for (uint32_t src : srcs) {
    if (PathExists(me, src)) {
      counters_.Add("sgt/cycle_aborts");
      out.vis.status = isa::CpStatus::kRejected;
      return out;
    }
  }
  for (uint32_t src : srcs) {
    std::vector<uint32_t>& edges = nodes_[src].out;
    if (std::find(edges.begin(), edges.end(), me) == edges.end()) {
      edges.push_back(me);
      counters_.Add("sgt/edges_added");
    }
  }
  tuple->SetFlag(db::kFlagDirty);
  if (access == AccessMode::kRemove) tuple->SetFlag(db::kFlagTombstone);
  out.vis.header_dirtied = true;
  meta.active_writer = ts;
  nodes_[me].writes.push_back(addr);
  return out;
}

// --- MVCC ------------------------------------------------------------------

sim::Addr CcUnit::PopFreeVersion(uint64_t footprint) {
  auto it = free_versions_.find(footprint);
  if (it == free_versions_.end() || it->second.empty()) return sim::kNullAddr;
  sim::Addr addr = it->second.back();
  it->second.pop_back();
  counters_.Add("mvcc/versions_reused");
  return addr;
}

void CcUnit::MvccGc(db::Timestamp watermark) {
  // Quiescent point: the low-watermark (min live timestamp) exceeds every
  // committed write, so every chained pre-image is unreachable — drain the
  // whole directory into the freelist.
  counters_.Add("mvcc/gc_runs");
  last_watermark_ = double(watermark);
  uint64_t freed = 0;
  for (auto& [tuple_addr, chain] : chains_) {
    sim::Addr cur = chain.head;
    while (cur != sim::kNullAddr) {
      db::VersionAccessor v(dram_, cur);
      sim::Addr next = v.next();
      free_versions_[chain.footprint].push_back(cur);
      cur = next;
      ++freed;
    }
  }
  chains_.clear();
  counters_.Add("mvcc/versions_freed", freed);
}

CcUnit::AccessResult CcUnit::MvccAccess(db::TupleAccessor* tuple,
                                        db::Timestamp ts, AccessMode access) {
  AccessResult out;
  auto active = mvcc_active_.find(ts);
  if (active == mvcc_active_.end()) {
    counters_.Add("foreign_fallback");
    out.vis = CheckVisibility(tuple, ts, access);
    return out;
  }
  const sim::Addr addr = tuple->addr();
  const uint8_t flags = tuple->flags();
  const bool dirty = (flags & db::kFlagDirty) != 0;
  auto writer_it = mvcc_writer_.find(addr);
  const db::Timestamp writer =
      writer_it == mvcc_writer_.end() ? kNoTxn : writer_it->second;

  if (access == AccessMode::kRead) {
    if (dirty && writer == ts) return out;  // own dirty image, in place
    const db::Timestamp wts = tuple->write_ts();
    if (wts <= ts) {
      if (!dirty) {
        if (flags & db::kFlagTombstone) {
          out.vis.status = isa::CpStatus::kNotFound;
          return out;
        }
      } else if (writer == kNoTxn) {
        // Dirty mark from outside the MVCC bookkeeping (in-flight insert /
        // remote writer): blind parkable rejection, as plain T/O.
        counters_.Add("mvcc/unknown_dirty");
        out.vis.status = isa::CpStatus::kRejected;
        out.vis.dirty_conflict = true;
        return out;
      } else if (flags & db::kFlagTombstone) {
        // Pending remove. Commit handlers run in timestamp order within a
        // batch, so a reader ordered before the remover still loads the
        // intact pre-image in place; a reader ordered after must wait for
        // the remove to resolve (commit -> not-found, abort -> pre-image).
        if (ts > writer) {
          out.vis.status = isa::CpStatus::kRejected;
          out.vis.dirty_conflict = true;
          return out;
        }
        counters_.Add("mvcc/dirty_inplace_reads");
      } else {
        // Pending update: batch timestamp order again makes the in-place
        // image correct for both orderings — a reader before the writer
        // loads before the writer's stores run, a reader after loads after
        // they (or the abort restore) completed.
        counters_.Add("mvcc/dirty_inplace_reads");
      }
      if (tuple->read_ts() < ts) {
        tuple->set_read_ts(ts);
        out.vis.header_dirtied = true;
      }
      return out;
    }
    // wts > ts: the in-place image is too new — serve from the chain.
    auto cit = chains_.find(addr);
    uint32_t hops = 0;
    sim::Addr cur = cit == chains_.end() ? sim::kNullAddr : cit->second.head;
    while (cur != sim::kNullAddr) {
      ++hops;
      db::VersionAccessor v(dram_, cur);
      if (v.write_ts() <= ts) {
        out.payload_override = v.payload_addr();
        out.charge_bursts = hops;  // one header probe per chain hop
        counters_.Add("mvcc/version_reads");
        return out;
      }
      cur = v.next();
    }
    counters_.Add("mvcc/read_misses");
    out.charge_bursts = hops;
    out.vis.status = isa::CpStatus::kRejected;
    return out;
  }

  // Write / remove admission.
  if (dirty) {
    if (writer == ts) {
      if (access == AccessMode::kRemove && !(flags & db::kFlagTombstone)) {
        tuple->SetFlag(db::kFlagTombstone);
        out.vis.header_dirtied = true;
      }
      return out;
    }
    out.vis.status = isa::CpStatus::kRejected;
    out.vis.dirty_conflict = true;
    return out;
  }
  if (flags & db::kFlagTombstone) {
    out.vis.status = isa::CpStatus::kNotFound;
    return out;
  }
  const db::Timestamp wts = tuple->write_ts();
  if (wts > ts || tuple->read_ts() > ts) {
    counters_.Add("mvcc/write_rejects");
    out.vis.status = isa::CpStatus::kRejected;
    return out;
  }
  // Snapshot the committed pre-image into the version chain before dirtying
  // the in-place tuple, so concurrent older readers keep a stable image.
  MvccChain& chain = chains_[addr];
  chain.footprint = db::VersionFootprint(tuple->payload_len());
  const sim::Addr reuse = PopFreeVersion(chain.footprint);
  const sim::Addr node =
      db::SnapshotVersion(dram_, *tuple, chain.head, reuse);
  chain.head = node;
  ++chain.length;
  counters_.Add("mvcc/versions_created");
  out.charge_bursts = 2 * Bursts(chain.footprint);  // copy read + write
  tuple->SetFlag(db::kFlagDirty);
  if (access == AccessMode::kRemove) tuple->SetFlag(db::kFlagTombstone);
  out.vis.header_dirtied = true;
  mvcc_writer_[addr] = ts;
  active->second.snapshots.push_back(MvccSnapshot{addr, node});
  return out;
}

}  // namespace bionicdb::cc
