// Single-version timestamp-ordering concurrency control (paper section 4.7).
//
// BionicDB uses a variant of basic T/O [Bernstein & Goodman 81]:
//  * every transaction carries a hardware begin timestamp;
//  * each tuple stores the latest read and write timestamps;
//  * read permission requires the tuple's write time to be lower than the
//    transaction timestamp; write permission additionally requires a lower
//    read time;
//  * any access to a dirty (uncommitted) tuple is blindly rejected and
//    aborts the transaction;
//  * read sets are not buffered: a re-read denied by a concurrent update
//    aborts to preserve repeatable read — which these rules give for free.
//
// The functions here are the *functional* core the index pipeline stages
// invoke at their terminal steps; the stages charge the DRAM write for the
// header update themselves.
#ifndef BIONICDB_CC_VISIBILITY_H_
#define BIONICDB_CC_VISIBILITY_H_

#include "db/tuple.h"
#include "db/types.h"
#include "isa/instruction.h"

namespace bionicdb::cc {

/// What a DB instruction wants from the tuple it matched.
enum class AccessMode : uint8_t {
  kRead,    // SEARCH / SCAN visibility
  kUpdate,  // UPDATE: mark dirty, in-place update applied by the softcore
  kRemove,  // REMOVE: mark dirty + tombstone
};

/// Outcome of a visibility check.
struct VisibilityResult {
  isa::CpStatus status = isa::CpStatus::kOk;
  /// True when the tuple header was modified (read_ts bump or dirty marks)
  /// and the caller must charge one DRAM write.
  bool header_dirtied = false;
  /// True when the rejection was caused by the tuple's dirty bit (an
  /// uncommitted writer) — the transient conflict class a wait-on-dirty
  /// policy can ride out, unlike timestamp-order violations.
  bool dirty_conflict = false;
};

/// Checks and applies the access at timestamp `ts` on a matched tuple.
///
/// Tombstoned committed tuples are reported kNotFound for every mode (the
/// tuple is logically deleted). Dirty tuples are kRejected. Permission
/// failures are kRejected (the initiating transaction must abort).
VisibilityResult CheckVisibility(db::TupleAccessor* tuple, db::Timestamp ts,
                                 AccessMode mode);

/// Passive visibility used by the scanner: does this tuple exist, committed,
/// for a reader at `ts`? Never modifies the tuple (scan results do not bump
/// read timestamps in BionicDB's scanner; towers inserted after the scan
/// started "are ignored by timestamp-based visibility check", section 4.4.2).
bool ScanVisible(const db::TupleAccessor& tuple, db::Timestamp ts);

}  // namespace bionicdb::cc

#endif  // BIONICDB_CC_VISIBILITY_H_
