// Per-transaction write-set bookkeeping and the commit/abort protocol.
//
// The softcore tracks one entry per successful INSERT/UPDATE/REMOVE in the
// transaction context (BRAM). The COMMIT instruction iterates the set,
// clearing dirty marks and stamping the transaction's begin timestamp as
// the new write time; the ABORT path undoes the index-side marks (payload
// bytes of updated tuples are restored by the user-defined abort handler
// from the UNDO log in the transaction block, per paper sections 4.3/4.7).
#ifndef BIONICDB_CC_WRITE_SET_H_
#define BIONICDB_CC_WRITE_SET_H_

#include <cstdint>
#include <vector>

#include "db/tuple.h"
#include "db/types.h"
#include "sim/memory.h"

namespace bionicdb::cc {

enum class WriteKind : uint8_t {
  kNone = 0,
  kInsert,
  kUpdate,
  kRemove,
};

struct WriteSetEntry {
  sim::Addr tuple_addr = sim::kNullAddr;
  WriteKind kind = WriteKind::kNone;
};

/// Publishes one write at commit: clears the dirty bit and stamps the write
/// timestamp (removals keep their tombstone — the tuple is now logically
/// deleted for everyone).
void ApplyCommit(sim::DramMemory* dram, const WriteSetEntry& entry,
                 db::Timestamp commit_ts);

/// Rolls back one write at abort: inserts become tombstones (the tuple is
/// already chained into the index and cannot be unlinked by the pipeline),
/// removals drop their tombstone, updates only lose the dirty mark.
void ApplyAbort(sim::DramMemory* dram, const WriteSetEntry& entry);

}  // namespace bionicdb::cc

#endif  // BIONICDB_CC_WRITE_SET_H_
