#include "cc/visibility.h"

namespace bionicdb::cc {

VisibilityResult CheckVisibility(db::TupleAccessor* tuple, db::Timestamp ts,
                                 AccessMode mode) {
  VisibilityResult out;
  uint8_t flags = tuple->flags();
  if (flags & db::kFlagDirty) {
    // Blind rejection of any access to an uncommitted tuple.
    out.status = isa::CpStatus::kRejected;
    out.dirty_conflict = true;
    return out;
  }
  if (flags & db::kFlagTombstone) {
    out.status = isa::CpStatus::kNotFound;
    return out;
  }
  const db::Timestamp wts = tuple->write_ts();
  const db::Timestamp rts = tuple->read_ts();
  switch (mode) {
    case AccessMode::kRead:
      if (wts > ts) {
        out.status = isa::CpStatus::kRejected;
        return out;
      }
      if (rts < ts) {
        tuple->set_read_ts(ts);
        out.header_dirtied = true;
      }
      return out;
    case AccessMode::kUpdate:
    case AccessMode::kRemove:
      if (wts > ts || rts > ts) {
        out.status = isa::CpStatus::kRejected;
        return out;
      }
      tuple->SetFlag(db::kFlagDirty);
      if (mode == AccessMode::kRemove) tuple->SetFlag(db::kFlagTombstone);
      out.header_dirtied = true;
      return out;
  }
  out.status = isa::CpStatus::kError;
  return out;
}

bool ScanVisible(const db::TupleAccessor& tuple, db::Timestamp ts) {
  uint8_t flags = tuple.flags();
  if (flags & (db::kFlagDirty | db::kFlagTombstone)) return false;
  return tuple.write_ts() <= ts;
}

}  // namespace bionicdb::cc
