// Concurrency-control scheme selector shared by both tiers.
//
// The simulated softcore tier (src/core + src/index) consults a per-partition
// cc::CcUnit configured with one of these modes; the software baseline tier
// (src/baseline) maps the same taxonomy onto CcSchemeKind. Keeping the enum in
// a leaf header lets EngineOptions and bench flag parsing name a scheme
// without pulling in the CC unit implementation.
#ifndef BIONICDB_CC_CC_MODE_H_
#define BIONICDB_CC_CC_MODE_H_

#include <cstdint>

namespace bionicdb::cc {

enum class CcMode : uint8_t {
  /// Single-version timestamp ordering (paper section 4.7): the legacy
  /// always-on scheme. Dirty accesses are blindly rejected (optionally
  /// parked, see HashPipeline::Config::dirty_wait_cycles).
  kTimestamp,
  /// Online serialization-graph testing: accesses record dependency edges
  /// between in-flight transactions; an access is refused only when adding
  /// its edges would close a cycle, so there are no false-negative aborts.
  kSgt,
  /// Timestamp-ordered multi-version reads (MVTO): writers snapshot the
  /// pre-image into a version chain before going dirty, so readers whose
  /// timestamp predates the latest committed write can still be served from
  /// an older version instead of aborting.
  kMvcc,
};

inline const char* CcModeName(CcMode m) {
  switch (m) {
    case CcMode::kTimestamp: return "to";
    case CcMode::kSgt: return "sgt";
    case CcMode::kMvcc: return "mvcc";
  }
  return "?";
}

}  // namespace bionicdb::cc

#endif  // BIONICDB_CC_CC_MODE_H_
