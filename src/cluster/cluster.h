// Multi-chip cluster topology (DESIGN.md section 14).
//
// A cluster instantiates N chips — each the full existing engine: islands
// of workers with private DRAM lanes — as one sharded BionicDb whose
// worker id space is split into chips of `workers_per_chip`. Two fabric
// tiers connect them:
//
//  * on-chip: the existing 3-cycle crossbar/ring hop;
//  * inter-chip: NIC/PCIe-class links (TimingConfig::interchip_latency_
//    cycles per hop, TimingConfig::interchip_issue_gap_cycles of
//    serialisation per directed chip pair) with queueing and per-link
//    counters.
//
// Transactions that write tuples owned by a foreign chip commit through
// the engine's two-phase distributed commit (Softcore coordinator +
// PartitionWorker participants over PrepareReq/PrepareAck/CommitReq/
// CommitAck envelopes). The wrapper only wires configuration and stats:
// all mechanism lives in the engine, so every simulator mode (serial,
// event-driven, parallel islands) stays bit-identical.
#ifndef BIONICDB_CLUSTER_CLUSTER_H_
#define BIONICDB_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <memory>

#include "core/engine.h"

namespace bionicdb::cluster {

struct ClusterOptions {
  uint32_t n_chips = 1;
  uint32_t workers_per_chip = 4;
  /// Template for the per-chip engine configuration. n_workers, the chip
  /// grouping (cluster.workers_per_node) and the 2PC knobs
  /// (softcore.two_pc.workers_per_chip) are derived from the cluster shape
  /// and overwrite whatever the template holds. With n_chips == 1 no
  /// cluster knob is set at all, so a single-chip cluster is byte-identical
  /// to a plain engine of the same size — the scale-out baseline.
  core::EngineOptions engine;
};

/// A sharded BionicDb: one engine spanning n_chips * workers_per_chip
/// workers, chip boundaries enforced by the inter-chip fabric tier and the
/// distributed-commit configuration.
class ClusterDb {
 public:
  explicit ClusterDb(const ClusterOptions& options);

  core::BionicDb& engine() { return *engine_; }
  const core::BionicDb& engine() const { return *engine_; }

  uint32_t n_chips() const { return options_.n_chips; }
  uint32_t workers_per_chip() const { return options_.workers_per_chip; }
  uint32_t n_workers() const {
    return options_.n_chips * options_.workers_per_chip;
  }
  uint32_t ChipOf(db::WorkerId w) const {
    return w / options_.workers_per_chip;
  }

  /// Committed/aborted transaction counts restricted to one chip's workers.
  uint64_t ChipCommitted(uint32_t chip) const;
  uint64_t ChipAborted(uint32_t chip) const;

  /// Dumps the engine's full statistics tree plus a `cluster/` subtree
  /// (shape, per-chip commit/abort totals) into `registry`.
  void CollectStats(StatsRegistry* registry) const;

 private:
  ClusterOptions options_;
  std::unique_ptr<core::BionicDb> engine_;
};

}  // namespace bionicdb::cluster

#endif  // BIONICDB_CLUSTER_CLUSTER_H_
