#include "cluster/cluster.h"

#include <string>

namespace bionicdb::cluster {

namespace {

core::EngineOptions BuildEngineOptions(const ClusterOptions& options) {
  core::EngineOptions opts = options.engine;
  opts.n_workers = options.n_chips * options.workers_per_chip;
  if (options.n_chips > 1) {
    opts.cluster.workers_per_node = options.workers_per_chip;
    opts.softcore.two_pc.workers_per_chip = options.workers_per_chip;
  } else {
    // Single chip: leave every cluster knob at its plain-engine default so
    // the 1-chip point of a scale-out sweep is the unmodified engine.
    opts.cluster.workers_per_node = 0;
    opts.softcore.two_pc.workers_per_chip = 0;
  }
  return opts;
}

}  // namespace

ClusterDb::ClusterDb(const ClusterOptions& options) : options_(options) {
  engine_ = std::make_unique<core::BionicDb>(BuildEngineOptions(options_));
}

uint64_t ClusterDb::ChipCommitted(uint32_t chip) const {
  uint64_t n = 0;
  for (uint32_t w = 0; w < options_.workers_per_chip; ++w) {
    n += engine_->worker(chip * options_.workers_per_chip + w)
             .stats()
             .committed;
  }
  return n;
}

uint64_t ClusterDb::ChipAborted(uint32_t chip) const {
  uint64_t n = 0;
  for (uint32_t w = 0; w < options_.workers_per_chip; ++w) {
    n += engine_->worker(chip * options_.workers_per_chip + w)
             .stats()
             .aborted;
  }
  return n;
}

void ClusterDb::CollectStats(StatsRegistry* registry) const {
  engine_->CollectStats(registry);
  StatsScope root(registry, "");
  StatsScope cluster = root.Sub("cluster");
  cluster.SetCounter("n_chips", options_.n_chips);
  cluster.SetCounter("workers_per_chip", options_.workers_per_chip);
  StatsScope chips = cluster.Sub("chips");
  for (uint32_t c = 0; c < options_.n_chips; ++c) {
    StatsScope chip = chips.Sub(std::to_string(c));
    chip.SetCounter("committed", ChipCommitted(c));
    chip.SetCounter("aborted", ChipAborted(c));
  }
}

}  // namespace bionicdb::cluster
