#include "db/txn_block.h"

#include "db/tuple.h"

namespace bionicdb::db {

TxnBlock TxnBlock::Allocate(sim::DramMemory* dram, TxnTypeId type,
                            uint64_t data_size) {
  sim::Addr base = dram->Allocate(kTxnBlockHeaderSize + data_size);
  TxnBlock block(dram, base);
  block.set_txn_type(type);
  block.set_state(TxnState::kPending);
  block.set_commit_ts(0);
  return block;
}

void TxnBlock::WriteKeyU64(int64_t offset, uint64_t key) {
  uint8_t buf[8];
  EncodeKeyU64(key, buf);
  WriteBytes(offset, buf, 8);
}

uint64_t TxnBlock::ReadKeyU64(int64_t offset) const {
  uint8_t buf[8];
  ReadBytes(offset, buf, 8);
  return DecodeKeyU64(buf);
}

}  // namespace bionicdb::db
