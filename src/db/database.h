// The partitioned in-DRAM database.
//
// DORA-style partitioning (paper section 3.1): each partition is owned by
// exactly one worker and holds a private instance of every table's index
// (replicated tables hold a full copy in each partition). All structures
// live in the simulated FPGA-side DRAM.
#ifndef BIONICDB_DB_DATABASE_H_
#define BIONICDB_DB_DATABASE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "db/catalogue.h"
#include "db/hash_layout.h"
#include "db/schema.h"
#include "db/skiplist_layout.h"
#include "db/types.h"
#include "sim/memory.h"

namespace bionicdb::db {

class Database {
 public:
  Database(sim::DramMemory* dram, uint32_t n_partitions, uint64_t seed = 42);

  /// Registers the schema in the catalogue and materialises one index
  /// instance per partition.
  Status CreateTable(const TableSchema& schema);

  uint32_t n_partitions() const { return n_partitions_; }
  Catalogue& catalogue() { return catalogue_; }
  const Catalogue& catalogue() const { return catalogue_; }
  sim::DramMemory* dram() const { return dram_; }

  /// Index instance lookups; null when the table uses the other kind.
  HashTableLayout* hash_index(TableId table, PartitionId partition);
  SkiplistLayout* skiplist_index(TableId table, PartitionId partition);
  const HashTableLayout* hash_index(TableId table,
                                    PartitionId partition) const;
  const SkiplistLayout* skiplist_index(TableId table,
                                       PartitionId partition) const;

  /// Bulk-loads one committed tuple, bypassing timing (host-side population,
  /// as the paper does before measurement). For replicated tables the tuple
  /// is loaded into every partition. `write_ts` lets checkpoint restore
  /// preserve original commit timestamps.
  Status Load(TableId table, PartitionId partition, const uint8_t* key,
              uint16_t key_len, const uint8_t* payload, uint32_t payload_len,
              Timestamp write_ts = 1);

  /// Convenience for 8-byte integer keys, big-endian encoded so that byte
  /// order matches numeric order (required for skiplist tables; fine for
  /// hash tables).
  Status LoadU64(TableId table, PartitionId partition, uint64_t key,
                 const void* payload, uint32_t payload_len);

  /// Checkpoint-restore path: loads into exactly one partition even for
  /// replicated tables (the checkpoint already contains one dump per
  /// partition).
  Status LoadOneForRestore(TableId table, PartitionId partition,
                           const uint8_t* key, uint16_t key_len,
                           const uint8_t* payload, uint32_t payload_len,
                           Timestamp write_ts);

  /// Little-endian (native) 8-byte keys, for hash-only tables whose keys
  /// stored procedures compute with MUL/ADD and STORE raw (e.g. TPC-C
  /// order keys derived from next_o_id).
  Status LoadU64Le(TableId table, PartitionId partition, uint64_t key,
                   const void* payload, uint32_t payload_len);

  /// Functional point lookup (test oracle / host verification).
  sim::Addr FindU64(TableId table, PartitionId partition, uint64_t key) const;
  sim::Addr FindU64Le(TableId table, PartitionId partition,
                      uint64_t key) const;

 private:
  struct PartitionIndexes {
    std::unique_ptr<HashTableLayout> hash;
    std::unique_ptr<SkiplistLayout> skiplist;
  };

  Status LoadOne(TableId table, PartitionId partition, const uint8_t* key,
                 uint16_t key_len, const uint8_t* payload,
                 uint32_t payload_len, Timestamp write_ts);

  sim::DramMemory* dram_;
  uint32_t n_partitions_;
  uint64_t seed_;
  Catalogue catalogue_;
  // indexes_[table][partition]
  std::vector<std::vector<PartitionIndexes>> indexes_;
};

}  // namespace bionicdb::db

#endif  // BIONICDB_DB_DATABASE_H_
