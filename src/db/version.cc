#include "db/version.h"

#include <vector>

namespace bionicdb::db {

sim::Addr SnapshotVersion(sim::DramMemory* dram, const TupleAccessor& tuple,
                          sim::Addr next, sim::Addr reuse) {
  const uint32_t payload_len = tuple.payload_len();
  sim::Addr addr = reuse;
  if (addr == sim::kNullAddr) {
    addr = dram->Allocate(VersionFootprint(payload_len));
  }
  VersionAccessor v(dram, addr);
  v.set_write_ts(tuple.write_ts());
  v.set_next(next);
  if (payload_len > 0) {
    std::vector<uint8_t> buf(payload_len);
    dram->ReadBytes(tuple.payload_addr(), buf.data(), payload_len);
    dram->WriteBytes(v.payload_addr(), buf.data(), payload_len);
  }
  return addr;
}

}  // namespace bionicdb::db
