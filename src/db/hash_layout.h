// On-DRAM hash table structure (one instance per partition per table).
//
// Layout: a contiguous bucket array of 8-byte head pointers; collisions are
// chained through the tuples' next links, newest first (the Install stage
// "appends a new tuple to the entry" by prepending it at the head, exactly
// the behaviour Figure 6 depicts).
//
// This class is the *functional* view of the structure: bucket addressing,
// whole-operation insert/search used for bulk loading and as a test oracle.
// The hardware hash pipeline performs the same steps split across stages,
// charging DRAM timing per access.
#ifndef BIONICDB_DB_HASH_LAYOUT_H_
#define BIONICDB_DB_HASH_LAYOUT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "db/tuple.h"
#include "db/types.h"
#include "sim/memory.h"

namespace bionicdb::db {

class HashTableLayout {
 public:
  /// Allocates the bucket array (zero-initialised = empty chains).
  /// `n_buckets` is rounded up to a power of two.
  HashTableLayout(sim::DramMemory* dram, uint32_t n_buckets);

  /// DRAM address of the bucket-head slot for a hash value.
  sim::Addr BucketSlot(uint64_t hash) const {
    return bucket_base_ + 8 * BucketIndex(hash);
  }
  /// Bucket selection: Sdbm's low bits mix the high key bytes poorly
  /// (structured integer keys would land `lo + 63*hi` apart under a
  /// power-of-two mask and chain ~4 deep), so a Fibonacci multiply-shift
  /// finalizer spreads them — a single DSP multiply in hardware, still no
  /// lookup table and no modulo (the paper's stated constraints).
  uint64_t BucketIndex(uint64_t hash) const {
    if (shift_ >= 64) return 0;  // single-bucket table (tests)
    return (hash * 0x9e3779b97f4a7c15ULL) >> shift_;
  }
  uint32_t n_buckets() const { return mask_ + 1; }

  /// Computes the hash the hardware Hash stage would compute (Sdbm).
  static uint64_t HashKey(const uint8_t* key, uint16_t key_len);

  // --- Functional whole operations (bulk load / test oracle) -----------

  /// Allocates a tuple and prepends it to its chain. Returns the address.
  sim::Addr Insert(const uint8_t* key, uint16_t key_len,
                   const uint8_t* payload, uint32_t payload_len,
                   Timestamp write_ts, uint8_t flags = 0);

  /// First chain node with a matching key, or kNullAddr.
  sim::Addr Find(const uint8_t* key, uint16_t key_len) const;

  /// Visits every tuple; `fn` returns false to stop early.
  void ForEach(const std::function<bool(TupleAccessor)>& fn) const;

  /// Length of the chain holding `hash` (diagnostics / Traverse sizing).
  uint32_t ChainLength(uint64_t hash) const;

  sim::DramMemory* dram() const { return dram_; }

 private:
  sim::DramMemory* dram_;
  sim::Addr bucket_base_;
  uint64_t mask_;
  uint32_t shift_;  // 64 - log2(n_buckets)
};

}  // namespace bionicdb::db

#endif  // BIONICDB_DB_HASH_LAYOUT_H_
