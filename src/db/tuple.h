// On-DRAM tuple layout shared by the hash index and the skiplist.
//
// Both index structures embed the tuple in the index node (the paper's hash
// chains link tuples directly and skiplist "towers include a tuple"). The
// first 24 bytes are a common header so that the concurrency-control
// visibility check is identical for both:
//
//   offset  0  write_ts   (8)   latest committed writer timestamp
//   offset  8  read_ts    (8)   latest reader timestamp
//   offset 16  flags      (1)   dirty / tombstone
//   offset 17  height     (1)   skiplist tower height; 0 for hash nodes
//   offset 18  key_len    (2)
//   offset 20  payload_len(4)
//   offset 24  next[]     (8 x n_ptrs)   hash: 1 chain link; skiplist: height
//   ...        key bytes, padded to 8
//   ...        payload bytes
#ifndef BIONICDB_DB_TUPLE_H_
#define BIONICDB_DB_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "db/types.h"
#include "sim/memory.h"

namespace bionicdb::db {

constexpr uint64_t kTupleHeaderSize = 24;

inline uint64_t PadTo8(uint64_t n) { return (n + 7) & ~uint64_t(7); }

/// Typed view over a tuple stored in simulated DRAM. Cheap to construct;
/// every accessor is a direct functional DRAM access (timing for these
/// accesses is charged by whichever pipeline stage performs them).
class TupleAccessor {
 public:
  TupleAccessor(sim::DramMemory* dram, sim::Addr addr)
      : dram_(dram), addr_(addr) {}

  sim::Addr addr() const { return addr_; }
  bool null() const { return addr_ == sim::kNullAddr; }

  Timestamp write_ts() const { return dram_->Read64(addr_ + 0); }
  void set_write_ts(Timestamp ts) { dram_->Write64(addr_ + 0, ts); }

  Timestamp read_ts() const { return dram_->Read64(addr_ + 8); }
  void set_read_ts(Timestamp ts) { dram_->Write64(addr_ + 8, ts); }

  uint8_t flags() const { return dram_->Read8(addr_ + 16); }
  void set_flags(uint8_t f) { dram_->Write8(addr_ + 16, f); }
  bool dirty() const { return flags() & kFlagDirty; }
  bool tombstone() const { return flags() & kFlagTombstone; }
  void SetFlag(uint8_t bit) { set_flags(flags() | bit); }
  void ClearFlag(uint8_t bit) { set_flags(flags() & ~bit); }

  uint8_t height() const { return dram_->Read8(addr_ + 17); }
  uint16_t key_len() const {
    uint16_t v;
    dram_->ReadBytes(addr_ + 18, &v, 2);
    return v;
  }
  uint32_t payload_len() const { return dram_->Read32(addr_ + 20); }

  /// Number of next-pointer slots: 1 for hash nodes, height for towers.
  uint32_t num_links() const {
    uint8_t h = height();
    return h == 0 ? 1 : h;
  }

  sim::Addr next(uint32_t level = 0) const {
    return dram_->Read64(addr_ + kTupleHeaderSize + 8 * level);
  }
  void set_next(uint32_t level, sim::Addr a) {
    dram_->Write64(addr_ + kTupleHeaderSize + 8 * level, a);
  }
  /// DRAM address of the link slot itself (what a pipeline stage reads).
  sim::Addr link_addr(uint32_t level = 0) const {
    return addr_ + kTupleHeaderSize + 8 * level;
  }

  sim::Addr key_addr() const {
    return addr_ + kTupleHeaderSize + 8 * num_links();
  }
  sim::Addr payload_addr() const {
    return key_addr() + PadTo8(key_len());
  }

  std::vector<uint8_t> key_bytes() const;
  std::vector<uint8_t> payload_bytes() const;

  /// Fixed-width 8-byte integer key convenience (little-endian).
  uint64_t key_u64() const;

 private:
  sim::DramMemory* dram_;
  sim::Addr addr_;
};

/// Allocates and initialises a tuple in DRAM. `height` is 0 for a hash
/// node. Links are initialised to null; timestamps/flags to the arguments.
/// Returns the tuple address.
sim::Addr AllocateTuple(sim::DramMemory* dram, uint8_t height,
                        const uint8_t* key, uint16_t key_len,
                        const uint8_t* payload, uint32_t payload_len,
                        Timestamp write_ts, uint8_t flags);

/// Total footprint of a tuple with the given shape.
uint64_t TupleFootprint(uint8_t height, uint16_t key_len,
                        uint32_t payload_len);

/// Lexicographic compare of a probe key against the tuple's stored key
/// (shorter key that is a prefix sorts first). Returns <0, 0, >0.
int CompareKeyToTuple(const sim::DramMemory& dram, const uint8_t* key,
                      uint16_t key_len, const TupleAccessor& tuple);

/// Encodes a uint64 as an 8-byte big-endian key so that lexicographic byte
/// order equals numeric order (required for skiplist range scans).
void EncodeKeyU64(uint64_t v, uint8_t out[8]);
uint64_t DecodeKeyU64(const uint8_t in[8]);

}  // namespace bionicdb::db

#endif  // BIONICDB_DB_TUPLE_H_
