#include "db/database.h"

#include "db/tuple.h"

namespace bionicdb::db {

Database::Database(sim::DramMemory* dram, uint32_t n_partitions,
                   uint64_t seed)
    : dram_(dram), n_partitions_(n_partitions), seed_(seed) {}

Status Database::CreateTable(const TableSchema& schema) {
  BIONICDB_RETURN_IF_ERROR(catalogue_.RegisterTable(schema));
  std::vector<PartitionIndexes> per_partition(n_partitions_);
  for (uint32_t p = 0; p < n_partitions_; ++p) {
    // Each partition's index structures allocate from that partition's
    // arena so its worker island owns every byte it touches at run time.
    sim::DramMemory::PartitionScope scope(p);
    if (schema.index == IndexKind::kHash) {
      per_partition[p].hash =
          std::make_unique<HashTableLayout>(dram_, schema.hash_buckets);
    } else {
      per_partition[p].skiplist = std::make_unique<SkiplistLayout>(
          dram_, seed_ ^ (uint64_t(schema.id) << 32) ^ p);
    }
  }
  indexes_.push_back(std::move(per_partition));
  return Status::Ok();
}

HashTableLayout* Database::hash_index(TableId table, PartitionId partition) {
  if (table >= indexes_.size() || partition >= n_partitions_) return nullptr;
  return indexes_[table][partition].hash.get();
}
SkiplistLayout* Database::skiplist_index(TableId table,
                                         PartitionId partition) {
  if (table >= indexes_.size() || partition >= n_partitions_) return nullptr;
  return indexes_[table][partition].skiplist.get();
}
const HashTableLayout* Database::hash_index(TableId table,
                                            PartitionId partition) const {
  return const_cast<Database*>(this)->hash_index(table, partition);
}
const SkiplistLayout* Database::skiplist_index(TableId table,
                                               PartitionId partition) const {
  return const_cast<Database*>(this)->skiplist_index(table, partition);
}

Status Database::LoadOne(TableId table, PartitionId partition,
                         const uint8_t* key, uint16_t key_len,
                         const uint8_t* payload, uint32_t payload_len,
                         Timestamp write_ts) {
  const TableSchema* schema = catalogue_.FindTable(table);
  if (schema == nullptr) return Status::NotFound("no such table");
  if (partition >= n_partitions_) return Status::OutOfRange("bad partition");
  // Tuples loaded into a partition's index come from that partition's arena.
  sim::DramMemory::PartitionScope scope(partition);
  if (schema->index == IndexKind::kHash) {
    indexes_[table][partition].hash->Insert(key, key_len, payload,
                                            payload_len, write_ts);
  } else {
    indexes_[table][partition].skiplist->Insert(key, key_len, payload,
                                                payload_len, write_ts);
  }
  return Status::Ok();
}

Status Database::LoadOneForRestore(TableId table, PartitionId partition,
                                   const uint8_t* key, uint16_t key_len,
                                   const uint8_t* payload,
                                   uint32_t payload_len, Timestamp write_ts) {
  return LoadOne(table, partition, key, key_len, payload, payload_len,
                 write_ts);
}

Status Database::Load(TableId table, PartitionId partition,
                      const uint8_t* key, uint16_t key_len,
                      const uint8_t* payload, uint32_t payload_len,
                      Timestamp write_ts) {
  const TableSchema* schema = catalogue_.FindTable(table);
  if (schema == nullptr) return Status::NotFound("no such table");
  if (schema->replicated) {
    for (uint32_t p = 0; p < n_partitions_; ++p) {
      BIONICDB_RETURN_IF_ERROR(
          LoadOne(table, p, key, key_len, payload, payload_len, write_ts));
    }
    return Status::Ok();
  }
  return LoadOne(table, partition, key, key_len, payload, payload_len,
                 write_ts);
}

Status Database::LoadU64(TableId table, PartitionId partition, uint64_t key,
                         const void* payload, uint32_t payload_len) {
  uint8_t kbuf[8];
  EncodeKeyU64(key, kbuf);
  return Load(table, partition, kbuf, 8,
              static_cast<const uint8_t*>(payload), payload_len);
}

Status Database::LoadU64Le(TableId table, PartitionId partition, uint64_t key,
                           const void* payload, uint32_t payload_len) {
  return Load(table, partition, reinterpret_cast<const uint8_t*>(&key), 8,
              static_cast<const uint8_t*>(payload), payload_len);
}

sim::Addr Database::FindU64Le(TableId table, PartitionId partition,
                              uint64_t key) const {
  const TableSchema* schema = catalogue_.FindTable(table);
  if (schema == nullptr) return sim::kNullAddr;
  const uint8_t* kbuf = reinterpret_cast<const uint8_t*>(&key);
  if (schema->index == IndexKind::kHash) {
    return hash_index(table, partition)->Find(kbuf, 8);
  }
  return skiplist_index(table, partition)->Find(kbuf, 8);
}

sim::Addr Database::FindU64(TableId table, PartitionId partition,
                            uint64_t key) const {
  uint8_t kbuf[8];
  EncodeKeyU64(key, kbuf);
  const TableSchema* schema = catalogue_.FindTable(table);
  if (schema == nullptr) return sim::kNullAddr;
  if (schema->index == IndexKind::kHash) {
    return hash_index(table, partition)->Find(kbuf, 8);
  }
  return skiplist_index(table, partition)->Find(kbuf, 8);
}

}  // namespace bionicdb::db
