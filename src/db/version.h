// On-DRAM version-chain nodes for the MVCC (MVTO) concurrency-control mode.
//
// A version node freezes the committed image of a tuple's payload at the
// moment a newer writer marks the tuple dirty. Nodes of one tuple form a
// singly-linked chain ordered newest-first by write timestamp:
//
//   offset  0  write_ts (8)   timestamp of the writer that produced this image
//   offset  8  next     (8)   next-older version node, or kNullAddr
//   offset 16  payload bytes  (same payload_len as the owning tuple)
//
// The chain head pointer lives in the partition's cc::CcUnit (the 24-byte
// tuple header has no spare slot and is shared with the plain T/O mode, so
// the layout on the hot path is unchanged when MVCC is off).
#ifndef BIONICDB_DB_VERSION_H_
#define BIONICDB_DB_VERSION_H_

#include <cstdint>

#include "db/tuple.h"
#include "db/types.h"
#include "sim/memory.h"

namespace bionicdb::db {

constexpr uint64_t kVersionHeaderSize = 16;

/// Typed view over a version node in simulated DRAM.
class VersionAccessor {
 public:
  VersionAccessor(sim::DramMemory* dram, sim::Addr addr)
      : dram_(dram), addr_(addr) {}

  sim::Addr addr() const { return addr_; }
  bool null() const { return addr_ == sim::kNullAddr; }

  Timestamp write_ts() const { return dram_->Read64(addr_ + 0); }
  void set_write_ts(Timestamp ts) { dram_->Write64(addr_ + 0, ts); }

  sim::Addr next() const { return dram_->Read64(addr_ + 8); }
  void set_next(sim::Addr a) { dram_->Write64(addr_ + 8, a); }

  sim::Addr payload_addr() const { return addr_ + kVersionHeaderSize; }

 private:
  sim::DramMemory* dram_;
  sim::Addr addr_;
};

/// Total DRAM footprint of a version node for a tuple payload of this size.
inline uint64_t VersionFootprint(uint32_t payload_len) {
  return kVersionHeaderSize + PadTo8(payload_len);
}

/// Snapshots `tuple`'s committed image (payload bytes + write_ts) into a
/// version node and links it in front of `next`. When `reuse` is non-null
/// the node is written in place (GC freelist reuse); otherwise a fresh node
/// is allocated from the caller's partition arena. Returns the node address.
/// Functional only — the caller charges the DRAM read/write traffic.
sim::Addr SnapshotVersion(sim::DramMemory* dram, const TupleAccessor& tuple,
                          sim::Addr next, sim::Addr reuse);

}  // namespace bionicdb::db

#endif  // BIONICDB_DB_VERSION_H_
