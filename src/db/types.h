// Core value types shared across the BionicDB engine.
#ifndef BIONICDB_DB_TYPES_H_
#define BIONICDB_DB_TYPES_H_

#include <cstdint>

namespace bionicdb::db {

/// Hardware timestamp drawn from the global clock at transaction begin.
/// Low bits carry the worker id so timestamps are unique across partitions.
using Timestamp = uint64_t;

using TableId = uint16_t;
using PartitionId = uint32_t;
using WorkerId = uint32_t;
using TxnTypeId = uint32_t;

/// Marks "route to the local partition" in DB instructions.
constexpr int32_t kLocalPartition = -1;

/// Tuple header flag bits.
enum TupleFlags : uint8_t {
  kFlagDirty = 1 << 0,      // uncommitted write in progress
  kFlagTombstone = 1 << 1,  // logically deleted
};

}  // namespace bionicdb::db

#endif  // BIONICDB_DB_TYPES_H_
