#include "db/hash_layout.h"

#include "common/hash.h"

namespace bionicdb::db {

namespace {
uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

HashTableLayout::HashTableLayout(sim::DramMemory* dram, uint32_t n_buckets)
    : dram_(dram) {
  uint32_t n = RoundUpPow2(n_buckets == 0 ? 1 : n_buckets);
  mask_ = n - 1;
  shift_ = 64;
  for (uint32_t v = n; v > 1; v >>= 1) --shift_;
  bucket_base_ = dram_->Allocate(8ull * n);
  for (uint32_t i = 0; i < n; ++i) {
    dram_->Write64(bucket_base_ + 8ull * i, sim::kNullAddr);
  }
}

uint64_t HashTableLayout::HashKey(const uint8_t* key, uint16_t key_len) {
  return SdbmHash(key, key_len);
}

sim::Addr HashTableLayout::Insert(const uint8_t* key, uint16_t key_len,
                                  const uint8_t* payload,
                                  uint32_t payload_len, Timestamp write_ts,
                                  uint8_t flags) {
  sim::Addr tuple = AllocateTuple(dram_, /*height=*/0, key, key_len, payload,
                                  payload_len, write_ts, flags);
  sim::Addr slot = BucketSlot(HashKey(key, key_len));
  sim::Addr old_head = dram_->Read64(slot);
  TupleAccessor(dram_, tuple).set_next(0, old_head);
  dram_->Write64(slot, tuple);
  return tuple;
}

sim::Addr HashTableLayout::Find(const uint8_t* key, uint16_t key_len) const {
  sim::Addr cur = dram_->Read64(BucketSlot(HashKey(key, key_len)));
  while (cur != sim::kNullAddr) {
    TupleAccessor t(dram_, cur);
    if (CompareKeyToTuple(*dram_, key, key_len, t) == 0) return cur;
    cur = t.next(0);
  }
  return sim::kNullAddr;
}

void HashTableLayout::ForEach(
    const std::function<bool(TupleAccessor)>& fn) const {
  for (uint64_t b = 0; b <= mask_; ++b) {
    sim::Addr cur = dram_->Read64(bucket_base_ + 8 * b);
    while (cur != sim::kNullAddr) {
      TupleAccessor t(dram_, cur);
      sim::Addr next = t.next(0);
      if (!fn(t)) return;
      cur = next;
    }
  }
}

uint32_t HashTableLayout::ChainLength(uint64_t hash) const {
  uint32_t n = 0;
  sim::Addr cur = dram_->Read64(BucketSlot(hash));
  while (cur != sim::kNullAddr) {
    ++n;
    cur = TupleAccessor(dram_, cur).next(0);
  }
  return n;
}

}  // namespace bionicdb::db
