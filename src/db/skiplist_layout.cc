#include "db/skiplist_layout.h"

#include <cstring>

namespace bionicdb::db {

SkiplistLayout::SkiplistLayout(sim::DramMemory* dram, uint64_t height_seed)
    : dram_(dram), height_rng_(height_seed) {
  head_ = AllocateTuple(dram_, kSkiplistMaxHeight, /*key=*/nullptr,
                        /*key_len=*/0, /*payload=*/nullptr, /*payload_len=*/0,
                        /*write_ts=*/0, /*flags=*/0);
}

uint8_t SkiplistLayout::NextHeight() {
  uint8_t h = 1;
  while (h < kSkiplistMaxHeight && (height_rng_.Next() & 1)) ++h;
  return h;
}

int SkiplistLayout::CompareProbe(const uint8_t* key, uint16_t key_len,
                                 sim::Addr tower) const {
  TupleAccessor t(dram_, tower);
  // The head has key_len 0; any non-empty probe compares greater.
  return CompareKeyToTuple(*dram_, key, key_len, t);
}

void SkiplistLayout::FindPredecessors(
    const uint8_t* key, uint16_t key_len,
    sim::Addr preds[kSkiplistMaxHeight]) const {
  sim::Addr cur = head_;
  for (int level = kSkiplistMaxHeight - 1; level >= 0; --level) {
    while (true) {
      sim::Addr next = TupleAccessor(dram_, cur).next(level);
      if (next == sim::kNullAddr || CompareProbe(key, key_len, next) <= 0) {
        break;
      }
      cur = next;
    }
    preds[level] = cur;
  }
}

sim::Addr SkiplistLayout::Insert(const uint8_t* key, uint16_t key_len,
                                 const uint8_t* payload, uint32_t payload_len,
                                 Timestamp write_ts, uint8_t flags) {
  sim::Addr preds[kSkiplistMaxHeight];
  FindPredecessors(key, key_len, preds);
  uint8_t height = NextHeight();
  sim::Addr tower = AllocateTuple(dram_, height, key, key_len, payload,
                                  payload_len, write_ts, flags);
  TupleAccessor t(dram_, tower);
  for (uint8_t level = 0; level < height; ++level) {
    TupleAccessor pred(dram_, preds[level]);
    t.set_next(level, pred.next(level));
    pred.set_next(level, tower);
  }
  return tower;
}

sim::Addr SkiplistLayout::LowerBound(const uint8_t* key,
                                     uint16_t key_len) const {
  sim::Addr preds[kSkiplistMaxHeight];
  FindPredecessors(key, key_len, preds);
  return TupleAccessor(dram_, preds[0]).next(0);
}

sim::Addr SkiplistLayout::Find(const uint8_t* key, uint16_t key_len) const {
  sim::Addr cand = LowerBound(key, key_len);
  if (cand == sim::kNullAddr) return sim::kNullAddr;
  if (CompareProbe(key, key_len, cand) != 0) return sim::kNullAddr;
  return cand;
}

void SkiplistLayout::Scan(const uint8_t* key, uint16_t key_len,
                          uint32_t count,
                          const std::function<bool(TupleAccessor)>& fn) const {
  sim::Addr cur = LowerBound(key, key_len);
  uint32_t taken = 0;
  while (cur != sim::kNullAddr && taken < count) {
    TupleAccessor t(dram_, cur);
    if (fn(t)) ++taken;
    cur = t.next(0);
  }
}

void SkiplistLayout::ForEach(
    const std::function<bool(TupleAccessor)>& fn) const {
  sim::Addr cur = TupleAccessor(dram_, head_).next(0);
  while (cur != sim::kNullAddr) {
    TupleAccessor t(dram_, cur);
    sim::Addr next = t.next(0);
    if (!fn(t)) return;
    cur = next;
  }
}

bool SkiplistLayout::CheckInvariants() const {
  // Per-level sorted order and nesting: every tower present at level L must
  // also be present at L-1 (towers are contiguous from level 0 to height-1
  // by construction, so we check order and reachability).
  for (int level = kSkiplistMaxHeight - 1; level >= 0; --level) {
    sim::Addr cur = TupleAccessor(dram_, head_).next(level);
    sim::Addr prev = sim::kNullAddr;
    while (cur != sim::kNullAddr) {
      TupleAccessor t(dram_, cur);
      if (t.height() <= level) return false;  // tower linked above height
      if (prev != sim::kNullAddr) {
        TupleAccessor p(dram_, prev);
        auto pk = p.key_bytes();
        if (CompareKeyToTuple(*dram_, pk.data(), uint16_t(pk.size()), t) > 0) {
          return false;  // out of order
        }
      }
      prev = cur;
      cur = t.next(level);
    }
  }
  // Every tower at level L must be reachable at level 0.
  for (int level = 1; level < kSkiplistMaxHeight; ++level) {
    sim::Addr cur = TupleAccessor(dram_, head_).next(level);
    while (cur != sim::kNullAddr) {
      sim::Addr walk = TupleAccessor(dram_, head_).next(0);
      bool found = false;
      while (walk != sim::kNullAddr) {
        if (walk == cur) {
          found = true;
          break;
        }
        walk = TupleAccessor(dram_, walk).next(0);
      }
      if (!found) return false;
      cur = TupleAccessor(dram_, cur).next(level);
    }
  }
  return true;
}

}  // namespace bionicdb::db
