#include "db/tuple.h"

#include <algorithm>
#include <cstring>

namespace bionicdb::db {

std::vector<uint8_t> TupleAccessor::key_bytes() const {
  std::vector<uint8_t> out(key_len());
  if (!out.empty()) dram_->ReadBytes(key_addr(), out.data(), out.size());
  return out;
}

std::vector<uint8_t> TupleAccessor::payload_bytes() const {
  std::vector<uint8_t> out(payload_len());
  if (!out.empty()) dram_->ReadBytes(payload_addr(), out.data(), out.size());
  return out;
}

uint64_t TupleAccessor::key_u64() const {
  uint8_t buf[8] = {0};
  dram_->ReadBytes(key_addr(), buf, std::min<uint16_t>(key_len(), 8));
  return DecodeKeyU64(buf);
}

uint64_t TupleFootprint(uint8_t height, uint16_t key_len,
                        uint32_t payload_len) {
  uint32_t links = height == 0 ? 1 : height;
  return kTupleHeaderSize + 8ull * links + PadTo8(key_len) + payload_len;
}

sim::Addr AllocateTuple(sim::DramMemory* dram, uint8_t height,
                        const uint8_t* key, uint16_t key_len,
                        const uint8_t* payload, uint32_t payload_len,
                        Timestamp write_ts, uint8_t flags) {
  sim::Addr addr =
      dram->Allocate(TupleFootprint(height, key_len, payload_len));
  dram->Write64(addr + 0, write_ts);
  dram->Write64(addr + 8, 0);  // read_ts
  dram->Write8(addr + 16, flags);
  dram->Write8(addr + 17, height);
  dram->WriteBytes(addr + 18, &key_len, 2);
  dram->Write32(addr + 20, payload_len);
  uint32_t links = height == 0 ? 1 : height;
  for (uint32_t i = 0; i < links; ++i) {
    dram->Write64(addr + kTupleHeaderSize + 8 * i, sim::kNullAddr);
  }
  sim::Addr key_at = addr + kTupleHeaderSize + 8 * links;
  if (key_len > 0) dram->WriteBytes(key_at, key, key_len);
  if (payload_len > 0) {
    dram->WriteBytes(key_at + PadTo8(key_len), payload, payload_len);
  }
  dram->NotifyTupleAllocated(addr);
  return addr;
}

int CompareKeyToTuple(const sim::DramMemory& dram, const uint8_t* key,
                      uint16_t key_len, const TupleAccessor& tuple) {
  const uint16_t tlen = tuple.key_len();
  const sim::Addr taddr = tuple.key_addr();
  uint16_t n = std::min(key_len, tlen);
  uint16_t i = 0;
  while (i < n) {
    // Compare against the tuple key's page span directly: one page lookup
    // per (at most two) spans instead of a timing-free Read8 per byte.
    uint64_t span = 0;
    const uint8_t* tb = dram.ReadSpan(taddr + i, &span);
    const uint16_t chunk = uint16_t(std::min<uint64_t>(span, n - i));
    const int cmp = std::memcmp(key + i, tb, chunk);
    if (cmp != 0) return cmp < 0 ? -1 : 1;
    i = uint16_t(i + chunk);
  }
  if (key_len == tlen) return 0;
  return key_len < tlen ? -1 : 1;
}

void EncodeKeyU64(uint64_t v, uint8_t out[8]) {
  for (int i = 0; i < 8; ++i) out[i] = uint8_t(v >> (8 * (7 - i)));
}

uint64_t DecodeKeyU64(const uint8_t in[8]) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | in[i];
  return v;
}

}  // namespace bionicdb::db
