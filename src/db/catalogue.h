// The catalogue: stored procedures and table metadata.
//
// In hardware the catalogue lives in BRAM inside every partition worker
// (paper Fig. 2); clients upload pre-compiled stored procedures and schemas
// before submitting transactions, and updates do not require FPGA
// reconfiguration. Here a single Catalogue object is shared by all workers,
// and reads from it are charged BRAM (zero-stall) timing.
#ifndef BIONICDB_DB_CATALOGUE_H_
#define BIONICDB_DB_CATALOGUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "db/schema.h"
#include "db/types.h"
#include "isa/program.h"

namespace bionicdb::db {

/// Metadata registered with a stored procedure.
struct ProcedureInfo {
  isa::Program program;
  /// Bytes of transaction-block data area an invocation requires.
  uint64_t block_data_size = 0;
};

class Catalogue {
 public:
  /// Registers (or replaces) the stored procedure for a transaction type.
  Status RegisterProcedure(TxnTypeId type, isa::Program program,
                           uint64_t block_data_size);

  const ProcedureInfo* FindProcedure(TxnTypeId type) const;

  /// Registers a table schema; ids must be dense and unique.
  Status RegisterTable(const TableSchema& schema);

  const TableSchema* FindTable(TableId id) const;
  const std::vector<TableSchema>& tables() const { return tables_; }

 private:
  std::map<TxnTypeId, ProcedureInfo> procedures_;
  std::vector<TableSchema> tables_;
};

}  // namespace bionicdb::db

#endif  // BIONICDB_DB_CATALOGUE_H_
