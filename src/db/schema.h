// Table schemas and index kinds.
#ifndef BIONICDB_DB_SCHEMA_H_
#define BIONICDB_DB_SCHEMA_H_

#include <cstdint>
#include <string>

#include "db/types.h"

namespace bionicdb::db {

/// Which hardware index serves a table: the hash pipeline handles point
/// accesses (INSERT/SEARCH/UPDATE/REMOVE); the skiplist additionally
/// handles SCAN (paper section 4.4).
enum class IndexKind : uint8_t {
  kHash,
  kSkiplist,
};

struct TableSchema {
  TableId id = 0;
  std::string name;
  IndexKind index = IndexKind::kHash;
  uint16_t key_len = 8;       // default fixed-width 8-byte keys
  uint32_t payload_len = 8;   // fixed payload size per table
  /// True when the table is replicated read-only in every partition
  /// (the paper replicates TPC-C's Item table).
  bool replicated = false;
  /// Hash tables are sized as `hash_buckets_per_partition` entries.
  uint32_t hash_buckets = 1 << 16;
};

}  // namespace bionicdb::db

#endif  // BIONICDB_DB_SCHEMA_H_
