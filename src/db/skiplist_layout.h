// On-DRAM skiplist structure (one instance per partition per table).
//
// A Pugh skiplist whose towers embed the tuple (paper section 4.4.2). The
// head tower has the maximum height and an empty key, which sorts before
// every real key under lexicographic comparison. Tower heights follow the
// classic geometric distribution drawn from a deterministic per-index RNG,
// so simulations replay identically.
//
// Like HashTableLayout, this is the functional structure view: bulk-load
// insert, exact find, lower-bound and scan used by the host loader and as
// the oracle for pipeline tests. The hardware skiplist pipeline performs
// the same traversal split across level-range stages.
#ifndef BIONICDB_DB_SKIPLIST_LAYOUT_H_
#define BIONICDB_DB_SKIPLIST_LAYOUT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.h"
#include "db/tuple.h"
#include "db/types.h"
#include "sim/memory.h"

namespace bionicdb::db {

/// Maximum tower height (paper section 5.5 sets it to 20).
constexpr uint8_t kSkiplistMaxHeight = 20;

class SkiplistLayout {
 public:
  SkiplistLayout(sim::DramMemory* dram, uint64_t height_seed);

  sim::Addr head() const { return head_; }
  uint8_t max_height() const { return kSkiplistMaxHeight; }

  /// Geometric(1/2) tower height in [1, kSkiplistMaxHeight]; deterministic.
  uint8_t NextHeight();

  // --- Functional whole operations --------------------------------------

  /// Inserts a tuple; duplicates are allowed and the newer tuple lands
  /// before the older one at the bottom level. Returns the tower address.
  sim::Addr Insert(const uint8_t* key, uint16_t key_len,
                   const uint8_t* payload, uint32_t payload_len,
                   Timestamp write_ts, uint8_t flags = 0);

  /// Exact match, or kNullAddr.
  sim::Addr Find(const uint8_t* key, uint16_t key_len) const;

  /// First tower with key >= probe (scan entry point), or kNullAddr.
  sim::Addr LowerBound(const uint8_t* key, uint16_t key_len) const;

  /// Walks the bottom level from LowerBound(key) visiting up to `count`
  /// towers for which `fn` returns true (fn returning false skips the tower
  /// without consuming the count — this models visibility filtering).
  void Scan(const uint8_t* key, uint16_t key_len, uint32_t count,
            const std::function<bool(TupleAccessor)>& fn) const;

  /// Fills `preds` with the rightmost tower at each level whose key is
  /// strictly less than the probe key (the "insert path"). preds must hold
  /// kSkiplistMaxHeight entries. Used by the pipeline and functionally.
  void FindPredecessors(const uint8_t* key, uint16_t key_len,
                        sim::Addr preds[kSkiplistMaxHeight]) const;

  /// Visits every tower at the bottom level in key order; `fn` returns
  /// false to stop early.
  void ForEach(const std::function<bool(TupleAccessor)>& fn) const;

  /// Structural invariants: per-level sorted order, every tower reachable
  /// at level 0, level memberships nested. Returns false on violation.
  bool CheckInvariants() const;

  sim::DramMemory* dram() const { return dram_; }

 private:
  /// Key of `tower` compared against probe; head compares below everything.
  int CompareProbe(const uint8_t* key, uint16_t key_len,
                   sim::Addr tower) const;

  sim::DramMemory* dram_;
  sim::Addr head_;
  Rng height_rng_;
};

}  // namespace bionicdb::db

#endif  // BIONICDB_DB_SKIPLIST_LAYOUT_H_
