// Transaction block layout (paper Fig. 3).
//
// A transaction block is a contiguous DRAM region the client fills with the
// transaction id and input data; it also provides buffers for result sets,
// intermediate data and UNDO logs. The hardware writes back the commit
// state and timestamp, which is exactly what command-logging durability
// (section 4.8) persists.
//
//   offset  0  txn_type     (4)
//   offset  4  state        (4)   0 pending / 1 committed / 2 aborted
//   offset  8  commit_ts    (8)
//   offset 16  reserved     (8)
//   offset 24  data area          (stored-procedure offsets are relative
//                                  to this point; GP r0 holds its address)
#ifndef BIONICDB_DB_TXN_BLOCK_H_
#define BIONICDB_DB_TXN_BLOCK_H_

#include <cstdint>
#include <vector>

#include "db/types.h"
#include "sim/memory.h"

namespace bionicdb::db {

constexpr uint64_t kTxnBlockHeaderSize = 24;

enum class TxnState : uint32_t {
  kPending = 0,
  kCommitted = 1,
  kAborted = 2,
};

/// Host/hardware view over one transaction block in simulated DRAM.
class TxnBlock {
 public:
  TxnBlock(sim::DramMemory* dram, sim::Addr base) : dram_(dram), base_(base) {}

  /// Allocates a block with `data_size` bytes of data area and resets it.
  static TxnBlock Allocate(sim::DramMemory* dram, TxnTypeId type,
                           uint64_t data_size);

  sim::Addr base() const { return base_; }
  sim::Addr data() const { return base_ + kTxnBlockHeaderSize; }

  TxnTypeId txn_type() const { return dram_->Read32(base_ + 0); }
  void set_txn_type(TxnTypeId t) { dram_->Write32(base_ + 0, t); }

  TxnState state() const { return TxnState(dram_->Read32(base_ + 4)); }
  void set_state(TxnState s) { dram_->Write32(base_ + 4, uint32_t(s)); }

  Timestamp commit_ts() const { return dram_->Read64(base_ + 8); }
  void set_commit_ts(Timestamp ts) { dram_->Write64(base_ + 8, ts); }

  /// Data-area accessors (offsets are stored-procedure offsets).
  uint64_t ReadU64(int64_t offset) const {
    return dram_->Read64(data() + offset);
  }
  void WriteU64(int64_t offset, uint64_t v) {
    dram_->Write64(data() + offset, v);
  }
  void WriteBytes(int64_t offset, const void* src, uint64_t len) {
    dram_->WriteBytes(data() + offset, src, len);
  }
  void ReadBytes(int64_t offset, void* dst, uint64_t len) const {
    dram_->ReadBytes(data() + offset, dst, len);
  }

  /// Writes a big-endian-encoded u64 key at `offset` (the key encoding all
  /// indexes use; see EncodeKeyU64).
  void WriteKeyU64(int64_t offset, uint64_t key);
  uint64_t ReadKeyU64(int64_t offset) const;

 private:
  sim::DramMemory* dram_;
  sim::Addr base_;
};

}  // namespace bionicdb::db

#endif  // BIONICDB_DB_TXN_BLOCK_H_
