#include "db/catalogue.h"

namespace bionicdb::db {

Status Catalogue::RegisterProcedure(TxnTypeId type, isa::Program program,
                                    uint64_t block_data_size) {
  BIONICDB_RETURN_IF_ERROR(program.Validate());
  procedures_[type] = ProcedureInfo{std::move(program), block_data_size};
  return Status::Ok();
}

const ProcedureInfo* Catalogue::FindProcedure(TxnTypeId type) const {
  auto it = procedures_.find(type);
  return it == procedures_.end() ? nullptr : &it->second;
}

Status Catalogue::RegisterTable(const TableSchema& schema) {
  if (schema.id != tables_.size()) {
    return Status::InvalidArgument("table ids must be registered densely");
  }
  tables_.push_back(schema);
  return Status::Ok();
}

const TableSchema* Catalogue::FindTable(TableId id) const {
  if (id >= tables_.size()) return nullptr;
  return &tables_[id];
}

}  // namespace bionicdb::db
