#include "sim/simulator.h"

#include <algorithm>
#include <cassert>

namespace bionicdb::sim {

Simulator::Simulator(const TimingConfig& config)
    : config_(config), dram_(config) {
  // Typical machine: fabric + a handful of workers + fault scheduler.
  components_.reserve(16);
  island_of_.reserve(16);
  component_cycles_.reserve(16);
  scratch_busy_.reserve(16);
}

Simulator::~Simulator() {
  if (!threads_.empty()) {
    shutdown_.store(true, std::memory_order_release);
    for (std::thread& t : threads_) t.join();
  }
}

void Simulator::AddComponent(Component* component) {
  // Flush first: scratch entries only cover components that existed for
  // every sampled tick since the last flush.
  FlushSamples();
  components_.push_back(component);
  island_of_.push_back(kGlobalIsland);
  component_cycles_.emplace_back();
  scratch_busy_.push_back(0);
}

void Simulator::AddComponent(Component* component, uint32_t island) {
  AddComponent(component);
  island_of_.back() = island;
  if (islands_.size() <= island) {
    size_t old = islands_.size();
    islands_.resize(island + 1);
    for (size_t i = old; i < islands_.size(); ++i) {
      islands_[i].id = uint32_t(i);
    }
  }
  islands_[island].comps.push_back(components_.size() - 1);
}

void Simulator::SetEpochFabric(EpochFabric* fabric,
                               Component* fabric_component) {
  epoch_fabric_ = fabric;
  fabric_index_ = SIZE_MAX;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] == fabric_component) {
      fabric_index_ = i;
      break;
    }
  }
  assert(fabric_index_ != SIZE_MAX &&
         "register the fabric with AddComponent before SetEpochFabric");
  min_hop_ = fabric != nullptr ? fabric->MinHopLatency() : 0;
}

void Simulator::TickOnce() {
  const uint64_t now = ++now_;
  dram_.Tick(now);
  ++scratch_ticks_;
  // Hot-loop state as flat arrays (component pointer, owning island, busy
  // scratch), walked with raw pointers so the per-cycle loop reads three
  // parallel arrays instead of chasing vector headers per component.
  Component* const* comps = components_.data();
  const uint32_t* island = island_of_.data();
  uint64_t* busy = scratch_busy_.data();
  const size_t n = components_.size();
  // One partition-context save/restore brackets the whole loop: island
  // components still tick under their partition (so DRAM arena/lane
  // routing is identical between serial and parallel execution;
  // kGlobalIsland == kHostPartition for the rest), but without a
  // PartitionScope construct/destruct per component per cycle.
  const uint32_t saved = DramMemory::PartitionContext();
  bool any_busy = false;
  for (size_t i = 0; i < n; ++i) {
    DramMemory::SetPartitionContext(island[i]);
    comps[i]->Tick(now);
    // Post-tick sample: a component with outstanding work this cycle is
    // charged as busy, otherwise idle (idle = ticks - busy, on flush).
    const bool b = !comps[i]->Idle();
    busy[i] += b ? 1 : 0;
    any_busy |= b;
  }
  DramMemory::SetPartitionContext(saved);
  // Cached quiescence for RunUntilIdle. The per-component samples above are
  // taken mid-loop, so a later tick can make an earlier component busy
  // again (a sender putting a packet on the already-ticked fabric's wire) —
  // but never the reverse: nothing a component does changes state another
  // component's Idle() reads toward idleness. A busy sample therefore
  // proves the machine is still running (skip the re-scan — the hot case),
  // while an all-idle sample must be confirmed with a full post-loop scan.
  all_idle_after_tick_ = !any_busy && AllIdle();
}

void Simulator::FlushSamples() const {
  if (scratch_ticks_ == 0) return;
  for (size_t i = 0; i < component_cycles_.size(); ++i) {
    component_cycles_[i].busy += scratch_busy_[i];
    component_cycles_[i].idle += scratch_ticks_ - scratch_busy_[i];
    scratch_busy_[i] = 0;
  }
  scratch_ticks_ = 0;
}

uint64_t Simulator::NextWakeCycle() const {
  uint64_t wake = dram_.NextWakeCycle(now_);
  for (const Component* c : components_) {
    if (wake <= now_ + 1) return now_ + 1;
    wake = std::min(wake, c->NextWakeCycle(now_));
  }
  // A hint at or before now_ would stall the clock; clamp it forward.
  return std::max(wake, now_ + 1);
}

void Simulator::WarpBefore(uint64_t limit) {
  uint64_t wake = std::min(NextWakeCycle(), limit);
  if (wake <= now_ + 1) return;
  const uint64_t skip = wake - now_ - 1;
  // Bulk busy/idle sample: Idle() is constant across a quiescent span (no
  // block's externally visible state changes), so one post-skip probe
  // stands in for `skip` per-cycle samples.
  scratch_ticks_ += skip;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (!components_[i]->Idle()) scratch_busy_[i] += skip;
    components_[i]->SkipCycles(now_, skip);
  }
  ++warp_stats_.warps;
  warp_stats_.skipped_cycles += skip;
  now_ += skip;
}

template <typename DoneFn>
bool Simulator::RunLoop(DoneFn&& done, uint64_t limit) {
  bool fired = true;
  if (config_.event_driven) {
    while (!done()) {
      if (now_ >= limit) {
        fired = false;
        break;
      }
      WarpBefore(limit);
      TickOnce();
    }
  } else {
    while (!done()) {
      if (now_ >= limit) {
        fired = false;
        break;
      }
      TickOnce();
    }
  }
  FlushSamples();
  return fired;
}

void Simulator::Step(uint64_t cycles) {
  const uint64_t target = now_ + cycles;
  if (ParallelReady()) {
    while (now_ < target) {
      RunEpoch(target, /*allow_quiesce=*/false);
    }
    FlushSamples();
    return;
  }
  if (config_.event_driven) {
    while (now_ < target) {
      WarpBefore(target);
      TickOnce();
    }
  } else {
    for (uint64_t i = 0; i < cycles; ++i) TickOnce();
  }
  FlushSamples();
}

bool Simulator::RunUntil(const std::function<bool()>& done,
                         uint64_t max_cycles) {
  uint64_t limit = (max_cycles == UINT64_MAX) ? UINT64_MAX : now_ + max_cycles;
  return RunLoop(done, limit);
}

bool Simulator::RunUntilIdle(uint64_t max_cycles) {
  uint64_t limit = (max_cycles == UINT64_MAX) ? UINT64_MAX : now_ + max_cycles;
  if (ParallelReady()) {
    for (;;) {
      if (AllIdle()) {
        FlushSamples();
        return true;
      }
      if (now_ >= limit) {
        FlushSamples();
        return false;
      }
      if (RunEpoch(limit, /*allow_quiesce=*/true)) {
        FlushSamples();
        return true;
      }
    }
  }
  // Serial modes: the quiescence predicate between iterations is exactly
  // the all-idle flag TickOnce computed (no state changes between a tick
  // and the next loop top), so the per-cycle path avoids re-scanning every
  // component's virtual Idle() each cycle.
  if (AllIdle()) {
    FlushSamples();
    return true;
  }
  bool fired = true;
  if (config_.event_driven) {
    for (;;) {
      if (now_ >= limit) {
        fired = false;
        break;
      }
      WarpBefore(limit);
      TickOnce();
      if (all_idle_after_tick_) break;
    }
  } else {
    for (;;) {
      if (now_ >= limit) {
        fired = false;
        break;
      }
      TickOnce();
      if (all_idle_after_tick_) break;
    }
  }
  FlushSamples();
  return fired;
}

// --- Parallel island execution -------------------------------------------

bool Simulator::ParallelReady() const {
  return config_.parallel_hosts > 0 && epoch_fabric_ != nullptr &&
         !islands_.empty() && min_hop_ >= 1 &&
         dram_.n_lanes() == islands_.size();
}

bool Simulator::AllIdle() const {
  if (!dram_.Idle()) return false;
  for (Component* c : components_) {
    if (!c->Idle()) return false;
  }
  return true;
}

uint64_t Simulator::EpochEnd(uint64_t from, uint64_t limit) const {
  // Per-tier lookahead (DESIGN.md section 14): island i's first possible
  // action is E_i — its earliest inbound delivery, lane wake or component
  // wake — and nothing it sends from cycle s >= E_i can land before
  // s + MinHopLatencyFrom(i). The epoch may therefore extend to
  //   Tend = min over non-quiescent islands i of (E_i + L_i - 1),
  // which is >= the old global bound min(E) + min(L) - 1: an island whose
  // only peers sit across a slow inter-chip link contributes a wide bound
  // instead of the on-chip minimum clamping the whole cluster.
  if (min_hop_from_.size() != islands_.size()) {
    min_hop_from_.resize(islands_.size());
    for (const Island& isl : islands_) {
      min_hop_from_[isl.id] = epoch_fabric_->MinHopLatencyFrom(isl.id);
    }
    deliver_scratch_.resize(islands_.size());
  }
  epoch_fabric_->NextDeliveryCyclesTo(&deliver_scratch_);
  uint64_t tend = kNeverWakes;
  for (const Island& isl : islands_) {
    uint64_t e = deliver_scratch_[isl.id];
    e = std::min(e, dram_.LaneNextWake(isl.id, from));
    for (size_t ci : isl.comps) {
      e = std::min(e,
                   std::max(components_[ci]->NextWakeCycle(from), from + 1));
    }
    if (e == kNeverWakes) continue;  // quiescent island: it cannot send
    const uint64_t hop = min_hop_from_[isl.id];
    tend = std::min(tend,
                    e > kNeverWakes - hop ? kNeverWakes : e + hop - 1);
  }
  // Fabric-internal events (retransmission deadlines) put unplanned packets
  // on the wire; cap the epoch so they can only fire on its final cycle,
  // delivering strictly after it.
  tend = std::min(tend, epoch_fabric_->NextInternalCycle());
  // Global components mutate shared state (fault windows, freezes, flips).
  // Capping at their wakes parks every global event on an epoch's final
  // cycle, where barrier replay reproduces the serial intra-cycle order.
  for (size_t i = 0; i < components_.size(); ++i) {
    if (island_of_[i] != kGlobalIsland || i == fabric_index_) continue;
    tend = std::min(tend,
                    std::max(components_[i]->NextWakeCycle(from), from + 1));
  }
  tend = std::min(tend, limit);
  if (tend == kNeverWakes) {
    // Nothing schedulable anywhere: advance in bounded chunks so a caller
    // with an unbounded budget still reaches its own exit condition.
    tend = from + (1ull << 20);
  }
  return std::max(tend, from + 1);
}

void Simulator::EnsureThreads() {
  if (pool_width_ != 0) return;
  pool_width_ = uint32_t(std::min<uint64_t>(config_.parallel_hosts,
                                            islands_.size()));
  if (pool_width_ == 0) pool_width_ = 1;
  // Oversubscribed hosts (fewer hardware threads than the pool) get no
  // benefit from spinning — the thread being waited on cannot run until
  // the waiter yields — so fall back to yielding immediately.
  const unsigned hw = std::thread::hardware_concurrency();
  spin_limit_ = (hw == 0 || hw >= pool_width_) ? 1024 : 1;
  threads_.reserve(pool_width_ - 1);
  for (uint32_t k = 1; k < pool_width_; ++k) {
    threads_.emplace_back([this, k] { ThreadMain(k); });
  }
}

void Simulator::ThreadMain(uint32_t thread_index) {
  uint64_t seen = 0;
  for (;;) {
    uint64_t seq;
    uint32_t spins = 0;
    while ((seq = epoch_seq_.load(std::memory_order_acquire)) == seen) {
      if (shutdown_.load(std::memory_order_acquire)) return;
      if (++spins > spin_limit_) {
        std::this_thread::yield();
        spins = 0;
      }
    }
    seen = seq;
    for (size_t i = thread_index; i < islands_.size(); i += pool_width_) {
      RunIslandEpoch(islands_[i], epoch_from_, epoch_to_,
                     /*allow_defer=*/true);
    }
    epoch_pending_.fetch_sub(1, std::memory_order_release);
  }
}

void Simulator::RunIslandEpoch(Island& isl, uint64_t from, uint64_t to,
                               bool allow_defer) {
  DramMemory::PartitionScope scope(isl.id);
  uint64_t now = from;
  while (now < to) {
    if (allow_defer && dram_.LaneIdle(isl.id) &&
        epoch_fabric_->NextStampCycle(isl.id, now) > to) {
      bool idle = true;
      for (size_t ci : isl.comps) {
        if (!components_[ci]->Idle()) {
          idle = false;
          break;
        }
      }
      if (idle) {
        // Fully quiescent: defer the idle tail to the barrier, which knows
        // whether the whole machine stops here (the serial loop exits
        // without sampling past the last active cycle).
        isl.deferred = true;
        isl.tail_start = now;
        return;
      }
    }
    uint64_t wake = dram_.LaneNextWake(isl.id, now);
    wake = std::min(wake, epoch_fabric_->NextStampCycle(isl.id, now));
    for (size_t ci : isl.comps) {
      wake = std::min(wake,
                      std::max(components_[ci]->NextWakeCycle(now), now + 1));
    }
    if (wake > to) {
      // Busy but waiting on a future epoch (e.g. a response still in
      // flight): bulk-account the remainder, mirroring WarpBefore.
      const uint64_t span = to - now;
      for (size_t ci : isl.comps) {
        if (!components_[ci]->Idle()) scratch_busy_[ci] += span;
        components_[ci]->SkipCycles(now, span);
      }
      ++isl.warps;
      isl.skipped += span;
      now = to;
      break;
    }
    if (wake > now + 1) {
      const uint64_t span = wake - now - 1;
      for (size_t ci : isl.comps) {
        if (!components_[ci]->Idle()) scratch_busy_[ci] += span;
        components_[ci]->SkipCycles(now, span);
      }
      ++isl.warps;
      isl.skipped += span;
      now += span;
    }
    ++now;
    // Serial intra-cycle order: DRAM completions, then the fabric's
    // deliveries for this island, then its components.
    dram_.TickLane(isl.id, now);
    epoch_fabric_->DeliverStamps(isl.id, now);
    for (size_t ci : isl.comps) {
      components_[ci]->Tick(now);
      scratch_busy_[ci] += components_[ci]->Idle() ? 0 : 1;
    }
    isl.stop_cycle = now;
  }
}

void Simulator::RunGlobalComponent(size_t idx, uint64_t from, uint64_t to) {
  Component* c = components_[idx];
  uint64_t now = from;
  uint64_t busy = 0;
  while (now < to) {
    const uint64_t wake = std::max(c->NextWakeCycle(now), now + 1);
    if (wake > to) {
      const uint64_t span = to - now;
      if (!c->Idle()) busy += span;
      c->SkipCycles(now, span);
      warp_stats_.skipped_cycles += span;
      break;
    }
    if (wake > now + 1) {
      const uint64_t span = wake - now - 1;
      if (!c->Idle()) busy += span;
      c->SkipCycles(now, span);
      warp_stats_.skipped_cycles += span;
      now += span;
    }
    ++now;
    c->Tick(now);
    busy += c->Idle() ? 0 : 1;
  }
  scratch_busy_[idx] += busy;
}

bool Simulator::RunEpoch(uint64_t limit, bool allow_quiesce) {
  const uint64_t from = now_;
  const uint64_t to = EpochEnd(from, limit);
  if (epoch_observer_) epoch_observer_(from, to);
  for (Island& isl : islands_) {
    isl.deferred = false;
    isl.tail_start = from;
  }
  epoch_fabric_->BeginEpoch(from, to);
  epoch_fabric_->SetEpochMode(true);
  EnsureThreads();
  if (pool_width_ > 1) {
    epoch_from_ = from;
    epoch_to_ = to;
    epoch_pending_.store(pool_width_ - 1, std::memory_order_relaxed);
    epoch_seq_.fetch_add(1, std::memory_order_release);
  }
  for (size_t i = 0; i < islands_.size(); i += pool_width_) {
    RunIslandEpoch(islands_[i], from, to, /*allow_defer=*/true);
  }
  if (pool_width_ > 1) {
    uint32_t spins = 0;
    while (epoch_pending_.load(std::memory_order_acquire) != 0) {
      if (++spins > spin_limit_) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
  epoch_fabric_->SetEpochMode(false);
  epoch_fabric_->EndEpoch(from, to);
  scratch_busy_[fabric_index_] += epoch_fabric_->TakeEpochBusySample();

  // Quiescence: exactly the serial RunUntilIdle predicate. Deferred islands
  // are idle by construction; anything else (fabric in-flight, a busy
  // island, a busy global) keeps the run alive.
  bool fired = false;
  if (allow_quiesce) {
    fired = components_[fabric_index_]->Idle() && dram_.Idle();
    for (const Island& isl : islands_) {
      if (!fired) break;
      if (!isl.deferred) fired = false;
    }
    for (size_t i = 0; fired && i < components_.size(); ++i) {
      if (island_of_[i] == kGlobalIsland && i != fabric_index_ &&
          !components_[i]->Idle()) {
        fired = false;
      }
    }
  }
  uint64_t end = to;
  if (fired) {
    // Truncate at the cycle the serial loop would have stopped ticking:
    // the last real island tick or fabric event.
    uint64_t last_active = from;
    for (const Island& isl : islands_) {
      last_active = std::max(last_active, isl.stop_cycle);
    }
    last_active = std::max(last_active, epoch_fabric_->last_active_cycle());
    end = std::min(std::max(last_active, from), to);
  }
  // Account deferred islands' idle tails up to `end` (re-entering the
  // island loop handles mid-tail attribution boundaries, e.g. a freeze
  // window expiring, exactly as serial skip spans would).
  for (Island& isl : islands_) {
    if (isl.deferred && end > isl.tail_start) {
      RunIslandEpoch(isl, isl.tail_start, end, /*allow_defer=*/false);
    }
  }
  // Global components replay after island work for these cycles, matching
  // the serial order (workers tick before the fault scheduler each cycle;
  // epochs end at global wakes, so a global event only ever fires at
  // `end`, after every island already ticked it).
  for (size_t i = 0; i < components_.size(); ++i) {
    if (island_of_[i] != kGlobalIsland || i == fabric_index_) continue;
    RunGlobalComponent(i, from, end);
  }
  scratch_ticks_ += end - from;
  for (Island& isl : islands_) {
    warp_stats_.warps += isl.warps;
    warp_stats_.skipped_cycles += isl.skipped;
    isl.warps = 0;
    isl.skipped = 0;
  }
  now_ = end;
  return fired;
}

void Simulator::CollectStats(StatsScope scope) const {
  FlushSamples();
  scope.SetCounter("cycles", now_);
  scope.SetGauge("clock_mhz", config_.clock_mhz);
  scope.MergeCounterSet(counters_);
  StatsScope comps = scope.Sub("components");
  for (size_t i = 0; i < components_.size(); ++i) {
    StatsScope c = comps.Sub(components_[i]->name());
    c.SetCounter("busy_cycles", component_cycles_[i].busy);
    c.SetCounter("idle_cycles", component_cycles_[i].idle);
  }
  dram_.CollectStats(scope.Sub("dram"), now_);
}

}  // namespace bionicdb::sim
