#include "sim/simulator.h"

#include <algorithm>

namespace bionicdb::sim {

Simulator::Simulator(const TimingConfig& config)
    : config_(config), dram_(config) {
  // Typical machine: fabric + a handful of workers + fault scheduler.
  components_.reserve(16);
  component_cycles_.reserve(16);
  scratch_busy_.reserve(16);
}

void Simulator::AddComponent(Component* component) {
  // Flush first: scratch entries only cover components that existed for
  // every sampled tick since the last flush.
  FlushSamples();
  components_.push_back(component);
  component_cycles_.emplace_back();
  scratch_busy_.push_back(0);
}

void Simulator::TickOnce() {
  ++now_;
  dram_.Tick(now_);
  ++scratch_ticks_;
  for (size_t i = 0; i < components_.size(); ++i) {
    components_[i]->Tick(now_);
    // Post-tick sample: a component with outstanding work this cycle is
    // charged as busy, otherwise idle (idle = ticks - busy, on flush).
    scratch_busy_[i] += components_[i]->Idle() ? 0 : 1;
  }
}

void Simulator::FlushSamples() const {
  if (scratch_ticks_ == 0) return;
  for (size_t i = 0; i < component_cycles_.size(); ++i) {
    component_cycles_[i].busy += scratch_busy_[i];
    component_cycles_[i].idle += scratch_ticks_ - scratch_busy_[i];
    scratch_busy_[i] = 0;
  }
  scratch_ticks_ = 0;
}

uint64_t Simulator::NextWakeCycle() const {
  uint64_t wake = dram_.NextWakeCycle(now_);
  for (const Component* c : components_) {
    if (wake <= now_ + 1) return now_ + 1;
    wake = std::min(wake, c->NextWakeCycle(now_));
  }
  // A hint at or before now_ would stall the clock; clamp it forward.
  return std::max(wake, now_ + 1);
}

void Simulator::WarpBefore(uint64_t limit) {
  uint64_t wake = std::min(NextWakeCycle(), limit);
  if (wake <= now_ + 1) return;
  const uint64_t skip = wake - now_ - 1;
  // Bulk busy/idle sample: Idle() is constant across a quiescent span (no
  // block's externally visible state changes), so one post-skip probe
  // stands in for `skip` per-cycle samples.
  scratch_ticks_ += skip;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (!components_[i]->Idle()) scratch_busy_[i] += skip;
    components_[i]->SkipCycles(now_, skip);
  }
  ++warp_stats_.warps;
  warp_stats_.skipped_cycles += skip;
  now_ += skip;
}

template <typename DoneFn>
bool Simulator::RunLoop(DoneFn&& done, uint64_t limit) {
  bool fired = true;
  if (config_.event_driven) {
    while (!done()) {
      if (now_ >= limit) {
        fired = false;
        break;
      }
      WarpBefore(limit);
      TickOnce();
    }
  } else {
    while (!done()) {
      if (now_ >= limit) {
        fired = false;
        break;
      }
      TickOnce();
    }
  }
  FlushSamples();
  return fired;
}

void Simulator::Step(uint64_t cycles) {
  const uint64_t target = now_ + cycles;
  if (config_.event_driven) {
    while (now_ < target) {
      WarpBefore(target);
      TickOnce();
    }
  } else {
    for (uint64_t i = 0; i < cycles; ++i) TickOnce();
  }
  FlushSamples();
}

bool Simulator::RunUntil(const std::function<bool()>& done,
                         uint64_t max_cycles) {
  uint64_t limit = (max_cycles == UINT64_MAX) ? UINT64_MAX : now_ + max_cycles;
  return RunLoop(done, limit);
}

bool Simulator::RunUntilIdle(uint64_t max_cycles) {
  uint64_t limit = (max_cycles == UINT64_MAX) ? UINT64_MAX : now_ + max_cycles;
  return RunLoop(
      [this] {
        if (!dram_.Idle()) return false;
        for (Component* c : components_) {
          if (!c->Idle()) return false;
        }
        return true;
      },
      limit);
}

void Simulator::CollectStats(StatsScope scope) const {
  FlushSamples();
  scope.SetCounter("cycles", now_);
  scope.SetGauge("clock_mhz", config_.clock_mhz);
  scope.MergeCounterSet(counters_);
  StatsScope comps = scope.Sub("components");
  for (size_t i = 0; i < components_.size(); ++i) {
    StatsScope c = comps.Sub(components_[i]->name());
    c.SetCounter("busy_cycles", component_cycles_[i].busy);
    c.SetCounter("idle_cycles", component_cycles_[i].idle);
  }
  dram_.CollectStats(scope.Sub("dram"), now_);
}

}  // namespace bionicdb::sim
