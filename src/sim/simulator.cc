#include "sim/simulator.h"

namespace bionicdb::sim {

Simulator::Simulator(const TimingConfig& config)
    : config_(config), dram_(config) {}

void Simulator::AddComponent(Component* component) {
  components_.push_back(component);
  component_cycles_.emplace_back();
}

void Simulator::TickOnce() {
  ++now_;
  dram_.Tick(now_);
  for (size_t i = 0; i < components_.size(); ++i) {
    components_[i]->Tick(now_);
    // Post-tick sample: a component with outstanding work this cycle is
    // charged as busy, otherwise idle.
    if (components_[i]->Idle()) {
      ++component_cycles_[i].idle;
    } else {
      ++component_cycles_[i].busy;
    }
  }
}

void Simulator::Step(uint64_t cycles) {
  for (uint64_t i = 0; i < cycles; ++i) TickOnce();
}

bool Simulator::RunUntil(const std::function<bool()>& done,
                         uint64_t max_cycles) {
  uint64_t limit = (max_cycles == UINT64_MAX) ? UINT64_MAX : now_ + max_cycles;
  while (!done()) {
    if (now_ >= limit) return false;
    TickOnce();
  }
  return true;
}

bool Simulator::RunUntilIdle(uint64_t max_cycles) {
  return RunUntil(
      [this] {
        if (!dram_.Idle()) return false;
        for (Component* c : components_) {
          if (!c->Idle()) return false;
        }
        return true;
      },
      max_cycles);
}

void Simulator::CollectStats(StatsScope scope) const {
  scope.SetCounter("cycles", now_);
  scope.SetGauge("clock_mhz", config_.clock_mhz);
  scope.MergeCounterSet(counters_);
  StatsScope comps = scope.Sub("components");
  for (size_t i = 0; i < components_.size(); ++i) {
    StatsScope c = comps.Sub(components_[i]->name());
    c.SetCounter("busy_cycles", component_cycles_[i].busy);
    c.SetCounter("idle_cycles", component_cycles_[i].idle);
  }
  dram_.CollectStats(scope.Sub("dram"), now_);
}

}  // namespace bionicdb::sim
