#include "sim/simulator.h"

namespace bionicdb::sim {

Simulator::Simulator(const TimingConfig& config)
    : config_(config), dram_(config) {}

void Simulator::AddComponent(Component* component) {
  components_.push_back(component);
}

void Simulator::TickOnce() {
  ++now_;
  dram_.Tick(now_);
  for (Component* c : components_) c->Tick(now_);
}

void Simulator::Step(uint64_t cycles) {
  for (uint64_t i = 0; i < cycles; ++i) TickOnce();
}

bool Simulator::RunUntil(const std::function<bool()>& done,
                         uint64_t max_cycles) {
  uint64_t limit = (max_cycles == UINT64_MAX) ? UINT64_MAX : now_ + max_cycles;
  while (!done()) {
    if (now_ >= limit) return false;
    TickOnce();
  }
  return true;
}

bool Simulator::RunUntilIdle(uint64_t max_cycles) {
  return RunUntil(
      [this] {
        if (!dram_.Idle()) return false;
        for (Component* c : components_) {
          if (!c->Idle()) return false;
        }
        return true;
      },
      max_cycles);
}

}  // namespace bionicdb::sim
