// Base interface for hardware blocks driven by the cycle engine.
#ifndef BIONICDB_SIM_COMPONENT_H_
#define BIONICDB_SIM_COMPONENT_H_

#include <cstdint>
#include <string>

namespace bionicdb::sim {

/// A clocked hardware block. The simulator calls Tick exactly once per
/// simulated cycle, in registration order; all inter-component communication
/// flows through queues, so ordering within a cycle never creates
/// non-determinism visible across runs.
class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// Advances this block by one cycle.
  virtual void Tick(uint64_t cycle) = 0;

  /// True when the block has no outstanding work (used for drain detection).
  virtual bool Idle() const = 0;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

}  // namespace bionicdb::sim

#endif  // BIONICDB_SIM_COMPONENT_H_
