// Base interface for hardware blocks driven by the cycle engine.
#ifndef BIONICDB_SIM_COMPONENT_H_
#define BIONICDB_SIM_COMPONENT_H_

#include <cstdint>
#include <string>

namespace bionicdb::sim {

/// Wake hint meaning "no future cycle is interesting to this block on its
/// own" — it only reacts to other blocks' activity (which produce their own
/// wake points).
inline constexpr uint64_t kNeverWakes = UINT64_MAX;

/// A clocked hardware block. The simulator calls Tick exactly once per
/// simulated cycle, in registration order; all inter-component communication
/// flows through queues, so ordering within a cycle never creates
/// non-determinism visible across runs.
class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// Advances this block by one cycle.
  virtual void Tick(uint64_t cycle) = 0;

  /// True when the block has no outstanding work (used for drain detection).
  virtual bool Idle() const = 0;

  /// Event-driven scheduling hint, queried after Tick(now): the earliest
  /// future cycle at which ticking this block could do anything beyond the
  /// per-cycle accounting that SkipCycles bulk-applies. The contract:
  ///
  ///   * A block may return `w > now + 1` only if Tick(c) for every cycle
  ///     c in (now, w) would leave all externally visible state unchanged,
  ///     EXCEPT for per-cycle counters/telemetry which the block must
  ///     reproduce exactly in SkipCycles. "Externally visible" includes
  ///     DRAM traffic (a retried Issue bumps reject counters, so retry
  ///     states must return now + 1).
  ///   * kNeverWakes means the block is quiescent until some other block
  ///     acts on it; the simulator still wakes it at every other block's
  ///     wake point, so this is safe whenever all self-driven activity is
  ///     exhausted.
  ///   * The default (now + 1) opts out of skipping entirely, so blocks
  ///     that have not been audited remain cycle-exact.
  ///
  /// Hints are recomputed after every real tick, so they may be computed
  /// from post-tick state of blocks that ticked earlier the same cycle.
  virtual uint64_t NextWakeCycle(uint64_t now) const { return now + 1; }

  /// Bulk-applies the per-cycle accounting Tick would have performed for
  /// the skipped cycles now+1 .. now+count (all within this block's
  /// advertised quiescent span). Must leave the block in exactly the state
  /// that `count` real Ticks would have, including stall-attribution
  /// counters and per-tick flags read by enclosing blocks.
  virtual void SkipCycles(uint64_t now, uint64_t count) {
    (void)now;
    (void)count;
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

}  // namespace bionicdb::sim

#endif  // BIONICDB_SIM_COMPONENT_H_
