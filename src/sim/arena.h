// Hot-path allocation primitives for the cycle engine.
//
// The dense-activity simulation regime (every worker busy, little stall
// time) executes millions of ticks per host second, and profiling showed
// the steady-state cost was dominated not by the modelled hardware but by
// simulator bookkeeping: per-op std::vector keys, per-response snapshot
// vectors, and std::deque block churn on every FIFO the pipelines own.
// This header provides the three replacements (DESIGN.md section 15):
//
//  * BumpArena — slab-chained bump allocator for transients whose lifetime
//    is bounded by an explicit Reset (page slabs, per-run scratch). Slabs
//    are retained across Reset, so a warmed arena never touches the heap.
//
//  * InlineVec<T, N> — vector with N elements of inline storage; the
//    common small case (snapshot reads, index keys) never allocates and
//    moves are memcpy-cheap. Spilling to the heap is counted, not
//    forbidden: rare big cases (skiplist tower snapshots) stay correct.
//
//  * RingQueue<T> — power-of-two ring buffer with deque FIFO semantics
//    (push_back/front/pop_front) that grows geometrically and never
//    shrinks, so steady-state traffic recirculates one warm allocation
//    instead of churning deque blocks.
//
// Every heap fallback any of these take funnels through HotAllocProbe, a
// process-wide counter the allocation-audit test (and assert-heavy debug
// runs) read to prove the steady-state serial hot path performs zero heap
// allocations per cycle once warm.
#ifndef BIONICDB_SIM_ARENA_H_
#define BIONICDB_SIM_ARENA_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace bionicdb::sim {

/// Process-wide tally of heap fallbacks taken by the hot-path containers
/// in this header. Relaxed atomics: the counter is a diagnostic (read at
/// steady state by the allocation audit), never a synchronisation point.
class HotAllocProbe {
 public:
  /// Heap allocations (arena slabs, inline-vec spills, ring growth) taken
  /// since process start.
  static uint64_t Count() {
    return count_.load(std::memory_order_relaxed);
  }
  static void Record() { count_.fetch_add(1, std::memory_order_relaxed); }

 private:
  static inline std::atomic<uint64_t> count_{0};
};

/// Slab-chained bump allocator. Alloc is a pointer bump; Reset rewinds to
/// the first slab but keeps every slab allocated, so arenas reach a warm
/// high-water mark and then stop touching the heap. Not thread-safe; each
/// partition/component owns its own.
class BumpArena {
 public:
  explicit BumpArena(size_t slab_bytes = 1 << 20)
      : slab_bytes_(slab_bytes) {}

  /// Returns `size` bytes aligned to `align` (power of two). Requests
  /// larger than the slab size get a dedicated slab.
  void* Alloc(size_t size, size_t align = 8) {
    assert(align != 0 && (align & (align - 1)) == 0);
    for (;;) {
      if (cur_ < slabs_.size()) {
        Slab& s = slabs_[cur_];
        size_t off = (s.used + align - 1) & ~(align - 1);
        if (off + size <= s.bytes.size()) {
          s.used = off + size;
          return s.bytes.data() + off;
        }
        ++cur_;
        continue;
      }
      HotAllocProbe::Record();
      Slab s;
      s.bytes.resize(size > slab_bytes_ ? size : slab_bytes_);
      slabs_.push_back(std::move(s));
    }
  }

  /// Rewinds the arena; every slab is kept for reuse.
  void Reset() {
    for (Slab& s : slabs_) s.used = 0;
    cur_ = 0;
  }

  /// Bytes currently handed out (since the last Reset).
  size_t used_bytes() const {
    size_t total = 0;
    for (const Slab& s : slabs_) total += s.used;
    return total;
  }
  size_t slab_count() const { return slabs_.size(); }

 private:
  struct Slab {
    std::vector<uint8_t> bytes;
    size_t used = 0;
  };

  size_t slab_bytes_;
  std::vector<Slab> slabs_;
  size_t cur_ = 0;
};

/// Small vector with N elements of inline storage, restricted to trivially
/// copyable element types (memory words, key bytes) so moves and growth
/// are raw memcpy. Heap spills are counted via HotAllocProbe.
template <typename T, size_t N>
class InlineVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVec is for raw POD payloads");

 public:
  InlineVec() = default;
  explicit InlineVec(size_t n) { resize(n); }
  ~InlineVec() { delete[] heap_; }

  InlineVec(const InlineVec& o) { Assign(o); }
  InlineVec& operator=(const InlineVec& o) {
    if (this != &o) Assign(o);
    return *this;
  }
  InlineVec(InlineVec&& o) noexcept { Steal(std::move(o)); }
  InlineVec& operator=(InlineVec&& o) noexcept {
    if (this != &o) {
      delete[] heap_;
      heap_ = nullptr;
      Steal(std::move(o));
    }
    return *this;
  }

  void resize(size_t n) {
    if (n > capacity_) Grow(n);
    size_ = n;
  }
  void clear() { size_ = 0; }
  void push_back(const T& v) {
    if (size_ == capacity_) Grow(size_ + 1);
    data()[size_++] = v;
  }

  T* data() { return heap_ != nullptr ? heap_ : inline_; }
  const T* data() const { return heap_ != nullptr ? heap_ : inline_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return data()[i]; }
  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

 private:
  void Assign(const InlineVec& o) {
    resize(o.size_);
    std::memcpy(data(), o.data(), o.size_ * sizeof(T));
  }
  void Steal(InlineVec&& o) noexcept {
    size_ = o.size_;
    if (o.heap_ != nullptr) {
      heap_ = o.heap_;
      capacity_ = o.capacity_;
      o.heap_ = nullptr;
    } else {
      heap_ = nullptr;
      capacity_ = N;
      std::memcpy(inline_, o.inline_, size_ * sizeof(T));
    }
    o.size_ = 0;
    o.capacity_ = N;
  }
  void Grow(size_t need) {
    size_t cap = capacity_;
    while (cap < need) cap *= 2;
    HotAllocProbe::Record();
    T* bigger = new T[cap];
    std::memcpy(bigger, data(), size_ * sizeof(T));
    delete[] heap_;
    heap_ = bigger;
    capacity_ = cap;
  }

  T inline_[N > 0 ? N : 1];
  T* heap_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = N;
};

/// FIFO ring buffer with the std::deque subset the simulator queues use.
/// Capacity is a power of two, grows geometrically (counted via
/// HotAllocProbe) and never shrinks: a warm queue recirculates its one
/// allocation forever. Elements are default-constructed slots assigned on
/// push; a popped slot keeps its heap payload (e.g. a std::vector inside
/// an envelope) alive for reuse by the next assignment, which is exactly
/// the recycling behaviour the hot path wants.
template <typename T>
class RingQueue {
 public:
  /// Forward iterator over the queue in FIFO order (front to back), for
  /// the wire-scan loops that visit every in-flight entry per tick.
  template <bool Const>
  class Iter {
    using Q = std::conditional_t<Const, const RingQueue, RingQueue>;

   public:
    Iter(Q* q, size_t i) : q_(q), i_(i) {}
    auto& operator*() const { return (*q_)[i_]; }
    auto* operator->() const { return &(*q_)[i_]; }
    Iter& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const Iter& o) const { return i_ == o.i_; }
    bool operator!=(const Iter& o) const { return i_ != o.i_; }

   private:
    Q* q_;
    size_t i_;
  };
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;
  iterator begin() { return {this, 0}; }
  iterator end() { return {this, size_}; }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size_}; }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  T& front() { return slots_[head_ & mask_]; }
  const T& front() const { return slots_[head_ & mask_]; }
  T& back() { return slots_[(head_ + size_ - 1) & mask_]; }
  const T& back() const { return slots_[(head_ + size_ - 1) & mask_]; }
  T& operator[](size_t i) { return slots_[(head_ + i) & mask_]; }
  const T& operator[](size_t i) const { return slots_[(head_ + i) & mask_]; }

  void push_back(const T& v) { Slot() = v; }
  void push_back(T&& v) { Slot() = std::move(v); }
  template <typename... Args>
  void emplace_back(Args&&... args) {
    Slot() = T(std::forward<Args>(args)...);
  }
  void pop_front() {
    assert(size_ > 0);
    ++head_;
    --size_;
  }
  void clear() {
    head_ = 0;
    size_ = 0;
  }
  /// Drops the back of the queue down to `n` elements — the tail step of
  /// in-place compaction (shift the keepers forward with operator[], then
  /// truncate), which replaces deque's scan-and-erase without allocating.
  void truncate(size_t n) {
    assert(n <= size_);
    size_ = n;
  }

 private:
  /// Reserves the next tail slot (growing first if full) and returns it.
  T& Slot() {
    if (size_ == slots_.size()) Grow();
    T& s = slots_[(head_ + size_) & mask_];
    ++size_;
    return s;
  }
  void Grow() {
    HotAllocProbe::Record();
    size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<T> bigger(cap);
    for (size_t i = 0; i < size_; ++i) {
      bigger[i] = std::move(slots_[(head_ + i) & mask_]);
    }
    slots_.swap(bigger);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<T> slots_;
  size_t head_ = 0;
  size_t size_ = 0;
  size_t mask_ = 0;
};

}  // namespace bionicdb::sim

#endif  // BIONICDB_SIM_ARENA_H_
