// Timing parameters of the simulated BionicDB hardware.
//
// Defaults reproduce the paper's platform: a Xilinx Virtex-5 LX330 running at
// 125 MHz attached to the Convey HC-2 DDR2 memory subsystem (8 memory
// controllers used, ~10 GB/s), per paper sections 4.1 and 5.2.
#ifndef BIONICDB_SIM_CONFIG_H_
#define BIONICDB_SIM_CONFIG_H_

#include <cstdint>

namespace bionicdb::sim {

struct TimingConfig {
  /// FPGA fabric clock in MHz; throughput numbers are cycles / clock.
  double clock_mhz = 125.0;

  /// Random-access DRAM read/write latency in cycles. The HC-2's DDR2
  /// subsystem behind its crossbar memory interconnect has notoriously high
  /// random-access latency (~760 ns = 95 cycles at 125 MHz); this value
  /// calibrates the simulator so the hash pipeline's peak search rate lands
  /// at the paper's ~7 Mops with 16 in-flight requests.
  uint32_t dram_latency_cycles = 95;

  /// Independent DRAM channels (HC-2 exposes 8 controllers to one chip).
  uint32_t dram_channels = 8;

  /// Outstanding requests a single channel will queue before backpressure.
  uint32_t dram_channel_queue_depth = 16;

  /// Cycles a channel is occupied issuing one request (bandwidth model).
  uint32_t dram_issue_gap_cycles = 1;

  /// Latency of a DRAM access that hits the row already open from the
  /// previous access in the same burst train (sequential-burst cost). The
  /// HC-2 controllers stream sequential DDR2 bursts at close to full
  /// bandwidth once a row is open, so a row-hit access skips the
  /// activate/precharge round trip baked into dram_latency_cycles. Used by
  /// the batched index traversal path (DramMemory::IssueRowHit); per-op
  /// traversal never charges this.
  uint32_t dram_row_hit_latency_cycles = 12;

  /// Row span (bytes) two addresses must share for a follow-up access to
  /// qualify for the row-hit cost. Power of two; 2 KiB matches a DDR2
  /// device row as seen through one controller.
  uint64_t dram_row_bytes = 2048;

  /// One-way hop latency of the on-chip message-passing fabric (24 ns at
  /// 125 MHz = 3 cycles; a request/response pair costs 6 cycles, Table 3).
  uint32_t onchip_hop_cycles = 3;

  /// Softcore context switch: save current txn context + restore next from
  /// the BRAM context table (paper section 4.5).
  uint32_t context_switch_cycles = 10;

  /// Cycles per CPU instruction: IFetch/Decode/Execute/Memory/Writeback with
  /// no pipelining or out-of-order execution (paper section 4.3).
  uint32_t cpu_instruction_cycles = 5;

  /// Cycles to Prepare + Dispatch a DB instruction to the coprocessor.
  uint32_t db_dispatch_cycles = 2;

  /// One-way latency of the inter-chip fabric tier (NIC/PCIe class — a
  /// 2 µs network hop is 250 cycles at 125 MHz). Applies on top of the
  /// on-chip hops at each end when a packet crosses chips; only meaningful
  /// when comm::ClusterConfig partitions the workers into chips.
  uint32_t interchip_latency_cycles = 250;

  /// Cycles an inter-chip link is occupied serialising one packet
  /// (bandwidth model): back-to-back packets on the same directed
  /// chip-pair link queue behind each other at this gap.
  uint32_t interchip_issue_gap_cycles = 4;

  /// Event-driven fast path: when every registered block agrees (via
  /// Component::NextWakeCycle) that the next interesting cycle is now + k,
  /// the simulator warps the clock by k and bulk-charges the skipped cycles
  /// to the same idle/stall buckets per-cycle ticking would have used.
  /// Cycle counts, engine results and stats are bit-identical in both
  /// modes; off by default (cycle-by-cycle ticking).
  bool event_driven = false;

  /// Host-thread-parallel island execution: 0 (default) runs the classic
  /// single-threaded loop; N > 0 distributes the per-partition islands
  /// (worker + its DRAM lane) over up to N host threads, synchronised at
  /// conservative epochs bounded by the comm fabric's minimum hop latency
  /// (the lookahead of the conservative parallel discrete-event scheme;
  /// see DESIGN.md section 11). Results — final clock, outcomes, fault
  /// digests and the entire stats JSON — are bit-identical to the serial
  /// modes. Islands always free-run event-driven inside an epoch, so
  /// `event_driven` is irrelevant when this is nonzero.
  uint32_t parallel_hosts = 0;

  /// Converts a cycle count to seconds at the configured clock.
  double CyclesToSeconds(uint64_t cycles) const {
    return double(cycles) / (clock_mhz * 1e6);
  }

  /// Throughput in operations/second given work completed in `cycles`.
  double Throughput(uint64_t ops, uint64_t cycles) const {
    if (cycles == 0) return 0;
    return double(ops) / CyclesToSeconds(cycles);
  }
};

}  // namespace bionicdb::sim

#endif  // BIONICDB_SIM_CONFIG_H_
