#include "sim/memory.h"

#include <cassert>

namespace bionicdb::sim {

DramMemory::DramMemory(const TimingConfig& config)
    : config_(config), channels_(config.dram_channels) {
  assert(config.dram_channels > 0);
}

Addr DramMemory::Allocate(uint64_t size, uint64_t align) {
  assert(align != 0 && (align & (align - 1)) == 0);
  next_free_ = (next_free_ + align - 1) & ~(align - 1);
  Addr out = next_free_;
  next_free_ += size;
  return out;
}

uint8_t* DramMemory::PageFor(Addr addr) {
  uint64_t page = addr >> kPageBits;
  auto it = pages_.find(page);
  if (it == pages_.end()) {
    auto mem = std::make_unique<uint8_t[]>(kPageSize);
    std::memset(mem.get(), 0, kPageSize);
    it = pages_.emplace(page, std::move(mem)).first;
  }
  return it->second.get();
}

const uint8_t* DramMemory::PageForRead(Addr addr) const {
  // Reads of never-written pages see zeros; materialise lazily via the
  // non-const path to keep the accessor simple.
  return const_cast<DramMemory*>(this)->PageFor(addr);
}

void DramMemory::WriteBytes(Addr addr, const void* src, uint64_t len) {
  const uint8_t* s = static_cast<const uint8_t*>(src);
  while (len > 0) {
    uint64_t off = addr & (kPageSize - 1);
    uint64_t chunk = std::min(len, kPageSize - off);
    std::memcpy(PageFor(addr) + off, s, chunk);
    addr += chunk;
    s += chunk;
    len -= chunk;
  }
}

void DramMemory::ReadBytes(Addr addr, void* dst, uint64_t len) const {
  uint8_t* d = static_cast<uint8_t*>(dst);
  while (len > 0) {
    uint64_t off = addr & (kPageSize - 1);
    uint64_t chunk = std::min(len, kPageSize - off);
    std::memcpy(d, PageForRead(addr) + off, chunk);
    addr += chunk;
    d += chunk;
    len -= chunk;
  }
}

uint64_t DramMemory::Read64(Addr addr) const {
  uint64_t v;
  ReadBytes(addr, &v, 8);
  return v;
}
void DramMemory::Write64(Addr addr, uint64_t value) {
  WriteBytes(addr, &value, 8);
}
uint32_t DramMemory::Read32(Addr addr) const {
  uint32_t v;
  ReadBytes(addr, &v, 4);
  return v;
}
void DramMemory::Write32(Addr addr, uint32_t value) {
  WriteBytes(addr, &value, 4);
}
uint8_t DramMemory::Read8(Addr addr) const {
  uint8_t v;
  ReadBytes(addr, &v, 1);
  return v;
}
void DramMemory::Write8(Addr addr, uint8_t value) {
  WriteBytes(addr, &value, 1);
}

uint32_t DramMemory::ChannelOf(Addr addr) const {
  // Scatter-gather DIMMs interleave at fine (8 B) granularity; spread
  // consecutive words across channels as the HC-2 does.
  return static_cast<uint32_t>((addr >> 3) % channels_.size());
}

DramMemory::Channel* DramMemory::AdmitRequest(uint64_t now, Addr addr,
                                              bool is_write,
                                              uint64_t* start) {
  uint32_t channel = ChannelOf(addr);
  Channel& ch = channels_[channel];
  if (fault_hook_ != nullptr && fault_hook_->ChannelStuck(now, channel)) {
    // A stuck-busy channel refuses admission entirely; requesters see it as
    // prolonged backpressure and keep retrying, which is exactly how a
    // wedged DIMM manifests to the pipelines.
    ++fault_stuck_rejects_;
    ++backpressure_rejects_;
    ++ch.rejects;
    if (is_write) {
      ++write_rejects_;
    } else {
      ++read_rejects_;
    }
    return nullptr;
  }
  if (ch.queued >= config_.dram_channel_queue_depth) {
    ++backpressure_rejects_;
    ++ch.rejects;
    if (is_write) {
      ++write_rejects_;
    } else {
      ++read_rejects_;
    }
    return nullptr;
  }
  *start = std::max(ch.busy_until, now);
  if (fault_hook_ != nullptr) {
    uint64_t extra = fault_hook_->ExtraLatency(now, channel);
    if (extra > 0) {
      *start += extra;
      fault_spike_cycles_ += extra;
    }
  }
  queue_wait_cycles_.Add(double(*start - now));
  ch.busy_until = *start + config_.dram_issue_gap_cycles;
  ch.issue_busy_cycles += config_.dram_issue_gap_cycles;
  ch.queued_sum += ch.queued;
  ++ch.queued;
  ++ch.issued;
  ++in_flight_;
  if (is_write) {
    ++total_writes_;
  } else {
    ++total_reads_;
  }
  return &ch;
}

bool DramMemory::Issue(uint64_t now, Addr addr, bool is_write,
                       MemResponseQueue* sink, uint64_t cookie,
                       uint32_t snapshot_words) {
  uint64_t start = 0;
  if (AdmitRequest(now, addr, is_write, &start) == nullptr) return false;
  uint64_t complete_at = start + config_.dram_latency_cycles;
  pending_.push(Pending{complete_at, seq_++, addr, cookie, is_write,
                        /*apply_write=*/false, /*write_value=*/0,
                        snapshot_words, sink});
  return true;
}

bool DramMemory::IssueWrite64(uint64_t now, Addr addr, uint64_t value,
                              MemResponseQueue* sink, uint64_t cookie) {
  uint64_t start = 0;
  if (AdmitRequest(now, addr, /*is_write=*/true, &start) == nullptr) {
    return false;
  }
  uint64_t complete_at = start + config_.dram_latency_cycles;
  pending_.push(Pending{complete_at, seq_++, addr, cookie, /*is_write=*/true,
                        /*apply_write=*/true, value, /*snapshot_words=*/0,
                        sink});
  return true;
}

void DramMemory::CollectStats(StatsScope scope, uint64_t now) const {
  scope.SetCounter("reads", total_reads_);
  scope.SetCounter("writes", total_writes_);
  scope.SetCounter("backpressure_rejects", backpressure_rejects_);
  scope.SetCounter("read_rejects", read_rejects_);
  scope.SetCounter("write_rejects", write_rejects_);
  scope.SetCounter("allocated_bytes", allocated_bytes());
  scope.SetSummary("queue_wait_cycles", queue_wait_cycles_);
  if (fault_hook_ != nullptr) {
    // Only emitted under fault injection so unfaulted bench reports are
    // byte-identical to pre-fault builds.
    scope.SetCounter("fault_stuck_rejects", fault_stuck_rejects_);
    scope.SetCounter("fault_spike_cycles", fault_spike_cycles_);
  }
  StatsScope chans = scope.Sub("channels");
  for (size_t i = 0; i < channels_.size(); ++i) {
    const Channel& ch = channels_[i];
    StatsScope c = chans.Sub(std::to_string(i));
    c.SetCounter("issued", ch.issued);
    c.SetCounter("rejects", ch.rejects);
    c.SetGauge("issue_utilization",
               now > 0 ? double(ch.issue_busy_cycles) / double(now) : 0);
    c.SetGauge("mean_queue_occupancy",
               ch.issued > 0 ? double(ch.queued_sum) / double(ch.issued) : 0);
  }
}

void DramMemory::Tick(uint64_t now) {
  while (!pending_.empty() && pending_.top().complete_at <= now) {
    const Pending& p = pending_.top();
    channels_[ChannelOf(p.addr)].queued--;
    if (p.apply_write) Write64(p.addr, p.write_value);
    if (p.sink != nullptr) {
      MemResponse resp{p.addr, p.cookie, p.is_write, {}};
      if (!p.is_write && p.snapshot_words > 0) {
        resp.data.resize(p.snapshot_words);
        for (uint32_t i = 0; i < p.snapshot_words; ++i) {
          resp.data[i] = Read64(p.addr + 8ull * i);
        }
      }
      p.sink->push_back(std::move(resp));
    }
    pending_.pop();
    --in_flight_;
  }
}

}  // namespace bionicdb::sim
