#include "sim/memory.h"

#include <atomic>
#include <cassert>
#include <mutex>

namespace bionicdb::sim {

namespace {

std::atomic<uint64_t> next_memory_generation{1};

}  // namespace

thread_local uint32_t DramMemory::tls_partition_ = DramMemory::kHostPartition;
thread_local DramMemory::PageCacheEntry
    DramMemory::tls_page_cache_[DramMemory::kPageCacheSlots];

DramMemory::DramMemory(const TimingConfig& config)
    : config_(config),
      generation_(next_memory_generation.fetch_add(1,
                                                   std::memory_order_relaxed)) {
  assert(config.dram_channels > 0);
  arenas_.resize(1);
  lanes_.resize(1);
  lanes_[0].channels.resize(config.dram_channels);
}

void DramMemory::ConfigurePartitions(uint32_t n) {
  if (n <= 1) return;  // single-partition layout == the classic one
  // Must run before any allocation or traffic: existing addresses would
  // otherwise straddle the new arena map.
  assert(arenas_.size() == 1 && arenas_[0].next_free == arenas_[0].base);
  assert(lanes_[0].in_flight == 0 && lanes_[0].seq == 0);
  partitioned_ = true;
  arenas_.resize(size_t(n) + 1);
  for (uint32_t p = 0; p < n; ++p) {
    Addr base = (Addr(p) + 1) << kArenaShift;
    arenas_[p + 1].base = base;
    arenas_[p + 1].next_free = base;
  }
  lanes_.resize(n);
  for (Lane& l : lanes_) l.channels.resize(config_.dram_channels);
}

Addr DramMemory::Allocate(uint64_t size, uint64_t align) {
  assert(align != 0 && (align & (align - 1)) == 0);
  Arena& arena = CurrentArena();
  arena.next_free = (arena.next_free + align - 1) & ~(align - 1);
  Addr out = arena.next_free;
  arena.next_free += size;
  return out;
}

uint8_t* DramMemory::PageFor(Addr addr) {
  // Page-cache miss path: PagePtr (inline, memory.h) already rejected the
  // thread-local cache entry for this page.
  uint64_t page = addr >> kPageBits;
  uint8_t* ptr = nullptr;
  {
    std::shared_lock<std::shared_mutex> read_lock(pages_mu_);
    auto it = pages_.find(page);
    if (it != pages_.end()) ptr = it->second;
  }
  if (ptr == nullptr) {
    std::unique_lock<std::shared_mutex> write_lock(pages_mu_);
    // Another thread may have materialised the page between the locks;
    // only the first emplace allocates. Arena slabs are zero-initialised
    // and never reset, so fresh pages read as zeros, matching real DRAM.
    auto [it, inserted] = pages_.emplace(page, nullptr);
    if (inserted) {
      it->second =
          static_cast<uint8_t*>(page_arena_.Alloc(kPageSize, /*align=*/64));
    }
    ptr = it->second;
  }
  tls_page_cache_[page % kPageCacheSlots] =
      PageCacheEntry{generation_, page, ptr};
  return ptr;
}

void DramMemory::WriteBytes(Addr addr, const void* src, uint64_t len) {
  const uint8_t* s = static_cast<const uint8_t*>(src);
  while (len > 0) {
    uint64_t off = addr & (kPageSize - 1);
    uint64_t chunk = std::min(len, kPageSize - off);
    std::memcpy(PagePtr(addr) + off, s, chunk);
    addr += chunk;
    s += chunk;
    len -= chunk;
  }
}

void DramMemory::ReadBytes(Addr addr, void* dst, uint64_t len) const {
  uint8_t* d = static_cast<uint8_t*>(dst);
  while (len > 0) {
    uint64_t off = addr & (kPageSize - 1);
    uint64_t chunk = std::min(len, kPageSize - off);
    std::memcpy(d, PagePtr(addr) + off, chunk);
    addr += chunk;
    d += chunk;
    len -= chunk;
  }
}

uint32_t DramMemory::ChannelOf(Addr addr) const {
  // Scatter-gather DIMMs interleave at fine (8 B) granularity; spread
  // consecutive words across the lane's channels as the HC-2 does.
  return static_cast<uint32_t>((addr >> 3) % config_.dram_channels);
}

DramMemory::Channel* DramMemory::AdmitRequest(Lane* lane, uint64_t now,
                                              Addr addr, bool is_write,
                                              uint64_t* start) {
  uint32_t channel = ChannelOf(addr);
  Channel& ch = lane->channels[channel];
  if (fault_hook_ != nullptr && fault_hook_->ChannelStuck(now, channel)) {
    // A stuck-busy channel refuses admission entirely; requesters see it as
    // prolonged backpressure and keep retrying, which is exactly how a
    // wedged DIMM manifests to the pipelines.
    ++lane->fault_stuck_rejects;
    ++lane->backpressure_rejects;
    ++ch.rejects;
    if (is_write) {
      ++lane->write_rejects;
    } else {
      ++lane->read_rejects;
    }
    return nullptr;
  }
  if (ch.queued >= config_.dram_channel_queue_depth) {
    ++lane->backpressure_rejects;
    ++ch.rejects;
    if (is_write) {
      ++lane->write_rejects;
    } else {
      ++lane->read_rejects;
    }
    return nullptr;
  }
  *start = std::max(ch.busy_until, now);
  if (fault_hook_ != nullptr) {
    uint64_t extra = fault_hook_->ExtraLatency(now, channel);
    if (extra > 0) {
      *start += extra;
      lane->fault_spike_cycles += extra;
    }
  }
  lane->queue_wait_cycles.Add(double(*start - now));
  ch.busy_until = *start + config_.dram_issue_gap_cycles;
  ch.issue_busy_cycles += config_.dram_issue_gap_cycles;
  ch.queued_sum += ch.queued;
  ++ch.queued;
  ++ch.issued;
  ++lane->in_flight;
  if (is_write) {
    ++lane->total_writes;
  } else {
    ++lane->total_reads;
  }
  return &ch;
}

bool DramMemory::Issue(uint64_t now, Addr addr, bool is_write,
                       MemResponseQueue* sink, uint64_t cookie,
                       uint32_t snapshot_words) {
  Lane& lane = CurrentLane();
  uint64_t start = 0;
  if (AdmitRequest(&lane, now, addr, is_write, &start) == nullptr) {
    return false;
  }
  uint64_t complete_at = start + config_.dram_latency_cycles;
  lane.pending.push(Pending{complete_at, lane.seq++, addr, cookie, is_write,
                            /*apply_write=*/false, /*write_value=*/0,
                            snapshot_words, sink});
  if (complete_at < lane.next_ready) lane.next_ready = complete_at;
  return true;
}

bool DramMemory::IssueRowHit(uint64_t now, Addr addr, bool is_write,
                             MemResponseQueue* sink, uint64_t cookie,
                             uint32_t snapshot_words) {
  Lane& lane = CurrentLane();
  uint64_t start = 0;
  if (AdmitRequest(&lane, now, addr, is_write, &start) == nullptr) {
    return false;
  }
  uint64_t complete_at = start + config_.dram_row_hit_latency_cycles;
  lane.pending.push(Pending{complete_at, lane.seq++, addr, cookie, is_write,
                            /*apply_write=*/false, /*write_value=*/0,
                            snapshot_words, sink});
  if (complete_at < lane.next_ready) lane.next_ready = complete_at;
  return true;
}

bool DramMemory::IssueWrite64(uint64_t now, Addr addr, uint64_t value,
                              MemResponseQueue* sink, uint64_t cookie) {
  Lane& lane = CurrentLane();
  uint64_t start = 0;
  if (AdmitRequest(&lane, now, addr, /*is_write=*/true, &start) == nullptr) {
    return false;
  }
  uint64_t complete_at = start + config_.dram_latency_cycles;
  lane.pending.push(Pending{complete_at, lane.seq++, addr, cookie,
                            /*is_write=*/true,
                            /*apply_write=*/true, value, /*snapshot_words=*/0,
                            sink});
  if (complete_at < lane.next_ready) lane.next_ready = complete_at;
  return true;
}

void DramMemory::CollectStats(StatsScope scope, uint64_t now) const {
  scope.SetCounter("reads", total_reads());
  scope.SetCounter("writes", total_writes());
  scope.SetCounter("backpressure_rejects", backpressure_rejects());
  scope.SetCounter("read_rejects", read_rejects());
  scope.SetCounter("write_rejects", write_rejects());
  scope.SetCounter("allocated_bytes", allocated_bytes());
  scope.SetSummary("queue_wait_cycles", queue_wait_cycles());
  if (fault_hook_ != nullptr) {
    // Only emitted under fault injection so unfaulted bench reports are
    // byte-identical to pre-fault builds.
    scope.SetCounter("fault_stuck_rejects", fault_stuck_rejects());
    scope.SetCounter("fault_spike_cycles", fault_spike_cycles());
  }
  StatsScope chans = scope.Sub("channels");
  for (uint32_t i = 0; i < config_.dram_channels; ++i) {
    // Channel i aggregated over lanes (lane order) so the report shape does
    // not depend on partitioning.
    uint64_t issued = 0, rejects = 0, issue_busy = 0, queued_sum = 0;
    for (const Lane& l : lanes_) {
      const Channel& ch = l.channels[i];
      issued += ch.issued;
      rejects += ch.rejects;
      issue_busy += ch.issue_busy_cycles;
      queued_sum += ch.queued_sum;
    }
    StatsScope c = chans.Sub(std::to_string(i));
    c.SetCounter("issued", issued);
    c.SetCounter("rejects", rejects);
    c.SetGauge("issue_utilization",
               now > 0 ? double(issue_busy) / double(now) : 0);
    c.SetGauge("mean_queue_occupancy",
               issued > 0 ? double(queued_sum) / double(issued) : 0);
  }
}

void DramMemory::DrainLane(uint32_t lane_idx, uint64_t now) {
  Lane& lane = lanes_[lane_idx];
  while (!lane.pending.empty() && lane.pending.top().complete_at <= now) {
    const Pending& p = lane.pending.top();
    lane.channels[ChannelOf(p.addr)].queued--;
    if (p.apply_write) Write64(p.addr, p.write_value);
    if (p.sink != nullptr) {
      MemResponse resp{p.addr, p.cookie, p.is_write, {}};
      if (!p.is_write && p.snapshot_words > 0) {
        resp.data.resize(p.snapshot_words);
        for (uint32_t i = 0; i < p.snapshot_words; ++i) {
          resp.data[i] = Read64(p.addr + 8ull * i);
        }
      }
      p.sink->push_back(std::move(resp));
    }
    lane.pending.pop();
    --lane.in_flight;
  }
  lane.next_ready =
      lane.pending.empty() ? kNeverReady : lane.pending.top().complete_at;
}

}  // namespace bionicdb::sim
