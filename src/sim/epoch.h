// Epoch interface between the parallel island scheduler and the message
// fabric (DESIGN.md section 11).
//
// The conservative parallel scheme splits simulated time into epochs
// (T, Tend] whose length never exceeds the fabric's minimum hop latency W:
// a message sent at cycle c is delivered at c + hop >= c + W > Tend, so
// every delivery inside an epoch is decided by state that existed at the
// barrier — islands can free-run the epoch concurrently with zero
// mid-epoch communication. At each barrier the coordinator asks the
// fabric to:
//
//  1. BeginEpoch(from, to): predict, read-only, every packet that will
//     arrive during (from, to] and stage it per destination island with
//     its exact delivery cycle ("epoch stamps"). Islands consume their
//     stamps via DeliverStamps at exactly those cycles.
//  2. EndEpoch(from, to): replay the epoch authoritatively on the fabric's
//     own state — retire deliveries, generate/retire acks, run
//     retransmissions, and perform the sends islands staged during the
//     epoch, all in exact serial per-cycle order (so RNG draws, sequence
//     numbers and busy/idle accounting match the single-threaded mode
//     bit for bit).
//
// While SetEpochMode(true) is active, island-side Send calls only append
// to a thread-confined staging buffer (worker id = buffer index); the real
// sends happen inside EndEpoch.
#ifndef BIONICDB_SIM_EPOCH_H_
#define BIONICDB_SIM_EPOCH_H_

#include <cstdint>
#include <vector>

namespace bionicdb::sim {

class EpochFabric {
 public:
  virtual ~EpochFabric() = default;

  /// Minimum one-way hop latency over all worker pairs — the conservative
  /// lookahead W. 0 means same-cycle cross-island delivery is possible and
  /// parallel execution must fall back to the serial path.
  virtual uint64_t MinHopLatency() const = 0;

  /// Per-tier lookahead: minimum one-way hop latency over packets SENT BY
  /// `island`. On a tiered fabric (on-chip hops vs inter-chip links) this
  /// lets the barrier bound each island by ITS cheapest outgoing link —
  /// min over islands i of (next wake of i + MinHopLatencyFrom(i)) — so a
  /// slow inter-chip tier widens epochs instead of the global minimum
  /// clamping the whole cluster. Defaults to the global bound, which is
  /// always conservative.
  virtual uint64_t MinHopLatencyFrom(uint32_t island) const {
    (void)island;
    return MinHopLatency();
  }

  /// Earliest in-flight packet delivery cycle (kNeverWakes when none).
  /// Caps the epoch: arrivals mutate fabric and island state, so they must
  /// land exactly where the plan predicted them.
  virtual uint64_t NextDeliveryCycle() const = 0;

  /// Per-destination refinement of NextDeliveryCycle: fills the pre-sized
  /// `per_island` vector with the earliest in-flight delivery cycle bound
  /// for each island (kNeverWakes where none). An island with no pending
  /// arrivals need not cap its own wake at another island's delivery — its
  /// epoch contribution starts at its own next event. The default fills
  /// every slot with the global bound, which is always conservative.
  virtual void NextDeliveryCyclesTo(std::vector<uint64_t>* per_island) const {
    const uint64_t global = NextDeliveryCycle();
    for (uint64_t& c : *per_island) c = global;
  }

  /// Earliest fabric-internal event that is NOT a packet delivery
  /// (retransmission deadlines). Also caps the epoch: a retransmit puts a
  /// new packet on the wire, which BeginEpoch could not have predicted.
  virtual uint64_t NextInternalCycle() const = 0;

  /// Toggles epoch staging of island sends (see the header comment).
  virtual void SetEpochMode(bool on) = 0;

  /// Plans the epoch (from, to]: stages every predicted packet arrival per
  /// destination island. Read-only on fabric state.
  virtual void BeginEpoch(uint64_t from, uint64_t to) = 0;

  /// Replays the epoch authoritatively (see the header comment). Island
  /// inboxes are NOT pushed to — islands already consumed the staged
  /// stamps during the epoch.
  virtual void EndEpoch(uint64_t from, uint64_t to) = 0;

  /// Next staged-arrival cycle for `island` strictly after `now`
  /// (kNeverWakes when none left this epoch) — an island-side wake hint.
  virtual uint64_t NextStampCycle(uint32_t island, uint64_t now) const = 0;

  /// Pushes `island`'s staged arrivals due at exactly `cycle` into its
  /// inboxes. Called by the island's own thread inside its tick loop.
  virtual void DeliverStamps(uint32_t island, uint64_t cycle) = 0;

  /// Returns and clears the busy-cycle count EndEpoch attributed to the
  /// fabric for the finished epoch (folded into the fabric component's
  /// busy/idle scratch by the coordinator).
  virtual uint64_t TakeEpochBusySample() = 0;

  /// Last cycle at which EndEpoch saw the fabric active (delivery, ack,
  /// retransmit, send, or nonempty in-flight state). Lets the coordinator
  /// truncate the final epoch's idle tail exactly where the serial loop
  /// would have stopped ticking.
  virtual uint64_t last_active_cycle() const = 0;
};

}  // namespace bionicdb::sim

#endif  // BIONICDB_SIM_EPOCH_H_
