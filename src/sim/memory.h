// Simulated FPGA-side DRAM: functional byte store + channelised timing model.
//
// The entire database (tables, index structures, transaction blocks) lives in
// this simulated on-board DRAM, exactly as in the paper where the database
// resides entirely in the HC-2's DDR2. The model has two halves:
//
//  * Functional: a sparse, paged, byte-addressable 64-bit address space with
//    a bump allocator. Components read/write it directly; the data is always
//    "current" — ordering semantics come from *when* a component chooses to
//    perform the access (at request issue for writes, at response delivery
//    for reads), which is what makes the paper's pipeline hazards (Fig. 6/7)
//    reproducible in simulation.
//
//  * Timing: requests are routed to one of N channels by address; a channel
//    accepts one request per issue-gap, queues up to a configured depth
//    (backpressure beyond that) and completes each request a fixed latency
//    after service starts. Completions are delivered into the requester's
//    response queue during DramMemory::Tick.
//
// Partitioned operation (ConfigurePartitions): the DORA-style engine gives
// every partition worker a private slice of the address space (an "arena")
// and a private copy of the channel array (a "lane"), so a per-partition
// island — worker plus its DRAM lane — touches no timing state shared with
// other islands and can tick on its own host thread (DESIGN.md section 11).
// Which arena/lane an access uses is carried in a thread-local partition
// context (PartitionScope) so none of the allocation or issue call sites
// change signature. With one partition (or when never configured) the
// layout is bit-identical to the original single-arena, single-lane model.
#ifndef BIONICDB_SIM_MEMORY_H_
#define BIONICDB_SIM_MEMORY_H_

#include <cstdint>
#include <cstring>
#include <queue>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "sim/arena.h"
#include "sim/config.h"

namespace bionicdb::sim {

/// Address type within the simulated DRAM. 0 is the null address.
using Addr = uint64_t;
constexpr Addr kNullAddr = 0;

/// Word snapshot attached to a completed read. Single-word snapshots (the
/// overwhelmingly common case: tuple headers, bucket heads) live inline;
/// only full skiplist tower snapshots spill to the heap.
// Inline capacity covers the largest snapshot any pipeline requests (a
// full skiplist tower: header + kSkiplistMaxHeight links), so steady-state
// DRAM responses never touch the heap.
using MemWords = InlineVec<uint64_t, 24>;

/// Completion record delivered to the requester when a memory request
/// finishes. `cookie` is an opaque requester-defined value identifying what
/// the request was for (e.g. which in-flight DB instruction).
struct MemResponse {
  Addr addr = kNullAddr;
  uint64_t cookie = 0;
  bool is_write = false;
  /// Optional value snapshot taken when the request completes (see
  /// Issue(..., snapshot_words)). This is what makes pipeline hazards
  /// faithful: a read serviced before a concurrent in-flight write returns
  /// the old contents, exactly like real DRAM, even though the functional
  /// store itself is always "current".
  MemWords data;
};

/// Requesters own one of these; DRAM pushes completions into it.
using MemResponseQueue = RingQueue<MemResponse>;

/// Fault-injection surface of the DRAM model (implemented by
/// fault::FaultScheduler). All methods are consulted only when a hook is
/// installed, so the unfaulted simulation pays a single null-pointer check.
///
/// Determinism contract: implementations must derive every decision from
/// state advanced by their own simulator Tick (seeded RNG), never from
/// wall-clock or allocation addresses of the host process, so the same seed
/// reproduces the same fault schedule bit-for-bit.
///
/// Threading contract (parallel islands, DESIGN.md section 11): Extra-
/// Latency/ChannelStuck/VerifyTuple/OnTupleAllocated are called from island
/// threads during an epoch and must only read state written before the
/// epoch barrier or touch per-arena state owned by the calling island.
class DramFaultHook {
 public:
  virtual ~DramFaultHook() = default;

  /// Extra service latency (cycles) for a request admitted at `now` on
  /// `channel` — models a transient latency spike window.
  virtual uint64_t ExtraLatency(uint64_t now, uint32_t channel) = 0;

  /// True while `channel` is stuck busy: every admission is rejected,
  /// which the requesters experience as prolonged backpressure.
  virtual bool ChannelStuck(uint64_t now, uint32_t channel) = 0;

  /// A tuple was initialised at `addr` (integrity-guard registration: the
  /// hook records a CRC32 over the tuple's immutable header fields + key).
  virtual void OnTupleAllocated(Addr addr) = 0;

  /// Recomputes the integrity code of the tuple at `addr` against the
  /// recorded one. False = corruption detected; the accessing pipeline
  /// must fail the op so the transaction aborts (never a silent wrong
  /// answer).
  virtual bool VerifyTuple(Addr addr) = 0;
};

class DramMemory {
 public:
  /// Thread-local partition context value meaning "the host" — allocations
  /// go to the shared arena 0, timed accesses to lane 0.
  static constexpr uint32_t kHostPartition = UINT32_MAX;
  /// Lane::next_ready sentinel: no request in flight on the lane.
  static constexpr uint64_t kNeverReady = UINT64_MAX;

  explicit DramMemory(const TimingConfig& config);

  /// Splits the address space and the channel model into per-partition
  /// arenas and lanes (see the header comment). Must be called before any
  /// allocation or timed traffic; `n <= 1` keeps the original single-
  /// arena, single-lane layout bit-for-bit.
  void ConfigurePartitions(uint32_t n);
  bool partitioned() const { return partitioned_; }
  uint32_t n_lanes() const { return uint32_t(lanes_.size()); }

  /// RAII thread-local partition context: while in scope, Allocate targets
  /// the partition's arena and Issue/IssueWrite64 its lane. The simulator
  /// wraps island component ticks in one; the database wraps bulk loading
  /// (which must place each partition's tuples in that partition's arena).
  /// Nesting restores the previous context. Cheap enough for per-tick use.
  class PartitionScope {
   public:
    explicit PartitionScope(uint32_t partition)
        : saved_(tls_partition_) {
      tls_partition_ = partition;
    }
    ~PartitionScope() { tls_partition_ = saved_; }
    PartitionScope(const PartitionScope&) = delete;
    PartitionScope& operator=(const PartitionScope&) = delete;

   private:
    uint32_t saved_;
  };

  /// Raw thread-local partition context (what PartitionScope saves and
  /// restores). The simulator's per-cycle component loop uses these
  /// directly so one save/restore pair brackets the whole loop instead of
  /// constructing a scope per component per cycle.
  static uint32_t PartitionContext() { return tls_partition_; }
  static void SetPartitionContext(uint32_t partition) {
    tls_partition_ = partition;
  }

  /// Arena index owning `addr` (0 = host/shared, r+1 = partition r).
  uint32_t ArenaOf(Addr addr) const {
    if (!partitioned_) return 0;
    uint64_t a = addr >> kArenaShift;
    return a < arenas_.size() ? uint32_t(a) : 0;
  }
  uint32_t n_arenas() const { return uint32_t(arenas_.size()); }
  /// True when `partition` may access `addr` directly: un-partitioned
  /// memory, the shared host arena (transaction blocks), or the
  /// partition's own arena. Foreign addresses must go through the message
  /// fabric (softcore remote LOAD/STORE/commit publication).
  bool IsLocalTo(Addr addr, uint32_t partition) const {
    uint32_t arena = ArenaOf(addr);
    return arena == 0 || arena - 1 == partition;
  }
  /// Partition owning `addr`'s arena (callers check !IsLocalTo first; the
  /// shared arena defensively maps to partition 0).
  uint32_t OwnerPartition(Addr addr) const {
    uint32_t arena = ArenaOf(addr);
    return arena == 0 ? 0 : arena - 1;
  }

  // --- Functional interface -------------------------------------------

  /// Allocates `size` bytes (aligned to `align`) from the current
  /// partition context's arena bump allocator.
  Addr Allocate(uint64_t size, uint64_t align = 8);

  /// Raw byte accessors. Accessing unallocated space is allowed (pages are
  /// materialised on demand and zero-filled), matching real DRAM.
  void WriteBytes(Addr addr, const void* src, uint64_t len);
  void ReadBytes(Addr addr, void* dst, uint64_t len) const;

  // Fixed-width accessors, inline with a single-page fast path: a hit in
  // the thread-local page cache resolves to one memcpy with no function
  // call. Accesses straddling a 64 KiB page boundary (and cache misses)
  // take the out-of-line path.
  uint64_t Read64(Addr addr) const {
    const uint64_t off = addr & (kPageSize - 1);
    if (off <= kPageSize - 8) {
      uint64_t v;
      std::memcpy(&v, PagePtr(addr) + off, 8);
      return v;
    }
    uint64_t v;
    ReadBytes(addr, &v, 8);
    return v;
  }
  void Write64(Addr addr, uint64_t value) {
    const uint64_t off = addr & (kPageSize - 1);
    if (off <= kPageSize - 8) {
      std::memcpy(PagePtr(addr) + off, &value, 8);
      return;
    }
    WriteBytes(addr, &value, 8);
  }
  uint32_t Read32(Addr addr) const {
    const uint64_t off = addr & (kPageSize - 1);
    if (off <= kPageSize - 4) {
      uint32_t v;
      std::memcpy(&v, PagePtr(addr) + off, 4);
      return v;
    }
    uint32_t v;
    ReadBytes(addr, &v, 4);
    return v;
  }
  void Write32(Addr addr, uint32_t value) {
    const uint64_t off = addr & (kPageSize - 1);
    if (off <= kPageSize - 4) {
      std::memcpy(PagePtr(addr) + off, &value, 4);
      return;
    }
    WriteBytes(addr, &value, 4);
  }
  uint8_t Read8(Addr addr) const {
    return PagePtr(addr)[addr & (kPageSize - 1)];
  }
  void Write8(Addr addr, uint8_t value) {
    PagePtr(addr)[addr & (kPageSize - 1)] = value;
  }

  /// Span of `addr`'s page from `addr` to the page end — a window callers
  /// may read directly (key comparisons) without per-byte accessor calls.
  /// The pointer stays valid for the DramMemory's lifetime.
  const uint8_t* ReadSpan(Addr addr, uint64_t* span_len) const {
    const uint64_t off = addr & (kPageSize - 1);
    *span_len = kPageSize - off;
    return PagePtr(addr) + off;
  }

  /// Bytes handed out by the allocator so far (database footprint, summed
  /// over all arenas).
  uint64_t allocated_bytes() const {
    uint64_t total = 0;
    for (const Arena& a : arenas_) total += a.next_free - a.base;
    return total;
  }

  // --- Timing interface -----------------------------------------------

  /// Attempts to enqueue a memory request at cycle `now` on the current
  /// partition context's lane. Returns false when the target channel's
  /// queue is full (the requester must retry — this is how DRAM
  /// backpressure propagates into the pipelines). When `sink` is null the
  /// completion is dropped (fire-and-forget write). For reads,
  /// `snapshot_words` 64-bit words starting at `addr` are copied into the
  /// response at completion time.
  bool Issue(uint64_t now, Addr addr, bool is_write, MemResponseQueue* sink,
             uint64_t cookie, uint32_t snapshot_words = 0);

  /// Same contract as Issue, but charged at the row-hit (sequential-burst)
  /// latency instead of the random-access latency. Callers — the batched
  /// traversal units — decide row-hit eligibility themselves via SameRow
  /// against the previous address in their burst train, which keeps the
  /// DRAM model stateless and deterministic across simulation modes.
  bool IssueRowHit(uint64_t now, Addr addr, bool is_write,
                   MemResponseQueue* sink, uint64_t cookie,
                   uint32_t snapshot_words = 0);

  /// True when two addresses fall within the same DRAM row span and a
  /// back-to-back access to `b` after `a` qualifies for the row-hit cost.
  bool SameRow(Addr a, Addr b) const {
    return (a / config_.dram_row_bytes) == (b / config_.dram_row_bytes);
  }

  /// A write whose FUNCTIONAL effect lands at service-completion time, with
  /// an acknowledgment response. This is the ordering-sensitive write path:
  /// index-structure pointer updates use it so that racing reads serviced
  /// before the write completes see the old value — the physical basis of
  /// the paper's pipeline hazards (Figures 6/7).
  bool IssueWrite64(uint64_t now, Addr addr, uint64_t value,
                    MemResponseQueue* sink, uint64_t cookie);

  /// Delivers all completions due at or before `now` (every lane).
  void Tick(uint64_t now) {
    for (uint32_t i = 0; i < lanes_.size(); ++i) TickLane(i, now);
  }
  /// Per-lane tick, for island-parallel execution. Inline fast path: one
  /// compare against the lane's cached next completion cycle.
  void TickLane(uint32_t lane, uint64_t now) {
    if (now < lanes_[lane].next_ready) return;
    DrainLane(lane, now);
  }

  /// True when no requests are in flight on any lane.
  bool Idle() const {
    for (const Lane& l : lanes_) {
      if (l.in_flight != 0) return false;
    }
    return true;
  }
  bool LaneIdle(uint32_t lane) const { return lanes_[lane].in_flight == 0; }

  /// Event-driven scheduling hint: the earliest cycle at which an in-flight
  /// request completes (Tick before then is a pure no-op), or kNeverWakes
  /// with nothing in flight. Queried post-Tick, so the head completion is
  /// always in the future; clamped defensively anyway.
  uint64_t NextWakeCycle(uint64_t now) const {
    uint64_t wake = UINT64_MAX;
    for (size_t i = 0; i < lanes_.size(); ++i) {
      uint64_t w = LaneNextWake(uint32_t(i), now);
      if (w < wake) wake = w;
    }
    return wake;
  }
  uint64_t LaneNextWake(uint32_t lane, uint64_t now) const {
    const uint64_t ready = lanes_[lane].next_ready;
    if (ready == kNeverReady) return UINT64_MAX;
    return ready > now ? ready : now + 1;
  }

  uint64_t total_reads() const { return SumLanes(&Lane::total_reads); }
  uint64_t total_writes() const { return SumLanes(&Lane::total_writes); }
  uint64_t backpressure_rejects() const {
    return SumLanes(&Lane::backpressure_rejects);
  }
  uint64_t read_rejects() const { return SumLanes(&Lane::read_rejects); }
  uint64_t write_rejects() const { return SumLanes(&Lane::write_rejects); }

  /// Queueing delay (cycles between request issue and service start)
  /// across all accepted requests — the congestion half of DRAM latency;
  /// the service half is the fixed dram_latency_cycles. Merged over lanes
  /// in lane order (exact copy with a single lane).
  Summary queue_wait_cycles() const {
    Summary merged;
    for (const Lane& l : lanes_) merged.MergeFrom(l.queue_wait_cycles);
    return merged;
  }

  /// Dumps per-channel utilisation, queue occupancy and the
  /// backpressure-reject breakdown under `scope`. `now` is the current
  /// simulated cycle (utilisation denominator). Per-channel figures are
  /// summed over lanes in lane order, so the JSON shape is independent of
  /// partitioning.
  void CollectStats(StatsScope scope, uint64_t now) const;

  const TimingConfig& config() const { return config_; }

  // --- Fault injection --------------------------------------------------

  /// Installs (or clears, with nullptr) the fault hook. The DRAM does not
  /// take ownership; with no hook every fault path is a dead branch.
  void set_fault_hook(DramFaultHook* hook) { fault_hook_ = hook; }
  DramFaultHook* fault_hook() const { return fault_hook_; }

  /// Called by db::AllocateTuple so the fault subsystem can register an
  /// integrity guard over the new tuple. No-op without a hook.
  void NotifyTupleAllocated(Addr addr) {
    if (fault_hook_ != nullptr) fault_hook_->OnTupleAllocated(addr);
  }

  /// Integrity check the index pipelines run before trusting a tuple's
  /// header/key bytes. Always passes without a hook.
  bool VerifyTupleGuard(Addr addr) {
    return fault_hook_ == nullptr || fault_hook_->VerifyTuple(addr);
  }

  /// Admissions rejected because the target channel was fault-stuck.
  uint64_t fault_stuck_rejects() const {
    return SumLanes(&Lane::fault_stuck_rejects);
  }
  /// Total extra latency cycles added by injected spikes.
  uint64_t fault_spike_cycles() const {
    return SumLanes(&Lane::fault_spike_cycles);
  }

 private:
  static constexpr uint64_t kPageBits = 16;  // 64 KiB pages
  static constexpr uint64_t kPageSize = 1ull << kPageBits;
  static constexpr Addr kHeapBase = 0x1000;  // keep low addresses unmapped
  /// Partition arenas start at (partition + 1) << kArenaShift: 1 TiB slices
  /// a bump allocator never crosses, so the arena of an address is its top
  /// bits — no lookup table.
  static constexpr uint64_t kArenaShift = 40;

  struct Pending {
    uint64_t complete_at;
    uint64_t seq;  // tie-break for deterministic delivery order
    Addr addr;
    uint64_t cookie;
    bool is_write;
    bool apply_write;      // delayed-apply write (see IssueWrite64)
    uint64_t write_value;  // value applied at completion
    uint32_t snapshot_words;
    MemResponseQueue* sink;
    bool operator>(const Pending& o) const {
      if (complete_at != o.complete_at) return complete_at > o.complete_at;
      return seq > o.seq;
    }
  };

  struct Channel {
    uint64_t busy_until = 0;
    uint32_t queued = 0;
    // Observability (per-channel breakdowns for CollectStats).
    uint64_t issued = 0;
    uint64_t rejects = 0;
    uint64_t issue_busy_cycles = 0;  // cycles spent issuing requests
    uint64_t queued_sum = 0;         // sum of occupancy sampled per issue
  };

  /// One partition's private timing model: its own channel array, pending
  /// queue and counters. Nothing in a lane is touched by other islands, so
  /// lanes tick concurrently without synchronisation.
  struct Lane {
    std::vector<Channel> channels;
    std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
        pending;
    /// Cached pending.top().complete_at (kNeverReady when empty), so the
    /// per-cycle TickLane probe is one hot-field compare instead of a
    /// priority-queue touch. Maintained on every push/pop.
    uint64_t next_ready = kNeverReady;
    uint64_t seq = 0;
    uint64_t in_flight = 0;
    uint64_t total_reads = 0;
    uint64_t total_writes = 0;
    uint64_t backpressure_rejects = 0;
    uint64_t read_rejects = 0;
    uint64_t write_rejects = 0;
    uint64_t fault_stuck_rejects = 0;
    uint64_t fault_spike_cycles = 0;
    Summary queue_wait_cycles;
  };

  /// One partition's private address-space slice.
  struct Arena {
    Addr base = kHeapBase;
    Addr next_free = kHeapBase;
  };

  /// Common admission path: channel lookup, backpressure check, occupancy
  /// accounting. Returns nullptr on reject (counters updated); otherwise
  /// the channel, with `*start` set to the service start cycle.
  Channel* AdmitRequest(Lane* lane, uint64_t now, Addr addr, bool is_write,
                        uint64_t* start);

  /// TickLane slow path: delivers every completion due at or before `now`
  /// and refreshes the lane's next_ready cache.
  void DrainLane(uint32_t lane, uint64_t now);

  Lane& CurrentLane() {
    if (!partitioned_ || tls_partition_ == kHostPartition) return lanes_[0];
    return lanes_[tls_partition_ < lanes_.size() ? tls_partition_ : 0];
  }
  Arena& CurrentArena() {
    if (!partitioned_ || tls_partition_ == kHostPartition) return arenas_[0];
    uint32_t idx = tls_partition_ + 1;
    return arenas_[idx < arenas_.size() ? idx : 0];
  }

  uint64_t SumLanes(uint64_t Lane::* field) const {
    uint64_t total = 0;
    for (const Lane& l : lanes_) total += l.*field;
    return total;
  }

  /// Small direct-mapped thread-local cache in front of the shared page
  /// table, so the hot functional read/write path takes the shared_mutex
  /// only on a miss. Entries are tagged with the owning DramMemory's
  /// generation; pages are never freed while the owner lives, so a hit is
  /// always valid.
  struct PageCacheEntry {
    uint64_t owner_gen = 0;
    uint64_t page = 0;
    uint8_t* ptr = nullptr;
  };
  static constexpr size_t kPageCacheSlots = 8;

  /// Resolves `addr`'s page: inline on a page-cache hit, out-of-line
  /// (PageFor) on a miss. Const because reads of never-written pages
  /// materialise them lazily as zero-filled, matching real DRAM.
  uint8_t* PagePtr(Addr addr) const {
    const uint64_t page = addr >> kPageBits;
    const PageCacheEntry& slot = tls_page_cache_[page % kPageCacheSlots];
    if (slot.owner_gen == generation_ && slot.page == page) return slot.ptr;
    return const_cast<DramMemory*>(this)->PageFor(addr);
  }

  uint8_t* PageFor(Addr addr);
  uint32_t ChannelOf(Addr addr) const;

  static thread_local uint32_t tls_partition_;
  static thread_local PageCacheEntry tls_page_cache_[kPageCacheSlots];

  TimingConfig config_;
  /// Unique per-instance id tagging thread-local page-cache entries so a
  /// cache never serves pages of a destroyed (or different) DramMemory.
  const uint64_t generation_;
  // The page table is the one structure shared across islands (an island
  // may materialise a page of the host arena while writing a scan result
  // into the initiator's transaction block). Pages are never freed, so a
  // pointer obtained under the lock stays valid forever. Page storage
  // comes from a bump arena (16 pages per slab) under the same lock, so
  // materialising a page is a pointer bump instead of a heap allocation.
  mutable std::shared_mutex pages_mu_;
  mutable std::unordered_map<uint64_t, uint8_t*> pages_;
  mutable BumpArena page_arena_{16 << kPageBits};

  bool partitioned_ = false;
  std::vector<Arena> arenas_;
  std::vector<Lane> lanes_;
  DramFaultHook* fault_hook_ = nullptr;
};

}  // namespace bionicdb::sim

#endif  // BIONICDB_SIM_MEMORY_H_
