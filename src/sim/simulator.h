// The cycle engine: owns the clock, the DRAM, and every hardware block.
#ifndef BIONICDB_SIM_SIMULATOR_H_
#define BIONICDB_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "sim/component.h"
#include "sim/config.h"
#include "sim/memory.h"

namespace bionicdb::sim {

/// Single-threaded, deterministic cycle-driven simulator.
///
/// Per cycle: DRAM delivers completions first (so responses are visible to
/// blocks in the same cycle), then every registered component ticks in
/// registration order.
class Simulator {
 public:
  explicit Simulator(const TimingConfig& config = TimingConfig());

  /// Registers a block; the simulator does not take ownership.
  void AddComponent(Component* component);

  /// Runs `cycles` cycles.
  void Step(uint64_t cycles = 1);

  /// Runs until `done()` returns true or `max_cycles` elapse.
  /// Returns true if `done` fired (false = cycle budget exhausted).
  bool RunUntil(const std::function<bool()>& done,
                uint64_t max_cycles = UINT64_MAX);

  /// Runs until every component and the DRAM report Idle (or budget).
  bool RunUntilIdle(uint64_t max_cycles = UINT64_MAX);

  uint64_t now() const { return now_; }

  /// Jumps the clock forward without ticking (used by recovery to
  /// re-initialise the hardware clock past the latest commit timestamp,
  /// paper section 4.8). Requires target >= now(); a backwards target is
  /// clamped (the clock never moves back) and counted under the
  /// "fastforward_backwards_clamped" counter so callers violating the
  /// precondition are visible in the stats dump.
  void FastForward(uint64_t target) {
    if (target < now_) {
      counters_.Add("fastforward_backwards_clamped");
      return;
    }
    now_ = target;
  }
  DramMemory& dram() { return dram_; }
  const TimingConfig& config() const { return config_; }
  CounterSet& counters() { return counters_; }

  /// Busy/idle cycle attribution for one registered component. A cycle is
  /// "busy" when the component reported outstanding work (!Idle()) after
  /// its tick — the coarse per-block utilisation view; finer stall
  /// attribution lives inside the blocks themselves.
  struct ComponentCycles {
    uint64_t busy = 0;
    uint64_t idle = 0;
  };
  const std::vector<ComponentCycles>& component_cycles() const {
    return component_cycles_;
  }
  const std::vector<Component*>& components() const { return components_; }

  /// Dumps simulator-level stats (clock, per-component busy/idle, DRAM
  /// channel utilisation) under `scope`.
  void CollectStats(StatsScope scope) const;

 private:
  void TickOnce();

  TimingConfig config_;
  DramMemory dram_;
  std::vector<Component*> components_;
  std::vector<ComponentCycles> component_cycles_;
  uint64_t now_ = 0;
  CounterSet counters_;
};

}  // namespace bionicdb::sim

#endif  // BIONICDB_SIM_SIMULATOR_H_
