// The cycle engine: owns the clock, the DRAM, and every hardware block.
#ifndef BIONICDB_SIM_SIMULATOR_H_
#define BIONICDB_SIM_SIMULATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "sim/component.h"
#include "sim/config.h"
#include "sim/epoch.h"
#include "sim/memory.h"

namespace bionicdb::sim {

/// Deterministic cycle-driven simulator with three execution modes, all
/// producing bit-identical results (final clock, transaction outcomes,
/// every stat):
///
///  * Per-cycle (default): each registered component ticks every cycle, in
///    registration order, after DRAM delivers completions (so responses are
///    visible to blocks in the same cycle).
///
///  * Event-driven (TimingConfig::event_driven): quiescent spans — stretches
///    where every block's NextWakeCycle hint agrees nothing happens — are
///    skipped in one jump instead of ticked cycle by cycle. Skipped cycles
///    are bulk-charged through Component::SkipCycles so busy/idle sampling
///    and all stall-attribution counters stay bit-identical.
///
///  * Parallel islands (TimingConfig::parallel_hosts > 0, plus
///    SetEpochFabric and island-tagged AddComponent): per-partition islands
///    — a worker and its private DRAM lane — free-run concurrently on host
///    threads inside conservative epochs whose length never exceeds the
///    comm fabric's minimum hop latency (the PDES lookahead). At each epoch
///    barrier the fabric and global components (e.g. the fault scheduler)
///    are replayed in exact serial order, so results remain bit-identical
///    to the single-threaded modes (DESIGN.md section 11).
class Simulator {
 public:
  explicit Simulator(const TimingConfig& config = TimingConfig());
  ~Simulator();

  /// Registers a global block — ticked by the coordinator, never inside a
  /// parallel epoch; the simulator does not take ownership. Global blocks
  /// must not create island work on their own (the fault scheduler's
  /// injections only re-shape work that already exists, which is why it
  /// qualifies).
  void AddComponent(Component* component);

  /// Registers a block belonging to partition island `island`: it ticks on
  /// that island's thread under parallel execution (and under that
  /// island's DramMemory::PartitionScope in every mode). Island blocks
  /// must not self-activate from Idle: once Idle(), only inbound fabric
  /// packets may give them new work.
  void AddComponent(Component* component, uint32_t island);

  /// Installs the epoch interface of the message fabric for parallel
  /// execution. `fabric_component` is the fabric's already-registered
  /// global Component identity — at epoch barriers its busy/idle sampling
  /// comes from EpochFabric::TakeEpochBusySample instead of coordinator
  /// ticking.
  void SetEpochFabric(EpochFabric* fabric, Component* fabric_component);

  /// Test hook: invoked once per parallel epoch with its (from, to] bounds
  /// before the islands run. Lets unit tests assert the conservative-
  /// lookahead invariant directly.
  void set_epoch_observer(std::function<void(uint64_t, uint64_t)> observer) {
    epoch_observer_ = std::move(observer);
  }

  /// Runs `cycles` cycles.
  void Step(uint64_t cycles = 1);

  /// Runs until `done()` returns true or `max_cycles` elapse.
  /// Returns true if `done` fired (false = cycle budget exhausted).
  /// In event-driven mode `done` must be a function of component/DRAM
  /// state, not of now(): it is evaluated once per real tick, and real
  /// ticks are the only cycles where component state can change.
  /// An arbitrary predicate cannot be evaluated mid-epoch, so this entry
  /// point always runs serially (parallel execution covers Step and
  /// RunUntilIdle, which is what the transaction drain path uses).
  bool RunUntil(const std::function<bool()>& done,
                uint64_t max_cycles = UINT64_MAX);

  /// Runs until every component and the DRAM report Idle (or budget).
  bool RunUntilIdle(uint64_t max_cycles = UINT64_MAX);

  uint64_t now() const { return now_; }

  /// Jumps the clock forward without ticking (used by recovery to
  /// re-initialise the hardware clock past the latest commit timestamp,
  /// paper section 4.8). Requires target >= now(); a backwards target is
  /// clamped (the clock never moves back) and counted under the
  /// "fastforward_backwards_clamped" counter so callers violating the
  /// precondition are visible in the stats dump.
  void FastForward(uint64_t target) {
    if (target < now_) {
      counters_.Add("fastforward_backwards_clamped");
      return;
    }
    now_ = target;
  }
  DramMemory& dram() { return dram_; }
  const TimingConfig& config() const { return config_; }
  CounterSet& counters() { return counters_; }

  /// Busy/idle cycle attribution for one registered component. A cycle is
  /// "busy" when the component reported outstanding work (!Idle()) after
  /// its tick — the coarse per-block utilisation view; finer stall
  /// attribution lives inside the blocks themselves.
  struct ComponentCycles {
    uint64_t busy = 0;
    uint64_t idle = 0;
  };
  const std::vector<ComponentCycles>& component_cycles() const {
    FlushSamples();
    return component_cycles_;
  }
  const std::vector<Component*>& components() const { return components_; }

  /// Event-driven/parallel warp telemetry. Deliberately NOT part of
  /// CollectStats: stats must be bit-identical between modes (the
  /// differential tests compare the JSON), so host-side speedup data is
  /// exposed separately for the sim_speed harness.
  struct WarpStats {
    uint64_t warps = 0;           // number of clock jumps taken
    uint64_t skipped_cycles = 0;  // cycles covered by jumps (never ticked)
  };
  const WarpStats& warp_stats() const { return warp_stats_; }

  /// Dumps simulator-level stats (clock, per-component busy/idle, DRAM
  /// channel utilisation) under `scope`.
  void CollectStats(StatsScope scope) const;

 private:
  /// Island id marking a global component (== DramMemory::kHostPartition,
  /// so island_of_ doubles as the per-component partition context).
  static constexpr uint32_t kGlobalIsland = UINT32_MAX;

  /// One partition island: the components that tick on its thread plus the
  /// per-epoch state the coordinator reads back at the barrier.
  struct Island {
    uint32_t id = 0;
    std::vector<size_t> comps;  // indices into components_
    // Epoch-run results (written by the owning thread, read/reset by the
    // coordinator at the barrier — ordered by the barrier atomics).
    uint64_t stop_cycle = 0;  // last cycle a real island tick ran
    bool deferred = false;    // went fully idle; tail not yet accounted
    uint64_t tail_start = 0;  // cycle the island went idle this epoch
    uint64_t warps = 0;
    uint64_t skipped = 0;
  };

  void TickOnce();

  /// Minimum of all blocks' wake hints (clamped to > now_), with an
  /// early-out as soon as any block wants the very next cycle.
  uint64_t NextWakeCycle() const;

  /// Event-driven jump: if every block's next interesting cycle is past
  /// now_ + 1, advances the clock to just before min(wake, limit),
  /// bulk-charging the skipped cycles. `limit` is the last cycle the
  /// caller will still tick for real. Leaves now_ < limit so the caller's
  /// next TickOnce lands exactly on the wake (or limit) cycle.
  void WarpBefore(uint64_t limit);

  /// Folds the sampling scratch accumulated since the last flush into
  /// component_cycles_. Sampling goes through a scratch so the per-cycle
  /// hot loop touches one counter per component instead of read-modify-
  /// writing the busy/idle pair; flushed per Step/RunUntil call and
  /// lazily on read.
  void FlushSamples() const;

  /// Shared Step/RunUntil driver, templated so RunUntilIdle's predicate is
  /// a directly inlined lambda instead of a std::function indirection in
  /// the hot loop.
  template <typename DoneFn>
  bool RunLoop(DoneFn&& done, uint64_t limit);

  // --- Parallel island execution (DESIGN.md section 11) -----------------

  /// True when this run can take the parallel path: a positive
  /// parallel_hosts, an epoch fabric with a nonzero lookahead, and one
  /// DRAM lane per registered island.
  bool ParallelReady() const;

  /// The serial RunUntilIdle predicate (also the parallel quiescence
  /// check).
  bool AllIdle() const;

  /// Conservative epoch bound: islands may free-run (now_, Tend] without
  /// seeing any event that was not already decided at the barrier.
  uint64_t EpochEnd(uint64_t from, uint64_t limit) const;

  /// Runs one epoch (now_ advances to its end). Returns true when the
  /// machine quiesced inside the epoch (only possible with
  /// `allow_quiesce`; now_ then stops at the exact cycle the serial loop
  /// would have).
  bool RunEpoch(uint64_t limit, bool allow_quiesce);

  /// One island's free-run over (from, to]: event-driven ticking of its
  /// lane, its epoch stamps and its components. With `allow_defer` the
  /// island stops at full idleness and leaves the tail for the barrier
  /// (which knows whether the whole machine stops there); the barrier
  /// re-enters with allow_defer = false to account the tail.
  void RunIslandEpoch(Island& island, uint64_t from, uint64_t to,
                      bool allow_defer);

  /// Barrier-time replay of one global component over (from, to], exactly
  /// as the serial event-driven loop would tick it. Epochs are capped at
  /// every global wake hint, so a global event always lands on the
  /// epoch's final cycle — after island work for that cycle, before the
  /// next epoch — reproducing the serial intra-cycle order (workers tick
  /// before the fault scheduler).
  void RunGlobalComponent(size_t idx, uint64_t from, uint64_t to);

  void EnsureThreads();
  void ThreadMain(uint32_t thread_index);

  TimingConfig config_;
  DramMemory dram_;
  std::vector<Component*> components_;
  /// Island owning each component (kGlobalIsland = coordinator-ticked).
  std::vector<uint32_t> island_of_;
  // Mutable + scratch: samples accumulate in scratch_busy_/scratch_ticks_
  // during a run and fold into component_cycles_ on flush (also from const
  // readers, hence mutable). Under parallel execution each scratch_busy_
  // slot is written only by its component's island thread (or the
  // coordinator, for globals/tails), with the barrier ordering accesses.
  mutable std::vector<ComponentCycles> component_cycles_;
  mutable std::vector<uint64_t> scratch_busy_;
  mutable uint64_t scratch_ticks_ = 0;
  uint64_t now_ = 0;
  /// Quiescence of the whole machine as of the end of the last TickOnce
  /// (see TickOnce; consumed by RunUntilIdle's serial loop).
  bool all_idle_after_tick_ = false;
  WarpStats warp_stats_;
  CounterSet counters_;

  // Parallel state.
  std::vector<Island> islands_;
  EpochFabric* epoch_fabric_ = nullptr;
  size_t fabric_index_ = SIZE_MAX;  // fabric's slot in components_
  uint64_t min_hop_ = 0;            // cached global lookahead W
  /// Per-island lookahead cache (MinHopLatencyFrom, topology-constant) and
  /// the per-island delivery-bound scratch, both sized lazily on the first
  /// EpochEnd. Mutable: EpochEnd is const and only the coordinator calls
  /// it, outside any epoch.
  mutable std::vector<uint64_t> min_hop_from_;
  mutable std::vector<uint64_t> deliver_scratch_;
  std::function<void(uint64_t, uint64_t)> epoch_observer_;

  // Thread pool, lazily started on the first parallel epoch. The caller
  // thread is the coordinator and runs islands 0, width, 2*width, ...;
  // spawned thread k runs islands k, k+width, ... Epochs are published by
  // a release increment of epoch_seq_ (after writing epoch_from_/to_);
  // workers acknowledge with a release decrement of epoch_pending_. Both
  // sides spin briefly then yield, so the pool needs no mutexes and every
  // cross-thread access is ordered by one of the two atomics.
  uint32_t pool_width_ = 0;
  /// Spins before yielding in the barrier waits (1 on oversubscribed
  /// hosts, where spinning only delays the thread being waited on).
  uint32_t spin_limit_ = 1024;
  std::vector<std::thread> threads_;
  std::atomic<uint64_t> epoch_seq_{0};
  std::atomic<uint32_t> epoch_pending_{0};
  std::atomic<bool> shutdown_{false};
  uint64_t epoch_from_ = 0;
  uint64_t epoch_to_ = 0;
};

}  // namespace bionicdb::sim

#endif  // BIONICDB_SIM_SIMULATOR_H_
