// The cycle engine: owns the clock, the DRAM, and every hardware block.
#ifndef BIONICDB_SIM_SIMULATOR_H_
#define BIONICDB_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "sim/component.h"
#include "sim/config.h"
#include "sim/memory.h"

namespace bionicdb::sim {

/// Single-threaded, deterministic cycle-driven simulator.
///
/// Per cycle: DRAM delivers completions first (so responses are visible to
/// blocks in the same cycle), then every registered component ticks in
/// registration order.
///
/// With TimingConfig::event_driven set, quiescent spans — stretches where
/// every block's NextWakeCycle hint agrees nothing happens — are skipped in
/// one jump instead of ticked cycle by cycle. Skipped cycles are
/// bulk-charged through Component::SkipCycles so busy/idle sampling and all
/// stall-attribution counters stay bit-identical to per-cycle ticking.
class Simulator {
 public:
  explicit Simulator(const TimingConfig& config = TimingConfig());

  /// Registers a block; the simulator does not take ownership.
  void AddComponent(Component* component);

  /// Runs `cycles` cycles.
  void Step(uint64_t cycles = 1);

  /// Runs until `done()` returns true or `max_cycles` elapse.
  /// Returns true if `done` fired (false = cycle budget exhausted).
  /// In event-driven mode `done` must be a function of component/DRAM
  /// state, not of now(): it is evaluated once per real tick, and real
  /// ticks are the only cycles where component state can change.
  bool RunUntil(const std::function<bool()>& done,
                uint64_t max_cycles = UINT64_MAX);

  /// Runs until every component and the DRAM report Idle (or budget).
  bool RunUntilIdle(uint64_t max_cycles = UINT64_MAX);

  uint64_t now() const { return now_; }

  /// Jumps the clock forward without ticking (used by recovery to
  /// re-initialise the hardware clock past the latest commit timestamp,
  /// paper section 4.8). Requires target >= now(); a backwards target is
  /// clamped (the clock never moves back) and counted under the
  /// "fastforward_backwards_clamped" counter so callers violating the
  /// precondition are visible in the stats dump.
  void FastForward(uint64_t target) {
    if (target < now_) {
      counters_.Add("fastforward_backwards_clamped");
      return;
    }
    now_ = target;
  }
  DramMemory& dram() { return dram_; }
  const TimingConfig& config() const { return config_; }
  CounterSet& counters() { return counters_; }

  /// Busy/idle cycle attribution for one registered component. A cycle is
  /// "busy" when the component reported outstanding work (!Idle()) after
  /// its tick — the coarse per-block utilisation view; finer stall
  /// attribution lives inside the blocks themselves.
  struct ComponentCycles {
    uint64_t busy = 0;
    uint64_t idle = 0;
  };
  const std::vector<ComponentCycles>& component_cycles() const {
    FlushSamples();
    return component_cycles_;
  }
  const std::vector<Component*>& components() const { return components_; }

  /// Event-driven warp telemetry. Deliberately NOT part of CollectStats:
  /// stats must be bit-identical between modes (the differential tests
  /// compare the JSON), so host-side speedup data is exposed separately
  /// for the sim_speed harness.
  struct WarpStats {
    uint64_t warps = 0;           // number of clock jumps taken
    uint64_t skipped_cycles = 0;  // cycles covered by jumps (never ticked)
  };
  const WarpStats& warp_stats() const { return warp_stats_; }

  /// Dumps simulator-level stats (clock, per-component busy/idle, DRAM
  /// channel utilisation) under `scope`.
  void CollectStats(StatsScope scope) const;

 private:
  void TickOnce();

  /// Minimum of all blocks' wake hints (clamped to > now_), with an
  /// early-out as soon as any block wants the very next cycle.
  uint64_t NextWakeCycle() const;

  /// Event-driven jump: if every block's next interesting cycle is past
  /// now_ + 1, advances the clock to just before min(wake, limit),
  /// bulk-charging the skipped cycles. `limit` is the last cycle the
  /// caller will still tick for real. Leaves now_ < limit so the caller's
  /// next TickOnce lands exactly on the wake (or limit) cycle.
  void WarpBefore(uint64_t limit);

  /// Folds the sampling scratch accumulated since the last flush into
  /// component_cycles_. Sampling goes through a scratch so the per-cycle
  /// hot loop touches one counter per component instead of read-modify-
  /// writing the busy/idle pair; flushed per Step/RunUntil call and
  /// lazily on read.
  void FlushSamples() const;

  /// Shared Step/RunUntil driver, templated so RunUntilIdle's predicate is
  /// a directly inlined lambda instead of a std::function indirection in
  /// the hot loop.
  template <typename DoneFn>
  bool RunLoop(DoneFn&& done, uint64_t limit);

  TimingConfig config_;
  DramMemory dram_;
  std::vector<Component*> components_;
  // Mutable + scratch: samples accumulate in scratch_busy_/scratch_ticks_
  // during a run and fold into component_cycles_ on flush (also from const
  // readers, hence mutable).
  mutable std::vector<ComponentCycles> component_cycles_;
  mutable std::vector<uint64_t> scratch_busy_;
  mutable uint64_t scratch_ticks_ = 0;
  uint64_t now_ = 0;
  WarpStats warp_stats_;
  CounterSet counters_;
};

}  // namespace bionicdb::sim

#endif  // BIONICDB_SIM_SIMULATOR_H_
