// google-benchmark microbenchmarks for the software-baseline building
// blocks: index point lookups, inserts and scans. These calibrate the
// Silo side of the comparisons (the other bench binaries are experiment
// harnesses over the deterministic simulator, where google-benchmark's
// repeated-timing model does not apply).
#include <benchmark/benchmark.h>

#include "baseline/hash_index.h"
#include "baseline/olc_btree.h"
#include "baseline/sw_skiplist.h"
#include "common/random.h"

namespace bionicdb::baseline {
namespace {

constexpr uint64_t kRecords = 100'000;

template <typename Index>
std::unique_ptr<Index> BuildIndex(Arena* arena) {
  std::unique_ptr<Index> index;
  if constexpr (std::is_same_v<Index, HashIndex>) {
    index = std::make_unique<HashIndex>(arena, kRecords);
  } else {
    index = std::make_unique<Index>(arena);
  }
  for (uint64_t k = 0; k < kRecords; ++k) {
    index->Insert(k, arena->AllocateRecord(8));
  }
  return index;
}

void BM_BTreeFind(benchmark::State& state) {
  static Arena arena;
  static auto index = BuildIndex<OlcBTree>(&arena);
  Rng rng(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->Find(rng.NextUint64(kRecords)));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_BTreeFind)->Threads(1)->Threads(4);

void BM_HashFind(benchmark::State& state) {
  static Arena arena;
  static auto index = BuildIndex<HashIndex>(&arena);
  Rng rng(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->Find(rng.NextUint64(kRecords)));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_HashFind)->Threads(1)->Threads(4);

void BM_SkiplistFind(benchmark::State& state) {
  static Arena arena;
  static auto index = BuildIndex<SwSkiplist>(&arena);
  Rng rng(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->Find(rng.NextUint64(kRecords)));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_SkiplistFind)->Threads(1)->Threads(4);

void BM_BTreeScan50(benchmark::State& state) {
  static Arena arena;
  static auto index = BuildIndex<OlcBTree>(&arena);
  Rng rng(state.thread_index() + 7);
  for (auto _ : state) {
    uint64_t sum = 0;
    index->Scan(rng.NextUint64(kRecords - 50), 50,
                [&](uint64_t k, Record*) {
                  sum += k;
                  return true;
                });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 50);
}
BENCHMARK(BM_BTreeScan50)->Threads(1)->Threads(4);

void BM_SkiplistScan50(benchmark::State& state) {
  static Arena arena;
  static auto index = BuildIndex<SwSkiplist>(&arena);
  Rng rng(state.thread_index() + 7);
  for (auto _ : state) {
    uint64_t sum = 0;
    index->Scan(rng.NextUint64(kRecords - 50), 50,
                [&](uint64_t k, Record*) {
                  sum += k;
                  return true;
                });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 50);
}
BENCHMARK(BM_SkiplistScan50)->Threads(1)->Threads(4);

void BM_BTreeInsert(benchmark::State& state) {
  static Arena arena;
  static OlcBTree index(&arena);
  static std::atomic<uint64_t> next{1ull << 40};
  for (auto _ : state) {
    uint64_t k = next.fetch_add(1, std::memory_order_relaxed);
    index.Insert(k, arena.AllocateRecord(8));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_BTreeInsert)->Threads(1)->Threads(4);

}  // namespace
}  // namespace bionicdb::baseline

BENCHMARK_MAIN();
