// Shared plumbing for the experiment harnesses.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation (section 5): it builds the simulated BionicDB engine (and,
// where the figure calls for it, the native Silo baseline), runs the
// workload, and prints the same rows/series the paper reports.
//
// All binaries accept:
//   --quick     smaller populations/transaction counts (CI-friendly)
//   --smoke     minimal single-config run (implies --quick; used by the
//               bench_smoke ctest target to exercise the JSON report path)
//   --seed=N    workload RNG seed (default 42)
//   --help      print the accepted flags and exit
//
// Unknown flags are an error (exit 2): a typo like --qiuck silently
// running the full-size sweep wastes a CI hour before anyone notices.
#ifndef BIONICDB_BENCH_BENCH_UTIL_H_
#define BIONICDB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/random.h"
#include "common/table_printer.h"
#include "core/engine.h"
#include "host/driver.h"

namespace bionicdb::bench {

struct BenchArgs {
  /// Simulator execution mode for engine-backed runs (results are
  /// bit-identical across all three; the flag exists so determinism can be
  /// demonstrated — and CI can exercise every mode — from one binary).
  enum class SimMode { kSerial, kEventDriven, kParallel };

  bool quick = false;
  /// Minimal run: one small configuration, no native baselines. Exercises
  /// the full measurement + JSON-report path in seconds for CI smoke.
  bool smoke = false;
  uint64_t seed = 42;
  SimMode mode = SimMode::kSerial;
  /// CC scheme filter for the CC-diversity benches: "to", "sgt", "mvcc"
  /// or "all" (other benches ignore it).
  std::string cc = "all";
  /// Index batch size override for the batched-traversal benches (0 =
  /// keep each leg's default; other benches ignore it).
  uint32_t batch = 0;
  /// Scan length override for the range-scan legs (0 = leg default).
  uint32_t scan_len = 0;

  void ApplyMode(core::EngineOptions* opts) const {
    switch (mode) {
      case SimMode::kSerial:
        break;
      case SimMode::kEventDriven:
        opts->timing.event_driven = true;
        break;
      case SimMode::kParallel:
        opts->timing.parallel_hosts = 4;
        break;
    }
  }

  const char* ModeName() const {
    switch (mode) {
      case SimMode::kSerial: return "serial";
      case SimMode::kEventDriven: return "event";
      case SimMode::kParallel: return "parallel";
    }
    return "?";
  }

  static void PrintUsage(const char* prog, std::FILE* out) {
    std::fprintf(out,
                 "usage: %s [--quick] [--smoke] [--seed=N] [--mode=M] "
                 "[--cc=S] [--batch=N] [--scan-len=N]\n"
                 "  --quick      smaller populations/transaction counts\n"
                 "  --smoke      minimal single-config run (implies "
                 "--quick)\n"
                 "  --seed=N     workload RNG seed (default 42)\n"
                 "  --mode=M     simulator mode: serial (default), event, "
                 "parallel\n"
                 "  --cc=S       CC scheme filter: to, sgt, mvcc, all "
                 "(default)\n"
                 "  --batch=N    index batch-size override for the "
                 "batched-traversal benches (0 = leg default)\n"
                 "  --scan-len=N scan-length override for the range-scan "
                 "legs (0 = leg default)\n"
                 "  --help       show this message\n",
                 prog);
  }

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    // Valued flags may be repeated only with the same value: --mode=event
    // --mode=serial is a conflict (which one did the caller mean?), not a
    // silent last-one-wins.
    const char* seen_mode = nullptr;
    const char* seen_seed = nullptr;
    const char* seen_cc = nullptr;
    const char* seen_batch = nullptr;
    const char* seen_scan_len = nullptr;
    auto conflict = [&](const char* prev, const char* cur) {
      if (prev != nullptr && std::strcmp(prev, cur) != 0) {
        std::fprintf(stderr,
                     "%s: conflicting flags '%s' and '%s' (pass each "
                     "valued flag at most once)\n",
                     argv[0], prev, cur);
        PrintUsage(argv[0], stderr);
        std::exit(2);
      }
    };
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        args.quick = true;
      } else if (std::strcmp(argv[i], "--smoke") == 0) {
        args.smoke = true;
        args.quick = true;
      } else if (std::strncmp(argv[i], "--mode=", 7) == 0) {
        conflict(seen_mode, argv[i]);
        seen_mode = argv[i];
        const char* m = argv[i] + 7;
        if (std::strcmp(m, "serial") == 0) {
          args.mode = SimMode::kSerial;
        } else if (std::strcmp(m, "event") == 0) {
          args.mode = SimMode::kEventDriven;
        } else if (std::strcmp(m, "parallel") == 0) {
          args.mode = SimMode::kParallel;
        } else {
          std::fprintf(stderr, "%s: bad value in '%s'\n", argv[0], argv[i]);
          PrintUsage(argv[0], stderr);
          std::exit(2);
        }
      } else if (std::strncmp(argv[i], "--cc=", 5) == 0) {
        conflict(seen_cc, argv[i]);
        seen_cc = argv[i];
        const char* s = argv[i] + 5;
        if (std::strcmp(s, "to") != 0 && std::strcmp(s, "sgt") != 0 &&
            std::strcmp(s, "mvcc") != 0 && std::strcmp(s, "all") != 0) {
          std::fprintf(stderr, "%s: bad value in '%s'\n", argv[0], argv[i]);
          PrintUsage(argv[0], stderr);
          std::exit(2);
        }
        args.cc = s;
      } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
        conflict(seen_batch, argv[i]);
        seen_batch = argv[i];
        char* end = nullptr;
        unsigned long v = std::strtoul(argv[i] + 8, &end, 10);
        if (end == argv[i] + 8 || *end != '\0' || v > 1u << 20) {
          std::fprintf(stderr, "%s: bad value in '%s'\n", argv[0], argv[i]);
          PrintUsage(argv[0], stderr);
          std::exit(2);
        }
        args.batch = uint32_t(v);
      } else if (std::strncmp(argv[i], "--scan-len=", 11) == 0) {
        conflict(seen_scan_len, argv[i]);
        seen_scan_len = argv[i];
        char* end = nullptr;
        unsigned long v = std::strtoul(argv[i] + 11, &end, 10);
        if (end == argv[i] + 11 || *end != '\0' || v > 1u << 20) {
          std::fprintf(stderr, "%s: bad value in '%s'\n", argv[0], argv[i]);
          PrintUsage(argv[0], stderr);
          std::exit(2);
        }
        args.scan_len = uint32_t(v);
      } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
        conflict(seen_seed, argv[i]);
        seen_seed = argv[i];
        char* end = nullptr;
        args.seed = std::strtoull(argv[i] + 7, &end, 10);
        if (end == argv[i] + 7 || *end != '\0') {
          std::fprintf(stderr, "%s: bad value in '%s'\n", argv[0], argv[i]);
          PrintUsage(argv[0], stderr);
          std::exit(2);
        }
      } else if (std::strcmp(argv[i], "--help") == 0) {
        PrintUsage(argv[0], stdout);
        std::exit(0);
      } else {
        std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], argv[i]);
        PrintUsage(argv[0], stderr);
        std::exit(2);
      }
    }
    return args;
  }

  /// True when `name` ("to"/"sgt"/"mvcc") passes the --cc filter.
  bool CcEnabled(const char* name) const {
    return cc == "all" || cc == name;
  }
};

inline void PrintHeader(const char* id, const char* what) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("==============================================================\n");
}

/// Threads to sweep for the Silo baseline (the paper used up to 24). On
/// hosts with few cores the sweep still runs up to 4 oversubscribed
/// threads so the comparison table has shape; the harness prints the
/// actual core count so readers can judge the scaling rows.
inline uint32_t MaxBaselineThreads() {
  uint32_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  uint32_t cap = hw < 4 ? 4 : hw;
  return cap < 24 ? cap : 24;
}

inline void PrintHostInfo() {
  std::printf("(Silo baseline host: %u hardware threads)\n",
              std::thread::hardware_concurrency());
}

/// Formats ops/s as the paper's units.
inline std::string Ktps(double tps) {
  return TablePrinter::Num(tps / 1e3, 1);
}
inline std::string Mops(double ops) {
  return TablePrinter::Num(ops / 1e6, 2);
}

}  // namespace bionicdb::bench

#endif  // BIONICDB_BENCH_BENCH_UTIL_H_
