// Simulator-speed harness: how much wall-clock time does event-driven
// cycle skipping (TimingConfig::event_driven, DESIGN.md section 10) save,
// and is it really free?
//
// Each leg runs the exact same workload twice — cycle-by-cycle, then
// event-driven — on freshly built engines, asserts the two modes agree
// bit-for-bit (committed/failed/retries, final cycle count, the full
// engine stats JSON), and reports simulated-cycles-per-wall-second for
// both plus the speedup. Equivalence violations exit non-zero, so the
// ctest smoke fixture doubles as a coarse differential test (the fine
// grained one is tests/sim_warp_test).
//
// Legs:
//  * dram_heavy — dependency-serialized YCSB (one access per transaction,
//    one softcore context, 4x DRAM latency): the worker spends almost
//    every cycle parked in a quiescent DRAM wait (block ingest, RET
//    blocked on the single outstanding index op), the best case for
//    warping. This is the headline speedup number.
//  * default — YCSB-C under the paper's default configuration, where
//    batched dispatch keeps the softcore busy-polling the coprocessor's
//    in-flight cap (dense wake points); reported so readers see the
//    realistic (smaller) win.
//  * dense — the adversarial case for warping: YCSB-C with near-SRAM DRAM
//    latency and deep softcore contexts, so the workers are busy nearly
//    every cycle and there is almost nothing to skip. This leg is the
//    per-cycle ticking stress test the simulator-performance work (and
//    scripts/perf_gate.py) tracks.
//  * parallel_multisite — 4-partition multisite YCSB, event-driven serial
//    vs 4 host-thread islands (TimingConfig::parallel_hosts, DESIGN.md
//    section 11), again asserted bit-identical. The >= 1.5x speedup floor
//    is only enforced when the host actually has >= 4 hardware threads
//    (CI runners and laptops qualify; a 1-core container still reports
//    the number but cannot be expected to beat its own serial run).
#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

using bench::BenchArgs;

struct Leg {
  const char* name;
  uint32_t workers;
  uint32_t max_contexts;
  uint32_t accesses_per_txn;
  uint32_t dram_latency_cycles;
};

struct ModeResult {
  host::RunResult run;
  std::string engine_stats_json;
  sim::Simulator::WarpStats warp;
};

ModeResult RunMode(const BenchArgs& args, const Leg& leg, bool event_driven,
                   bench::BenchReport* report) {
  core::EngineOptions opts;
  opts.n_workers = leg.workers;
  opts.softcore.max_contexts = leg.max_contexts;
  opts.timing.dram_latency_cycles = leg.dram_latency_cycles;
  opts.timing.event_driven = event_driven;
  core::BionicDb engine(opts);

  workload::YcsbOptions yopts;
  yopts.mode = workload::YcsbOptions::Mode::kReadOnly;
  yopts.accesses_per_txn = leg.accesses_per_txn;
  yopts.records_per_partition = args.smoke ? 2'000 : args.quick ? 5'000
                                                               : 20'000;
  yopts.payload_len = args.quick ? 64 : 256;
  workload::Ycsb ycsb(&engine, yopts);
  if (auto s = ycsb.Setup(); !s.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }

  const uint64_t txns_per_worker = args.smoke ? 200 : args.quick ? 400
                                                                 : 2'000;
  Rng rng(args.seed);
  host::TxnList txns;
  for (uint32_t w = 0; w < leg.workers; ++w) {
    for (uint64_t i = 0; i < txns_per_worker; ++i) {
      txns.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }

  ModeResult mr;
  mr.run = host::RunToCompletion(&engine, txns);
  StatsRegistry engine_stats;
  engine.CollectStats(&engine_stats);
  mr.engine_stats_json = engine_stats.ToJson(0);
  mr.warp = engine.simulator().warp_stats();

  std::string label = std::string(leg.name) + "/" +
                      (event_driven ? "event_driven" : "cycle_accurate");
  report->AddEngineRun(label, &engine, mr.run);
  return mr;
}

/// Asserts the two modes produced bit-identical simulation outcomes.
void CheckEquivalent(const Leg& leg, const ModeResult& base,
                     const ModeResult& event) {
  bool ok = base.run.committed == event.run.committed &&
            base.run.failed == event.run.failed &&
            base.run.retries == event.run.retries &&
            base.run.cycles == event.run.cycles &&
            base.engine_stats_json == event.engine_stats_json;
  if (ok) return;
  std::fprintf(stderr,
               "sim_speed: leg '%s': event-driven mode DIVERGED from "
               "cycle-accurate\n"
               "  committed %llu vs %llu, failed %llu vs %llu, "
               "retries %llu vs %llu, cycles %llu vs %llu, stats %s\n",
               leg.name, (unsigned long long)base.run.committed,
               (unsigned long long)event.run.committed,
               (unsigned long long)base.run.failed,
               (unsigned long long)event.run.failed,
               (unsigned long long)base.run.retries,
               (unsigned long long)event.run.retries,
               (unsigned long long)base.run.cycles,
               (unsigned long long)event.run.cycles,
               base.engine_stats_json == event.engine_stats_json
                   ? "identical"
                   : "DIFFER");
  std::exit(1);
}

void RunLeg(const BenchArgs& args, const Leg& leg, TablePrinter* table,
            bench::BenchReport* report) {
  ModeResult base = RunMode(args, leg, /*event_driven=*/false, report);
  ModeResult event = RunMode(args, leg, /*event_driven=*/true, report);
  CheckEquivalent(leg, base, event);

  const double base_cps = base.run.SimCyclesPerSecond();
  const double event_cps = event.run.SimCyclesPerSecond();
  const double speedup = base_cps > 0 ? event_cps / base_cps : 0;

  StatsRegistry& reg = report->AddRun(std::string("speed/") + leg.name);
  reg.SetCounter("cycles", base.run.cycles);
  reg.SetGauge("cycle_accurate/wall_seconds", base.run.wall_seconds);
  reg.SetGauge("cycle_accurate/sim_cycles_per_second", base_cps);
  reg.SetGauge("event_driven/wall_seconds", event.run.wall_seconds);
  reg.SetGauge("event_driven/sim_cycles_per_second", event_cps);
  reg.SetCounter("event_driven/warps", event.warp.warps);
  reg.SetCounter("event_driven/skipped_cycles", event.warp.skipped_cycles);
  reg.SetGauge("speedup_vs_cycle_accurate", speedup);

  const double skipped_pct =
      base.run.cycles > 0
          ? 100.0 * double(event.warp.skipped_cycles) / double(base.run.cycles)
          : 0;
  table->AddRow({leg.name, "cycle_accurate",
                 std::to_string(base.run.cycles),
                 TablePrinter::Num(base.run.wall_seconds * 1e3, 1),
                 bench::Mops(base_cps), "-", "-"});
  table->AddRow({leg.name, "event_driven",
                 std::to_string(event.run.cycles),
                 TablePrinter::Num(event.run.wall_seconds * 1e3, 1),
                 bench::Mops(event_cps), TablePrinter::Num(skipped_pct, 1),
                 TablePrinter::Num(speedup, 1) + "x"});
}

ModeResult RunParallelMode(const BenchArgs& args, uint32_t parallel_hosts,
                           bench::BenchReport* report) {
  core::EngineOptions opts;
  opts.n_workers = 4;
  opts.timing.event_driven = true;  // serial baseline also warps
  opts.timing.parallel_hosts = parallel_hosts;
  core::BionicDb engine(opts);

  workload::YcsbOptions yopts;
  yopts.mode = workload::YcsbOptions::Mode::kMultisite;
  yopts.accesses_per_txn = 4;
  yopts.records_per_partition = args.smoke ? 2'000 : args.quick ? 5'000
                                                               : 20'000;
  yopts.payload_len = args.quick ? 64 : 256;
  workload::Ycsb ycsb(&engine, yopts);
  if (auto s = ycsb.Setup(); !s.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }

  const uint64_t txns_per_worker = args.smoke ? 150 : args.quick ? 400
                                                                 : 2'000;
  Rng rng(args.seed);
  host::TxnList txns;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (uint64_t i = 0; i < txns_per_worker; ++i) {
      txns.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }

  ModeResult mr;
  mr.run = host::RunToCompletion(&engine, txns);
  StatsRegistry engine_stats;
  engine.CollectStats(&engine_stats);
  mr.engine_stats_json = engine_stats.ToJson(0);
  mr.warp = engine.simulator().warp_stats();
  report->AddEngineRun(parallel_hosts > 0
                           ? "parallel_multisite/parallel_islands"
                           : "parallel_multisite/event_driven",
                       &engine, mr.run);
  return mr;
}

void RunParallelLeg(const BenchArgs& args, TablePrinter* table,
                    bench::BenchReport* report) {
  const Leg leg{"parallel_multisite", 4, 32, 4, 95};
  ModeResult base = RunParallelMode(args, /*parallel_hosts=*/0, report);
  ModeResult par = RunParallelMode(args, /*parallel_hosts=*/4, report);
  CheckEquivalent(leg, base, par);

  const double base_cps = base.run.SimCyclesPerSecond();
  const double par_cps = par.run.SimCyclesPerSecond();
  const double speedup = base_cps > 0 ? par_cps / base_cps : 0;
  const uint32_t hw_threads = host::HostHardwareThreads();

  StatsRegistry& reg = report->AddRun("speed/parallel_multisite");
  reg.SetCounter("cycles", base.run.cycles);
  reg.SetGauge("event_driven/wall_seconds", base.run.wall_seconds);
  reg.SetGauge("event_driven/sim_cycles_per_second", base_cps);
  reg.SetGauge("parallel_islands/wall_seconds", par.run.wall_seconds);
  reg.SetGauge("parallel_islands/sim_cycles_per_second", par_cps);
  reg.SetCounter("parallel_islands/islands", 4);
  reg.SetCounter("host_hardware_threads", hw_threads);
  reg.SetGauge("speedup_vs_event_driven", speedup);

  table->AddRow({leg.name, "event_driven", std::to_string(base.run.cycles),
                 TablePrinter::Num(base.run.wall_seconds * 1e3, 1),
                 bench::Mops(base_cps), "-", "-"});
  table->AddRow({leg.name, "parallel_x4", std::to_string(par.run.cycles),
                 TablePrinter::Num(par.run.wall_seconds * 1e3, 1),
                 bench::Mops(par_cps), "-",
                 TablePrinter::Num(speedup, 2) + "x"});
  std::printf("parallel_multisite: %.2fx speedup with 4 islands on %u "
              "hardware threads\n",
              speedup, hw_threads);
  if (hw_threads >= 4 && speedup < 1.5) {
    std::fprintf(stderr,
                 "sim_speed: parallel islands speedup %.2fx < 1.5x floor on "
                 "a %u-thread host\n",
                 speedup, hw_threads);
    std::exit(1);
  }
}

/// Fixed-work host calibration microloop: a deterministic xorshift chain
/// whose iterations/second gauge a machine's single-thread integer speed.
/// scripts/perf_gate.py divides sim-cycles/s by this before comparing a
/// fresh report against the checked-in baseline, so a slower CI runner
/// does not read as a simulator regression. Best-of-3 so a scheduler
/// hiccup degrades toward the true machine speed, not away from it.
void RunCalibration(bench::BenchReport* report) {
  constexpr uint64_t kIters = 20'000'000;
  double best_ops = 0;
  uint64_t sink = 0;
  for (int rep = 0; rep < 3; ++rep) {
    uint64_t x = 0x9e3779b97f4a7c15ULL;
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < kIters; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    const auto t1 = std::chrono::steady_clock::now();
    sink += x;  // keep the loop observable
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (secs > 0) best_ops = std::max(best_ops, double(kIters) / secs);
  }
  StatsRegistry& reg = report->AddRun("calibration");
  reg.SetGauge("host_ops_per_second", best_ops);
  reg.SetCounter("iterations", kIters);
  reg.SetCounter("checksum", sink & 0xffff);
}

void Run(const BenchArgs& args, bench::BenchReport* report) {
  bench::PrintHeader("sim_speed",
                     "event-driven cycle skipping vs per-cycle ticking");
  TablePrinter table({"workload", "mode", "cycles", "wall (ms)",
                      "Mcycles/s", "skipped %", "speedup"});
  RunCalibration(report);
  // 4x the HC-2's already-high random-access latency + a fully
  // dependency-serialized workload (one context, one access per txn):
  // nearly every cycle is a quiescent DRAM wait.
  RunLeg(args, Leg{"dram_heavy", 1, 1, 1, 380}, &table, report);
  RunLeg(args, Leg{"default", args.smoke ? 2u : 4u, 32, 16, 95}, &table,
         report);
  // Dense activity: near-SRAM latency keeps every pipeline stage fed, so
  // the stall fraction collapses and per-cycle ticking throughput is pure
  // simulator overhead (the perf-gate's most sensitive probe).
  RunLeg(args, Leg{"dense", args.smoke ? 2u : 4u, 64, 8, 12}, &table,
         report);
  RunParallelLeg(args, &table, report);
  table.Print();
  std::printf("(all modes asserted bit-identical: cycles, outcomes, "
              "engine stats JSON)\n");
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  auto args = bionicdb::bench::BenchArgs::Parse(argc, argv);
  bionicdb::bench::BenchReport report("sim_speed");
  bionicdb::Run(args, &report);
  report.WriteFile();
  return 0;
}
