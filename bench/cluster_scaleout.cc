// Cluster scale-out: throughput vs multisite fraction at 1/4/16 chips.
//
// Instantiates a sharded cluster (DESIGN.md section 14) of N chips, each
// with `kWorkersPerChip` partition workers, and drives the multisite
// update workload closed-loop while sweeping the fraction of transactions
// that write a foreign chip (and therefore commit through the two-phase
// distributed protocol over the inter-chip fabric tier).
//
// The harness enforces the scale-out story it exists to demonstrate and
// exits non-zero on violation:
//  * at a fixed chip count, throughput is monotone non-increasing in the
//    multisite fraction (2PC rounds are strictly extra work);
//  * at 0% multisite, the largest chip count beats one chip by at least
//    the sharding floor (16 chips >= 10x one chip; the smoke pair of 4
//    chips >= 2x) — partitions are independent, so sharding must scale.
//
// Emits BENCH_cluster_scaleout.json; the cluster_scaleout ctest fixture
// runs `--smoke` and validates the report (per-chip closure, inter-chip
// link counters, cross-run monotonicity) with validate_report.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "cluster/cluster.h"
#include "common/random.h"
#include "common/table_printer.h"
#include "host/driver.h"
#include "workload/ycsb.h"

namespace bionicdb::bench {
namespace {

constexpr uint32_t kWorkersPerChip = 2;

struct Point {
  uint32_t n_chips = 0;
  double fraction = 0;
  double tps = 0;
  double p50 = 0;
  double p99 = 0;
  uint64_t committed = 0;
  uint64_t retries = 0;
};

Point RunOne(const BenchArgs& args, BenchReport* report, uint32_t n_chips,
             double fraction) {
  cluster::ClusterOptions copts;
  copts.n_chips = n_chips;
  copts.workers_per_chip = kWorkersPerChip;
  copts.engine.seed = args.seed;
  args.ApplyMode(&copts.engine);
  cluster::ClusterDb cluster(copts);

  workload::YcsbOptions wopts;
  wopts.mode = workload::YcsbOptions::Mode::kMultisiteUpdate;
  wopts.records_per_partition = args.quick ? 2'000 : 20'000;
  wopts.payload_len = 64;
  wopts.accesses_per_txn = 4;
  wopts.updates_per_txn = 2;
  wopts.multisite_fraction = fraction;
  wopts.workers_per_chip = n_chips > 1 ? kWorkersPerChip : 0;
  workload::Ycsb ycsb(&cluster.engine(), wopts);
  Status st = ycsb.Setup();
  if (!st.ok()) {
    std::fprintf(stderr, "cluster_scaleout: setup failed: %s\n",
                 st.ToString().c_str());
    std::exit(1);
  }

  // Seeded per chip count only: at a fixed chip count every fraction
  // starts from the same stream, so the single-chip runs (which never
  // draw the multisite coin) are byte-identical across the sweep and the
  // multi-chip runs differ only where the coin decides.
  Rng rng(args.seed ^ (uint64_t(n_chips) << 32));
  host::ClosedLoopOptions lopts;
  lopts.inflight_per_worker = 4;
  lopts.txns_per_worker = args.quick ? 40 : 250;
  host::ClusterRunResult result = host::RunClusterClosedLoop(
      &cluster.engine(), n_chips > 1 ? kWorkersPerChip : 0,
      ycsb.Factory(&rng), lopts);

  char label[64];
  std::snprintf(label, sizeof label, "chips%u_f%.2f", n_chips, fraction);
  report->AddClusterRun(label, &cluster, result, fraction);

  Point p;
  p.n_chips = n_chips;
  p.fraction = fraction;
  p.tps = result.tps;
  p.p50 = result.latency_cycles.Quantile(0.5);
  p.p99 = result.latency_cycles.Quantile(0.99);
  p.committed = result.committed;
  p.retries = result.retries;
  return p;
}

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("cluster_scaleout",
              "sharded throughput vs multisite fraction (2PC over the "
              "inter-chip fabric tier)");
  std::printf("(mode: %s)\n", args.ModeName());

  const std::vector<uint32_t> chip_counts =
      args.smoke ? std::vector<uint32_t>{1, 4}
                 : std::vector<uint32_t>{1, 4, 16};
  const std::vector<double> fractions =
      args.smoke ? std::vector<double>{0.0, 0.5}
                 : std::vector<double>{0.0, 0.05, 0.2, 0.5, 1.0};

  BenchReport report("cluster_scaleout");
  TablePrinter table({"chips", "multisite", "tps", "p50 cyc", "p99 cyc",
                      "committed", "retries"});
  std::map<uint32_t, std::vector<Point>> by_chips;
  for (uint32_t chips : chip_counts) {
    for (double f : fractions) {
      Point p = RunOne(args, &report, chips, f);
      by_chips[chips].push_back(p);
      table.AddRow({std::to_string(chips), TablePrinter::Num(f, 2),
                    Ktps(p.tps) + " K", TablePrinter::Num(p.p50, 0),
                    TablePrinter::Num(p.p99, 0), std::to_string(p.committed),
                    std::to_string(p.retries)});
    }
  }
  table.Print();
  report.WriteFile();

  // Self-enforced acceptance: monotone degradation with multisite fraction
  // at every chip count (5% slack for workload-mix noise).
  bool ok = true;
  for (const auto& [chips, points] : by_chips) {
    for (size_t i = 1; i < points.size(); ++i) {
      if (points[i].tps > points[i - 1].tps * 1.05) {
        std::fprintf(stderr,
                     "FAIL: %u chips: tps rose %.0f -> %.0f as multisite "
                     "fraction rose %.2f -> %.2f\n",
                     chips, points[i - 1].tps, points[i].tps,
                     points[i - 1].fraction, points[i].fraction);
        ok = false;
      }
    }
  }
  // Scale-out floor at 0% multisite: independent shards must scale.
  const double base_tps = by_chips.begin()->second.front().tps;
  const uint32_t top_chips = chip_counts.back();
  const double top_tps = by_chips[top_chips].front().tps;
  const double floor = top_chips >= 16 ? 10.0 : 2.0;
  if (top_tps < base_tps * floor) {
    std::fprintf(stderr,
                 "FAIL: %u-chip tps %.0f < %.1fx the 1-chip tps %.0f at 0%% "
                 "multisite\n",
                 top_chips, top_tps, floor, base_tps);
    ok = false;
  }
  if (ok) {
    std::printf("scale-out checks passed: monotone in multisite fraction; "
                "%u-chip/1-chip ratio %.1fx (floor %.1fx)\n",
                top_chips, top_tps / base_tps, floor);
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bionicdb::bench

int main(int argc, char** argv) { return bionicdb::bench::Main(argc, argv); }
