// Ablation — DRAM latency sensitivity: the memory-wall thesis.
//
// The paper's starting point (section 3.1) is that OLTP is bound by memory
// stalls that software techniques cannot hide, and that hardware pipelining
// provides the missing memory-level parallelism. This sweep varies the
// simulated DRAM's random-access latency across three machines — the full
// design, intra-transaction parallelism only, and a no-MLP strawman —
// showing the pipelining advantage GROW with latency.
#include "bench/bench_util.h"
#include "bench/report.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

bench::BenchReport* g_report = nullptr;

double Run(const bench::BenchArgs& args, uint32_t latency,
           bool interleaving, uint32_t inflight = 16) {
  core::EngineOptions opts;
  opts.n_workers = 4;
  opts.timing.dram_latency_cycles = latency;
  opts.softcore.interleaving = interleaving;
  opts.coproc.max_inflight = inflight;
  core::BionicDb engine(opts);
  workload::YcsbOptions yopts;
  yopts.records_per_partition = args.quick ? 5'000 : 20'000;
  yopts.payload_len = args.quick ? 64 : 1024;
  workload::Ycsb ycsb(&engine, yopts);
  if (!ycsb.Setup().ok()) return 0;
  Rng rng(args.seed);
  const uint64_t txns = args.quick ? 150 : 800;
  host::TxnList list;
  for (uint32_t w = 0; w < 4; ++w) {
    for (uint64_t i = 0; i < txns; ++i) {
      list.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }
  auto r = host::RunToCompletion(&engine, list);
  g_report->AddEngineRun(
      "latency=" + std::to_string(latency) + "/" +
          (interleaving ? "full" : inflight > 1 ? "intra" : "nomlp"),
      &engine, r);
  return r.tps;
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  using namespace bionicdb;
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::BenchReport report("ablation_latency");
  g_report = &report;
  bench::PrintHeader("Ablation",
                     "DRAM latency sensitivity, YCSB-C (pipelined vs serial)");
  // Three machines: the full design (interleaving + 16 in-flight index
  // ops), intra-transaction parallelism only (serial execution, 16
  // in-flight), and no memory-level parallelism at all (serial, 1
  // in-flight) — the software-without-prefetching strawman of section 3.1.
  TablePrinter table({"DRAM latency (cycles)", "ns @125MHz", "full (kTps)",
                      "intra-only (kTps)", "no-MLP (kTps)",
                      "full vs no-MLP"});
  double full400 = 0, nomlp400 = 0;
  for (uint32_t latency : {25u, 50u, 95u, 200u, 400u}) {
    double full = Run(args, latency, true, 16);
    double intra = Run(args, latency, false, 16);
    double nomlp = Run(args, latency, false, 1);
    if (latency == 400) {
      full400 = full;
      nomlp400 = nomlp;
    }
    table.AddRow({std::to_string(latency),
                  TablePrinter::Num(latency * 8.0, 0), bench::Ktps(full),
                  bench::Ktps(intra), bench::Ktps(nomlp),
                  TablePrinter::Num(nomlp > 0 ? full / nomlp : 0, 1) + "x"});
  }
  table.Print();
  std::printf(
      "\n(The pipelining advantage GROWS with memory latency — at 400\n"
      " cycles the full design is %.1fx the MLP-less machine. Memory-level\n"
      " parallelism is the whole game, section 3.1.)\n",
      nomlp400 > 0 ? full400 / nomlp400 : 0);
  report.WriteFile();
  return 0;
}
