// Ablation — hash-chain pressure and Traverse decoupling.
//
// Paper section 4.4.1: the Traverse stage is decoupled from KeyComp so
// long conflict chains do not block ops that terminate at the first node,
// and "multiple Traverse stages could be populated" for chain-heavy
// workloads. This sweep loads a deliberately undersized hash table at
// several fill factors and measures search throughput vs the number of
// Traverse units.
#include "bench/bench_util.h"
#include "bench/report.h"
#include "workload/kv.h"

namespace bionicdb {
namespace {

bench::BenchReport* g_report = nullptr;

double Run(const bench::BenchArgs& args, uint64_t keys_per_partition,
           uint32_t n_traverse) {
  core::EngineOptions opts;
  opts.n_workers = 1;
  opts.coproc.max_inflight = 16;
  opts.coproc.hash.n_traverse_units = n_traverse;
  core::BionicDb engine(opts);
  // Fixed 1K-bucket table: fill factor = keys / 1024 = average chain length.
  db::TableSchema schema;
  schema.id = 0;
  schema.key_len = 8;
  schema.payload_len = 8;
  schema.hash_buckets = 1024;
  if (!engine.database().CreateTable(schema).ok()) return 0;
  uint64_t payload = 1;
  for (uint64_t k = 0; k < keys_per_partition; ++k) {
    if (!engine.database().LoadU64(0, 0, k, &payload, 8).ok()) return 0;
  }
  // Register the bulk-search procedure through KvBench's program by hand:
  // reuse KvBench on a second table is not possible (table ids are dense),
  // so assemble the same 60-op search procedure here.
  isa::ProgramBuilder b;
  constexpr uint32_t kOps = 60;
  b.Logic();
  for (uint32_t i = 0; i < kOps; ++i) {
    b.Search({.table_id = 0, .cp = isa::Reg(i), .key_offset = int32_t(8 * i)});
  }
  b.Yield();
  b.Commit();
  for (uint32_t i = 0; i < kOps; ++i) b.Ret(1, isa::Reg(i));
  b.CommitTxn();
  b.Abort().AbortTxn();
  auto program = b.Build();
  if (!program.ok()) return 0;
  if (!engine.RegisterProcedure(1, program.value(), 8 * kOps).ok()) return 0;

  Rng rng(args.seed);
  const uint64_t txns = args.quick ? 20 : 100;
  host::TxnList list;
  for (uint64_t i = 0; i < txns; ++i) {
    db::TxnBlock block = engine.AllocateBlock(1);
    for (uint32_t a = 0; a < kOps; ++a) {
      block.WriteKeyU64(int64_t(8 * a), rng.NextUint64(keys_per_partition));
    }
    list.emplace_back(0, block.base());
  }
  auto r = host::RunToCompletion(&engine, list);
  g_report->AddEngineRun("keys=" + std::to_string(keys_per_partition) +
                             "/traverse_units=" + std::to_string(n_traverse),
                         &engine, r);
  return r.tps * kOps;
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  using namespace bionicdb;
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::BenchReport report("ablation_traverse");
  g_report = &report;
  bench::PrintHeader("Ablation",
                     "Search throughput vs chain length and Traverse units");
  TablePrinter table({"avg chain length", "1 unit (Mops)", "2 units (Mops)",
                      "4 units (Mops)"});
  for (uint64_t chain : {1u, 4u, 8u, 16u}) {
    uint64_t keys = 1024 * chain;
    table.AddRow({std::to_string(chain), bench::Mops(Run(args, keys, 1)),
                  bench::Mops(Run(args, keys, 2)),
                  bench::Mops(Run(args, keys, 4))});
  }
  table.Print();
  report.WriteFile();
  return 0;
}
