// Figure 13 — single-site vs multisite transactions over the on-chip
// message-passing channels.
//
// Paper result shape to reproduce: a cross-partition YCSB-C transaction
// with 75 % remote accesses performs almost identically to the all-local
// ideal — the 6-cycle on-chip request/response exchange makes inter-worker
// communication effectively free.
#include "bench/bench_util.h"
#include "bench/report.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

using bench::BenchArgs;

bench::BenchReport* g_report = nullptr;

double Run(const BenchArgs& args, double remote_fraction,
           comm::Topology topology, uint64_t* messages) {
  core::EngineOptions opts;
  opts.n_workers = 4;
  opts.topology = topology;
  core::BionicDb engine(opts);
  workload::YcsbOptions yopts;
  // Both variants use the multisite program (identical instruction
  // overhead); only the partition targets differ.
  yopts.mode = workload::YcsbOptions::Mode::kMultisite;
  yopts.remote_fraction = remote_fraction;
  yopts.records_per_partition = args.quick ? 5'000 : 50'000;
  yopts.payload_len = args.quick ? 64 : 1024;
  workload::Ycsb ycsb(&engine, yopts);
  if (!ycsb.Setup().ok()) return 0;
  Rng rng(args.seed);
  const uint64_t txns = args.quick ? 200 : 1'500;
  host::TxnList list;
  for (uint32_t w = 0; w < 4; ++w) {
    for (uint64_t i = 0; i < txns; ++i) {
      list.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }
  auto r = host::RunToCompletion(&engine, list);
  char label[64];
  std::snprintf(label, sizeof label, "remote=%.2f/%s", remote_fraction,
                topology == comm::Topology::kCrossbar ? "crossbar" : "ring");
  g_report->AddEngineRun(label, &engine, r);
  if (messages != nullptr) *messages = engine.fabric().messages_sent();
  return r.tps;
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  using namespace bionicdb;
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::BenchReport report("fig13_multisite");
  g_report = &report;
  bench::PrintHeader(
      "Figure 13",
      "Single-site (100% local) vs multisite (75% remote) YCSB-C");
  TablePrinter table(
      {"variant", "throughput (kTps)", "on-chip messages", "overhead"});
  uint64_t m_local = 0, m_remote = 0;
  double local = Run(args, 0.0, comm::Topology::kCrossbar, &m_local);
  double multi = Run(args, 0.75, comm::Topology::kCrossbar, &m_remote);
  table.AddRow({"single-site", bench::Ktps(local), std::to_string(m_local),
                "-"});
  table.AddRow({"multisite 75%", bench::Ktps(multi), std::to_string(m_remote),
                TablePrinter::Num(
                    local > 0 ? (1.0 - multi / local) * 100.0 : 0, 1) +
                    "%"});
  // Future-work topology: a ring instead of the crossbar.
  uint64_t m_ring = 0;
  double ring = Run(args, 0.75, comm::Topology::kRing, &m_ring);
  table.AddRow({"multisite 75% (ring)", bench::Ktps(ring),
                std::to_string(m_ring),
                TablePrinter::Num(
                    local > 0 ? (1.0 - ring / local) * 100.0 : 0, 1) +
                    "%"});
  table.Print();
  report.WriteFile();
  return 0;
}
