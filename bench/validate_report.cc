// Validates a BENCH_*.json report emitted by a bench binary (the
// bench_smoke ctest target runs this over a fresh fig9_overall report).
//
// Checks:
//  * the document parses as JSON;
//  * required keys exist: "bench" (string), "schema_version" (number),
//    "runs" (non-empty array of {label, stats});
//  * every run with engine stats carries sim cycle/throughput metrics and
//    the per-message-class fabric counters (sent >= delivered per class);
//  * every worker's cycle breakdown is exhaustive: busy + dram_stall +
//    hazard_block + backpressure + idle (+ frozen, present only under
//    fault injection) matches cycles/total within 1%;
//  * every open-loop run (marked by run/offered_tps) carries the latency
//    SLO gauges (run/latency/p50|p99|p999, ordered), run/goodput and
//    run/shed, with shed <= submitted, goodput <= offered load, and
//    submitted == committed + failed + shed.
//
// Usage: validate_report <path> [<path>...]; exits non-zero on the first
// failed file.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.h"

namespace bionicdb {
namespace {

bool Fail(const std::string& path, const std::string& what) {
  std::fprintf(stderr, "%s: FAIL: %s\n", path.c_str(), what.c_str());
  return false;
}

/// Fetches a required numeric member of `stats` at `key` into `*out`.
bool Num(const json::Value& stats, const std::string& key, double* out) {
  const json::Value* v = stats.FindPath(key);
  if (v == nullptr || !v->is_number()) return false;
  *out = v->number();
  return true;
}

/// Every engine run must expose the per-message-class fabric counters
/// (fabric/<class>/sent|delivered|retransmitted for all four classes), and
/// a class can never deliver more envelopes than were sent — retransmits
/// are counted separately, and the reliability layer dedups duplicates
/// before they reach an inbox.
bool CheckFabricClasses(const std::string& path, const std::string& label,
                        const json::Value& stats) {
  static const char* kClasses[] = {"index_op", "mem_op", "index_result",
                                   "mem_result"};
  for (const char* cls : kClasses) {
    const std::string base = std::string("fabric/") + cls;
    double sent, delivered, retransmitted;
    if (!Num(stats, base + "/sent", &sent) ||
        !Num(stats, base + "/delivered", &delivered) ||
        !Num(stats, base + "/retransmitted", &retransmitted)) {
      return Fail(path, "run '" + label + "': missing " + base +
                            "/sent|delivered|retransmitted");
    }
    if (sent < delivered) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "run '%s' %s: delivered %.0f exceeds sent %.0f",
                    label.c_str(), base.c_str(), delivered, sent);
      return Fail(path, buf);
    }
  }
  return true;
}

/// Open-loop runs (identified by run/offered_tps) must report the latency
/// SLO fields, and the admission/shedding arithmetic must close: shedding
/// can never exceed the offered transactions, goodput can never exceed the
/// offered load, and every offered transaction must end in exactly one of
/// committed/failed/shed.
bool CheckOpenLoopRun(const std::string& path, const std::string& label,
                      const json::Value& stats) {
  double offered;
  if (!Num(stats, "run/offered_tps", &offered)) return true;  // closed loop
  double p50, p99, p999, goodput, shed, submitted, committed, failed;
  if (!Num(stats, "run/latency/p50", &p50) ||
      !Num(stats, "run/latency/p99", &p99) ||
      !Num(stats, "run/latency/p999", &p999)) {
    return Fail(path, "open-loop run '" + label +
                          "': missing run/latency/p50|p99|p999");
  }
  if (!Num(stats, "run/goodput", &goodput)) {
    return Fail(path, "open-loop run '" + label + "': missing run/goodput");
  }
  if (!Num(stats, "run/shed", &shed) ||
      !Num(stats, "run/submitted", &submitted) ||
      !Num(stats, "run/committed", &committed) ||
      !Num(stats, "run/failed", &failed)) {
    return Fail(path, "open-loop run '" + label +
                          "': missing run/shed|submitted|committed|failed");
  }
  char buf[200];
  if (p50 > p99 || p99 > p999) {
    std::snprintf(buf, sizeof buf,
                  "open-loop run '%s': latency quantiles out of order "
                  "(p50 %.0f, p99 %.0f, p999 %.0f)",
                  label.c_str(), p50, p99, p999);
    return Fail(path, buf);
  }
  if (shed > submitted) {
    std::snprintf(buf, sizeof buf,
                  "open-loop run '%s': shed %.0f exceeds submitted %.0f",
                  label.c_str(), shed, submitted);
    return Fail(path, buf);
  }
  if (goodput > offered * (1 + 1e-9)) {
    std::snprintf(buf, sizeof buf,
                  "open-loop run '%s': goodput %.0f exceeds offered load "
                  "%.0f",
                  label.c_str(), goodput, offered);
    return Fail(path, buf);
  }
  if (committed + failed + shed != submitted) {
    std::snprintf(buf, sizeof buf,
                  "open-loop run '%s': committed %.0f + failed %.0f + shed "
                  "%.0f != submitted %.0f",
                  label.c_str(), committed, failed, shed, submitted);
    return Fail(path, buf);
  }
  return true;
}

bool CheckWorkerBreakdown(const std::string& path, const std::string& label,
                          const std::string& worker,
                          const json::Value& cycles) {
  double total, busy, dram, hazard, bp, idle;
  if (!Num(cycles, "total", &total) || !Num(cycles, "busy", &busy) ||
      !Num(cycles, "dram_stall", &dram) ||
      !Num(cycles, "hazard_block", &hazard) ||
      !Num(cycles, "backpressure", &bp) || !Num(cycles, "idle", &idle)) {
    return Fail(path, "run '" + label + "' worker " + worker +
                          ": incomplete cycle breakdown");
  }
  // `frozen` exists only in fault-injection runs (optional, default 0).
  double frozen = 0;
  Num(cycles, "frozen", &frozen);
  double sum = busy + dram + hazard + bp + idle + frozen;
  if (total <= 0) {
    return Fail(path,
                "run '" + label + "' worker " + worker + ": zero cycles");
  }
  if (std::fabs(sum - total) > 0.01 * total) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "run '%s' worker %s: breakdown sum %.0f != total %.0f "
                  "(>1%% off)",
                  label.c_str(), worker.c_str(), sum, total);
    return Fail(path, buf);
  }
  return true;
}

bool ValidateFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Fail(path, "cannot open");
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = json::Value::Parse(buf.str());
  if (!parsed.ok()) {
    return Fail(path, "JSON parse error: " + parsed.status().ToString());
  }
  const json::Value& doc = parsed.value();

  const json::Value* bench = doc.Find("bench");
  if (bench == nullptr || !bench->is_string()) {
    return Fail(path, "missing string key 'bench'");
  }
  const json::Value* version = doc.Find("schema_version");
  if (version == nullptr || !version->is_number()) {
    return Fail(path, "missing numeric key 'schema_version'");
  }
  const json::Value* runs = doc.Find("runs");
  if (runs == nullptr || !runs->is_array()) {
    return Fail(path, "missing array key 'runs'");
  }
  if (runs->array().empty()) return Fail(path, "'runs' is empty");

  size_t engine_runs = 0;
  size_t workers_checked = 0;
  for (const json::Value& run : runs->array()) {
    const json::Value* label_v = run.Find("label");
    const json::Value* stats = run.Find("stats");
    if (label_v == nullptr || !label_v->is_string() || stats == nullptr ||
        !stats->is_object()) {
      return Fail(path, "run without string 'label' + object 'stats'");
    }
    const std::string& label = label_v->string();
    const json::Value* workers = stats->Find("workers");
    if (workers == nullptr) continue;  // analytic run: no engine tree
    ++engine_runs;
    double ignored;
    if (!Num(*stats, "sim/cycles", &ignored)) {
      return Fail(path, "run '" + label + "': missing sim/cycles");
    }
    if (!Num(*stats, "run/committed", &ignored)) {
      return Fail(path, "run '" + label + "': missing run/committed");
    }
    // Wall-clock provenance: CI trend dashboards key off these two, so a
    // report that drops them is broken even if the sim stats are fine.
    if (!Num(*stats, "run/wall_seconds", &ignored)) {
      return Fail(path, "run '" + label + "': missing run/wall_seconds");
    }
    if (!Num(*stats, "run/sim_cycles_per_second", &ignored)) {
      return Fail(path,
                  "run '" + label + "': missing run/sim_cycles_per_second");
    }
    if (!CheckFabricClasses(path, label, *stats)) return false;
    if (!CheckOpenLoopRun(path, label, *stats)) return false;
    if (!workers->is_object() || workers->members().empty()) {
      return Fail(path, "run '" + label + "': empty workers tree");
    }
    for (const auto& [worker_id, worker] : workers->members()) {
      const json::Value* cycles = worker.Find("cycles");
      if (cycles == nullptr) {
        return Fail(path, "run '" + label + "' worker " + worker_id +
                              ": missing cycles");
      }
      if (!CheckWorkerBreakdown(path, label, worker_id, *cycles)) {
        return false;
      }
      ++workers_checked;
    }
  }
  std::printf("%s: OK (%zu runs, %zu engine runs, %zu worker breakdowns)\n",
              path.c_str(), runs->array().size(), engine_runs,
              workers_checked);
  return true;
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <BENCH_*.json> [...]\n", argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    if (!bionicdb::ValidateFile(argv[i])) return 1;
  }
  return 0;
}
