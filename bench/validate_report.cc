// Validates a BENCH_*.json report emitted by a bench binary (the
// bench_smoke ctest target runs this over a fresh fig9_overall report).
//
// Checks:
//  * the document parses as JSON;
//  * required keys exist: "bench" (string), "schema_version" (number),
//    "runs" (non-empty array of {label, stats});
//  * every run with engine stats carries sim cycle/throughput metrics and
//    the per-message-class fabric counters (sent >= delivered per class);
//  * every worker's cycle breakdown is exhaustive: busy + dram_stall +
//    hazard_block + backpressure + idle (+ frozen, present only under
//    fault injection) matches cycles/total within 1%;
//  * every open-loop run (marked by run/offered_tps) carries the latency
//    SLO gauges (run/latency/p50|p99|p999, ordered), run/goodput and
//    run/shed, with shed <= submitted, goodput <= offered load, and
//    submitted == committed + failed + shed;
//  * every batched-traversal run (marked by run/index/batch/
//    batches_flushed) carries the burst coalescing counters and the
//    probes-per-batch median, with coalesced <= total accesses;
//  * every CC-diversity run (label "cc/..." or "sw/...") carries the
//    per-scheme counters (run/cc/scheme|retries|aborts|conservation_ok),
//    conservation holds, aborts never exceed attempts, and MVCC runs never
//    free more versions than they created;
//  * every simulator-speed summary run (label "speed/<leg>") carries
//    positive cycles and a positive sim_cycles_per_second for at least one
//    simulation mode, and any report containing speed runs also carries a
//    "calibration" run with positive host_ops_per_second — the perf-gate
//    normalization denominator (scripts/perf_gate.py refuses reports
//    without it, so catch the omission here first).
//
// Usage: validate_report <path> [<path>...]; exits non-zero on the first
// failed file.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

namespace bionicdb {
namespace {

bool Fail(const std::string& path, const std::string& what) {
  std::fprintf(stderr, "%s: FAIL: %s\n", path.c_str(), what.c_str());
  return false;
}

/// Fetches a required numeric member of `stats` at `key` into `*out`.
bool Num(const json::Value& stats, const std::string& key, double* out) {
  const json::Value* v = stats.FindPath(key);
  if (v == nullptr || !v->is_number()) return false;
  *out = v->number();
  return true;
}

/// Every engine run must expose the per-message-class fabric counters
/// (fabric/<class>/sent|delivered|retransmitted for all eight classes,
/// the 2PC classes included), and a class can never deliver more
/// envelopes than were sent — retransmits are counted separately, and the
/// reliability layer dedups duplicates before they reach an inbox.
bool CheckFabricClasses(const std::string& path, const std::string& label,
                        const json::Value& stats) {
  static const char* kClasses[] = {"index_op",    "mem_op",
                                   "index_result", "mem_result",
                                   "prepare_req",  "prepare_ack",
                                   "commit_req",   "commit_ack"};
  for (const char* cls : kClasses) {
    const std::string base = std::string("fabric/") + cls;
    double sent, delivered, retransmitted;
    if (!Num(stats, base + "/sent", &sent) ||
        !Num(stats, base + "/delivered", &delivered) ||
        !Num(stats, base + "/retransmitted", &retransmitted)) {
      return Fail(path, "run '" + label + "': missing " + base +
                            "/sent|delivered|retransmitted");
    }
    if (sent < delivered) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "run '%s' %s: delivered %.0f exceeds sent %.0f",
                    label.c_str(), base.c_str(), delivered, sent);
      return Fail(path, buf);
    }
  }
  return true;
}

/// Open-loop runs (identified by run/offered_tps) must report the latency
/// SLO fields, and the admission/shedding arithmetic must close: shedding
/// can never exceed the offered transactions, goodput can never exceed the
/// offered load, and every offered transaction must end in exactly one of
/// committed/failed/shed.
bool CheckOpenLoopRun(const std::string& path, const std::string& label,
                      const json::Value& stats) {
  double offered;
  if (!Num(stats, "run/offered_tps", &offered)) return true;  // closed loop
  double p50, p99, p999, goodput, shed, submitted, committed, failed;
  if (!Num(stats, "run/latency/p50", &p50) ||
      !Num(stats, "run/latency/p99", &p99) ||
      !Num(stats, "run/latency/p999", &p999)) {
    return Fail(path, "open-loop run '" + label +
                          "': missing run/latency/p50|p99|p999");
  }
  if (!Num(stats, "run/goodput", &goodput)) {
    return Fail(path, "open-loop run '" + label + "': missing run/goodput");
  }
  if (!Num(stats, "run/shed", &shed) ||
      !Num(stats, "run/submitted", &submitted) ||
      !Num(stats, "run/committed", &committed) ||
      !Num(stats, "run/failed", &failed)) {
    return Fail(path, "open-loop run '" + label +
                          "': missing run/shed|submitted|committed|failed");
  }
  char buf[200];
  if (p50 > p99 || p99 > p999) {
    std::snprintf(buf, sizeof buf,
                  "open-loop run '%s': latency quantiles out of order "
                  "(p50 %.0f, p99 %.0f, p999 %.0f)",
                  label.c_str(), p50, p99, p999);
    return Fail(path, buf);
  }
  if (shed > submitted) {
    std::snprintf(buf, sizeof buf,
                  "open-loop run '%s': shed %.0f exceeds submitted %.0f",
                  label.c_str(), shed, submitted);
    return Fail(path, buf);
  }
  if (goodput > offered * (1 + 1e-9)) {
    std::snprintf(buf, sizeof buf,
                  "open-loop run '%s': goodput %.0f exceeds offered load "
                  "%.0f",
                  label.c_str(), goodput, offered);
    return Fail(path, buf);
  }
  if (committed + failed + shed != submitted) {
    std::snprintf(buf, sizeof buf,
                  "open-loop run '%s': committed %.0f + failed %.0f + shed "
                  "%.0f != submitted %.0f",
                  label.c_str(), committed, failed, shed, submitted);
    return Fail(path, buf);
  }
  return true;
}

/// Batched-traversal runs (identified by run/index/batch/batches_flushed,
/// emitted only for TraversalMode::kBatched engines) must carry the burst
/// coalescing counters and the probes-per-batch median, and the burst
/// arithmetic must close: a row hit is a subset of the issued accesses,
/// so coalesced can never exceed total, and a run that flushed batches
/// must have collected at least one probe per batch.
bool CheckBatchRun(const std::string& path, const std::string& label,
                   const json::Value& stats) {
  double flushed;
  if (!Num(stats, "run/index/batch/batches_flushed", &flushed)) {
    return true;  // per-op run: no batch block
  }
  double total, coalesced, p50;
  if (!Num(stats, "run/index/batch/burst_total_accesses", &total) ||
      !Num(stats, "run/index/batch/burst_coalesced_accesses", &coalesced) ||
      !Num(stats, "run/index/batch/probes_per_batch_p50", &p50)) {
    return Fail(path, "batched run '" + label +
                          "': missing run/index/batch/"
                          "burst_total_accesses|burst_coalesced_accesses|"
                          "probes_per_batch_p50");
  }
  char buf[200];
  if (coalesced > total) {
    std::snprintf(buf, sizeof buf,
                  "batched run '%s': burst_coalesced_accesses %.0f exceeds "
                  "burst_total_accesses %.0f",
                  label.c_str(), coalesced, total);
    return Fail(path, buf);
  }
  if (flushed > 0 && p50 < 1) {
    std::snprintf(buf, sizeof buf,
                  "batched run '%s': %.0f batches flushed but "
                  "probes_per_batch_p50 %.2f < 1",
                  label.c_str(), flushed, p50);
    return Fail(path, buf);
  }
  return true;
}

/// CC-diversity runs ("cc/<contention>/<scheme>" for the simulated engine,
/// "sw/<contention>/<scheme>" for the software CcScheme tier) must carry
/// the per-scheme counters bench/cc_contention promises, and the abort
/// arithmetic must close: every abort was an attempt (initial submission
/// or retry), the SmallBank conservation flag must be set, and MVCC runs
/// can never free more versions than they created.
bool CheckCcRun(const std::string& path, const std::string& label,
                const json::Value& stats) {
  if (label.rfind("cc/", 0) != 0 && label.rfind("sw/", 0) != 0) return true;
  double scheme, retries, aborts, conserved, submitted, committed;
  if (!Num(stats, "run/cc/scheme", &scheme) ||
      !Num(stats, "run/cc/retries", &retries) ||
      !Num(stats, "run/cc/aborts", &aborts) ||
      !Num(stats, "run/cc/conservation_ok", &conserved)) {
    return Fail(path, "cc run '" + label +
                          "': missing run/cc/scheme|retries|aborts|"
                          "conservation_ok");
  }
  if (!Num(stats, "run/submitted", &submitted) ||
      !Num(stats, "run/committed", &committed)) {
    return Fail(path,
                "cc run '" + label + "': missing run/submitted|committed");
  }
  char buf[200];
  if (conserved != 1) {
    return Fail(path, "cc run '" + label + "': conservation_ok != 1 "
                      "(SmallBank total assets drifted)");
  }
  if (committed > submitted) {
    std::snprintf(buf, sizeof buf,
                  "cc run '%s': committed %.0f exceeds submitted %.0f",
                  label.c_str(), committed, submitted);
    return Fail(path, buf);
  }
  if (aborts > submitted + retries) {
    std::snprintf(buf, sizeof buf,
                  "cc run '%s': aborts %.0f exceed attempts (submitted "
                  "%.0f + retries %.0f)",
                  label.c_str(), aborts, submitted, retries);
    return Fail(path, buf);
  }
  if (scheme == 2) {  // mvcc
    double created, freed;
    if (!Num(stats, "run/cc/versions_created", &created) ||
        !Num(stats, "run/cc/versions_freed", &freed)) {
      return Fail(path, "mvcc run '" + label +
                            "': missing run/cc/versions_created|freed");
    }
    if (freed > created) {
      std::snprintf(buf, sizeof buf,
                    "mvcc run '%s': versions_freed %.0f exceeds "
                    "versions_created %.0f",
                    label.c_str(), freed, created);
      return Fail(path, buf);
    }
  }
  if (scheme == 1 &&
      !Num(stats, "run/cc/cycle_aborts", &retries)) {  // sgt
    return Fail(path,
                "sgt run '" + label + "': missing run/cc/cycle_aborts");
  }
  return true;
}

/// One cluster run's contribution to the cross-run scale-out check.
struct ClusterRunPoint {
  std::string label;
  double n_chips = 0;
  double fraction = 0;
  double tps = 0;
};

/// Cluster runs (identified by run/cluster/n_chips) must close their
/// accounting across chips: the per-chip rows sum exactly to the run
/// totals (counted once — a double-counted merge would show up here as a
/// 2x mismatch), every transaction ends committed or failed, and the
/// merged latency quantiles are ordered. Multi-chip runs must also carry
/// the inter-chip link counters with sent >= delivered per link.
bool CheckClusterRun(const std::string& path, const std::string& label,
                     const json::Value& stats, ClusterRunPoint* point) {
  double n_chips;
  if (!Num(stats, "run/cluster/n_chips", &n_chips)) return true;
  double fraction, submitted, committed, failed, tps, p50, p99;
  if (!Num(stats, "run/cluster/multisite_fraction", &fraction) ||
      !Num(stats, "run/submitted", &submitted) ||
      !Num(stats, "run/committed", &committed) ||
      !Num(stats, "run/failed", &failed) || !Num(stats, "run/tps", &tps) ||
      !Num(stats, "run/latency/p50", &p50) ||
      !Num(stats, "run/latency/p99", &p99)) {
    return Fail(path, "cluster run '" + label +
                          "': missing run/cluster or run/ metrics");
  }
  char buf[220];
  if (committed + failed != submitted) {
    std::snprintf(buf, sizeof buf,
                  "cluster run '%s': committed %.0f + failed %.0f != "
                  "submitted %.0f",
                  label.c_str(), committed, failed, submitted);
    return Fail(path, buf);
  }
  if (p50 > p99) {
    std::snprintf(buf, sizeof buf,
                  "cluster run '%s': merged latency quantiles out of order "
                  "(p50 %.0f > p99 %.0f)",
                  label.c_str(), p50, p99);
    return Fail(path, buf);
  }
  double chip_submitted = 0, chip_committed = 0, chip_failed = 0;
  for (uint32_t c = 0; c < uint32_t(n_chips); ++c) {
    const std::string p = "run/chips/" + std::to_string(c) + "/";
    double s, k, f;
    if (!Num(stats, p + "submitted", &s) || !Num(stats, p + "committed", &k) ||
        !Num(stats, p + "failed", &f)) {
      return Fail(path, "cluster run '" + label + "': missing " + p +
                            "submitted|committed|failed");
    }
    chip_submitted += s;
    chip_committed += k;
    chip_failed += f;
  }
  if (chip_submitted != submitted || chip_committed != committed ||
      chip_failed != failed) {
    std::snprintf(buf, sizeof buf,
                  "cluster run '%s': per-chip sums (%.0f/%.0f/%.0f) != run "
                  "totals (%.0f/%.0f/%.0f) — double-counted merge?",
                  label.c_str(), chip_submitted, chip_committed, chip_failed,
                  submitted, committed, failed);
    return Fail(path, buf);
  }
  if (n_chips > 1) {
    bool any_link = false;
    for (uint32_t s = 0; s < uint32_t(n_chips) && !any_link; ++s) {
      for (uint32_t d = 0; d < uint32_t(n_chips); ++d) {
        if (s == d) continue;
        const std::string base = "fabric/interchip/c" + std::to_string(s) +
                                 "_c" + std::to_string(d);
        double sent, delivered, peak;
        if (!Num(stats, base + "/sent", &sent) ||
            !Num(stats, base + "/delivered", &delivered) ||
            !Num(stats, base + "/queue_peak", &peak)) {
          return Fail(path, "cluster run '" + label + "': missing " + base +
                                "/sent|delivered|queue_peak");
        }
        if (sent < delivered) {
          std::snprintf(buf, sizeof buf,
                        "cluster run '%s' %s: delivered %.0f exceeds sent "
                        "%.0f",
                        label.c_str(), base.c_str(), delivered, sent);
          return Fail(path, buf);
        }
        any_link = true;
      }
    }
  }
  point->label = label;
  point->n_chips = n_chips;
  point->fraction = fraction;
  point->tps = tps;
  return true;
}

/// Scale-out sanity across a report's cluster runs: at a fixed chip count,
/// raising the multisite fraction can only cost throughput (2PC rounds
/// replace single-chip commits), so tps must be monotone non-increasing in
/// the fraction. A 5% slack absorbs workload-mix noise at nearby
/// fractions.
bool CheckClusterMonotonicity(const std::string& path,
                              const std::vector<ClusterRunPoint>& points) {
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = i + 1; j < points.size(); ++j) {
      const ClusterRunPoint& a = points[i];
      const ClusterRunPoint& b = points[j];
      if (a.n_chips != b.n_chips || a.fraction >= b.fraction) continue;
      if (b.tps > a.tps * 1.05) {
        char buf[220];
        std::snprintf(buf, sizeof buf,
                      "cluster runs '%s' -> '%s': tps rose %.0f -> %.0f as "
                      "multisite fraction rose %.2f -> %.2f",
                      a.label.c_str(), b.label.c_str(), a.tps, b.tps,
                      a.fraction, b.fraction);
        return Fail(path, buf);
      }
    }
  }
  return true;
}

/// Simulator-speed summary runs ("speed/<leg>") feed the CI perf ratchet:
/// each must report the leg's simulated cycle count and a positive
/// cycles-per-second gauge for at least one simulation mode, or the gate
/// downstream has nothing to compare.
bool CheckSpeedRun(const std::string& path, const std::string& label,
                   const json::Value& stats) {
  double cycles;
  if (!Num(stats, "cycles", &cycles) || cycles <= 0) {
    return Fail(path, "speed run '" + label + "': missing positive cycles");
  }
  static const char* kModes[] = {"cycle_accurate", "event_driven",
                                 "parallel"};
  for (const char* mode : kModes) {
    double cps;
    if (Num(stats, std::string(mode) + "/sim_cycles_per_second", &cps)) {
      if (cps <= 0) {
        return Fail(path, "speed run '" + label + "': non-positive " +
                              mode + "/sim_cycles_per_second");
      }
      return true;
    }
  }
  return Fail(path, "speed run '" + label +
                        "': no mode reports sim_cycles_per_second");
}

bool CheckWorkerBreakdown(const std::string& path, const std::string& label,
                          const std::string& worker,
                          const json::Value& cycles) {
  double total, busy, dram, hazard, bp, idle;
  if (!Num(cycles, "total", &total) || !Num(cycles, "busy", &busy) ||
      !Num(cycles, "dram_stall", &dram) ||
      !Num(cycles, "hazard_block", &hazard) ||
      !Num(cycles, "backpressure", &bp) || !Num(cycles, "idle", &idle)) {
    return Fail(path, "run '" + label + "' worker " + worker +
                          ": incomplete cycle breakdown");
  }
  // `frozen` exists only in fault-injection runs, `interchip_stall` only
  // in multi-chip runs (both optional, default 0).
  double frozen = 0;
  Num(cycles, "frozen", &frozen);
  double interchip = 0;
  Num(cycles, "interchip_stall", &interchip);
  double sum = busy + dram + hazard + bp + idle + frozen + interchip;
  if (total <= 0) {
    return Fail(path,
                "run '" + label + "' worker " + worker + ": zero cycles");
  }
  if (std::fabs(sum - total) > 0.01 * total) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "run '%s' worker %s: breakdown sum %.0f != total %.0f "
                  "(>1%% off)",
                  label.c_str(), worker.c_str(), sum, total);
    return Fail(path, buf);
  }
  return true;
}

bool ValidateFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Fail(path, "cannot open");
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = json::Value::Parse(buf.str());
  if (!parsed.ok()) {
    return Fail(path, "JSON parse error: " + parsed.status().ToString());
  }
  const json::Value& doc = parsed.value();

  const json::Value* bench = doc.Find("bench");
  if (bench == nullptr || !bench->is_string()) {
    return Fail(path, "missing string key 'bench'");
  }
  const json::Value* version = doc.Find("schema_version");
  if (version == nullptr || !version->is_number()) {
    return Fail(path, "missing numeric key 'schema_version'");
  }
  const json::Value* runs = doc.Find("runs");
  if (runs == nullptr || !runs->is_array()) {
    return Fail(path, "missing array key 'runs'");
  }
  if (runs->array().empty()) return Fail(path, "'runs' is empty");

  size_t engine_runs = 0;
  size_t workers_checked = 0;
  size_t speed_runs = 0;
  double calibration_ops = 0;
  std::vector<ClusterRunPoint> cluster_points;
  for (const json::Value& run : runs->array()) {
    const json::Value* label_v = run.Find("label");
    const json::Value* stats = run.Find("stats");
    if (label_v == nullptr || !label_v->is_string() || stats == nullptr ||
        !stats->is_object()) {
      return Fail(path, "run without string 'label' + object 'stats'");
    }
    const std::string& label = label_v->string();
    if (label.rfind("speed/", 0) == 0) {
      if (!CheckSpeedRun(path, label, *stats)) return false;
      ++speed_runs;
    }
    if (label == "calibration" &&
        !Num(*stats, "host_ops_per_second", &calibration_ops)) {
      return Fail(path, "calibration run: missing host_ops_per_second");
    }
    if (!CheckCcRun(path, label, *stats)) return false;
    const json::Value* workers = stats->Find("workers");
    if (workers == nullptr) continue;  // analytic run: no engine tree
    ++engine_runs;
    double ignored;
    if (!Num(*stats, "sim/cycles", &ignored)) {
      return Fail(path, "run '" + label + "': missing sim/cycles");
    }
    if (!Num(*stats, "run/committed", &ignored)) {
      return Fail(path, "run '" + label + "': missing run/committed");
    }
    // Wall-clock provenance: CI trend dashboards key off these two, so a
    // report that drops them is broken even if the sim stats are fine.
    if (!Num(*stats, "run/wall_seconds", &ignored)) {
      return Fail(path, "run '" + label + "': missing run/wall_seconds");
    }
    if (!Num(*stats, "run/sim_cycles_per_second", &ignored)) {
      return Fail(path,
                  "run '" + label + "': missing run/sim_cycles_per_second");
    }
    if (!CheckFabricClasses(path, label, *stats)) return false;
    if (!CheckOpenLoopRun(path, label, *stats)) return false;
    if (!CheckBatchRun(path, label, *stats)) return false;
    ClusterRunPoint point;
    if (!CheckClusterRun(path, label, *stats, &point)) return false;
    if (point.n_chips > 0) cluster_points.push_back(point);
    if (!workers->is_object() || workers->members().empty()) {
      return Fail(path, "run '" + label + "': empty workers tree");
    }
    for (const auto& [worker_id, worker] : workers->members()) {
      const json::Value* cycles = worker.Find("cycles");
      if (cycles == nullptr) {
        return Fail(path, "run '" + label + "' worker " + worker_id +
                              ": missing cycles");
      }
      if (!CheckWorkerBreakdown(path, label, worker_id, *cycles)) {
        return false;
      }
      ++workers_checked;
    }
  }
  if (!CheckClusterMonotonicity(path, cluster_points)) return false;
  if (speed_runs > 0 && calibration_ops <= 0) {
    return Fail(path, "report has speed/* runs but no calibration run with "
                      "positive host_ops_per_second (perf-gate "
                      "normalization denominator)");
  }
  std::printf("%s: OK (%zu runs, %zu engine runs, %zu worker breakdowns, "
              "%zu cluster runs)\n",
              path.c_str(), runs->array().size(), engine_runs,
              workers_checked, cluster_points.size());
  return true;
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <BENCH_*.json> [...]\n", argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    if (!bionicdb::ValidateFile(argv[i])) return 1;
  }
  return 0;
}
