// Ablation — contention sensitivity: key skew and batch sizing.
//
// The paper evaluates uniform YCSB and lightly-contended TPC-C; this
// ablation maps where the blind-reject timestamp CC (section 4.7) starts to
// hurt and what the two mitigation knobs buy:
//   * Zipfian skew sweep on a YCSB update mix — retry rate vs theta, with
//     and without the wait-on-dirty extension;
//   * interleaving batch size (softcore context count) sweep on the TPC-C
//     mix — bigger batches expose more index parallelism but put more
//     uncommitted writers in flight on the hot warehouse row.
#include "bench/bench_util.h"
#include "bench/report.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

bench::BenchReport* g_report = nullptr;

struct Outcome {
  double ktps = 0;
  double retry_rate = 0;
};

Outcome RunSkewed(const bench::BenchArgs& args, bool zipfian,
                  uint32_t wait_cycles) {
  core::EngineOptions opts;
  opts.n_workers = 4;
  opts.coproc.hash.dirty_wait_cycles = wait_cycles;
  core::BionicDb engine(opts);
  workload::YcsbOptions yopts;
  yopts.mode = workload::YcsbOptions::Mode::kUpdateMix;
  yopts.records_per_partition = args.quick ? 5'000 : 20'000;
  yopts.payload_len = 64;
  yopts.accesses_per_txn = 16;
  yopts.updates_per_txn = 8;
  yopts.zipfian = zipfian;
  workload::Ycsb ycsb(&engine, yopts);
  if (!ycsb.Setup().ok()) return {};
  Rng rng(args.seed);
  const uint64_t txns = args.quick ? 150 : 800;
  host::TxnList list;
  for (uint32_t w = 0; w < 4; ++w) {
    for (uint64_t i = 0; i < txns; ++i) {
      list.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }
  auto r = host::RunToCompletion(&engine, list);
  g_report->AddEngineRun(std::string("ycsb_update/") +
                             (zipfian ? "zipfian" : "uniform") +
                             "/wait=" + std::to_string(wait_cycles),
                         &engine, r);
  return {r.tps / 1e3,
          r.committed ? double(r.retries) / double(r.committed) : 0};
}

Outcome RunTpccBatch(const bench::BenchArgs& args, uint32_t max_contexts) {
  core::EngineOptions opts;
  opts.n_workers = 4;
  opts.softcore.max_contexts = max_contexts;
  core::BionicDb engine(opts);
  workload::TpccOptions topts;
  if (args.quick) {
    topts.districts_per_warehouse = 4;
    topts.customers_per_district = 100;
    topts.items = 2'000;
  }
  workload::Tpcc tpcc(&engine, topts);
  if (!tpcc.Setup().ok()) return {};
  Rng rng(args.seed);
  const uint64_t txns = args.quick ? 100 : 500;
  host::TxnList list;
  for (uint32_t w = 0; w < 4; ++w) {
    for (uint64_t i = 0; i < txns; ++i) {
      list.emplace_back(w, tpcc.MakeMixed(&rng, w));
    }
  }
  auto r = host::RunToCompletion(&engine, list);
  g_report->AddEngineRun("tpcc_mix/contexts=" + std::to_string(max_contexts),
                         &engine, r);
  return {r.tps / 1e3,
          r.committed ? double(r.retries) / double(r.committed) : 0};
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  using namespace bionicdb;
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::BenchReport report("ablation_contention");
  g_report = &report;
  bench::PrintHeader("Ablation", "Contention: skew and batch sizing");

  std::printf("\nYCSB update mix (8 of 16 accesses update):\n");
  TablePrinter skew({"distribution", "CC policy", "throughput (kTps)",
                     "retry rate"});
  for (bool zipfian : {false, true}) {
    for (uint32_t wait : {0u, 1024u}) {
      auto o = RunSkewed(args, zipfian, wait);
      skew.AddRow({zipfian ? "zipfian(0.99)" : "uniform",
                   wait == 0 ? "blind reject (paper)" : "wait 1024c",
                   TablePrinter::Num(o.ktps, 1),
                   TablePrinter::Num(o.retry_rate, 2)});
    }
  }
  skew.Print();

  std::printf("\nTPC-C mix vs interleaving batch size (softcore contexts):\n");
  TablePrinter batch({"max contexts", "throughput (kTps)", "retry rate"});
  for (uint32_t contexts : {1u, 2u, 4u, 8u, 16u, 32u}) {
    auto o = RunTpccBatch(args, contexts);
    batch.AddRow({std::to_string(contexts), TablePrinter::Num(o.ktps, 1),
                  TablePrinter::Num(o.retry_rate, 2)});
  }
  batch.Print();
  report.WriteFile();
  return 0;
}
