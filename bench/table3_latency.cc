// Table 3 — communication-latency comparison: on-chip message passing vs
// software message passing through the shared L3 or DDR3.
//
// The analytic half reproduces the paper's table exactly; the measured half
// exercises the simulated fabric and reports the actual request/response
// round-trip observed between two workers.
#include "bench/bench_util.h"
#include "bench/report.h"
#include "comm/channels.h"

int main(int argc, char** argv) {
  using namespace bionicdb;
  auto args = bench::BenchArgs::Parse(argc, argv);
  (void)args;

  bench::PrintHeader("Table 3", "Latencies of message-passing methods");
  sim::TimingConfig timing;
  comm::MessagingLatencyModel model{timing};
  TablePrinter table({"primitive", "latency (ns)", "total comm. delay (ns)"});
  table.AddRow({"On-chip MP", TablePrinter::Num(model.OnchipPrimitive(), 0),
                TablePrinter::Num(model.OnchipRoundTrip(), 0)});
  table.AddRow({"Software MP / L3 cache",
                TablePrinter::Num(model.L3Primitive(), 0),
                TablePrinter::Num(model.L3RoundTrip(), 0)});
  table.AddRow({"Software MP / DDR3",
                TablePrinter::Num(model.Ddr3Primitive(), 0),
                TablePrinter::Num(model.Ddr3RoundTrip(), 0)});
  table.Print();

  // Measured: push a request + response through the simulated crossbar.
  comm::CommFabric fabric(2, timing);
  uint64_t t0 = 100;
  fabric.Send(t0, 0, 1, comm::Envelope(comm::Header{}, comm::IndexOp{}));
  uint64_t t = t0;
  while (fabric.requests(1).empty()) fabric.Tick(++t);
  fabric.requests(1).pop_front();
  fabric.Send(t, 1, 0, comm::Envelope(comm::Header{}, comm::IndexResult{}));
  while (fabric.responses(0).empty()) fabric.Tick(++t);
  double ns = double(t - t0) * 1000.0 / timing.clock_mhz;
  std::printf("\nMeasured on-chip round trip through the simulated fabric: "
              "%llu cycles = %.0f ns at %.0f MHz\n",
              (unsigned long long)(t - t0), ns, timing.clock_mhz);

  bench::BenchReport report("table3_latency");
  StatsRegistry& reg = report.AddRun("analytic");
  reg.SetGauge("onchip/primitive_ns", model.OnchipPrimitive());
  reg.SetGauge("onchip/round_trip_ns", model.OnchipRoundTrip());
  reg.SetGauge("l3/primitive_ns", model.L3Primitive());
  reg.SetGauge("l3/round_trip_ns", model.L3RoundTrip());
  reg.SetGauge("ddr3/primitive_ns", model.Ddr3Primitive());
  reg.SetGauge("ddr3/round_trip_ns", model.Ddr3RoundTrip());
  StatsRegistry& measured = report.AddRun("measured");
  measured.SetCounter("round_trip_cycles", t - t0);
  measured.SetGauge("round_trip_ns", ns);
  report.WriteFile();
  return 0;
}
