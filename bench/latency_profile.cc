// Extension — throughput/latency profile under closed-loop load.
//
// The paper reports throughput only; OLTP deployments also care where the
// latency knee sits. This harness drives the engine with a closed-loop
// client (fixed outstanding transactions per worker) and reports the
// throughput and commit-latency percentiles as offered load grows, for
// YCSB-C and the TPC-C mix.
#include "bench/bench_util.h"
#include "bench/report.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

using bench::BenchArgs;

bench::BenchReport* g_report = nullptr;

void Profile(const BenchArgs& args, bool tpcc) {
  bench::PrintHeader("Latency profile",
                     tpcc ? "TPC-C NewOrder+Payment (closed loop)"
                          : "YCSB-C (closed loop)");
  TablePrinter table({"inflight/worker", "kTps", "p50 (us)", "p95 (us)",
                      "p99 (us)", "retries"});
  for (uint32_t inflight : {1u, 2u, 4u, 8u, 16u}) {
    core::EngineOptions opts;
    opts.n_workers = 4;
    if (tpcc) opts.softcore.max_contexts = 4;
    core::BionicDb engine(opts);
    const double us_per_cycle = 1.0 / opts.timing.clock_mhz;

    host::ClosedLoopOptions copts;
    copts.inflight_per_worker = inflight;
    copts.txns_per_worker = args.quick ? 100 : 400;

    host::ClosedLoopResult result;
    if (tpcc) {
      workload::TpccOptions topts;
      if (args.quick) {
        topts.districts_per_warehouse = 4;
        topts.customers_per_district = 100;
        topts.items = 2'000;
      }
      workload::Tpcc workload_obj(&engine, topts);
      if (!workload_obj.Setup().ok()) return;
      Rng rng(args.seed);
      result = host::RunClosedLoop(
          &engine,
          [&](db::WorkerId w) { return workload_obj.MakeMixed(&rng, w); },
          copts);
    } else {
      workload::YcsbOptions yopts;
      yopts.records_per_partition = args.quick ? 5'000 : 20'000;
      yopts.payload_len = args.quick ? 64 : 1024;
      workload::Ycsb workload_obj(&engine, yopts);
      if (!workload_obj.Setup().ok()) return;
      Rng rng(args.seed);
      result = host::RunClosedLoop(
          &engine,
          [&](db::WorkerId w) { return workload_obj.MakeTxn(&rng, w); },
          copts);
    }
    g_report->AddEngineRun(std::string(tpcc ? "tpcc_mix" : "ycsb_c") +
                               "/inflight=" + std::to_string(inflight),
                           &engine, result);
    table.AddRow(
        {std::to_string(inflight), bench::Ktps(result.tps),
         TablePrinter::Num(result.latency_cycles.Quantile(0.5) * us_per_cycle,
                           1),
         TablePrinter::Num(
             result.latency_cycles.Quantile(0.95) * us_per_cycle, 1),
         TablePrinter::Num(
             result.latency_cycles.Quantile(0.99) * us_per_cycle, 1),
         std::to_string(result.retries)});
  }
  table.Print();
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  auto args = bionicdb::bench::BenchArgs::Parse(argc, argv);
  bionicdb::bench::BenchReport report("latency_profile");
  bionicdb::g_report = &report;
  bionicdb::Profile(args, /*tpcc=*/false);
  bionicdb::Profile(args, /*tpcc=*/true);
  report.WriteFile();
  return 0;
}
