// Ablation — scaling BionicDB beyond the Virtex-5's four workers.
//
// The paper's future-work discussion (sections 4.6/7): datacenter-grade
// FPGAs fit tens-to-hundreds of workers, but the crossbar communication
// fabric "does not scale" — a ring (or tree) topology is required. This
// sweep runs the simulated design at worker counts a VU9P-class part could
// host and compares crossbar vs ring on the multisite workload.
#include "bench/bench_util.h"
#include "bench/report.h"
#include "power/model.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

bench::BenchReport* g_report = nullptr;

double Run(const bench::BenchArgs& args, uint32_t workers,
           comm::Topology topology, double remote_fraction,
           uint32_t workers_per_node = 0) {
  core::EngineOptions opts;
  opts.n_workers = workers;
  opts.topology = topology;
  opts.cluster.workers_per_node = workers_per_node;
  core::BionicDb engine(opts);
  workload::YcsbOptions yopts;
  yopts.mode = workload::YcsbOptions::Mode::kMultisite;
  yopts.remote_fraction = remote_fraction;
  yopts.records_per_partition = args.quick ? 2'000 : 10'000;
  yopts.payload_len = 64;
  workload::Ycsb ycsb(&engine, yopts);
  if (!ycsb.Setup().ok()) return 0;
  Rng rng(args.seed);
  const uint64_t txns = args.quick ? 100 : 500;
  host::TxnList list;
  for (uint32_t w = 0; w < workers; ++w) {
    for (uint64_t i = 0; i < txns; ++i) {
      list.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }
  auto r = host::RunToCompletion(&engine, list);
  char label[96];
  std::snprintf(label, sizeof label, "workers=%u/%s/remote=%.2f/nodes=%u",
                workers,
                topology == comm::Topology::kCrossbar ? "crossbar" : "ring",
                remote_fraction,
                workers_per_node > 0 ? workers / workers_per_node : 1);
  g_report->AddEngineRun(label, &engine, r);
  return r.tps;
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  using namespace bionicdb;
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::BenchReport report("ablation_scaling");
  g_report = &report;
  bench::PrintHeader("Ablation",
                     "Worker scaling, crossbar vs ring (75% remote YCSB-C)");
  TablePrinter table({"workers", "crossbar (kTps)", "ring (kTps)",
                      "2 nodes (kTps)", "local-only (kTps)"});
  for (uint32_t workers : {2u, 4u, 8u, 16u, 32u}) {
    if (args.quick && workers > 8) break;
    double xbar = Run(args, workers, comm::Topology::kCrossbar, 0.75);
    double ring = Run(args, workers, comm::Topology::kRing, 0.75);
    // Shared-nothing cluster of two FPGA nodes (section 4.6 future work):
    // remote accesses crossing the node boundary pay a ~2 us network hop.
    double nodes = Run(args, workers, comm::Topology::kCrossbar, 0.75,
                       workers > 1 ? workers / 2 : 0);
    double local = Run(args, workers, comm::Topology::kCrossbar, 0.0);
    table.AddRow({std::to_string(workers), bench::Ktps(xbar),
                  bench::Ktps(ring), bench::Ktps(nodes),
                  bench::Ktps(local)});
  }
  table.Print();

  power::DesignConfig per_worker;
  std::printf("\n(A VU9P-class device fits ~%u workers by the resource "
              "model; see table4_resources.)\n",
              power::ResourceModel::MaxWorkers(
                  power::VirtexUltrascalePlusVu9p(), per_worker));
  report.WriteFile();
  return 0;
}
