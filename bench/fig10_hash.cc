// Figure 10 — hash-index pipelining: throughput vs the maximum number of
// in-flight DB requests over the index coprocessor.
//
// Paper result shapes to reproduce:
//  (a) KV insert/search peak ~8.5/7 Mops, saturating between 12 and 16
//      in-flight requests;
//  (b) YCSB-C and (c) TPC-C NewOrder follow the same saturation trend
//      (ample intra-transaction parallelism);
//  (d) TPC-C Payment stops improving after ~4 (only 4 index operations).
//
// All transactions are local (the coprocessor is the unit under test).
#include "bench/bench_util.h"
#include "bench/report.h"
#include "workload/kv.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

using bench::BenchArgs;

const std::vector<uint32_t> kInflight = {1, 4, 8, 12, 16, 20, 24};

bench::BenchReport* g_report = nullptr;

std::vector<uint32_t> InflightSweep(const BenchArgs& args) {
  if (args.smoke) return {4, 16};
  return kInflight;
}

core::EngineOptions EngineOpts(uint32_t inflight) {
  core::EngineOptions opts;
  opts.n_workers = 4;
  opts.coproc.max_inflight = inflight;
  return opts;
}

void KvCurves(const BenchArgs& args) {
  bench::PrintHeader("Figure 10a",
                     "KeyValue bulk insert/search (Mops) vs in-flight cap");
  const uint64_t preload = args.quick ? 5'000 : 50'000;
  const uint64_t txns = args.quick ? 30 : 200;  // x60 ops each

  TablePrinter table({"in-flight", "insert (Mops)", "search (Mops)"});
  for (uint32_t inflight : InflightSweep(args)) {
    double mops[2];
    for (int mode = 0; mode < 2; ++mode) {
      core::BionicDb engine(EngineOpts(inflight));
      workload::KvOptions kopts;
      kopts.preload_per_partition = preload;
      workload::KvBench kv(&engine, kopts);
      if (!kv.Setup().ok()) return;
      Rng rng(args.seed);
      host::TxnList list;
      for (uint32_t w = 0; w < 4; ++w) {
        for (uint64_t i = 0; i < txns; ++i) {
          list.emplace_back(w, mode == 0
                                   ? kv.MakeInsertTxn(w, /*sequential=*/false)
                                   : kv.MakeSearchTxn(&rng, w));
        }
      }
      auto r = host::RunToCompletion(&engine, list);
      g_report->AddEngineRun(std::string("kv_") +
                                 (mode == 0 ? "insert" : "search") +
                                 "/inflight=" + std::to_string(inflight),
                             &engine, r);
      mops[mode] = r.tps * kopts.ops_per_txn;
    }
    table.AddRow({std::to_string(inflight), bench::Mops(mops[0]),
                  bench::Mops(mops[1])});
  }
  table.Print();
}

void YcsbCurve(const BenchArgs& args) {
  bench::PrintHeader("Figure 10b", "YCSB-C (kTps) vs in-flight cap");
  const uint32_t records = args.quick ? 5'000 : 50'000;
  const uint64_t txns = args.quick ? 200 : 1'500;
  TablePrinter table({"in-flight", "throughput (kTps)"});
  for (uint32_t inflight : InflightSweep(args)) {
    core::BionicDb engine(EngineOpts(inflight));
    workload::YcsbOptions yopts;
    yopts.records_per_partition = records;
    yopts.payload_len = args.quick ? 64 : 1024;
    workload::Ycsb ycsb(&engine, yopts);
    if (!ycsb.Setup().ok()) return;
    Rng rng(args.seed);
    host::TxnList list;
    for (uint32_t w = 0; w < 4; ++w) {
      for (uint64_t i = 0; i < txns; ++i) {
        list.emplace_back(w, ycsb.MakeTxn(&rng, w));
      }
    }
    auto r = host::RunToCompletion(&engine, list);
    g_report->AddEngineRun("ycsb_c/inflight=" + std::to_string(inflight),
                           &engine, r);
    table.AddRow({std::to_string(inflight), bench::Ktps(r.tps)});
  }
  table.Print();
}

void TpccCurves(const BenchArgs& args) {
  workload::TpccOptions topts;
  if (args.quick) {
    topts.districts_per_warehouse = 4;
    topts.customers_per_district = 100;
    topts.items = 2'000;
  }
  const uint64_t txns = args.quick ? 100 : 600;

  for (int which = 0; which < 2; ++which) {
    bench::PrintHeader(which == 0 ? "Figure 10c" : "Figure 10d",
                       which == 0 ? "TPC-C NewOrder (kTps) vs in-flight cap"
                                  : "TPC-C Payment (kTps) vs in-flight cap");
    TablePrinter table({"in-flight", "throughput (kTps)"});
    for (uint32_t inflight : InflightSweep(args)) {
      core::EngineOptions opts = EngineOpts(inflight);
      opts.softcore.max_contexts = 4;
      core::BionicDb engine(opts);
      // Local-only variant: the coprocessor is the unit under test.
      workload::TpccOptions local = topts;
      local.remote_neworder_fraction = 0;
      local.remote_payment_fraction = 0;
      workload::Tpcc tpcc(&engine, local);
      if (!tpcc.Setup().ok()) return;
      Rng rng(args.seed);
      host::TxnList list;
      for (uint32_t w = 0; w < 4; ++w) {
        for (uint64_t i = 0; i < txns; ++i) {
          list.emplace_back(w, which == 0 ? tpcc.MakeNewOrder(&rng, w)
                                          : tpcc.MakePayment(&rng, w));
        }
      }
      auto r = host::RunToCompletion(&engine, list);
      g_report->AddEngineRun(
          std::string(which == 0 ? "tpcc_neworder" : "tpcc_payment") +
              "/inflight=" + std::to_string(inflight),
          &engine, r);
      table.AddRow({std::to_string(inflight), bench::Ktps(r.tps)});
    }
    table.Print();
  }
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  auto args = bionicdb::bench::BenchArgs::Parse(argc, argv);
  bionicdb::bench::BenchReport report("fig10_hash");
  bionicdb::g_report = &report;
  bionicdb::KvCurves(args);
  bionicdb::YcsbCurve(args);
  bionicdb::TpccCurves(args);
  report.WriteFile();
  return 0;
}
