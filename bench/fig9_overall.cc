// Figure 9 — overall performance: BionicDB (1..4 workers, simulated at
// 125 MHz) vs the Silo baseline (native threads) on (a) YCSB-C and (b) the
// TPC-C NewOrder/Payment 50:50 mix.
//
// Paper result shapes to reproduce:
//  * YCSB-C: BionicDB beats Silo by ~4.5x at equal worker counts; Silo
//    needs many cores to match 4 BionicDB workers.
//  * TPC-C: comparable at equal workers — BionicDB is underutilised by the
//    Payment transaction's tiny index footprint and NewOrder's data
//    dependency.
#include "baseline/workloads.h"
#include "bench/bench_util.h"
#include "bench/report.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

using bench::BenchArgs;

void RunYcsbC(const BenchArgs& args, bench::BenchReport* report) {
  bench::PrintHeader("Figure 9a", "YCSB-C (read-only) overall throughput");
  const uint32_t records = args.smoke ? 2'000 : args.quick ? 5'000 : 50'000;
  const uint32_t payload = args.quick ? 64 : 1024;
  const uint64_t txns_per_worker =
      args.smoke ? 200 : args.quick ? 300 : 2'000;

  TablePrinter table({"system", "workers/threads", "throughput (kTps)"});
  const uint32_t max_workers = args.smoke ? 2 : 4;
  for (uint32_t workers = 1; workers <= max_workers; ++workers) {
    core::EngineOptions opts;
    opts.n_workers = workers;
    core::BionicDb engine(opts);
    workload::YcsbOptions yopts;
    yopts.mode = workload::YcsbOptions::Mode::kReadOnly;
    yopts.records_per_partition = records;
    yopts.payload_len = payload;
    workload::Ycsb ycsb(&engine, yopts);
    if (auto s = ycsb.Setup(); !s.ok()) {
      std::fprintf(stderr, "setup failed: %s\n", s.ToString().c_str());
      return;
    }
    Rng rng(args.seed);
    host::TxnList txns;
    for (uint32_t w = 0; w < workers; ++w) {
      for (uint64_t i = 0; i < txns_per_worker; ++i) {
        txns.emplace_back(w, ycsb.MakeTxn(&rng, w));
      }
    }
    auto r = host::RunToCompletion(&engine, txns);
    report->AddEngineRun("ycsb_c/workers=" + std::to_string(workers),
                         &engine, r);
    table.AddRow({"BionicDB", std::to_string(workers), bench::Ktps(r.tps)});
  }
  if (args.smoke) {
    table.Print();
    return;  // smoke: skip the native Silo sweep
  }

  const uint64_t silo_txns = args.quick ? 2'000 : 20'000;
  for (uint32_t threads : {1u, 2u, 4u, 8u, 12u, 16u, 20u, 24u}) {
    if (threads > bench::MaxBaselineThreads()) break;
    baseline::SiloYcsbOptions sopts;
    sopts.records = uint64_t(records) * 4;
    sopts.payload_len = args.quick ? 64 : 256;
    baseline::SiloYcsb silo(sopts);
    silo.Setup();
    auto r = silo.RunPointTxns(threads, silo_txns);
    table.AddRow({"Silo (Xeon)", std::to_string(threads), bench::Ktps(r.tps)});
  }
  table.Print();
  bench::PrintHostInfo();
}

void RunTpcc(const BenchArgs& args, bench::BenchReport* report) {
  bench::PrintHeader("Figure 9b", "TPC-C NewOrder+Payment 50:50 mix");
  workload::TpccOptions topts;
  if (args.quick) {
    topts.districts_per_warehouse = 4;
    topts.customers_per_district = 100;
    topts.items = 2'000;
    topts.ol_cnt = 10;
  }
  const uint64_t txns_per_worker = args.quick ? 150 : 1'000;

  TablePrinter table(
      {"system", "workers/threads", "throughput (kTps)", "retry rate"});
  const uint32_t max_workers = args.smoke ? 2 : 4;
  for (uint32_t workers = 1; workers <= max_workers; ++workers) {
    core::EngineOptions opts;
    opts.n_workers = workers;
    // Small batches keep single-warehouse contention manageable under the
    // blind-reject timestamp CC (see EXPERIMENTS.md).
    opts.softcore.max_contexts = 4;
    core::BionicDb engine(opts);
    workload::Tpcc tpcc(&engine, topts);
    if (auto s = tpcc.Setup(); !s.ok()) {
      std::fprintf(stderr, "setup failed: %s\n", s.ToString().c_str());
      return;
    }
    Rng rng(args.seed);
    host::TxnList txns;
    for (uint32_t w = 0; w < workers; ++w) {
      for (uint64_t i = 0; i < txns_per_worker; ++i) {
        txns.emplace_back(w, tpcc.MakeMixed(&rng, w));
      }
    }
    auto r = host::RunToCompletion(&engine, txns);
    report->AddEngineRun("tpcc_mix/workers=" + std::to_string(workers),
                         &engine, r);
    table.AddRow({"BionicDB", std::to_string(workers), bench::Ktps(r.tps),
                  TablePrinter::Num(double(r.retries) /
                                        double(r.committed ? r.committed : 1),
                                    2)});
  }
  if (args.smoke) {
    table.Print();
    return;  // smoke: skip the native Silo sweep
  }

  const uint64_t silo_txns = args.quick ? 1'000 : 5'000;
  for (uint32_t threads : {1u, 2u, 4u, 8u, 12u, 16u, 20u, 24u}) {
    if (threads > bench::MaxBaselineThreads()) break;
    baseline::SiloTpccOptions sopts;
    sopts.warehouses = threads;  // partition-per-thread, like the paper
    sopts.districts_per_warehouse = topts.districts_per_warehouse;
    sopts.customers_per_district = topts.customers_per_district;
    sopts.items = topts.items;
    sopts.ol_cnt = topts.ol_cnt;
    baseline::SiloTpcc silo(sopts);
    silo.Setup();
    auto r = silo.RunMix(threads, silo_txns);
    table.AddRow({"Silo (Xeon)", std::to_string(threads), bench::Ktps(r.tps),
                  TablePrinter::Num(double(r.aborted) /
                                        double(r.committed ? r.committed : 1),
                                    2)});
  }
  table.Print();
  bench::PrintHostInfo();
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  auto args = bionicdb::bench::BenchArgs::Parse(argc, argv);
  bionicdb::bench::BenchReport report("fig9_overall");
  bionicdb::RunYcsbC(args, &report);
  bionicdb::RunTpcc(args, &report);
  report.WriteFile();
  return 0;
}
