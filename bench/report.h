// Machine-readable bench reports.
//
// Every bench binary builds one BenchReport and writes it as
// BENCH_<name>.json next to the console tables, so the paper figures can be
// regenerated / regression-diffed without scraping stdout. Schema (see the
// "Observability" section of DESIGN.md):
//
//   {
//     "bench": "<name>",
//     "schema_version": 1,
//     "runs": [
//       { "label": "<config label>", "stats": { ...metric tree... } },
//       ...
//     ]
//   }
//
// The per-run stats tree is a StatsRegistry dump; engine-backed runs use
// AddEngineRun which captures the full simulator/worker/coprocessor stats
// (cycle breakdowns, DRAM channel utilisation, stall counters) plus the
// host driver's run metrics under "run/...".
#ifndef BIONICDB_BENCH_REPORT_H_
#define BIONICDB_BENCH_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/stats.h"
#include "core/engine.h"
#include "host/driver.h"

namespace bionicdb::bench {

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t run_count() const { return runs_.size(); }

  /// Starts an empty run; the caller fills the returned registry.
  StatsRegistry& AddRun(const std::string& label);

  /// Records a completed open-loop engine run: the host driver's metrics
  /// under "run/..." plus the engine's full statistics tree.
  StatsRegistry& AddEngineRun(const std::string& label,
                              core::BionicDb* engine,
                              const host::RunResult& result);

  /// Same for a closed-loop run (includes the latency summary).
  StatsRegistry& AddEngineRun(const std::string& label,
                              core::BionicDb* engine,
                              const host::ClosedLoopResult& result);

  /// Same for an open-loop run (offered/goodput rates, shed counters, and
  /// latency SLO gauges under "run/latency/...").
  StatsRegistry& AddEngineRun(const std::string& label,
                              core::BionicDb* engine,
                              const host::OpenLoopResult& result);

  /// Records a cluster closed-loop run: the sharded engine's full stats
  /// (including the `cluster/` and `fabric/interchip/` subtrees), the
  /// merged run metrics under "run/..." — counted exactly once from the
  /// already-merged cluster totals, never re-summed from the per-chip rows
  /// — the cluster shape under "run/cluster/...", and the per-chip rows
  /// under "run/chips/<c>/...". The run-level latency summary is the
  /// count-weighted merge of the per-chip digests.
  StatsRegistry& AddClusterRun(const std::string& label,
                               cluster::ClusterDb* cluster,
                               const host::ClusterRunResult& result,
                               double multisite_fraction);

  std::string ToJson() const;

  /// Writes BENCH_<name>.json in the current working directory.
  /// Returns the written path ("" on I/O failure, which is also printed).
  std::string WriteFile() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, StatsRegistry>> runs_;
};

}  // namespace bionicdb::bench

#endif  // BIONICDB_BENCH_REPORT_H_
