// Ablation — scan throughput vs number of scanner modules.
//
// The paper (section 5.5): a single scanner bottlenecks the skiplist
// pipeline on scan-heavy loads; "to catch up with SW skiplist, at least 5
// scanners would be required". This sweep regenerates that estimate with
// the hardware design knob the paper could not afford to build (Virtex-5
// resource limits).
#include "baseline/workloads.h"
#include "bench/bench_util.h"
#include "bench/report.h"
#include "power/model.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

bench::BenchReport* g_report = nullptr;

double RunHwScan(const bench::BenchArgs& args, uint32_t n_scanners) {
  core::EngineOptions opts;
  opts.n_workers = 4;
  opts.coproc.max_inflight = 24;
  opts.coproc.skiplist.n_scanners = n_scanners;
  core::BionicDb engine(opts);
  workload::YcsbOptions yopts;
  yopts.mode = workload::YcsbOptions::Mode::kScanOnly;
  yopts.records_per_partition = args.quick ? 2'000 : 20'000;
  yopts.payload_len = args.quick ? 64 : 1024;
  yopts.scan_len = 50;
  workload::Ycsb ycsb(&engine, yopts);
  if (!ycsb.Setup().ok()) return 0;
  Rng rng(args.seed);
  const uint64_t txns = args.quick ? 60 : 300;
  host::TxnList list;
  for (uint32_t w = 0; w < 4; ++w) {
    for (uint64_t i = 0; i < txns; ++i) {
      list.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }
  auto r = host::RunToCompletion(&engine, list);
  g_report->AddEngineRun("scanners=" + std::to_string(n_scanners), &engine,
                         r);
  return r.tps;
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  using namespace bionicdb;
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::BenchReport report("ablation_scanners");
  g_report = &report;
  bench::PrintHeader("Ablation", "Scan throughput vs scanner modules");

  // Software skiplist reference (4 threads), the Fig. 11d target.
  baseline::SiloYcsbOptions sopts;
  sopts.records = args.quick ? 8'000 : 80'000;
  sopts.payload_len = args.quick ? 64 : 256;
  sopts.index = baseline::SiloIndexKind::kSkiplist;
  baseline::SiloYcsb silo(sopts);
  silo.Setup();
  double sw = silo.RunScans(4, args.quick ? 2'000 : 20'000).tps;

  TablePrinter table({"scanners", "throughput (kTps)", "vs SW skiplist",
                      "4-worker LUTs"});
  for (uint32_t scanners : {1u, 2u, 3u, 4u, 5u, 6u, 8u}) {
    double tps = RunHwScan(args, scanners);
    // What the extra scanner modules cost in fabric (resource model).
    power::DesignConfig cfg;
    cfg.n_workers = 4;
    cfg.n_scanners = scanners;
    uint64_t luts = 0;
    for (const auto& row : power::ResourceModel(cfg).ModuleBreakdown()) {
      if (row.name == "Skiplist") luts = row.usage.luts;
    }
    table.AddRow({std::to_string(scanners), bench::Ktps(tps),
                  TablePrinter::Num(sw > 0 ? tps / sw : 0, 2) + "x",
                  std::to_string(luts)});
  }
  table.Print();
  std::printf("SW skiplist (4 threads): %s kTps\n", bench::Ktps(sw).c_str());
  report.WriteFile();
  return 0;
}
