// Chaos harness for the deterministic fault-injection subsystem (src/fault).
//
// Six scenarios, each recorded in BENCH_fault_chaos.json:
//  1. baseline parity  — a zero-rate FaultScheduler must not perturb the
//     simulation (identical committed count and cycle count);
//  2. fault-rate sweep — DRAM spike/stuck windows + worker freezes at
//     increasing intensity: committed-throughput degradation curve;
//  3. comm chaos       — drop/duplicate/delay on a multisite workload with
//     the ack/retransmit/dedup layer: every transaction still commits;
//  4. corruption scrub — random bit flips in CRC-guarded tuple bytes: every
//     flip is detectable (scrub) and detected on access (txn abort), never
//     a silent wrong answer;
//  5. crash + recovery — mid-batch crash, then checkpoint + command-log
//     replay verified against a functional shadow model;
//  6. determinism      — same seed => byte-identical fault schedule
//     (ScheduleDigest) and identical commit/abort outcomes.
//
// Every scenario doubles as an assertion; the binary exits non-zero if any
// invariant fails, which is what the fault_chaos ctest fixture checks.
#include <algorithm>
#include <cinttypes>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "fault/fault.h"
#include "fault/recovery.h"
#include "log/command_log.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

using bench::BenchArgs;

/// Pass/fail bookkeeping shared by all scenarios. Checks run in every mode
/// (they are invariants, not smoke-only); `Absorb` tallies injections per
/// fault class so main() can assert full class coverage at the end.
struct ChaosCheck {
  int failures = 0;
  std::map<std::string, uint64_t> injected;

  void Expect(bool ok, const std::string& what) {
    if (ok) {
      std::printf("  [ok]   %s\n", what.c_str());
    } else {
      ++failures;
      std::fprintf(stderr, "  [FAIL] %s\n", what.c_str());
    }
  }

  void Absorb(const fault::FaultScheduler& sched) {
    for (const fault::FaultEvent& e : sched.events()) {
      ++injected[fault::FaultEventKindName(e.kind)];
    }
  }
};

workload::YcsbOptions UpdateOpts(const BenchArgs& args) {
  workload::YcsbOptions o;
  o.mode = workload::YcsbOptions::Mode::kUpdateMix;
  o.records_per_partition = args.smoke ? 400 : args.quick ? 1'000 : 10'000;
  o.payload_len = 32;
  o.accesses_per_txn = 4;
  o.updates_per_txn = 2;
  return o;
}

uint64_t TxnsPerWorker(const BenchArgs& args) {
  return args.smoke ? 100 : args.quick ? 300 : 2'000;
}

core::EngineOptions EngineOpts() {
  core::EngineOptions o;
  o.n_workers = 2;
  return o;
}

/// Builds the seeded transaction list and runs it to completion.
host::RunResult RunYcsb(core::BionicDb* engine, workload::Ycsb* ycsb,
                        uint64_t seed, uint64_t txns_per_worker,
                        bool retry_aborts = true) {
  Rng rng(seed);
  host::TxnList txns;
  for (uint32_t w = 0; w < engine->options().n_workers; ++w) {
    for (uint64_t i = 0; i < txns_per_worker; ++i) {
      txns.emplace_back(w, ycsb->MakeTxn(&rng, w));
    }
  }
  return host::RunToCompletion(engine, txns, retry_aborts);
}

StatsRegistry& Record(bench::BenchReport* report, const std::string& label,
                      core::BionicDb* engine, const host::RunResult& result,
                      const fault::FaultScheduler* sched) {
  StatsRegistry& reg = report->AddEngineRun(label, engine, result);
  if (sched != nullptr) sched->CollectStats(StatsScope(&reg, "fault"));
  return reg;
}

// --- Scenario 1: a zero-rate scheduler must be invisible ------------------

void RunBaselineParity(const BenchArgs& args, bench::BenchReport* report,
                       ChaosCheck* check) {
  bench::PrintHeader("chaos/parity", "zero fault rates leave the run intact");
  const uint64_t txns = TxnsPerWorker(args);

  core::BionicDb plain(EngineOpts());
  workload::Ycsb ycsb_plain(&plain, UpdateOpts(args));
  if (!ycsb_plain.Setup().ok()) return;
  host::RunResult base = RunYcsb(&plain, &ycsb_plain, args.seed, txns);
  Record(report, "parity/no_scheduler", &plain, base, nullptr);

  core::BionicDb faulted(EngineOpts());
  fault::FaultScheduler sched(fault::FaultConfig{.seed = args.seed});
  sched.Attach(&faulted);  // all rates zero: hooks installed but inert
  workload::Ycsb ycsb_faulted(&faulted, UpdateOpts(args));
  if (!ycsb_faulted.Setup().ok()) return;
  host::RunResult hooked = RunYcsb(&faulted, &ycsb_faulted, args.seed, txns);
  Record(report, "parity/zero_rate_scheduler", &faulted, hooked, &sched);

  check->Expect(base.committed == hooked.committed,
                "zero-rate scheduler: committed count unchanged");
  check->Expect(base.cycles == hooked.cycles,
                "zero-rate scheduler: cycle count unchanged");
  check->Expect(sched.events().empty() && sched.ScheduleDigest() == 0,
                "zero-rate scheduler: no events injected");
  std::printf("  committed=%" PRIu64 " cycles=%" PRIu64 "\n", base.committed,
              base.cycles);
}

// --- Scenario 2: DRAM + worker fault sweep --------------------------------

void RunFaultSweep(const BenchArgs& args, bench::BenchReport* report,
                   ChaosCheck* check) {
  bench::PrintHeader("chaos/sweep",
                     "throughput degradation under DRAM + worker faults");
  struct Level {
    const char* name;
    double mult;
  };
  std::vector<Level> levels = args.smoke
                                  ? std::vector<Level>{{"none", 0}, {"heavy", 4}}
                                  : std::vector<Level>{{"none", 0},
                                                       {"light", 1},
                                                       {"medium", 2},
                                                       {"heavy", 4}};
  TablePrinter table({"faults", "throughput (kTps)", "degradation", "spikes",
                      "stuck", "freezes"});
  double base_tps = 0;
  for (const Level& level : levels) {
    fault::FaultConfig cfg;
    cfg.seed = args.seed;
    cfg.dram_spike_rate = 4e-4 * level.mult;
    cfg.dram_spike_extra_cycles = 64;
    cfg.dram_stuck_rate = 1e-4 * level.mult;
    cfg.dram_stuck_duration = 256;
    cfg.worker_freeze_rate = 1e-4 * level.mult;
    cfg.worker_freeze_cycles = 512;

    core::BionicDb engine(EngineOpts());
    fault::FaultScheduler sched(cfg);
    sched.Attach(&engine);
    workload::Ycsb ycsb(&engine, UpdateOpts(args));
    if (!ycsb.Setup().ok()) return;
    host::RunResult r = RunYcsb(&engine, &ycsb, args.seed, TxnsPerWorker(args));
    Record(report, std::string("sweep/") + level.name, &engine, r, &sched);

    if (level.mult == 0) base_tps = r.tps;
    uint64_t spikes = 0, stuck = 0, freezes = 0;
    for (const fault::FaultEvent& e : sched.events()) {
      spikes += e.kind == fault::FaultEvent::Kind::kDramSpike;
      stuck += e.kind == fault::FaultEvent::Kind::kDramStuck;
      freezes += e.kind == fault::FaultEvent::Kind::kWorkerFreeze;
    }
    table.AddRow({level.name, bench::Ktps(r.tps),
                  base_tps > 0
                      ? TablePrinter::Num(100.0 * (1.0 - r.tps / base_tps), 1) +
                            "%"
                      : "-",
                  std::to_string(spikes), std::to_string(stuck),
                  std::to_string(freezes)});
    // Latency/availability faults slow transactions down but never corrupt
    // them: everything must still commit.
    check->Expect(r.failed == 0, std::string("sweep/") + level.name +
                                     ": no transaction permanently failed");
    if (level.mult >= 4) {
      check->Expect(spikes >= 1 && stuck >= 1 && freezes >= 1,
                    "sweep/heavy: every DRAM/worker fault class injected");
      check->Expect(engine.simulator().dram().fault_spike_cycles() > 0,
                    "sweep/heavy: spike windows added DRAM latency");
      check->Expect(engine.simulator().dram().fault_stuck_rejects() > 0,
                    "sweep/heavy: stuck windows rejected admissions");
    }
    check->Absorb(sched);
  }
  table.Print();
}

// --- Scenario 3: lossy channels behind the reliability layer --------------

void RunCommChaos(const BenchArgs& args, bench::BenchReport* report,
                  ChaosCheck* check) {
  bench::PrintHeader("chaos/comm",
                     "drop/duplicate/delay with ack/retransmit/dedup");
  workload::YcsbOptions yopts = UpdateOpts(args);
  yopts.mode = workload::YcsbOptions::Mode::kMultisite;
  yopts.remote_fraction = 0.75;

  fault::FaultConfig cfg;
  cfg.seed = args.seed;
  cfg.comm_drop_rate = 0.02;
  cfg.comm_dup_rate = 0.02;
  cfg.comm_delay_rate = 0.05;
  cfg.comm_delay_cycles = 32;

  core::BionicDb engine(EngineOpts());
  fault::FaultScheduler sched(cfg);
  sched.Attach(&engine);  // auto-enables the fabric reliability layer
  workload::Ycsb ycsb(&engine, yopts);
  if (!ycsb.Setup().ok()) return;
  host::RunResult r = RunYcsb(&engine, &ycsb, args.seed, TxnsPerWorker(args));
  Record(report, "comm_chaos/multisite", &engine, r, &sched);

  uint64_t drops = 0, dups = 0, delays = 0;
  for (const fault::FaultEvent& e : sched.events()) {
    drops += e.kind == fault::FaultEvent::Kind::kCommDrop;
    dups += e.kind == fault::FaultEvent::Kind::kCommDup;
    delays += e.kind == fault::FaultEvent::Kind::kCommDelay;
  }
  std::printf("  drops=%" PRIu64 " dups=%" PRIu64 " delays=%" PRIu64
              " retransmits=%" PRIu64 " dedup=%" PRIu64 "\n",
              drops, dups, delays, engine.fabric().retransmits(),
              engine.fabric().counters().Get("duplicates_suppressed"));
  check->Expect(engine.fabric().reliability().enabled,
                "comm chaos: reliability layer auto-enabled");
  check->Expect(drops >= 1 && dups >= 1 && delays >= 1,
                "comm chaos: every comm fault class injected");
  check->Expect(r.failed == 0 && r.committed == r.submitted,
                "comm chaos: every transaction committed despite loss");
  check->Expect(engine.fabric().retransmits() >= 1,
                "comm chaos: dropped packets were retransmitted");
  check->Expect(engine.fabric().counters().Get("duplicates_suppressed") >= 1,
                "comm chaos: duplicate deliveries suppressed");
  check->Absorb(sched);
}

// --- Scenario 4: bit flips are detected, never silent ---------------------

/// Probes every key once through the registered update-mix procedure;
/// returns {committed, aborted} probe counts. Any probe whose hash-chain
/// walk touches a corrupted tuple aborts with CpStatus::kCorrupted.
std::pair<uint64_t, uint64_t> ProbeAllKeys(core::BionicDb* engine,
                                           const workload::YcsbOptions& yopts) {
  const uint32_t n = yopts.accesses_per_txn;
  const uint32_t u = std::min(yopts.updates_per_txn, n);
  const uint64_t r = yopts.records_per_partition;
  std::vector<sim::Addr> blocks;
  for (uint32_t w = 0; w < engine->options().n_workers; ++w) {
    for (uint64_t k0 = 0; k0 < r; k0 += n) {
      db::TxnBlock block = engine->AllocateBlock(workload::Ycsb::kTxnType);
      for (uint32_t i = 0; i < n; ++i) {
        block.WriteKeyU64(int64_t(8 * i), w * r + (k0 + i) % r);
      }
      for (uint32_t i = 0; i < u; ++i) {
        block.WriteU64(int64_t(8 * n + 8 * i), 0xC0FFEEull + i);
      }
      engine->Submit(w, block.base());
      blocks.push_back(block.base());
    }
  }
  engine->Drain();
  uint64_t committed = 0, aborted = 0;
  for (sim::Addr addr : blocks) {
    db::TxnBlock block(&engine->simulator().dram(), addr);
    (block.state() == db::TxnState::kCommitted ? committed : aborted)++;
  }
  return {committed, aborted};
}

void RunCorruptionScrub(const BenchArgs& args, bench::BenchReport* report,
                        ChaosCheck* check) {
  bench::PrintHeader("chaos/corruption",
                     "bit flips in guarded tuple bytes: detected, not silent");
  fault::FaultConfig cfg;
  cfg.seed = args.seed;
  cfg.bitflip_rate = args.smoke ? 2e-4 : 5e-5;

  core::BionicDb engine(EngineOpts());
  fault::FaultScheduler sched(cfg);
  sched.Attach(&engine);  // before Setup: bulk-loaded tuples get guards
  workload::YcsbOptions yopts = UpdateOpts(args);
  workload::Ycsb ycsb(&engine, yopts);
  if (!ycsb.Setup().ok()) return;
  // No abort retry: a transaction that touched a corrupted tuple can never
  // succeed (corruption is persistent until repair, which is out of scope).
  host::RunResult r = RunYcsb(&engine, &ycsb, args.seed, TxnsPerWorker(args),
                              /*retry_aborts=*/false);

  std::vector<sim::Addr> flipped = sched.flipped_tuples();
  std::vector<sim::Addr> scrub = sched.ScrubAll();
  std::sort(flipped.begin(), flipped.end());
  // Every corruption the scrub finds must be one we injected, and every
  // injected flip must be detectable by the scrub — zero silent corruption.
  check->Expect(!flipped.empty(), "corruption: at least one bit flipped");
  check->Expect(scrub == flipped,
                "corruption: scrub detects exactly the flipped tuples");

  // Deterministically touch every key so at least one access crosses a
  // corrupted tuple: those probes must abort, not return wrong data.
  auto [probe_ok, probe_aborted] = ProbeAllKeys(&engine, yopts);
  std::printf("  flips=%zu scrubbed=%zu probes ok=%" PRIu64
              " aborted=%" PRIu64 " detections=%" PRIu64 "\n",
              flipped.size(), scrub.size(), probe_ok, probe_aborted,
              sched.corruption_detected());
  check->Expect(probe_aborted >= 1,
                "corruption: probing corrupted keys aborts transactions");
  check->Expect(sched.corruption_detected() >= 1,
                "corruption: CRC guard mismatches were detected on access");

  StatsRegistry& reg = Record(report, "corruption/bitflips", &engine, r,
                              &sched);
  reg.SetCounter("probe/committed", probe_ok);
  reg.SetCounter("probe/aborted", probe_aborted);
  check->Absorb(sched);
}

// --- Scenario 5: mid-batch crash + verified recovery ----------------------

void RunCrashRecovery(const BenchArgs& args, bench::BenchReport* report,
                      ChaosCheck* check) {
  bench::PrintHeader("chaos/crash",
                     "mid-batch crash, command-log replay, shadow verify");
  const workload::YcsbOptions yopts = UpdateOpts(args);
  const uint64_t txns_per_worker = TxnsPerWorker(args);

  fault::FaultConfig cfg;
  cfg.seed = args.seed;
  cfg.dram_spike_rate = 2e-4;
  cfg.worker_freeze_rate = 5e-5;
  cfg.worker_freeze_cycles = 256;

  core::BionicDb crashed(EngineOpts());
  fault::FaultScheduler sched(cfg);
  sched.Attach(&crashed);
  workload::Ycsb ycsb(&crashed, yopts);
  if (!ycsb.Setup().ok()) return;
  log::Checkpoint initial = log::Checkpoint::Capture(crashed.database());

  log::CommandLog cmd_log(&crashed);
  Rng rng(args.seed);
  std::vector<std::pair<size_t, sim::Addr>> submitted;
  for (uint32_t w = 0; w < crashed.options().n_workers; ++w) {
    for (uint64_t i = 0; i < txns_per_worker; ++i) {
      sim::Addr block = ycsb.MakeTxn(&rng, w);
      submitted.emplace_back(cmd_log.Append(w, block), block);
      crashed.Submit(w, block);
    }
  }
  // Run to roughly half the batch, then pull the plug mid-flight.
  const uint64_t target = submitted.size() / 2;
  const uint64_t deadline = crashed.now() + (4ull << 30);
  while (crashed.TotalCommitted() < target && crashed.now() < deadline) {
    crashed.Step(256);
  }
  sched.RecordCrash(crashed.now());
  for (const auto& [rec, block] : submitted) cmd_log.MarkOutcome(rec, block);

  uint64_t committed_records = 0;
  for (const log::LogRecord& rec : cmd_log.records()) {
    committed_records += rec.committed;
  }
  const uint64_t lost = submitted.size() - committed_records;
  std::printf("  crash at cycle %" PRIu64 ": %" PRIu64 " committed, %" PRIu64
              " in flight/unsubmitted\n",
              crashed.now(), committed_records, lost);
  check->Expect(committed_records >= 1 && lost >= 1,
                "crash: genuinely mid-batch (some committed, some not)");

  // Recover into a fresh engine: same schema + procedures, no population.
  core::BionicDb recovered(EngineOpts());
  for (const db::TableSchema& schema :
       crashed.database().catalogue().tables()) {
    if (!recovered.database().CreateTable(schema).ok()) return;
  }
  const db::ProcedureInfo* proc =
      crashed.database().catalogue().FindProcedure(workload::Ycsb::kTxnType);
  if (proc == nullptr ||
      !recovered
           .RegisterProcedure(workload::Ycsb::kTxnType, proc->program,
                              proc->block_data_size)
           .ok()) {
    check->Expect(false, "crash: procedure re-registration failed");
    return;
  }
  check->Expect(log::Recover(&recovered, initial, cmd_log).ok(),
                "crash: checkpoint + log replay succeeded");

  fault::RecoveryVerifier::Result verdict = fault::RecoveryVerifier::Verify(
      initial, cmd_log,
      fault::MakeYcsbUpdateMixApplier(yopts.records_per_partition,
                                      yopts.accesses_per_txn,
                                      yopts.updates_per_txn),
      recovered.database());
  if (!verdict.equivalent) {
    std::fprintf(stderr, "  first divergence: %s\n",
                 verdict.first_diff.c_str());
  }
  std::printf("  shadow diff: %" PRIu64 " tuples compared, %" PRIu64
              " missing, %" PRIu64 " unexpected, %" PRIu64 " mismatched\n",
              verdict.tuples_compared, verdict.missing, verdict.unexpected,
              verdict.mismatched);
  check->Expect(verdict.applier_errors == 0,
                "crash: shadow applier accepted every committed record");
  check->Expect(verdict.equivalent,
                "crash: recovered state equals shadow reconstruction");

  host::RunResult partial;
  partial.submitted = submitted.size();
  partial.committed = committed_records;
  partial.failed = lost;
  partial.cycles = crashed.now();
  partial.tps = crashed.options().timing.Throughput(committed_records,
                                                    crashed.now());
  StatsRegistry& reg =
      Record(report, "crash_recovery/crashed_engine", &crashed, partial,
             &sched);
  reg.SetCounter("recovery/tuples_compared", verdict.tuples_compared);
  reg.SetCounter("recovery/equivalent", verdict.equivalent ? 1 : 0);
  check->Absorb(sched);
}

// --- Scenario 6: same seed => identical schedule and outcomes -------------

struct ChaosOutcome {
  uint32_t digest = 0;
  size_t events = 0;
  uint64_t committed = 0;
  uint64_t failed = 0;
  uint64_t retries = 0;
  uint64_t cycles = 0;
};

ChaosOutcome RunChaosOnce(const BenchArgs& args, uint64_t seed,
                          bench::BenchReport* report,
                          const std::string& label, ChaosCheck* check) {
  workload::YcsbOptions yopts = UpdateOpts(args);
  yopts.mode = workload::YcsbOptions::Mode::kMultisite;

  fault::FaultConfig cfg;
  cfg.seed = seed;
  cfg.dram_spike_rate = 2e-4;
  cfg.dram_stuck_rate = 5e-5;
  cfg.dram_stuck_duration = 128;
  cfg.comm_drop_rate = 0.01;
  cfg.comm_dup_rate = 0.01;
  cfg.comm_delay_rate = 0.02;
  cfg.worker_freeze_rate = 5e-5;
  cfg.worker_freeze_cycles = 256;

  core::BionicDb engine(EngineOpts());
  fault::FaultScheduler sched(cfg);
  sched.Attach(&engine);
  workload::Ycsb ycsb(&engine, yopts);
  if (!ycsb.Setup().ok()) return {};
  host::RunResult r = RunYcsb(&engine, &ycsb, seed, TxnsPerWorker(args));
  Record(report, label, &engine, r, &sched);
  check->Absorb(sched);
  return {sched.ScheduleDigest(), sched.events().size(), r.committed,
          r.failed,               r.retries,             r.cycles};
}

void RunDeterminism(const BenchArgs& args, bench::BenchReport* report,
                    ChaosCheck* check) {
  bench::PrintHeader("chaos/determinism",
                     "same seed replays the same fault schedule");
  ChaosOutcome a = RunChaosOnce(args, args.seed, report, "determinism/run_a",
                                check);
  ChaosOutcome b = RunChaosOnce(args, args.seed, report, "determinism/run_b",
                                check);
  ChaosOutcome c = RunChaosOnce(args, args.seed + 1, report,
                                "determinism/other_seed", check);
  std::printf("  run_a digest=%08x events=%zu committed=%" PRIu64
              " cycles=%" PRIu64 "\n",
              a.digest, a.events, a.committed, a.cycles);
  check->Expect(a.events > 0, "determinism: chaos run injected faults");
  check->Expect(a.digest == b.digest && a.events == b.events,
                "determinism: same seed => byte-identical fault schedule");
  check->Expect(a.committed == b.committed && a.failed == b.failed &&
                    a.retries == b.retries && a.cycles == b.cycles,
                "determinism: same seed => identical outcomes");
  check->Expect(c.digest != a.digest,
                "determinism: different seed => different schedule");
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  using bionicdb::fault::FaultEvent;
  auto args = bionicdb::bench::BenchArgs::Parse(argc, argv);
  bionicdb::bench::BenchReport report("fault_chaos");
  bionicdb::ChaosCheck check;

  bionicdb::RunBaselineParity(args, &report, &check);
  bionicdb::RunFaultSweep(args, &report, &check);
  bionicdb::RunCommChaos(args, &report, &check);
  bionicdb::RunCorruptionScrub(args, &report, &check);
  bionicdb::RunCrashRecovery(args, &report, &check);
  bionicdb::RunDeterminism(args, &report, &check);

  // Across all scenarios every fault class must have fired at least once.
  for (FaultEvent::Kind kind :
       {FaultEvent::Kind::kDramSpike, FaultEvent::Kind::kDramStuck,
        FaultEvent::Kind::kBitFlip, FaultEvent::Kind::kCommDrop,
        FaultEvent::Kind::kCommDup, FaultEvent::Kind::kCommDelay,
        FaultEvent::Kind::kWorkerFreeze, FaultEvent::Kind::kCrash}) {
    const char* name = bionicdb::fault::FaultEventKindName(kind);
    check.Expect(check.injected[name] >= 1,
                 std::string("coverage: >=1 injected fault of class ") + name);
  }

  report.WriteFile();
  if (check.failures > 0) {
    std::fprintf(stderr, "fault_chaos: %d check(s) FAILED\n", check.failures);
    return 1;
  }
  std::printf("fault_chaos: all chaos checks passed\n");
  return 0;
}
