// Ablation — dynamic transaction scheduling (paper section 4.5 discussion).
//
// TPC-C NewOrder blocks mid-logic on the district RET (the next_o_id data
// dependency), which under the paper's static two-phase interleaving
// serialises execution (Fig. 12b shows no interleaving benefit). The paper
// conjectures that switching "between transactions dynamically whenever
// desired" might help; this implementation parks a transaction at a
// blocking RET and resumes it when the result lands. This bench quantifies
// the conjecture against static interleaving and serial execution.
#include "bench/bench_util.h"
#include "bench/report.h"
#include "workload/tpcc.h"

namespace bionicdb {
namespace {

bench::BenchReport* g_report = nullptr;

struct Mode {
  const char* name;
  bool interleaving;
  bool dynamic;
};

double Run(const bench::BenchArgs& args, const Mode& mode, bool neworder) {
  core::EngineOptions opts;
  opts.n_workers = 4;
  opts.softcore.interleaving = mode.interleaving;
  opts.softcore.dynamic_switching = mode.dynamic;
  opts.softcore.max_contexts = 4;
  core::BionicDb engine(opts);
  workload::TpccOptions topts;
  if (args.quick) {
    topts.districts_per_warehouse = 4;
    topts.customers_per_district = 100;
    topts.items = 2'000;
  }
  topts.remote_neworder_fraction = 0;
  topts.remote_payment_fraction = 0;
  workload::Tpcc tpcc(&engine, topts);
  if (!tpcc.Setup().ok()) return 0;
  Rng rng(args.seed);
  const uint64_t txns = args.quick ? 100 : 600;
  host::TxnList list;
  for (uint32_t w = 0; w < 4; ++w) {
    for (uint64_t i = 0; i < txns; ++i) {
      list.emplace_back(w, neworder ? tpcc.MakeNewOrder(&rng, w)
                                    : tpcc.MakePayment(&rng, w));
    }
  }
  auto r = host::RunToCompletion(&engine, list);
  g_report->AddEngineRun(std::string(neworder ? "neworder/" : "payment/") +
                             (mode.dynamic       ? "dynamic"
                              : mode.interleaving ? "static"
                                                  : "serial"),
                         &engine, r);
  return r.tps;
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  using namespace bionicdb;
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::BenchReport report("ablation_dynamic");
  g_report = &report;
  bench::PrintHeader("Ablation",
                     "Dynamic transaction scheduling (section 4.5 "
                     "future work) on TPC-C");
  const Mode modes[] = {
      {"serial", false, false},
      {"static interleaving (paper)", true, false},
      {"dynamic switching (ours)", true, true},
  };
  for (bool neworder : {true, false}) {
    TablePrinter table({"execution mode", "throughput (kTps)"});
    std::printf("\n%s:\n", neworder ? "NewOrder" : "Payment");
    for (const Mode& mode : modes) {
      table.AddRow({mode.name, bench::Ktps(Run(args, mode, neworder))});
    }
    table.Print();
  }
  std::printf(
      "\n(NewOrder's district RET is the data dependency that defeats\n"
      " static interleaving; dynamic parking recovers the lost overlap.)\n");
  report.WriteFile();
  return 0;
}
