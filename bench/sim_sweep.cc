// Fleet-scale configuration sweep: many full engine runs fanned out over
// host cores through host::RunSweep, merged into ONE BENCH_sim_sweep.json.
//
// Each sweep point is a self-contained simulated machine (its own engine,
// DRAM, workload) exploring the workers x DRAM-latency grid that the
// simulator-performance work cares about: the dense corner (low latency,
// many workers) stresses per-cycle ticking, the sparse corner (high
// latency, one worker) stresses event-driven warping. Points run
// concurrently — an N-point sweep costs roughly max (not sum) of its
// points' wall clock on a multicore host — yet every simulated result is
// bit-identical to running the points one at a time, because sweep points
// share no mutable state (asserted here by re-running one grid point
// serially and comparing its engine stats JSON byte-for-byte).
//
// scripts/sweep.py wraps this binary for ad-hoc fleet runs and prints a
// digest of the merged report.
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

using bench::BenchArgs;

struct Point {
  uint32_t workers;
  uint32_t dram_latency_cycles;
  bool event_driven;
};

std::string PointLabel(const Point& p) {
  return "sweep/w" + std::to_string(p.workers) + "_lat" +
         std::to_string(p.dram_latency_cycles) +
         (p.event_driven ? "_event" : "_serial");
}

/// Runs one grid point on a fresh engine and records the full engine tree
/// plus run metrics into `reg` (the same shape AddEngineRun produces, so
/// validate_report's engine-run checks apply to every sweep point).
void RunPoint(const BenchArgs& args, const Point& p, StatsRegistry* reg) {
  core::EngineOptions opts;
  opts.n_workers = p.workers;
  opts.timing.dram_latency_cycles = p.dram_latency_cycles;
  opts.timing.event_driven = p.event_driven;
  core::BionicDb engine(opts);

  workload::YcsbOptions yopts;
  yopts.mode = workload::YcsbOptions::Mode::kReadOnly;
  yopts.accesses_per_txn = 8;
  yopts.records_per_partition = args.smoke ? 1'000 : args.quick ? 4'000
                                                                : 10'000;
  yopts.payload_len = 64;
  workload::Ycsb ycsb(&engine, yopts);
  if (auto s = ycsb.Setup(); !s.ok()) {
    std::fprintf(stderr, "sweep setup failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }

  const uint64_t txns_per_worker = args.smoke ? 100 : args.quick ? 250
                                                                 : 1'000;
  Rng rng(args.seed);
  host::TxnList txns;
  for (uint32_t w = 0; w < p.workers; ++w) {
    for (uint64_t i = 0; i < txns_per_worker; ++i) {
      txns.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }
  host::RunResult run = host::RunToCompletion(&engine, txns);
  engine.CollectStats(reg);
  StatsScope scope(reg, "run");
  scope.SetCounter("submitted", run.submitted);
  scope.SetCounter("committed", run.committed);
  scope.SetCounter("failed", run.failed);
  scope.SetCounter("retries", run.retries);
  scope.SetCounter("cycles", run.cycles);
  scope.SetGauge("tps", run.tps);
  scope.SetGauge("wall_seconds", run.wall_seconds);
  scope.SetGauge("sim_cycles_per_second", run.SimCyclesPerSecond());
}

void Run(const BenchArgs& args, bench::BenchReport* report) {
  bench::PrintHeader("sim_sweep",
                     "configuration grid fanned out over host cores");
  std::vector<Point> grid;
  const std::vector<uint32_t> worker_counts =
      args.smoke ? std::vector<uint32_t>{1, 2} : std::vector<uint32_t>{1, 2, 4};
  const std::vector<uint32_t> latencies =
      args.smoke ? std::vector<uint32_t>{95} : std::vector<uint32_t>{12, 95,
                                                                     380};
  for (uint32_t w : worker_counts) {
    for (uint32_t lat : latencies) {
      grid.push_back(Point{w, lat, false});
      grid.push_back(Point{w, lat, true});
    }
  }

  std::vector<host::SweepJob> jobs;
  jobs.reserve(grid.size());
  for (const Point& p : grid) {
    jobs.push_back(host::SweepJob{
        PointLabel(p), [args, p](StatsRegistry* reg) { RunPoint(args, p, reg); }});
  }
  std::vector<host::SweepResult> results = host::RunSweep(std::move(jobs));

  // Determinism spot check: re-run the first grid point serially on this
  // thread; its simulated stats (everything except host wall clock) must
  // match the fanned-out run byte-for-byte.
  StatsRegistry redo;
  RunPoint(args, grid[0], &redo);
  StatsRegistry& sweep_copy = results[0].stats;
  auto simulated_view = [](const StatsRegistry& r) {
    std::string json;
    for (const auto& [k, v] : r.counters()) {
      if (k != "run/cycles" && k.rfind("run/", 0) == 0) continue;
      json += k + "=" + std::to_string(v) + ";";
    }
    return json;
  };
  if (simulated_view(redo) != simulated_view(sweep_copy)) {
    std::fprintf(stderr,
                 "sim_sweep: fanned-out point '%s' DIVERGED from its serial "
                 "re-run\n",
                 results[0].label.c_str());
    std::exit(1);
  }

  TablePrinter table({"point", "cycles", "committed", "Mcycles/s"});
  for (host::SweepResult& r : results) {
    StatsRegistry& reg = report->AddRun(r.label);
    reg = std::move(r.stats);
    table.AddRow({r.label, std::to_string(reg.GetCounter("sim/cycles")),
                  std::to_string(reg.GetCounter("run/committed")),
                  bench::Mops(reg.gauges().count("run/sim_cycles_per_second")
                                  ? reg.gauges().at("run/sim_cycles_per_second")
                                  : 0)});
  }
  table.Print();
  std::printf("(%zu sweep points merged; fanned out over %u host threads; "
              "point 0 asserted identical to a serial re-run)\n",
              results.size(), host::HostHardwareThreads());
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  auto args = bionicdb::bench::BenchArgs::Parse(argc, argv);
  bionicdb::bench::BenchReport report("sim_sweep");
  bionicdb::Run(args, &report);
  report.WriteFile();
  return 0;
}
