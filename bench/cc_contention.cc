// CC-diversity contention study: T/O vs SGT vs MVCC on SmallBank.
//
// Sweeps contention level x CC scheme on both tiers:
//
//   * Hardware tier — the simulated engine with EngineOptions::cc_mode set
//     to kTimestamp (the paper's blind-reject T/O), kSgt or kMvcc. Every
//     point is run in all three simulator modes (serial, event-driven,
//     parallel islands) and the engine statistic trees must be
//     byte-identical — CC units are part of the determinism envelope.
//   * Software tier — the Silo OCC engine vs the software SGT/MVTO
//     engines (baseline/cc_scheme.h) on the shared-everything SmallBank.
//
// Self-enforced expectations (hardware tier; deterministic, so enforced at
// every size including --smoke):
//   * low contention: T/O throughput is not beaten by the richer schemes
//     by more than a whisker — the CC machinery must be ~free when there
//     are no conflicts;
//   * high contention (write-heavy hotspot): SGT beats T/O — commit-ordered
//     admission (dirty marks only reserve; data moves in timestamp-ordered
//     commit handlers) retains work that blind reject burns;
//   * high contention read-heavy: MVCC beats T/O — stale-snapshot reads
//     commit where T/O rejects on dirty or bumped timestamps.
// Every hardware run must also pass SmallBank conservation.
//
// The software tier enforces conservation (a lost update fails the run)
// and reports throughput/abort numbers without asserting a wall-clock
// crossover: the reference SGT/MVTO engines serialise under one latch for
// auditability (see baseline/cc_scheme.h), so their absolute speed is not
// the experiment.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "baseline/cc_workloads.h"
#include "bench/bench_util.h"
#include "bench/report.h"
#include "workload/smallbank.h"

namespace bionicdb {
namespace {

bench::BenchReport* g_report = nullptr;
int g_failures = 0;

struct Contention {
  const char* name;
  double hotspot_fraction;
  uint32_t hotspot_accounts;
  // balance / deposit / transact / amalgamate / write_check weights
  uint32_t mix[5];
};

constexpr Contention kContentions[] = {
    {"low", 0.0, 0, {15, 25, 25, 10, 25}},
    {"high", 0.9, 16, {5, 30, 30, 15, 20}},
    {"high_read", 0.9, 16, {70, 8, 8, 4, 10}},
};

struct HwScheme {
  const char* name;  // --cc filter name and report label
  cc::CcMode mode;
};

constexpr HwScheme kHwSchemes[] = {
    {"to", cc::CcMode::kTimestamp},
    {"sgt", cc::CcMode::kSgt},
    {"mvcc", cc::CcMode::kMvcc},
};

void Check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "CHECK FAILED: %s\n", what.c_str());
    ++g_failures;
  }
}

struct HwOutcome {
  host::RunResult result;
  std::string stats_json;  // full engine stats tree (no wall clocks)
  uint64_t final_now = 0;
  bool conserve = false;
};

/// Sums one CC-unit counter over all partitions (0 in T/O mode).
uint64_t SumCcCounter(const core::BionicDb& engine, const std::string& key) {
  uint64_t sum = 0;
  for (uint32_t w = 0; w < engine.options().n_workers; ++w) {
    const cc::CcUnit* unit = engine.cc_unit(w);
    if (unit != nullptr) sum += unit->counters().Get(key);
  }
  return sum;
}

workload::SmallBankOptions MakeSbOptions(const bench::BenchArgs& args,
                                         const Contention& c) {
  workload::SmallBankOptions sbo;
  sbo.accounts_per_partition = args.smoke ? 200 : (args.quick ? 800 : 2'000);
  sbo.hotspot_fraction = c.hotspot_fraction;
  sbo.hotspot_accounts = c.hotspot_accounts;
  sbo.mix_balance = c.mix[0];
  sbo.mix_deposit = c.mix[1];
  sbo.mix_transact = c.mix[2];
  sbo.mix_amalgamate = c.mix[3];
  sbo.mix_write_check = c.mix[4];
  return sbo;
}

/// One hardware point: engine + SmallBank + open-loop drive. `record` adds
/// the run to the report (only the serial leg records; the other modes
/// exist to be digest-compared against it).
HwOutcome RunHw(const bench::BenchArgs& args, const Contention& c,
                const HwScheme& scheme, bench::BenchArgs::SimMode mode,
                bool record) {
  core::EngineOptions opts;
  opts.n_workers = 4;
  opts.cc_mode = scheme.mode;
  switch (mode) {
    case bench::BenchArgs::SimMode::kSerial:
      break;
    case bench::BenchArgs::SimMode::kEventDriven:
      opts.timing.event_driven = true;
      break;
    case bench::BenchArgs::SimMode::kParallel:
      opts.timing.parallel_hosts = 4;
      break;
  }
  core::BionicDb engine(opts);
  workload::SmallBank sb(&engine, MakeSbOptions(args, c));
  HwOutcome out;
  if (!sb.Setup().ok()) {
    Check(false, std::string("smallbank setup: ") + c.name);
    return out;
  }
  Rng rng(args.seed);
  const uint64_t per_worker = args.smoke ? 60 : (args.quick ? 200 : 600);
  host::TxnList list;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (uint64_t i = 0; i < per_worker; ++i) {
      list.emplace_back(w, sb.MakeTxn(&rng, w));
    }
  }
  out.result = host::RunToCompletion(&engine, list);
  out.conserve = sb.VerifyConservation(list);
  out.final_now = engine.now();
  StatsRegistry reg;
  engine.CollectStats(&reg);
  out.stats_json = reg.ToJson();
  if (record) {
    const std::string label =
        std::string("cc/") + c.name + "/" + scheme.name;
    StatsRegistry& run = g_report->AddEngineRun(label, &engine, out.result);
    StatsScope cc_scope(&run, "run/cc");
    cc_scope.SetCounter("scheme", uint64_t(scheme.mode));
    cc_scope.SetCounter("retries", out.result.retries);
    cc_scope.SetCounter("aborts", engine.TotalAborted());
    cc_scope.SetCounter("conservation_ok", out.conserve ? 1 : 0);
    if (scheme.mode == cc::CcMode::kSgt) {
      cc_scope.SetCounter("cycle_aborts",
                          SumCcCounter(engine, "sgt/cycle_aborts"));
      cc_scope.SetCounter("edges_added",
                          SumCcCounter(engine, "sgt/edges_added"));
      cc_scope.SetCounter("prunes", SumCcCounter(engine, "sgt/prunes"));
    }
    if (scheme.mode == cc::CcMode::kMvcc) {
      cc_scope.SetCounter("versions_created",
                          SumCcCounter(engine, "mvcc/versions_created"));
      cc_scope.SetCounter("versions_freed",
                          SumCcCounter(engine, "mvcc/versions_freed"));
      cc_scope.SetCounter("gc_runs", SumCcCounter(engine, "mvcc/gc_runs"));
      cc_scope.SetCounter("version_reads",
                          SumCcCounter(engine, "mvcc/version_reads"));
    }
  }
  return out;
}

/// Runs one hardware point in all three simulator modes, checks the
/// digests match, records the serial leg, and returns it.
HwOutcome RunHwAllModes(const bench::BenchArgs& args, const Contention& c,
                        const HwScheme& scheme) {
  HwOutcome serial =
      RunHw(args, c, scheme, bench::BenchArgs::SimMode::kSerial, true);
  Check(serial.conserve, std::string("conservation: cc/") + c.name + "/" +
                             scheme.name);
  for (auto mode : {bench::BenchArgs::SimMode::kEventDriven,
                    bench::BenchArgs::SimMode::kParallel}) {
    HwOutcome other = RunHw(args, c, scheme, mode, false);
    const std::string what = std::string("mode determinism: cc/") + c.name +
                             "/" + scheme.name;
    Check(other.stats_json == serial.stats_json &&
              other.final_now == serial.final_now &&
              other.result.committed == serial.result.committed &&
              other.result.retries == serial.result.retries,
          what);
  }
  return serial;
}

void RunSoftwareTier(const bench::BenchArgs& args, TablePrinter* table) {
  using baseline::CcSchemeKind;
  for (const Contention& c : kContentions) {
    for (CcSchemeKind kind : {CcSchemeKind::kOcc, CcSchemeKind::kSgt,
                              CcSchemeKind::kMvcc}) {
      // The --cc filter names the hardware schemes; OCC is the software
      // twin of "to" (both are the optimistic single-version side).
      const char* filter_name = kind == CcSchemeKind::kOcc ? "to"
                                : kind == CcSchemeKind::kSgt ? "sgt"
                                                             : "mvcc";
      if (!args.CcEnabled(filter_name)) continue;
      auto db = baseline::MakeCcDb(kind);
      baseline::CcSmallBankOptions opt;
      opt.accounts = args.quick ? 4'000 : 20'000;
      opt.hotspot_fraction = c.hotspot_fraction;
      opt.hotspot_accounts = c.hotspot_accounts;
      opt.mix_balance = c.mix[0];
      opt.mix_deposit = c.mix[1];
      opt.mix_transact = c.mix[2];
      opt.mix_amalgamate = c.mix[3];
      opt.mix_write_check = c.mix[4];
      baseline::CcSmallBank sb(db.get(), opt);
      sb.Setup();
      const uint32_t threads = bench::MaxBaselineThreads() < 8
                                   ? bench::MaxBaselineThreads()
                                   : 8;
      auto r = sb.RunMix(threads, args.quick ? 2'000 : 10'000, args.seed);
      db->GcSweep();
      const bool conserve = sb.VerifyConservation();
      Check(conserve, std::string("sw conservation: ") + c.name + "/" +
                          baseline::CcSchemeKindName(kind));
      const std::string label = std::string("sw/") + c.name + "/" +
                                baseline::CcSchemeKindName(kind);
      StatsRegistry& reg = g_report->AddRun(label);
      StatsScope run(&reg, "run");
      run.SetCounter("submitted", r.committed);  // closed loop: all commit
      run.SetCounter("committed", r.committed);
      run.SetCounter("aborted", r.aborted);
      run.SetGauge("tps", r.tps);
      StatsScope cc_scope(&reg, "run/cc");
      cc_scope.SetCounter("scheme", uint64_t(kind));
      cc_scope.SetCounter("retries", r.aborted);
      cc_scope.SetCounter("aborts", db->stats().aborts.load());
      cc_scope.SetCounter("conservation_ok", conserve ? 1 : 0);
      cc_scope.SetCounter("cycle_aborts", db->stats().cycle_aborts.load());
      cc_scope.SetCounter("versions_created",
                          db->stats().versions_created.load());
      cc_scope.SetCounter("versions_freed", db->stats().versions_freed.load());
      table->AddRow({c.name, baseline::CcSchemeKindName(kind),
                     std::to_string(threads), bench::Ktps(r.tps),
                     std::to_string(r.aborted), conserve ? "yes" : "LOST"});
    }
  }
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  using namespace bionicdb;
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::BenchReport report("cc_contention");
  g_report = &report;
  bench::PrintHeader("CC contention",
                     "T/O vs SGT vs MVCC on SmallBank, both tiers");

  // --- Hardware tier -----------------------------------------------------
  std::printf("\nSimulated engine (4 workers, all sim modes digest-checked):\n");
  TablePrinter hw({"contention", "scheme", "throughput (kTps)", "retries",
                   "aborts", "conserved"});
  std::map<std::string, double> tps;  // "<contention>/<scheme>" -> tps
  for (const Contention& c : kContentions) {
    for (const HwScheme& s : kHwSchemes) {
      if (!args.CcEnabled(s.name)) continue;
      HwOutcome o = RunHwAllModes(args, c, s);
      tps[std::string(c.name) + "/" + s.name] = o.result.tps;
      hw.AddRow({c.name, s.name, bench::Ktps(o.result.tps),
                 std::to_string(o.result.retries),
                 std::to_string(o.result.failed + o.result.retries),
                 o.conserve ? "yes" : "LOST"});
    }
  }
  hw.Print();

  // Crossover expectations need all three schemes present.
  if (args.cc == "all") {
    Check(tps["low/to"] >= 0.90 * tps["low/sgt"],
          "low contention: T/O within 10% of SGT");
    Check(tps["low/to"] >= 0.90 * tps["low/mvcc"],
          "low contention: T/O within 10% of MVCC");
    Check(tps["high/sgt"] >= 1.02 * tps["high/to"],
          "high contention: SGT beats T/O by >= 2%");
    Check(tps["high_read/mvcc"] >= 1.02 * tps["high_read/to"],
          "read-heavy high contention: MVCC beats T/O by >= 2%");
  }

  // --- Software tier -----------------------------------------------------
  if (!args.smoke) {
    std::printf("\nSoftware baseline (shared-everything SmallBank):\n");
    bench::PrintHostInfo();
    TablePrinter sw({"contention", "scheme", "threads", "throughput (kTps)",
                     "aborts", "conserved"});
    RunSoftwareTier(args, &sw);
    sw.Print();
  }

  report.WriteFile();
  if (g_failures != 0) {
    std::fprintf(stderr, "cc_contention: %d check(s) failed\n", g_failures);
    return 1;
  }
  return 0;
}
