// Figure 11 — skiplist pipelining: (a) sequential load, (b) point query,
// (c) scan throughput vs in-flight cap, and (d) scan comparison against
// Masstree (OLC B+tree stand-in) and a software skiplist, 4 workers each.
//
// Paper result shapes to reproduce:
//  * (a)/(b) saturate around 8 in-flight ops — index parallelism is bound
//    by pipeline DEPTH, since traversal stages hold an op across multiple
//    memory stalls (unlike the hash pipeline);
//  * (c) deteriorates further: the single scanner module is the
//    bottleneck;
//  * (d) the hardware skiplist loses to Masstree (~20 %) and to the
//    software skiplist (~5x) on scans with one scanner.
#include "baseline/workloads.h"
#include "bench/bench_util.h"
#include "bench/report.h"
#include "workload/kv.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

using bench::BenchArgs;

const std::vector<uint32_t> kInflight = {1, 4, 8, 12, 16, 20, 24};

bench::BenchReport* g_report = nullptr;

void LoadAndPointCurves(const BenchArgs& args) {
  const uint64_t preload = args.quick ? 2'000 : 20'000;
  const uint64_t txns = args.quick ? 10 : 60;  // x60 ops each

  bench::PrintHeader("Figure 11a/11b",
                     "Skiplist sequential load + point query vs in-flight");
  TablePrinter table({"in-flight", "insert (kOps)", "point query (kTps)"});
  for (uint32_t inflight : kInflight) {
    double results[2];
    for (int mode = 0; mode < 2; ++mode) {
      core::EngineOptions opts;
      opts.n_workers = 4;
      opts.coproc.max_inflight = inflight;
      core::BionicDb engine(opts);
      workload::KvOptions kopts;
      kopts.index = db::IndexKind::kSkiplist;
      kopts.preload_per_partition = preload;
      workload::KvBench kv(&engine, kopts);
      if (!kv.Setup().ok()) return;
      Rng rng(args.seed);
      host::TxnList list;
      for (uint32_t w = 0; w < 4; ++w) {
        for (uint64_t i = 0; i < txns; ++i) {
          list.emplace_back(w, mode == 0
                                   ? kv.MakeInsertTxn(w, /*sequential=*/true)
                                   : kv.MakeSearchTxn(&rng, w));
        }
      }
      auto r = host::RunToCompletion(&engine, list);
      g_report->AddEngineRun(std::string("skiplist_") +
                                 (mode == 0 ? "load" : "point") +
                                 "/inflight=" + std::to_string(inflight),
                             &engine, r);
      results[mode] = r.tps * kopts.ops_per_txn;
    }
    table.AddRow({std::to_string(inflight),
                  TablePrinter::Num(results[0] / 1e3, 0),
                  TablePrinter::Num(results[1] / 1e3, 0)});
  }
  table.Print();
}

double RunHwScan(const BenchArgs& args, uint32_t inflight,
                 uint32_t n_scanners) {
  core::EngineOptions opts;
  opts.n_workers = 4;
  opts.coproc.max_inflight = inflight;
  opts.coproc.skiplist.n_scanners = n_scanners;
  core::BionicDb engine(opts);
  workload::YcsbOptions yopts;
  yopts.mode = workload::YcsbOptions::Mode::kScanOnly;
  yopts.records_per_partition = args.quick ? 2'000 : 20'000;
  yopts.payload_len = args.quick ? 64 : 1024;
  yopts.scan_len = 50;
  workload::Ycsb ycsb(&engine, yopts);
  if (!ycsb.Setup().ok()) return 0;
  Rng rng(args.seed);
  host::TxnList list;
  const uint64_t txns = args.quick ? 60 : 300;
  for (uint32_t w = 0; w < 4; ++w) {
    for (uint64_t i = 0; i < txns; ++i) {
      list.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }
  auto r = host::RunToCompletion(&engine, list);
  g_report->AddEngineRun("scan/inflight=" + std::to_string(inflight) +
                             "/scanners=" + std::to_string(n_scanners),
                         &engine, r);
  return r.tps;
}

void ScanCurve(const BenchArgs& args) {
  bench::PrintHeader("Figure 11c",
                     "Modified YCSB-E scan-only (50 tuples) vs in-flight");
  TablePrinter table({"in-flight", "throughput (kTps)"});
  for (uint32_t inflight : kInflight) {
    table.AddRow({std::to_string(inflight),
                  bench::Ktps(RunHwScan(args, inflight, /*n_scanners=*/1))});
  }
  table.Print();
}

void ScanVsSoftware(const BenchArgs& args) {
  bench::PrintHeader("Figure 11d",
                     "Scan throughput: BionicDB vs Masstree vs SW skiplist");
  TablePrinter table({"system", "throughput (kTps)"});
  table.AddRow({"BionicDB (1 scanner)",
                bench::Ktps(RunHwScan(args, 16, 1))});

  const uint64_t silo_txns = args.quick ? 2'000 : 20'000;
  for (auto [name, kind] :
       {std::pair{"Masstree (OLC B+tree)", baseline::SiloIndexKind::kBTree},
        std::pair{"SW skiplist", baseline::SiloIndexKind::kSkiplist}}) {
    baseline::SiloYcsbOptions sopts;
    sopts.records = args.quick ? 8'000 : 80'000;
    sopts.payload_len = args.quick ? 64 : 256;
    sopts.index = kind;
    sopts.scan_len = 50;
    baseline::SiloYcsb silo(sopts);
    silo.Setup();
    auto r = silo.RunScans(/*threads=*/4, silo_txns);
    table.AddRow({name, bench::Ktps(r.tps)});
  }
  table.Print();
  std::printf(
      "(The paper estimates >=5 scanners are needed to match the software\n"
      " skiplist; see ablation_scanners for that sweep.)\n");
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  auto args = bionicdb::bench::BenchArgs::Parse(argc, argv);
  bionicdb::bench::BenchReport report("fig11_skiplist");
  bionicdb::g_report = &report;
  bionicdb::LoadAndPointCurves(args);
  bionicdb::ScanCurve(args);
  bionicdb::ScanVsSoftware(args);
  report.WriteFile();
  return 0;
}
