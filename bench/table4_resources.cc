// Table 4 + section 5.8 — FPGA resource utilization and power consumption.
//
// Reproduces the per-module flip-flop / LUT / BRAM breakdown of the
// 4-worker design on the Virtex-5 LX330, the ~11.5 W power estimate against
// the 380 W 4-chip Xeon TDP, and the datacenter-part worker-count
// projection the paper's scaling discussion (sections 4.6/7) relies on.
#include "bench/bench_util.h"
#include "bench/report.h"
#include "power/model.h"

int main(int argc, char** argv) {
  using namespace bionicdb;
  auto args = bench::BenchArgs::Parse(argc, argv);
  (void)args;

  bench::PrintHeader("Table 4",
                     "Resource utilization of BionicDB with 4 workers");
  power::DesignConfig cfg;
  cfg.n_workers = 4;
  power::ResourceModel model(cfg);
  TablePrinter table({"module", "flip-flops", "look-up tables", "block RAMs"});
  for (const auto& row : model.ModuleBreakdown()) {
    table.AddRow({row.name, std::to_string(row.usage.flip_flops),
                  std::to_string(row.usage.luts),
                  std::to_string(row.usage.brams)});
  }
  auto device = power::Virtex5Lx330();
  table.AddRow({device.name + " total",
                std::to_string(device.capacity.flip_flops),
                std::to_string(device.capacity.luts),
                std::to_string(device.capacity.brams)});
  table.AddRow({"Utilization",
                TablePrinter::Num(model.UtilizationFf(device) * 100, 0) + "%",
                TablePrinter::Num(model.UtilizationLut(device) * 100, 0) + "%",
                TablePrinter::Num(model.UtilizationBram(device) * 100, 0) +
                    "%"});
  table.Print();

  bench::PrintHeader("Section 5.8", "Power consumption");
  TablePrinter power_table({"system", "power (W)"});
  power_table.AddRow(
      {"BionicDB (Virtex-5, 4 workers)",
       TablePrinter::Num(power::PowerModel::BionicDbWatts(4), 1)});
  power_table.AddRow({"Xeon E7-4807 x4 (TDP)",
                      TablePrinter::Num(power::PowerModel::XeonWatts(4), 0)});
  power_table.Print();
  std::printf("Power saving: %.1fx\n",
              power::PowerModel::XeonWatts(4) /
                  power::PowerModel::BionicDbWatts(4));

  bench::PrintHeader("Scaling projection",
                     "Workers per datacenter-grade FPGA (80% usable)");
  TablePrinter proj({"device", "max BionicDB workers"});
  power::DesignConfig per_worker;
  for (const auto& dev : {power::VirtexUltrascalePlusVu9p(),
                          power::IntelArria10Gx1150()}) {
    proj.AddRow({dev.name, std::to_string(power::ResourceModel::MaxWorkers(
                               dev, per_worker))});
  }
  proj.Print();

  bench::BenchReport report("table4_resources");
  StatsRegistry& reg = report.AddRun("virtex5_4workers");
  for (const auto& row : model.ModuleBreakdown()) {
    StatsScope mod(&reg, "modules/" + row.name);
    mod.SetCounter("flip_flops", row.usage.flip_flops);
    mod.SetCounter("luts", row.usage.luts);
    mod.SetCounter("brams", row.usage.brams);
  }
  reg.SetGauge("utilization/flip_flops", model.UtilizationFf(device));
  reg.SetGauge("utilization/luts", model.UtilizationLut(device));
  reg.SetGauge("utilization/brams", model.UtilizationBram(device));
  reg.SetGauge("power/bionicdb_watts", power::PowerModel::BionicDbWatts(4));
  reg.SetGauge("power/xeon_watts", power::PowerModel::XeonWatts(4));
  report.WriteFile();
  return 0;
}
