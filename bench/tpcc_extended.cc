// Extension — TPC-C beyond the paper's NewOrder/Payment mix.
//
// The paper evaluates only NewOrder and Payment; this harness adds the
// Delivery (REMOVE + dynamic data-dependent loops over computed keys) and
// OrderStatus (read-only navigation) transactions and reports a TPC-C-like
// four-transaction mix, plus per-type solo throughput. Delivery/OrderStatus
// stress exactly the machinery the paper says limits TPC-C: long
// data-dependency chains that serialise the softcore.
#include "bench/bench_util.h"
#include "bench/report.h"
#include "workload/tpcc.h"

namespace bionicdb {
namespace {

using bench::BenchArgs;

bench::BenchReport* g_report = nullptr;

struct MixEntry {
  const char* name;
  double neworder, payment, delivery, orderstatus, stocklevel;
};

host::RunResult Run(const BenchArgs& args, const MixEntry& mix) {
  core::EngineOptions opts;
  opts.n_workers = 4;
  opts.softcore.max_contexts = 4;
  opts.softcore.dynamic_switching = true;  // best configuration for TPC-C
  core::BionicDb engine(opts);
  workload::TpccOptions topts;
  if (args.quick) {
    topts.districts_per_warehouse = 4;
    topts.customers_per_district = 100;
    topts.items = 2'000;
  }
  workload::Tpcc tpcc(&engine, topts);
  if (!tpcc.Setup().ok()) return {};
  Rng rng(args.seed);
  // Mixes without NewOrder would otherwise run against empty districts
  // (all no-ops); warm the order tables up first, outside the measurement.
  if (mix.neworder < 0.01) {
    host::TxnList warmup;
    for (uint32_t w = 0; w < 4; ++w) {
      for (uint32_t i = 0; i < topts.districts_per_warehouse * 5; ++i) {
        warmup.emplace_back(w, tpcc.MakeNewOrder(&rng, w));
      }
    }
    host::RunToCompletion(&engine, warmup);
  }
  // StockLevel is ~50x heavier than the others (hundreds of serial RETs);
  // scale the solo run down.
  uint64_t txns = args.quick ? 120 : 600;
  if (mix.stocklevel >= 0.99) txns = args.quick ? 12 : 60;
  host::TxnList list;
  for (uint32_t w = 0; w < 4; ++w) {
    for (uint64_t i = 0; i < txns; ++i) {
      double pick = rng.NextDouble();
      sim::Addr block;
      if (pick < mix.neworder) {
        block = tpcc.MakeNewOrder(&rng, w);
      } else if (pick < mix.neworder + mix.payment) {
        block = tpcc.MakePayment(&rng, w);
      } else if (pick < mix.neworder + mix.payment + mix.delivery) {
        block = tpcc.MakeDelivery(&rng, w);
      } else if (pick <
                 mix.neworder + mix.payment + mix.delivery + mix.stocklevel) {
        block = tpcc.MakeStockLevel(&rng, w, /*threshold=*/30);
      } else {
        block = tpcc.MakeOrderStatus(&rng, w);
      }
      list.emplace_back(w, block);
    }
  }
  auto r = host::RunToCompletion(&engine, list);
  g_report->AddEngineRun(std::string("mix/") + mix.name, &engine, r);
  return r;
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  using namespace bionicdb;
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::BenchReport report("tpcc_extended");
  g_report = &report;
  bench::PrintHeader("Extension",
                     "the full five-transaction TPC-C suite");
  // The extended mix approximates the TPC-C spec weights (45:43:4:4:4).
  const MixEntry mixes[] = {
      {"NewOrder only", 1, 0, 0, 0, 0},
      {"Payment only", 0, 1, 0, 0, 0},
      {"Delivery only", 0, 0, 1, 0, 0},
      {"OrderStatus only", 0, 0, 0, 1, 0},
      {"StockLevel only", 0, 0, 0, 0, 1},
      {"paper mix (50:50)", 0.5, 0.5, 0, 0, 0},
      {"full TPC-C (45:43:4:4:4)", 0.45, 0.43, 0.04, 0.04, 0.04},
  };
  TablePrinter table(
      {"mix", "throughput (kTps)", "retry rate", "failed"});
  for (const MixEntry& mix : mixes) {
    auto r = Run(args, mix);
    table.AddRow({mix.name, bench::Ktps(r.tps),
                  TablePrinter::Num(
                      r.committed ? double(r.retries) / double(r.committed)
                                  : 0,
                      2),
                  std::to_string(r.failed)});
  }
  table.Print();
  std::printf(
      "(Solo Delivery/OrderStatus/StockLevel rows run against warmed-up\n"
      " districts; in the mixed rows NewOrder keeps them fed. StockLevel\n"
      " inspects ~hundreds of rows per transaction.)\n");
  report.WriteFile();
  return 0;
}
