// Figure 12 — transaction interleaving vs serial execution.
//
// Paper result shapes to reproduce:
//  (a) YCSB-C with 1..64 DB accesses per transaction: interleaving wins
//      ~3x at 1 access (inter-transaction parallelism substitutes for
//      missing intra-transaction parallelism); the gap shrinks as the
//      footprint grows;
//  (b) TPC-C NewOrder and Payment: no noticeable difference — data
//      dependency forces the softcore to wait inside the logic phase,
//      eliminating the interleaving opportunity.
#include "bench/bench_util.h"
#include "bench/report.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

using bench::BenchArgs;

bench::BenchReport* g_report = nullptr;

double RunYcsb(const BenchArgs& args, uint32_t accesses, bool interleaving) {
  core::EngineOptions opts;
  opts.n_workers = 4;
  opts.softcore.interleaving = interleaving;
  core::BionicDb engine(opts);
  workload::YcsbOptions yopts;
  yopts.accesses_per_txn = accesses;
  yopts.records_per_partition = args.quick ? 5'000 : 50'000;
  yopts.payload_len = args.quick ? 64 : 1024;
  workload::Ycsb ycsb(&engine, yopts);
  if (!ycsb.Setup().ok()) return 0;
  Rng rng(args.seed);
  // Hold work (DB accesses) constant-ish across footprints.
  const uint64_t txns =
      std::max<uint64_t>(50, (args.quick ? 3'000 : 24'000) / accesses);
  host::TxnList list;
  for (uint32_t w = 0; w < 4; ++w) {
    for (uint64_t i = 0; i < txns; ++i) {
      list.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }
  auto r = host::RunToCompletion(&engine, list);
  g_report->AddEngineRun("ycsb/accesses=" + std::to_string(accesses) +
                             (interleaving ? "/interleaved" : "/serial"),
                         &engine, r);
  return r.tps;
}

double RunTpcc(const BenchArgs& args, bool neworder, bool interleaving) {
  core::EngineOptions opts;
  opts.n_workers = 4;
  opts.softcore.interleaving = interleaving;
  opts.softcore.max_contexts = 4;
  core::BionicDb engine(opts);
  workload::TpccOptions topts;
  if (args.quick) {
    topts.districts_per_warehouse = 4;
    topts.customers_per_district = 100;
    topts.items = 2'000;
  }
  topts.remote_neworder_fraction = 0;  // all-local, like the paper
  topts.remote_payment_fraction = 0;
  workload::Tpcc tpcc(&engine, topts);
  if (!tpcc.Setup().ok()) return 0;
  Rng rng(args.seed);
  const uint64_t txns = args.quick ? 100 : 600;
  host::TxnList list;
  for (uint32_t w = 0; w < 4; ++w) {
    for (uint64_t i = 0; i < txns; ++i) {
      list.emplace_back(w, neworder ? tpcc.MakeNewOrder(&rng, w)
                                    : tpcc.MakePayment(&rng, w));
    }
  }
  auto r = host::RunToCompletion(&engine, list);
  g_report->AddEngineRun(std::string(neworder ? "tpcc_neworder" :
                                                "tpcc_payment") +
                             (interleaving ? "/interleaved" : "/serial"),
                         &engine, r);
  return r.tps;
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  using namespace bionicdb;
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::BenchReport report("fig12_interleaving");
  g_report = &report;

  bench::PrintHeader("Figure 12a",
                     "Interleaving vs serial, YCSB-C footprint sweep");
  TablePrinter ycsb_table({"DB accesses/txn", "interleaving (kTps)",
                           "serial (kTps)", "speedup"});
  for (uint32_t accesses : {1u, 16u, 32u, 48u, 64u}) {
    double inter = RunYcsb(args, accesses, true);
    double serial = RunYcsb(args, accesses, false);
    ycsb_table.AddRow({std::to_string(accesses), bench::Ktps(inter),
                       bench::Ktps(serial),
                       TablePrinter::Num(serial > 0 ? inter / serial : 0, 2)});
  }
  ycsb_table.Print();

  bench::PrintHeader("Figure 12b", "Interleaving vs serial, TPC-C");
  TablePrinter tpcc_table({"transaction", "interleaving (kTps)",
                           "serial (kTps)", "speedup"});
  for (bool neworder : {true, false}) {
    double inter = RunTpcc(args, neworder, true);
    double serial = RunTpcc(args, neworder, false);
    tpcc_table.AddRow({neworder ? "NewOrder" : "Payment", bench::Ktps(inter),
                       bench::Ktps(serial),
                       TablePrinter::Num(serial > 0 ? inter / serial : 0, 2)});
  }
  tpcc_table.Print();
  report.WriteFile();
  return 0;
}
